package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// config is the full description of one load run; main fills it from
// flags, tests fill it directly.
type config struct {
	URL        string
	Duration   time.Duration
	Conns      int
	Rate       float64 // > 0 switches to open loop
	Population int
	ZipfS      float64
	ZipfV      float64
	Cold       float64
	App        string
	Insts      uint64
	Prewarm    bool
	Seed       int64
}

// summary is what a run measured.
type summary struct {
	Requests  int
	Errors    int
	Elapsed   time.Duration
	Quantiles map[string]time.Duration // p50 p90 p99 p999 max
}

func (s summary) String() string {
	var b strings.Builder
	rate := float64(s.Requests) / s.Elapsed.Seconds()
	fmt.Fprintf(&b, "requests=%d errors=%d elapsed=%.2fs achieved=%.0f req/s\n",
		s.Requests, s.Errors, s.Elapsed.Seconds(), rate)
	for _, q := range []string{"p50", "p90", "p99", "p999", "max"} {
		fmt.Fprintf(&b, "%s=%s\n", q, s.Quantiles[q])
	}
	return b.String()
}

// population pre-marshals the request body for each of the n distinct
// specs: the same app at stepped instruction counts, so each body is a
// distinct content-addressed key and the Zipf draw decides hotness.
func population(app string, insts uint64, n int) [][]byte {
	bodies := make([][]byte, n)
	for i := range bodies {
		bodies[i] = specBody(app, insts+uint64(i))
	}
	return bodies
}

func specBody(app string, insts uint64) []byte {
	b, err := json.Marshal(server.RunRequest{
		Spec: &server.SpecRequest{App: app, Instructions: insts},
	})
	if err != nil {
		panic(err) // static struct, cannot fail
	}
	return b
}

// quantile reads the q-quantile (0 < q <= 1) from an ascending-sorted
// sample set using the nearest-rank method.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// traffic is the shared request-picking state: the Zipf draw over the
// warm population plus the cold-spec counter. Each worker owns its own
// rng (and therefore its own Zipf state); the cold counter is shared so
// cold specs never collide.
type traffic struct {
	bodies [][]byte
	cold   float64
	app    string
	next   atomic.Uint64 // next never-seen instruction count
}

func newTraffic(cfg config) *traffic {
	t := &traffic{bodies: population(cfg.App, cfg.Insts, cfg.Population), cold: cfg.Cold, app: cfg.App}
	// Cold specs start far above the warm band so the two never overlap.
	t.next.Store(cfg.Insts + uint64(cfg.Population) + 1_000_000)
	return t
}

// pick returns the next request body for one worker's rng.
func (t *traffic) pick(r *rand.Rand, z *rand.Zipf) []byte {
	if t.cold > 0 && r.Float64() < t.cold {
		return specBody(t.app, t.next.Add(1))
	}
	return t.bodies[z.Uint64()]
}

// post issues one request and reports its latency; any transport error,
// non-200 status, or NDJSON error line counts as an error.
func post(client *http.Client, url string, body []byte) (time.Duration, error) {
	start := time.Now()
	resp, err := client.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	d := time.Since(start)
	if err != nil {
		return d, err
	}
	if resp.StatusCode != http.StatusOK {
		return d, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	if bytes.Contains(raw, []byte(`"error"`)) {
		return d, fmt.Errorf("run failed: %s", bytes.TrimSpace(raw))
	}
	return d, nil
}

// run executes one load generation pass and summarizes it.
func run(cfg config) (summary, error) {
	if cfg.Population < 1 {
		return summary{}, fmt.Errorf("population must be positive")
	}
	if cfg.ZipfS <= 1 || cfg.ZipfV < 1 {
		return summary{}, fmt.Errorf("zipf needs s > 1 and v >= 1 (got s=%g v=%g)", cfg.ZipfS, cfg.ZipfV)
	}
	workers := cfg.Conns
	if cfg.Rate > 0 {
		// Open loop: enough workers that pacing, not conns, is the limit.
		workers = 4 * max(cfg.Conns, 8)
	}
	if workers < 1 {
		return summary{}, fmt.Errorf("need at least one connection")
	}
	tr := newTraffic(cfg)
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        workers,
		MaxIdleConnsPerHost: workers,
	}}

	if cfg.Prewarm {
		if err := prewarm(client, cfg); err != nil {
			return summary{}, fmt.Errorf("prewarm: %w", err)
		}
	}

	// Open loop hands paced ticks to workers through a channel; closed
	// loop lets each worker self-pace (nil channel = no gating).
	var ticks chan struct{}
	deadline := time.Now().Add(cfg.Duration)
	if cfg.Rate > 0 {
		ticks = make(chan struct{}, workers)
		go pace(ticks, cfg.Rate, deadline)
	}

	lats := make([][]time.Duration, workers)
	errCounts := make([]int, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			z := rand.NewZipf(r, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Population-1))
			for {
				if ticks != nil {
					if _, ok := <-ticks; !ok {
						return
					}
				} else if !time.Now().Before(deadline) {
					return
				}
				d, err := post(client, cfg.URL, tr.pick(r, z))
				if err != nil {
					errCounts[w]++
					continue
				}
				lats[w] = append(lats[w], d)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	var errs int
	for w := range lats {
		all = append(all, lats[w]...)
		errs += errCounts[w]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return summary{
		Requests: len(all) + errs,
		Errors:   errs,
		Elapsed:  elapsed,
		Quantiles: map[string]time.Duration{
			"p50":  quantile(all, 0.50),
			"p90":  quantile(all, 0.90),
			"p99":  quantile(all, 0.99),
			"p999": quantile(all, 0.999),
			"max":  quantile(all, 1),
		},
	}, nil
}

// prewarm POSTs the whole population once as a single grid so the
// measured window runs against a warm cache (the server coalesces and
// caches; one grid is the cheapest way to install every entry).
func prewarm(client *http.Client, cfg config) error {
	specs := make([]server.SpecRequest, cfg.Population)
	for i := range specs {
		specs[i] = server.SpecRequest{App: cfg.App, Instructions: cfg.Insts + uint64(i)}
	}
	body, err := json.Marshal(server.RunRequest{Specs: specs})
	if err != nil {
		return err
	}
	if _, err := post(client, cfg.URL, body); err != nil {
		return err
	}
	return nil
}

// pace feeds ticks at the target rate until the deadline, then closes
// the channel. Sends never block the clock: if workers fall behind, the
// tick is dropped and the shortfall shows up as achieved < target.
func pace(ticks chan<- struct{}, rate float64, deadline time.Time) {
	defer close(ticks)
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	for next := time.Now(); next.Before(deadline); next = next.Add(interval) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		select {
		case ticks <- struct{}{}:
		default:
		}
	}
}
