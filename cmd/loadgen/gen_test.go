package main

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

func TestPopulationBodiesAreDistinctValidSpecs(t *testing.T) {
	bodies := population("swim", 30_000, 8)
	seen := make(map[string]bool)
	for i, b := range bodies {
		var req server.RunRequest
		if err := json.Unmarshal(b, &req); err != nil {
			t.Fatalf("body %d is not a RunRequest: %v", i, err)
		}
		if req.Spec == nil || req.Spec.App != "swim" || req.Spec.Instructions != 30_000+uint64(i) {
			t.Fatalf("body %d = %+v, want swim at %d instructions", i, req.Spec, 30_000+i)
		}
		if seen[string(b)] {
			t.Fatalf("body %d duplicates an earlier spec", i)
		}
		seen[string(b)] = true
	}
}

func TestQuantileNearestRank(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond // 1ms..100ms sorted
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.90, 90 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{0.999, 100 * time.Millisecond},
		{1, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := quantile(samples, tc.q); got != tc.want {
			t.Errorf("quantile(%g) = %s, want %s", tc.q, got, tc.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile of empty set = %s, want 0", got)
	}
}

// TestRunAgainstLiveServer drives the real handler end to end: a short
// closed-loop burst over a tiny warm population must complete without a
// single error, and the cold fraction must force fresh simulations.
func TestRunAgainstLiveServer(t *testing.T) {
	eng := engine.New(engine.Options{Parallelism: 2})
	ts := httptest.NewServer(server.New(server.Options{Engine: eng}).Handler())
	defer ts.Close()

	cfg := config{
		URL:        ts.URL,
		Duration:   300 * time.Millisecond,
		Conns:      4,
		Population: 4,
		ZipfS:      1.1,
		ZipfV:      1,
		App:        "swim",
		Insts:      20_000,
		Prewarm:    true,
		Seed:       1,
	}
	sum, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		t.Fatalf("summary reported %d errors: %+v", sum.Errors, sum)
	}
	if sum.Requests == 0 {
		t.Fatal("no requests completed in the window")
	}
	if sum.Quantiles["p50"] <= 0 || sum.Quantiles["max"] < sum.Quantiles["p99"] {
		t.Errorf("quantiles inconsistent: %+v", sum.Quantiles)
	}
	// Prewarm simulated the population; the measured window must have
	// been all cache hits.
	if st := eng.CacheStats(); st.Misses != uint64(cfg.Population) {
		t.Errorf("misses = %d, want %d (prewarm only)", st.Misses, cfg.Population)
	}

	// A cold fraction of 1 forces every request to a fresh spec.
	before := eng.CacheStats().Misses
	cfg.Cold = 1
	cfg.Prewarm = false
	cfg.Duration = 150 * time.Millisecond
	sum, err = run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		t.Fatalf("cold run reported %d errors", sum.Errors)
	}
	gained := eng.CacheStats().Misses - before
	if int(gained) != sum.Requests {
		t.Errorf("cold run: %d new misses for %d requests, want equal", gained, sum.Requests)
	}
}
