// Command loadgen drives a running resonanced with Zipf-distributed
// spec traffic and reports achieved throughput and latency quantiles.
//
// The population is -population distinct specs (the same application at
// stepped instruction counts, so every spec is a distinct cache key);
// workers draw from it with Zipf(s, v) skew, which models the real
// sweep workload: a few hot points hammered from many clients, a long
// tail of colder ones. -cold mixes in never-before-seen specs (a
// monotonic instruction counter) to force simulation misses at a
// controlled rate, so the warm/cold ratio of the server under test is
// an input, not an accident.
//
// Two driving modes:
//
//	-conns N            closed loop: N connections, each issuing the next
//	                    request as soon as the previous one finishes
//	-rate R             open loop: R requests/second paced independently
//	                    of response times (exposes queueing collapse)
//
// Usage:
//
//	loadgen -url http://localhost:8080 -duration 10s -conns 8
//	loadgen -rate 20000 -population 256 -zipf-s 1.2 -cold 0.01
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.URL, "url", "http://localhost:8080", "resonanced base URL")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "measurement window")
	flag.IntVar(&cfg.Conns, "conns", 8, "closed-loop connections (ignored when -rate > 0)")
	flag.Float64Var(&cfg.Rate, "rate", 0, "open-loop request rate per second (0 = closed loop)")
	flag.IntVar(&cfg.Population, "population", 64, "distinct specs in the hot set")
	flag.Float64Var(&cfg.ZipfS, "zipf-s", 1.1, "Zipf skew s (> 1; larger = hotter head)")
	flag.Float64Var(&cfg.ZipfV, "zipf-v", 1, "Zipf offset v (>= 1)")
	flag.Float64Var(&cfg.Cold, "cold", 0, "fraction of requests carrying a never-seen spec (forced miss)")
	flag.StringVar(&cfg.App, "app", "swim", "application every spec runs")
	flag.Uint64Var(&cfg.Insts, "insts", 30_000, "base instruction count (spec i runs insts+i)")
	flag.BoolVar(&cfg.Prewarm, "prewarm", true, "POST the whole population once as a grid before timing")
	seed := flag.Int64("seed", 1, "PRNG seed for the traffic pattern")
	flag.Parse()
	cfg.Seed = *seed

	sum, err := run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(sum)
	if sum.Errors > 0 {
		os.Exit(1)
	}
}
