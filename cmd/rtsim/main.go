// Command rtsim runs one synthetic SPEC2K application on the paper's
// Table 1 system under a chosen inductive-noise technique and prints the
// run summary, optionally dumping a per-cycle waveform trace as CSV.
//
// Usage:
//
//	rtsim -app parser -insts 1000000 -tech tuning
//	rtsim -app lucas -tech base -trace lucas.csv
//	rtsim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro"
)

func main() {
	var (
		app     = flag.String("app", "parser", "application name (see -list)")
		insts   = flag.Uint64("insts", 1_000_000, "instructions to simulate")
		tech    = flag.String("tech", "base", "technique: base, tuning, voltctl, damping")
		initial = flag.Int("initial-response", 100, "tuning: initial response time in cycles")
		delay   = flag.Int("delay", 0, "tuning: detection-to-response delay in cycles")
		trace   = flag.String("trace", "", "write per-cycle CSV trace to this file")
		record  = flag.String("record", "", "record the instruction stream to this file and exit")
		replay  = flag.String("replay", "", "replay a recorded instruction stream instead of -app")
		spect    = flag.Bool("spectrum", false, "analyse the run's current spectrum against the resonance band")
		energy   = flag.Bool("energy", false, "print the per-unit energy breakdown")
		cacheDir = flag.String("cache-dir", "", "persistent result-cache directory (a warm re-run replays the finished result without simulating)")
		traceMB  = flag.Int64("trace-budget-mb", 0, "workload trace store budget in MiB (0 = 1024)")
		stats    = flag.Bool("cache-stats", false, "print cache and trace-store counters after the run")
		list     = flag.Bool("list", false, "list applications and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("application  paper-IPC  paper-class")
		for _, a := range resonance.Apps() {
			class := "clean"
			if a.PaperViolating {
				class = "violating"
			}
			fmt.Printf("%-12s %-10.2f %s\n", a.Params.Name, a.PaperIPC, class)
		}
		return
	}

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		n, err := resonance.RecordWorkload(f, *app, *insts)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d instructions of %s to %s\n", n, *app, *record)
		return
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		res, err := resonance.ReplayWorkload(f, resonance.TechniqueKind(*tech))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replayed %s under %s: %d cycles, IPC %.3f, %d violations\n",
			*replay, res.Technique, res.Cycles, res.IPC, res.Violations)
		return
	}

	spec := resonance.SimulationSpec{
		App:          *app,
		Instructions: *insts,
		Technique:    resonance.TechniqueKind(*tech),
	}
	if spec.Technique == resonance.TechniqueTuning {
		cfg := resonance.DefaultTuningConfig(*initial)
		cfg.ResponseDelayCycles = *delay
		spec.Tuning = &cfg
	}

	var currentTrace []float64
	if *spect {
		prev := spec.Trace
		spec.Trace = func(tp resonance.TracePoint) {
			currentTrace = append(currentTrace, tp.TotalAmps)
			if prev != nil {
				prev(tp)
			}
		}
	}

	var traceFile *os.File
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		defer f.Close()
		fmt.Fprintln(f, "cycle,amps,deviation_mv,event_count,response_level")
		prev := spec.Trace
		spec.Trace = func(tp resonance.TracePoint) {
			fmt.Fprintf(f, "%d,%.2f,%.3f,%d,%d\n",
				tp.Cycle, tp.TotalAmps, tp.DeviationVolts*1000, tp.EventCount, tp.ResponseLevel)
			if prev != nil {
				prev(tp)
			}
		}
	}

	// Run through the engine, keeping the process responsive to an
	// interrupt while the simulation executes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	type outcome struct {
		res resonance.Result
		err error
	}
	if *traceMB != 0 {
		resonance.SetTraceStoreBudget(*traceMB << 20)
	}
	eng := resonance.NewEngineWithOptions(resonance.EngineOptions{
		Parallelism:  1,
		DiskCacheDir: *cacheDir,
	})
	ch := make(chan outcome, 1)
	go func() {
		res, err := eng.Run(ctx, spec)
		ch <- outcome{res, err}
	}()
	var res resonance.Result
	select {
	case out := <-ch:
		if out.err != nil {
			fatal(out.err)
		}
		res = out.res
	case <-ctx.Done():
		fatal(ctx.Err())
	}
	fmt.Printf("app:            %s\n", res.App)
	fmt.Printf("technique:      %s\n", res.Technique)
	fmt.Printf("instructions:   %d\n", res.Instructions)
	fmt.Printf("cycles:         %d\n", res.Cycles)
	fmt.Printf("IPC:            %.3f\n", res.IPC)
	fmt.Printf("energy:         %.4g J (%.4g J phantom)\n", res.EnergyJ, res.PhantomJ)
	fmt.Printf("violations:     %d (%.3g of cycles)\n", res.Violations, res.ViolationFraction)
	fmt.Printf("peak deviation: %.1f mV\n", res.PeakDeviationV*1000)
	fmt.Printf("current:        %.1f-%.1f A (mean %.1f)\n", res.MinAmps, res.MaxAmps, res.MeanAmps)
	if traceFile != nil {
		fmt.Printf("trace:          %s\n", traceFile.Name())
	}
	if *spect {
		sp, err := resonance.AnalyzeSpectrum(currentTrace)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("spectrum:       variance %.1f A², in-band %.2f A² (%.1f%%), peak period %.0f cycles\n",
			sp.TotalVarianceA2, sp.BandPowerA2, 100*sp.BandFraction, sp.PeakPeriodCycles)
	}
	if *energy {
		bd, err := resonance.EnergyBreakdown(spec)
		if err != nil {
			fatal(err)
		}
		fmt.Println("energy breakdown:")
		for _, row := range bd {
			fmt.Printf("  %-10s %8.4g J  (%.1f%%)\n", row.Unit, row.Joules, row.Percent)
		}
	}
	if *stats {
		cs := eng.CacheStats()
		ts := resonance.TraceStoreStats()
		fmt.Printf("cache-stats: mem_hits=%d disk_hits=%d sim_misses=%d disk_writes=%d entries=%d\n",
			cs.Hits, cs.DiskHits, cs.Misses, cs.DiskWrites, cs.Entries)
		fmt.Printf("trace-stats: built=%d reused=%d bypassed=%d evicted=%d resident_mb=%.1f\n",
			ts.Builds, ts.Hits, ts.Bypasses, ts.Evictions, float64(ts.Bytes)/(1<<20))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtsim:", err)
	os.Exit(1)
}
