// Command impedance characterises a power-distribution network: derived
// resonance parameters, the Section 2.1.3 calibration, and an impedance
// sweep as CSV.
//
// Usage:
//
//	impedance                      # Table 1 supply
//	impedance -preset section2
//	impedance -r 375e-6 -l 1.69e-12 -c 1.5e-6 -vdd 1.0 -clock 10e9
//	impedance -sweep sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		preset = flag.String("preset", "table1", "supply preset: table1, section2, or twostage")
		r      = flag.Float64("r", 0, "supply impedance R in ohms (overrides preset)")
		l      = flag.Float64("l", 0, "connection inductance L in henries")
		c      = flag.Float64("c", 0, "on-die decoupling capacitance C in farads")
		vdd    = flag.Float64("vdd", 0, "supply voltage in volts")
		clock  = flag.Float64("clock", 0, "clock frequency in hertz")
		sweep  = flag.String("sweep", "", "write impedance sweep CSV to this file")
		calib  = flag.Bool("calibrate", true, "run the Section 2.1.3 calibration")
	)
	flag.Parse()

	if *preset == "twostage" {
		reportTwoStage(*sweep)
		return
	}

	var p resonance.SupplyParams
	switch *preset {
	case "table1":
		p = resonance.Table1Supply()
	case "section2":
		p = resonance.Section2Supply()
	default:
		fatal(fmt.Errorf("unknown preset %q", *preset))
	}
	if *r > 0 {
		p.R = *r
	}
	if *l > 0 {
		p.L = *l
	}
	if *c > 0 {
		p.C = *c
	}
	if *vdd > 0 {
		p.Vdd = *vdd
	}
	if *clock > 0 {
		p.ClockHz = *clock
	}

	chars, err := p.Characterize()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("R = %.4g Ω, L = %.4g H, C = %.4g F, Vdd = %g V, clock = %.4g Hz\n",
		p.R, p.L, p.C, p.Vdd, p.ClockHz)
	fmt.Printf("resonant frequency: %.2f MHz (%.1f cycles)\n",
		chars.ResonantFrequencyHz/1e6, chars.ResonantPeriodCycles)
	fmt.Printf("quality factor Q:   %.2f\n", chars.Q)
	fmt.Printf("resonance band:     %.1f-%.1f MHz (%d-%d cycles)\n",
		chars.BandHz.Lo/1e6, chars.BandHz.Hi/1e6, chars.BandCycles.Lo, chars.BandCycles.Hi)
	fmt.Printf("dissipation:        %.0f%% per resonant period\n", chars.DissipationPerPeriod*100)
	fmt.Printf("noise margin:       ±%.0f mV\n", chars.NoiseMarginVolts*1000)
	fmt.Printf("peak impedance:     %.3f mΩ\n", p.Impedance(chars.ResonantFrequencyHz)*1000)

	if *calib {
		cal, err := resonance.CalibrateSupply(p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("resonant current variation threshold: %g A\n", cal.ThresholdAmps)
		fmt.Printf("band-edge tolerance:                   %g A\n", cal.BandEdgeToleranceAmps)
		fmt.Printf("maximum repetition tolerance:          %d half waves\n", cal.MaxRepetitionTolerance)
	}

	if *sweep != "" {
		f, err := os.Create(*sweep)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		fmt.Fprintln(f, "frequency_mhz,impedance_mohm")
		f0 := chars.ResonantFrequencyHz
		for _, pt := range p.ImpedanceSweep(0.2*f0, 2*f0, 361) {
			fmt.Fprintf(f, "%.3f,%.5f\n", pt.FrequencyHz/1e6, pt.Ohms*1000)
		}
		fmt.Printf("sweep written to %s\n", *sweep)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "impedance:", err)
	os.Exit(1)
}

// reportTwoStage characterises the Section 2.2 two-loop network with both
// impedance peaks, optionally writing a log-spaced sweep CSV.
func reportTwoStage(sweepPath string) {
	p := resonance.TwoStageSupply()
	low, med := p.Peaks()
	fmt.Printf("two-stage network (Section 2.2)\n")
	fmt.Printf("off-chip loop:  R1 = %.4g Ω, L1 = %.4g H, C1 = %.4g F\n", p.R1, p.L1, p.C1)
	fmt.Printf("on-chip loop:   R2 = %.4g Ω, L2 = %.4g H, C2 = %.4g F\n", p.R2, p.L2, p.C2)
	fmt.Printf("low-frequency peak:    %.3f mΩ at %.2f MHz (period ≈ %.0f cycles)\n",
		low.Ohms*1e3, low.FrequencyHz/1e6, p.ClockHz/low.FrequencyHz)
	fmt.Printf("medium-frequency peak: %.3f mΩ at %.2f MHz (period ≈ %.0f cycles)\n",
		med.Ohms*1e3, med.FrequencyHz/1e6, p.ClockHz/med.FrequencyHz)
	if sweepPath != "" {
		f, err := os.Create(sweepPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		fmt.Fprintln(f, "frequency_mhz,impedance_mohm")
		for _, pt := range p.ImpedanceSweep(0.5e6, 1e9, 600) {
			fmt.Fprintf(f, "%.4f,%.5f\n", pt.FrequencyHz/1e6, pt.Ohms*1000)
		}
		fmt.Printf("sweep written to %s\n", sweepPath)
	}
}
