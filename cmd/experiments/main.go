// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments table3
//	experiments -insts 500000 all
//	experiments -out results/ all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/profiling"
)

// writeFile creates the parent directory and writes the file, exiting on
// error.
func writeFile(path string, data []byte) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func main() {
	var (
		insts    = flag.Uint64("insts", 0, "instructions per application (0 = 1,000,000)")
		parallel = flag.Int("parallel", 0, "concurrent application runs (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "persistent result-cache directory (warm runs replay finished results without simulating)")
		cacheGC  = flag.Bool("cache-gc", false, "sweep the cache directory at startup, removing old-schema and corrupt entries")
		traceMB  = flag.Int64("trace-budget-mb", 0, "workload trace store budget in MiB (0 = 1024)")
		out      = flag.String("out", "", "also write each report to <out>/<id>.txt")
		svg      = flag.String("svg", "", "also render figures as SVG into this directory")
		jsonOut  = flag.String("json", "", "also write each report's structured data to <json>/<id>.json")
		htmlOut  = flag.String("html", "", "also write a combined self-contained HTML report to this file")
		list     = flag.Bool("list", false, "list experiments and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	if *list {
		for _, e := range resonance.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: name experiments to run, or 'all' (see -list)")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = ids[:0]
		for _, e := range resonance.Experiments() {
			ids = append(ids, e.ID)
		}
	}

	// One engine for the whole invocation: experiments share its worker
	// pool and result cache, so e.g. the 26-app baseline suite simulates
	// once even when table2, table3, table4, table5, and fig5 all ask
	// for it. With -cache-dir, finished results also persist across
	// invocations: a warm second run replays them from disk without
	// simulating.
	if *traceMB != 0 {
		resonance.SetTraceStoreBudget(*traceMB << 20)
	}
	eng := resonance.NewEngineWithOptions(resonance.EngineOptions{
		Parallelism:  *parallel,
		DiskCacheDir: *cacheDir,
		DiskCacheGC:  *cacheGC,
	})
	opts := resonance.Options{Instructions: *insts, Parallelism: *parallel, Engine: eng}
	var reports []resonance.Report
	for _, id := range ids {
		start := time.Now()
		rep, err := resonance.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", id, time.Since(start).Seconds(), rep.Text)
		if *out != "" {
			writeFile(filepath.Join(*out, id+".txt"), []byte(rep.Text))
		}
		if *svg != "" {
			for stem, doc := range resonance.Figures(rep) {
				writeFile(filepath.Join(*svg, stem+".svg"), []byte(doc))
			}
		}
		if *jsonOut != "" {
			blob, err := json.MarshalIndent(rep.Data, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
				os.Exit(1)
			}
			writeFile(filepath.Join(*jsonOut, id+".json"), blob)
		}
		reports = append(reports, rep)
	}
	if *htmlOut != "" {
		writeFile(*htmlOut, []byte(resonance.HTMLReport(reports)))
		fmt.Printf("combined report written to %s\n", *htmlOut)
	}
	printRunStats(eng)
}

// printRunStats emits the end-of-run cache and trace-store counters in a
// stable, greppable form (CI asserts sim_misses=0 on a warm cache pass).
func printRunStats(eng *resonance.Engine) {
	cs := eng.CacheStats()
	ts := resonance.TraceStoreStats()
	fmt.Printf("cache-stats: mem_hits=%d disk_hits=%d sim_misses=%d disk_writes=%d entries=%d\n",
		cs.Hits, cs.DiskHits, cs.Misses, cs.DiskWrites, cs.Entries)
	fmt.Printf("trace-stats: built=%d reused=%d bypassed=%d evicted=%d resident_mb=%.1f\n",
		ts.Builds, ts.Hits, ts.Bypasses, ts.Evictions, float64(ts.Bytes)/(1<<20))
}
