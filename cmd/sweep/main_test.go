package main

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro"
	"repro/internal/circuit"
	"repro/internal/engine"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("75, 100,200")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{75, 100, 200}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseInts = %v, want %v", got, want)
	}
	if got, err := parseInts("42"); err != nil || !reflect.DeepEqual(got, []int{42}) {
		t.Errorf("single value = %v, %v", got, err)
	}
	for _, junk := range []string{"", "12,", "a", "1,b,3", "1.5", "7 8"} {
		if got, err := parseInts(junk); err == nil {
			t.Errorf("parseInts(%q) accepted junk: %v", junk, got)
		}
	}
}

// serialSweep is the seed's sweep loop, kept as the reference the engine
// path must match byte for byte: one baseline per app, then every grid
// point simulated serially via resonance.Simulate.
func serialSweep(g sweepGrid, w *bytes.Buffer) error {
	fmt.Fprintln(w, csvHeader)
	for _, app := range g.apps {
		base, err := resonance.Simulate(resonance.SimulationSpec{App: app, Instructions: g.insts})
		if err != nil {
			return err
		}
		for _, initial := range g.initials {
			for _, th := range g.thresholds {
				for _, second := range g.seconds {
					cfg := resonance.DefaultTuningConfig(initial)
					cfg.InitialResponseThreshold = th
					if cfg.SecondResponseThreshold <= th {
						cfg.SecondResponseThreshold = th + 1
					}
					cfg.SecondResponseCycles = second
					res, err := resonance.Simulate(resonance.SimulationSpec{
						App: app, Instructions: g.insts,
						Technique: resonance.TechniqueTuning, Tuning: &cfg,
					})
					if err != nil {
						return err
					}
					slow := float64(res.Cycles) / float64(base.Cycles)
					energy := res.EnergyJ / base.EnergyJ
					fmt.Fprintf(w, "%s,%d,%d,%d,%.4f,%.4f,%.4f,%d,%d\n",
						app, initial, th, second, slow, energy, slow*energy,
						base.Violations, res.Violations)
				}
			}
		}
	}
	return nil
}

// tinyGrid keeps end-to-end tests fast.
func tinyGrid() sweepGrid {
	return sweepGrid{
		apps:       []string{"lucas", "parser"},
		insts:      20_000,
		initials:   []int{75, 100},
		thresholds: []int{1, 2},
		seconds:    []int{35},
	}
}

// TestSweepMatchesSerial: the parallel cached engine sweep emits exactly
// the CSV the seed's serial loop emitted.
func TestSweepMatchesSerial(t *testing.T) {
	g := tinyGrid()
	var want bytes.Buffer
	if err := serialSweep(g, &want); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	eng := engine.New(engine.Options{Parallelism: 4})
	if err := runSweep(context.Background(), eng, g, &got, nil); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("engine sweep diverged from serial reference:\n--- serial ---\n%s--- engine ---\n%s", want.String(), got.String())
	}
}

// TestSweepErrorNamesGridPoint: a failing point is reported with its
// coordinates.
func TestSweepErrorNamesGridPoint(t *testing.T) {
	g := tinyGrid()
	g.apps = []string{"lucas", "no-such-app"}
	var sink bytes.Buffer
	err := runSweep(context.Background(), engine.New(engine.Options{}), g, &sink, nil)
	if err == nil {
		t.Fatal("sweep accepted an unknown application")
	}
	if !strings.Contains(err.Error(), "no-such-app") {
		t.Errorf("error does not identify the failing point: %v", err)
	}

	// Baselines succeed but a tuned grid point fails: the error must
	// carry the grid coordinates.
	g = tinyGrid()
	g.initials = []int{75, -1}
	err = runSweep(context.Background(), engine.New(engine.Options{}), g, &sink, nil)
	if err == nil {
		t.Fatal("sweep accepted a negative response time")
	}
	if !strings.Contains(err.Error(), "initial=-1") {
		t.Errorf("error does not identify the failing grid point: %v", err)
	}
}

// TestSweepReusesBaselines: every baseline demanded by the grid is
// served from the same cache the grid shares; a second identical sweep
// is entirely cache hits.
func TestSweepReusesBaselines(t *testing.T) {
	g := tinyGrid()
	eng := engine.New(engine.Options{Parallelism: 2})
	var first bytes.Buffer
	if err := runSweep(context.Background(), eng, g, &first, nil); err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	wantRuns := uint64(len(g.apps) * (1 + len(g.initials)*len(g.thresholds)*len(g.seconds)))
	if st.Misses != wantRuns {
		t.Errorf("first sweep simulated %d points, want %d", st.Misses, wantRuns)
	}
	var second bytes.Buffer
	if err := runSweep(context.Background(), eng, g, &second, nil); err != nil {
		t.Fatal(err)
	}
	st2 := eng.CacheStats()
	if st2.Misses != st.Misses {
		t.Errorf("second sweep re-simulated: misses %d → %d", st.Misses, st2.Misses)
	}
	if first.String() != second.String() {
		t.Error("cached sweep emitted different CSV")
	}
}

// TestTechniqueKindValidation: every registered kind is accepted and
// listed; junk is rejected.
func TestTechniqueKindValidation(t *testing.T) {
	list := kindList()
	for _, k := range engine.Kinds() {
		if !validKind(k) {
			t.Errorf("registered kind %q rejected", k)
		}
		if !strings.Contains(list, string(k)) {
			t.Errorf("kind list %q omits %q", list, k)
		}
	}
	if !validKind("") {
		t.Error("empty kind (default tuning) rejected")
	}
	if validKind("no-such-technique") {
		t.Error("unknown kind accepted")
	}
	for _, want := range []string{"base", "tuning", "voltctl", "damping", "convctl", "wavelet", "dual-band"} {
		if !strings.Contains(list, want) {
			t.Errorf("kind list %q missing %q", list, want)
		}
	}
}

// TestSweepTechniqueFlag: a non-tuning technique collapses the grid to
// one default-configuration point per app and sweeps cleanly.
func TestSweepTechniqueFlag(t *testing.T) {
	for _, kind := range []engine.TechniqueKind{engine.TechniqueVoltageControl, engine.TechniqueDualBand} {
		g := tinyGrid()
		g.insts = 10_000
		g.technique = kind
		if got := len(g.points()); got != len(g.apps) {
			t.Fatalf("technique %s: %d grid points, want one per app (%d)", kind, got, len(g.apps))
		}
		var out bytes.Buffer
		if err := runSweep(context.Background(), engine.New(engine.Options{Parallelism: 2}), g, &out, nil); err != nil {
			t.Fatalf("technique %s: %v", kind, err)
		}
		lines := strings.Split(strings.TrimSpace(out.String()), "\n")
		if len(lines) != 1+len(g.apps) {
			t.Errorf("technique %s: %d CSV lines, want header + %d rows:\n%s", kind, len(lines), len(g.apps), out.String())
		}
	}
}

// TestNetworkKindValidation: every registered PDN kind is accepted and
// listed in the -pdn usage/error text; junk is rejected.
func TestNetworkKindValidation(t *testing.T) {
	list := netKindList()
	for _, k := range circuit.NetworkKinds() {
		if !validNetKind(k) {
			t.Errorf("registered network kind %q rejected", k)
		}
		if !strings.Contains(list, k) {
			t.Errorf("network kind list %q omits %q", list, k)
		}
	}
	if !validNetKind("") {
		t.Error("empty kind (default supply) rejected")
	}
	if validNetKind("mesh") {
		t.Error("unknown network kind accepted")
	}
	for _, want := range []string{"lumped", "twostage", "multidomain"} {
		if !strings.Contains(list, want) {
			t.Errorf("network kind list %q missing %q", list, want)
		}
	}
}

// TestSweepPDNEndToEnd sweeps a small tuning grid over the two-domain
// PDN through a persistent cache twice: the cold pass simulates every
// point exactly once, and the warm replay — a fresh engine over the same
// directory — serves the byte-identical CSV entirely from disk with zero
// sim misses, which is the sharded coordinator's merge contract.
func TestSweepPDNEndToEnd(t *testing.T) {
	g := sweepGrid{
		apps:       []string{"lucas", "parser"},
		insts:      20_000,
		pdn:        circuit.NetworkMultiDomain,
		initials:   []int{75, 100},
		thresholds: []int{1},
		seconds:    []int{35},
	}
	dir := t.TempDir()

	cold := engine.New(engine.Options{Parallelism: 2, DiskCacheDir: dir})
	var first bytes.Buffer
	if err := runSweep(context.Background(), cold, g, &first, nil); err != nil {
		t.Fatal(err)
	}
	st := cold.CacheStats()
	wantRuns := uint64(len(g.apps) * (1 + len(g.points())/len(g.apps)))
	if st.Misses != wantRuns {
		t.Errorf("cold sweep simulated %d points, want %d", st.Misses, wantRuns)
	}

	warm := engine.New(engine.Options{Parallelism: 2, DiskCacheDir: dir})
	var second bytes.Buffer
	if err := runSweep(context.Background(), warm, g, &second, nil); err != nil {
		t.Fatal(err)
	}
	st2 := warm.CacheStats()
	if st2.Misses != 0 {
		t.Errorf("warm replay re-simulated %d points, want sim_misses=0", st2.Misses)
	}
	if st2.DiskHits == 0 {
		t.Error("warm replay served no points from the disk cache")
	}
	if first.String() != second.String() {
		t.Errorf("warm replay CSV diverged:\n--- cold ---\n%s--- warm ---\n%s", first.String(), second.String())
	}

	// The PDN must actually reach the simulated system: the same grid
	// without it keys — and simulates — differently.
	gLumped := g
	gLumped.pdn = ""
	var lumped bytes.Buffer
	if err := runSweep(context.Background(), warm, gLumped, &lumped, nil); err != nil {
		t.Fatal(err)
	}
	if warm.CacheStats().Misses == 0 {
		t.Error("default-supply sweep was served from the multi-domain cache entries")
	}
	if lumped.String() == first.String() {
		t.Error("multi-domain sweep emitted the same CSV as the default supply")
	}
}

// benchGrid is the default flag grid (4 apps × 4 initials × 2 thresholds
// × 1 hold) at a reduced instruction budget so a benchmark iteration
// stays in seconds.
func benchGrid() sweepGrid {
	return sweepGrid{
		apps:       []string{"lucas", "swim", "bzip", "parser"},
		insts:      30_000,
		initials:   []int{75, 100, 150, 200},
		thresholds: []int{1, 2},
		seconds:    []int{35},
	}
}

// BenchmarkSweepSerial measures the seed's serial loop on the default
// grid shape.
func BenchmarkSweepSerial(b *testing.B) {
	g := benchGrid()
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		if err := serialSweep(g, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepEngine measures the engine-backed sweep (parallel, cold
// cache each iteration) on the same grid.
func BenchmarkSweepEngine(b *testing.B) {
	g := benchGrid()
	for i := 0; i < b.N; i++ {
		eng := engine.New(engine.Options{})
		var out bytes.Buffer
		if err := runSweep(context.Background(), eng, g, &out, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepEngineWarm measures a re-sweep against a warm cache —
// the figure-regeneration case where every point is already known.
func BenchmarkSweepEngineWarm(b *testing.B) {
	g := benchGrid()
	eng := engine.New(engine.Options{})
	var prime bytes.Buffer
	if err := runSweep(context.Background(), eng, g, &prime, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		if err := runSweep(context.Background(), eng, g, &out, nil); err != nil {
			b.Fatal(err)
		}
	}
}
