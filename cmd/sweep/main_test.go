package main

import (
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	got := parseInts("75, 100,200")
	want := []int{75, 100, 200}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseInts = %v, want %v", got, want)
	}
	if got := parseInts("42"); !reflect.DeepEqual(got, []int{42}) {
		t.Errorf("single value = %v", got)
	}
}
