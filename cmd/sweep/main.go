// Command sweep explores the resonance-tuning design space on a chosen
// set of applications: a grid over initial response time, initial
// response threshold, and second-level hold, reporting slowdown,
// energy-delay, and residual violations per point as CSV.
//
// Grid points run through the shared engine (internal/engine): a bounded
// worker pool executes them in parallel and a content-addressed result
// cache deduplicates identical points — including each application's
// baseline, which is just another cached run rather than a special case.
// Rows stream to the output as points complete, in stable grid order.
//
// Large grids (or long instruction streams) shard across processes and
// machines: a coordinator publishes the grid into a shared cache
// directory and workers — forked locally or started anywhere the
// directory is mounted — lease points, steal from stragglers, and
// publish content-addressed results; the merged CSV is byte-identical
// to a single-process run (see internal/shard).
//
// Usage:
//
//	sweep                                   # default grid on the heavy violators
//	sweep -apps lucas,swim -insts 500000
//	sweep -initial 50,100,200 -threshold 1,2 -o grid.csv
//	sweep -parallel 4                       # bound the worker pool
//	sweep -progress ...                     # done/total, rate, ETA on stderr
//	sweep -coordinate -workers 2 -cache-dir /shared/d ...   # sharded sweep
//	sweep -worker -cache-dir /shared/d      # extra worker, local or remote
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/profiling"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		appsFlag = flag.String("apps", "lucas,swim,bzip,parser", "comma-separated application names")
		insts    = flag.Uint64("insts", 300_000, "instructions per run")
		techFlag = flag.String("technique", string(engine.TechniqueTuning),
			"technique kind to run at each grid point (one of: "+kindList()+"); "+
				"the -initial/-threshold/-second axes configure tuning, every other kind runs its default configuration once per app")
		pdnFlag = flag.String("pdn", "",
			"power-delivery-network kind simulated at every point, baselines included (one of: "+netKindList()+"); "+
				"empty keeps each spec's default lumped supply")
		initials  = flag.String("initial", "75,100,150,200", "initial response times (cycles)")
		thresh    = flag.String("threshold", "1,2", "initial response thresholds (event count)")
		secondMin = flag.String("second", "35", "second-level hold times (cycles)")
		parallel  = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cacheDir  = flag.String("cache-dir", "", "persistent result-cache directory (warm re-sweeps replay finished points without simulating)")
		cacheGC   = flag.Bool("cache-gc", false, "sweep the cache directory at startup, removing old-schema and corrupt entries")
		traceMB   = flag.Int64("trace-budget-mb", 0, "workload trace store budget in MiB (0 = 1024)")
		out       = flag.String("o", "", "write CSV to this file instead of stdout")
		progressF = flag.Bool("progress", false, "print points done/total, completion rate, and ETA to stderr")
		coordF    = flag.Bool("coordinate", false, "sharded mode: publish the grid to -cache-dir, fork -workers local workers, wait for completion, and merge the byte-identical CSV")
		workersF  = flag.Int("workers", 2, "local worker processes the coordinator forks (0 = rely on remote workers sharing -cache-dir)")
		workerF   = flag.Bool("worker", false, "sharded mode: claim and simulate points of the grid published to -cache-dir until it completes (grid flags are ignored; the manifest carries the points)")
		leaseF    = flag.Duration("lease-expiry", shard.DefaultLeaseExpiry, "sharded mode: a lease not heartbeat-refreshed for this long is stale and may be stolen (same value on every worker)")
		pollF     = flag.Duration("shard-poll", shard.DefaultPoll, "sharded mode: idle re-scan and completion-wait interval")
		dieAfterF = flag.Int("die-after", 0, "TESTING: worker exits holding an unreleased lease after completing this many points (crash-recovery drills)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	grid := sweepGrid{apps: splitApps(*appsFlag), insts: *insts, technique: engine.TechniqueKind(*techFlag), pdn: *pdnFlag}
	if !validKind(grid.technique) {
		fatal(fmt.Errorf("-technique: unknown kind %q (valid: %s)", *techFlag, kindList()))
	}
	if !validNetKind(grid.pdn) {
		fatal(fmt.Errorf("-pdn: unknown network kind %q (valid: %s)", *pdnFlag, netKindList()))
	}
	if grid.initials, err = parseInts(*initials); err != nil {
		fatal(fmt.Errorf("-initial: %w", err))
	}
	if grid.thresholds, err = parseInts(*thresh); err != nil {
		fatal(fmt.Errorf("-threshold: %w", err))
	}
	if grid.seconds, err = parseInts(*secondMin); err != nil {
		fatal(fmt.Errorf("-second: %w", err))
	}

	if *workerF && *coordF {
		fatal(fmt.Errorf("-worker and -coordinate are mutually exclusive"))
	}
	if (*workerF || *coordF) && *cacheDir == "" {
		fatal(fmt.Errorf("sharded modes require -cache-dir: the shared directory is the coordination substrate"))
	}

	if *traceMB != 0 {
		workload.SharedTraces().SetBudget(*traceMB << 20)
	}
	eng := engine.New(engine.Options{Parallelism: *parallel, DiskCacheDir: *cacheDir, DiskCacheGC: *cacheGC})
	sh := shardOpts{
		cacheDir:    *cacheDir,
		workers:     *workersF,
		leaseExpiry: *leaseF,
		poll:        *pollF,
		parallel:    *parallel,
		traceMB:     *traceMB,
		progress:    *progressF,
		dieAfter:    *dieAfterF,
	}

	if *workerF {
		_, err := workerMain(context.Background(), eng, sh)
		printStats(eng)
		if errors.Is(err, shard.ErrAbandoned) {
			stopProfiles()
			os.Exit(3)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *coordF {
		if err := coordinate(context.Background(), eng, grid, w, sh); err != nil {
			fatal(err)
		}
	} else {
		m := newMeter(os.Stderr, len(grid.apps)+len(grid.points()), *progressF)
		if err := runSweep(context.Background(), eng, grid, w, m); err != nil {
			fatal(err)
		}
		m.finish()
	}
	printStats(eng)
}

// printStats emits the end-of-run cache/trace accounting lines every
// driver in the repo shares (the sharded smoke test greps sim_misses
// off the coordinator's merge to prove nothing re-simulated).
func printStats(eng *engine.Engine) {
	cs := eng.CacheStats()
	ts := workload.SharedTraces().Stats()
	fmt.Fprintf(os.Stderr, "cache-stats: mem_hits=%d disk_hits=%d sim_misses=%d disk_writes=%d entries=%d\n",
		cs.Hits, cs.DiskHits, cs.Misses, cs.DiskWrites, cs.Entries)
	fmt.Fprintf(os.Stderr, "trace-stats: built=%d reused=%d bypassed=%d evicted=%d resident_mb=%.1f\n",
		ts.Builds, ts.Hits, ts.Bypasses, ts.Evictions, float64(ts.Bytes)/(1<<20))
}

// kindList renders every registered technique kind for usage and error
// text.
func kindList() string {
	ks := engine.Kinds()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = string(k)
	}
	return strings.Join(out, ", ")
}

// validKind reports whether the kind is registered ("" means the default
// tuning sweep).
func validKind(kind engine.TechniqueKind) bool {
	if kind == "" {
		return true
	}
	for _, k := range engine.Kinds() {
		if k == kind {
			return true
		}
	}
	return false
}

// netKindList renders every registered network kind for usage and error
// text.
func netKindList() string {
	return strings.Join(circuit.NetworkKinds(), ", ")
}

// validNetKind reports whether the PDN kind is registered ("" keeps each
// spec's default supply).
func validNetKind(kind string) bool {
	if kind == "" {
		return true
	}
	for _, k := range circuit.NetworkKinds() {
		if k == kind {
			return true
		}
	}
	return false
}

// sweepGrid is the cross product the sweep explores.
type sweepGrid struct {
	apps  []string
	insts uint64
	// technique is the registered kind each grid point runs; empty
	// means TechniqueTuning. The initials/thresholds/seconds axes
	// parameterise tuning only — any other kind runs its default
	// configuration, collapsing the grid to one point per app.
	technique engine.TechniqueKind
	// pdn selects the registered power-delivery-network kind every run
	// (baselines included) simulates; empty keeps the default lumped
	// supply.
	pdn        string
	initials   []int
	thresholds []int
	seconds    []int
}

// pdnConfig returns the grid's network selector, nil when defaulted.
func (g sweepGrid) pdnConfig() *circuit.NetworkConfig {
	if g.pdn == "" {
		return nil
	}
	return &circuit.NetworkConfig{Kind: g.pdn}
}

// tunes reports whether the grid sweeps tuning configurations (the axes
// apply) as opposed to running another registered kind at its defaults.
func (g sweepGrid) tunes() bool {
	return g.technique == "" || g.technique == engine.TechniqueTuning
}

// gridPoint is one tuned configuration of the grid, remembering which
// baseline its relatives are computed against.
type gridPoint struct {
	appIdx              int
	app                 string
	technique           engine.TechniqueKind
	pdn                 string
	initial, th, second int
}

// points enumerates the grid in stable app-major order — the CSV row
// order, regardless of completion order.
func (g sweepGrid) points() []gridPoint {
	initials, thresholds, seconds := g.initials, g.thresholds, g.seconds
	if !g.tunes() {
		// The tuning axes do not parameterise other techniques; one
		// default-configuration point per app.
		initials, thresholds, seconds = []int{0}, []int{0}, []int{0}
	}
	var pts []gridPoint
	for ai, app := range g.apps {
		for _, initial := range initials {
			for _, th := range thresholds {
				for _, second := range seconds {
					pts = append(pts, gridPoint{
						appIdx: ai, app: app, technique: g.technique, pdn: g.pdn,
						initial: initial, th: th, second: second,
					})
				}
			}
		}
	}
	return pts
}

// spec builds the controlled run of one grid point.
func (p gridPoint) spec(insts uint64) engine.Spec {
	kind := p.technique
	if kind == "" {
		kind = engine.TechniqueTuning
	}
	s := engine.Spec{App: p.app, Instructions: insts, Technique: kind}
	if p.pdn != "" {
		s.PDN = &circuit.NetworkConfig{Kind: p.pdn}
	}
	if kind == engine.TechniqueTuning {
		cfg := resonance.DefaultTuningConfig(p.initial)
		cfg.InitialResponseThreshold = p.th
		if cfg.SecondResponseThreshold <= p.th {
			cfg.SecondResponseThreshold = p.th + 1
		}
		cfg.SecondResponseCycles = p.second
		s.Tuning = &cfg
	}
	return s
}

const csvHeader = "app,initial_cycles,initial_threshold,second_cycles,slowdown,rel_energy,rel_energy_delay,base_violations,violations"

// runSweep executes the grid through eng and streams CSV rows to w as
// points complete, preserving grid order. Engine errors carry the
// coordinates of the failing point. m (nil = silent) ticks once per
// completed point, baselines included.
func runSweep(ctx context.Context, eng *engine.Engine, g sweepGrid, w io.Writer, m *meter) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}

	// Per-app baselines are ordinary engine runs: cached, so later
	// sweeps (or other drivers sharing the engine) reuse them for free.
	bases, err := eng.RunAll(ctx, baseSpecs(g), func(int, sim.Result) { m.add(1) })
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}

	pts := g.points()
	ep := make([]engine.Point, len(pts))
	for i, p := range pts {
		label := fmt.Sprintf("app=%s initial=%d threshold=%d second=%d", p.app, p.initial, p.th, p.second)
		if !g.tunes() {
			label = fmt.Sprintf("app=%s technique=%s", p.app, p.technique)
		}
		if p.pdn != "" {
			label += " pdn=" + p.pdn
		}
		ep[i] = engine.Point{Label: label, Spec: p.spec(g.insts)}
	}

	// The progress callback is serialized by the engine; buffer rows
	// that finish early and flush the contiguous prefix in grid order.
	rows := make([]string, len(pts))
	done := make([]bool, len(pts))
	next := 0
	var werr error
	_, err = eng.Grid(ctx, ep, func(i int, res sim.Result) {
		p := pts[i]
		base := bases[p.appIdx]
		slow := float64(res.Cycles) / float64(base.Cycles)
		energy := res.EnergyJ / base.EnergyJ
		rows[i] = fmt.Sprintf("%s,%d,%d,%d,%.4f,%.4f,%.4f,%d,%d\n",
			p.app, p.initial, p.th, p.second, slow, energy, slow*energy,
			base.Violations, res.Violations)
		m.add(1)
		done[i] = true
		for next < len(pts) && done[next] {
			if _, err := io.WriteString(w, rows[next]); err != nil && werr == nil {
				werr = err
			}
			rows[next] = ""
			next++
		}
	})
	if err != nil {
		return err
	}
	return werr
}

// splitApps splits and trims the -apps list.
func splitApps(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(part))
	}
	return out
}

// parseInts splits a comma-separated integer list, rejecting junk.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
