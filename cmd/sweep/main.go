// Command sweep explores the resonance-tuning design space on a chosen
// set of applications: a grid over initial response time, initial
// response threshold, and second-level hold, reporting slowdown,
// energy-delay, and residual violations per point as CSV.
//
// Usage:
//
//	sweep                                   # default grid on the heavy violators
//	sweep -apps lucas,swim -insts 500000
//	sweep -initial 50,100,200 -threshold 1,2 -o grid.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		appsFlag  = flag.String("apps", "lucas,swim,bzip,parser", "comma-separated application names")
		insts     = flag.Uint64("insts", 300_000, "instructions per run")
		initials  = flag.String("initial", "75,100,150,200", "initial response times (cycles)")
		thresh    = flag.String("threshold", "1,2", "initial response thresholds (event count)")
		secondMin = flag.String("second", "35", "second-level hold times (cycles)")
		out       = flag.String("o", "", "write CSV to this file instead of stdout")
	)
	flag.Parse()

	apps := strings.Split(*appsFlag, ",")
	initialList := parseInts(*initials)
	threshList := parseInts(*thresh)
	secondList := parseInts(*secondMin)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintln(w, "app,initial_cycles,initial_threshold,second_cycles,slowdown,rel_energy,rel_energy_delay,base_violations,violations")

	for _, app := range apps {
		app = strings.TrimSpace(app)
		base, err := resonance.Simulate(resonance.SimulationSpec{App: app, Instructions: *insts})
		if err != nil {
			fatal(err)
		}
		for _, initial := range initialList {
			for _, th := range threshList {
				for _, second := range secondList {
					cfg := resonance.DefaultTuningConfig(initial)
					cfg.InitialResponseThreshold = th
					if cfg.SecondResponseThreshold <= th {
						cfg.SecondResponseThreshold = th + 1
					}
					cfg.SecondResponseCycles = second
					res, err := resonance.Simulate(resonance.SimulationSpec{
						App: app, Instructions: *insts,
						Technique: resonance.TechniqueTuning, Tuning: &cfg,
					})
					if err != nil {
						fatal(err)
					}
					slow := float64(res.Cycles) / float64(base.Cycles)
					energy := res.EnergyJ / base.EnergyJ
					fmt.Fprintf(w, "%s,%d,%d,%d,%.4f,%.4f,%.4f,%d,%d\n",
						app, initial, th, second, slow, energy, slow*energy,
						base.Violations, res.Violations)
				}
			}
		}
	}
}

// parseInts splits a comma-separated integer list.
func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad integer %q: %w", part, err))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
