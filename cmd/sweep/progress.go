package main

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// meter prints sweep progress — points done/total, completion rate,
// and ETA — to w, rate-limited to one line per second so a multi-hour
// sharded run logs hundreds of lines, not millions. A nil *meter is
// valid and silent, so call sites never branch on whether -progress is
// set.
type meter struct {
	mu    sync.Mutex
	w     io.Writer
	total int
	done  int
	start time.Time
	last  time.Time
}

// newMeter returns a live meter, or nil (silent) when disabled.
func newMeter(w io.Writer, total int, enabled bool) *meter {
	if !enabled {
		return nil
	}
	return &meter{w: w, total: total, start: time.Now()}
}

// add records n more completed points.
func (m *meter) add(n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.done += n
	m.maybePrint(false)
	m.mu.Unlock()
}

// set records the absolute completed count (the coordinator's poll
// reads grid-wide completion off the shared cache, which can also
// regress transiently on a read error — keep the max).
func (m *meter) set(done int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if done > m.done {
		m.done = done
	}
	m.maybePrint(false)
	m.mu.Unlock()
}

// finish forces a final line so the last state is always visible.
func (m *meter) finish() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.maybePrint(true)
	m.mu.Unlock()
}

// maybePrint emits one progress line, at most once a second unless
// forced. Caller holds mu.
func (m *meter) maybePrint(force bool) {
	now := time.Now()
	if !force && now.Sub(m.last) < time.Second {
		return
	}
	m.last = now
	elapsed := now.Sub(m.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(m.done) / elapsed
	}
	eta := "?"
	switch {
	case m.done >= m.total:
		eta = "0s"
	case rate > 0:
		eta = (time.Duration(float64(m.total-m.done)/rate*float64(time.Second))).Round(time.Second).String()
	}
	pct := 0.0
	if m.total > 0 {
		pct = 100 * float64(m.done) / float64(m.total)
	}
	fmt.Fprintf(m.w, "progress: %d/%d points (%.1f%%) %.1f pt/s eta %s\n", m.done, m.total, pct, rate, eta)
}
