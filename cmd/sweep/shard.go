// Sharded sweep: -coordinate publishes the grid manifest into the
// shared cache directory, forks local -workers, waits for every point
// to land in the disk cache, and then emits the CSV by running the
// ordinary sweep over the now-warm cache — byte-identical to a
// single-process run because it *is* the single-process run, served
// entirely from disk hits. -worker joins any grid published to the
// directory (local or on a shared filesystem) and claims points until
// the grid completes. Crash recovery and work stealing live in
// internal/shard.
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/shard"
)

// shardOpts carries the sharded-mode flag values.
type shardOpts struct {
	cacheDir    string
	workers     int
	leaseExpiry time.Duration
	poll        time.Duration
	parallel    int
	traceMB     int64
	progress    bool
	dieAfter    int
}

// baseSpecs builds the per-app baseline runs the grid's relative
// columns are computed against; they are ordinary engine runs and
// ordinary sharded points.
func baseSpecs(g sweepGrid) []engine.Spec {
	specs := make([]engine.Spec, len(g.apps))
	for i, app := range g.apps {
		specs[i] = engine.Spec{App: app, Instructions: g.insts, PDN: g.pdnConfig()}
	}
	return specs
}

// shardSpecs flattens the sweep's full work list — per-app baselines
// first, then every grid point in stable grid order — into the
// manifest's point set.
func shardSpecs(g sweepGrid) []engine.Spec {
	specs := baseSpecs(g)
	for _, p := range g.points() {
		specs = append(specs, p.spec(g.insts))
	}
	return specs
}

// workerMain runs the worker mode: open the directory's active grid
// (waiting for a coordinator to publish one if necessary) and claim
// points until the grid is complete everywhere.
func workerMain(ctx context.Context, eng *engine.Engine, o shardOpts) (shard.WorkerStats, error) {
	b, err := shard.Open(ctx, o.cacheDir, o.poll)
	if err != nil {
		return shard.WorkerStats{}, err
	}
	m := newMeter(os.Stderr, len(b.Keys), o.progress)
	st, err := shard.RunWorker(ctx, eng, b, shard.WorkerOptions{
		LeaseExpiry: o.leaseExpiry,
		Poll:        o.poll,
		DieAfter:    o.dieAfter,
		Log:         os.Stderr,
		OnPoint:     func() { m.add(1) },
	})
	m.finish()
	fmt.Fprintf(os.Stderr, "shard-stats: grid=%s completed=%d stolen=%d batches=%d\n",
		b.GridID, st.Completed, st.Stolen, st.Batches)
	return st, err
}

// coordinate runs the coordinator mode: publish the manifest, fork
// local workers, wait for grid completion, then merge by running the
// ordinary sweep against the warm shared cache. When every local
// worker exits before the grid completes (all crashed, or -workers 0
// with no remote help), the merge pass itself finishes the stragglers
// in-process — the output is byte-identical either way, only the
// wall-clock story differs.
func coordinate(ctx context.Context, eng *engine.Engine, g sweepGrid, w io.Writer, o shardOpts) error {
	specs := shardSpecs(g)
	b, err := shard.Publish(o.cacheDir, specs)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "coordinator: published grid %s (%d points) to %s\n",
		b.GridID, len(specs), shard.Dir(o.cacheDir))

	exited, err := startWorkers(o)
	if err != nil {
		return err
	}
	m := newMeter(os.Stderr, len(specs), o.progress)
	complete, err := b.Wait(ctx, o.poll, exited, func(done, total int) { m.set(done) })
	if err != nil {
		return err
	}
	m.finish()
	if !complete {
		fmt.Fprintf(os.Stderr, "coordinator: workers exited with %d/%d points finished; completing stragglers in-process\n",
			b.DoneCount(), len(specs))
	} else if exited != nil {
		// Reap the forked workers before merging: they observe grid
		// completion within one poll and exit, and waiting keeps their
		// final stats lines ahead of the merge's in the shared stderr.
		<-exited
	}
	return runSweep(ctx, eng, g, w, nil)
}

// startWorkers forks o.workers local worker processes (this binary
// with -worker) against the shared cache directory and returns a
// channel closed when the last of them exits — or a nil channel
// (blocks forever) when no local workers were requested and remote
// workers sharing the directory are expected to finish the grid. A
// worker's exit status is not fatal to the coordinator: a crashed
// worker's leases expire and its points are stolen, which is the
// protocol working, not an error.
func startWorkers(o shardOpts) (<-chan struct{}, error) {
	if o.workers <= 0 {
		return nil, nil
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("coordinator: cannot locate own binary to fork workers: %w", err)
	}
	args := []string{
		"-worker",
		"-cache-dir", o.cacheDir,
		"-lease-expiry", o.leaseExpiry.String(),
		"-shard-poll", o.poll.String(),
	}
	if o.parallel > 0 {
		args = append(args, "-parallel", strconv.Itoa(o.parallel))
	}
	if o.traceMB != 0 {
		args = append(args, "-trace-budget-mb", strconv.FormatInt(o.traceMB, 10))
	}
	cmds := make([]*exec.Cmd, o.workers)
	for i := range cmds {
		cmd := exec.Command(exe, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("coordinator: start worker %d: %w", i, err)
		}
		cmds[i] = cmd
	}
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		for i, cmd := range cmds {
			if err := cmd.Wait(); err != nil {
				fmt.Fprintf(os.Stderr, "coordinator: worker %d exited: %v (its points will be stolen or merged in-process)\n", i, err)
			}
		}
	}()
	return ch, nil
}
