package main

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/shard"
)

// runShardedSweep publishes g into cacheDir, runs workers in-process
// worker goroutines (each with its own engine, sharing only the cache
// directory — the multi-process topology), waits for completion, and
// merges by running the ordinary sweep over the warm cache. It returns
// the merged CSV and the merge engine's stats.
func runShardedSweep(t testing.TB, g sweepGrid, cacheDir string, workers int) (string, engine.CacheStats) {
	t.Helper()
	b, err := shard.Publish(cacheDir, shardSpecs(g))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := engine.New(engine.Options{DiskCacheDir: cacheDir, Parallelism: 2})
			_, errs[i] = shard.RunWorker(context.Background(), eng, b, shard.WorkerOptions{
				Poll: 2 * time.Millisecond,
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if complete, err := b.Wait(context.Background(), time.Millisecond, nil, nil); err != nil || !complete {
		t.Fatalf("grid incomplete after workers returned: %v, %v", complete, err)
	}

	merge := engine.New(engine.Options{DiskCacheDir: cacheDir})
	var out bytes.Buffer
	if err := runSweep(context.Background(), merge, g, &out, nil); err != nil {
		t.Fatal(err)
	}
	return out.String(), merge.CacheStats()
}

// TestShardedSweepMatchesSerial: the merged output of a sharded run —
// two workers racing over a shared cache directory — is byte-identical
// to the seed's serial loop, and the merge pass simulates nothing (it
// is pure disk hits, which is the whole byte-identity argument).
func TestShardedSweepMatchesSerial(t *testing.T) {
	g := tinyGrid()
	var want bytes.Buffer
	if err := serialSweep(g, &want); err != nil {
		t.Fatal(err)
	}
	got, st := runShardedSweep(t, g, t.TempDir(), 2)
	if got != want.String() {
		t.Errorf("sharded sweep diverged from serial reference:\n--- serial ---\n%s--- sharded ---\n%s", want.String(), got)
	}
	if st.Misses != 0 {
		t.Errorf("merge pass simulated %d points; every point must come off the shared cache", st.Misses)
	}
	wantPoints := uint64(len(shardSpecs(g)))
	if st.DiskHits != wantPoints {
		t.Errorf("merge pass took %d disk hits, want %d", st.DiskHits, wantPoints)
	}
}

// TestShardedSweepCrashRecovery: a worker that dies holding a lease
// does not change the merged bytes — the abandoned point is stolen,
// finished by the surviving worker, and the merged CSV still matches
// the serial reference exactly.
func TestShardedSweepCrashRecovery(t *testing.T) {
	g := tinyGrid()
	dir := t.TempDir()
	b, err := shard.Publish(dir, shardSpecs(g))
	if err != nil {
		t.Fatal(err)
	}

	_, err = shard.RunWorker(context.Background(),
		engine.New(engine.Options{DiskCacheDir: dir, Parallelism: 2}), b,
		shard.WorkerOptions{ID: "victim", Batch: 1, Poll: 2 * time.Millisecond, DieAfter: 1})
	if !errors.Is(err, shard.ErrAbandoned) {
		t.Fatalf("DieAfter worker returned %v, want ErrAbandoned", err)
	}
	if b.Complete() {
		t.Fatal("grid complete despite the crash — nothing to recover")
	}

	rescue, err := shard.RunWorker(context.Background(),
		engine.New(engine.Options{DiskCacheDir: dir, Parallelism: 2}), b,
		shard.WorkerOptions{ID: "rescuer", Poll: 2 * time.Millisecond, LeaseExpiry: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rescue.Stolen < 1 {
		t.Errorf("rescuer stats %+v: the abandoned lease was never stolen", rescue)
	}

	merge := engine.New(engine.Options{DiskCacheDir: dir})
	var got bytes.Buffer
	if err := runSweep(context.Background(), merge, g, &got, nil); err != nil {
		t.Fatal(err)
	}
	if st := merge.CacheStats(); st.Misses != 0 {
		t.Errorf("merge after crash recovery simulated %d points, want 0", st.Misses)
	}
	var want bytes.Buffer
	if err := serialSweep(g, &want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("crash-recovered sweep diverged from serial reference:\n--- serial ---\n%s--- recovered ---\n%s", want.String(), got.String())
	}
}

// BenchmarkSweepSharded measures the full sharded path — publish, two
// workers over a cold shared cache, completion wait, disk-served merge
// — on the same grid shape as the serial and engine benchmarks, so the
// three numbers in BENCH_sim.json compare like for like.
func BenchmarkSweepSharded(b *testing.B) {
	g := benchGrid()
	for i := 0; i < b.N; i++ {
		out, st := runShardedSweep(b, g, b.TempDir(), 2)
		if st.Misses != 0 {
			b.Fatalf("merge pass simulated %d points", st.Misses)
		}
		if len(out) == 0 {
			b.Fatal("empty sharded sweep output")
		}
	}
}
