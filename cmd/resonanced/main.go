// Command resonanced serves the simulation engine over HTTP: the
// sim-as-a-service front-end for every driver that wants results
// without linking the simulator.
//
// POST /v1/run accepts one spec or a grid as JSON and streams NDJSON
// results in spec order as they complete; identical in-flight requests
// from any number of connections coalesce onto one simulation through
// the engine's entry/waiter singleflight. GET /metrics exposes the
// cache tiers, queue depth, and per-endpoint latency histograms in
// Prometheus text format. SIGTERM (or Ctrl-C) drains gracefully:
// in-flight requests finish, bounded by -drain-timeout.
//
// Usage:
//
//	resonanced                               # listen on :8080
//	resonanced -addr :9090 -parallel 4
//	resonanced -cache-dir /var/cache/resonance -cache-gc
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "persistent result-cache directory shared across restarts")
		cacheGC  = flag.Bool("cache-gc", false, "sweep the cache directory at startup, removing old-schema and corrupt entries")
		traceMB  = flag.Int64("trace-budget-mb", 0, "workload trace store budget in MiB (0 = 1024)")
		maxSpecs = flag.Int("max-specs", server.DefaultMaxSpecs, "largest grid accepted in one request")
		drain    = flag.Duration("drain-timeout", 30*time.Second, "bound on graceful drain after SIGTERM")
	)
	flag.Parse()

	if *traceMB != 0 {
		workload.SharedTraces().SetBudget(*traceMB << 20)
	}
	eng := engine.New(engine.Options{
		Parallelism:  *parallel,
		DiskCacheDir: *cacheDir,
		DiskCacheGC:  *cacheGC,
	})
	if *cacheGC && *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "resonanced: cache gc removed %d stale files\n", eng.CacheStats().DiskGCRemoved)
	}

	srv := server.New(server.Options{Engine: eng, MaxSpecs: *maxSpecs})
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Listen explicitly so ":0" reports the port it actually bound —
	// the smoke tests and local runs parse this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "resonanced: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "resonanced: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "resonanced: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining

	fmt.Fprintf(os.Stderr, "resonanced: draining (up to %s)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "resonanced: drain overran: %v\n", err)
		httpSrv.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "resonanced: %v\n", err)
	}

	cs := eng.CacheStats()
	fmt.Fprintf(os.Stderr, "cache-stats: mem_hits=%d disk_hits=%d sim_misses=%d disk_writes=%d entries=%d\n",
		cs.Hits, cs.DiskHits, cs.Misses, cs.DiskWrites, cs.Entries)
	fmt.Fprintln(os.Stderr, "resonanced: drained")
}
