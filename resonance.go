// Package resonance is a Go reproduction of "Exploiting Resonant Behavior
// to Reduce Inductive Noise" (Powell & Vijaykumar, ISCA 2004).
//
// Inductive (di/dt) noise turns processor current variation into
// supply-voltage glitches through the power-distribution network's
// impedance, which peaks at RLC resonant frequencies. Only repeated
// current variations inside the resonance band build up to noise-margin
// violations; the paper's technique, resonance tuning, detects such
// nascent resonance by counting chained resonant events in the sensed
// core current and then moves the frequency of current variations out of
// the band with a gentle two-tier pipeline response.
//
// This package is the public face of the reproduction. It exposes:
//
//   - the second-order power-supply model and its calibration
//     (resonant frequency, quality factor, resonance band, resonant
//     current variation threshold, maximum repetition tolerance);
//   - a cycle-level 8-wide out-of-order processor with a Wattch-style
//     power model and the Table 1 design point;
//   - synthetic models of the 26 SPEC2K applications of Table 2;
//   - resonance tuning plus the two prior techniques the paper compares
//     against (voltage-threshold control [10] and pipeline damping [14]);
//   - runners that regenerate every table and figure of the paper's
//     evaluation.
//
// Quick start:
//
//	res, err := resonance.Simulate(resonance.SimulationSpec{App: "parser"})
//	rep, err := resonance.RunExperiment("table3", resonance.Options{})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// versus published numbers.
package resonance

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/baselines/convctl"
	"repro/internal/baselines/damping"
	"repro/internal/baselines/voltctl"
	"repro/internal/baselines/wavelet"
	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/trace"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// Core simulation types, re-exported for callers.
type (
	// SupplyParams describes the RLC power-distribution network.
	SupplyParams = circuit.Params
	// SupplyCalibration holds the Section 2.1.3 design-time values.
	SupplyCalibration = circuit.Calibration
	// CPUConfig holds the processor's structural parameters.
	CPUConfig = cpu.Config
	// PowerConfig holds the electrical envelope (Vdd, peak/idle power).
	PowerConfig = power.Config
	// SimConfig assembles a full system.
	SimConfig = sim.Config
	// Result summarises one application run.
	Result = sim.Result
	// TracePoint is one cycle of a captured waveform.
	TracePoint = sim.TracePoint
	// TuningConfig parameterises resonance tuning.
	TuningConfig = tuning.Config
	// VoltageControlConfig parameterises the technique of [10].
	VoltageControlConfig = voltctl.Config
	// DampingConfig parameterises pipeline damping [14].
	DampingConfig = damping.Config
	// ConvolutionConfig parameterises the convolution predictor [8].
	ConvolutionConfig = convctl.Config
	// WaveletConfig parameterises the Haar-wavelet detector [11].
	WaveletConfig = wavelet.Config
	// DualBandConfig parameterises dual-band resonance tuning (§2.2).
	DualBandConfig = engine.DualBandConfig
	// NetworkConfig selects which power-distribution network a run
	// simulates (lumped RLC, two-stage, or multi-domain).
	NetworkConfig = circuit.NetworkConfig
	// MultiDomainParams describes a multi-domain PDN stack: per-domain
	// die networks under shared package and board tiers.
	MultiDomainParams = circuit.MultiDomainParams
	// DomainTuningConfig parameterises per-domain resonance tuning (one
	// controller per supply domain).
	DomainTuningConfig = engine.DomainTuningConfig
	// App is one synthetic SPEC2K application model.
	App = workload.App
	// Options tunes experiment execution.
	Options = experiments.Options
	// Report is an experiment's outcome.
	Report = experiments.Report
	// Experiment couples an identifier with its runner.
	Experiment = experiments.Experiment
)

// Table1Supply returns the paper's evaluated power supply (Table 1):
// 1.0 V, 10 GHz, 105/35 A, R = 375 µΩ, L = 1.69 pH, C = 1500 nF.
func Table1Supply() SupplyParams { return circuit.Table1() }

// Section2Supply returns the present-day package example of Section 2.1.
func Section2Supply() SupplyParams { return circuit.Section2Example() }

// Table1System returns the full Table 1 simulation configuration.
func Table1System() SimConfig { return sim.DefaultConfig() }

// CalibrateSupply runs the Section 2.1.3 procedure: it determines the
// resonant current variation threshold, the band-edge tolerance, and the
// maximum repetition tolerance by stimulating the simulated supply.
func CalibrateSupply(p SupplyParams) (SupplyCalibration, error) {
	return circuit.Calibrate(p)
}

// Apps returns the 26 synthetic SPEC2K application models in Table 2
// order.
func Apps() []App { return workload.Apps() }

// AppByName returns one application model.
func AppByName(name string) (App, error) { return workload.ByName(name) }

// TechniqueKind selects an inductive-noise control scheme.
type TechniqueKind = engine.TechniqueKind

// Available techniques.
const (
	// TechniqueNone runs the uncontrolled base processor.
	TechniqueNone = engine.TechniqueNone
	// TechniqueTuning is resonance tuning, the paper's contribution.
	TechniqueTuning = engine.TechniqueTuning
	// TechniqueVoltageControl is the voltage-threshold scheme of [10].
	TechniqueVoltageControl = engine.TechniqueVoltageControl
	// TechniqueDamping is pipeline damping [14].
	TechniqueDamping = engine.TechniqueDamping
	// TechniqueConvolution is the convolution-based predictor of [8].
	TechniqueConvolution = engine.TechniqueConvolution
	// TechniqueWavelet is the Haar-wavelet detector in the spirit of [11].
	TechniqueWavelet = engine.TechniqueWavelet
	// TechniqueDualBand is Section 2.2's dual-band resonance tuning.
	TechniqueDualBand = engine.TechniqueDualBand
	// TechniqueDomainTuning runs one resonance-tuning controller per
	// supply domain of a multi-domain PDN.
	TechniqueDomainTuning = engine.TechniqueDomainTuning
)

// TechniqueKinds returns every registered technique kind, in the
// registry's canonical order (base first, then the paper's technique,
// then the related-work baselines).
func TechniqueKinds() []TechniqueKind { return engine.Kinds() }

// SimulationSpec describes one run for Simulate. It is the engine's Spec:
// batch drivers hand the same value to Engine.RunAll / Engine.Grid to run
// many of them through the shared worker pool and result cache.
type SimulationSpec = engine.Spec

// Engine is the shared run-execution subsystem: a bounded worker pool
// plus a content-addressed result cache over SimulationSpecs. See
// internal/engine for the batch APIs (Run, RunAll, Grid).
type Engine = engine.Engine

// NewEngine returns an engine bounding concurrent simulations to
// parallelism (<= 0 means GOMAXPROCS). Drivers that share one engine
// share its cache: identical (app, technique, config) points — baselines
// especially — are simulated once per process.
func NewEngine(parallelism int) *Engine {
	return engine.New(engine.Options{Parallelism: parallelism})
}

// EngineOptions configures an Engine beyond its parallelism: a
// DiskCacheDir adds the persistent result-cache tier (one JSON file per
// spec content address, shared across processes), and DisableCache turns
// memoization off entirely.
type EngineOptions = engine.Options

// EngineCacheStats is an engine's tier-labelled cache traffic (memory
// hits, disk hits, simulations executed, disk writes).
type EngineCacheStats = engine.CacheStats

// NewEngineWithOptions returns an engine with full control over its
// options, e.g. a persistent disk cache tier:
//
//	eng := resonance.NewEngineWithOptions(resonance.EngineOptions{DiskCacheDir: "results/.cache"})
func NewEngineWithOptions(o EngineOptions) *Engine {
	return engine.New(o)
}

// WorkloadTraceStats is the shared trace store's traffic (materialized
// builds, replay hits, budget bypasses, evictions, resident bytes).
type WorkloadTraceStats = workload.TraceStats

// TraceStoreStats reports the process-wide trace store's counters. Every
// simulation routed through an Engine (or Simulate) draws its
// instruction stream from this store: each application's stream is
// materialized once and replayed everywhere.
func TraceStoreStats() WorkloadTraceStats { return workload.SharedTraces().Stats() }

// SetTraceStoreBudget bounds the resident bytes of the process-wide
// trace store (<= 0 restores the 1 GiB default). Streams that alone
// exceed the budget are generated live instead of materialized; results
// are bit-identical either way.
func SetTraceStoreBudget(bytes int64) { workload.SharedTraces().SetBudget(bytes) }

// DefaultTuningConfig returns the paper's evaluated resonance-tuning
// configuration (Section 5.2) with the given initial response time.
func DefaultTuningConfig(initialResponseCycles int) TuningConfig {
	return engine.DefaultTuningConfig(initialResponseCycles)
}

// Simulate runs one application under one technique on the Table 1 system
// and returns the run summary. It executes on the calling goroutine; use
// an Engine to run batches in parallel with caching.
func Simulate(spec SimulationSpec) (Result, error) {
	return engine.Execute(spec)
}

// Experiments lists every paper table/figure runner.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment regenerates one paper table or figure by id ("fig1c",
// "fig3", "fig4", "table2", "table3", "table4", "table5", "fig5",
// "ablations").
func RunExperiment(id string, opts Options) (Report, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return Report{}, err
	}
	return e.Run(opts)
}

// Figures renders an experiment report's structured data as standalone
// SVG documents keyed by file stem; experiments without a graphical form
// return an empty map.
func Figures(rep Report) map[string]string { return experiments.Figures(rep) }

// RecordWorkload serialises an application's instruction stream so it can
// be replayed (or inspected, or replaced with an external trace) later.
// It returns the number of instructions written.
func RecordWorkload(w io.Writer, appName string, instructions uint64) (uint32, error) {
	app, err := workload.ByName(appName)
	if err != nil {
		return 0, err
	}
	if instructions == 0 {
		instructions = 1_000_000
	}
	return trace.Write(w, workload.NewGenerator(app.Params, instructions))
}

// ReplayWorkload runs a previously recorded instruction stream on the
// Table 1 system under the given technique kind (empty = base machine).
func ReplayWorkload(r io.Reader, kind TechniqueKind) (Result, error) {
	rd, err := trace.Read(r)
	if err != nil {
		return Result{}, err
	}
	// The technique is constructed through the engine's registry — the
	// same defaulting, validation, and power-model envelope as Simulate —
	// so every registered kind (including the related-work baselines)
	// replays without a bespoke construction path here.
	tech, _, err := engine.BuildTechnique(engine.Spec{Technique: kind})
	if err != nil {
		return Result{}, err
	}
	s, err := sim.New(sim.DefaultConfig(), rd, tech)
	if err != nil {
		return Result{}, err
	}
	name := string(TechniqueNone)
	if tech != nil {
		name = tech.Name()
	}
	return s.Run("replayed-trace", name), nil
}

// HTMLReport renders a set of experiment reports as one self-contained
// HTML page with the text blocks and SVG figures inlined.
func HTMLReport(reps []Report) string { return experiments.HTMLReport(reps) }

// SpectrumSummary condenses a current-trace spectral analysis.
type SpectrumSummary struct {
	// TotalVarianceA2 is the trace variance in A².
	TotalVarianceA2 float64
	// BandPowerA2 is the variance inside the resonance band.
	BandPowerA2 float64
	// BandFraction is BandPowerA2 over the total variance.
	BandFraction float64
	// PeakPeriodCycles is the period of the strongest spectral bin.
	PeakPeriodCycles float64
}

// AnalyzeSpectrum Welch-analyses a per-cycle current trace against the
// Table 1 resonance band (84-119 cycles).
func AnalyzeSpectrum(currentTrace []float64) (SpectrumSummary, error) {
	supply := circuit.Table1()
	band := supply.ResonanceBandCycles()
	sp, err := spectrum.Analyze(currentTrace, supply.ClockHz, 10, 4*float64(band.Hi))
	if err != nil {
		return SpectrumSummary{}, err
	}
	return SpectrumSummary{
		TotalVarianceA2:  sp.TotalVariance,
		BandPowerA2:      sp.BandPower(float64(band.Lo), float64(band.Hi)),
		BandFraction:     sp.BandFraction(float64(band.Lo), float64(band.Hi)),
		PeakPeriodCycles: sp.Peak().PeriodCycles,
	}, nil
}

// TwoStageParams describes the Section 2.2 two-loop power-distribution
// network with both the low- and medium-frequency resonances.
type TwoStageParams = circuit.TwoStageParams

// TwoStageSupply returns the Table 1 design extended with a
// representative off-chip stage, placing the low-frequency peak near
// 4 MHz.
func TwoStageSupply() TwoStageParams { return circuit.Table1TwoStage() }

// TwoDomainPDN returns the Table 1 processor split into core and
// floating-point/memory supply domains under shared package and board
// tiers — the reference multi-domain power-distribution network. Select
// it for a run via SimulationSpec.PDN:
//
//	pdn := resonance.TwoDomainPDN()
//	spec.PDN = &resonance.NetworkConfig{Kind: "multidomain", MultiDomain: &pdn}
func TwoDomainPDN() MultiDomainParams { return circuit.Table1TwoDomain() }

// DefaultDomainTuningConfig derives the per-domain tuning configuration
// the domain-tuning technique uses when a spec leaves it unset: one
// controller per domain of the spec's PDN, each parameterised from its
// own domain's electrical constants.
func DefaultDomainTuningConfig(pdn *NetworkConfig, initialResponseCycles int) DomainTuningConfig {
	return engine.DefaultDomainTuningConfig(pdn, initialResponseCycles)
}

// AutoTuningConfig designs a resonance-tuning configuration for an
// arbitrary supply from first principles: it derives the detector band
// from the supply's resonance characteristics, measures the resonant
// current variation threshold and maximum repetition tolerance by
// simulation (Section 2.1.3), sizes the second-level hold from the
// damping rate, and applies the paper's response-threshold rules. The
// initialResponseCycles knob trades first-level effectiveness against
// performance exactly as Table 3 sweeps it.
func AutoTuningConfig(p SupplyParams, c CPUConfig, initialResponseCycles int) (TuningConfig, error) {
	cal, err := circuit.Calibrate(p)
	if err != nil {
		return TuningConfig{}, err
	}
	if cal.ThresholdAmps >= p.MaxCurrentSwing() {
		return TuningConfig{}, fmt.Errorf(
			"resonance: supply is overdesigned for this processor (threshold %g A ≥ max swing %g A); no tuning needed",
			cal.ThresholdAmps, p.MaxCurrentSwing())
	}
	cfg := tuning.FromSupply(p, cal, c, initialResponseCycles, (p.IMax+p.IMin)/2)
	if err := cfg.Validate(); err != nil {
		return TuningConfig{}, err
	}
	return cfg, nil
}

// EnergyShare is one row of an energy breakdown.
type EnergyShare struct {
	// Unit names the consumer ("floor", "phantom", or an architectural
	// unit such as "window" or "l1d").
	Unit string
	// Joules is the energy consumed; Percent its share of the total.
	Joules  float64
	Percent float64
}

// EnergyBreakdown re-runs the given simulation and reports where the
// energy went: the ungated clock floor, each architectural unit's dynamic
// share, and phantom operations, sorted by consumption.
func EnergyBreakdown(spec SimulationSpec) ([]EnergyShare, error) {
	app, err := workload.ByName(spec.App)
	if err != nil {
		return nil, err
	}
	insts := spec.Instructions
	if insts == 0 {
		insts = 1_000_000
	}
	cfg := sim.DefaultConfig()
	if spec.System != nil {
		cfg = *spec.System
	}
	gen := workload.NewGenerator(app.Params, insts)
	// Breakdown runs on the base machine plus whichever technique the
	// spec selects; reuse Simulate's construction path by running fresh
	// here with direct access to the power model.
	s, err := sim.New(cfg, gen, nil)
	if err != nil {
		return nil, err
	}
	res := s.Run(spec.App, "base")
	floorJ, unitJ := s.Power().Breakdown()

	total := res.EnergyJ
	rows := []EnergyShare{{Unit: "floor", Joules: floorJ}}
	for u := power.Unit(0); u < power.NumUnits; u++ {
		rows = append(rows, EnergyShare{Unit: u.String(), Joules: unitJ[u]})
	}
	if res.PhantomJ > 0 {
		rows = append(rows, EnergyShare{Unit: "phantom", Joules: res.PhantomJ})
	}
	for i := range rows {
		if total > 0 {
			rows[i].Percent = 100 * rows[i].Joules / total
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Joules > rows[j].Joules })
	return rows, nil
}

// ViolationReport describes one noise-margin violation burst and its
// context (warning lead time, response state, surrounding current swing).
type ViolationReport = sim.ViolationReport

// Postmortem runs the simulation described by spec with a violation
// analyser attached and returns the per-burst reports alongside the run
// summary. warningLevel is the resonant event count treated as advance
// warning (the paper's initial response threshold, 2); lookback bounds
// how far back warnings are attributed (a few resonant periods).
func Postmortem(spec SimulationSpec, warningLevel, lookback int) ([]ViolationReport, Result, error) {
	cfg := sim.DefaultConfig()
	if spec.System != nil {
		cfg = *spec.System
	}
	pm := sim.NewPostmortem(cfg.Supply.NoiseMarginVolts(), warningLevel, lookback)
	prev := spec.Trace
	spec.Trace = func(tp TracePoint) {
		pm.Observe(tp)
		if prev != nil {
			prev(tp)
		}
	}
	res, err := Simulate(spec)
	if err != nil {
		return nil, Result{}, err
	}
	return pm.Reports(), res, nil
}
