// Quickstart: characterise the paper's Table 1 power supply, run one
// SPEC2K application on the uncontrolled processor, then run it again
// under resonance tuning and compare.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. The power supply and its resonance characteristics.
	supply := resonance.Table1Supply()
	chars, err := supply.Characterize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 1 power supply:", chars)

	// 2. Design-time calibration (Section 2.1.3 of the paper).
	cal, err := resonance.CalibrateSupply(supply)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibration: threshold %g A, repetition tolerance %d\n\n",
		cal.ThresholdAmps, cal.MaxRepetitionTolerance)

	// 3. The uncontrolled machine: parser exhibits rare noise-margin
	// violations when its phase behaviour drifts into the resonance
	// band.
	base, err := resonance.Simulate(resonance.SimulationSpec{
		App:          "parser",
		Instructions: 500_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base:   IPC %.2f, %d violations (%.2e of cycles), %.4g J\n",
		base.IPC, base.Violations, base.ViolationFraction, base.EnergyJ)

	// 4. The same run under resonance tuning.
	tuned, err := resonance.Simulate(resonance.SimulationSpec{
		App:          "parser",
		Instructions: 500_000,
		Technique:    resonance.TechniqueTuning,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuning: IPC %.2f, %d violations (%.2e of cycles), %.4g J\n",
		tuned.IPC, tuned.Violations, tuned.ViolationFraction, tuned.EnergyJ)

	slow := float64(tuned.Cycles) / float64(base.Cycles)
	energy := tuned.EnergyJ / base.EnergyJ
	fmt.Printf("\nresonance tuning: %.1f%% slowdown, %.1f%% energy, %.1f%% energy-delay\n",
		(slow-1)*100, (energy-1)*100, (slow*energy-1)*100)
	if base.Violations > 0 {
		prevented := 100 * (1 - float64(tuned.Violations)/float64(base.Violations))
		fmt.Printf("violations prevented: %.0f%%\n", prevented)
	}
}
