// Power-supply design space: how the on-die decoupling capacitance and
// supply impedance move the resonant frequency, quality factor, resonance
// band, and — through the Section 2.1.3 calibration — the current
// variations the supply can absorb.
//
// This is the designer's view behind the paper's Section 2: technology
// scaling pushes R down and C up, keeping supplies underdamped; the
// question is where the resonance lands and how much repetition the
// supply tolerates before resonance tuning must intervene.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	base := resonance.Table1Supply()

	fmt.Println("== sweep: on-die decoupling capacitance (R, L fixed) ==")
	fmt.Println("C (nF)   f0 (MHz)  Q     band (cycles)  threshold (A)  tolerance")
	for _, cNF := range []float64{500, 1000, 1500, 2250, 3000} {
		p := base
		p.C = cNF * 1e-9
		describe(p, fmt.Sprintf("%-8.0f", cNF))
	}

	fmt.Println("\n== sweep: supply impedance R (C, L fixed) ==")
	fmt.Println("R (µΩ)   f0 (MHz)  Q     band (cycles)  threshold (A)  tolerance")
	for _, rMicro := range []float64{200, 375, 600, 900} {
		p := base
		p.R = rMicro * 1e-6
		describe(p, fmt.Sprintf("%-8.0f", rMicro))
	}

	fmt.Println("\nreading the table: larger C lowers the resonant frequency (more")
	fmt.Println("cycles per period — easier for an architectural technique to react),")
	fmt.Println("while smaller R raises Q, narrowing the band but storing resonant")
	fmt.Println("energy longer (higher repetition tolerance matters more).")
}

func describe(p resonance.SupplyParams, label string) {
	chars, err := p.Characterize()
	if err != nil {
		log.Fatal(err)
	}
	cal, err := resonance.CalibrateSupply(p)
	if err != nil {
		log.Fatal(err)
	}
	tol := "∞"
	if cal.MaxRepetitionTolerance < math.MaxInt32 {
		tol = fmt.Sprint(cal.MaxRepetitionTolerance)
	}
	thr := "safe"
	if cal.ThresholdAmps < p.MaxCurrentSwing() {
		thr = fmt.Sprintf("%.0f", cal.ThresholdAmps)
	}
	fmt.Printf("%s %-9.1f %-5.2f %3d-%-10d %-14s %s\n",
		label,
		chars.ResonantFrequencyHz/1e6,
		chars.Q,
		chars.BandCycles.Lo, chars.BandCycles.Hi,
		thr, tol)
}
