// Techniques: run one heavily violating application (lucas) under every
// inductive-noise control scheme and compare what each one costs and what
// it buys — the per-application view behind the paper's Figure 5.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const app = "lucas"
	const insts = 600_000

	kinds := []struct {
		kind  resonance.TechniqueKind
		label string
	}{
		{resonance.TechniqueNone, "base (uncontrolled)"},
		{resonance.TechniqueTuning, "resonance tuning (paper)"},
		{resonance.TechniqueVoltageControl, "voltage control [10] (20mV/10mV/5cyc)"},
		{resonance.TechniqueDamping, "pipeline damping [14] (δ=0.5×threshold)"},
	}

	var base resonance.Result
	fmt.Printf("%-40s %8s %10s %9s %8s %8s\n",
		"technique", "IPC", "violations", "slowdown", "energy", "ED")
	for i, k := range kinds {
		res, err := resonance.Simulate(resonance.SimulationSpec{
			App:          app,
			Instructions: insts,
			Technique:    k.kind,
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res
			fmt.Printf("%-40s %8.2f %10d %9s %8s %8s\n",
				k.label, res.IPC, res.Violations, "1.000", "1.000", "1.000")
			continue
		}
		slow := float64(res.Cycles) / float64(base.Cycles)
		energy := res.EnergyJ / base.EnergyJ
		fmt.Printf("%-40s %8.2f %10d %9.3f %8.3f %8.3f\n",
			k.label, res.IPC, res.Violations, slow, energy, slow*energy)
	}

	fmt.Println("\nthe paper's story in one table: resonance tuning removes the")
	fmt.Println("violations for a few percent of energy-delay; the magnitude-based")
	fmt.Println("techniques pay several times more because they react to variations")
	fmt.Println("that were never going to become violations.")
}
