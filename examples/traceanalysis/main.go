// Trace analysis: record an application's instruction stream once, replay
// the identical stream under different techniques, and analyse the current
// waveform's frequency content against the resonance band — the workflow a
// user with their own traces would follow.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
)

func main() {
	const app = "bzip"
	const insts = 400_000

	// 1. Record the stream once; replays are bit-identical, so the
	// techniques below compete on exactly the same instructions.
	var recorded bytes.Buffer
	n, err := resonance.RecordWorkload(&recorded, app, insts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d instructions of %s (%d bytes)\n\n", n, app, recorded.Len())

	// 2. Replay under each technique.
	for _, kind := range []resonance.TechniqueKind{
		resonance.TechniqueNone,
		resonance.TechniqueTuning,
		resonance.TechniqueDamping,
	} {
		res, err := resonance.ReplayWorkload(bytes.NewReader(recorded.Bytes()), kind)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %8d cycles  %5d violations  %.4g J\n",
			res.Technique, res.Cycles, res.Violations, res.EnergyJ)
	}

	// 3. Spectral view of the uncontrolled run: where does this app's
	// current variation live relative to the 84-119-cycle band?
	var trace []float64
	if _, err := resonance.Simulate(resonance.SimulationSpec{
		App: app, Instructions: insts,
		Trace: func(tp resonance.TracePoint) { trace = append(trace, tp.TotalAmps) },
	}); err != nil {
		log.Fatal(err)
	}
	sp, err := resonance.AnalyzeSpectrum(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspectrum: total variance %.1f A², in-band %.2f A² (%.1f%%), peak period %.0f cycles\n",
		sp.TotalVarianceA2, sp.BandPowerA2, 100*sp.BandFraction, sp.PeakPeriodCycles)
	fmt.Println("\na violating app concentrates measurable variance inside the band;")
	fmt.Println("re-run with a clean app (e.g. twolf) to see the contrast.")
}
