// Noise hunt: run an application with the violation postmortem attached
// and dissect every noise-margin violation burst — when it happened, how
// large the current swings were, how much advance warning the resonant
// event count gave, and whether a response was already active. This is
// the Figure 4 methodology as a reusable analysis.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const app = "swim"

	reports, res, err := resonance.Postmortem(resonance.SimulationSpec{
		App:          app,
		Instructions: 1_000_000,
		Technique:    resonance.TechniqueTuning,
	}, 2 /* warning at the initial response threshold */, 500)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s under resonance tuning: %d cycles, %d violations in %d bursts\n\n",
		app, res.Cycles, res.Violations, len(reports))

	for i, r := range reports {
		if i >= 8 {
			fmt.Printf("... and %d more bursts\n", len(reports)-i)
			break
		}
		warn := "no warning (faster than detection)"
		if r.WarningLeadCycles >= 0 {
			warn = fmt.Sprintf("count-2 warning %d cycles ahead", r.WarningLeadCycles)
		}
		resp := "no response active"
		if r.ResponseLevelAtStart > 0 {
			resp = fmt.Sprintf("level-%d response already engaged", r.ResponseLevelAtStart)
		}
		fmt.Printf("burst %d: cycles %d-%d, peak %.1f mV, swing %.0f A\n  %s; %s\n",
			i+1, r.StartCycle, r.EndCycle, r.PeakDeviationV*1000, r.SwingAmps, warn, resp)
	}

	if len(reports) == 0 {
		fmt.Println("no violations: resonance tuning kept every swing inside the margin.")
		fmt.Println("re-run with Technique: TechniqueNone to see the uncontrolled machine.")
		return
	}

	// The headline statistic: how often did the detector see it coming?
	warned := 0
	for _, r := range reports {
		if r.WarningLeadCycles >= 0 || r.ResponseLevelAtStart > 0 {
			warned++
		}
	}
	fmt.Printf("\n%d of %d residual bursts were warned or already under response —\n",
		warned, len(reports))
	fmt.Println("the few that slip through move faster than detection plus response,")
	fmt.Println("the race DESIGN.md §9 discusses.")
}
