package resonance

// One benchmark per paper table and figure (the regeneration targets the
// DESIGN.md experiment index references), plus micro-benchmarks of the
// substrates and the integrator ablation. The experiment benchmarks use a
// reduced per-application instruction budget so `go test -bench=.`
// completes in minutes; use cmd/experiments for full-budget runs.

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/engine/batchkernel"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// benchOpts is the reduced budget for whole-suite experiment benchmarks.
var benchOpts = Options{Instructions: 60_000}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := RunExperiment(id, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Text == "" {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkFig1cImpedance regenerates Figure 1(c).
func BenchmarkFig1cImpedance(b *testing.B) { benchExperiment(b, "fig1c") }

// BenchmarkFig3Stimulation regenerates Figure 3.
func BenchmarkFig3Stimulation(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4Parser regenerates Figure 4.
func BenchmarkFig4Parser(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Figure 4 needs enough instructions to catch a violation.
		if _, err := RunExperiment("fig4", Options{Instructions: 300_000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Classification regenerates Table 2.
func BenchmarkTable2Classification(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3ResonanceTuning regenerates Table 3. Each iteration
// uses a fresh private engine (results honestly re-simulated); the
// process-wide trace store still amortizes workload materialization, as
// it does across real invocations.
func BenchmarkTable3ResonanceTuning(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable3WarmDiskCache regenerates Table 3 against a warm disk
// cache: each iteration runs a fresh engine (cold memory tier) whose
// every spec is served from the persistent tier without simulating —
// the cost of a repeated CI golden run or sweep invocation.
func BenchmarkTable3WarmDiskCache(b *testing.B) {
	dir := b.TempDir()
	warm := func() *Engine {
		return NewEngineWithOptions(EngineOptions{DiskCacheDir: dir})
	}
	opts := Options{Instructions: benchOpts.Instructions, Engine: warm()}
	if _, err := RunExperiment("table3", opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := warm()
		rep, err := RunExperiment("table3", Options{Instructions: benchOpts.Instructions, Engine: eng})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Text == "" {
			b.Fatal("empty report")
		}
		if st := eng.CacheStats(); st.Misses != 0 {
			b.Fatalf("warm pass simulated %d specs, want 0", st.Misses)
		}
	}
}

// BenchmarkRelatedSuiteWarm runs the six-technique related-work
// comparison against a warm disk cache: each iteration gets a fresh
// engine (cold memory tier) and must replay all 28 runs (7 techniques ×
// 4 apps, now that the related runner goes through the engine) from the
// persistent tier without simulating.
func BenchmarkRelatedSuiteWarm(b *testing.B) {
	dir := b.TempDir()
	warm := func() *Engine {
		return NewEngineWithOptions(EngineOptions{DiskCacheDir: dir})
	}
	opts := Options{Instructions: benchOpts.Instructions, Engine: warm()}
	if _, err := RunExperiment("related", opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := warm()
		rep, err := RunExperiment("related", Options{Instructions: benchOpts.Instructions, Engine: eng})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Text == "" {
			b.Fatal("empty report")
		}
		if st := eng.CacheStats(); st.Misses != 0 {
			b.Fatalf("warm pass simulated %d specs, want 0", st.Misses)
		}
	}
}

// BenchmarkTable4VoltageControl regenerates Table 4.
func BenchmarkTable4VoltageControl(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5Damping regenerates Table 5.
func BenchmarkTable5Damping(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkFig5Comparison regenerates Figure 5.
func BenchmarkFig5Comparison(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkAblations runs the design-choice ablation suite.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablations") }

// ---- substrate micro-benchmarks ----

// BenchmarkCircuitStepHeun measures one Heun integration step.
func BenchmarkCircuitStepHeun(b *testing.B) {
	s := circuit.NewSimulator(circuit.Table1(), 70)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Step(70 + float64(i%30))
	}
}

// BenchmarkCircuitStepEuler measures one forward-Euler step (the
// integrator ablation's cheaper, less accurate baseline).
func BenchmarkCircuitStepEuler(b *testing.B) {
	s := circuit.NewSimulatorMethod(circuit.Table1(), 70, circuit.Euler)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Step(70 + float64(i%30))
	}
}

// BenchmarkDetectorStep measures one cycle of resonant-event detection
// with the Table 1 band (19 half-period adders).
func BenchmarkDetectorStep(b *testing.B) {
	det := tuning.NewDetector(tuning.DetectorConfig{
		HalfPeriodLo: 42, HalfPeriodHi: 60,
		ThresholdAmps: 32, MaxRepetitionTolerance: 4,
	})
	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		det.Step(w.At(i))
	}
}

// cyclingTrace replays a materialized trace endlessly, so open-ended
// benchmarks can draw unbounded instructions from a bounded trace.
type cyclingTrace struct{ src *cpu.TraceSource }

func (c cyclingTrace) Next() (cpu.Inst, bool) {
	in, ok := c.src.Next()
	if !ok {
		c.src.Reset()
		in, ok = c.src.Next()
	}
	return in, ok
}

// BenchmarkCoreStep measures one out-of-order pipeline cycle on a
// steady instruction mix, through the StepInto hot path the simulation
// loop uses. The core is fed from a materialized trace, as it is in
// engine runs, so the measurement is the pipeline itself rather than
// pipeline plus stream generation.
func BenchmarkCoreStep(b *testing.B) {
	app, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	src := cyclingTrace{workload.Materialize(app.Params, 1<<20).Source()}
	core := cpu.New(cpu.DefaultConfig(), src)
	var act cpu.Activity
	// The steady-state step must not allocate at all; without this guard
	// (and the ResetTimer below excluding trace materialization) the
	// setup's allocations amortize into a misleading non-zero B/op.
	if n := testing.AllocsPerRun(1000, func() {
		core.StepInto(cpu.Unlimited, &act)
	}); n != 0 {
		b.Fatalf("core step allocates %.1f times per cycle, want 0", n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.StepInto(cpu.Unlimited, &act)
	}
}

// BenchmarkPowerStep measures one power-model accounting cycle.
func BenchmarkPowerStep(b *testing.B) {
	m := power.New(power.DefaultConfig(), cpu.DefaultConfig())
	var act cpu.Activity
	act.Fetched, act.Dispatched, act.Committed = 8, 8, 8
	act.Issued[cpu.IntALU] = 6
	act.IssuedTotal = 6
	act.L1D = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Step(&act, 0)
	}
}

// BenchmarkPowerStepUnmemoized measures the same accounting cycle with
// the deposit memo bypassed (an activity field too wide for the memo
// key), isolating what the memoization in BenchmarkPowerStep saves.
func BenchmarkPowerStepUnmemoized(b *testing.B) {
	m := power.New(power.DefaultConfig(), cpu.DefaultConfig())
	var act cpu.Activity
	act.Fetched, act.Dispatched, act.Committed = 99, 8, 8 // 99 clamps to FetchWidth but defeats the memo key
	act.Issued[cpu.IntALU] = 6
	act.IssuedTotal = 6
	act.L1D = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Step(&act, 0)
	}
}

// BenchmarkStepCycle measures one fully coupled system cycle
// (core + power + supply + sensing + resonance tuning) — the unit every
// experiment's wall time is a multiple of.
func BenchmarkStepCycle(b *testing.B) {
	app, err := workload.ByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGenerator(app.Params, math.MaxUint64>>1)
	tech := sim.NewResonanceTuning(DefaultTuningConfig(100))
	s, err := sim.New(sim.DefaultConfig(), gen, tech)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.StepCycle()
	}
}

// BenchmarkMultiDomainStep measures one fully coupled system cycle on
// the two-domain PDN stack — core + per-domain current split + the
// coupled die/package/board integration + per-domain sensing + one
// tuning controller per rail — the multi-domain counterpart of
// BenchmarkStepCycle, and the unit the multidomain experiment's wall
// time is a multiple of.
func BenchmarkMultiDomainStep(b *testing.B) {
	app, err := workload.ByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGenerator(app.Params, math.MaxUint64>>1)
	pdn := circuit.Table1TwoDomain()
	cfg := sim.DefaultConfig()
	netCfg := circuit.NetworkConfig{Kind: circuit.NetworkMultiDomain, MultiDomain: &pdn}
	cfg.PDN = &netCfg
	dt := DefaultDomainTuningConfig(&netCfg, 100)
	s, err := sim.New(cfg, gen, sim.NewPerDomainTuning(dt.Domains))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.StepCycle()
	}
}

// BenchmarkBatchKernelLockstep measures the lockstep kernel stepping a
// full seven-lane group — base machine plus the six Table 3 resonance
// tuning variants — over a quiet application whose lanes never diverge:
// the batch packer's best case, one machine step serving seven
// simulations. Compare against 7× BenchmarkStepCycle-style scalar runs.
func BenchmarkBatchKernelLockstep(b *testing.B) {
	app, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	const insts = 60_000
	tr := workload.Materialize(app.Params, insts)
	inis := []int{75, 100, 125, 150, 200, 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := sim.NewMachine(sim.DefaultConfig(), tr.Source())
		if err != nil {
			b.Fatal(err)
		}
		lanes := make([]batchkernel.Lane, 1, 1+len(inis))
		for _, ini := range inis {
			cfg := DefaultTuningConfig(ini)
			lanes = append(lanes, batchkernel.Lane{Tech: sim.NewResonanceTuning(cfg)})
		}
		outs, _ := batchkernel.Run(m, "gzip", lanes)
		for j := range outs {
			if outs[j].Status == batchkernel.Failed {
				b.Fatalf("lane %d failed: %v", j, outs[j].Err)
			}
		}
	}
}

// BenchmarkBatchKernelForked measures the kernel on a loud application
// whose tuning lanes respond and diverge: the group decays into forked
// cohorts mid-run, so the cost includes machine deep-copies and the
// post-divergence scalar-speed suffixes — the packer's realistic case,
// against BenchmarkBatchKernelLockstep's never-diverge best case.
func BenchmarkBatchKernelForked(b *testing.B) {
	app, err := workload.ByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	const insts = 60_000
	tr := workload.Materialize(app.Params, insts)
	inis := []int{75, 100, 125, 150, 200, 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := sim.NewMachine(sim.DefaultConfig(), tr.Source())
		if err != nil {
			b.Fatal(err)
		}
		lanes := make([]batchkernel.Lane, 1, 1+len(inis))
		for _, ini := range inis {
			cfg := DefaultTuningConfig(ini)
			lanes = append(lanes, batchkernel.Lane{Tech: sim.NewResonanceTuning(cfg)})
		}
		outs, stats := batchkernel.Run(m, "swim", lanes)
		for j := range outs {
			if outs[j].Status != batchkernel.Finished {
				b.Fatalf("lane %d: %v: %v", j, outs[j].Status, outs[j].Err)
			}
		}
		if stats.LanesForked == 0 {
			b.Fatal("no lane forked; benchmark no longer measures divergence handling")
		}
	}
}

// BenchmarkCalibration measures the full Section 2.1.3 supply
// calibration.
func BenchmarkCalibration(b *testing.B) {
	p := circuit.Table1()
	for i := 0; i < b.N; i++ {
		if _, err := circuit.Calibrate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneratorNext measures live instruction-stream generation —
// the per-instruction cost the trace store pays once per application.
func BenchmarkGeneratorNext(b *testing.B) {
	app, err := workload.ByName("parser")
	if err != nil {
		b.Fatal(err)
	}
	g := workload.NewGenerator(app.Params, math.MaxUint64>>1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("stream ended")
		}
	}
}

// BenchmarkTraceSourceNext measures replay of a materialized trace —
// the per-instruction cost every run after the first pays instead.
func BenchmarkTraceSourceNext(b *testing.B) {
	app, err := workload.ByName("parser")
	if err != nil {
		b.Fatal(err)
	}
	src := cyclingTrace{workload.Materialize(app.Params, 1<<20).Source()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := src.Next(); !ok {
			b.Fatal("stream ended")
		}
	}
}
