package resonance

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTable1SupplyCharacteristics(t *testing.T) {
	p := Table1Supply()
	if math.Abs(p.ResonantFrequency()-100e6) > 1e6 {
		t.Errorf("resonant frequency %g", p.ResonantFrequency())
	}
	cb := p.ResonanceBandCycles()
	if cb.Lo != 84 || cb.Hi != 119 {
		t.Errorf("band %d-%d, want 84-119", cb.Lo, cb.Hi)
	}
}

func TestCalibrateSupply(t *testing.T) {
	cal, err := CalibrateSupply(Section2Supply())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Section 2 worked example: threshold 10 A, band-edge
	// tolerance 13 A, repetition tolerance 6.
	if cal.ThresholdAmps != 10 {
		t.Errorf("threshold %g, want 10", cal.ThresholdAmps)
	}
	if cal.BandEdgeToleranceAmps != 13 {
		t.Errorf("band-edge tolerance %g, want 13", cal.BandEdgeToleranceAmps)
	}
	if cal.MaxRepetitionTolerance != 6 {
		t.Errorf("repetition tolerance %d, want 6", cal.MaxRepetitionTolerance)
	}
}

func TestAppsExposed(t *testing.T) {
	if len(Apps()) != 26 {
		t.Errorf("%d apps", len(Apps()))
	}
	app, err := AppByName("lucas")
	if err != nil || !app.PaperViolating {
		t.Errorf("lucas lookup: %v %v", app.Params.Name, err)
	}
}

func TestSimulateBase(t *testing.T) {
	res, err := Simulate(SimulationSpec{App: "gzip", Instructions: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "gzip" || res.Technique != "base" {
		t.Errorf("labels %s/%s", res.App, res.Technique)
	}
	if res.Instructions != 50_000 || res.IPC <= 0 {
		t.Errorf("run incomplete: %+v", res)
	}
}

func TestSimulateEveryTechnique(t *testing.T) {
	for _, kind := range []TechniqueKind{TechniqueNone, TechniqueTuning, TechniqueVoltageControl, TechniqueDamping} {
		res, err := Simulate(SimulationSpec{App: "swim", Instructions: 40_000, Technique: kind})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Cycles == 0 {
			t.Errorf("%s: no cycles", kind)
		}
	}
	if _, err := Simulate(SimulationSpec{App: "swim", Technique: "warpdrive"}); err == nil {
		t.Error("unknown technique accepted")
	}
	if _, err := Simulate(SimulationSpec{App: "nosuchapp"}); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestSimulateWithTrace(t *testing.T) {
	n := 0
	res, err := Simulate(SimulationSpec{
		App: "parser", Instructions: 20_000, Technique: TechniqueTuning,
		Trace: func(TracePoint) { n++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(n) != res.Cycles {
		t.Errorf("trace saw %d cycles, result says %d", n, res.Cycles)
	}
}

func TestDefaultTuningConfigMatchesPaper(t *testing.T) {
	cfg := DefaultTuningConfig(100)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Detector.ThresholdAmps != 32 || cfg.Detector.MaxRepetitionTolerance != 4 {
		t.Errorf("detector %+v", cfg.Detector)
	}
	if cfg.InitialResponseThreshold != 2 || cfg.SecondResponseThreshold != 3 {
		t.Errorf("thresholds %d/%d", cfg.InitialResponseThreshold, cfg.SecondResponseThreshold)
	}
	if cfg.SecondResponseCycles != 35 {
		t.Errorf("second response %d, want 35", cfg.SecondResponseCycles)
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	if len(Experiments()) != 14 {
		t.Errorf("%d experiments", len(Experiments()))
	}
	rep, err := RunExperiment("fig1c", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig1c" || rep.Text == "" {
		t.Error("fig1c report incomplete")
	}
	if _, err := RunExperiment("nope", Options{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRecordAndReplayWorkload(t *testing.T) {
	var buf bytes.Buffer
	n, err := RecordWorkload(&buf, "swim", 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 60_000 {
		t.Fatalf("recorded %d instructions", n)
	}
	replayed, err := ReplayWorkload(bytes.NewReader(buf.Bytes()), TechniqueNone)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Simulate(SimulationSpec{App: "swim", Instructions: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Cycles != direct.Cycles || replayed.Violations != direct.Violations {
		t.Errorf("replayed run (%d cycles, %d viol) differs from direct (%d, %d)",
			replayed.Cycles, replayed.Violations, direct.Cycles, direct.Violations)
	}
	// Replay under a technique also works.
	tuned, err := ReplayWorkload(bytes.NewReader(buf.Bytes()), TechniqueTuning)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Technique != "resonance-tuning" {
		t.Errorf("technique label %q", tuned.Technique)
	}
	if _, err := ReplayWorkload(bytes.NewReader([]byte("junk")), TechniqueNone); err == nil {
		t.Error("junk trace accepted")
	}
	if _, err := RecordWorkload(&buf, "nosuchapp", 10); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestFiguresExposed(t *testing.T) {
	rep, err := RunExperiment("fig1c", Options{})
	if err != nil {
		t.Fatal(err)
	}
	figs := Figures(rep)
	if len(figs) == 0 {
		t.Error("no figures for fig1c")
	}
	for k, svg := range figs {
		if !strings.Contains(svg, "</svg>") {
			t.Errorf("%s: malformed SVG", k)
		}
	}
}

func TestAutoTuningConfig(t *testing.T) {
	cfg, err := AutoTuningConfig(Table1Supply(), Table1System().CPU, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Detector.HalfPeriodLo != 42 || cfg.Detector.HalfPeriodHi != 60 {
		t.Errorf("auto band %d-%d, want 42-60", cfg.Detector.HalfPeriodLo, cfg.Detector.HalfPeriodHi)
	}
	// Calibrated threshold lands near the paper's 32 A.
	if cfg.Detector.ThresholdAmps < 28 || cfg.Detector.ThresholdAmps > 38 {
		t.Errorf("auto threshold %g", cfg.Detector.ThresholdAmps)
	}
	if cfg.Detector.MaxRepetitionTolerance != 4 {
		t.Errorf("auto tolerance %d, want 4", cfg.Detector.MaxRepetitionTolerance)
	}
	// The auto config actually works end to end.
	res, err := Simulate(SimulationSpec{
		App: "swim", Instructions: 150_000,
		Technique: TechniqueTuning, Tuning: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Simulate(SimulationSpec{App: "swim", Instructions: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	if base.Violations > 0 && res.Violations > base.Violations/2 {
		t.Errorf("auto config left %d of %d violations", res.Violations, base.Violations)
	}

	// An overdesigned supply is reported as such.
	big := Table1Supply()
	big.C *= 10
	if _, err := AutoTuningConfig(big, Table1System().CPU, 100); err == nil {
		t.Error("overdesigned supply accepted")
	}
}

func TestEnergyBreakdown(t *testing.T) {
	rows, err := EnergyBreakdown(SimulationSpec{App: "gzip", Instructions: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("only %d rows", len(rows))
	}
	if rows[0].Unit != "floor" {
		t.Errorf("largest consumer %q, want the ungated floor", rows[0].Unit)
	}
	var pct float64
	for i, r := range rows {
		if r.Joules < 0 || r.Percent < 0 {
			t.Errorf("row %d negative", i)
		}
		if i > 0 && r.Joules > rows[i-1].Joules {
			t.Error("rows not sorted by consumption")
		}
		pct += r.Percent
	}
	// All accounted energy is within a spreading-ring residue of 100%.
	if pct < 99 || pct > 100.5 {
		t.Errorf("breakdown covers %.1f%% of total energy", pct)
	}
	if _, err := EnergyBreakdown(SimulationSpec{App: "nope"}); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestPostmortemFacade(t *testing.T) {
	reps, res, err := Postmortem(SimulationSpec{App: "lucas", Instructions: 250_000}, 2, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("no violations on base lucas")
	}
	if len(reps) == 0 {
		t.Fatal("no burst reports")
	}
	var covered uint64
	for _, r := range reps {
		covered += r.EndCycle - r.StartCycle + 1
	}
	if covered < res.Violations {
		t.Errorf("bursts cover %d cycles, %d violations counted", covered, res.Violations)
	}
}
