#!/usr/bin/env sh
# sharded_smoke.sh — end-to-end smoke test for the sharded sweep.
#
# Builds the sweep binary and checks the sharding contract on a small
# grid (2 apps x 2 initials x 2 thresholds + 2 baselines = 10 points):
#
#   1. a coordinator forking 2 workers produces a CSV byte-identical to
#      the single-process run, with the merge pass served entirely from
#      the shared disk cache (sim_misses=0) and the points actually
#      split across the workers;
#   2. crash recovery: a worker killed holding a claimed lease (the
#      -die-after hook, exit code 3) is healed — a second worker steals
#      the expired lease, the grid completes, and the merged CSV is
#      still byte-identical.
#
# Usage: scripts/sharded_smoke.sh
set -eu

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
COORD_PID=""
cleanup() {
    [ -n "$COORD_PID" ] && kill "$COORD_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/sweep" ./cmd/sweep

# The grid, as flags. Worker processes ignore these: the manifest in
# the shared cache directory carries the points.
set -- -apps lucas,parser -insts 20000 -initial 75,100 -threshold 1,2 -second 35
POINTS=10

### Serial reference: the single-process sweep the sharded runs must
### reproduce byte for byte.
"$WORK/sweep" "$@" -o "$WORK/serial.csv" 2>"$WORK/serial.log"
echo "serial reference: $(wc -l < "$WORK/serial.csv") CSV lines"

### Sharded run: coordinator + 2 forked workers over a fresh cache.
"$WORK/sweep" "$@" -coordinate -workers 2 -cache-dir "$WORK/cache1" \
    -lease-expiry 5s -shard-poll 100ms -progress \
    -o "$WORK/sharded.csv" 2>"$WORK/coord.log"

cmp -s "$WORK/serial.csv" "$WORK/sharded.csv" \
    || { cat "$WORK/coord.log"; echo "FAIL: sharded CSV differs from serial"; exit 1; }
# The coordinator's merge must be pure disk hits — nothing re-simulated.
grep -q 'sim_misses=0' "$WORK/coord.log" \
    || { cat "$WORK/coord.log"; echo "FAIL: merge pass re-simulated points"; exit 1; }
# Every point completed by a worker, and both workers did some.
TOTAL="$(sed -n 's/.*shard-stats: .*completed=\([0-9]*\).*/\1/p' "$WORK/coord.log" | awk '{s += $1} END {print s + 0}')"
[ "$TOTAL" -ge "$POINTS" ] \
    || { cat "$WORK/coord.log"; echo "FAIL: workers completed $TOTAL/$POINTS points"; exit 1; }
WORKED="$(sed -n 's/.*shard-stats: .*completed=\([0-9]*\).*/\1/p' "$WORK/coord.log" | awk '$1 > 0' | wc -l)"
[ "$WORKED" -eq 2 ] \
    || { cat "$WORK/coord.log"; echo "FAIL: $WORKED/2 workers did any work (no parallel split)"; exit 1; }
grep -q 'progress: ' "$WORK/coord.log" \
    || { cat "$WORK/coord.log"; echo "FAIL: -progress emitted nothing"; exit 1; }
echo "sharded pass OK (byte-identical CSV, merge sim_misses=0, $TOTAL points across 2 workers)"

### Crash drill: coordinator with no local workers waits on the grid;
### a -die-after worker exits holding a lease; a rescuer steals it.
"$WORK/sweep" "$@" -coordinate -workers 0 -cache-dir "$WORK/cache2" \
    -shard-poll 100ms -o "$WORK/recovered.csv" 2>"$WORK/coord2.log" &
COORD_PID=$!

# Give the coordinator a beat to publish the manifest, then crash a
# worker after its first completed point.
sleep 0.5
set +e
"$WORK/sweep" -worker -cache-dir "$WORK/cache2" -die-after 1 \
    -lease-expiry 2s -shard-poll 100ms 2>"$WORK/victim.log"
RC=$?
set -e
[ "$RC" -eq 3 ] \
    || { cat "$WORK/victim.log"; echo "FAIL: -die-after worker exited $RC, want 3"; exit 1; }
grep -q 'abandoning claimed lease' "$WORK/victim.log" \
    || { cat "$WORK/victim.log"; echo "FAIL: victim did not abandon a lease"; exit 1; }

# The rescuer must steal the abandoned (expired) lease and finish.
"$WORK/sweep" -worker -cache-dir "$WORK/cache2" \
    -lease-expiry 2s -shard-poll 100ms 2>"$WORK/rescuer.log"
grep -q 'stole expired lease' "$WORK/rescuer.log" \
    || { cat "$WORK/rescuer.log"; echo "FAIL: rescuer never stole the abandoned lease"; exit 1; }

wait "$COORD_PID" || { cat "$WORK/coord2.log"; echo "FAIL: coordinator failed"; exit 1; }
COORD_PID=""
cmp -s "$WORK/serial.csv" "$WORK/recovered.csv" \
    || { cat "$WORK/coord2.log"; echo "FAIL: crash-recovered CSV differs from serial"; exit 1; }
grep -q 'sim_misses=0' "$WORK/coord2.log" \
    || { cat "$WORK/coord2.log"; echo "FAIL: merge after recovery re-simulated points"; exit 1; }
echo "crash drill OK (exit 3, lease stolen, byte-identical CSV)"

echo "PASS"
