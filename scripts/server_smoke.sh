#!/usr/bin/env sh
# server_smoke.sh — end-to-end smoke test for resonanced + loadgen.
#
# Builds both binaries, starts resonanced on a free port with a fresh
# cache directory, and checks the full service contract:
#
#   1. a grid POST streams NDJSON lines in spec order, with the
#      duplicate spec coalescing onto the first occurrence's result;
#   2. /metrics reports exactly the expected cache traffic;
#   3. SIGTERM drains cleanly within the deadline;
#   4. a restart against the same cache directory serves the same grid
#      entirely from disk (zero simulations);
#   5. a short loadgen burst completes without errors.
#
# Usage: scripts/server_smoke.sh
set -eu

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/resonanced" ./cmd/resonanced
go build -o "$WORK/loadgen" ./cmd/loadgen

GRID='{"specs":[
  {"app":"swim","instructions":30000},
  {"app":"swim","instructions":30000,"technique":"tuning"},
  {"app":"lucas","instructions":30000},
  {"app":"swim","instructions":30000}
]}'

# start_server <logfile> [extra flags...] — starts resonanced on a free
# port and sets SRV_PID and BASE_URL once it is accepting.
start_server() {
    LOG="$1"; shift
    "$WORK/resonanced" -addr 127.0.0.1:0 -cache-dir "$WORK/cache" "$@" 2>"$LOG" &
    SRV_PID=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR="$(sed -n 's/^resonanced: listening on //p' "$LOG")"
        [ -n "$ADDR" ] && break
        kill -0 "$SRV_PID" 2>/dev/null || { cat "$LOG"; echo "FAIL: server died at startup"; exit 1; }
        sleep 0.1
    done
    [ -n "$ADDR" ] || { cat "$LOG"; echo "FAIL: server never reported its address"; exit 1; }
    BASE_URL="http://$ADDR"
}

# drain_server <logfile> — SIGTERM, then require exit within the drain
# deadline and the final drained marker in the log.
drain_server() {
    kill -TERM "$SRV_PID"
    for _ in $(seq 1 100); do
        kill -0 "$SRV_PID" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$SRV_PID" 2>/dev/null; then
        cat "$1"; echo "FAIL: server did not drain within deadline"; exit 1
    fi
    wait "$SRV_PID" 2>/dev/null || true
    SRV_PID=""
    grep -q "^resonanced: drained$" "$1" || { cat "$1"; echo "FAIL: no drained marker"; exit 1; }
}

# check_grid <ndjson> <label> — NDJSON contract: 4 lines, in order,
# duplicate spec shares key and result with its first occurrence.
check_grid() {
    python3 - "$1" "$2" <<'EOF'
import json, sys
path, label = sys.argv[1:3]
lines = [json.loads(l) for l in open(path) if l.strip()]
assert len(lines) == 4, f"{label}: {len(lines)} lines, want 4"
for i, line in enumerate(lines):
    assert line["index"] == i, f"{label}: line {i} has index {line['index']} (out of spec order)"
    assert "error" not in line and line.get("result"), f"{label}: line {i} is not a result: {line}"
assert lines[0]["key"] == lines[3]["key"], f"{label}: duplicate specs keyed differently"
assert lines[0]["result"] == lines[3]["result"], f"{label}: duplicate specs diverged"
print(f"{label}: NDJSON contract OK")
EOF
}

# metric <name-with-labels> — reads one value from the last /metrics scrape.
metric() {
    awk -v k="$1 " 'index($0, k) == 1 { print substr($0, length(k) + 1) }' "$WORK/metrics.txt"
}

expect_metric() {
    GOT="$(metric "$1")"
    [ "$GOT" = "$2" ] || { echo "FAIL: $1 = ${GOT:-missing}, want $2"; cat "$WORK/metrics.txt"; exit 1; }
}

### Cold pass: everything simulates once, the duplicate coalesces.
start_server "$WORK/cold.log"
echo "cold server at $BASE_URL"
curl -sS -X POST --data "$GRID" "$BASE_URL/v1/run" >"$WORK/cold.ndjson"
check_grid "$WORK/cold.ndjson" cold
curl -sS "$BASE_URL/metrics" >"$WORK/metrics.txt"
expect_metric 'resonanced_sim_misses_total' 3
expect_metric 'resonanced_cache_hits_total{tier="mem"}' 1
expect_metric 'resonanced_cache_hits_total{tier="disk"}' 0
expect_metric 'resonanced_cache_disk_writes_total' 3
expect_metric 'resonanced_engine_inflight' 0
curl -sS "$BASE_URL/healthz" | grep -qx ok || { echo "FAIL: healthz"; exit 1; }
drain_server "$WORK/cold.log"
grep -q "sim_misses=3" "$WORK/cold.log" || { cat "$WORK/cold.log"; echo "FAIL: final cache-stats line"; exit 1; }
echo "cold pass OK (3 simulations, 1 coalesced duplicate, clean drain)"

### Warm pass: same grid served entirely from the disk tier.
start_server "$WORK/warm.log" -cache-gc
echo "warm server at $BASE_URL"
curl -sS -X POST --data "$GRID" "$BASE_URL/v1/run" >"$WORK/warm.ndjson"
check_grid "$WORK/warm.ndjson" warm
cmp -s "$WORK/cold.ndjson" "$WORK/warm.ndjson" || { echo "FAIL: warm NDJSON differs from cold"; exit 1; }
curl -sS "$BASE_URL/metrics" >"$WORK/metrics.txt"
expect_metric 'resonanced_sim_misses_total' 0
expect_metric 'resonanced_cache_hits_total{tier="disk"}' 3
echo "warm pass OK (0 simulations, byte-identical NDJSON)"

### Load burst against the warm server.
"$WORK/loadgen" -url "$BASE_URL" -duration 2s -conns 4 -population 16 -insts 20000 | tee "$WORK/loadgen.out"
grep -q "errors=0" "$WORK/loadgen.out" || { echo "FAIL: loadgen saw errors"; exit 1; }
drain_server "$WORK/warm.log"

echo "PASS"
