#!/usr/bin/env sh
# bench_gate.sh — regression gate for the hot-path benchmarks.
#
# Runs the gated benchmarks (default: the cold engine-batched Table 3
# regeneration plus the fork-on-divergence kernel microbenchmark) and
# compares each ns/op against the committed snapshot in BENCH_sim.json,
# failing when any measured time regresses by more than GATE_PCT percent
# (default 10).
#
# Usage:
#   scripts/bench_gate.sh                # gate vs BENCH_sim.json at 10%
#   GATE_PCT=25 scripts/bench_gate.sh    # looser gate (noisy runners)
#   BENCHNAME=BenchmarkTable3ResonanceTuning scripts/bench_gate.sh
#   BASELINE=old.json scripts/bench_gate.sh
set -eu

cd "$(dirname "$0")/.."

BENCHNAME="${BENCHNAME:-BenchmarkTable3ResonanceTuning BenchmarkBatchKernelForked}"
BASELINE="${BASELINE:-BENCH_sim.json}"
GATE_PCT="${GATE_PCT:-10}"
COUNT="${COUNT:-3}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

REGEX="^($(echo "$BENCHNAME" | tr ' ' '|'))\$"
go test -run '^$' -bench "$REGEX" -count "$COUNT" -timeout 30m . | tee "$RAW"

python3 - "$RAW" "$BASELINE" "$GATE_PCT" $BENCHNAME <<'EOF'
import json, re, sys

raw_path, baseline_path, gate_pct = sys.argv[1:4]
names = sys.argv[4:]
gate = float(gate_pct)

with open(baseline_path) as f:
    snap = json.load(f)

failed = []
for name in names:
    base = None
    for b in snap["benchmarks"]:
        # Snapshot names carry go test's "-N" GOMAXPROCS suffix; strip only
        # that (benchmark names themselves may contain dashes).
        if re.sub(r"-\d+$", "", b["name"]) == name:
            base = float(b["ns_per_op"])
            break
    if base is None:
        sys.exit(f"{baseline_path} has no entry for {name}")

    runs = []
    with open(raw_path) as f:
        for line in f:
            m = re.match(rf"^{re.escape(name)}(?:-\d+)?\s+\d+\s+([\d.]+) ns/op", line)
            if m:
                runs.append(float(m.group(1)))
    if not runs:
        sys.exit(f"no {name} results in benchmark output")

    best = min(runs)  # min-of-N damps scheduler noise on shared runners
    ratio = best / base
    print(f"{name}: best of {len(runs)} runs {best/1e9:.3f} s/op "
          f"vs snapshot {base/1e9:.3f} s/op (x{ratio:.3f}, gate +{gate:.0f}%)")
    if ratio > 1 + gate / 100:
        failed.append(f"{name} regressed {100*(ratio-1):.1f}% > {gate:.0f}% gate")

if failed:
    sys.exit("FAIL: " + "; ".join(failed))
print("PASS")
EOF
