#!/usr/bin/env sh
# bench.sh — run the simulation benchmark suite and snapshot the results.
#
# Writes BENCH_sim.json at the repo root: a perf-trajectory snapshot with
# per-benchmark ns/op, B/op, and allocs/op, plus the raw benchmark lines
# (Go's standard text format) so two snapshots can be compared with
# benchstat:
#
#   jq -r '.raw[]' BENCH_sim.json > old.txt   # from an old snapshot
#   jq -r '.raw[]' BENCH_sim.json > new.txt   # from a new one
#   benchstat old.txt new.txt
#
# Usage:
#   scripts/bench.sh                 # hot-path suite, default iterations
#   scripts/bench.sh -benchtime 5x   # extra args go to `go test`
#   BENCH=. scripts/bench.sh         # run every benchmark (slow)
set -eu

cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkCoreStep|BenchmarkDetectorStep|BenchmarkPowerStep|BenchmarkStepCycle|BenchmarkMultiDomainStep|BenchmarkBatchKernelLockstep|BenchmarkBatchKernelForked|BenchmarkTable3ResonanceTuning|BenchmarkTable3WarmDiskCache|BenchmarkRelatedSuiteWarm|BenchmarkFig5Comparison|BenchmarkGeneratorNext|BenchmarkTraceSourceNext|BenchmarkSweepSharded}"
COUNT="${COUNT:-1}"
OUT="${OUT:-BENCH_sim.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$BENCH" -count "$COUNT" "$@" . ./cmd/sweep | tee "$RAW"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" '
function jescape(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); gsub(/\t/, "\\t", s); return s }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpuname = $0 }
/^Benchmark/ {
    raw[++nraw] = $0
    name = $1; iters = $2; ns = $3
    bop = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op") bop = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    bench[++n] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}",
                         jescape(name), iters, ns, bop, allocs)
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", jescape(cpuname)
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", bench[i], (i < n ? "," : "")
    printf "  ],\n"
    printf "  \"raw\": [\n"
    for (i = 1; i <= nraw; i++) printf "    \"%s\"%s\n", jescape(raw[i]), (i < nraw ? "," : "")
    printf "  ]\n"
    printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
