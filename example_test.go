package resonance_test

import (
	"fmt"

	"repro"
)

// Characterise the paper's Table 1 power supply: resonant frequency,
// quality factor, and the resonance band that resonance tuning targets.
func ExampleTable1Supply() {
	p := resonance.Table1Supply()
	chars, err := p.Characterize()
	if err != nil {
		panic(err)
	}
	fmt.Printf("f0 = %.0f MHz\n", chars.ResonantFrequencyHz/1e6)
	fmt.Printf("Q = %.2f\n", chars.Q)
	fmt.Printf("band = %d-%d cycles\n", chars.BandCycles.Lo, chars.BandCycles.Hi)
	// Output:
	// f0 = 100 MHz
	// Q = 2.83
	// band = 84-119 cycles
}

// Run the Section 2.1.3 calibration on the paper's worked example; the
// results match the paper's own numbers exactly.
func ExampleCalibrateSupply() {
	cal, err := resonance.CalibrateSupply(resonance.Section2Supply())
	if err != nil {
		panic(err)
	}
	fmt.Printf("threshold = %g A\n", cal.ThresholdAmps)
	fmt.Printf("band-edge tolerance = %g A\n", cal.BandEdgeToleranceAmps)
	fmt.Printf("max repetition tolerance = %d\n", cal.MaxRepetitionTolerance)
	// Output:
	// threshold = 10 A
	// band-edge tolerance = 13 A
	// max repetition tolerance = 6
}

// Simulate one application on the base machine and under resonance
// tuning, the core before/after comparison of the paper.
func ExampleSimulate() {
	base, err := resonance.Simulate(resonance.SimulationSpec{
		App: "lucas", Instructions: 200_000,
	})
	if err != nil {
		panic(err)
	}
	tuned, err := resonance.Simulate(resonance.SimulationSpec{
		App: "lucas", Instructions: 200_000,
		Technique: resonance.TechniqueTuning,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("base violations > 0: %v\n", base.Violations > 0)
	fmt.Printf("tuning removes ≥90%%: %v\n",
		float64(tuned.Violations) <= 0.1*float64(base.Violations))
	fmt.Printf("slowdown under 10%%: %v\n",
		float64(tuned.Cycles) < 1.10*float64(base.Cycles))
	// Output:
	// base violations > 0: true
	// tuning removes ≥90%: true
	// slowdown under 10%: true
}

// List the runnable paper experiments.
func ExampleExperiments() {
	for _, e := range resonance.Experiments()[:4] {
		fmt.Println(e.ID)
	}
	// Output:
	// fig1c
	// fig3
	// fig4
	// table2
}
