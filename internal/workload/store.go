package workload

import (
	"container/list"
	"sync"

	"repro/internal/cpu"
)

// DefaultTraceBudget is the byte budget of the shared trace store: enough
// for the full 26-app suite at the default 1M-instruction budget (~130 MB
// packed) with generous headroom, while bounding what paper-scale streams
// (100M instructions ≈ 500 MB each) can pin in memory.
const DefaultTraceBudget = 1 << 30 // 1 GiB

// TraceStats reports a TraceStore's traffic.
type TraceStats struct {
	// Builds counts traces materialized (one live Generator run each);
	// Hits counts requests served from (or coalesced onto) a stored
	// trace.
	Builds, Hits uint64
	// Bypasses counts requests whose trace alone would exceed the byte
	// budget and therefore streamed from a live Generator instead.
	Bypasses uint64
	// Evictions counts traces dropped to stay within the budget.
	Evictions uint64
	// Entries and Bytes describe the store's current contents.
	Entries int
	Bytes   uint64
}

// traceKey identifies a trace by content: Params holds only scalar
// fields, so struct equality is exactly "same application model", and
// the limit pins the stream length. Two requests with equal keys always
// want the identical instruction sequence.
type traceKey struct {
	params Params
	limit  uint64
}

// traceEntry is one store slot, created before its materialization
// starts so concurrent requests for the same trace coalesce onto a
// single Generator run.
type traceEntry struct {
	key  traceKey
	done chan struct{}
	tr   *Trace
	elem *list.Element // nil until materialized and accounted
}

// TraceStore materializes each (application, limit) instruction stream
// once and shares the packed, read-only Trace across every concurrent
// run that asks for it. A byte budget with LRU eviction bounds resident
// trace data; requests that cannot fit (a single stream larger than the
// whole budget) fall back to live generation, which is bit-identical by
// construction. The zero value is not usable; construct with
// NewTraceStore or use the process-wide Shared store.
type TraceStore struct {
	mu      sync.Mutex
	budget  uint64
	entries map[traceKey]*traceEntry
	lru     *list.List // of *traceEntry, front = most recently used
	bytes   uint64
	stats   TraceStats
}

// NewTraceStore returns a store with the given byte budget (<= 0 means
// DefaultTraceBudget).
func NewTraceStore(budgetBytes int64) *TraceStore {
	b := uint64(DefaultTraceBudget)
	if budgetBytes > 0 {
		b = uint64(budgetBytes)
	}
	return &TraceStore{
		budget:  b,
		entries: make(map[traceKey]*traceEntry),
		lru:     list.New(),
	}
}

// shared is the process-wide store: every driver that routes spec
// construction through the engine shares it, so one cmd/experiments
// invocation materializes each Table 2 application exactly once no
// matter how many tables and figures replay it.
var shared = NewTraceStore(0)

// SharedTraces returns the process-wide trace store.
func SharedTraces() *TraceStore { return shared }

// SetBudget replaces the store's byte budget (<= 0 restores the
// default) and evicts immediately if the store is over the new budget.
func (s *TraceStore) SetBudget(budgetBytes int64) {
	b := uint64(DefaultTraceBudget)
	if budgetBytes > 0 {
		b = uint64(budgetBytes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.budget = b
	s.evictLocked()
}

// Stats returns a snapshot of the store's counters.
func (s *TraceStore) Stats() TraceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	return st
}

// Source returns an instruction source for application p limited to
// limit instructions: a fresh cursor over the stored trace (materializing
// and storing it on first request), or a live Generator when the trace
// alone would blow the byte budget. Either way the instruction sequence
// is identical. It panics on invalid parameters, like NewGenerator.
func (s *TraceStore) Source(p Params, limit uint64) cpu.Source {
	if tr := s.Get(p, limit); tr != nil {
		return tr.Source()
	}
	return NewGenerator(p, limit)
}

// Get returns the stored trace for (p, limit), materializing it on first
// request, or nil when the trace alone would exceed the store's budget
// (callers fall back to live generation). Concurrent first requests for
// the same key coalesce onto one materialization.
func (s *TraceStore) Get(p Params, limit uint64) *Trace {
	key := traceKey{params: p, limit: limit}
	s.mu.Lock()
	if limit > s.budget/bytesPerInst { // overflow-safe limit*bytesPerInst > budget
		s.stats.Bypasses++
		s.mu.Unlock()
		return nil
	}
	if en, ok := s.entries[key]; ok {
		s.stats.Hits++
		if en.elem != nil {
			s.lru.MoveToFront(en.elem)
		}
		s.mu.Unlock()
		<-en.done
		return en.tr
	}
	en := &traceEntry{key: key, done: make(chan struct{})}
	s.entries[key] = en
	s.stats.Builds++
	s.mu.Unlock()

	tr := Materialize(p, limit)

	s.mu.Lock()
	// Publish the trace before entering the LRU: evictLocked reads
	// en.tr, and a SetBudget shrink racing this insert may evict the
	// entry in the same critical section.
	en.tr = tr
	s.bytes += tr.SizeBytes()
	en.elem = s.lru.PushFront(en)
	s.evictLocked()
	s.mu.Unlock()
	close(en.done)
	return tr
}

// evictLocked drops least-recently-used traces until the store fits its
// budget. In-flight materializations (no lru element yet) are never
// evicted here; they account themselves on completion. Runs already
// holding an evicted *Trace keep replaying it safely — eviction only
// drops the store's reference.
func (s *TraceStore) evictLocked() {
	for s.bytes > s.budget {
		back := s.lru.Back()
		if back == nil {
			return
		}
		en := back.Value.(*traceEntry)
		s.lru.Remove(back)
		delete(s.entries, en.key)
		s.bytes -= en.tr.SizeBytes()
		s.stats.Evictions++
	}
}
