package workload

import "repro/internal/cpu"

// Trace is one application's instruction stream, materialized by running
// a Generator to completion once and packed into parallel slices (one
// meta byte plus two uint16 producer distances per instruction — 5
// bytes/inst, versus the ~10 RNG draws the live Generator spends per
// instruction). A Trace is immutable after Materialize: any number of
// runs may replay it concurrently through independent cursors.
//
// Replay is bit-identical to live generation — the trace stores the
// exact per-instruction RNG outcomes, so a core fed by Source() sees the
// same Inst sequence, cycle for cycle, as one fed by NewGenerator with
// the same (Params, limit). The differential tests in internal/engine
// pin this for every Table 2 application.
type Trace struct {
	params Params
	limit  uint64

	meta       []uint8
	src1, src2 []uint16
}

// bytesPerInst is the packed size of one instruction (meta + 2 dists).
const bytesPerInst = 5

// Materialize runs a fresh Generator for application p to completion and
// returns the packed trace. It panics on invalid parameters, exactly
// like NewGenerator.
func Materialize(p Params, limit uint64) *Trace {
	g := NewGenerator(p, limit)
	// Bounded limits are the norm; cap the preallocation so a defensive
	// "unlimited" limit doesn't allocate the address space up front.
	n := int(min(limit, 1<<24))
	t := &Trace{
		params: p,
		limit:  limit,
		meta:   make([]uint8, 0, n),
		src1:   make([]uint16, 0, n),
		src2:   make([]uint16, 0, n),
	}
	for {
		in, ok := g.Next()
		if !ok {
			return t
		}
		t.meta = append(t.meta, cpu.PackMeta(in))
		t.src1 = append(t.src1, in.SrcDist1)
		t.src2 = append(t.src2, in.SrcDist2)
	}
}

// Params returns the application parameters the trace was drawn from.
func (t *Trace) Params() Params { return t.params }

// Limit returns the instruction limit the trace was materialized with.
// It equals Len for every bounded generator.
func (t *Trace) Limit() uint64 { return t.limit }

// Len returns the number of instructions in the trace.
func (t *Trace) Len() int { return len(t.meta) }

// SizeBytes returns the packed size of the trace's instruction data,
// the unit the TraceStore budget accounts in.
func (t *Trace) SizeBytes() uint64 { return uint64(len(t.meta)) * bytesPerInst }

// At returns instruction i (for tests and inspection; replay goes
// through Source).
func (t *Trace) At(i int) cpu.Inst {
	cl, mem, mis := cpu.UnpackMeta(t.meta[i])
	return cpu.Inst{Class: cl, Mem: mem, Mispredicted: mis, SrcDist1: t.src1[i], SrcDist2: t.src2[i]}
}

// Source returns a fresh replay cursor over the trace. Cursors are
// independent; the shared backing slices are read-only.
func (t *Trace) Source() *cpu.TraceSource {
	return cpu.NewTraceSource(t.meta, t.src1, t.src2)
}
