package workload

import (
	"math"
	"testing"

	"repro/internal/cpu"
)

func steadyParams() Params {
	return Params{
		Name: "test", Seed: 1,
		Mix:     intMix(0.25, 0.10, 0.12),
		DepProb: 0.8, DepMean: 3, Dep2Frac: 0.3,
		MispredictRate: 0.02, L1MissRate: 0.05, L2MissRate: 0.2,
	}
}

func TestGeneratorHonoursLimit(t *testing.T) {
	g := NewGenerator(steadyParams(), 1000)
	n := 0
	for {
		_, ok := g.Next()
		if !ok {
			break
		}
		n++
		if n > 1000 {
			t.Fatal("generator exceeded its limit")
		}
	}
	if n != 1000 {
		t.Errorf("generated %d instructions, want 1000", n)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(steadyParams(), 5000)
	b := NewGenerator(steadyParams(), 5000)
	for i := 0; i < 5000; i++ {
		x, okx := a.Next()
		y, oky := b.Next()
		if okx != oky || x != y {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, x, y)
		}
	}
}

func TestGeneratorMixMatchesRequest(t *testing.T) {
	p := steadyParams()
	g := NewGenerator(p, 200_000)
	var counts [cpu.NumClasses]int
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		counts[in.Class]++
	}
	frac := func(cl cpu.Class) float64 { return float64(counts[cl]) / 200_000 }
	if math.Abs(frac(cpu.Load)-0.25) > 0.01 {
		t.Errorf("load fraction %g, want ≈ 0.25", frac(cpu.Load))
	}
	if math.Abs(frac(cpu.Store)-0.10) > 0.01 {
		t.Errorf("store fraction %g, want ≈ 0.10", frac(cpu.Store))
	}
	if math.Abs(frac(cpu.Branch)-0.12) > 0.01 {
		t.Errorf("branch fraction %g, want ≈ 0.12", frac(cpu.Branch))
	}
	// intMix splits the rest 92/8 between ALU and multiply.
	if counts[cpu.FPALU] != 0 || counts[cpu.FPMul] != 0 {
		t.Error("integer mix produced FP instructions")
	}
}

func TestGeneratorRates(t *testing.T) {
	p := steadyParams()
	g := NewGenerator(p, 300_000)
	var branches, mispred, mem, l1miss, l2miss, deps, dep2 int
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		switch in.Class {
		case cpu.Branch:
			branches++
			if in.Mispredicted {
				mispred++
			}
		case cpu.Load, cpu.Store:
			mem++
			if in.Mem != cpu.MemL1 {
				l1miss++
			}
			if in.Mem == cpu.MemMain {
				l2miss++
			}
		}
		if in.SrcDist1 != 0 {
			deps++
		}
		if in.SrcDist2 != 0 {
			dep2++
		}
	}
	if r := float64(mispred) / float64(branches); math.Abs(r-0.02) > 0.005 {
		t.Errorf("mispredict rate %g, want ≈ 0.02", r)
	}
	if r := float64(l1miss) / float64(mem); math.Abs(r-0.05) > 0.01 {
		t.Errorf("L1 miss rate %g, want ≈ 0.05", r)
	}
	if r := float64(l2miss) / float64(l1miss); math.Abs(r-0.2) > 0.05 {
		t.Errorf("L2 miss rate %g, want ≈ 0.2", r)
	}
	if r := float64(deps) / 300_000; math.Abs(r-0.8) > 0.02 {
		t.Errorf("dependency rate %g, want ≈ 0.8", r)
	}
	if dep2 == 0 || dep2 >= deps {
		t.Errorf("second-dependency count %d implausible vs %d", dep2, deps)
	}
}

func TestBurstOscillationStructure(t *testing.T) {
	p := steadyParams()
	// Disable dependencies and misses in the steady mix so a chained
	// L2 load can only come from the stall phase.
	p.DepProb = 0
	p.L1MissRate = 0
	p.Burst = Burst{
		Enabled: true, BurstInsts: 100, StallMisses: 8,
		StallLevel: cpu.MemL2, JitterFrac: 0,
	}
	g := NewGenerator(p, 10_000)
	// Expect a strict alternation: 100 steady, 8 chained loads, ...
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 100; i++ {
			in, ok := g.Next()
			if !ok {
				t.Fatal("stream ended early")
			}
			if in.Class == cpu.Load && in.Mem == cpu.MemL2 && in.SrcDist1 == 1 {
				t.Fatalf("rep %d pos %d: stall-chain load inside burst", rep, i)
			}
		}
		for i := 0; i < 8; i++ {
			in, _ := g.Next()
			if in.Class != cpu.Load || in.SrcDist1 != 1 || in.Mem != cpu.MemL2 {
				t.Fatalf("rep %d stall pos %d: got %+v, want chained L2 load", rep, i, in)
			}
		}
	}
}

func TestEpisodeBurstsAreCoherent(t *testing.T) {
	p := steadyParams()
	p.Burst = Burst{
		Enabled: true, BurstInsts: 100, StallMisses: 8, StallLevel: cpu.MemL2,
		JitterFrac: 0.2, EpisodeProb: 1, EpisodeLen: 3,
		EpisodeBurstInsts: 50, EpisodeStallMisses: 4, EpisodeILP: true,
	}
	g := NewGenerator(p, 400)
	// With probability 1 the very first burst is an episode burst of
	// exactly 50 dependency-free instructions.
	for i := 0; i < 50; i++ {
		in, _ := g.Next()
		if in.SrcDist1 != 0 || in.SrcDist2 != 0 {
			t.Fatalf("episode instruction %d carries dependencies: %+v", i, in)
		}
		if in.Class == cpu.Branch && in.Mispredicted {
			t.Fatalf("episode instruction %d is a mispredicted branch", i)
		}
	}
	// Episode stall: 4 chained loads then the barrier branch.
	for i := 0; i < 4; i++ {
		in, _ := g.Next()
		if in.Class != cpu.Load || in.SrcDist1 != 1 {
			t.Fatalf("episode stall %d: got %+v", i, in)
		}
	}
	in, _ := g.Next()
	if in.Class != cpu.Branch || !in.Mispredicted || in.SrcDist1 != 1 {
		t.Fatalf("episode barrier: got %+v, want dependent mispredicted branch", in)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.Name = "" },
		func(p *Params) { p.Mix = Mix{} },
		func(p *Params) { p.Mix.Load = -1 },
		func(p *Params) { p.DepProb = 1.5 },
		func(p *Params) { p.DepProb = 0.5; p.DepMean = 0.5 },
		func(p *Params) { p.Dep2Frac = -0.1 },
		func(p *Params) { p.MispredictRate = 2 },
		func(p *Params) { p.L1MissRate = -0.1 },
		func(p *Params) { p.L2MissRate = 1.1 },
		func(p *Params) { p.Burst = Burst{Enabled: true} },
		func(p *Params) { p.Burst = Burst{Enabled: true, BurstInsts: 10, StallMisses: 1, JitterFrac: 1} },
		func(p *Params) { p.Burst = Burst{Enabled: true, BurstInsts: 10, StallMisses: 1, EpisodeProb: 2} },
		func(p *Params) { p.Burst = Burst{Enabled: true, BurstInsts: 10, StallMisses: 1, EpisodeProb: 0.1} },
	}
	for i, mutate := range bad {
		p := steadyParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := steadyParams().Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
}

func TestNewGeneratorPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGenerator(Params{}, 10)
}

// TestPrefixDeterminism: the first n instructions of a longer run are
// identical to an n-instruction run — the phase and episode state must
// not depend on the budget.
func TestPrefixDeterminism(t *testing.T) {
	for _, a := range Apps()[:6] {
		short := NewGenerator(a.Params, 5_000)
		long := NewGenerator(a.Params, 50_000)
		for i := 0; i < 5_000; i++ {
			x, okX := short.Next()
			y, okY := long.Next()
			if !okX || !okY || x != y {
				t.Fatalf("%s: instruction %d differs between budgets", a.Params.Name, i)
			}
		}
	}
}

// TestEpisodeCadenceIsDeterministic: two generators of the same app enter
// episodes at exactly the same instruction offsets.
func TestEpisodeCadenceIsDeterministic(t *testing.T) {
	a, err := ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	record := func() []int {
		g := NewGenerator(a.Params, 400_000)
		var offsets []int
		prevBarrier := false
		for i := 0; ; i++ {
			in, ok := g.Next()
			if !ok {
				break
			}
			// Episode stalls end with a mispredicted barrier branch;
			// record each one as an episode marker.
			isBarrier := in.Class == cpu.Branch && in.Mispredicted && in.SrcDist1 == 1
			if isBarrier && !prevBarrier {
				offsets = append(offsets, i)
			}
			prevBarrier = isBarrier
		}
		return offsets
	}
	a1, a2 := record(), record()
	if len(a1) == 0 {
		t.Fatal("no episodes fired in 400k instructions of swim")
	}
	if len(a1) != len(a2) {
		t.Fatalf("episode counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("episode %d at different offsets: %d vs %d", i, a1[i], a2[i])
		}
	}
}
