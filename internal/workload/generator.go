// Package workload synthesises instruction streams whose cycle-level
// activity waveforms stand in for the SPEC2K applications of the paper's
// evaluation (Table 2). A real program's inductive-noise behaviour is
// determined by the frequency content of its activity: bursts of
// instruction-level parallelism alternating with stalls (cache-miss
// chains) produce current oscillations, and when the alternation period
// falls inside the power supply's resonance band, repeated swings build
// toward noise-margin violations.
//
// Each application model combines a steady-state instruction mix
// (instruction classes, dependency density, branch mispredictions, cache
// miss rates) that calibrates its IPC against Table 2, with an optional
// burst/stall oscillation that shapes its current spectrum. Jitter on the
// phase lengths spreads the spectrum: low jitter keeps the oscillation
// coherent in the resonance band (frequent violations, like lucas or
// swim), high jitter makes in-band coherence an occasional accident (rare
// violations, like facerec or gcc), and off-band periods or no bursts at
// all produce the non-violating applications.
//
// All randomness is drawn from a per-app seeded deterministic generator,
// so every simulation is exactly reproducible.
package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/rng"
)

// Mix gives the probability of each instruction class in steady-state
// code. The fields need not sum exactly to one; they are normalised.
type Mix struct {
	IntALU, IntMul, FPALU, FPMul, Load, Store, Branch float64
}

// normalized returns cumulative class probabilities for sampling.
func (m Mix) normalized() (cum [cpu.NumClasses]float64, ok bool) {
	w := [cpu.NumClasses]float64{
		cpu.IntALU: m.IntALU,
		cpu.IntMul: m.IntMul,
		cpu.FPALU:  m.FPALU,
		cpu.FPMul:  m.FPMul,
		cpu.Load:   m.Load,
		cpu.Store:  m.Store,
		cpu.Branch: m.Branch,
	}
	total := 0.0
	for _, v := range w {
		if v < 0 {
			return cum, false
		}
		total += v
	}
	if total <= 0 {
		return cum, false
	}
	acc := 0.0
	for i, v := range w {
		acc += v / total
		cum[i] = acc
	}
	return cum, true
}

// Burst describes the oscillating phase structure layered over the steady
// mix to shape the current spectrum.
type Burst struct {
	// Enabled turns the oscillation on.
	Enabled bool
	// BurstInsts is the number of high-ILP instructions per burst phase.
	BurstInsts int
	// StallMisses is the length of the dependent miss chain forming the
	// quiet phase.
	StallMisses int
	// StallLevel is the hierarchy level the stall chain misses to.
	StallLevel cpu.MemLevel
	// JitterFrac randomises each phase length by ±JitterFrac. Low
	// jitter keeps the oscillation coherently in one band; high jitter
	// spreads it.
	JitterFrac float64

	// EpisodeProb is the rate, per burst phase, of coherent resonant
	// episodes: EpisodeLen consecutive phases with an un-jittered burst
	// of EpisodeBurstInsts instructions, shifting the oscillation
	// period into the resonance band. Episodes are how the violating
	// applications of Table 2 get their rare noise-margin violations:
	// most of the time their oscillation sits off-band, and every so
	// often the program phases align. Episodes fire on a deterministic
	// cadence of round(1/EpisodeProb) phases so that scaled-down runs
	// classify applications reproducibly rather than at the mercy of a
	// Poisson draw.
	EpisodeProb       float64
	EpisodeLen        int
	EpisodeBurstInsts int
	// EpisodeStallMisses overrides StallMisses during an episode (0
	// keeps the base value). Low-IPC applications have long base
	// stalls; their resonant episodes use a shorter, in-band stall.
	EpisodeStallMisses int
	// EpisodeILP makes episode bursts dependency- and miss-free (a
	// coherent, fully parallel hot loop), so the episode swings the
	// full current range regardless of the app's usual serialisation.
	EpisodeILP bool
}

// Params fully describes one synthetic application.
type Params struct {
	Name string
	Seed uint64

	Mix Mix
	// DepProb is the probability that an instruction depends on an
	// earlier one; DepMean is the mean producer distance (geometric).
	DepProb, DepMean float64
	// Dep2Frac is the fraction of dependent instructions that also
	// carry a second source dependency; two parents per node make the
	// dataflow graph markedly more serial.
	Dep2Frac float64
	// MispredictRate is the fraction of branches mispredicted.
	MispredictRate float64
	// L1MissRate is the fraction of memory operations missing L1;
	// L2MissRate is the fraction of those that also miss L2.
	L1MissRate, L2MissRate float64

	Burst Burst
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if _, ok := p.Mix.normalized(); !ok {
		return fmt.Errorf("workload %s: degenerate instruction mix %+v", p.Name, p.Mix)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"DepProb", p.DepProb},
		{"MispredictRate", p.MispredictRate},
		{"L1MissRate", p.L1MissRate},
		{"L2MissRate", p.L2MissRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("workload %s: %s = %g outside [0,1]", p.Name, r.name, r.v)
		}
	}
	if p.DepProb > 0 && p.DepMean < 1 {
		return fmt.Errorf("workload %s: DepMean must be ≥ 1 when dependencies enabled", p.Name)
	}
	if p.Dep2Frac < 0 || p.Dep2Frac > 1 {
		return fmt.Errorf("workload %s: Dep2Frac = %g outside [0,1]", p.Name, p.Dep2Frac)
	}
	if p.Burst.Enabled {
		if p.Burst.BurstInsts < 1 || p.Burst.StallMisses < 1 {
			return fmt.Errorf("workload %s: burst phases must be non-empty", p.Name)
		}
		if p.Burst.JitterFrac < 0 || p.Burst.JitterFrac >= 1 {
			return fmt.Errorf("workload %s: jitter %g outside [0,1)", p.Name, p.Burst.JitterFrac)
		}
		if p.Burst.EpisodeProb < 0 || p.Burst.EpisodeProb > 1 {
			return fmt.Errorf("workload %s: episode probability %g outside [0,1]", p.Name, p.Burst.EpisodeProb)
		}
		if p.Burst.EpisodeProb > 0 && (p.Burst.EpisodeLen < 1 || p.Burst.EpisodeBurstInsts < 1) {
			return fmt.Errorf("workload %s: episodes need positive length and burst size", p.Name)
		}
	}
	return nil
}

// Generator produces the instruction stream for one application run. It
// implements cpu.Source.
type Generator struct {
	p     Params
	cum   [cpu.NumClasses]float64
	r     *rng.Source
	limit uint64
	n     uint64

	// oscillation state
	inBurst       bool
	phaseLeft     int
	episodeLeft   int
	episodeActive bool
	// phasesUntilEpisode counts down burst phases to the next episode.
	phasesUntilEpisode int
}

// NewGenerator returns a generator yielding at most limit instructions of
// application p. It panics on invalid parameters.
func NewGenerator(p Params, limit uint64) *Generator {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("workload.NewGenerator: %v", err))
	}
	cum, _ := p.Mix.normalized()
	// phaseLeft starts at zero so the first Next goes through the
	// ordinary phase-boundary logic (including the episode cadence).
	g := &Generator{p: p, cum: cum, r: rng.New(p.Seed), limit: limit}
	if n := g.episodeCadence(); n > 0 {
		// Stagger the first episode by a seed-dependent offset so apps
		// don't synchronise, while keeping it within one cadence.
		g.phasesUntilEpisode = 1 + g.r.Intn(n)
	}
	return g
}

// episodeCadence returns the deterministic number of burst phases between
// episodes, or 0 when episodes are disabled.
func (g *Generator) episodeCadence() int {
	if g.p.Burst.EpisodeProb <= 0 {
		return 0
	}
	n := int(1/g.p.Burst.EpisodeProb + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// Params returns the generator's application parameters.
func (g *Generator) Params() Params { return g.p }

// Fork implements cpu.ForkableSource: the copy carries the full
// oscillation state and a clone of the RNG, so it continues the exact
// instruction sequence the original would have produced.
func (g *Generator) Fork() cpu.Source {
	f := *g
	f.r = g.r.Clone()
	return &f
}

// jittered perturbs a phase length by ±JitterFrac.
func (g *Generator) jittered(n int) int {
	j := g.p.Burst.JitterFrac
	if j <= 0 {
		return n
	}
	f := 1 + (2*g.r.Float64()-1)*j
	v := int(float64(n)*f + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// Next implements cpu.Source.
func (g *Generator) Next() (cpu.Inst, bool) {
	if g.n >= g.limit {
		return cpu.Inst{}, false
	}
	g.n++
	if !g.p.Burst.Enabled {
		return g.steady(), true
	}
	if g.phaseLeft <= 0 {
		g.inBurst = !g.inBurst
		if g.inBurst {
			b := g.p.Burst
			if g.episodeLeft == 0 && b.EpisodeProb > 0 {
				g.phasesUntilEpisode--
				if g.phasesUntilEpisode <= 0 {
					g.episodeLeft = b.EpisodeLen
					g.phasesUntilEpisode = g.episodeCadence()
				}
			}
			if g.episodeLeft > 0 {
				g.episodeLeft--
				g.episodeActive = true
				g.phaseLeft = b.EpisodeBurstInsts // coherent: no jitter
			} else {
				g.episodeActive = false
				g.phaseLeft = g.jittered(b.BurstInsts)
			}
		} else {
			misses := g.p.Burst.StallMisses
			if g.episodeActive {
				// Episode stalls append a data-dependent barrier
				// branch so the quiet phase truly goes quiet.
				if g.p.Burst.EpisodeStallMisses > 0 {
					misses = g.p.Burst.EpisodeStallMisses
				}
				misses++
			}
			g.phaseLeft = misses
		}
	}
	g.phaseLeft--
	if g.inBurst {
		return g.steady(), true
	}
	if g.phaseLeft == 0 && g.episodeActive {
		// The episode stall ends with a mispredicted branch that
		// depends on the last chain load (a data-dependent branch
		// after a pointer chase): the frontend cannot fetch past it
		// until the whole chain resolves, so the quiet phase actually
		// goes quiet and the episode swings the full current range.
		return cpu.Inst{Class: cpu.Branch, SrcDist1: 1, Mispredicted: true}, true
	}
	// Stall phase: a fully serialised miss chain. Without a barrier the
	// frontend keeps dispatching the next burst behind it, so the dip
	// is shallow — base oscillations stay harmless.
	return cpu.Inst{Class: cpu.Load, SrcDist1: 1, Mem: g.p.Burst.StallLevel}, true
}

// steady samples one instruction from the steady-state model.
func (g *Generator) steady() cpu.Inst {
	var in cpu.Inst
	f := g.r.Float64()
	for cl := cpu.Class(0); cl < cpu.NumClasses; cl++ {
		if f <= g.cum[cl] {
			in.Class = cl
			break
		}
	}
	if g.episodeActive && g.p.Burst.EpisodeILP {
		// Coherent hot loop: same mix, full parallelism, no misses.
		if in.Class == cpu.Branch {
			in.Mispredicted = false
		}
		return in
	}
	if g.p.DepProb > 0 && g.r.Bernoulli(g.p.DepProb) {
		in.SrcDist1 = clampDist(g.r.Geometric(g.p.DepMean))
		if g.p.Dep2Frac > 0 && g.r.Bernoulli(g.p.Dep2Frac) {
			in.SrcDist2 = clampDist(g.r.Geometric(g.p.DepMean))
		}
	}
	switch in.Class {
	case cpu.Load, cpu.Store:
		if g.r.Bernoulli(g.p.L1MissRate) {
			if g.r.Bernoulli(g.p.L2MissRate) {
				in.Mem = cpu.MemMain
			} else {
				in.Mem = cpu.MemL2
			}
		}
	case cpu.Branch:
		in.Mispredicted = g.r.Bernoulli(g.p.MispredictRate)
	}
	return in
}

// clampDist bounds a producer distance to the Inst field width.
func clampDist(d int) uint16 {
	if d > 0xFFFF {
		return 0xFFFF
	}
	return uint16(d)
}
