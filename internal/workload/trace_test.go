package workload

import (
	"sync"
	"testing"
)

// TestTraceMatchesGenerator: for every Table 2 application, the
// materialized trace replays the exact instruction sequence the live
// Generator produces — same classes, distances, memory levels, and
// misprediction flags, and the same end of stream.
func TestTraceMatchesGenerator(t *testing.T) {
	const insts = 50_000
	for _, app := range Apps() {
		app := app
		t.Run(app.Params.Name, func(t *testing.T) {
			gen := NewGenerator(app.Params, insts)
			tr := Materialize(app.Params, insts)
			src := tr.Source()
			if tr.Len() != insts {
				t.Fatalf("trace has %d instructions, want %d", tr.Len(), insts)
			}
			for i := 0; ; i++ {
				want, wok := gen.Next()
				got, gok := src.Next()
				if wok != gok {
					t.Fatalf("inst %d: stream end mismatch (generator %v, trace %v)", i, wok, gok)
				}
				if !wok {
					break
				}
				if want != got {
					t.Fatalf("inst %d: generator %+v, trace replay %+v", i, want, got)
				}
			}
		})
	}
}

// TestTraceIndependentCursors: two cursors over one trace do not
// interfere, and Reset rewinds to the identical stream.
func TestTraceIndependentCursors(t *testing.T) {
	app, err := ByName("parser")
	if err != nil {
		t.Fatal(err)
	}
	tr := Materialize(app.Params, 1_000)
	a, b := tr.Source(), tr.Source()
	for i := 0; i < 500; i++ {
		a.Next()
	}
	first, _ := tr.Source().Next()
	if got, _ := b.Next(); got != first {
		t.Errorf("second cursor perturbed by first: %+v != %+v", got, first)
	}
	a.Reset()
	if got, _ := a.Next(); got != first {
		t.Errorf("reset cursor diverged: %+v != %+v", got, first)
	}
}

// TestStoreCoalescesAndCounts: repeated and concurrent requests for one
// trace materialize it exactly once.
func TestStoreCoalescesAndCounts(t *testing.T) {
	app, err := ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	s := NewTraceStore(0)
	const callers = 16
	var wg sync.WaitGroup
	traces := make([]*Trace, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			traces[i] = s.Get(app.Params, 10_000)
		}(i)
	}
	wg.Wait()
	for i, tr := range traces {
		if tr != traces[0] {
			t.Fatalf("caller %d got a different trace instance", i)
		}
	}
	st := s.Stats()
	if st.Builds != 1 {
		t.Errorf("materialized %d times, want 1", st.Builds)
	}
	if st.Hits != callers-1 {
		t.Errorf("hits = %d, want %d", st.Hits, callers-1)
	}
	if st.Entries != 1 || st.Bytes != traces[0].SizeBytes() {
		t.Errorf("store holds %d entries / %d bytes, want 1 / %d", st.Entries, st.Bytes, traces[0].SizeBytes())
	}
}

// TestStoreBudgetBypass: a stream that alone exceeds the budget is not
// materialized; Source falls back to a live generator with the identical
// stream.
func TestStoreBudgetBypass(t *testing.T) {
	app, err := ByName("lucas")
	if err != nil {
		t.Fatal(err)
	}
	const insts = 10_000
	s := NewTraceStore(insts * bytesPerInst / 2)
	if tr := s.Get(app.Params, insts); tr != nil {
		t.Fatal("over-budget trace was materialized")
	}
	src := s.Source(app.Params, insts)
	if _, isTrace := src.(interface{ Reset() }); isTrace {
		t.Fatal("over-budget Source did not fall back to a generator")
	}
	gen := NewGenerator(app.Params, insts)
	for i := 0; i < insts; i++ {
		want, _ := gen.Next()
		got, ok := src.Next()
		if !ok || want != got {
			t.Fatalf("inst %d: fallback stream diverged (%+v vs %+v)", i, want, got)
		}
	}
	st := s.Stats()
	if st.Bypasses != 2 || st.Builds != 0 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 2 bypasses and an empty store", st)
	}
}

// TestStoreLRUEviction: filling the store past its budget evicts the
// least recently used trace, and a shrunken budget evicts immediately.
func TestStoreLRUEviction(t *testing.T) {
	apps := Apps()
	const insts = 1_000
	// Room for exactly two traces.
	s := NewTraceStore(2 * insts * bytesPerInst)
	a, b, c := apps[0].Params, apps[1].Params, apps[2].Params
	s.Get(a, insts)
	s.Get(b, insts)
	s.Get(a, insts) // touch a: b becomes LRU
	s.Get(c, insts) // evicts b
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after fill = %+v, want 1 eviction, 2 entries", st)
	}
	if s.Stats().Hits != 1 {
		t.Errorf("hits = %d, want 1 (the re-touch of %s)", st.Hits, a.Name)
	}
	// b was evicted: asking again rebuilds it.
	s.Get(b, insts)
	if st := s.Stats(); st.Builds != 4 {
		t.Errorf("builds = %d, want 4 (b rebuilt after eviction)", st.Builds)
	}
	// Shrinking the budget below one trace empties the store.
	s.SetBudget(insts * bytesPerInst / 2)
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("store not emptied by budget shrink: %+v", st)
	}
}
