package workload

import (
	"testing"

	"repro/internal/cpu"
)

func TestTwentySixApps(t *testing.T) {
	all := Apps()
	if len(all) != 26 {
		t.Fatalf("got %d apps, want the 26 of Table 2", len(all))
	}
	violating := 0
	seen := map[string]bool{}
	for _, a := range all {
		if err := a.Params.Validate(); err != nil {
			t.Errorf("%s: invalid params: %v", a.Params.Name, err)
		}
		if seen[a.Params.Name] {
			t.Errorf("duplicate app %s", a.Params.Name)
		}
		seen[a.Params.Name] = true
		if a.PaperViolating {
			violating++
			if a.PaperViolationFrac <= 0 {
				t.Errorf("%s: violating app without a paper violation fraction", a.Params.Name)
			}
		} else if a.PaperViolationFrac != 0 {
			t.Errorf("%s: non-violating app carries a violation fraction", a.Params.Name)
		}
		if a.PaperIPC <= 0 || a.PaperIPC > 8 {
			t.Errorf("%s: implausible paper IPC %g", a.Params.Name, a.PaperIPC)
		}
	}
	if violating != 12 {
		t.Errorf("%d violating apps, want 12", violating)
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("parser")
	if err != nil {
		t.Fatal(err)
	}
	if a.Params.Name != "parser" || !a.PaperViolating {
		t.Errorf("ByName(parser) = %+v", a.Params.Name)
	}
	if _, err := ByName("quake3"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestNamesMatchApps(t *testing.T) {
	names := Names()
	all := Apps()
	if len(names) != len(all) {
		t.Fatalf("Names/Apps length mismatch")
	}
	for i := range names {
		if names[i] != all[i].Params.Name {
			t.Errorf("index %d: %s vs %s", i, names[i], all[i].Params.Name)
		}
	}
}

func TestAppsReturnsCopy(t *testing.T) {
	a := Apps()
	a[0].Params.Name = "clobbered"
	if Apps()[0].Params.Name == "clobbered" {
		t.Error("Apps returned shared backing storage")
	}
}

// TestAppIPCCalibration verifies every synthetic app lands near the IPC
// the paper reports in Table 2 (which the models are calibrated against).
func TestAppIPCCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	for _, a := range Apps() {
		a := a
		t.Run(a.Params.Name, func(t *testing.T) {
			t.Parallel()
			g := NewGenerator(a.Params, 200_000)
			core := cpu.New(cpu.DefaultConfig(), g)
			core.Run(5_000_000, cpu.Unlimited)
			if !core.Done() {
				t.Fatal("stream did not drain")
			}
			ipc := core.IPC()
			rel := (ipc - a.PaperIPC) / a.PaperIPC
			if rel < -0.12 || rel > 0.12 {
				t.Errorf("IPC %.2f vs paper %.2f (%.0f%% off)", ipc, a.PaperIPC, rel*100)
			}
		})
	}
}
