package workload

import (
	"fmt"
	"sort"

	"repro/internal/cpu"
)

// App pairs a synthetic application model with the behaviour the paper
// reports for it in Table 2: its IPC on the base processor and whether it
// exhibits noise-margin violations.
type App struct {
	Params Params
	// PaperIPC is the IPC reported in Table 2.
	PaperIPC float64
	// PaperViolating records whether Table 2 lists the app among those
	// with noise-margin violations.
	PaperViolating bool
	// PaperViolationFrac is Table 2's fraction of cycles in violation
	// (×1, not ×1e-6); zero for non-violating apps.
	PaperViolationFrac float64
}

// intMix is a generic integer-code instruction mix.
func intMix(load, store, branch float64) Mix {
	rest := 1 - load - store - branch
	return Mix{IntALU: rest * 0.92, IntMul: rest * 0.08, Load: load, Store: store, Branch: branch}
}

// fpMix is a generic floating-point-code instruction mix.
func fpMix(load, store, branch float64) Mix {
	rest := 1 - load - store - branch
	return Mix{IntALU: rest * 0.30, FPALU: rest * 0.50, FPMul: rest * 0.20, Load: load, Store: store, Branch: branch}
}

// oscillate builds the burst/stall structure of a violating application:
// the base oscillation period sits safely below the resonance band
// (~165 cycles: a burst plus an L2 miss chain of stallMisses loads ending
// in a data-dependent mispredicted branch), and with probability
// episodeProb the program phases align into a coherent in-band episode
// (~100-cycle period: a 45-cycle burst plus a 4-deep miss chain) for
// EpisodeLen phases. episodeProb therefore sets the app's violation rate.
func oscillate(baseInsts, stallMisses, episodeInsts int, episodeProb float64) Burst {
	return Burst{
		Enabled:            true,
		BurstInsts:         baseInsts,
		StallMisses:        stallMisses,
		StallLevel:         cpu.MemL2,
		JitterFrac:         0.12,
		EpisodeProb:        episodeProb,
		EpisodeLen:         10,
		EpisodeBurstInsts:  episodeInsts,
		EpisodeStallMisses: 4,
		EpisodeILP:         true,
	}
}

// The violating applications (Table 2 top half) pair a steady mix tuned
// to the burst-phase IPC with an oscillation whose episode probability is
// graded to reproduce the ordering of Table 2's violation fractions
// (lucas ≫ swim ≫ bzip ≫ parser ≫ crafty/art/mgrid ≫ the rest).
// The non-violating applications (bottom half) run steadily — or, for a
// few, oscillate at clearly off-band periods — with dependency structure
// tuned to the Table 2 IPC.
var apps = []App{
	// ---- Applications with noise-margin violations ----
	{Params: Params{Name: "applu", Seed: 101, Mix: fpMix(0.24, 0.10, 0.03),
		DepProb: 0.85, DepMean: 1.6, Dep2Frac: 0.45, MispredictRate: 0.01, L1MissRate: 0.01, L2MissRate: 0.2,
		Burst: oscillate(576, 11, 300, 1.2e-3)},
		PaperIPC: 1.97, PaperViolating: true, PaperViolationFrac: 0.173e-6},
	{Params: Params{Name: "art", Seed: 102, Mix: fpMix(0.28, 0.08, 0.05),
		DepProb: 0.85, DepMean: 1.6, Dep2Frac: 0.45, MispredictRate: 0.02, L1MissRate: 0.03, L2MissRate: 0.3,
		Burst: oscillate(330, 11, 300, 1.2e-3)},
		PaperIPC: 1.49, PaperViolating: true, PaperViolationFrac: 3.26e-6},
	{Params: Params{Name: "bzip", Seed: 103, Mix: intMix(0.26, 0.10, 0.12),
		DepProb: 0.85, DepMean: 1.6, Dep2Frac: 0.45, MispredictRate: 0.01, L1MissRate: 0.005, L2MissRate: 0.2,
		Burst: oscillate(552, 11, 300, 2.5e-3)},
		PaperIPC: 2.19, PaperViolating: true, PaperViolationFrac: 173e-6},
	{Params: Params{Name: "crafty", Seed: 104, Mix: intMix(0.28, 0.08, 0.12),
		DepProb: 0.85, DepMean: 1.5, Dep2Frac: 0.4, MispredictRate: 0.015, L1MissRate: 0.005, L2MissRate: 0.1,
		Burst: oscillate(577, 11, 300, 1.2e-3)},
		PaperIPC: 2.25, PaperViolating: true, PaperViolationFrac: 4.52e-6},
	{Params: Params{Name: "facerec", Seed: 105, Mix: fpMix(0.24, 0.08, 0.04),
		DepProb: 0.85, DepMean: 2, Dep2Frac: 0.3, MispredictRate: 0.006, L1MissRate: 0.005, L2MissRate: 0.2,
		Burst: oscillate(1180, 11, 300, 2.5e-3)},
		PaperIPC: 2.60, PaperViolating: true, PaperViolationFrac: 0.047e-6},
	{Params: Params{Name: "gcc", Seed: 106, Mix: intMix(0.25, 0.12, 0.14),
		DepProb: 0.85, DepMean: 1.6, Dep2Frac: 0.45, MispredictRate: 0.02, L1MissRate: 0.01, L2MissRate: 0.2,
		Burst: oscillate(593, 11, 300, 8e-4)},
		PaperIPC: 2.13, PaperViolating: true, PaperViolationFrac: 0.047e-6},
	{Params: Params{Name: "lucas", Seed: 107, Mix: fpMix(0.30, 0.12, 0.02),
		DepProb: 0.85, DepMean: 1.3, Dep2Frac: 0.3, MispredictRate: 0.005, L1MissRate: 0.01, L2MissRate: 0.3,
		Burst: oscillate(159, 16, 300, 1.2e-2)},
		PaperIPC: 0.85, PaperViolating: true, PaperViolationFrac: 5597e-6},
	{Params: Params{Name: "mcf", Seed: 108, Mix: intMix(0.34, 0.08, 0.08),
		DepProb: 0.85, DepMean: 1.6, Dep2Frac: 0.45, MispredictRate: 0.03, L1MissRate: 0.08, L2MissRate: 0.5,
		Burst: oscillate(150, 36, 300, 3e-4)},
		PaperIPC: 0.38, PaperViolating: true, PaperViolationFrac: 0.032e-6},
	{Params: Params{Name: "mgrid", Seed: 109, Mix: fpMix(0.28, 0.10, 0.02),
		DepProb: 0.85, DepMean: 2, Dep2Frac: 0.3, MispredictRate: 0.004, L1MissRate: 0.005, L2MissRate: 0.2,
		Burst: oscillate(2284, 11, 300, 4e-3)},
		PaperIPC: 2.88, PaperViolating: true, PaperViolationFrac: 2.61e-6},
	{Params: Params{Name: "parser", Seed: 110, Mix: intMix(0.26, 0.10, 0.13),
		DepProb: 0.85, DepMean: 1.6, Dep2Frac: 0.6, MispredictRate: 0.02, L1MissRate: 0.01, L2MissRate: 0.25,
		Burst: oscillate(372, 11, 300, 2e-3)},
		PaperIPC: 1.71, PaperViolating: true, PaperViolationFrac: 64.2e-6},
	{Params: Params{Name: "swim", Seed: 111, Mix: fpMix(0.30, 0.14, 0.02),
		DepProb: 0.85, DepMean: 1.6, Dep2Frac: 0.45, MispredictRate: 0.004, L1MissRate: 0.015, L2MissRate: 0.3,
		Burst: oscillate(745, 11, 300, 5e-3)},
		PaperIPC: 1.99, PaperViolating: true, PaperViolationFrac: 2730e-6},
	{Params: Params{Name: "wupwise", Seed: 112, Mix: fpMix(0.20, 0.06, 0.04),
		DepProb: 0.80, DepMean: 2, Dep2Frac: 0.25, MispredictRate: 0.004, L1MissRate: 0.003, L2MissRate: 0.2,
		Burst: oscillate(2434, 11, 300, 4e-3)},
		PaperIPC: 3.47, PaperViolating: true, PaperViolationFrac: 0.097e-6},

	// ---- Applications without noise-margin violations ----
	{Params: Params{Name: "ammp", Seed: 201, Mix: fpMix(0.38, 0.08, 0.04),
		DepProb: 1.0, DepMean: 1.5, Dep2Frac: 0.5, MispredictRate: 0.02, L1MissRate: 0.06, L2MissRate: 0.55},
		PaperIPC: 0.44},
	{Params: Params{Name: "apsi", Seed: 202, Mix: fpMix(0.26, 0.10, 0.05),
		DepProb: 1.0, DepMean: 4, Dep2Frac: 0.05, MispredictRate: 0.012, L1MissRate: 0.02, L2MissRate: 0.2},
		PaperIPC: 1.85},
	{Params: Params{Name: "eon", Seed: 203, Mix: intMix(0.26, 0.12, 0.10),
		DepProb: 0.95, DepMean: 3.6, Dep2Frac: 0.3, MispredictRate: 0.008, L1MissRate: 0.004, L2MissRate: 0.1},
		PaperIPC: 2.72},
	{Params: Params{Name: "equake", Seed: 304, Mix: fpMix(0.24, 0.08, 0.03),
		DepProb: 0.80, DepMean: 2, Dep2Frac: 0.25, MispredictRate: 0.003, L1MissRate: 0.002, L2MissRate: 0},
		PaperIPC: 4.00},
	{Params: Params{Name: "fma3d", Seed: 205, Mix: fpMix(0.22, 0.08, 0.03),
		DepProb: 0.80, DepMean: 2, Dep2Frac: 0.25, MispredictRate: 0.003, L1MissRate: 0.002, L2MissRate: 0},
		PaperIPC: 4.11},
	{Params: Params{Name: "galgel", Seed: 206, Mix: fpMix(0.24, 0.08, 0.03),
		DepProb: 0.85, DepMean: 2.1, Dep2Frac: 0.25, MispredictRate: 0.004, L1MissRate: 0.004, L2MissRate: 0.1},
		PaperIPC: 3.61},
	{Params: Params{Name: "gap", Seed: 207, Mix: intMix(0.26, 0.10, 0.10),
		DepProb: 0.90, DepMean: 4, Dep2Frac: 0.6, MispredictRate: 0.008, L1MissRate: 0.006, L2MissRate: 0.1},
		PaperIPC: 2.84},
	{Params: Params{Name: "gzip", Seed: 208, Mix: intMix(0.24, 0.10, 0.12),
		DepProb: 0.95, DepMean: 1.3, Dep2Frac: 0.7, MispredictRate: 0.012, L1MissRate: 0.008, L2MissRate: 0.1},
		PaperIPC: 2.01},
	{Params: Params{Name: "mesa", Seed: 209, Mix: fpMix(0.24, 0.10, 0.06),
		DepProb: 0.85, DepMean: 2, Dep2Frac: 0.4, MispredictRate: 0.005, L1MissRate: 0.003, L2MissRate: 0.1},
		PaperIPC: 3.34},
	{Params: Params{Name: "perlbmk", Seed: 210, Mix: intMix(0.26, 0.12, 0.13),
		DepProb: 1.0, DepMean: 2, Dep2Frac: 0, MispredictRate: 0.025, L1MissRate: 0.01, L2MissRate: 0.2},
		PaperIPC: 1.34},
	{Params: Params{Name: "sixtrack", Seed: 211, Mix: fpMix(0.24, 0.08, 0.04),
		DepProb: 0.85, DepMean: 2, Dep2Frac: 0.4, MispredictRate: 0.004, L1MissRate: 0.003, L2MissRate: 0.1},
		PaperIPC: 3.31},
	{Params: Params{Name: "twolf", Seed: 212, Mix: intMix(0.26, 0.10, 0.13),
		DepProb: 1.0, DepMean: 2, Dep2Frac: 0, MispredictRate: 0.022, L1MissRate: 0.015, L2MissRate: 0.2},
		PaperIPC: 1.35},
	{Params: Params{Name: "vortex", Seed: 213, Mix: intMix(0.28, 0.12, 0.10),
		DepProb: 0.85, DepMean: 2, Dep2Frac: 1.0, MispredictRate: 0.01, L1MissRate: 0.008, L2MissRate: 0.15},
		PaperIPC: 2.40},
	{Params: Params{Name: "vpr", Seed: 214, Mix: intMix(0.26, 0.10, 0.12),
		DepProb: 1.0, DepMean: 2.1, Dep2Frac: 0, MispredictRate: 0.02, L1MissRate: 0.012, L2MissRate: 0.2},
		PaperIPC: 1.39},
}

// Apps returns the 26 SPEC2K application models in Table 2 order
// (violating applications first). The slice is freshly allocated; callers
// may reorder it.
func Apps() []App {
	out := make([]App, len(apps))
	copy(out, apps)
	return out
}

// Names returns the application names in Table 2 order.
func Names() []string {
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Params.Name
	}
	return out
}

// ByName returns the application model with the given name.
func ByName(name string) (App, error) {
	for _, a := range apps {
		if a.Params.Name == name {
			return a, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return App{}, fmt.Errorf("workload: unknown application %q (known: %v)", name, known)
}
