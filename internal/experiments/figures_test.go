package experiments

import (
	"strings"
	"testing"
)

func TestFiguresForWaveformExperiments(t *testing.T) {
	rep, err := Fig3(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	figs := Figures(rep)
	for _, key := range []string{"fig3-voltage", "fig3-current"} {
		svg, ok := figs[key]
		if !ok {
			t.Fatalf("missing figure %s (have %v)", key, keysOf(figs))
		}
		if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
			t.Errorf("%s: malformed SVG", key)
		}
	}
	// The voltage figure carries the ±50 mV margin lines.
	if n := strings.Count(figs["fig3-voltage"], "stroke-dasharray"); n < 2 {
		t.Errorf("fig3-voltage has %d dashed reference lines, want ≥ 2", n)
	}
}

func TestFiguresForImpedance(t *testing.T) {
	rep, err := Fig1c(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	figs := Figures(rep)
	if len(figs) != 2 {
		t.Fatalf("fig1c produced %d figures, want 2 (%v)", len(figs), keysOf(figs))
	}
	for key, svg := range figs {
		if !strings.Contains(svg, "polyline") {
			t.Errorf("%s: no curve rendered", key)
		}
		// Resonance band shading present.
		if !strings.Contains(svg, "#fce9a9") {
			t.Errorf("%s: band shading missing", key)
		}
	}
}

func TestFiguresEmptyForUnplottedData(t *testing.T) {
	if figs := Figures(Report{ID: "x", Data: nil}); len(figs) != 0 {
		t.Errorf("nil data produced %d figures", len(figs))
	}
}

func keysOf(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestHTMLReport(t *testing.T) {
	rep, err := Fig1c(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	page := HTMLReport([]Report{rep})
	for _, want := range []string{
		"<!DOCTYPE html>", "</html>", "fig1c", "<svg", "<pre>",
		"impedance vs frequency",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
	// The text block is escaped (report text contains 'Ω' and table
	// dashes but must not break out of <pre>).
	if strings.Contains(page, "<pre><svg") {
		t.Error("SVG leaked into the text block")
	}
	// Deterministic figure order.
	if HTMLReport([]Report{rep}) != page {
		t.Error("HTML report not deterministic")
	}
	// Unknown ids degrade gracefully.
	if got := HTMLReport([]Report{{ID: "mystery", Text: "?"}}); !strings.Contains(got, "mystery") {
		t.Error("unknown experiment id dropped")
	}
}
