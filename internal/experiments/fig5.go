package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/baselines/damping"
	"repro/internal/baselines/voltctl"
	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/metrics"
)

// Fig5Bar is one design point of the Figure 5 comparison.
type Fig5Bar struct {
	Label          string
	Technique      string
	AvgEnergyDelay float64
	AvgSlowdown    float64
	PaperED        float64
}

// Fig5Data is the comparison across the three techniques' representative
// design points.
type Fig5Data struct {
	Bars []Fig5Bar
}

// Fig5 reproduces Figure 5: relative energy-delay of resonance tuning
// (initial response times 75 and 100), the technique of [10] at its
// realistic noise/delay points, and pipeline damping at δ of 0.5 and
// 0.25 of the threshold. The expected shape: resonance tuning wins,
// followed by damping, with [10] worst once sensors are realistic.
func Fig5(opts Options) (Report, error) {
	eng := opts.engine()
	base, err := runSuite(eng, opts, engine.Spec{})
	if err != nil {
		return Report{}, err
	}
	supply := circuit.Table1()
	window := int(math.Round(supply.ResonantPeriodCycles() / 2))

	type point struct {
		label   string
		spec    engine.Spec
		paperED float64
	}
	tuningSpec := func(initial int) engine.Spec {
		cfg := paperTuningConfig(initial, 0)
		return engine.Spec{Technique: engine.TechniqueTuning, Tuning: &cfg}
	}
	voltSpec := func(targetMV, noiseMV float64, delay int) engine.Spec {
		cfg := voltctl.Config{
			TargetThresholdVolts: targetMV / 1000,
			SensorNoiseVolts:     noiseMV / 1000,
			SensorDelayCycles:    delay,
			Seed:                 777,
		}
		return engine.Spec{Technique: engine.TechniqueVoltageControl, VoltageControl: &cfg}
	}
	dampSpec := func(deltaAmps float64) engine.Spec {
		cfg := damping.Config{WindowCycles: window, DeltaAmps: deltaAmps, Scale: dampingScale}
		return engine.Spec{Technique: engine.TechniqueDamping, Damping: &cfg}
	}

	points := []point{
		{"A: tuning, 75-cycle response", tuningSpec(75), 1.052},
		{"B: tuning, 100-cycle response", tuningSpec(100), 1.057},
		{"C: [10] 20mV/10mV/5cyc", voltSpec(20, 10, 5), 1.191},
		{"D: [10] 20mV/15mV/3cyc", voltSpec(20, 15, 3), 1.460},
		{"E: damping, δ=0.5×threshold", dampSpec(16), 1.17},
		{"F: damping, δ=0.25×threshold", dampSpec(8), 1.26},
	}

	data := &Fig5Data{}
	for _, pt := range points {
		results, err := runSuite(eng, opts, pt.spec)
		if err != nil {
			return Report{}, err
		}
		rels, err := metrics.Compare(base, results)
		if err != nil {
			return Report{}, err
		}
		sum := metrics.Summarize(rels)
		tech := "?"
		if len(results) > 0 {
			tech = results[0].Technique
		}
		data.Bars = append(data.Bars, Fig5Bar{
			Label:          pt.label,
			Technique:      tech,
			AvgEnergyDelay: sum.AvgEnergyDelay,
			AvgSlowdown:    sum.AvgSlowdown,
			PaperED:        pt.paperED,
		})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: relative energy-delay comparison (%d instructions/app)\n\n", opts.instructions())
	maxED := 1.0
	for _, bar := range data.Bars {
		if bar.AvgEnergyDelay > maxED {
			maxED = bar.AvgEnergyDelay
		}
	}
	for _, bar := range data.Bars {
		frac := (bar.AvgEnergyDelay - 1) / (maxED - 1 + 1e-9)
		if frac < 0 {
			frac = 0
		}
		n := int(frac * 50)
		fmt.Fprintf(&b, "%-32s %.3f |%s  (paper %.3f)\n",
			bar.Label, bar.AvgEnergyDelay, strings.Repeat("#", n), bar.PaperED)
	}
	b.WriteString("\n(relative energy-delay; 1.000 = uncontrolled base machine)\n")
	return Report{ID: "fig5", Text: b.String(), Data: data}, nil
}
