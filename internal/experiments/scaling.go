package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// ScalingRow is one technology design point.
type ScalingRow struct {
	// ResonantFreqMHz and PeriodCycles characterise the supply.
	ResonantFreqMHz float64
	PeriodCycles    float64
	// QuarterPeriodCycles is the paper's measure of how much time the
	// technique has to react (12 cycles in its present-day example, 50
	// at a 10 GHz / 50 MHz design point).
	QuarterPeriodCycles int
	// ThresholdAmps and Tolerance are the Section 2.1.3 calibration.
	ThresholdAmps float64
	Tolerance     int

	BaseViolations      uint64
	ViolationsRemaining uint64
	Slowdown            float64
	EnergyDelay         float64
}

// ScalingData holds the sweep.
type ScalingData struct {
	Rows []ScalingRow
}

// Scaling evaluates the paper's Section 3.2 technology-trend argument:
// as on-die capacitance grows with each generation, the resonant
// frequency falls, the resonant period spans more processor cycles, and
// resonance tuning has ever more time to sense, detect, and react. The
// sweep holds the 10 GHz clock and scales L and C together so that the
// resonance moves to 200, 100, and 50 MHz while the peak impedance,
// quality factor, threshold, and repetition tolerance stay fixed — a
// controlled experiment isolating exactly the cycles-per-period variable
// the paper's argument is about. Each design point gets its own
// calibration, detector band, and a workload oscillating in its band.
func Scaling(opts Options) (Report, error) {
	data := &ScalingData{}
	eng := opts.engine()
	for _, k := range []float64{0.5, 1, 2} { // (L,C) → (kL,kC): f0 = 200, 100, 50 MHz
		supply := circuit.Table1()
		supply.L *= k
		supply.C *= k
		row, err := runScalingPoint(eng, opts, supply)
		if err != nil {
			return Report{}, fmt.Errorf("scaling: f0=%.0f MHz: %w", supply.ResonantFrequency()/1e6, err)
		}
		data.Rows = append(data.Rows, row)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Technology scaling (Section 3.2): resonance tuning vs resonant period\n")
	fmt.Fprintf(&b, "(%d instructions per point; 10 GHz clock, on-die C scaled)\n\n", opts.instructions())
	tab := metrics.Table{Headers: []string{
		"f0 (MHz)", "period (cycles)", "quarter period", "threshold (A)", "tolerance",
		"violations (base→tuned)", "slowdown", "energy-delay",
	}}
	for _, r := range data.Rows {
		tab.AddRow(
			fmt.Sprintf("%.0f", r.ResonantFreqMHz),
			fmt.Sprintf("%.0f", r.PeriodCycles),
			r.QuarterPeriodCycles,
			r.ThresholdAmps,
			r.Tolerance,
			fmt.Sprintf("%d→%d", r.BaseViolations, r.ViolationsRemaining),
			fmt.Sprintf("%.3f", r.Slowdown),
			fmt.Sprintf("%.3f", r.EnergyDelay),
		)
	}
	b.WriteString(tab.String())
	b.WriteString("\nthe quarter period — the response window the paper highlights — grows\n" +
		"from ~12 cycles at 200 MHz to ~50 at 50 MHz while the electrical\n" +
		"severity (threshold, tolerance) is held fixed. Tuning removes the bulk\n" +
		"of the violations at every point at comparable cost, with the tightest\n" +
		"design (12-cycle window) already workable — and every generation after\n" +
		"it roomier, the paper's Section 3.2 argument.\n")
	return Report{ID: "scaling", Text: b.String(), Data: data}, nil
}

// runScalingPoint calibrates one supply, builds an in-band oscillating
// workload and the matching tuning configuration, and measures base vs
// tuned behaviour through the cached engine.
func runScalingPoint(eng *engine.Engine, opts Options, supply circuit.Params) (ScalingRow, error) {
	chars, err := supply.Characterize()
	if err != nil {
		return ScalingRow{}, err
	}
	cal, err := circuit.Calibrate(supply)
	if err != nil {
		return ScalingRow{}, err
	}
	period := chars.ResonantPeriodCycles

	// Workload: base oscillation at 1.65× the resonant period with
	// resonant episodes at the period itself, mirroring the medium-band
	// violator structure. Episode stalls are L2 chains roughly half a
	// period long.
	epStall := int(math.Max(2, math.Round(period/2/12)))
	baseStall := int(math.Max(3, math.Round(1.65*period/2/12)))
	app := workload.Params{
		Name: "scaleosc", Seed: 7,
		Mix:     workload.Mix{IntALU: 0.52, FPALU: 0.12, Load: 0.22, Store: 0.08, Branch: 0.06},
		DepProb: 0.6, DepMean: 3,
		MispredictRate: 0.01, L1MissRate: 0.003, L2MissRate: 0.1,
		Burst: workload.Burst{
			Enabled:            true,
			BurstInsts:         int(1.65 * period / 2 * 4.5),
			StallMisses:        baseStall,
			StallLevel:         cpu.MemL2,
			JitterFrac:         0.08,
			EpisodeProb:        0.02,
			EpisodeLen:         10,
			EpisodeBurstInsts:  int(period / 2 * 4.5),
			EpisodeStallMisses: epStall,
			EpisodeILP:         true,
		},
	}
	if err := app.Validate(); err != nil {
		return ScalingRow{}, err
	}

	lo, hi := chars.BandCycles.HalfPeriods()
	threshold := cal.ThresholdAmps
	if threshold >= supply.MaxCurrentSwing() {
		// Overdesigned corner: fall back to the paper's constant so the
		// detector still watches for something.
		threshold = 32
	}
	tolerance := cal.MaxRepetitionTolerance
	if tolerance > 8 {
		tolerance = 8
	}
	tcfg := tuning.Config{
		Detector: tuning.DetectorConfig{
			HalfPeriodLo:           lo,
			HalfPeriodHi:           hi,
			ThresholdAmps:          threshold,
			MaxRepetitionTolerance: tolerance,
		},
		InitialResponseThreshold: maxInt(1, tolerance-2),
		SecondResponseThreshold:  maxInt(2, tolerance-1),
		InitialResponseCycles:    int(period),
		SecondResponseCycles:     circuit.DissipationCycles(supply, tolerance) + 3,
		ReducedIssueWidth:        4,
		ReducedCachePorts:        1,
		PhantomTargetAmps:        (supply.IMax + supply.IMin) / 2,
	}
	if err := tcfg.Validate(); err != nil {
		return ScalingRow{}, err
	}

	cfg := sim.DefaultConfig()
	cfg.Supply = supply

	template := engine.Spec{Workload: &app, System: &cfg, Instructions: opts.instructions()}
	tunedSpec := template
	tunedSpec.Technique = engine.TechniqueTuning
	tunedSpec.Tuning = &tcfg
	results, err := eng.RunAll(context.Background(), []engine.Spec{template, tunedSpec}, nil)
	if err != nil {
		return ScalingRow{}, err
	}
	base, tuned := results[0], results[1]
	rels, err := metrics.Compare([]sim.Result{base}, []sim.Result{tuned})
	if err != nil {
		return ScalingRow{}, err
	}
	sum := metrics.Summarize(rels)
	return ScalingRow{
		ResonantFreqMHz:     chars.ResonantFrequencyHz / 1e6,
		PeriodCycles:        period,
		QuarterPeriodCycles: int(period / 4),
		ThresholdAmps:       threshold,
		Tolerance:           tolerance,
		BaseViolations:      base.Violations,
		ViolationsRemaining: tuned.Violations,
		Slowdown:            sum.AvgSlowdown,
		EnergyDelay:         sum.AvgEnergyDelay,
	}, nil
}

// maxInt returns the larger of two ints.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
