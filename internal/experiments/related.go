package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baselines/convctl"
	"repro/internal/baselines/damping"
	"repro/internal/baselines/voltctl"
	"repro/internal/baselines/wavelet"
	"repro/internal/circuit"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

// RelatedRow is one technique's summary in the related-work comparison.
type RelatedRow struct {
	Technique           string
	AvgSlowdown         float64
	AvgEnergy           float64
	AvgEnergyDelay      float64
	ViolationsRemaining uint64
	BaseViolations      uint64
}

// RelatedData holds the five-way comparison.
type RelatedData struct {
	Rows []RelatedRow
}

// Related compares resonance tuning with every related technique the
// paper discusses — [10]'s voltage-threshold control, [14]'s pipeline
// damping, [8]'s convolution-based prediction, and a [11]-style Haar-
// wavelet detector — on the frequently violating application subset.
// This goes beyond the paper's own evaluation (which covers [10] and
// [14]) by also implementing the two schemes it discusses qualitatively.
func Related(opts Options) (Report, error) {
	base, err := runRelatedSuite(opts, nil)
	if err != nil {
		return Report{}, err
	}
	data := &RelatedData{}

	supply := circuit.Table1()
	techs := []struct {
		name  string
		build func(pwrFire, pwrMid float64) sim.Technique
	}{
		{"resonance tuning (paper)", func(_, mid float64) sim.Technique {
			cfg := paperTuningConfig(100, 0)
			cfg.PhantomTargetAmps = mid
			return sim.NewResonanceTuning(cfg)
		}},
		{"voltage control [10] (20mV/10mV/5cyc)", func(fire, _ float64) sim.Technique {
			return sim.NewVoltageControl(voltctl.Config{
				TargetThresholdVolts: 0.020, SensorNoiseVolts: 0.010,
				SensorDelayCycles: 5, Seed: 777,
			}, fire)
		}},
		{"pipeline damping [14] (δ=0.5×threshold)", func(_, _ float64) sim.Technique {
			return sim.NewDamping(damping.Config{WindowCycles: 50, DeltaAmps: 16, Scale: dampingScale})
		}},
		{"convolution control [8], perfect estimates", func(fire, _ float64) sim.Technique {
			return sim.NewConvolutionControl(convctl.Config{Supply: supply}, fire)
		}},
		{"convolution control [8], ±10 A estimate error", func(fire, _ float64) sim.Technique {
			return sim.NewConvolutionControl(convctl.Config{
				Supply: supply, EstimateErrorAmps: 10, Seed: 99,
			}, fire)
		}},
		{"wavelet detector [11]-style", func(_, _ float64) sim.Technique {
			return sim.NewWaveletControl(wavelet.Config{})
		}},
	}

	for _, tc := range techs {
		results, err := runRelatedSuite(opts, tc.build)
		if err != nil {
			return Report{}, fmt.Errorf("related: %s: %w", tc.name, err)
		}
		rels, err := metrics.Compare(base, results)
		if err != nil {
			return Report{}, err
		}
		sum := metrics.Summarize(rels)
		data.Rows = append(data.Rows, RelatedRow{
			Technique:           tc.name,
			AvgSlowdown:         sum.AvgSlowdown,
			AvgEnergy:           sum.AvgEnergy,
			AvgEnergyDelay:      sum.AvgEnergyDelay,
			ViolationsRemaining: sum.TechViolations,
			BaseViolations:      sum.BaseViolations,
		})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Related techniques (%d instructions/app over %v)\n\n", opts.instructions(), ablationApps)
	tab := metrics.Table{Headers: []string{
		"technique", "avg slowdown", "avg energy", "avg energy-delay", "violations (base→ctl)",
	}}
	for _, r := range data.Rows {
		tab.AddRow(r.Technique,
			fmt.Sprintf("%.3f", r.AvgSlowdown),
			fmt.Sprintf("%.3f", r.AvgEnergy),
			fmt.Sprintf("%.3f", r.AvgEnergyDelay),
			fmt.Sprintf("%d→%d", r.BaseViolations, r.ViolationsRemaining))
	}
	b.WriteString(tab.String())
	b.WriteString("\n[8] and [11] are the paper's Sections 1/6 discussion made concrete.\n" +
		"Convolution control predicts superbly in simulation — even with noisy\n" +
		"estimates — which sharpens the paper's actual critique: the barrier is\n" +
		"a ~400-tap multiply-accumulate every cycle at core clock, not accuracy\n" +
		"(compare BenchmarkSimCycle with and without it). The dyadic wavelet\n" +
		"scales approximate the band more coarsely than resonance tuning's\n" +
		"per-half-period adders and pay roughly [10]-like costs.\n")
	return Report{ID: "related", Text: b.String(), Data: data}, nil
}

// runRelatedSuite runs the ablation subset under one technique builder.
func runRelatedSuite(opts Options, build func(fire, mid float64) sim.Technique) ([]sim.Result, error) {
	var out []sim.Result
	for _, name := range ablationApps {
		app, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		var factory techFactory
		if build != nil {
			factory = func(a workload.App, pwr *power.Model) sim.Technique {
				return build(pwr.PhantomFireAmps(), pwr.MidAmps())
			}
		}
		r, err := runOne(opts, app, factory)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
