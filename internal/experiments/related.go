package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baselines/convctl"
	"repro/internal/baselines/voltctl"
	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/metrics"
)

// RelatedRow is one technique's summary in the related-work comparison.
type RelatedRow struct {
	Technique           string
	AvgSlowdown         float64
	AvgEnergy           float64
	AvgEnergyDelay      float64
	ViolationsRemaining uint64
	BaseViolations      uint64
}

// RelatedData holds the five-way comparison.
type RelatedData struct {
	Rows []RelatedRow
}

// Related compares resonance tuning with every related technique the
// paper discusses — [10]'s voltage-threshold control, [14]'s pipeline
// damping, [8]'s convolution-based prediction, and a [11]-style Haar-
// wavelet detector — on the frequently violating application subset.
// This goes beyond the paper's own evaluation (which covers [10] and
// [14]) by also implementing the two schemes it discusses qualitatively.
func Related(opts Options) (Report, error) {
	eng := opts.engine()
	base, err := runApps(eng, opts, engine.Spec{}, ablationApps)
	if err != nil {
		return Report{}, err
	}
	data := &RelatedData{}

	supply := circuit.Table1()
	// Every technique is an engine Spec: construction, phantom-fire and
	// mid-level current derivation, the worker pool, and the result
	// cache are all the engine's.
	paperCfg := paperTuningConfig(100, 0)
	paperCfg.PhantomTargetAmps = 0 // resolved to the mid current level
	voltCfg := voltctl.Config{
		TargetThresholdVolts: 0.020, SensorNoiseVolts: 0.010,
		SensorDelayCycles: 5, Seed: 777,
	}
	dampCfg := engine.DampingConfig{WindowCycles: 50, DeltaAmps: 16, Scale: dampingScale}
	convPerfect := convctl.Config{Supply: supply}
	convNoisy := convctl.Config{Supply: supply, EstimateErrorAmps: 10, Seed: 99}
	techs := []struct {
		name string
		spec engine.Spec
	}{
		{"resonance tuning (paper)",
			engine.Spec{Technique: engine.TechniqueTuning, Tuning: &paperCfg}},
		{"voltage control [10] (20mV/10mV/5cyc)",
			engine.Spec{Technique: engine.TechniqueVoltageControl, VoltageControl: &voltCfg}},
		{"pipeline damping [14] (δ=0.5×threshold)",
			engine.Spec{Technique: engine.TechniqueDamping, Damping: &dampCfg}},
		{"convolution control [8], perfect estimates",
			engine.Spec{Technique: engine.TechniqueConvolution, Convolution: &convPerfect}},
		{"convolution control [8], ±10 A estimate error",
			engine.Spec{Technique: engine.TechniqueConvolution, Convolution: &convNoisy}},
		{"wavelet detector [11]-style",
			engine.Spec{Technique: engine.TechniqueWavelet}},
	}

	for _, tc := range techs {
		results, err := runApps(eng, opts, tc.spec, ablationApps)
		if err != nil {
			return Report{}, fmt.Errorf("related: %s: %w", tc.name, err)
		}
		rels, err := metrics.Compare(base, results)
		if err != nil {
			return Report{}, err
		}
		sum := metrics.Summarize(rels)
		data.Rows = append(data.Rows, RelatedRow{
			Technique:           tc.name,
			AvgSlowdown:         sum.AvgSlowdown,
			AvgEnergy:           sum.AvgEnergy,
			AvgEnergyDelay:      sum.AvgEnergyDelay,
			ViolationsRemaining: sum.TechViolations,
			BaseViolations:      sum.BaseViolations,
		})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Related techniques (%d instructions/app over %v)\n\n", opts.instructions(), ablationApps)
	tab := metrics.Table{Headers: []string{
		"technique", "avg slowdown", "avg energy", "avg energy-delay", "violations (base→ctl)",
	}}
	for _, r := range data.Rows {
		tab.AddRow(r.Technique,
			fmt.Sprintf("%.3f", r.AvgSlowdown),
			fmt.Sprintf("%.3f", r.AvgEnergy),
			fmt.Sprintf("%.3f", r.AvgEnergyDelay),
			fmt.Sprintf("%d→%d", r.BaseViolations, r.ViolationsRemaining))
	}
	b.WriteString(tab.String())
	b.WriteString("\n[8] and [11] are the paper's Sections 1/6 discussion made concrete.\n" +
		"Convolution control predicts superbly in simulation — even with noisy\n" +
		"estimates — which sharpens the paper's actual critique: the barrier is\n" +
		"a ~400-tap multiply-accumulate every cycle at core clock, not accuracy\n" +
		"(compare BenchmarkSimCycle with and without it). The dyadic wavelet\n" +
		"scales approximate the band more coarsely than resonance tuning's\n" +
		"per-half-period adders and pay roughly [10]-like costs.\n")
	return Report{ID: "related", Text: b.String(), Data: data}, nil
}
