package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// MultiDomainRow is one (network, technique) configuration of the
// multi-domain experiment.
type MultiDomainRow struct {
	Network    string
	Technique  string
	Violations uint64
	Slowdown   float64
	Cycles     uint64
}

// MultiDomainDomainRow is one supply domain's per-domain accounting: the
// uncontrolled violations on its own rail, what per-domain tuning left,
// and its controller's detection and response activity.
type MultiDomainDomainRow struct {
	Name            string
	BaseViolations  uint64
	TunedViolations uint64
	BasePeakDevV    float64
	Events          uint64
	ResponseCycles  uint64
}

// MultiDomainData holds the multi-domain PDN demonstration.
type MultiDomainData struct {
	// Peaks is the die-node impedance profile of the core domain — one
	// local maximum per resonant tier of the stack (board, package, die),
	// where the lumped Table 1 model has exactly one.
	Peaks []circuit.ImpedancePoint
	// PackagePeakHz is the shared package-tier resonance the workload
	// drives.
	PackagePeakHz float64
	Rows          []MultiDomainRow
	Domains       []MultiDomainDomainRow
}

// MultiDomain demonstrates what the multi-domain PDN stack represents
// that the single lumped RLC cannot: both supply domains' current
// variations superpose on the shared package rail, so a workload
// oscillating at the package resonance (~500 cycles per period — far
// below the die-level band) drives constructive interference that
// violates both domains' noise margins at once, while the same workload
// on the lumped Table 1 network is electrically invisible. Per-domain
// resonance tuning — one controller per rail, each watching its own
// domain sensor in the package band — detects the oscillation on each
// rail independently and prevents the violations.
func MultiDomain(opts Options) (Report, error) {
	pdn := circuit.Table1TwoDomain()
	pkgRes := pdn.PackageResonantFrequency()
	pkgPeriod := pdn.ClockHz / pkgRes

	// The die-node impedance profile: LocalPeaks must report one maximum
	// per resonant tier (board, package, die) — the multi-peak profile of
	// the three-supply decap analysis (see EXPERIMENTS.md).
	sweep := pdn.ImpedanceSweep(0, 5e5, 1e9, 600)
	peaks := circuit.LocalPeaks(sweep)
	// The package-tier peak parameterises the detectors below: the peak
	// nearest the loaded package resonance.
	pkgPeak := sweep[0]
	for _, p := range peaks {
		if math.Abs(math.Log(p.FrequencyHz/pkgRes)) < math.Abs(math.Log(pkgPeak.FrequencyHz/pkgRes)) {
			pkgPeak = p
		}
	}

	// A workload that mostly computes steadily — long bursts with an
	// occasional short L2-served dip, electrically invisible at every
	// tier — but periodically aligns into coherent resonant episodes at
	// the package period: stall halves built from chained L2 misses
	// (12 cycles each) and burst halves filling the rest of the period
	// at the measured burst IPC of ≈5. The mix carries enough
	// floating-point and memory work that both domains swing together
	// (the fp domain owns the caches), so the episode drives the shared
	// package tier from both sides at once.
	epStall := int(pkgPeriod / 2 / 12)
	epBurst := (int(pkgPeriod) - 12*epStall) * 5
	app := workload.Params{
		Name: "pkgosc", Seed: 11,
		Mix:     workload.Mix{IntALU: 0.3, FPALU: 0.18, FPMul: 0.05, Load: 0.25, Store: 0.1, Branch: 0.12},
		DepProb: 0.5, DepMean: 4,
		MispredictRate: 0.005, L1MissRate: 0.001, L2MissRate: 0.05,
		Burst: workload.Burst{
			Enabled:     true,
			BurstInsts:  4_000,
			StallMisses: 1,
			StallLevel:  cpu.MemL2,
			JitterFrac:  0.2,
			EpisodeProb: 0.2, EpisodeLen: 10,
			EpisodeBurstInsts:  epBurst,
			EpisodeStallMisses: epStall,
		},
	}
	if err := app.Validate(); err != nil {
		return Report{}, fmt.Errorf("multidomain: %w", err)
	}

	// One controller per domain, its detector band centred on the shared
	// package resonance (in cycles), its threshold scaled to the domain's
	// margin over the package-tier peak impedance (the derivation the
	// dual-band low controller uses), and its response holds stretched to
	// the paper's period ratios — the Section 5.2 configuration holds the
	// first level ten resonant periods and the second a couple, so a
	// ~500-cycle oscillation needs holds of thousands of cycles, not
	// 100/35.
	half := int(math.Round(pkgPeriod / 2))
	domCfgs := make([]tuning.Config, len(pdn.Domains))
	for d := range pdn.Domains {
		margin := pdn.Domains[d].Vdd * pdn.Domains[d].NoiseMargin
		c := paperTuningConfig(half*20, 0)
		c.SecondResponseCycles = half * 4
		c.Detector.HalfPeriodLo = half * 8 / 10
		c.Detector.HalfPeriodHi = half * 12 / 10
		c.Detector.ThresholdAmps = math.Floor(margin / pkgPeak.Ohms)
		domCfgs[d] = c
	}

	netCfg := circuit.NetworkConfig{Kind: circuit.NetworkMultiDomain, MultiDomain: &pdn}
	template := engine.Spec{Workload: &app, Instructions: opts.instructions()}
	rows := []struct {
		network, technique string
		spec               engine.Spec
	}{
		{"lumped", "base", template},
		{"multidomain", "base", template},
		{"multidomain", "domain-tuning", template},
	}
	rows[1].spec.PDN = &netCfg
	rows[2].spec.PDN = &netCfg
	rows[2].spec.Technique = engine.TechniqueDomainTuning
	rows[2].spec.DomainTuning = &engine.DomainTuningConfig{Domains: domCfgs}

	eng := opts.engine()
	specs := make([]engine.Spec, len(rows))
	for i, r := range rows {
		specs[i] = r.spec
	}
	results, err := eng.RunAll(context.Background(), specs, nil)
	if err != nil {
		return Report{}, err
	}
	base := results[0]

	data := &MultiDomainData{Peaks: peaks, PackagePeakHz: pkgPeak.FrequencyHz}
	for i, r := range results {
		slow := 1.0
		if base.Cycles > 0 {
			slow = float64(r.Cycles) / float64(base.Cycles)
		}
		data.Rows = append(data.Rows, MultiDomainRow{
			Network:    rows[i].network,
			Technique:  rows[i].technique,
			Violations: r.Violations,
			Slowdown:   slow,
			Cycles:     r.Cycles,
		})
	}

	// Per-domain detail needs the machine and controller instances, so
	// the two multi-domain rows run once more outside the cache: the
	// uncontrolled run's per-rail violation split and the tuned run's
	// per-controller detection counts, proving each domain detects and
	// responds on its own rail.
	cfg := sim.DefaultConfig()
	cfg.PDN = &netCfg
	baseStats, _, err := runMultiDirect(cfg, app, opts.instructions(), nil)
	if err != nil {
		return Report{}, err
	}
	tech := sim.NewPerDomainTuning(domCfgs)
	tunedStats, ctrlStats, err := runMultiDirect(cfg, app, opts.instructions(), tech)
	if err != nil {
		return Report{}, err
	}
	for d := range baseStats {
		data.Domains = append(data.Domains, MultiDomainDomainRow{
			Name:            baseStats[d].Name,
			BaseViolations:  baseStats[d].Violations,
			TunedViolations: tunedStats[d].Violations,
			BasePeakDevV:    baseStats[d].PeakDeviationV,
			Events:          ctrlStats[d].EventsDetected,
			ResponseCycles:  ctrlStats[d].FirstLevelCycles + ctrlStats[d].SecondLevelCycles,
		})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Multi-domain PDN: shared package resonance and per-domain tuning\n\n")
	fmt.Fprintf(&b, "die-node impedance peaks (core domain):")
	for _, p := range peaks {
		fmt.Fprintf(&b, " %.2f mΩ at %.1f MHz;", p.Ohms*1e3, p.FrequencyHz/1e6)
	}
	fmt.Fprintf(&b, "\n(the lumped Table 1 model has a single %.0f MHz peak)\n", circuit.Table1().ResonantFrequency()/1e6)
	fmt.Fprintf(&b, "workload oscillation period: ≈%.0f cycles (the %.1f MHz package resonance)\n\n",
		pkgPeriod, pkgRes/1e6)
	tab := metrics.Table{Headers: []string{"network", "technique", "violations", "slowdown"}}
	for _, r := range data.Rows {
		tab.AddRow(r.Network, r.Technique, r.Violations, fmt.Sprintf("%.3f", r.Slowdown))
	}
	b.WriteString(tab.String())
	b.WriteString("\n")
	dtab := metrics.Table{Headers: []string{"domain", "base_viol", "tuned_viol", "events", "response_cycles"}}
	for _, d := range data.Domains {
		dtab.AddRow(d.Name, d.BaseViolations, d.TunedViolations, d.Events, d.ResponseCycles)
	}
	b.WriteString(dtab.String())
	b.WriteString("\nboth domains' currents superpose on the shared package rail, so an\n" +
		"oscillation at the package resonance interferes constructively across\n" +
		"domains — a structure the single lumped RLC cannot represent — and\n" +
		"each domain's controller detects and responds on its own rail.\n")
	return Report{ID: "multidomain", Text: b.String(), Data: data}, nil
}

// runMultiDirect runs one multi-domain configuration outside the engine
// cache and returns the machine's per-domain statistics, plus the
// per-domain controller statistics when tech is non-nil.
func runMultiDirect(cfg sim.Config, app workload.Params, insts uint64, tech *sim.PerDomainTuning) ([]sim.DomainStat, []tuning.Stats, error) {
	var t sim.Technique
	if tech != nil {
		t = tech
	}
	s, err := sim.New(cfg, workload.SharedTraces().Source(app, insts), t)
	if err != nil {
		return nil, nil, err
	}
	s.Run(app.Name, "multidomain-direct")
	var ctrl []tuning.Stats
	if tech != nil {
		ctrl = tech.DomainStats()
	}
	return s.Machine().DomainStats(), ctrl, nil
}
