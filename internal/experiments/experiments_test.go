package experiments

import (
	"strings"
	"testing"

	"repro/internal/circuit"
)

// testOpts keeps experiment tests fast; classification-sensitive tests
// override Instructions where needed.
var testOpts = Options{Instructions: 120_000}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig1c", "fig3", "fig4", "table2", "table3", "table4", "table5", "fig5", "ablations", "related", "lowfreq", "scaling", "spectra", "multidomain"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig3")
	if err != nil || e.ID != "fig3" {
		t.Errorf("ByID(fig3) = %v, %v", e.ID, err)
	}
	if _, err := ByID("table99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.instructions() != 1_000_000 {
		t.Errorf("default instructions %d", o.instructions())
	}
	if o.parallelism() < 1 {
		t.Error("default parallelism must be positive")
	}
	o = Options{Instructions: 5, Parallelism: 3}
	if o.instructions() != 5 || o.parallelism() != 3 {
		t.Error("explicit options not honoured")
	}
}

func TestFig1c(t *testing.T) {
	rep, err := Fig1c(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	data, ok := rep.Data.(*Fig1cData)
	if !ok {
		t.Fatalf("wrong data type %T", rep.Data)
	}
	// The example supply peaks near 100 MHz with ~20 mΩ; Table 1 near
	// 100 MHz with ~3 mΩ.
	if f := data.Example.Peak.FrequencyHz / 1e6; f < 95 || f > 106 {
		t.Errorf("example peak at %g MHz", f)
	}
	if z := data.Table1.Peak.Ohms * 1e3; z < 2.5 || z > 4 {
		t.Errorf("table-1 peak %g mΩ, want ≈ 3.2", z)
	}
	if !strings.Contains(rep.Text, "impedance") {
		t.Error("report text missing")
	}
}

func TestFig3MatchesPaperStory(t *testing.T) {
	rep, err := Fig3(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	data := rep.Data.(*Fig3Data)
	if data.FirstViolationCycle < 100 {
		t.Fatalf("no violation during stimulation (cycle %d)", data.FirstViolationCycle)
	}
	// The paper's headline: the violation happens when the resonant
	// event count reaches the maximum repetition tolerance (4).
	if data.CountAtViolation != 4 {
		t.Errorf("violation at event count %d, want 4", data.CountAtViolation)
	}
	// Dissipation ~66% per period.
	if data.DissipationPerPeriod < 0.55 || data.DissipationPerPeriod > 0.8 {
		t.Errorf("dissipation %g, want ≈ 0.66", data.DissipationPerPeriod)
	}
	// Events chain upward through the stimulation.
	max := 0
	for _, ev := range data.Events {
		if ev.Count > max {
			max = ev.Count
		}
	}
	if max < 4 {
		t.Errorf("event count only reached %d", max)
	}
}

func TestFig4ShowsAdvanceWarning(t *testing.T) {
	rep, err := Fig4(Options{Instructions: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	data := rep.Data.(*Fig4Data)
	if len(data.Deviations) == 0 || len(data.Deviations) != len(data.Current) {
		t.Fatal("window traces missing or mismatched")
	}
	// Count 2 must be reached well before the violation (the paper
	// reports ~150 cycles of advance warning).
	lead2, ok := data.LeadCycles[2]
	if !ok {
		t.Fatal("count 2 never reached before the violation")
	}
	if lead2 < 20 {
		t.Errorf("count-2 warning only %d cycles ahead", lead2)
	}
	// Higher counts arrive later (shorter lead).
	if lead3, ok := data.LeadCycles[3]; ok && lead3 > lead2 {
		t.Errorf("count 3 lead %d exceeds count 2 lead %d", lead3, lead2)
	}
}

func TestTable2Classification(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	// The default budget is what guarantees every violating app's
	// episode cadence fires.
	rep, err := Table2(Options{Instructions: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	data := rep.Data.(*Table2Data)
	if len(data.Rows) != 26 {
		t.Fatalf("%d rows, want 26", len(data.Rows))
	}
	for _, row := range data.Rows {
		if row.Violating != row.PaperViolating {
			t.Errorf("%s: classified violating=%v, paper says %v (frac %.2e)",
				row.App, row.Violating, row.PaperViolating, row.ViolationFrac)
		}
	}
	// lucas must be the heaviest violator, as in the paper.
	var worst string
	var worstFrac float64
	for _, row := range data.Rows {
		if row.ViolationFrac > worstFrac {
			worstFrac = row.ViolationFrac
			worst = row.App
		}
	}
	if worst != "lucas" {
		t.Errorf("heaviest violator is %s, want lucas", worst)
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	rep, err := Table3(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	data := rep.Data.(*Table3Data)
	if len(data.Rows) != 6 { // 5 response times + delay variant
		t.Fatalf("%d rows, want 6", len(data.Rows))
	}
	first := data.Rows[0]
	last := data.Rows[4]
	// Longer initial response ⇒ more first-level cycles, more slowdown.
	if last.FirstLevelFraction <= first.FirstLevelFraction {
		t.Errorf("first-level fraction did not grow: %g → %g",
			first.FirstLevelFraction, last.FirstLevelFraction)
	}
	if last.AvgSlowdown <= first.AvgSlowdown {
		t.Errorf("slowdown did not grow: %g → %g", first.AvgSlowdown, last.AvgSlowdown)
	}
	for _, r := range data.Rows {
		// Second-level response stays rare (paper: 0.003-0.004).
		if r.SecondLevelFraction > 0.02 {
			t.Errorf("initial=%d: second-level fraction %g too high", r.InitialResponseCycles, r.SecondLevelFraction)
		}
		// Tuning prevents the vast majority of violations.
		if r.BaseViolations > 0 && float64(r.ViolationsRemaining) > 0.25*float64(r.BaseViolations) {
			t.Errorf("initial=%d: %d of %d violations remain", r.InitialResponseCycles,
				r.ViolationsRemaining, r.BaseViolations)
		}
		// Energy-delay within the paper's ballpark (5-9%); allow a wide
		// scaled-run band.
		if r.AvgEnergyDelay < 1.0 || r.AvgEnergyDelay > 1.2 {
			t.Errorf("initial=%d: avg energy-delay %g out of range", r.InitialResponseCycles, r.AvgEnergyDelay)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	rep, err := Table4(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	data := rep.Data.(*Table4Data)
	if len(data.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(data.Rows))
	}
	ideal30 := data.Rows[0]
	worstRow := data.Rows[4] // 20mV target, 15mV noise, 3-cycle delay
	if ideal30.ResponseFraction >= worstRow.ResponseFraction {
		t.Errorf("response fraction should explode with noise+delay: %g vs %g",
			ideal30.ResponseFraction, worstRow.ResponseFraction)
	}
	if ideal30.AvgEnergyDelay >= worstRow.AvgEnergyDelay {
		t.Errorf("energy-delay should grow with noise+delay: %g vs %g",
			ideal30.AvgEnergyDelay, worstRow.AvgEnergyDelay)
	}
	// Actual thresholds are target minus half the noise.
	if data.Rows[2].ActualThresholdMV != 22.5 {
		t.Errorf("30/15 actual threshold %g, want 22.5", data.Rows[2].ActualThresholdMV)
	}
}

func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	rep, err := Table5(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	data := rep.Data.(*Table5Data)
	if len(data.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(data.Rows))
	}
	// Tighter δ ⇒ more slowdown and energy-delay, monotonically.
	for i := 1; i < len(data.Rows); i++ {
		if data.Rows[i].AvgSlowdown <= data.Rows[i-1].AvgSlowdown {
			t.Errorf("slowdown not monotone at δ=%g", data.Rows[i].DeltaRelative)
		}
		if data.Rows[i].AvgEnergyDelay <= data.Rows[i-1].AvgEnergyDelay {
			t.Errorf("energy-delay not monotone at δ=%g", data.Rows[i].DeltaRelative)
		}
	}
}

func TestFig5TuningWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	rep, err := Fig5(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	data := rep.Data.(*Fig5Data)
	if len(data.Bars) != 6 {
		t.Fatalf("%d bars, want 6", len(data.Bars))
	}
	// The paper's headline: resonance tuning's energy-delay beats both
	// baselines at their realistic design points.
	tuningWorst := 0.0
	othersBest := 1e9
	for _, bar := range data.Bars {
		if bar.Technique == "resonance-tuning" {
			if bar.AvgEnergyDelay > tuningWorst {
				tuningWorst = bar.AvgEnergyDelay
			}
		} else if bar.AvgEnergyDelay < othersBest {
			othersBest = bar.AvgEnergyDelay
		}
	}
	if tuningWorst == 0 || othersBest == 1e9 {
		t.Fatal("bars missing techniques")
	}
	if tuningWorst >= othersBest {
		t.Errorf("resonance tuning (worst %.3f) does not beat the baselines (best %.3f)",
			tuningWorst, othersBest)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	rep, err := Ablations(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	data := rep.Data.(*AblationData)
	if len(data.Rows) != 9 {
		t.Fatalf("%d ablation rows, want 9", len(data.Rows))
	}
	// Heun must be far more accurate than Euler.
	if data.IntegratorErrHeun >= data.IntegratorErrEuler/5 {
		t.Errorf("integrator errors: Heun %g vs Euler %g", data.IntegratorErrHeun, data.IntegratorErrEuler)
	}
	byVariant := map[string]AblationRow{}
	for _, r := range data.Rows {
		byVariant[r.Study+"/"+r.Variant] = r
	}
	full := byVariant["band-coverage/full band 42-60 (paper)"]
	narrow := byVariant["band-coverage/resonant half-period only (50)"]
	if narrow.ViolationsRemaining <= full.ViolationsRemaining {
		t.Errorf("narrow-band detector should miss more violations: %d vs %d",
			narrow.ViolationsRemaining, full.ViolationsRemaining)
	}
	eager := byVariant["initial-threshold/threshold 1 (eager)"]
	paper := byVariant["initial-threshold/threshold 2 (paper)"]
	if eager.AvgSlowdown <= paper.AvgSlowdown {
		t.Errorf("eager threshold should cost more: %g vs %g", eager.AvgSlowdown, paper.AvgSlowdown)
	}
}

func TestRelatedComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	rep, err := Related(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	data := rep.Data.(*RelatedData)
	if len(data.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(data.Rows))
	}
	// Every technique must cut violations substantially on the heavy
	// violators.
	for _, r := range data.Rows {
		if r.BaseViolations == 0 {
			t.Fatal("no base violations to compare against")
		}
		if float64(r.ViolationsRemaining) > 0.3*float64(r.BaseViolations) {
			t.Errorf("%s left %d of %d violations", r.Technique, r.ViolationsRemaining, r.BaseViolations)
		}
		if r.AvgSlowdown < 1.0 {
			t.Errorf("%s reports speedup %g", r.Technique, r.AvgSlowdown)
		}
	}
}

func TestLowFreqDemonstratesSection22(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	rep, err := LowFreq(Options{Instructions: 600_000})
	if err != nil {
		t.Fatal(err)
	}
	data := rep.Data.(*LowFreqData)
	if len(data.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(data.Rows))
	}
	// Two distinct impedance peaks, low at a few MHz.
	if data.LowPeak.FrequencyHz > 20e6 || data.MediumPeak.FrequencyHz < 80e6 {
		t.Errorf("peaks at %.1f / %.1f MHz", data.LowPeak.FrequencyHz/1e6, data.MediumPeak.FrequencyHz/1e6)
	}
	base, medOnly, dual := data.Rows[0], data.Rows[1], data.Rows[2]
	if base.Violations == 0 {
		t.Fatal("no low-frequency violations to prevent")
	}
	// The medium-band detector barely helps (it cannot see 2500-cycle
	// periods)...
	if float64(medOnly.Violations) < 0.7*float64(base.Violations) {
		t.Errorf("medium-only removed too many violations (%d → %d): not blind as expected",
			base.Violations, medOnly.Violations)
	}
	// ...while the dual-band controller prevents most of them.
	if float64(dual.Violations) > 0.5*float64(base.Violations) {
		t.Errorf("dual-band left %d of %d violations", dual.Violations, base.Violations)
	}
}

func TestScalingTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	rep, err := Scaling(Options{Instructions: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	data := rep.Data.(*ScalingData)
	if len(data.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(data.Rows))
	}
	// Controlled sweep: same threshold and tolerance at every point,
	// quarter period doubling each step.
	for i, r := range data.Rows {
		if r.ThresholdAmps != data.Rows[0].ThresholdAmps || r.Tolerance != data.Rows[0].Tolerance {
			t.Errorf("row %d: electrical severity not held fixed (%g A, tol %d)",
				i, r.ThresholdAmps, r.Tolerance)
		}
		if r.BaseViolations == 0 {
			t.Errorf("row %d (f0=%.0f MHz): no base violations to prevent", i, r.ResonantFreqMHz)
			continue
		}
		prevented := 1 - float64(r.ViolationsRemaining)/float64(r.BaseViolations)
		if prevented < 0.7 {
			t.Errorf("f0=%.0f MHz: only %.0f%% of violations prevented", r.ResonantFreqMHz, prevented*100)
		}
		if r.Slowdown > 1.5 {
			t.Errorf("f0=%.0f MHz: slowdown %.2f too high", r.ResonantFreqMHz, r.Slowdown)
		}
	}
	if q0, q2 := data.Rows[0].QuarterPeriodCycles, data.Rows[2].QuarterPeriodCycles; q2 < 3*q0 {
		t.Errorf("quarter period did not grow: %d → %d", q0, q2)
	}
}

func TestMultiDomainSharedResonance(t *testing.T) {
	rep, err := MultiDomain(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	data := rep.Data.(*MultiDomainData)
	// The die-node profile must show one peak per resonant tier — at
	// least two distinct resonances, one of them the shared package tier.
	if len(data.Peaks) < 2 {
		t.Fatalf("%d impedance peaks, want ≥ 2", len(data.Peaks))
	}
	pkgRes := circuit.Table1TwoDomain().PackageResonantFrequency()
	foundPkg := false
	for _, p := range data.Peaks {
		if r := p.FrequencyHz / pkgRes; r > 0.7 && r < 1.4 {
			foundPkg = true
		}
	}
	if !foundPkg {
		t.Errorf("no impedance peak near the %.1f MHz package resonance (peaks %+v)",
			pkgRes/1e6, data.Peaks)
	}
	if len(data.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(data.Rows))
	}
	lumped, multiBase, tuned := data.Rows[0], data.Rows[1], data.Rows[2]
	// The package-resonant workload is electrically invisible on the
	// lumped model but violates heavily on the multi-domain stack.
	if multiBase.Violations == 0 {
		t.Fatal("no multi-domain base violations to prevent")
	}
	if float64(lumped.Violations) > 0.05*float64(multiBase.Violations) {
		t.Errorf("lumped model sees %d violations vs %d multi-domain: not a multi-domain-only effect",
			lumped.Violations, multiBase.Violations)
	}
	// Per-domain tuning prevents the vast majority of them.
	if float64(tuned.Violations) > 0.25*float64(multiBase.Violations) {
		t.Errorf("domain tuning left %d of %d violations", tuned.Violations, multiBase.Violations)
	}
	if tuned.Slowdown < 1.0 {
		t.Errorf("domain tuning reports speedup %g", tuned.Slowdown)
	}
	// Each domain violates on its own rail, and each domain's controller
	// both detects the oscillation and engages its response independently.
	if len(data.Domains) < 2 {
		t.Fatalf("%d domain rows, want ≥ 2", len(data.Domains))
	}
	for _, d := range data.Domains {
		if d.BaseViolations == 0 {
			t.Errorf("domain %s: no base violations on its rail", d.Name)
		}
		if d.Events == 0 {
			t.Errorf("domain %s: controller never detected the oscillation", d.Name)
		}
		if d.ResponseCycles == 0 {
			t.Errorf("domain %s: controller never engaged a response", d.Name)
		}
		if d.TunedViolations > d.BaseViolations {
			t.Errorf("domain %s: tuning made things worse (%d → %d)",
				d.Name, d.BaseViolations, d.TunedViolations)
		}
	}
}

func TestSpectraSeparateClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	rep, err := Spectra(Options{Instructions: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	data := rep.Data.(*SpectrumData)
	if len(data.Rows) != 26 {
		t.Fatalf("%d rows, want 26", len(data.Rows))
	}
	var vio, clean float64
	var nv, nc int
	for _, r := range data.Rows {
		if r.BandPowerA2 < 0 || r.BandFraction < 0 || r.BandFraction > 1 {
			t.Errorf("%s: implausible band stats %+v", r.App, r)
		}
		if r.PaperViolating {
			vio += r.BandPowerA2
			nv++
		} else {
			clean += r.BandPowerA2
			nc++
		}
	}
	if nv != 12 || nc != 14 {
		t.Fatalf("class counts %d/%d", nv, nc)
	}
	// The violating class must carry clearly more in-band energy.
	if vio/float64(nv) < 1.5*clean/float64(nc) {
		t.Errorf("violating mean %.2f A² not well above clean mean %.2f A²",
			vio/float64(nv), clean/float64(nc))
	}
}
