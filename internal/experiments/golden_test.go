package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
)

var update = flag.Bool("update", false, "rewrite the golden report files under testdata/golden")

// goldenIDs are the experiments pinned by golden reports: the analytic
// impedance curve, the full-suite classification, the headline
// technique comparison, and the two-domain PDN scenario. Together they
// cover the circuit models, the workload generator, the base machine,
// all three techniques, and the multi-domain stack — a drift in any of
// them shows up as a golden diff.
var goldenIDs = []string{"fig1c", "table2", "fig5", "multidomain"}

// goldenInstructions keeps the harness fast enough for every CI run; the
// reports differ from the paper-scale ones only in magnitude, not in
// which code they exercise.
const goldenInstructions = 30_000

// TestGoldenReports regenerates a scaled-down subset of the paper's
// reports and diffs them against the checked-in goldens. After an
// intentional behavior change, refresh them with
//
//	go test ./internal/experiments -run TestGoldenReports -update
//
// and review the golden diff like any other code change.
func TestGoldenReports(t *testing.T) {
	// One engine for the whole harness: table2 and fig5 share their
	// 26-app baseline suite through its cache.
	opts := Options{
		Instructions: goldenInstructions,
		Engine:       engine.New(engine.Options{}),
	}
	for _, id := range goldenIDs {
		t.Run(id, func(t *testing.T) {
			exp, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := exp.Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Text == "" {
				t.Fatal("experiment produced an empty report")
			}
			path := filepath.Join("testdata", "golden", id+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(rep.Text), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden report (regenerate with -update): %v", err)
			}
			if rep.Text != string(want) {
				t.Errorf("report %s drifted from its golden:\n%s", id, firstDiff(string(want), rep.Text))
			}
		})
	}
}

// firstDiff renders the first few differing lines between the golden and
// the regenerated report, with one line of context.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	var b strings.Builder
	shown := 0
	for i := 0; i < n && shown < 5; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		if shown == 0 && i > 0 {
			fmt.Fprintf(&b, "  line %d: %s\n", i, wl[i-1])
		}
		fmt.Fprintf(&b, "- line %d: %s\n+ line %d: %s\n", i+1, w, i+1, g)
		shown++
	}
	if shown == 5 {
		b.WriteString("  ... (more differences elided)\n")
	}
	return b.String()
}
