package experiments

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
	"repro/internal/metrics"
)

// Fig1cData holds the impedance sweep of Figure 1(c) for the Section 2
// example supply (the paper's plot) plus the Table 1 supply used in the
// evaluation.
type Fig1cData struct {
	Example Fig1cSeries
	Table1  Fig1cSeries
}

// Fig1cSeries is one supply's impedance curve and derived landmarks.
type Fig1cSeries struct {
	Label  string
	Points []circuit.ImpedancePoint
	Peak   circuit.ImpedancePoint
	Chars  circuit.Characteristics
}

// Fig1c reproduces Figure 1(c): the power-supply impedance as a function
// of frequency, peaking at the resonant frequency, with the half-energy
// resonance band marked.
func Fig1c(Options) (Report, error) {
	build := func(label string, p circuit.Params) (Fig1cSeries, error) {
		chars, err := p.Characterize()
		if err != nil {
			return Fig1cSeries{}, fmt.Errorf("fig1c: %s: %w", label, err)
		}
		f0 := chars.ResonantFrequencyHz
		pts := p.ImpedanceSweep(0.4*f0, 1.6*f0, 121)
		return Fig1cSeries{
			Label:  label,
			Points: pts,
			Peak:   circuit.PeakImpedance(pts),
			Chars:  chars,
		}, nil
	}
	ex, err := build("section-2 example", circuit.Section2Example())
	if err != nil {
		return Report{}, err
	}
	t1, err := build("table-1 design", circuit.Table1())
	if err != nil {
		return Report{}, err
	}
	data := &Fig1cData{Example: ex, Table1: t1}

	var b strings.Builder
	b.WriteString("Figure 1(c): power-supply impedance vs frequency\n\n")
	for _, s := range []Fig1cSeries{ex, t1} {
		fmt.Fprintf(&b, "%s: %s\n", s.Label, s.Chars)
		fmt.Fprintf(&b, "  impedance peak %.3f mΩ at %.1f MHz\n",
			s.Peak.Ohms*1e3, s.Peak.FrequencyHz/1e6)
		b.WriteString(asciiImpedance(s))
		b.WriteByte('\n')
	}
	tab := metrics.Table{Headers: []string{"supply", "f (MHz)", "|Z| (mΩ)", "in band"}}
	for _, s := range []Fig1cSeries{ex, t1} {
		for i := 0; i < len(s.Points); i += 10 {
			pt := s.Points[i]
			in := ""
			if s.Chars.BandHz.Contains(pt.FrequencyHz) {
				in = "*"
			}
			tab.AddRow(s.Label, fmt.Sprintf("%.1f", pt.FrequencyHz/1e6),
				fmt.Sprintf("%.3f", pt.Ohms*1e3), in)
		}
	}
	b.WriteString(tab.String())
	return Report{ID: "fig1c", Text: b.String(), Data: data}, nil
}

// asciiImpedance renders a small ASCII plot of the impedance curve.
func asciiImpedance(s Fig1cSeries) string {
	const rows, cols = 12, 60
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	max := s.Peak.Ohms
	n := len(s.Points)
	for c := 0; c < cols; c++ {
		idx := c * (n - 1) / (cols - 1)
		h := int(s.Points[idx].Ohms / max * float64(rows-1))
		grid[rows-1-h][c] = '*'
	}
	var b strings.Builder
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  +%s\n   %.0f MHz%sto %.0f MHz\n",
		strings.Repeat("-", cols),
		s.Points[0].FrequencyHz/1e6,
		strings.Repeat(" ", cols-16),
		s.Points[n-1].FrequencyHz/1e6)
	return b.String()
}
