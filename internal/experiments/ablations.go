package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tuning"
)

// AblationRow is one variant of one ablation study.
type AblationRow struct {
	Study               string
	Variant             string
	AvgSlowdown         float64
	AvgEnergyDelay      float64
	ViolationsRemaining uint64
	BaseViolations      uint64
}

// AblationData collects all ablation results.
type AblationData struct {
	Rows []AblationRow
	// IntegratorErrHeun and IntegratorErrEuler are worst-case errors
	// (volts) against the closed-form underdamped step response.
	IntegratorErrHeun  float64
	IntegratorErrEuler float64
}

// ablationApps is the subset of frequently violating applications the
// pipeline ablations run on (the full suite would dilute the signal with
// apps that never trigger the mechanism).
var ablationApps = []string{"lucas", "swim", "bzip", "parser"}

// ablationVariant is one tuning configuration mutation to evaluate.
type ablationVariant struct {
	study, name string
	mutate      func(*tuning.Config) // nil = paper configuration
	sensorRes   float64              // 0 = whole amp, <0 = exact
}

// Ablations evaluates the design choices DESIGN.md calls out:
//
//   - band coverage: detecting over the full resonance band (the paper's
//     point) vs only the exact resonant half-period (what [14] covers);
//   - initial response threshold 1 vs 2;
//   - two-tier response vs an effectively second-level-only response;
//   - current-sensor resolution exact / 1 A / 8 A;
//   - Heun vs forward-Euler circuit integration accuracy.
func Ablations(opts Options) (Report, error) {
	eng := opts.engine()
	base, err := runAblationSuite(eng, opts, nil, 0)
	if err != nil {
		return Report{}, err
	}
	data := &AblationData{}

	variants := []ablationVariant{
		{"band-coverage", "full band 42-60 (paper)", nil, 0},
		{"band-coverage", "resonant half-period only (50)", func(c *tuning.Config) {
			c.Detector.HalfPeriodLo = 50
			c.Detector.HalfPeriodHi = 50
		}, 0},
		{"initial-threshold", "threshold 1 (eager)", func(c *tuning.Config) {
			c.InitialResponseThreshold = 1
		}, 0},
		{"initial-threshold", "threshold 2 (paper)", nil, 0},
		{"response-tiers", "two-tier (paper)", nil, 0},
		{"response-tiers", "second-level only (1-cycle first tier)", func(c *tuning.Config) {
			c.InitialResponseCycles = 1
		}, 0},
		{"sensor-resolution", "exact sensing", nil, -1},
		{"sensor-resolution", "whole-amp (paper)", nil, 0},
		{"sensor-resolution", "8-amp coarse", nil, 8},
	}
	for _, v := range variants {
		cfg := paperTuningConfig(100, 0)
		if v.mutate != nil {
			v.mutate(&cfg)
		}
		results, err := runAblationSuite(eng, opts, &cfg, v.sensorRes)
		if err != nil {
			return Report{}, fmt.Errorf("ablation %s/%s: %w", v.study, v.name, err)
		}
		rels, err := metrics.Compare(base, results)
		if err != nil {
			return Report{}, err
		}
		sum := metrics.Summarize(rels)
		data.Rows = append(data.Rows, AblationRow{
			Study:               v.study,
			Variant:             v.name,
			AvgSlowdown:         sum.AvgSlowdown,
			AvgEnergyDelay:      sum.AvgEnergyDelay,
			ViolationsRemaining: sum.TechViolations,
			BaseViolations:      sum.BaseViolations,
		})
	}

	data.IntegratorErrHeun = integratorWorstError(circuit.Heun)
	data.IntegratorErrEuler = integratorWorstError(circuit.Euler)

	var b strings.Builder
	fmt.Fprintf(&b, "Ablations (%d instructions/app over %v)\n\n", opts.instructions(), ablationApps)
	tab := metrics.Table{Headers: []string{"study", "variant", "avg slowdown", "avg energy-delay", "violations (base→variant)"}}
	for _, r := range data.Rows {
		tab.AddRow(r.Study, r.Variant,
			fmt.Sprintf("%.3f", r.AvgSlowdown),
			fmt.Sprintf("%.3f", r.AvgEnergyDelay),
			fmt.Sprintf("%d→%d", r.BaseViolations, r.ViolationsRemaining))
	}
	b.WriteString(tab.String())
	fmt.Fprintf(&b, "\nintegrator worst error vs closed form: Heun %.3g V, Euler %.3g V\n",
		data.IntegratorErrHeun, data.IntegratorErrEuler)
	return Report{ID: "ablations", Text: b.String(), Data: data}, nil
}

// runAblationSuite runs the ablation subset under one tuning variant
// (nil = uncontrolled base) with the given sensor resolution, through
// the engine's worker pool and cache.
func runAblationSuite(eng *engine.Engine, opts Options, cfg *tuning.Config, sensorRes float64) ([]sim.Result, error) {
	scfg := sim.DefaultConfig()
	scfg.SensorResolutionAmps = sensorRes
	spec := engine.Spec{System: &scfg}
	if cfg != nil {
		c := *cfg
		spec.Technique = engine.TechniqueTuning
		spec.Tuning = &c
	}
	return runApps(eng, opts, spec, ablationApps)
}

// integratorWorstError measures the worst deviation error of the given
// method against the analytic underdamped step response of the Table 1
// supply over 3000 cycles.
func integratorWorstError(m circuit.Method) float64 {
	p := circuit.Table1()
	const i0, i1 = 50.0, 80.0
	s := circuit.NewSimulatorMethod(p, i0, m)
	alpha := p.DampingRateNepers()
	w0 := 2 * math.Pi * p.ResonantFrequency()
	wd := math.Sqrt(w0*w0 - alpha*alpha)
	a := p.R * (i1 - i0)
	bb := (-(i1-i0)/p.C + alpha*a) / wd
	dt := 1 / p.ClockHz
	worst := 0.0
	for c := 1; c <= 3000; c++ {
		got := s.Step(i1)
		t := float64(c) * dt
		want := math.Exp(-alpha*t) * (a*math.Cos(wd*t) + bb*math.Sin(wd*t))
		if e := math.Abs(got - want); e > worst {
			worst = e
		}
	}
	return worst
}
