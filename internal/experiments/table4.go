package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baselines/voltctl"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Table4Row is one configuration of the technique of [10].
type Table4Row struct {
	TargetThresholdMV   float64
	NoiseMVPeakToPeak   float64
	ActualThresholdMV   float64
	DelayCycles         int
	ResponseFraction    float64
	WorstSlowdown       float64
	WorstApp            string
	AvgSlowdown         float64
	AvgEnergyDelay      float64
	ViolationsRemaining uint64
	BaseViolations      uint64
}

// Table4Data is the full sweep.
type Table4Data struct {
	Rows []Table4Row
	Base []sim.Result
}

// paperTable4 lists the paper's Table 4 for comparison.
var paperTable4 = []struct {
	Target, Noise, Actual      float64
	Delay                      int
	RespFrac                   float64
	WorstSlowdown, AvgSlowdown float64
	AvgED                      float64
}{
	{30, 0, 30, 0, 0.002, 1.038, 1.005, 1.030},
	{20, 0, 20, 0, 0.04, 1.180, 1.039, 1.047},
	{30, 15, 22, 0, 0.05, 1.11, 1.031, 1.074},
	{20, 10, 15, 5, 0.15, 1.32, 1.108, 1.191},
	{20, 15, 12, 3, 0.27, 1.68, 1.236, 1.460},
}

// Table4 reproduces Table 4: the voltage-threshold technique of [10]
// swept over detection threshold, sensor noise, and sensing delay. Ideal
// sensors are cheap; realistic noise and delay multiply the number of
// (mostly unnecessary) responses and the cost.
func Table4(opts Options) (Report, error) {
	eng := opts.engine()
	base, err := runSuite(eng, opts, engine.Spec{})
	if err != nil {
		return Report{}, err
	}
	data := &Table4Data{Base: base}

	type cfg struct {
		targetMV, noiseMV float64
		delay             int
	}
	sweeps := []cfg{
		{30, 0, 0},
		{20, 0, 0},
		{30, 15, 0},
		{20, 10, 5},
		{20, 15, 3},
	}
	for _, sw := range sweeps {
		vcfg := voltctl.Config{
			TargetThresholdVolts: sw.targetMV / 1000,
			SensorNoiseVolts:     sw.noiseMV / 1000,
			SensorDelayCycles:    sw.delay,
			Seed:                 777,
		}
		results, err := runSuite(eng, opts, engine.Spec{Technique: engine.TechniqueVoltageControl, VoltageControl: &vcfg})
		if err != nil {
			return Report{}, err
		}
		var respCycles, totalCycles uint64
		for _, r := range results {
			respCycles += r.Tech.ResponseCycles
			totalCycles += r.Tech.ControllerCycles
		}
		rels, err := metrics.Compare(base, results)
		if err != nil {
			return Report{}, err
		}
		sum := metrics.Summarize(rels)
		row := Table4Row{
			TargetThresholdMV:   sw.targetMV,
			NoiseMVPeakToPeak:   sw.noiseMV,
			ActualThresholdMV:   vcfg.ActualThresholdVolts() * 1000,
			DelayCycles:         sw.delay,
			WorstSlowdown:       sum.WorstSlowdown,
			WorstApp:            sum.WorstApp,
			AvgSlowdown:         sum.AvgSlowdown,
			AvgEnergyDelay:      sum.AvgEnergyDelay,
			ViolationsRemaining: sum.TechViolations,
			BaseViolations:      sum.BaseViolations,
		}
		if totalCycles > 0 {
			row.ResponseFraction = float64(respCycles) / float64(totalCycles)
		}
		data.Rows = append(data.Rows, row)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: technique of [10] (%d instructions/app)\n\n", opts.instructions())
	tab := metrics.Table{Headers: []string{
		"target (mV)", "noise (mV)", "actual (mV)", "delay",
		"frac in response", "worst slowdown", "avg slowdown", "avg energy-delay", "violations (base→ctl)",
	}}
	for _, r := range data.Rows {
		tab.AddRow(r.TargetThresholdMV, r.NoiseMVPeakToPeak,
			fmt.Sprintf("%.1f", r.ActualThresholdMV), r.DelayCycles,
			fmt.Sprintf("%.4f", r.ResponseFraction),
			fmt.Sprintf("%.3f (%s)", r.WorstSlowdown, r.WorstApp),
			fmt.Sprintf("%.3f", r.AvgSlowdown),
			fmt.Sprintf("%.3f", r.AvgEnergyDelay),
			fmt.Sprintf("%d→%d", r.BaseViolations, r.ViolationsRemaining))
	}
	b.WriteString(tab.String())
	b.WriteString("\npaper reference rows:\n")
	ref := metrics.Table{Headers: []string{"target", "noise", "actual", "delay", "frac", "worst", "avg slowdown", "avg ED"}}
	for _, p := range paperTable4 {
		ref.AddRow(p.Target, p.Noise, p.Actual, p.Delay, p.RespFrac, p.WorstSlowdown, p.AvgSlowdown, p.AvgED)
	}
	b.WriteString(ref.String())
	return Report{ID: "table4", Text: b.String(), Data: data}, nil
}
