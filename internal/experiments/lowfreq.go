package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// LowFreqRow is one configuration of the low-frequency experiment.
type LowFreqRow struct {
	Technique  string
	Violations uint64
	Slowdown   float64
	Cycles     uint64
}

// LowFreqData holds the Section 2.2 demonstration.
type LowFreqData struct {
	// LowPeak and MediumPeak are the two impedance peaks of the
	// two-stage supply.
	LowPeak, MediumPeak circuit.ImpedancePoint
	Rows                []LowFreqRow
}

// LowFreq demonstrates Section 2.2 end to end: a workload oscillating at
// the two-stage supply's low-frequency resonance (a few megahertz —
// thousands of processor cycles per period) causes violations that the
// medium-band detector cannot see, and a second, decimated resonance-
// tuning controller covering the low band prevents them. The paper
// claims applicability to both bands; this experiment is the proof.
func LowFreq(opts Options) (Report, error) {
	supply := circuit.Table1TwoStage()
	lowPeak, medPeak := supply.Peaks()

	// A workload whose burst/stall alternation matches the low-frequency
	// resonant period (~2500 cycles at 4 MHz).
	lowPeriod := supply.ClockHz / supply.LowStage().ResonantFrequency()
	// Base oscillation sits above the low band (≈1.6× the resonant
	// period); every ~30 phases the program aligns into a coherent
	// resonant episode at the low period, mirroring the structure of
	// the medium-band violators.
	app := workload.Params{
		Name: "lowosc", Seed: 42,
		Mix:     workload.Mix{IntALU: 0.5, FPALU: 0.15, Load: 0.22, Store: 0.08, Branch: 0.05},
		DepProb: 0.55, DepMean: 4,
		MispredictRate: 0.005, L1MissRate: 0.002, L2MissRate: 0.1,
		Burst: workload.Burst{
			Enabled:     true,
			BurstInsts:  int(1.6*lowPeriod/2) * 5,
			StallMisses: int(1.6 * lowPeriod / 2 / 90),
			StallLevel:  cpu.MemMain,
			JitterFrac:  0.05,
			EpisodeProb: 0.033, EpisodeLen: 8,
			EpisodeBurstInsts:  int(lowPeriod/2) * 5,
			EpisodeStallMisses: int(lowPeriod / 2 / 90),
		},
	}
	if err := app.Validate(); err != nil {
		return Report{}, fmt.Errorf("lowfreq: %w", err)
	}

	cfg := sim.DefaultConfig()
	cfg.TwoStageSupply = &supply

	const factor = 25
	lowHalfDecimated := int(math.Round(lowPeriod / 2 / factor))

	mediumCfg := paperTuningConfig(100, 0)
	// The low loop's own threshold: its peak impedance is lower than the
	// medium peak, so it tolerates larger sustained variations
	// (margin / |Z_low| ≈ 40 A for this network).
	lowThreshold := math.Floor(supply.NoiseMarginVolts() / lowPeak.Ohms)
	lowCfg := tuning.Config{
		Detector: tuning.DetectorConfig{
			HalfPeriodLo:           lowHalfDecimated * 8 / 10,
			HalfPeriodHi:           lowHalfDecimated * 12 / 10,
			ThresholdAmps:          lowThreshold,
			MaxRepetitionTolerance: 4,
		},
		InitialResponseThreshold: 2,
		SecondResponseThreshold:  3,
		InitialResponseCycles:    100, // decimated units: 2500 cycles
		SecondResponseCycles:     35,
		ReducedIssueWidth:        4,
		ReducedCachePorts:        1,
		PhantomTargetAmps:        70,
	}

	// All three runs go through the cached engine; the row labels are
	// the experiment's own (the cached Result carries the technique's
	// canonical name, e.g. "resonance-tuning" for the medium-only row).
	eng := opts.engine()
	dualCfg := engine.DualBandConfig{Medium: mediumCfg, Low: lowCfg, DecimationFactor: factor}
	template := engine.Spec{Workload: &app, System: &cfg, Instructions: opts.instructions()}
	rows := []struct {
		label string
		spec  engine.Spec
	}{
		{"base", template},
		{"medium-only", template},
		{"dual-band", template},
	}
	rows[1].spec.Technique = engine.TechniqueTuning
	rows[1].spec.Tuning = &mediumCfg
	rows[2].spec.Technique = engine.TechniqueDualBand
	rows[2].spec.DualBand = &dualCfg

	specs := make([]engine.Spec, len(rows))
	for i, r := range rows {
		specs[i] = r.spec
	}
	results, err := eng.RunAll(context.Background(), specs, nil)
	if err != nil {
		return Report{}, err
	}
	base := results[0]

	data := &LowFreqData{LowPeak: lowPeak, MediumPeak: medPeak}
	for i, r := range results {
		slow := 1.0
		if base.Cycles > 0 {
			slow = float64(r.Cycles) / float64(base.Cycles)
		}
		data.Rows = append(data.Rows, LowFreqRow{
			Technique:  rows[i].label,
			Violations: r.Violations,
			Slowdown:   slow,
			Cycles:     r.Cycles,
		})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Low-frequency resonance (Section 2.2) on the two-stage supply\n\n")
	fmt.Fprintf(&b, "impedance peaks: low %.2f mΩ at %.1f MHz, medium %.2f mΩ at %.1f MHz\n",
		lowPeak.Ohms*1e3, lowPeak.FrequencyHz/1e6, medPeak.Ohms*1e3, medPeak.FrequencyHz/1e6)
	fmt.Fprintf(&b, "workload oscillation period: ≈%.0f cycles (the low resonant period)\n\n", lowPeriod)
	tab := metrics.Table{Headers: []string{"technique", "violations", "slowdown"}}
	for _, r := range data.Rows {
		tab.AddRow(r.Technique, r.Violations, fmt.Sprintf("%.3f", r.Slowdown))
	}
	b.WriteString(tab.String())
	b.WriteString("\nthe medium-band detector is blind at 2500-cycle periods; the\n" +
		"decimated low-band controller sees them with the same hardware at a\n" +
		"25:1 slower sensor, as Section 2.2 of the paper anticipates.\n")
	return Report{ID: "lowfreq", Text: b.String(), Data: data}, nil
}
