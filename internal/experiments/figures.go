package experiments

import (
	"fmt"

	"repro/internal/plot"
)

// Figures renders a report's structured data as standalone SVG documents,
// keyed by file stem (e.g. "fig3-voltage"). Reports without a graphical
// representation return an empty map.
func Figures(rep Report) map[string]string {
	out := map[string]string{}
	switch d := rep.Data.(type) {
	case *Fig1cData:
		for _, s := range []Fig1cSeries{d.Example, d.Table1} {
			line := plot.Line{
				Title:  fmt.Sprintf("Figure 1(c): %s impedance", s.Label),
				XLabel: "frequency (MHz)",
				YLabel: "|Z| (mΩ)",
				VBands: [][2]float64{{s.Chars.BandHz.Lo / 1e6, s.Chars.BandHz.Hi / 1e6}},
			}
			series := plot.Series{Name: s.Label}
			for _, pt := range s.Points {
				series.X = append(series.X, pt.FrequencyHz/1e6)
				series.Y = append(series.Y, pt.Ohms*1e3)
			}
			line.Series = []plot.Series{series}
			key := "fig1c-table1"
			if s.Label != "table-1 design" {
				key = "fig1c-example"
			}
			out[key] = line.RenderLine()
		}
	case *Fig3Data:
		out["fig3-voltage"] = waveformSVG("Figure 3: supply deviation under resonant stimulation",
			"deviation (mV)", d.Deviations, 1000, []float64{50, -50})
		out["fig3-current"] = waveformSVG("Figure 3: stimulus current",
			"current (A)", d.Current, 1, nil)
	case *Fig4Data:
		out["fig4-voltage"] = waveformSVG("Figure 4: parser supply deviation",
			"deviation (mV)", d.Deviations, 1000, []float64{50, -50})
		out["fig4-current"] = waveformSVG("Figure 4: parser core current",
			"current (A)", d.Current, 1, nil)
		counts := make([]float64, len(d.EventCount))
		for i, c := range d.EventCount {
			counts[i] = float64(c)
		}
		out["fig4-count"] = waveformSVG("Figure 4: resonant event count",
			"count", counts, 1, nil)
	case *Fig5Data:
		bar := plot.Bar{
			Title:    "Figure 5: relative energy-delay by technique",
			YLabel:   "relative energy-delay",
			Baseline: 1,
		}
		for _, b := range d.Bars {
			bar.Labels = append(bar.Labels, b.Label[:1]) // A..F
			bar.Values = append(bar.Values, b.AvgEnergyDelay)
		}
		out["fig5"] = bar.RenderBar()
	case *Table2Data:
		bar := plot.Bar{Title: "Table 2: IPC by application", YLabel: "IPC"}
		for _, row := range d.Rows {
			bar.Labels = append(bar.Labels, row.App[:3])
			bar.Values = append(bar.Values, row.IPC)
		}
		out["table2-ipc"] = bar.RenderBar()
	case *Table3Data:
		slow := plot.Series{Name: "avg slowdown"}
		ed := plot.Series{Name: "avg energy-delay"}
		for _, r := range d.Rows {
			if r.DelayCycles != 0 {
				continue
			}
			x := float64(r.InitialResponseCycles)
			slow.X = append(slow.X, x)
			slow.Y = append(slow.Y, r.AvgSlowdown)
			ed.X = append(ed.X, x)
			ed.Y = append(ed.Y, r.AvgEnergyDelay)
		}
		out["table3"] = plot.Line{
			Title:  "Table 3: resonance tuning vs initial response time",
			XLabel: "initial response time (cycles)",
			YLabel: "relative to base",
			Series: []plot.Series{slow, ed},
			HLines: []float64{1},
		}.RenderLine()
	case *Table5Data:
		bar := plot.Bar{
			Title:    "Table 5: pipeline damping vs δ",
			YLabel:   "relative energy-delay",
			Baseline: 1,
		}
		for _, r := range d.Rows {
			bar.Labels = append(bar.Labels, fmt.Sprintf("δ=%g", r.DeltaRelative))
			bar.Values = append(bar.Values, r.AvgEnergyDelay)
		}
		out["table5"] = bar.RenderBar()
	}
	return out
}

// waveformSVG renders a per-cycle waveform with optional horizontal
// reference lines.
func waveformSVG(title, ylabel string, xs []float64, scale float64, hlines []float64) string {
	s := plot.Series{Name: ylabel}
	for i, v := range xs {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, v*scale)
	}
	return plot.Line{
		Title:  title,
		XLabel: "cycle",
		YLabel: ylabel,
		Series: []plot.Series{s},
		HLines: hlines,
	}.RenderLine()
}
