package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/workload"
)

// SpectrumRow is one application's frequency-content summary.
type SpectrumRow struct {
	App            string
	PaperViolating bool
	// BandPowerA2 is the variance (A²) of the app's current trace
	// inside the resonance band (84-119 cycles for Table 1).
	BandPowerA2 float64
	// BandFraction is the band power over the total trace variance.
	BandFraction float64
	// PeakPeriod is the period (cycles) of the strongest spectral bin.
	PeakPeriod float64
	// Violations on the base machine during the analysed run.
	Violations uint64
}

// SpectrumData holds the per-app spectral analysis.
type SpectrumData struct {
	BandLoCycles, BandHiCycles float64
	Rows                       []SpectrumRow
}

// Spectra measures what the paper asserts but never plots: the frequency
// content of each application's current waveform. Every app's per-cycle
// current is captured on the base machine and Welch-analysed; the
// violating applications of Table 2 should carry visibly more energy
// inside the 84-119-cycle resonance band than the clean ones, and their
// spectral peaks should sit in or near it.
func Spectra(opts Options) (Report, error) {
	cfg := sim.DefaultConfig()
	band := cfg.Supply.ResonanceBandCycles()
	lo, hi := float64(band.Lo), float64(band.Hi)

	// Each spec carries its own trace sink, so the engine runs the suite
	// through its pool while every worker appends to a distinct slice.
	apps := workload.Apps()
	specs := make([]engine.Spec, len(apps))
	traces := make([][]float64, len(apps))
	for i, app := range apps {
		i := i
		traces[i] = make([]float64, 0, opts.instructions())
		specs[i] = engine.Spec{
			App:          app.Params.Name,
			Instructions: opts.instructions(),
			Trace:        func(tp sim.TracePoint) { traces[i] = append(traces[i], tp.TotalAmps) },
		}
	}
	results, err := opts.engine().RunAll(context.Background(), specs, nil)
	if err != nil {
		return Report{}, err
	}
	rows := make([]SpectrumRow, len(apps))
	for i, app := range apps {
		sp, err := spectrum.Analyze(traces[i], cfg.Supply.ClockHz, 10, 4*hi)
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", app.Params.Name, err)
		}
		rows[i] = SpectrumRow{
			App:            app.Params.Name,
			PaperViolating: app.PaperViolating,
			BandPowerA2:    sp.BandPower(lo, hi),
			BandFraction:   sp.BandFraction(lo, hi),
			PeakPeriod:     sp.Peak().PeriodCycles,
			Violations:     results[i].Violations,
		}
	}

	data := &SpectrumData{BandLoCycles: lo, BandHiCycles: hi, Rows: rows}

	// Rank by band power for the report.
	ranked := append([]SpectrumRow(nil), rows...)
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].BandPowerA2 > ranked[j].BandPowerA2 })

	var b strings.Builder
	fmt.Fprintf(&b, "Current-spectrum analysis (%d instructions/app)\n\n", opts.instructions())
	fmt.Fprintf(&b, "resonance band: %d-%d cycles; per-app Welch PSD of the base machine's current\n\n",
		band.Lo, band.Hi)
	tab := metrics.Table{Headers: []string{
		"app", "class", "band power (A²)", "band fraction", "peak period (cycles)", "violations",
	}}
	for _, r := range ranked {
		class := "clean"
		if r.PaperViolating {
			class = "violating"
		}
		tab.AddRow(r.App, class,
			fmt.Sprintf("%.2f", r.BandPowerA2),
			fmt.Sprintf("%.3f", r.BandFraction),
			fmt.Sprintf("%.0f", r.PeakPeriod),
			r.Violations)
	}
	b.WriteString(tab.String())

	vioMean, cleanMean := classMeans(rows)
	fmt.Fprintf(&b, "\nmean in-band power: violating apps %.2f A², clean apps %.2f A²\n", vioMean, cleanMean)
	b.WriteString("the violating class carries the in-band energy — the spectral footing\n" +
		"of the paper's \"only variations in the band are problematic\" claim.\n")
	return Report{ID: "spectra", Text: b.String(), Data: data}, nil
}

// classMeans averages in-band power by violation class.
func classMeans(rows []SpectrumRow) (violating, clean float64) {
	var nv, nc int
	for _, r := range rows {
		if r.PaperViolating {
			violating += r.BandPowerA2
			nv++
		} else {
			clean += r.BandPowerA2
			nc++
		}
	}
	if nv > 0 {
		violating /= float64(nv)
	}
	if nc > 0 {
		clean /= float64(nc)
	}
	return violating, clean
}
