package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/baselines/damping"
	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Table5Row is one pipeline-damping configuration.
type Table5Row struct {
	// DeltaRelative is δ as a fraction of the resonant current
	// variation threshold (1, 0.5, 0.25 in the paper).
	DeltaRelative  float64
	DeltaAmps      float64
	WorstSlowdown  float64
	WorstApp       string
	AvgSlowdown    float64
	AvgEnergyDelay float64
}

// Table5Data is the full sweep.
type Table5Data struct {
	Rows []Table5Row
	Base []sim.Result
}

// paperTable5 lists the paper's Table 5 for comparison.
var paperTable5 = []struct {
	DeltaRel, WorstSlowdown, AvgSlowdown, AvgED float64
}{
	{1, 1.35, 1.10, 1.12},
	{0.5, 1.60, 1.15, 1.17},
	{0.25, 2.04, 1.24, 1.26},
}

// Table5 reproduces Table 5: pipeline damping [14] applied at the
// resonant period (50-cycle damping window) with δ swept at 1×, 0.5×,
// and 0.25× the resonant current variation threshold. Tightening δ to
// cover the whole resonance band rather than just the resonant frequency
// costs increasing performance and energy.
func Table5(opts Options) (Report, error) {
	eng := opts.engine()
	base, err := runSuite(eng, opts, engine.Spec{})
	if err != nil {
		return Report{}, err
	}
	data := &Table5Data{Base: base}

	supply := circuit.Table1()
	window := int(math.Round(supply.ResonantPeriodCycles() / 2))
	const thresholdAmps = 32.0

	for _, rel := range []float64{1, 0.5, 0.25} {
		dcfg := damping.Config{
			WindowCycles: window,
			DeltaAmps:    thresholdAmps * rel,
			Scale:        dampingScale,
		}
		results, err := runSuite(eng, opts, engine.Spec{Technique: engine.TechniqueDamping, Damping: &dcfg})
		if err != nil {
			return Report{}, err
		}
		rels, err := metrics.Compare(base, results)
		if err != nil {
			return Report{}, err
		}
		sum := metrics.Summarize(rels)
		data.Rows = append(data.Rows, Table5Row{
			DeltaRelative:  rel,
			DeltaAmps:      dcfg.DeltaAmps,
			WorstSlowdown:  sum.WorstSlowdown,
			WorstApp:       sum.WorstApp,
			AvgSlowdown:    sum.AvgSlowdown,
			AvgEnergyDelay: sum.AvgEnergyDelay,
		})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: pipeline damping [14] (%d instructions/app, %d-cycle window)\n\n",
		opts.instructions(), window)
	tab := metrics.Table{Headers: []string{
		"δ / threshold", "δ (A)", "worst slowdown", "avg slowdown", "avg energy-delay",
	}}
	for _, r := range data.Rows {
		tab.AddRow(r.DeltaRelative, r.DeltaAmps,
			fmt.Sprintf("%.3f (%s)", r.WorstSlowdown, r.WorstApp),
			fmt.Sprintf("%.3f", r.AvgSlowdown),
			fmt.Sprintf("%.3f", r.AvgEnergyDelay))
	}
	b.WriteString(tab.String())
	b.WriteString("\npaper reference rows:\n")
	ref := metrics.Table{Headers: []string{"δ / threshold", "worst", "avg slowdown", "avg ED"}}
	for _, p := range paperTable5 {
		ref.AddRow(p.DeltaRel, p.WorstSlowdown, p.AvgSlowdown, p.AvgED)
	}
	b.WriteString(ref.String())
	return Report{ID: "table5", Text: b.String(), Data: data}, nil
}

// dampingScale converts δ (amps, relative to the resonant current
// variation threshold) into the window-sum bound. Reference [14] maps its
// abstract current-estimate units to amps with its own calibration
// ("each unit ... is equivalent to 0.5 A scaled to our processor
// configuration"); we calibrate the same way, choosing the scale so that
// δ equal to the threshold reproduces the ~10% average slowdown [14] and
// the paper's Table 5 report.
const dampingScale = 0.5
