package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// Table3Row is one resonance-tuning configuration's summary (one row of
// the paper's Table 3).
type Table3Row struct {
	InitialResponseCycles int
	DelayCycles           int
	FirstLevelFraction    float64
	SecondLevelFraction   float64
	WorstSlowdown         float64
	WorstApp              string
	AppsOver15            int
	AvgSlowdown           float64
	AvgEnergyDelay        float64
	ViolationsRemaining   uint64
	BaseViolations        uint64
}

// Table3Data holds the full sweep plus the paper's reference rows.
type Table3Data struct {
	Rows []Table3Row
	// Base holds the uncontrolled runs the relatives are computed
	// against.
	Base []sim.Result
}

// paperTable3 lists the paper's Table 3 for EXPERIMENTS.md comparisons.
var paperTable3 = []struct {
	Initial                    int
	FirstFrac, SecondFrac      float64
	WorstSlowdown, AvgSlowdown float64
	Over15                     int
	AvgED                      float64
}{
	{75, 0.10, 0.0040, 1.19, 1.043, 2, 1.052},
	{100, 0.12, 0.0038, 1.20, 1.048, 1, 1.057},
	{125, 0.15, 0.0032, 1.19, 1.054, 2, 1.076},
	{150, 0.17, 0.0031, 1.35, 1.068, 4, 1.079},
	{200, 0.20, 0.0027, 1.27, 1.075, 5, 1.088},
}

// Table3 reproduces Table 3: resonance tuning swept over initial response
// times of 75-200 cycles, reporting response-cycle fractions, slowdowns,
// and relative energy-delay against the base machine, plus the paper's
// 5-cycle-delay sensitivity check (Section 5.2).
func Table3(opts Options) (Report, error) {
	eng := opts.engine()
	type sweep struct{ initial, delay int }
	sweeps := []sweep{{75, 0}, {100, 0}, {125, 0}, {150, 0}, {200, 0}, {100, 5}}

	// The base suite and all six tuning sweeps go through one RunAll:
	// each application's seven specs (base + six tuning variants) share a
	// MachineKey, so the engine's batch path packs them into one lockstep
	// group per application instead of simulating the stream seven times.
	apps := workload.Apps()
	variants := []engine.Spec{{}}
	cfgs := make([]tuning.Config, len(sweeps))
	for i, sw := range sweeps {
		cfgs[i] = paperTuningConfig(sw.initial, sw.delay)
		variants = append(variants, engine.Spec{Technique: engine.TechniqueTuning, Tuning: &cfgs[i]})
	}
	specs := make([]engine.Spec, 0, len(variants)*len(apps))
	for _, v := range variants {
		for _, app := range apps {
			s := v
			s.App = app.Params.Name
			s.Instructions = opts.instructions()
			specs = append(specs, s)
		}
	}
	all, err := eng.RunAll(context.Background(), specs, nil)
	if err != nil {
		return Report{}, err
	}
	base := all[:len(apps)]
	data := &Table3Data{Base: base}

	for si, sw := range sweeps {
		results := all[(si+1)*len(apps) : (si+2)*len(apps)]
		row, err := summarizeTuningRow(base, results, sw.initial, sw.delay)
		if err != nil {
			return Report{}, err
		}
		data.Rows = append(data.Rows, row)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: resonance tuning (%d instructions/app)\n\n", opts.instructions())
	tab := metrics.Table{Headers: []string{
		"initial resp", "delay", "frac L1 resp", "frac L2 resp",
		"worst slowdown", "apps >15%", "avg slowdown", "avg energy-delay", "violations (base→tuned)",
	}}
	for _, r := range data.Rows {
		tab.AddRow(
			fmt.Sprintf("%d cycles", r.InitialResponseCycles),
			r.DelayCycles,
			fmt.Sprintf("%.3f", r.FirstLevelFraction),
			fmt.Sprintf("%.4f", r.SecondLevelFraction),
			fmt.Sprintf("%.3f (%s)", r.WorstSlowdown, r.WorstApp),
			r.AppsOver15,
			fmt.Sprintf("%.3f", r.AvgSlowdown),
			fmt.Sprintf("%.3f", r.AvgEnergyDelay),
			fmt.Sprintf("%d→%d", r.BaseViolations, r.ViolationsRemaining),
		)
	}
	b.WriteString(tab.String())
	b.WriteString("\npaper reference rows (500M instructions/app):\n")
	ref := metrics.Table{Headers: []string{"initial resp", "frac L1", "frac L2", "worst", ">15%", "avg slowdown", "avg ED"}}
	for _, p := range paperTable3 {
		ref.AddRow(fmt.Sprintf("%d cycles", p.Initial), p.FirstFrac, p.SecondFrac,
			p.WorstSlowdown, p.Over15, p.AvgSlowdown, p.AvgED)
	}
	b.WriteString(ref.String())
	return Report{ID: "table3", Text: b.String(), Data: data}, nil
}

// summarizeTuningRow condenses one resonance-tuning configuration's
// suite results into a table row.
func summarizeTuningRow(base, results []sim.Result, initial, delay int) (Table3Row, error) {
	var firstCycles, secondCycles, totalCycles uint64
	for _, r := range results {
		firstCycles += r.Tech.FirstLevelCycles
		secondCycles += r.Tech.SecondLevelCycles
		totalCycles += r.Tech.ControllerCycles
	}
	rels, err := metrics.Compare(base, results)
	if err != nil {
		return Table3Row{}, err
	}
	sum := metrics.Summarize(rels)
	row := Table3Row{
		InitialResponseCycles: initial,
		DelayCycles:           delay,
		WorstSlowdown:         sum.WorstSlowdown,
		WorstApp:              sum.WorstApp,
		AppsOver15:            sum.Over15,
		AvgSlowdown:           sum.AvgSlowdown,
		AvgEnergyDelay:        sum.AvgEnergyDelay,
		ViolationsRemaining:   sum.TechViolations,
		BaseViolations:        sum.BaseViolations,
	}
	if totalCycles > 0 {
		row.FirstLevelFraction = float64(firstCycles) / float64(totalCycles)
		row.SecondLevelFraction = float64(secondCycles) / float64(totalCycles)
	}
	return row, nil
}
