// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5): the impedance curve of Figure 1(c), the
// known-waveform stimulation of Figure 3, the parser violation anatomy of
// Figure 4, the application classification of Table 2, the resonance-
// tuning sweep of Table 3, the voltage-control sweep of Table 4
// (technique of [10]), the pipeline-damping sweep of Table 5, the
// comparison of Figure 5, and the repo's own ablation studies.
//
// Every experiment is deterministic. Experiments that simulate the whole
// SPEC2K suite fan application runs out across a worker pool and join
// before reporting, so reports are reproducible bit-for-bit.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// Options tunes how experiments run. The zero value is usable: it selects
// the paper's Table 1 system, a scaled-down instruction budget, and full
// parallelism.
type Options struct {
	// Instructions is the per-application instruction budget. Zero
	// means 1,000,000 (the paper runs 500M; see EXPERIMENTS.md for the
	// scaling discussion).
	Instructions uint64
	// Parallelism bounds concurrent application simulations; zero means
	// GOMAXPROCS.
	Parallelism int
	// Engine, when non-nil, executes the experiment's simulations,
	// sharing its worker pool and result cache with every other
	// experiment run through it (the 26-app baseline suite then
	// simulates once per process instead of once per table). Nil means
	// a private engine with Parallelism workers.
	Engine *engine.Engine
}

func (o Options) instructions() uint64 {
	if o.Instructions == 0 {
		return 1_000_000
	}
	return o.Instructions
}

func (o Options) parallelism() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// engine returns the shared engine, or a private one for this
// experiment. Runners call it once at their top so that at least the
// experiment's own repeated points (its baseline suite) are cached.
func (o Options) engine() *engine.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	return engine.New(engine.Options{Parallelism: o.parallelism()})
}

// Report is the outcome of one experiment: a human-readable text block
// plus experiment-specific structured data for programmatic use.
type Report struct {
	ID   string
	Text string
	// Data holds the experiment's structured results: *Fig1cData,
	// *Fig3Data, *Fig4Data, *Table2Data, *Table3Data, *Table4Data,
	// *Table5Data, *Fig5Data, *AblationData, *RelatedData,
	// *LowFreqData, *ScalingData, *SpectrumData, or *MultiDomainData.
	Data any
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	ID          string
	Description string
	Run         func(Options) (Report, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1c", "power-supply impedance vs frequency (Figure 1c)", Fig1c},
		{"fig3", "stimulation at the resonant frequency (Figure 3)", Fig3},
		{"fig4", "voltage and current variation in parser (Figure 4)", Fig4},
		{"table2", "classification of SPEC2K applications (Table 2)", Table2},
		{"table3", "resonance tuning response-time sweep (Table 3)", Table3},
		{"table4", "technique of [10], threshold/noise/delay sweep (Table 4)", Table4},
		{"table5", "pipeline damping delta sweep (Table 5)", Table5},
		{"fig5", "energy-delay comparison of the techniques (Figure 5)", Fig5},
		{"ablations", "design-choice ablations (band coverage, thresholds, tiers, sensors, integrator)", Ablations},
		{"related", "five-way related-technique comparison incl. convolution [8] and wavelet [11]", Related},
		{"lowfreq", "low-frequency resonance on the two-stage supply (Section 2.2)", LowFreq},
		{"scaling", "technology-scaling trend: tuning vs resonant period (Section 3.2)", Scaling},
		{"spectra", "per-application current spectra vs the resonance band", Spectra},
		{"multidomain", "shared package resonance on the two-domain PDN with per-domain tuning", MultiDomain},
	}
}

// ByID returns the experiment with the given identifier.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, ids)
}

// runSuite simulates every Table 2 application under the technique
// configuration carried by spec (App and Instructions are filled in per
// application), through the engine's worker pool and cache, returning
// results in Table 2 application order.
func runSuite(eng *engine.Engine, opts Options, spec engine.Spec) ([]sim.Result, error) {
	apps := workload.Apps()
	names := make([]string, len(apps))
	for i, app := range apps {
		names[i] = app.Params.Name
	}
	return runApps(eng, opts, spec, names)
}

// runApps simulates the named applications under the technique
// configuration carried by spec (App and Instructions are filled in per
// application), through the engine's worker pool and cache, returning
// results in the given order.
func runApps(eng *engine.Engine, opts Options, spec engine.Spec, apps []string) ([]sim.Result, error) {
	specs := make([]engine.Spec, len(apps))
	for i, name := range apps {
		s := spec
		s.App = name
		s.Instructions = opts.instructions()
		specs[i] = s
	}
	return eng.RunAll(context.Background(), specs, nil)
}

// paperTuningConfig is the evaluated resonance-tuning configuration of
// Section 5.2: Table 1 detector parameters, initial response threshold 2,
// second-level threshold 3, second-level hold 35 cycles, first-level
// response 8→4 issue and 2→1 ports, phantom target at the mid current.
func paperTuningConfig(initialResponseCycles, delayCycles int) tuning.Config {
	supply := circuit.Table1()
	lo, hi := supply.ResonanceBandCycles().HalfPeriods()
	return tuning.Config{
		Detector: tuning.DetectorConfig{
			HalfPeriodLo:           lo,
			HalfPeriodHi:           hi,
			ThresholdAmps:          32,
			MaxRepetitionTolerance: 4,
		},
		InitialResponseThreshold: 2,
		SecondResponseThreshold:  3,
		InitialResponseCycles:    initialResponseCycles,
		SecondResponseCycles:     35,
		ReducedIssueWidth:        4,
		ReducedCachePorts:        1,
		ResponseDelayCycles:      delayCycles,
		PhantomTargetAmps:        70,
	}
}
