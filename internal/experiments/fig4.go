package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// Fig4Data captures the Figure 4 anatomy of a noise-margin violation in
// parser: a 400-cycle window of supply deviation, core current, and the
// resonant event count, centred on a violation.
type Fig4Data struct {
	// WindowStart is the first cycle of the captured window.
	WindowStart uint64
	// Deviations, Current, EventCount are the per-cycle window traces.
	Deviations []float64
	Current    []float64
	EventCount []int
	// ViolationCycle is the violating cycle (absolute).
	ViolationCycle uint64
	// LeadCycles maps resonant event count → how many cycles before the
	// violation that count was first reached (the "advance warning" the
	// paper emphasises; count 2 arrives ~150 cycles early).
	LeadCycles map[int]int
}

// Fig4 reproduces Figure 4: voltage and current variation in parser
// around a noise-margin violation, with the resonant event count rising
// ahead of the violation.
func Fig4(opts Options) (Report, error) {
	app, err := workload.ByName("parser")
	if err != nil {
		return Report{}, err
	}
	// Ensure a violation occurs quickly by making parser's resonant
	// episodes frequent; this is a zoom-in on one violation, not a rate
	// measurement.
	app.Params.Burst.EpisodeProb = 0.05

	insts := opts.instructions()
	cfg := sim.DefaultConfig()
	lo, hi := cfg.Supply.ResonanceBandCycles().HalfPeriods()
	det := tuning.NewDetector(tuning.DetectorConfig{
		HalfPeriodLo: lo, HalfPeriodHi: hi,
		ThresholdAmps: 32, MaxRepetitionTolerance: 4,
	})

	// The run goes through the engine (a traced spec always simulates,
	// but the result is cached for untraced consumers); the external
	// detector rides along on the trace callback.
	var trace []sim.TracePoint
	spec := engine.Spec{
		App:          "parser",
		Workload:     &app.Params,
		Instructions: insts,
		Trace: func(tp sim.TracePoint) {
			det.Step(tp.TotalAmps)
			tp.EventCount = det.CountNow()
			trace = append(trace, tp)
		},
	}
	if _, err := opts.engine().Run(context.Background(), spec); err != nil {
		return Report{}, err
	}

	margin := cfg.Supply.NoiseMarginVolts()
	vi := -1
	for i := 2000; i < len(trace); i++ {
		if math.Abs(trace[i].DeviationVolts) > margin {
			vi = i
			break
		}
	}
	if vi < 0 {
		return Report{}, fmt.Errorf("fig4: no violation observed in %d instructions of parser", insts)
	}

	start := vi - 300
	if start < 0 {
		start = 0
	}
	end := start + 400
	if end > len(trace) {
		end = len(trace)
	}
	data := &Fig4Data{
		WindowStart:    uint64(start),
		ViolationCycle: uint64(vi),
		LeadCycles:     map[int]int{},
	}
	for i := start; i < end; i++ {
		data.Deviations = append(data.Deviations, trace[i].DeviationVolts)
		data.Current = append(data.Current, trace[i].TotalAmps)
		data.EventCount = append(data.EventCount, trace[i].EventCount)
	}
	// Lead time: first time each count was reached within the window
	// before the violation.
	for count := 2; count <= 4; count++ {
		for i := start; i <= vi; i++ {
			if trace[i].EventCount >= count {
				data.LeadCycles[count] = vi - i
				break
			}
		}
	}

	var b strings.Builder
	b.WriteString("Figure 4: voltage and current variation in parser\n\n")
	fmt.Fprintf(&b, "noise-margin violation at cycle %d (window %d-%d)\n",
		vi, start, end)
	for count := 2; count <= 4; count++ {
		if lead, ok := data.LeadCycles[count]; ok {
			fmt.Fprintf(&b, "resonant event count %d reached %d cycles before the violation\n", count, lead)
		}
	}
	b.WriteString("\n")
	b.WriteString(asciiWave("supply deviation (mV)", data.Deviations, 1000))
	b.WriteString(asciiWave("core current (A)", data.Current, 1))
	counts := make([]float64, len(data.EventCount))
	for i, c := range data.EventCount {
		counts[i] = float64(c)
	}
	b.WriteString(asciiWave("resonant event count", counts, 1))
	return Report{ID: "fig4", Text: b.String(), Data: data}, nil
}
