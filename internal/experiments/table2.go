package experiments

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Table2Row is one application's classification.
type Table2Row struct {
	App                string
	IPC                float64
	PaperIPC           float64
	ViolationFrac      float64
	PaperViolationFrac float64
	Violating          bool
	PaperViolating     bool
}

// Table2Data is the full classification of the 26 applications.
type Table2Data struct {
	Rows []Table2Row
	// Results are the raw base-machine runs, reusable by other
	// experiments.
	Results []sim.Result
}

// Table2 reproduces Table 2: every SPEC2K application's IPC and fraction
// of cycles in noise-margin violation on the base (uncontrolled) Table 1
// processor, classified into violating and non-violating sets.
func Table2(opts Options) (Report, error) {
	results, err := runSuite(opts.engine(), opts, engine.Spec{})
	if err != nil {
		return Report{}, err
	}
	apps := workload.Apps()
	data := &Table2Data{Results: results}
	for i, r := range results {
		app := apps[i]
		data.Rows = append(data.Rows, Table2Row{
			App:                r.App,
			IPC:                r.IPC,
			PaperIPC:           app.PaperIPC,
			ViolationFrac:      r.ViolationFraction,
			PaperViolationFrac: app.PaperViolationFrac,
			Violating:          r.Violations > 0,
			PaperViolating:     app.PaperViolating,
		})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: classification of SPEC2K applications (%d instructions/app)\n\n", opts.instructions())
	tab := metrics.Table{Headers: []string{
		"app", "IPC", "paper IPC", "viol frac", "paper frac", "class", "paper class", "match",
	}}
	agree := 0
	for _, row := range data.Rows {
		class := func(v bool) string {
			if v {
				return "violating"
			}
			return "clean"
		}
		match := ""
		if row.Violating == row.PaperViolating {
			match = "yes"
			agree++
		}
		tab.AddRow(row.App,
			fmt.Sprintf("%.2f", row.IPC), fmt.Sprintf("%.2f", row.PaperIPC),
			fmt.Sprintf("%.2e", row.ViolationFrac), fmt.Sprintf("%.2e", row.PaperViolationFrac),
			class(row.Violating), class(row.PaperViolating), match)
	}
	b.WriteString(tab.String())
	fmt.Fprintf(&b, "\nclassification agreement: %d/%d applications\n", agree, len(data.Rows))
	b.WriteString("note: violation fractions are per scaled run; the paper's absolute\n" +
		"fractions are over 500M instructions. Both show violations are rare and\n" +
		"uncorrelated with IPC.\n")
	return Report{ID: "table2", Text: b.String(), Data: data}, nil
}
