package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/circuit"
	"repro/internal/tuning"
)

// Fig3Data captures the Figure 3 stimulation experiment: the Table 1
// supply excited by a square current wave at the resonant frequency from
// cycle 100 to 500.
type Fig3Data struct {
	// AmplitudeAmps is the stimulus peak-to-peak amplitude (34 A in the
	// paper, just above the 32 A threshold).
	AmplitudeAmps float64
	// Deviations and Current are the per-cycle waveforms.
	Deviations []float64
	Current    []float64
	// EventCounts maps cycle → resonant event count at the cycles the
	// detector recorded events.
	Events []tuning.Event
	// FirstViolationCycle is the cycle of the first noise-margin
	// violation (-1 if none).
	FirstViolationCycle int
	// CountAtViolation is the resonant event count when the violation
	// occurs; the paper observes the violation at the maximum
	// repetition tolerance (4).
	CountAtViolation int
	// DissipationPerPeriod is the measured post-stimulus decay per
	// resonant period (the paper reports 66%).
	DissipationPerPeriod float64
}

// Fig3 reproduces Figure 3: repeated resonant events build to a
// noise-margin violation when the event count reaches the maximum
// repetition tolerance, and resonant energy dissipates quickly once the
// stimulus stops.
func Fig3(Options) (Report, error) {
	supply := circuit.Table1()
	period := int(math.Round(supply.ResonantPeriodCycles()))
	mid := (supply.IMax + supply.IMin) / 2
	const amplitude = 32.5
	const start, end, total = 100, 500, 1000

	wave := circuit.Square{Mid: mid, Amplitude: amplitude, PeriodCycles: period, Start: start, End: end}
	simr := circuit.NewSimulator(supply, mid)
	lo, hi := supply.ResonanceBandCycles().HalfPeriods()
	det := tuning.NewDetector(tuning.DetectorConfig{
		HalfPeriodLo: lo, HalfPeriodHi: hi,
		ThresholdAmps: 32, MaxRepetitionTolerance: 4,
	})

	data := &Fig3Data{AmplitudeAmps: amplitude, FirstViolationCycle: -1}
	margin := supply.NoiseMarginVolts()
	for c := 0; c < total; c++ {
		i := wave.At(c)
		dev := simr.Step(i)
		data.Current = append(data.Current, i)
		data.Deviations = append(data.Deviations, dev)
		if ev, ok := det.Step(i); ok {
			data.Events = append(data.Events, ev)
		}
		if data.FirstViolationCycle < 0 && math.Abs(dev) > margin {
			data.FirstViolationCycle = c
			data.CountAtViolation = det.CountNow()
		}
	}

	// Post-stimulus dissipation: ratio of waveform envelopes one period
	// apart after the wave stops.
	peakIn := func(from int) float64 {
		p := 0.0
		for c := from; c < from+period && c < total; c++ {
			if a := math.Abs(data.Deviations[c]); a > p {
				p = a
			}
		}
		return p
	}
	p1, p2 := peakIn(end), peakIn(end+period)
	if p1 > 0 {
		data.DissipationPerPeriod = 1 - p2/p1
	}

	var b strings.Builder
	b.WriteString("Figure 3: stimulation at the resonant frequency\n\n")
	fmt.Fprintf(&b, "stimulus: %g A p-p square wave at %d-cycle period, cycles %d-%d\n",
		amplitude, period, start, end)
	fmt.Fprintf(&b, "resonant current variation threshold: 32 A; max repetition tolerance: 4\n\n")
	if data.FirstViolationCycle >= 0 {
		fmt.Fprintf(&b, "first noise-margin violation at cycle %d with resonant event count %d\n",
			data.FirstViolationCycle, data.CountAtViolation)
	} else {
		b.WriteString("no noise-margin violation (stimulus below effective threshold)\n")
	}
	fmt.Fprintf(&b, "post-stimulus dissipation: %.0f%% per resonant period (paper: 66%%)\n\n",
		data.DissipationPerPeriod*100)
	b.WriteString("event count trace (cycle:count): ")
	for _, ev := range data.Events {
		if len(data.Events) > 24 && ev.Count == 1 {
			continue
		}
		fmt.Fprintf(&b, "%d:%d ", ev.Cycle, ev.Count)
	}
	b.WriteByte('\n')
	b.WriteString(asciiWave("supply deviation (mV)", data.Deviations, 1000))
	b.WriteString(asciiWave("processor current (A)", data.Current, 1))
	return Report{ID: "fig3", Text: b.String(), Data: data}, nil
}

// asciiWave renders a waveform as a small ASCII strip chart.
func asciiWave(label string, xs []float64, scale float64) string {
	const rows, cols = 10, 100
	min, max := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		min = math.Min(min, x)
		max = math.Max(max, x)
	}
	if max == min {
		max = min + 1
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	for c := 0; c < cols; c++ {
		idx := c * (len(xs) - 1) / (cols - 1)
		h := int((xs[idx] - min) / (max - min) * float64(rows-1))
		grid[rows-1-h][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%.1f .. %.1f]\n", label, min*scale, max*scale)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", cols) + "\n")
	return b.String()
}
