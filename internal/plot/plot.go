// Package plot renders the repo's experiment data as standalone SVG
// figures — line charts for waveforms and impedance curves, bar charts
// for the technique comparison — with no dependencies beyond the standard
// library. The goal is publication-style regeneration of the paper's
// figures from `cmd/experiments -svg`.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Line describes a line chart.
type Line struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// HLines draws horizontal reference lines (e.g. noise margins).
	HLines []float64
	// VBands shades vertical bands (e.g. the resonance band).
	VBands [][2]float64
	// LogX uses a logarithmic x axis.
	LogX bool
}

// Bar describes a bar chart.
type Bar struct {
	Title  string
	YLabel string
	Labels []string
	Values []float64
	// Baseline draws a horizontal reference (e.g. 1.0 for relative
	// metrics).
	Baseline float64
}

// geometry of the rendered chart.
const (
	width   = 720
	height  = 420
	marginL = 70
	marginR = 20
	marginT = 40
	marginB = 55
)

// palette cycles through line colours.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// esc escapes text for SVG.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

type scale struct {
	min, max float64
	lo, hi   float64 // pixel range
	log      bool
}

func (s scale) at(v float64) float64 {
	min, max, x := s.min, s.max, v
	if s.log {
		min, max, x = math.Log10(min), math.Log10(max), math.Log10(v)
	}
	if max == min {
		max = min + 1
	}
	return s.lo + (x-min)/(max-min)*(s.hi-s.lo)
}

// niceTicks produces ~n round tick values covering [min, max].
func niceTicks(min, max float64, n int) []float64 {
	if max <= min {
		return []float64{min}
	}
	raw := (max - min) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var ticks []float64
	for v := math.Ceil(min/step) * step; v <= max+step/1e6; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// formatTick renders a tick value compactly.
func formatTick(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 1e6 || a < 1e-3:
		return fmt.Sprintf("%.1e", v)
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	case a >= 1:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// RenderLine renders the line chart as a complete SVG document.
func (l Line) RenderLine() string {
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range l.Series {
		for i := range s.X {
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	for _, h := range l.HLines {
		ymin = math.Min(ymin, h)
		ymax = math.Max(ymax, h)
	}
	if first {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if pad := (ymax - ymin) * 0.06; pad > 0 {
		ymin -= pad
		ymax += pad
	} else {
		ymin--
		ymax++
	}

	xs := scale{min: xmin, max: xmax, lo: marginL, hi: width - marginR, log: l.LogX}
	ys := scale{min: ymin, max: ymax, lo: height - marginB, hi: marginT}

	var b strings.Builder
	header(&b, l.Title)

	// Shaded bands first, beneath everything.
	for _, band := range l.VBands {
		x0, x1 := xs.at(band[0]), xs.at(band[1])
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="#fce9a9" opacity="0.6"/>`+"\n",
			x0, marginT, x1-x0, height-marginT-marginB)
	}
	axes(&b, xs, ys, l.XLabel, l.YLabel, l.LogX)
	for _, h := range l.HLines {
		y := ys.at(h)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#c33" stroke-dasharray="6 3"/>`+"\n",
			marginL, y, width-marginR, y)
	}
	for i, s := range l.Series {
		color := palette[i%len(palette)]
		var pts []string
		for j := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xs.at(s.X[j]), ys.at(s.Y[j])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
			strings.Join(pts, " "), color)
		// Legend entry.
		lx, ly := marginL+12, marginT+16*(i+1)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly-4, lx+22, ly-4, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n", lx+28, ly, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// RenderBar renders the bar chart as a complete SVG document.
func (bc Bar) RenderBar() string {
	ymin, ymax := 0.0, 1.0
	for _, v := range bc.Values {
		ymax = math.Max(ymax, v)
	}
	if bc.Baseline > 0 {
		ymin = math.Max(0, bc.Baseline-0.1*(ymax-bc.Baseline+0.01))
	}
	ymax += (ymax - ymin) * 0.08

	ys := scale{min: ymin, max: ymax, lo: height - marginB, hi: marginT}
	n := len(bc.Values)
	if n == 0 {
		n = 1
	}
	slot := float64(width-marginL-marginR) / float64(n)

	var b strings.Builder
	header(&b, bc.Title)
	axes(&b, scale{min: 0, max: 1, lo: marginL, hi: width - marginR}, ys, "", bc.YLabel, false)
	if bc.Baseline != 0 {
		y := ys.at(bc.Baseline)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#555" stroke-dasharray="5 3"/>`+"\n",
			marginL, y, width-marginR, y)
	}
	for i, v := range bc.Values {
		x := float64(marginL) + slot*float64(i) + slot*0.15
		w := slot * 0.7
		y := ys.at(v)
		base := ys.at(math.Max(ymin, bc.Baseline))
		if bc.Baseline == 0 {
			base = ys.at(ymin)
		}
		h := base - y
		if h < 0 {
			y, h = base, -h
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
			x, y, w, h, palette[i%len(palette)])
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%.3f</text>`+"\n",
			x+w/2, y-4, v)
		if i < len(bc.Labels) {
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
				x+w/2, height-marginB+16, esc(bc.Labels[i]))
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// header opens the SVG document and draws the title.
func header(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(b, `<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, esc(title))
}

// axes draws the frame, ticks and labels.
func axes(b *strings.Builder, xs, ys scale, xlabel, ylabel string, logX bool) {
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#333"/>`+"\n",
		marginL, marginT, width-marginL-marginR, height-marginT-marginB)
	// Y ticks.
	for _, v := range niceTicks(ys.min, ys.max, 6) {
		y := ys.at(v)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, width-marginR, y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+4, formatTick(v))
	}
	// X ticks (skip for bar charts, which pass a unit scale and no label).
	if xlabel != "" {
		ticks := niceTicks(xs.min, xs.max, 8)
		if logX {
			ticks = nil
			for d := math.Floor(math.Log10(xs.min)); d <= math.Ceil(math.Log10(xs.max)); d++ {
				v := math.Pow(10, d)
				if v >= xs.min && v <= xs.max {
					ticks = append(ticks, v)
				}
			}
		}
		for _, v := range ticks {
			x := xs.at(v)
			fmt.Fprintf(b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#999"/>`+"\n",
				x, height-marginB, x, height-marginB+5)
			fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
				x, height-marginB+18, formatTick(v))
		}
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
			(marginL+width-marginR)/2, height-12, esc(xlabel))
	}
	if ylabel != "" {
		fmt.Fprintf(b, `<text x="16" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			(marginT+height-marginB)/2, (marginT+height-marginB)/2, esc(ylabel))
	}
}
