package plot

import (
	"math"
	"strings"
	"testing"
)

func sine(n int) Series {
	s := Series{Name: "sine"}
	for i := 0; i < n; i++ {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, math.Sin(float64(i)/10))
	}
	return s
}

func TestLineChartWellFormed(t *testing.T) {
	l := Line{
		Title:  "Test <chart> & things",
		XLabel: "cycle",
		YLabel: "mV",
		Series: []Series{sine(200), {Name: "flat", X: []float64{0, 199}, Y: []float64{0.5, 0.5}}},
		HLines: []float64{0.9, -0.9},
		VBands: [][2]float64{{40, 80}},
	}
	svg := l.RenderLine()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "Test &lt;chart&gt; &amp; things",
		"sine", "flat", "stroke-dasharray", "<rect",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("want 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
	// No raw NaN/Inf coordinates.
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(svg, bad) {
			t.Errorf("SVG contains %s", bad)
		}
	}
}

func TestLineChartLogX(t *testing.T) {
	s := Series{Name: "z"}
	for f := 1e6; f <= 1e9; f *= 1.3 {
		s.X = append(s.X, f)
		s.Y = append(s.Y, 1/f)
	}
	l := Line{Title: "log", XLabel: "Hz", YLabel: "ohm", Series: []Series{s}, LogX: true}
	svg := l.RenderLine()
	// Decade ticks appear.
	if !strings.Contains(svg, "1e+06") && !strings.Contains(svg, "1.0e+06") {
		t.Errorf("log decade ticks missing:\n%.300s", svg)
	}
}

func TestEmptyLineChartStillRenders(t *testing.T) {
	svg := Line{Title: "empty"}.RenderLine()
	if !strings.Contains(svg, "</svg>") {
		t.Error("unterminated SVG")
	}
}

func TestBarChartWellFormed(t *testing.T) {
	b := Bar{
		Title:    "Energy-delay",
		YLabel:   "relative",
		Labels:   []string{"A", "B", "C"},
		Values:   []float64{1.032, 1.127, 1.638},
		Baseline: 1,
	}
	svg := b.RenderBar()
	if strings.Count(svg, "<rect") < 4 { // background + frame + 3 bars... at least bars
		t.Errorf("too few rects:\n%.200s", svg)
	}
	for _, want := range []string{"1.032", "1.127", "1.638", "A", "B", "C", "relative"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestBarChartEmpty(t *testing.T) {
	svg := Bar{Title: "none"}.RenderBar()
	if !strings.Contains(svg, "</svg>") {
		t.Error("unterminated SVG")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 10, 5)
	if len(ticks) < 3 || ticks[0] != 0 {
		t.Errorf("ticks %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Errorf("ticks not increasing: %v", ticks)
		}
	}
	if got := niceTicks(5, 5, 4); len(got) != 1 {
		t.Errorf("degenerate range ticks %v", got)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:    "0",
		150:  "150",
		2.5:  "2.5",
		1e-4: "1.0e-04",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestScale(t *testing.T) {
	s := scale{min: 0, max: 10, lo: 100, hi: 200}
	if got := s.at(5); math.Abs(got-150) > 1e-9 {
		t.Errorf("linear midpoint %g", got)
	}
	ls := scale{min: 1, max: 100, lo: 0, hi: 100, log: true}
	if got := ls.at(10); math.Abs(got-50) > 1e-9 {
		t.Errorf("log midpoint %g", got)
	}
}
