package sim

import "math"

// ViolationReport describes one noise-margin violation burst and the
// context around it — the per-violation version of the Figure 4 analysis.
type ViolationReport struct {
	// StartCycle and EndCycle bound the burst (consecutive cycles whose
	// |deviation| exceeds the margin, merged across gaps shorter than a
	// quarter period).
	StartCycle, EndCycle uint64
	// PeakDeviationV is the largest |deviation| inside the burst.
	PeakDeviationV float64
	// WarningLeadCycles is how many cycles before the burst the
	// resonant event count first reached the warning level within the
	// lookback window, or -1 if it never did (a violation faster than
	// detection).
	WarningLeadCycles int
	// ResponseLevelAtStart is the technique's response level when the
	// burst began (0 = none: the response lost the race).
	ResponseLevelAtStart int
	// SwingAmps is the peak-to-peak current swing over the lookback
	// window preceding the burst.
	SwingAmps float64
}

// Postmortem collects ViolationReports from a per-cycle trace. Install
// its Observe as (or inside) the simulator's trace callback.
type Postmortem struct {
	marginV      float64
	warningLevel int
	lookback     int
	mergeGap     int

	// history ring of the last lookback points.
	hist []TracePoint
	pos  int
	n    int

	inBurst  bool
	current  ViolationReport
	lastWarn int64 // absolute cycle of the last count >= warningLevel, -1 none
	lastViol int64

	reports []ViolationReport
}

// NewPostmortem returns an analyser. marginV is the violation threshold in
// volts; warningLevel is the resonant event count treated as advance
// warning (2 in the paper); lookback bounds how far back warnings and
// current swings are attributed (use a few resonant periods).
func NewPostmortem(marginV float64, warningLevel, lookback int) *Postmortem {
	if lookback < 8 {
		lookback = 8
	}
	return &Postmortem{
		marginV:      marginV,
		warningLevel: warningLevel,
		lookback:     lookback,
		mergeGap:     lookback / 10,
		hist:         make([]TracePoint, lookback),
		lastWarn:     -1,
		lastViol:     -1 << 40,
	}
}

// Observe consumes one trace point. Call once per cycle in order.
func (p *Postmortem) Observe(tp TracePoint) {
	p.hist[p.pos] = tp
	p.pos = (p.pos + 1) % p.lookback
	if p.n < p.lookback {
		p.n++
	}
	if tp.EventCount >= p.warningLevel {
		p.lastWarn = int64(tp.Cycle)
	}

	violating := math.Abs(tp.DeviationVolts) > p.marginV
	switch {
	case violating && !p.inBurst:
		// A short gap since the previous burst is the same event.
		if len(p.reports) > 0 && int64(tp.Cycle)-p.lastViol <= int64(p.mergeGap) {
			p.current = p.reports[len(p.reports)-1]
			p.reports = p.reports[:len(p.reports)-1]
		} else {
			p.current = ViolationReport{
				StartCycle:           tp.Cycle,
				WarningLeadCycles:    -1,
				ResponseLevelAtStart: tp.ResponseLevel,
				SwingAmps:            p.swing(),
			}
			if p.lastWarn >= 0 && int64(tp.Cycle)-p.lastWarn <= int64(p.lookback) {
				p.current.WarningLeadCycles = int(int64(tp.Cycle) - p.lastWarn)
			}
		}
		p.inBurst = true
		fallthrough
	case violating:
		p.current.EndCycle = tp.Cycle
		if a := math.Abs(tp.DeviationVolts); a > p.current.PeakDeviationV {
			p.current.PeakDeviationV = a
		}
		p.lastViol = int64(tp.Cycle)
	case p.inBurst:
		p.inBurst = false
		p.reports = append(p.reports, p.current)
	}
}

// swing returns the current peak-to-peak over the history window.
func (p *Postmortem) swing() float64 {
	if p.n == 0 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < p.n; i++ {
		a := p.hist[i].TotalAmps
		lo = math.Min(lo, a)
		hi = math.Max(hi, a)
	}
	return hi - lo
}

// Reports returns the bursts collected so far (an open burst is included
// with its running extent).
func (p *Postmortem) Reports() []ViolationReport {
	out := append([]ViolationReport(nil), p.reports...)
	if p.inBurst {
		out = append(out, p.current)
	}
	return out
}

// Summary condenses the reports: burst count, mean warning lead among
// warned bursts, and how many bursts arrived with no warning at all.
func (p *Postmortem) Summary() (bursts int, meanLead float64, unwarned int) {
	reps := p.Reports()
	bursts = len(reps)
	warned := 0
	for _, r := range reps {
		if r.WarningLeadCycles >= 0 {
			meanLead += float64(r.WarningLeadCycles)
			warned++
		} else {
			unwarned++
		}
	}
	if warned > 0 {
		meanLead /= float64(warned)
	}
	return bursts, meanLead, unwarned
}
