package sim

import (
	"math"
	"testing"

	"repro/internal/baselines/damping"
	"repro/internal/baselines/voltctl"
	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/tuning"
	"repro/internal/workload"
)

func table1Tuning() tuning.Config {
	return tuning.Config{
		Detector: tuning.DetectorConfig{
			HalfPeriodLo: 42, HalfPeriodHi: 60,
			ThresholdAmps: 32, MaxRepetitionTolerance: 4,
		},
		InitialResponseThreshold: 2,
		SecondResponseThreshold:  3,
		InitialResponseCycles:    100,
		SecondResponseCycles:     35,
		ReducedIssueWidth:        4,
		ReducedCachePorts:        1,
		PhantomTargetAmps:        70,
	}
}

func runApp(t *testing.T, name string, insts uint64, tech Technique) Result {
	t.Helper()
	app, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewGenerator(app.Params, insts)
	s, err := New(DefaultConfig(), g, tech)
	if err != nil {
		t.Fatal(err)
	}
	techName := "base"
	if tech != nil {
		techName = tech.Name()
	}
	return s.Run(name, techName)
}

func TestBaseRunProducesSaneResult(t *testing.T) {
	r := runApp(t, "parser", 100_000, nil)
	if r.Instructions != 100_000 {
		t.Errorf("instructions %d, want 100000", r.Instructions)
	}
	if r.IPC < 1.0 || r.IPC > 3.0 {
		t.Errorf("parser IPC %.2f far from Table 2's 1.71", r.IPC)
	}
	if r.MinAmps < 34.9 || r.MaxAmps > 105.1 {
		t.Errorf("current range [%.1f, %.1f] outside the 35-105 A envelope", r.MinAmps, r.MaxAmps)
	}
	if r.EnergyJ <= 0 {
		t.Error("no energy accounted")
	}
	if r.PhantomJ != 0 {
		t.Error("base run should use no phantom energy")
	}
	if r.EnergyDelay(10e9) <= 0 {
		t.Error("energy-delay must be positive")
	}
}

func TestNonViolatingAppStaysClean(t *testing.T) {
	r := runApp(t, "twolf", 150_000, nil)
	if r.Violations != 0 {
		t.Errorf("twolf produced %d violations on the base machine", r.Violations)
	}
}

func TestResonanceTuningPreventsViolations(t *testing.T) {
	// lucas is the heaviest violator; tuning must remove (almost) all
	// of its violations at a modest performance cost.
	base := runApp(t, "lucas", 400_000, nil)
	if base.Violations == 0 {
		t.Fatal("base lucas run shows no violations to prevent")
	}
	tuned := runApp(t, "lucas", 400_000, NewResonanceTuning(table1Tuning()))
	if tuned.Violations > base.Violations/10 {
		t.Errorf("tuning left %d of %d violations", tuned.Violations, base.Violations)
	}
	slowdown := float64(tuned.Cycles) / float64(base.Cycles)
	if slowdown > 1.35 {
		t.Errorf("tuning slowdown %.2f on lucas, want moderate", slowdown)
	}
	if slowdown < 1.0 {
		t.Errorf("tuning speedup %.2f is impossible", slowdown)
	}
}

func TestTuningIdlesOnQuietApp(t *testing.T) {
	tech := NewResonanceTuning(table1Tuning())
	base := runApp(t, "perlbmk", 150_000, nil)
	tuned := runApp(t, "perlbmk", 150_000, tech)
	slowdown := float64(tuned.Cycles) / float64(base.Cycles)
	if slowdown > 1.05 {
		t.Errorf("tuning slows a quiet app by %.1f%%", (slowdown-1)*100)
	}
	st := tech.Stats()
	if st.SecondLevelFraction() > 0.01 {
		t.Errorf("second-level response active %.3f of cycles on a quiet app", st.SecondLevelFraction())
	}
}

func TestVoltageControlRespondsToViolatingApp(t *testing.T) {
	cfg := voltctl.Config{TargetThresholdVolts: 0.020, Seed: 1}
	tech := NewVoltageControl(cfg, 30)
	r := runApp(t, "lucas", 400_000, tech)
	if tech.Stats().ResponseCycles == 0 {
		t.Error("voltage control never responded on lucas")
	}
	base := runApp(t, "lucas", 400_000, nil)
	if r.Violations > base.Violations {
		t.Errorf("voltage control increased violations %d → %d", base.Violations, r.Violations)
	}
}

func TestDampingConstrainsIssue(t *testing.T) {
	tech := NewDamping(damping.Config{WindowCycles: 50, DeltaAmps: 8})
	r := runApp(t, "bzip", 200_000, tech)
	base := runApp(t, "bzip", 200_000, nil)
	if tech.Stats().ConstrainedCyc == 0 {
		t.Error("δ=8 damping never constrained bzip")
	}
	if r.Cycles <= base.Cycles {
		t.Error("damping with tight δ should slow the machine down")
	}
}

func TestTraceCapture(t *testing.T) {
	app, _ := workload.ByName("swim")
	g := workload.NewGenerator(app.Params, 20_000)
	tech := NewResonanceTuning(table1Tuning())
	s, err := New(DefaultConfig(), g, tech)
	if err != nil {
		t.Fatal(err)
	}
	var pts []TracePoint
	s.SetTrace(func(tp TracePoint) { pts = append(pts, tp) }, tech.EventCount, tech.Level)
	res := s.Run("swim", tech.Name())
	if uint64(len(pts)) != res.Cycles {
		t.Fatalf("trace length %d, cycles %d", len(pts), res.Cycles)
	}
	for i, tp := range pts {
		if tp.Cycle != uint64(i) {
			t.Fatalf("trace cycle %d out of order", i)
		}
		if tp.TotalAmps < 34 || tp.TotalAmps > 106 {
			t.Fatalf("trace current %g out of range", tp.TotalAmps)
		}
	}
}

func TestPhantomTargetTopsUp(t *testing.T) {
	// Force the second-level response with a synthetic technique and
	// verify the current is held at the target.
	app, _ := workload.ByName("gzip")
	g := workload.NewGenerator(app.Params, 10_000)
	tech := &forceStall{target: 70}
	s, err := New(DefaultConfig(), g, tech)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s.StepCycle()
	}
	// After the pipeline drains under stall, current must sit at the
	// phantom target exactly.
	last := tech.lastTotal
	if math.Abs(last-70) > 0.5 {
		t.Errorf("stalled current %.2f, want held at 70", last)
	}
}

type forceStall struct {
	target    float64
	lastTotal float64
}

func (f *forceStall) Name() string { return "force-stall" }
func (f *forceStall) Next() (cpu.Throttle, Phantom) {
	return cpu.Throttle{StallIssue: true, StallFetch: true, IssueCurrentBudget: -1},
		Phantom{TargetAmps: f.target}
}
func (f *forceStall) Observe(obs *Observation) { f.lastTotal = obs.TotalAmps }

func TestNewRejectsInvalidConfigs(t *testing.T) {
	src := cpu.NewSliceSource(nil)
	bad := DefaultConfig()
	bad.CPU.ROBSize = 0
	if _, err := New(bad, src, nil); err == nil {
		t.Error("invalid CPU config accepted")
	}
	bad = DefaultConfig()
	bad.Power.Vdd = 0
	if _, err := New(bad, src, nil); err == nil {
		t.Error("invalid power config accepted")
	}
	bad = DefaultConfig()
	bad.Supply.C = 0
	if _, err := New(bad, src, nil); err == nil {
		t.Error("invalid supply config accepted")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 500
	app, _ := workload.ByName("mcf")
	g := workload.NewGenerator(app.Params, 1_000_000)
	s, err := New(cfg, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run("mcf", "base")
	if r.Cycles != 500 {
		t.Errorf("ran %d cycles, want capped at 500", r.Cycles)
	}
}

func TestSensorDelayPlumbed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SensorDelayCycles = 5
	app, _ := workload.ByName("swim")
	g := workload.NewGenerator(app.Params, 50_000)
	tech := NewResonanceTuning(table1Tuning())
	s, err := New(cfg, g, tech)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run("swim", tech.Name())
	if r.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
}

func TestEnergyDelayConsistency(t *testing.T) {
	r := Result{EnergyJ: 2, Cycles: 1000}
	want := 2.0 * 1000 / 10e9
	if got := r.EnergyDelay(10e9); math.Abs(got-want) > 1e-18 {
		t.Errorf("EnergyDelay = %g, want %g", got, want)
	}
}

func TestTechniqueNames(t *testing.T) {
	if NewResonanceTuning(table1Tuning()).Name() != "resonance-tuning" {
		t.Error("tuning name")
	}
	if NewVoltageControl(voltctl.Config{TargetThresholdVolts: 0.03}, 30).Name() != "voltage-control" {
		t.Error("voltctl name")
	}
	if NewDamping(damping.Config{WindowCycles: 50, DeltaAmps: 32}).Name() != "pipeline-damping" {
		t.Error("damping name")
	}
}

func TestDefaultConfigIsTable1(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Supply != circuit.Table1() {
		t.Error("default supply is not Table 1")
	}
	if cfg.CPU != cpu.DefaultConfig() {
		t.Error("default CPU is not Table 1")
	}
}
