package sim

// Machine.Fork's bit-identity contract: fork at any cycle, step the
// original and the clone to completion under identical (throttle,
// phantom) sequences, and both must produce identical per-cycle
// Observations (with the Activity buffer) and final Results — and the
// fork must not perturb the original, which is why the checks run the
// two machines interleaved against an undisturbed reference run. The
// deterministic matrix covers both supply models, sensor delay and
// quantisation, and the live RNG-driven generator source; the fuzz
// target randomizes seed, fork cycle, and configuration.

import (
	"fmt"
	"testing"

	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/workload"
)

// forkMaxDomains bounds the flattened per-domain view; configs in this
// file stay within it.
const forkMaxDomains = 4

// forkObs is one cycle's Observation flattened for value comparison:
// the buffer pointers (Activity, PerDomain) are replaced with value
// copies so == compares the cycle's data, not buffer identity.
type forkObs struct {
	obs    Observation
	act    cpu.Activity
	nd     int
	sensed [forkMaxDomains]float64
	amps   [forkMaxDomains]float64
	devs   [forkMaxDomains]float64
}

func flatObs(o *Observation) forkObs {
	rec := forkObs{obs: *o, act: *o.Activity}
	rec.obs.Activity = nil
	if pd := o.PerDomain; pd != nil {
		rec.obs.PerDomain = nil
		rec.nd = len(pd.SensedAmps)
		copy(rec.sensed[:], pd.SensedAmps)
		copy(rec.amps[:], pd.Amps)
		copy(rec.devs[:], pd.DeviationVolts)
	}
	return rec
}

// forkSchedule is a pure function of the cycle number, so every machine
// in a comparison sees the same control inputs: a periodic throttle
// phase and an occasional phantom firing, enough to exercise the issue
// logic, the phantom energy accounting, and the supply under different
// waveforms.
func forkSchedule(cycle uint64) (cpu.Throttle, Phantom) {
	th := cpu.Unlimited
	if cycle/64%2 == 1 {
		th = cpu.Throttle{IssueWidth: 4, CachePorts: 1, IssueCurrentBudget: -1}
	}
	var ph Phantom
	if cycle%97 == 13 {
		ph.FireAmps = 20
	}
	return th, ph
}

// forkCase builds one machine over the given config and generator seed.
func forkMachine(t testing.TB, cfg Config, seed uint64, insts uint64) *Machine {
	t.Helper()
	app, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	p := app.Params
	p.Seed = seed
	m, err := NewMachine(cfg, workload.NewGenerator(p, insts))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runForkContract runs the contract for one (config, seed, forkCycle)
// point: a reference machine records the undisturbed stream; a second
// machine forks at forkCycle, and the pair then advances interleaved —
// one cycle each, so any state secretly shared between them corrupts at
// least one stream — with every cycle compared against the reference.
func runForkContract(t testing.TB, cfg Config, seed, forkCycle, insts uint64) {
	t.Helper()

	ref := forkMachine(t, cfg, seed, insts)
	var refRecs []forkObs
	limit := ref.CycleLimit()
	for !ref.Done() && ref.Cycles() < limit {
		th, ph := forkSchedule(ref.Cycles())
		refRecs = append(refRecs, flatObs(ref.Step(th, ph)))
	}
	refRes := ref.Result("swim", "forktest")

	m := forkMachine(t, cfg, seed, insts)
	for m.Cycles() < forkCycle && !m.Done() && m.Cycles() < limit {
		th, ph := forkSchedule(m.Cycles())
		got := flatObs(m.Step(th, ph))
		if want := refRecs[got.obs.Cycle]; got != want {
			t.Fatalf("pre-fork cycle %d: %+v != reference %+v", got.obs.Cycle, got, want)
		}
	}
	f, err := m.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if f.Cycles() != m.Cycles() {
		t.Fatalf("fork at cycle %d reports %d", m.Cycles(), f.Cycles())
	}

	step := func(mm *Machine, label string) {
		if mm.Done() || mm.Cycles() >= limit {
			return
		}
		th, ph := forkSchedule(mm.Cycles())
		got := flatObs(mm.Step(th, ph))
		if int(got.obs.Cycle) >= len(refRecs) {
			t.Fatalf("%s: cycle %d past reference end (%d)", label, got.obs.Cycle, len(refRecs))
		}
		if want := refRecs[got.obs.Cycle]; got != want {
			t.Fatalf("%s: cycle %d: %+v != reference %+v", label, got.obs.Cycle, got, want)
		}
	}
	for (!m.Done() && m.Cycles() < limit) || (!f.Done() && f.Cycles() < limit) {
		step(m, "original")
		step(f, "fork")
	}

	if mRes := m.Result("swim", "forktest"); mRes != refRes {
		t.Fatalf("original result %+v != reference %+v", mRes, refRes)
	}
	if fRes := f.Result("swim", "forktest"); fRes != refRes {
		t.Fatalf("fork result %+v != reference %+v", fRes, refRes)
	}
}

// forkConfigs is the deterministic configuration matrix: the default
// single-stage supply, the two-stage supply with a delayed sensor (the
// sensor history must travel with the fork), a quantised capped run, and
// the two-domain PDN with delayed per-rail sensors (the network state,
// per-domain power rings, and sensor bank must all travel with the
// fork).
func forkConfigs() map[string]Config {
	twoStage := DefaultConfig()
	ts := circuit.Table1TwoStage()
	twoStage.TwoStageSupply = &ts
	twoStage.SensorDelayCycles = 3
	quantized := DefaultConfig()
	quantized.SensorResolutionAmps = 2
	quantized.MaxCycles = 2500
	multi := DefaultConfig()
	multi.PDN = &circuit.NetworkConfig{Kind: circuit.NetworkMultiDomain}
	multi.SensorDelayCycles = 2
	multi.MaxCycles = 2500
	return map[string]Config{
		"default":            DefaultConfig(),
		"twostage-delay3":    twoStage,
		"quantized":          quantized,
		"multidomain-delay2": multi,
	}
}

func TestMachineForkBitIdentical(t *testing.T) {
	for name, cfg := range forkConfigs() {
		for _, forkCycle := range []uint64{0, 1, 127, 1000} {
			t.Run(fmt.Sprintf("%s/fork%d", name, forkCycle), func(t *testing.T) {
				runForkContract(t, cfg, 42, forkCycle, 4000)
			})
		}
	}
}

// TestMachineForkOfFork chains forks: a fork must itself be forkable
// with the same contract, since the batch kernel re-splits cohorts that
// already live on forked machines.
func TestMachineForkOfFork(t *testing.T) {
	ref := forkMachine(t, DefaultConfig(), 7, 4000)
	var refRecs []forkObs
	limit := ref.CycleLimit()
	for !ref.Done() && ref.Cycles() < limit {
		th, ph := forkSchedule(ref.Cycles())
		refRecs = append(refRecs, flatObs(ref.Step(th, ph)))
	}

	m := forkMachine(t, DefaultConfig(), 7, 4000)
	machines := []*Machine{m}
	for !allDone(machines, limit) {
		for _, mm := range machines {
			if mm.Done() || mm.Cycles() >= limit {
				continue
			}
			th, ph := forkSchedule(mm.Cycles())
			got := flatObs(mm.Step(th, ph))
			if want := refRecs[got.obs.Cycle]; got != want {
				t.Fatalf("cycle %d: %+v != reference %+v", got.obs.Cycle, got, want)
			}
		}
		// Fork the newest machine at a few depths: original at 100,
		// fork-of-original at 200, fork-of-fork at 300.
		if n := len(machines); n < 4 && machines[n-1].Cycles() >= uint64(n*100) {
			f, err := machines[n-1].Fork()
			if err != nil {
				t.Fatal(err)
			}
			machines = append(machines, f)
		}
	}
	if len(machines) != 4 {
		t.Fatalf("chained %d machines, want 4", len(machines))
	}
}

func allDone(ms []*Machine, limit uint64) bool {
	for _, m := range ms {
		if !m.Done() && m.Cycles() < limit {
			return false
		}
	}
	return true
}

// FuzzMachineFork randomizes the seed, the fork cycle, and the system
// configuration, and requires the full bit-identity contract at every
// point.
func FuzzMachineFork(f *testing.F) {
	f.Add(uint64(1), uint64(50), false, uint8(0), false, false)
	f.Add(uint64(424242), uint64(0), true, uint8(2), true, false)
	f.Add(uint64(7), uint64(2000), true, uint8(5), false, false)
	f.Add(uint64(99), uint64(313), false, uint8(1), true, false)
	f.Add(uint64(11), uint64(500), false, uint8(3), false, true)
	f.Add(uint64(271828), uint64(64), false, uint8(0), true, true)
	f.Fuzz(func(t *testing.T, seed, forkCycle uint64, twoStage bool, delay uint8, quantize, multiDomain bool) {
		cfg := DefaultConfig()
		switch {
		case multiDomain:
			cfg.PDN = &circuit.NetworkConfig{Kind: circuit.NetworkMultiDomain}
			cfg.SensorDomain = int(delay % 3) // 0 aggregate, 1-2 a rail
		case twoStage:
			ts := circuit.Table1TwoStage()
			cfg.TwoStageSupply = &ts
		}
		cfg.SensorDelayCycles = int(delay % 8)
		if quantize {
			cfg.SensorResolutionAmps = 2
		}
		cfg.MaxCycles = 3000
		runForkContract(t, cfg, seed, forkCycle%3000, 4000)
	})
}
