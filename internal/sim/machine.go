package sim

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/power"
	"repro/internal/sensor"
)

// Machine is the technique-independent half of a simulation: the pipeline
// model, the power model, the supply circuit, and the current sensor,
// advanced together one cycle at a time. Step applies a throttle and a
// phantom request (whoever decides them — a Technique via Simulator, or a
// batch kernel's leader lane) and returns the cycle's Observation.
//
// Machine exists so the scalar Simulator and the lockstep batch kernel
// (internal/engine/batchkernel) share one copy of the per-cycle
// arithmetic: every operation in Step is performed in the same order as
// the original Simulator.StepCycle, so results are bit-identical to the
// pre-split loop (pinned by the kernel's differential harness).
type Machine struct {
	cfg  Config
	core *cpu.Core
	pwr  *power.Model
	net  circuit.Network
	sens *sensor.Current

	classAmps [cpu.NumClasses]float64
	// margin caches the supply's noise margin so the per-cycle violation
	// check is a compare, not an interface call; resolution caches the
	// sensor quantisation step for the undelayed fast path (sens is only
	// instantiated when a reading delay makes real history necessary).
	margin     float64
	resolution float64

	// draws and devs are the per-domain buffers handed to net.Step; on a
	// single-domain machine they have length one and the legacy scalar
	// arithmetic flows through them unchanged.
	draws []float64
	devs  []float64

	// Multi-domain state, populated only when the PDN exposes more than
	// one domain (nd > 1).
	nd           int
	sensorDomain int
	domJ         []float64 // per-domain cycle energies from StepDomains
	domShare     []float64 // per-domain phantom split weights
	margins      []float64 // per-domain noise margins
	bank         *sensor.Bank
	domObs       DomainObservation // reused buffers behind obs.PerDomain
	domViol      []uint64
	domPeak      []float64
	domSumAmps   []float64

	act cpu.Activity // per-cycle activity buffer, reused to avoid copies
	obs Observation  // per-cycle observation buffer, reused likewise

	phantomJ  float64
	violation uint64
	peakDev   float64
	sumAmps   float64
	minAmps   float64
	maxAmps   float64
	cycles    uint64
}

// NewMachine builds the simulated system for the given configuration and
// instruction source.
func NewMachine(cfg Config, src cpu.Source) (*Machine, error) {
	if err := cfg.CPU.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := cfg.Power.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if cfg.PDN == nil {
		if err := cfg.Supply.Validate(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if cfg.TwoStageSupply != nil {
			if err := cfg.TwoStageSupply.Validate(); err != nil {
				return nil, fmt.Errorf("sim: %w", err)
			}
		}
	}
	pwr := power.New(cfg.Power, cfg.CPU)
	core := cpu.New(cfg.CPU, src)
	core.SetClassCurrentEstimates(pwr.ClassAmps())
	resolution := 1.0 // the paper's whole-amp sensors
	switch {
	case cfg.SensorResolutionAmps > 0:
		resolution = cfg.SensorResolutionAmps
	case cfg.SensorResolutionAmps < 0:
		resolution = 0 // exact
	}
	var sens *sensor.Current
	if cfg.SensorDelayCycles > 0 {
		sens = sensor.NewCurrentDelayed(cfg.SensorDelayCycles)
		sens.ResolutionAmps = resolution
	}

	m := &Machine{
		cfg:        cfg,
		core:       core,
		pwr:        pwr,
		sens:       sens,
		classAmps:  pwr.ClassAmps(),
		resolution: resolution,
		minAmps:    math.Inf(1),
		maxAmps:    math.Inf(-1),
	}
	if err := m.buildNetwork(); err != nil {
		return nil, err
	}
	return m, nil
}

// buildNetwork constructs the machine's PDN. Without a Config.PDN the
// legacy Supply/TwoStageSupply fields pick the scalar simulator, wrapped
// as a one-domain Network whose Step performs the identical arithmetic.
// With one, the network registry resolves the kind; a multi-domain kind
// additionally splits the power model per-domain (from the domains'
// PowerUnits lists) and instantiates per-rail sensors.
func (m *Machine) buildNetwork() error {
	cfg := m.cfg
	if cfg.PDN == nil {
		if cfg.TwoStageSupply != nil {
			m.net = circuit.WrapTwoStage(circuit.NewTwoStageSimulator(*cfg.TwoStageSupply, m.pwr.IdleAmps()))
			m.margin = cfg.TwoStageSupply.NoiseMarginVolts()
		} else {
			m.net = circuit.WrapSimulator(circuit.NewSimulator(cfg.Supply, m.pwr.IdleAmps()))
			m.margin = cfg.Supply.NoiseMarginVolts()
		}
		m.nd = 1
		m.draws = make([]float64, 1)
		m.devs = make([]float64, 1)
		return nil
	}

	ncfg, err := cfg.PDN.Normalized()
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := ncfg.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	nd := ncfg.DomainCount()
	if cfg.SensorDomain < 0 || cfg.SensorDomain > nd {
		return fmt.Errorf("sim: sensor domain %d out of range for a %d-domain PDN", cfg.SensorDomain, nd)
	}
	i0 := make([]float64, nd)
	if nd > 1 {
		lists := make([][]string, nd)
		for d, dp := range ncfg.MultiDomain.Domains {
			lists[d] = dp.PowerUnits
		}
		assign, err := power.AssignmentFromNames(lists)
		if err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		m.pwr.EnableDomains(nd, assign)
		for d := range i0 {
			i0[d] = m.pwr.DomainIdleAmps(d)
		}
	} else {
		i0[0] = m.pwr.IdleAmps()
	}
	net, err := circuit.BuildNetwork(ncfg, i0)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	m.net = net
	m.nd = nd
	m.margin = net.DomainInfo(0).NoiseMarginVolts
	m.draws = make([]float64, nd)
	m.devs = make([]float64, nd)
	if nd > 1 {
		m.sensorDomain = cfg.SensorDomain
		m.domJ = make([]float64, nd)
		m.domShare = make([]float64, nd)
		m.margins = make([]float64, nd)
		for d := 0; d < nd; d++ {
			m.domShare[d] = m.pwr.DomainShare(d)
			m.margins[d] = net.DomainInfo(d).NoiseMarginVolts
		}
		m.bank = sensor.NewBank(nd, m.resolution, cfg.SensorDelayCycles)
		m.domObs = DomainObservation{
			SensedAmps:     make([]float64, nd),
			Amps:           make([]float64, nd),
			DeviationVolts: make([]float64, nd),
		}
		m.domViol = make([]uint64, nd)
		m.domPeak = make([]float64, nd)
		m.domSumAmps = make([]float64, nd)
	}
	return nil
}

// Fork returns a deep copy of the machine with a hard bit-identity
// contract: fork at any cycle, then step the original and the clone to
// completion with identical (throttle, phantom) sequences, and both
// produce identical per-cycle Observations (including the Activity
// buffer), trace-relevant values, and final Results. Every piece of
// mutable state is duplicated — core scheduler (ROB, wakeup lists,
// timing wheel, ready bitmap, fetch queue), instruction-source cursor
// (including generator RNG state), power model (spreading ring, memo,
// accumulators), supply circuit, sensor history, and the machine's own
// statistics counters — so the two machines share nothing written after
// the fork. The batch kernel uses this to resume diverged lanes from
// their observed prefix instead of re-running them from cycle zero;
// FuzzMachineFork and the kernel differential harness pin the contract.
//
// Fork fails when the instruction source cannot be forked (a source not
// implementing cpu.ForkableSource); callers fall back to a scalar
// re-run in that case.
func (m *Machine) Fork() (*Machine, error) {
	core, err := m.core.Fork()
	if err != nil {
		return nil, fmt.Errorf("sim: fork: %w", err)
	}
	f := *m
	f.core = core
	f.pwr = m.pwr.Fork()
	f.net = m.net.Fork()
	if m.sens != nil {
		f.sens = m.sens.Fork()
	}
	f.draws = append([]float64(nil), m.draws...)
	f.devs = append([]float64(nil), m.devs...)
	if m.nd > 1 {
		f.domJ = append([]float64(nil), m.domJ...)
		f.domShare = append([]float64(nil), m.domShare...)
		f.margins = append([]float64(nil), m.margins...)
		f.bank = m.bank.Fork()
		f.domObs = DomainObservation{
			SensedAmps:     append([]float64(nil), m.domObs.SensedAmps...),
			Amps:           append([]float64(nil), m.domObs.Amps...),
			DeviationVolts: append([]float64(nil), m.domObs.DeviationVolts...),
		}
		f.domViol = append([]uint64(nil), m.domViol...)
		f.domPeak = append([]float64(nil), m.domPeak...)
		f.domSumAmps = append([]float64(nil), m.domSumAmps...)
	}
	// The observation buffer's Activity and PerDomain pointers must aim
	// at the clone's own buffers, not the original's.
	if f.obs.Activity != nil {
		f.obs.Activity = &f.act
	}
	if f.obs.PerDomain != nil {
		f.obs.PerDomain = &f.domObs
	}
	return &f, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Power exposes the power model (for technique setup needing PhantomFire
// or mid-level amps, and for memoization statistics).
func (m *Machine) Power() *power.Model { return m.pwr }

// Core exposes the pipeline model.
func (m *Machine) Core() *cpu.Core { return m.core }

// Done reports whether the instruction stream is exhausted and the
// pipeline has drained.
func (m *Machine) Done() bool { return m.core.Done() }

// Cycles returns the number of cycles stepped so far.
func (m *Machine) Cycles() uint64 { return m.cycles }

// CycleLimit returns the configured MaxCycles bound, substituting the
// generous livelock guard when the configuration leaves it zero.
func (m *Machine) CycleLimit() uint64 {
	if m.cfg.MaxCycles == 0 {
		return 1 << 62
	}
	return m.cfg.MaxCycles
}

// Step advances the whole system one clock cycle under the given throttle
// and phantom request and returns the cycle's Observation. The returned
// pointer aims at a buffer Step reuses every cycle: read it before the
// next Step, copy it to retain it.
//
// On a single-domain machine every operation below happens in the same
// order as the pre-Network loop (net.Step forwards to the identical
// scalar arithmetic), so results are bit-identical to it; multi-domain
// machines take stepMulti.
func (m *Machine) Step(throttle cpu.Throttle, ph Phantom) *Observation {
	if m.nd > 1 {
		return m.stepMulti(throttle, ph)
	}
	act := &m.act
	m.core.StepInto(throttle, act)
	coreJ := m.pwr.Step(act, 0)
	coreAmps := m.pwr.CurrentAmps(coreJ)

	phantomAmps := 0.0
	switch {
	case ph.TargetAmps > 0 && coreAmps < ph.TargetAmps:
		phantomAmps = ph.TargetAmps - coreAmps
	case ph.FireAmps > 0:
		phantomAmps = ph.FireAmps
	}
	if phantomAmps > 0 {
		m.phantomJ += phantomAmps * m.cfg.Power.Vdd / m.cfg.Power.ClockHz
	}
	totalAmps := coreAmps + phantomAmps

	m.draws[0] = totalAmps
	m.net.Step(m.draws, m.devs)
	dev := m.devs[0]
	a := dev
	if a < 0 {
		a = -a
	}
	if a > m.peakDev {
		m.peakDev = a
	}
	if a > m.margin {
		m.violation++
	}

	est := 0.0
	for cl := cpu.Class(0); cl < cpu.NumClasses; cl++ {
		if n := act.Issued[cl]; n > 0 {
			est += float64(n) * m.classAmps[cl]
		}
	}
	var sensed float64
	switch {
	case m.sens != nil:
		sensed = m.sens.Read(totalAmps)
	case m.resolution > 0:
		// Same quantisation arithmetic as sensor.Current.Read, inlined
		// for the undelayed sensor the paper's evaluation uses.
		sensed = math.Round(totalAmps/m.resolution) * m.resolution
	default:
		sensed = totalAmps
	}

	m.sumAmps += totalAmps
	if totalAmps < m.minAmps {
		m.minAmps = totalAmps
	}
	if totalAmps > m.maxAmps {
		m.maxAmps = totalAmps
	}
	m.obs = Observation{
		Cycle:          m.cycles,
		SensedAmps:     sensed,
		TotalAmps:      totalAmps,
		DeviationVolts: dev,
		IssuedEstAmps:  est,
		Activity:       act,
	}
	m.cycles++
	return &m.obs
}

// stepMulti is Step for machines whose PDN exposes several supply
// domains: the power model splits the cycle's energy per domain, each
// domain's draw (plus its budget-weighted share of any phantom current)
// drives the network, and each rail is checked against its own noise
// margin and sensed by its own sensor. The scalar Observation fields
// keep their aggregate meanings — TotalAmps is the summed draw,
// DeviationVolts the worst domain's deviation, SensedAmps the aggregate
// (or the SensorDomain rail's) reading — so domain-oblivious techniques
// keep working; domain-aware ones read Observation.PerDomain.
func (m *Machine) stepMulti(throttle cpu.Throttle, ph Phantom) *Observation {
	act := &m.act
	m.core.StepInto(throttle, act)
	coreJ := m.pwr.StepDomains(act, m.domJ)
	coreAmps := m.pwr.CurrentAmps(coreJ)

	phantomAmps := 0.0
	switch {
	case ph.TargetAmps > 0 && coreAmps < ph.TargetAmps:
		phantomAmps = ph.TargetAmps - coreAmps
	case ph.FireAmps > 0:
		phantomAmps = ph.FireAmps
	}
	if phantomAmps > 0 {
		m.phantomJ += phantomAmps * m.cfg.Power.Vdd / m.cfg.Power.ClockHz
	}
	totalAmps := coreAmps + phantomAmps

	for d := 0; d < m.nd; d++ {
		m.draws[d] = m.pwr.CurrentAmps(m.domJ[d]) + phantomAmps*m.domShare[d]
	}
	m.net.Step(m.draws, m.devs)

	// Worst-domain deviation carries the scalar field; violations count
	// cycles on which any domain leaves its margin, so the aggregate
	// Result stays comparable with single-domain runs.
	worst, worstAbs := 0.0, -1.0
	anyViolation := false
	for d := 0; d < m.nd; d++ {
		dev := m.devs[d]
		a := math.Abs(dev)
		if a > m.domPeak[d] {
			m.domPeak[d] = a
		}
		if a > m.margins[d] {
			m.domViol[d]++
			anyViolation = true
		}
		if a > worstAbs {
			worstAbs, worst = a, dev
		}
	}
	if worstAbs > m.peakDev {
		m.peakDev = worstAbs
	}
	if anyViolation {
		m.violation++
	}

	est := 0.0
	for cl := cpu.Class(0); cl < cpu.NumClasses; cl++ {
		if n := act.Issued[cl]; n > 0 {
			est += float64(n) * m.classAmps[cl]
		}
	}

	for d := 0; d < m.nd; d++ {
		m.domObs.SensedAmps[d] = m.bank.Read(d, m.draws[d])
		m.domObs.Amps[d] = m.draws[d]
		m.domObs.DeviationVolts[d] = m.devs[d]
		m.domSumAmps[d] += m.draws[d]
	}
	var sensed float64
	switch {
	case m.sensorDomain > 0:
		sensed = m.domObs.SensedAmps[m.sensorDomain-1]
	case m.sens != nil:
		sensed = m.sens.Read(totalAmps)
	case m.resolution > 0:
		sensed = math.Round(totalAmps/m.resolution) * m.resolution
	default:
		sensed = totalAmps
	}

	m.sumAmps += totalAmps
	if totalAmps < m.minAmps {
		m.minAmps = totalAmps
	}
	if totalAmps > m.maxAmps {
		m.maxAmps = totalAmps
	}
	m.obs = Observation{
		Cycle:          m.cycles,
		SensedAmps:     sensed,
		TotalAmps:      totalAmps,
		DeviationVolts: worst,
		IssuedEstAmps:  est,
		Activity:       act,
		PerDomain:      &m.domObs,
	}
	m.cycles++
	return &m.obs
}

// Network exposes the machine's power-delivery network.
func (m *Machine) Network() circuit.Network { return m.net }

// Domains returns the PDN's supply-domain count (one on legacy
// machines).
func (m *Machine) Domains() int { return m.nd }

// DomainStat summarises one supply domain's run.
type DomainStat struct {
	// Name labels the domain (circuit.DomainInfo.Name).
	Name string
	// Violations counts cycles this domain left its noise margin.
	Violations uint64
	// PeakDeviationV is the domain's worst absolute deviation.
	PeakDeviationV float64
	// MeanAmps is the domain's average draw.
	MeanAmps float64
}

// DomainStats reports each supply domain's violation and current
// statistics; it returns nil on single-domain machines (the aggregate
// Result already tells the whole story there).
func (m *Machine) DomainStats() []DomainStat {
	if m.nd <= 1 {
		return nil
	}
	out := make([]DomainStat, m.nd)
	for d := 0; d < m.nd; d++ {
		out[d] = DomainStat{
			Name:           m.net.DomainInfo(d).Name,
			Violations:     m.domViol[d],
			PeakDeviationV: m.domPeak[d],
		}
		if m.cycles > 0 {
			out[d].MeanAmps = m.domSumAmps[d] / float64(m.cycles)
		}
	}
	return out
}

// Result summarises the run so far under the given labels. The Tech
// accounting is left zero; callers that ran a technique fill it in (see
// TechStatsOf).
func (m *Machine) Result(appName, techName string) Result {
	res := Result{
		App:            appName,
		Technique:      techName,
		Cycles:         m.cycles,
		Instructions:   m.core.Committed(),
		IPC:            m.core.IPC(),
		EnergyJ:        m.pwr.TotalJoules() + m.phantomJ,
		PhantomJ:       m.phantomJ,
		Violations:     m.violation,
		PeakDeviationV: m.peakDev,
	}
	if m.cycles > 0 {
		res.ViolationFraction = float64(m.violation) / float64(m.cycles)
		res.MeanAmps = m.sumAmps / float64(m.cycles)
		res.MinAmps = m.minAmps
		res.MaxAmps = m.maxAmps
	}
	return res
}

// TechStatsOf returns the controller accounting a technique reports, or a
// zero TechStats for techniques without any (and for the nil base
// technique).
func TechStatsOf(t Technique) TechStats {
	if ts, ok := t.(techStatser); ok {
		return ts.TechStats()
	}
	return TechStats{}
}
