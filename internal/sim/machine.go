package sim

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/power"
	"repro/internal/sensor"
)

// Machine is the technique-independent half of a simulation: the pipeline
// model, the power model, the supply circuit, and the current sensor,
// advanced together one cycle at a time. Step applies a throttle and a
// phantom request (whoever decides them — a Technique via Simulator, or a
// batch kernel's leader lane) and returns the cycle's Observation.
//
// Machine exists so the scalar Simulator and the lockstep batch kernel
// (internal/engine/batchkernel) share one copy of the per-cycle
// arithmetic: every operation in Step is performed in the same order as
// the original Simulator.StepCycle, so results are bit-identical to the
// pre-split loop (pinned by the kernel's differential harness).
type Machine struct {
	cfg    Config
	core   *cpu.Core
	pwr    *power.Model
	supply supplySim
	sens   *sensor.Current

	classAmps [cpu.NumClasses]float64
	// margin caches the supply's noise margin so the per-cycle violation
	// check is a compare, not an interface call; resolution caches the
	// sensor quantisation step for the undelayed fast path (sens is only
	// instantiated when a reading delay makes real history necessary).
	margin     float64
	resolution float64

	act cpu.Activity // per-cycle activity buffer, reused to avoid copies
	obs Observation  // per-cycle observation buffer, reused likewise

	phantomJ  float64
	violation uint64
	peakDev   float64
	sumAmps   float64
	minAmps   float64
	maxAmps   float64
	cycles    uint64
}

// NewMachine builds the simulated system for the given configuration and
// instruction source.
func NewMachine(cfg Config, src cpu.Source) (*Machine, error) {
	if err := cfg.CPU.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := cfg.Power.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := cfg.Supply.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if cfg.TwoStageSupply != nil {
		if err := cfg.TwoStageSupply.Validate(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	pwr := power.New(cfg.Power, cfg.CPU)
	core := cpu.New(cfg.CPU, src)
	core.SetClassCurrentEstimates(pwr.ClassAmps())
	resolution := 1.0 // the paper's whole-amp sensors
	switch {
	case cfg.SensorResolutionAmps > 0:
		resolution = cfg.SensorResolutionAmps
	case cfg.SensorResolutionAmps < 0:
		resolution = 0 // exact
	}
	var sens *sensor.Current
	if cfg.SensorDelayCycles > 0 {
		sens = sensor.NewCurrentDelayed(cfg.SensorDelayCycles)
		sens.ResolutionAmps = resolution
	}
	var supply supplySim
	var margin float64
	if cfg.TwoStageSupply != nil {
		supply = circuit.NewTwoStageSimulator(*cfg.TwoStageSupply, pwr.IdleAmps())
		margin = cfg.TwoStageSupply.NoiseMarginVolts()
	} else {
		supply = circuit.NewSimulator(cfg.Supply, pwr.IdleAmps())
		margin = cfg.Supply.NoiseMarginVolts()
	}
	return &Machine{
		cfg:        cfg,
		core:       core,
		pwr:        pwr,
		supply:     supply,
		sens:       sens,
		classAmps:  pwr.ClassAmps(),
		margin:     margin,
		resolution: resolution,
		minAmps:    math.Inf(1),
		maxAmps:    math.Inf(-1),
	}, nil
}

// Fork returns a deep copy of the machine with a hard bit-identity
// contract: fork at any cycle, then step the original and the clone to
// completion with identical (throttle, phantom) sequences, and both
// produce identical per-cycle Observations (including the Activity
// buffer), trace-relevant values, and final Results. Every piece of
// mutable state is duplicated — core scheduler (ROB, wakeup lists,
// timing wheel, ready bitmap, fetch queue), instruction-source cursor
// (including generator RNG state), power model (spreading ring, memo,
// accumulators), supply circuit, sensor history, and the machine's own
// statistics counters — so the two machines share nothing written after
// the fork. The batch kernel uses this to resume diverged lanes from
// their observed prefix instead of re-running them from cycle zero;
// FuzzMachineFork and the kernel differential harness pin the contract.
//
// Fork fails when the instruction source cannot be forked (a source not
// implementing cpu.ForkableSource); callers fall back to a scalar
// re-run in that case.
func (m *Machine) Fork() (*Machine, error) {
	core, err := m.core.Fork()
	if err != nil {
		return nil, fmt.Errorf("sim: fork: %w", err)
	}
	supply, err := forkSupply(m.supply)
	if err != nil {
		return nil, fmt.Errorf("sim: fork: %w", err)
	}
	f := *m
	f.core = core
	f.pwr = m.pwr.Fork()
	f.supply = supply
	if m.sens != nil {
		f.sens = m.sens.Fork()
	}
	// The observation buffer's Activity pointer must aim at the clone's
	// own activity buffer, not the original's.
	if f.obs.Activity != nil {
		f.obs.Activity = &f.act
	}
	return &f, nil
}

// forkSupply deep-copies a supply simulator. Every concrete supplySim
// must be listed here; a new PDN model that is not will surface as a
// fork error (and a scalar fallback in the batch kernel) rather than
// silently shared state.
func forkSupply(s supplySim) (supplySim, error) {
	switch v := s.(type) {
	case *circuit.Simulator:
		return v.Fork(), nil
	case *circuit.TwoStageSimulator:
		return v.Fork(), nil
	}
	return nil, fmt.Errorf("supply %T is not forkable", s)
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Power exposes the power model (for technique setup needing PhantomFire
// or mid-level amps, and for memoization statistics).
func (m *Machine) Power() *power.Model { return m.pwr }

// Core exposes the pipeline model.
func (m *Machine) Core() *cpu.Core { return m.core }

// Done reports whether the instruction stream is exhausted and the
// pipeline has drained.
func (m *Machine) Done() bool { return m.core.Done() }

// Cycles returns the number of cycles stepped so far.
func (m *Machine) Cycles() uint64 { return m.cycles }

// CycleLimit returns the configured MaxCycles bound, substituting the
// generous livelock guard when the configuration leaves it zero.
func (m *Machine) CycleLimit() uint64 {
	if m.cfg.MaxCycles == 0 {
		return 1 << 62
	}
	return m.cfg.MaxCycles
}

// Step advances the whole system one clock cycle under the given throttle
// and phantom request and returns the cycle's Observation. The returned
// pointer aims at a buffer Step reuses every cycle: read it before the
// next Step, copy it to retain it.
func (m *Machine) Step(throttle cpu.Throttle, ph Phantom) *Observation {
	act := &m.act
	m.core.StepInto(throttle, act)
	coreJ := m.pwr.Step(act, 0)
	coreAmps := m.pwr.CurrentAmps(coreJ)

	phantomAmps := 0.0
	switch {
	case ph.TargetAmps > 0 && coreAmps < ph.TargetAmps:
		phantomAmps = ph.TargetAmps - coreAmps
	case ph.FireAmps > 0:
		phantomAmps = ph.FireAmps
	}
	if phantomAmps > 0 {
		m.phantomJ += phantomAmps * m.cfg.Power.Vdd / m.cfg.Power.ClockHz
	}
	totalAmps := coreAmps + phantomAmps

	dev := m.supply.Step(totalAmps)
	a := dev
	if a < 0 {
		a = -a
	}
	if a > m.peakDev {
		m.peakDev = a
	}
	if a > m.margin {
		m.violation++
	}

	est := 0.0
	for cl := cpu.Class(0); cl < cpu.NumClasses; cl++ {
		if n := act.Issued[cl]; n > 0 {
			est += float64(n) * m.classAmps[cl]
		}
	}
	var sensed float64
	switch {
	case m.sens != nil:
		sensed = m.sens.Read(totalAmps)
	case m.resolution > 0:
		// Same quantisation arithmetic as sensor.Current.Read, inlined
		// for the undelayed sensor the paper's evaluation uses.
		sensed = math.Round(totalAmps/m.resolution) * m.resolution
	default:
		sensed = totalAmps
	}

	m.sumAmps += totalAmps
	if totalAmps < m.minAmps {
		m.minAmps = totalAmps
	}
	if totalAmps > m.maxAmps {
		m.maxAmps = totalAmps
	}
	m.obs = Observation{
		Cycle:          m.cycles,
		SensedAmps:     sensed,
		TotalAmps:      totalAmps,
		DeviationVolts: dev,
		IssuedEstAmps:  est,
		Activity:       act,
	}
	m.cycles++
	return &m.obs
}

// Result summarises the run so far under the given labels. The Tech
// accounting is left zero; callers that ran a technique fill it in (see
// TechStatsOf).
func (m *Machine) Result(appName, techName string) Result {
	res := Result{
		App:            appName,
		Technique:      techName,
		Cycles:         m.cycles,
		Instructions:   m.core.Committed(),
		IPC:            m.core.IPC(),
		EnergyJ:        m.pwr.TotalJoules() + m.phantomJ,
		PhantomJ:       m.phantomJ,
		Violations:     m.violation,
		PeakDeviationV: m.peakDev,
	}
	if m.cycles > 0 {
		res.ViolationFraction = float64(m.violation) / float64(m.cycles)
		res.MeanAmps = m.sumAmps / float64(m.cycles)
		res.MinAmps = m.minAmps
		res.MaxAmps = m.maxAmps
	}
	return res
}

// TechStatsOf returns the controller accounting a technique reports, or a
// zero TechStats for techniques without any (and for the nil base
// technique).
func TechStatsOf(t Technique) TechStats {
	if ts, ok := t.(techStatser); ok {
		return ts.TechStats()
	}
	return TechStats{}
}
