package sim

import (
	"testing"

	"repro/internal/workload"
)

func TestPostmortemSyntheticBursts(t *testing.T) {
	// Lookback 100: the warning at cycle 110 covers the burst at 150
	// (lead 40) but not the burst at 300 (190 cycles later).
	pm := NewPostmortem(0.05, 2, 100)
	// Quiet, warning at cycle 100, violation burst 150-160, quiet,
	// then an unwarned burst at 300.
	for c := uint64(0); c < 500; c++ {
		tp := TracePoint{Cycle: c, TotalAmps: 70}
		if c >= 90 && c <= 110 {
			tp.EventCount = 2
		}
		if c >= 150 && c <= 160 {
			tp.DeviationVolts = 0.06
			tp.ResponseLevel = 1
		}
		if c >= 300 && c <= 305 {
			tp.DeviationVolts = -0.07
		}
		pm.Observe(tp)
	}
	reps := pm.Reports()
	if len(reps) != 2 {
		t.Fatalf("%d bursts, want 2: %+v", len(reps), reps)
	}
	first := reps[0]
	if first.StartCycle != 150 || first.EndCycle != 160 {
		t.Errorf("first burst %d-%d", first.StartCycle, first.EndCycle)
	}
	if first.WarningLeadCycles != 150-110 {
		t.Errorf("warning lead %d, want 40", first.WarningLeadCycles)
	}
	if first.ResponseLevelAtStart != 1 {
		t.Errorf("response level %d, want 1", first.ResponseLevelAtStart)
	}
	if first.PeakDeviationV != 0.06 {
		t.Errorf("peak %g", first.PeakDeviationV)
	}
	second := reps[1]
	if second.WarningLeadCycles != -1 {
		t.Errorf("second burst lead %d, want -1 (unwarned)", second.WarningLeadCycles)
	}
	if second.PeakDeviationV != 0.07 {
		t.Errorf("second peak %g", second.PeakDeviationV)
	}

	bursts, meanLead, unwarned := pm.Summary()
	if bursts != 2 || unwarned != 1 || meanLead != 40 {
		t.Errorf("summary %d/%g/%d", bursts, meanLead, unwarned)
	}
}

func TestPostmortemMergesCloseBursts(t *testing.T) {
	pm := NewPostmortem(0.05, 2, 400)
	for c := uint64(0); c < 300; c++ {
		tp := TracePoint{Cycle: c, TotalAmps: 70}
		// Two violating stretches separated by a 5-cycle gap (below
		// the merge gap of lookback/10 = 40).
		if (c >= 100 && c <= 110) || (c >= 116 && c <= 125) {
			tp.DeviationVolts = 0.055
		}
		pm.Observe(tp)
	}
	reps := pm.Reports()
	if len(reps) != 1 {
		t.Fatalf("%d bursts, want 1 merged: %+v", len(reps), reps)
	}
	if reps[0].StartCycle != 100 || reps[0].EndCycle != 125 {
		t.Errorf("merged burst %d-%d, want 100-125", reps[0].StartCycle, reps[0].EndCycle)
	}
}

func TestPostmortemOpenBurstIncluded(t *testing.T) {
	pm := NewPostmortem(0.05, 2, 100)
	for c := uint64(0); c < 50; c++ {
		pm.Observe(TracePoint{Cycle: c, DeviationVolts: 0.09})
	}
	reps := pm.Reports()
	if len(reps) != 1 || reps[0].EndCycle != 49 {
		t.Fatalf("open burst not reported: %+v", reps)
	}
}

func TestPostmortemOnRealRun(t *testing.T) {
	// The anatomy claim end to end: on a violating app under tuning,
	// most remaining bursts either carried an advance warning or were
	// already inside a response when they hit.
	app, err := workload.ByName("lucas")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	tech := NewResonanceTuning(table1Tuning())
	g := workload.NewGenerator(app.Params, 400_000)
	s, err := New(cfg, g, tech)
	if err != nil {
		t.Fatal(err)
	}
	pm := NewPostmortem(cfg.Supply.NoiseMarginVolts(), 2, 500)
	s.SetTrace(pm.Observe, tech.EventCount, tech.Level)
	res := s.Run("lucas", tech.Name())

	reps := pm.Reports()
	// Total violating cycles across bursts must match the result.
	var cyc uint64
	for _, r := range reps {
		if r.EndCycle < r.StartCycle {
			t.Fatalf("inverted burst %+v", r)
		}
		cyc += r.EndCycle - r.StartCycle + 1
	}
	// Merged gaps mean cyc >= res.Violations is not exact; but bursts
	// can never cover fewer cycles than the violations counted.
	if cyc < res.Violations {
		t.Errorf("bursts cover %d cycles but %d violations counted", cyc, res.Violations)
	}
	if res.Violations > 0 && len(reps) == 0 {
		t.Fatal("violations occurred but no bursts reported")
	}
	warnedOrResponding := 0
	for _, r := range reps {
		if r.WarningLeadCycles >= 0 || r.ResponseLevelAtStart > 0 {
			warnedOrResponding++
		}
	}
	if len(reps) > 0 && warnedOrResponding < len(reps)*5/10 {
		t.Errorf("only %d of %d residual bursts were warned or in-response", warnedOrResponding, len(reps))
	}
}

func TestPostmortemLookbackClamp(t *testing.T) {
	pm := NewPostmortem(0.05, 2, 1)
	for c := uint64(0); c < 20; c++ {
		pm.Observe(TracePoint{Cycle: c, TotalAmps: float64(60 + c)})
	}
	if pm.swing() <= 0 {
		t.Error("swing not computed with clamped lookback")
	}
}
