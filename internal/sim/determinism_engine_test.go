// Engine-mediated determinism coverage lives in an external test package
// because engine imports sim; an in-package test importing engine would
// be an import cycle.
package sim_test

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// directRun builds the simulation the way the pre-engine drivers did:
// straight from sim.New with an explicit technique instance.
func directRun(t *testing.T, app string, insts uint64, cfg *tuning.Config) sim.Result {
	t.Helper()
	a, err := workload.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewGenerator(a.Params, insts)
	var tech sim.Technique
	name := "base"
	if cfg != nil {
		rt := sim.NewResonanceTuning(*cfg)
		tech = rt
		name = rt.Name()
	}
	s, err := sim.New(sim.DefaultConfig(), g, tech)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run(app, name)
}

// TestEngineMatchesDirectConstruction extends the determinism guarantee
// across the engine boundary: a run described as an engine.Spec —
// executed directly, through a pooled engine, and replayed from its
// cache — is bit-identical to hand-constructing the simulator.
func TestEngineMatchesDirectConstruction(t *testing.T) {
	const insts = 120_000
	tc := engine.DefaultTuningConfig(100)
	cases := []struct {
		name   string
		spec   engine.Spec
		tuning *tuning.Config
	}{
		{"base", engine.Spec{App: "swim", Instructions: insts}, nil},
		{"tuning", engine.Spec{App: "swim", Instructions: insts,
			Technique: engine.TechniqueTuning, Tuning: &tc}, &tc},
	}
	eng := engine.New(engine.Options{Parallelism: 2})
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := directRun(t, c.spec.App, c.spec.Instructions, c.tuning)

			executed, err := engine.Execute(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			if executed != want {
				t.Errorf("engine.Execute diverged from direct construction:\n%+v\n%+v", executed, want)
			}

			cold, err := eng.Run(context.Background(), c.spec)
			if err != nil {
				t.Fatal(err)
			}
			if cold != want {
				t.Errorf("cold engine run diverged from direct construction:\n%+v\n%+v", cold, want)
			}

			warm, err := eng.Run(context.Background(), c.spec)
			if err != nil {
				t.Fatal(err)
			}
			if warm != want {
				t.Errorf("cached engine run diverged from direct construction:\n%+v\n%+v", warm, want)
			}
		})
	}
	st := eng.CacheStats()
	if st.Misses != uint64(len(cases)) || st.Hits != uint64(len(cases)) {
		t.Errorf("cache traffic hits=%d misses=%d, want %d and %d", st.Hits, st.Misses, len(cases), len(cases))
	}
}
