package sim

import (
	"repro/internal/baselines/convctl"
	"repro/internal/baselines/damping"
	"repro/internal/baselines/voltctl"
	"repro/internal/baselines/wavelet"
	"repro/internal/cpu"
	"repro/internal/tuning"
)

// ResonanceTuning adapts the tuning controller (the paper's contribution)
// to the simulation loop: it senses core current and applies the
// two-tier response.
type ResonanceTuning struct {
	ctrl *tuning.Controller
	next tuning.Response
}

// NewResonanceTuning returns the technique for the given configuration.
func NewResonanceTuning(cfg tuning.Config) *ResonanceTuning {
	return &ResonanceTuning{
		ctrl: tuning.NewController(cfg),
		next: tuning.Response{Throttle: cpu.Unlimited},
	}
}

// Name implements Technique.
func (t *ResonanceTuning) Name() string { return "resonance-tuning" }

// Next implements Technique.
func (t *ResonanceTuning) Next() (cpu.Throttle, Phantom) {
	return t.next.Throttle, Phantom{TargetAmps: t.next.PhantomTargetAmps}
}

// Observe implements Technique.
func (t *ResonanceTuning) Observe(obs *Observation) {
	t.next = t.ctrl.Step(obs.SensedAmps)
}

// Stats returns the controller statistics (Table 3 columns).
func (t *ResonanceTuning) Stats() tuning.Stats { return t.ctrl.Stats() }

// TechStats implements the Result accounting hook.
func (t *ResonanceTuning) TechStats() TechStats {
	st := t.ctrl.Stats()
	return TechStats{
		ControllerCycles:  st.Cycles,
		FirstLevelCycles:  st.FirstLevelCycles,
		SecondLevelCycles: st.SecondLevelCycles,
		ResponseCycles:    st.FirstLevelCycles + st.SecondLevelCycles,
	}
}

// EventCount returns the current resonant event count (for traces).
func (t *ResonanceTuning) EventCount() int { return t.ctrl.Detector().CountNow() }

// Level returns the active response level (for traces).
func (t *ResonanceTuning) Level() int { return int(t.next.Level) }

// VoltageControl adapts the technique of [10]: voltage-threshold sensing
// with stall / phantom-fire responses.
type VoltageControl struct {
	ctrl     *voltctl.Controller
	fireAmps float64
	next     voltctl.Response
}

// NewVoltageControl returns the technique; fireAmps is the current of
// phantom-firing the caches and functional units (power.PhantomFireAmps).
func NewVoltageControl(cfg voltctl.Config, fireAmps float64) *VoltageControl {
	return &VoltageControl{
		ctrl:     voltctl.New(cfg),
		fireAmps: fireAmps,
		next:     voltctl.Response{Throttle: cpu.Unlimited},
	}
}

// Name implements Technique.
func (t *VoltageControl) Name() string { return "voltage-control" }

// Next implements Technique.
func (t *VoltageControl) Next() (cpu.Throttle, Phantom) {
	var ph Phantom
	if t.next.PhantomFire {
		ph.FireAmps = t.fireAmps
	}
	return t.next.Throttle, ph
}

// Observe implements Technique.
func (t *VoltageControl) Observe(obs *Observation) {
	t.next = t.ctrl.Step(obs.DeviationVolts)
}

// Stats returns the controller statistics (Table 4 columns).
func (t *VoltageControl) Stats() voltctl.Stats { return t.ctrl.Stats() }

// TechStats implements the Result accounting hook.
func (t *VoltageControl) TechStats() TechStats {
	st := t.ctrl.Stats()
	return TechStats{ControllerCycles: st.Cycles, ResponseCycles: st.ResponseCycles}
}

// Level reports 1 while responding (for traces).
func (t *VoltageControl) Level() int {
	if t.next.InResponse {
		return 1
	}
	return 0
}

// Damping adapts pipeline damping [14]: a per-cycle issue-current budget
// derived from a-priori class estimates, with phantom make-up current
// when the window undershoots. The make-up current computed for a cycle
// is injected on the following cycle, mirroring the one-cycle actuation
// lag of a real implementation.
type Damping struct {
	ctrl          *damping.Controller
	pendingAmps   float64
	warmupPending bool
}

// NewDamping returns the technique for the given configuration.
func NewDamping(cfg damping.Config) *Damping {
	return &Damping{ctrl: damping.New(cfg)}
}

// Name implements Technique.
func (t *Damping) Name() string { return "pipeline-damping" }

// Next implements Technique.
func (t *Damping) Next() (cpu.Throttle, Phantom) {
	th := cpu.Unlimited
	if amps, limited := t.ctrl.Budget(); limited {
		th.IssueCurrentBudget = amps
	}
	ph := Phantom{FireAmps: t.pendingAmps}
	t.pendingAmps = 0
	return th, ph
}

// Observe implements Technique.
func (t *Damping) Observe(obs *Observation) {
	t.pendingAmps = t.ctrl.Account(obs.IssuedEstAmps)
}

// Stats returns the controller statistics (Table 5 analysis).
func (t *Damping) Stats() damping.Stats { return t.ctrl.Stats() }

// TechStats implements the Result accounting hook.
func (t *Damping) TechStats() TechStats {
	st := t.ctrl.Stats()
	return TechStats{ControllerCycles: st.Cycles, ResponseCycles: st.ConstrainedCyc}
}

// ConvolutionControl adapts the convolution-prediction technique of [8]:
// predict the supply deviation by convolving the current history with the
// supply's impulse response, and stall or phantom-fire on threatening
// predictions.
type ConvolutionControl struct {
	ctrl     *convctl.Controller
	fireAmps float64
	next     convctl.Response
}

// NewConvolutionControl returns the technique; fireAmps is the
// phantom-fire current (power.PhantomFireAmps).
func NewConvolutionControl(cfg convctl.Config, fireAmps float64) *ConvolutionControl {
	return &ConvolutionControl{
		ctrl:     convctl.New(cfg),
		fireAmps: fireAmps,
		next:     convctl.Response{Throttle: cpu.Unlimited},
	}
}

// Name implements Technique.
func (t *ConvolutionControl) Name() string { return "convolution-control" }

// Next implements Technique.
func (t *ConvolutionControl) Next() (cpu.Throttle, Phantom) {
	var ph Phantom
	if t.next.PhantomFire {
		ph.FireAmps = t.fireAmps
	}
	return t.next.Throttle, ph
}

// Observe implements Technique.
func (t *ConvolutionControl) Observe(obs *Observation) {
	t.next = t.ctrl.Step(obs.TotalAmps, obs.DeviationVolts)
}

// Stats returns the controller statistics.
func (t *ConvolutionControl) Stats() convctl.Stats { return t.ctrl.Stats() }

// WaveletControl adapts the Haar-wavelet detector in the spirit of [11]:
// dyadic-scale detail coefficients of the sensed current trigger a
// half-width response on repeated alternating events.
type WaveletControl struct {
	ctrl *wavelet.Controller
	next cpu.Throttle
}

// NewWaveletControl returns the technique.
func NewWaveletControl(cfg wavelet.Config) *WaveletControl {
	return &WaveletControl{ctrl: wavelet.New(cfg), next: cpu.Unlimited}
}

// Name implements Technique.
func (t *WaveletControl) Name() string { return "wavelet-control" }

// Next implements Technique.
func (t *WaveletControl) Next() (cpu.Throttle, Phantom) { return t.next, Phantom{} }

// Observe implements Technique.
func (t *WaveletControl) Observe(obs *Observation) {
	t.next = t.ctrl.Step(obs.SensedAmps)
}

// Stats returns the controller statistics.
func (t *WaveletControl) Stats() wavelet.Stats { return t.ctrl.Stats() }

// DualBandTuning applies resonance tuning to both resonances of a
// two-stage supply (Section 2.2): the medium-frequency controller runs at
// core clock, and the low-frequency controller runs on a decimated
// current stream — a slow averaging sensor feeding the same detector
// hardware at a coarser timebase, with response durations scaled back to
// processor cycles by the same factor.
type DualBandTuning struct {
	medium *tuning.Controller
	low    *tuning.Controller
	factor int

	acc     float64
	n       int
	nextMed tuning.Response
	nextLow tuning.Response
	lowLeft int // processor cycles the current low response still covers
}

// NewDualBandTuning builds the two controllers. mediumCfg runs per cycle;
// lowCfg is expressed in decimated units (its response times are
// multiplied by factor when applied to the pipeline).
func NewDualBandTuning(mediumCfg, lowCfg tuning.Config, factor int) *DualBandTuning {
	if factor < 1 {
		panic("sim.NewDualBandTuning: factor must be ≥ 1")
	}
	return &DualBandTuning{
		medium:  tuning.NewController(mediumCfg),
		low:     tuning.NewController(lowCfg),
		factor:  factor,
		nextMed: tuning.Response{Throttle: cpu.Unlimited},
		nextLow: tuning.Response{Throttle: cpu.Unlimited},
	}
}

// Name implements Technique.
func (t *DualBandTuning) Name() string { return "dual-band-tuning" }

// Next implements Technique: the stronger of the two bands' responses
// applies.
func (t *DualBandTuning) Next() (cpu.Throttle, Phantom) {
	r := t.nextMed
	if t.lowLeft > 0 && t.nextLow.Level > r.Level {
		r = t.nextLow
	}
	return r.Throttle, Phantom{TargetAmps: r.PhantomTargetAmps}
}

// Observe implements Technique.
func (t *DualBandTuning) Observe(obs *Observation) {
	t.nextMed = t.medium.Step(obs.SensedAmps)
	t.acc += obs.SensedAmps
	t.n++
	if t.lowLeft > 0 {
		t.lowLeft--
	}
	if t.n >= t.factor {
		t.nextLow = t.low.Step(t.acc / float64(t.n))
		t.acc, t.n = 0, 0
		if t.nextLow.Level != tuning.LevelNone {
			t.lowLeft = t.factor
		}
	}
}

// MediumStats and LowStats expose the two controllers' statistics.
func (t *DualBandTuning) MediumStats() tuning.Stats { return t.medium.Stats() }

// LowStats returns the low-band controller's statistics (cycle counts in
// decimated units).
func (t *DualBandTuning) LowStats() tuning.Stats { return t.low.Stats() }

// PerDomainTuning applies resonance tuning independently per supply
// domain of a multi-domain PDN: one controller per domain, each fed its
// own rail's sensed current, so a resonating domain is detected and
// answered even when the aggregate current looks calm (and vice versa —
// in-phase domains exciting the shared package tier raise every rail's
// swing, which each domain's detector sees in its own band). The
// pipeline is shared, so the strongest domain response drives the
// throttle and phantom request each cycle.
//
// Per-domain PhantomTargetAmps are expressed in aggregate core amps (the
// machine splits phantom current across domains by budget share), so the
// usual mid-level target works unchanged.
type PerDomainTuning struct {
	ctrls []*tuning.Controller
	next  []tuning.Response
}

// NewPerDomainTuning builds one controller per domain configuration (at
// least one).
func NewPerDomainTuning(cfgs []tuning.Config) *PerDomainTuning {
	if len(cfgs) == 0 {
		panic("sim.NewPerDomainTuning: need at least one domain configuration")
	}
	t := &PerDomainTuning{
		ctrls: make([]*tuning.Controller, len(cfgs)),
		next:  make([]tuning.Response, len(cfgs)),
	}
	for d, cfg := range cfgs {
		t.ctrls[d] = tuning.NewController(cfg)
		t.next[d] = tuning.Response{Throttle: cpu.Unlimited}
	}
	return t
}

// Name implements Technique.
func (t *PerDomainTuning) Name() string { return "per-domain-tuning" }

// Next implements Technique: the strongest domain's response applies.
func (t *PerDomainTuning) Next() (cpu.Throttle, Phantom) {
	r := t.next[0]
	for _, n := range t.next[1:] {
		if n.Level > r.Level {
			r = n
		}
	}
	return r.Throttle, Phantom{TargetAmps: r.PhantomTargetAmps}
}

// Observe implements Technique: each controller sees its own domain's
// sensed current. On a single-domain machine (no PerDomain view) every
// controller falls back to the aggregate sensed current.
func (t *PerDomainTuning) Observe(obs *Observation) {
	if pd := obs.PerDomain; pd != nil {
		for d := range t.ctrls {
			amps := obs.SensedAmps
			if d < len(pd.SensedAmps) {
				amps = pd.SensedAmps[d]
			}
			t.next[d] = t.ctrls[d].Step(amps)
		}
		return
	}
	for d := range t.ctrls {
		t.next[d] = t.ctrls[d].Step(obs.SensedAmps)
	}
}

// DomainStats returns each domain controller's statistics.
func (t *PerDomainTuning) DomainStats() []tuning.Stats {
	out := make([]tuning.Stats, len(t.ctrls))
	for d, c := range t.ctrls {
		out[d] = c.Stats()
	}
	return out
}

// TechStats implements the Result accounting hook: controller cycles are
// per machine cycle (every controller observes each cycle exactly once),
// response cycles sum over domains so concurrent per-domain responses
// are visible in the aggregate.
func (t *PerDomainTuning) TechStats() TechStats {
	st := TechStats{ControllerCycles: t.ctrls[0].Stats().Cycles}
	for _, c := range t.ctrls {
		s := c.Stats()
		st.FirstLevelCycles += s.FirstLevelCycles
		st.SecondLevelCycles += s.SecondLevelCycles
	}
	st.ResponseCycles = st.FirstLevelCycles + st.SecondLevelCycles
	return st
}

// EventCount returns the summed resonant event count (for traces).
func (t *PerDomainTuning) EventCount() int {
	n := 0
	for _, c := range t.ctrls {
		n += c.Detector().CountNow()
	}
	return n
}

// Level returns the strongest active response level (for traces).
func (t *PerDomainTuning) Level() int {
	lv := tuning.LevelNone
	for _, n := range t.next {
		if n.Level > lv {
			lv = n.Level
		}
	}
	return int(lv)
}
