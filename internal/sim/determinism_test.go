package sim

import (
	"testing"

	"repro/internal/workload"
)

// TestRunsAreDeterministic: the whole coupled system — workload, core,
// power, supply, sensors, technique — is a pure function of its
// configuration. Every experiment in the repo depends on this.
func TestRunsAreDeterministic(t *testing.T) {
	for _, techName := range []string{"base", "tuning"} {
		run := func() Result {
			app, err := workload.ByName("swim")
			if err != nil {
				t.Fatal(err)
			}
			g := workload.NewGenerator(app.Params, 120_000)
			var tech Technique
			if techName == "tuning" {
				tech = NewResonanceTuning(table1Tuning())
			}
			s, err := New(DefaultConfig(), g, tech)
			if err != nil {
				t.Fatal(err)
			}
			return s.Run("swim", techName)
		}
		a, b := run(), run()
		if a != b {
			t.Errorf("%s: runs diverged:\n%+v\n%+v", techName, a, b)
		}
	}
}

// TestTraceMatchesResult: the per-cycle trace and the aggregate result
// agree on violations and peak deviation.
func TestTraceMatchesResult(t *testing.T) {
	app, err := workload.ByName("lucas")
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewGenerator(app.Params, 150_000)
	s, err := New(DefaultConfig(), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	margin := DefaultConfig().Supply.NoiseMarginVolts()
	var violations uint64
	peak := 0.0
	s.SetTrace(func(tp TracePoint) {
		d := tp.DeviationVolts
		if d < 0 {
			d = -d
		}
		if d > margin {
			violations++
		}
		if d > peak {
			peak = d
		}
	}, nil, nil)
	res := s.Run("lucas", "base")
	if violations != res.Violations {
		t.Errorf("trace counted %d violations, result %d", violations, res.Violations)
	}
	if peak != res.PeakDeviationV {
		t.Errorf("trace peak %g, result %g", peak, res.PeakDeviationV)
	}
}
