// Package sim couples the pipeline model, the power model, the
// power-supply circuit, and an (optional) inductive-noise control
// technique into the per-cycle simulation loop of the paper's
// methodology (Section 4):
//
//	throttle → core cycle → activity → power/current → supply voltage
//	→ sensors → technique → next throttle
//
// Phantom operations requested by a technique (the second-level response
// of resonance tuning, the phantom-fire of [10], damping's make-up
// current) are added to the cycle's current and energy but perform no
// work. Noise-margin violations are counted from the simulated supply
// deviation each cycle.
package sim

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/power"
	"repro/internal/sensor"
)

// supplySim is the power-distribution-network behaviour the loop needs;
// both the single-stage Figure 1(b) model and the two-stage Section 2.2
// model satisfy it.
type supplySim interface {
	Step(icpu float64) float64
	Violated(dev float64) bool
}

// Phantom describes the phantom-operation current a technique wants this
// cycle. At most one of the fields is non-zero.
type Phantom struct {
	// TargetAmps, when positive, tops the core current up to this level
	// (resonance tuning's second-level response holds a medium level).
	TargetAmps float64
	// FireAmps, when positive, injects exactly this much extra current
	// (the high-voltage phantom-fire response of [10]).
	FireAmps float64
}

// Observation is everything a technique may see after a simulated cycle.
type Observation struct {
	// Cycle is the index of the cycle just simulated.
	Cycle uint64
	// SensedAmps is the core current as reported by the on-die current
	// sensor (whole-amp precision).
	SensedAmps float64
	// TotalAmps is the true core current including phantom operations.
	TotalAmps float64
	// DeviationVolts is the true supply deviation (IR drop removed).
	DeviationVolts float64
	// IssuedEstAmps is the summed a-priori current estimate of the
	// instructions issued this cycle (what damping accounts).
	IssuedEstAmps float64
	// Activity is the pipeline activity of the cycle. It points into a
	// buffer the simulator reuses every cycle: read it during Observe,
	// copy it to retain it.
	Activity *cpu.Activity
}

// Technique is an inductive-noise control scheme plugged into the loop.
// Implementations adapt the tuning, voltctl, and damping controllers.
type Technique interface {
	// Name identifies the technique in reports.
	Name() string
	// Next returns the pipeline throttle and phantom request for the
	// coming cycle.
	Next() (cpu.Throttle, Phantom)
	// Observe delivers the cycle's outcomes so the technique can decide
	// its next response.
	Observe(obs Observation)
}

// Config assembles a simulation.
type Config struct {
	CPU    cpu.Config
	Power  power.Config
	Supply circuit.Params
	// TwoStageSupply, when non-nil, replaces Supply with the full
	// two-loop network of Section 2.2, exhibiting both the low- and
	// medium-frequency resonances.
	TwoStageSupply *circuit.TwoStageParams
	// SensorDelayCycles delays the current sensor readings fed to the
	// technique (resonance tuning tolerates several cycles).
	SensorDelayCycles int
	// SensorResolutionAmps sets the current-sensor quantisation step;
	// zero means the paper's whole-amp sensors. Negative means exact
	// readings.
	SensorResolutionAmps float64
	// MaxCycles bounds the simulation; zero means a generous default
	// derived from the instruction stream (guards against livelock).
	MaxCycles uint64
}

// DefaultConfig returns the paper's evaluation system: the Table 1 core,
// power envelope, and supply.
func DefaultConfig() Config {
	return Config{
		CPU:    cpu.DefaultConfig(),
		Power:  power.DefaultConfig(),
		Supply: circuit.Table1(),
	}
}

// Result summarises one simulation run.
type Result struct {
	App       string
	Technique string

	Cycles       uint64
	Instructions uint64
	IPC          float64

	// EnergyJ is total energy including phantom operations.
	EnergyJ float64
	// PhantomJ is the part of EnergyJ spent on phantom operations.
	PhantomJ float64

	Violations        uint64
	ViolationFraction float64
	PeakDeviationV    float64

	MeanAmps float64
	MinAmps  float64
	MaxAmps  float64

	// Tech aggregates the technique controller's cycle accounting so a
	// Result is self-contained even when replayed from a cache instead
	// of re-simulated (the controller instance is gone by then).
	Tech TechStats
}

// TechStats is the per-run controller accounting carried in a Result.
// The base machine leaves it zero.
type TechStats struct {
	// ControllerCycles is the number of cycles the controller observed.
	ControllerCycles uint64
	// FirstLevelCycles and SecondLevelCycles count cycles spent in
	// resonance tuning's two response tiers.
	FirstLevelCycles  uint64
	SecondLevelCycles uint64
	// ResponseCycles counts cycles any response was active (for [10]'s
	// voltage control and damping's constrained cycles; for tuning it
	// is the two tiers combined).
	ResponseCycles uint64
}

// techStatser is implemented by techniques that report TechStats.
type techStatser interface {
	TechStats() TechStats
}

// EnergyDelay returns the energy-delay product in joule-seconds, using
// the supply clock to convert cycles to seconds.
func (r Result) EnergyDelay(clockHz float64) float64 {
	return r.EnergyJ * float64(r.Cycles) / clockHz
}

// TracePoint is one cycle of a captured waveform (for Figures 3 and 4).
type TracePoint struct {
	Cycle          uint64
	TotalAmps      float64
	DeviationVolts float64
	EventCount     int
	ResponseLevel  int
}

// Simulator runs one application under one technique.
type Simulator struct {
	cfg    Config
	core   *cpu.Core
	pwr    *power.Model
	supply supplySim
	sens   *sensor.Current
	tech   Technique

	classAmps [cpu.NumClasses]float64
	phantomJ  float64
	act       cpu.Activity // per-cycle activity buffer, reused to avoid copies

	trace     func(TracePoint)
	countFn   func() int // technique's event count for tracing
	levelFn   func() int
	violation uint64
	peakDev   float64
	sumAmps   float64
	minAmps   float64
	maxAmps   float64
	cycles    uint64
}

// New builds a simulator for the given instruction source and technique.
// tech may be nil for the base (uncontrolled) processor.
func New(cfg Config, src cpu.Source, tech Technique) (*Simulator, error) {
	if err := cfg.CPU.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := cfg.Power.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := cfg.Supply.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if cfg.TwoStageSupply != nil {
		if err := cfg.TwoStageSupply.Validate(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	pwr := power.New(cfg.Power, cfg.CPU)
	core := cpu.New(cfg.CPU, src)
	core.SetClassCurrentEstimates(pwr.ClassAmps())
	var sens *sensor.Current
	if cfg.SensorDelayCycles > 0 {
		sens = sensor.NewCurrentDelayed(cfg.SensorDelayCycles)
	} else {
		sens = sensor.NewCurrent()
	}
	switch {
	case cfg.SensorResolutionAmps > 0:
		sens.ResolutionAmps = cfg.SensorResolutionAmps
	case cfg.SensorResolutionAmps < 0:
		sens.ResolutionAmps = 0 // exact
	}
	var supply supplySim
	if cfg.TwoStageSupply != nil {
		supply = circuit.NewTwoStageSimulator(*cfg.TwoStageSupply, pwr.IdleAmps())
	} else {
		supply = circuit.NewSimulator(cfg.Supply, pwr.IdleAmps())
	}
	return &Simulator{
		cfg:       cfg,
		core:      core,
		pwr:       pwr,
		supply:    supply,
		sens:      sens,
		tech:      tech,
		classAmps: pwr.ClassAmps(),
		minAmps:   math.Inf(1),
		maxAmps:   math.Inf(-1),
	}, nil
}

// Power exposes the power model (for technique setup needing PhantomFire
// or mid-level amps).
func (s *Simulator) Power() *power.Model { return s.pwr }

// Core exposes the pipeline model.
func (s *Simulator) Core() *cpu.Core { return s.core }

// SetTrace installs a per-cycle trace callback, plus optional functions
// reporting the technique's resonant event count and response level.
func (s *Simulator) SetTrace(f func(TracePoint), count func() int, level func() int) {
	s.trace = f
	s.countFn = count
	s.levelFn = level
}

// StepCycle advances the whole system one clock cycle.
func (s *Simulator) StepCycle() {
	throttle := cpu.Unlimited
	var ph Phantom
	if s.tech != nil {
		throttle, ph = s.tech.Next()
	}
	act := &s.act
	s.core.StepInto(throttle, act)
	coreJ := s.pwr.Step(act, 0)
	coreAmps := s.pwr.CurrentAmps(coreJ)

	phantomAmps := 0.0
	switch {
	case ph.TargetAmps > 0 && coreAmps < ph.TargetAmps:
		phantomAmps = ph.TargetAmps - coreAmps
	case ph.FireAmps > 0:
		phantomAmps = ph.FireAmps
	}
	if phantomAmps > 0 {
		s.phantomJ += phantomAmps * s.cfg.Power.Vdd / s.cfg.Power.ClockHz
	}
	totalAmps := coreAmps + phantomAmps

	dev := s.supply.Step(totalAmps)
	if a := math.Abs(dev); a > s.peakDev {
		s.peakDev = a
	}
	if s.supply.Violated(dev) {
		s.violation++
	}

	est := 0.0
	for cl := cpu.Class(0); cl < cpu.NumClasses; cl++ {
		if n := act.Issued[cl]; n > 0 {
			est += float64(n) * s.classAmps[cl]
		}
	}
	sensed := s.sens.Read(totalAmps)
	if s.tech != nil {
		s.tech.Observe(Observation{
			Cycle:          s.cycles,
			SensedAmps:     sensed,
			TotalAmps:      totalAmps,
			DeviationVolts: dev,
			IssuedEstAmps:  est,
			Activity:       act,
		})
	}

	s.sumAmps += totalAmps
	if totalAmps < s.minAmps {
		s.minAmps = totalAmps
	}
	if totalAmps > s.maxAmps {
		s.maxAmps = totalAmps
	}
	if s.trace != nil {
		tp := TracePoint{Cycle: s.cycles, TotalAmps: totalAmps, DeviationVolts: dev}
		if s.countFn != nil {
			tp.EventCount = s.countFn()
		}
		if s.levelFn != nil {
			tp.ResponseLevel = s.levelFn()
		}
		s.trace(tp)
	}
	s.cycles++
}

// Run simulates until the instruction stream drains (or MaxCycles) and
// returns the result. appName and techName label the result.
func (s *Simulator) Run(appName, techName string) Result {
	maxCycles := s.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 1 << 62
	}
	for !s.core.Done() && s.cycles < maxCycles {
		s.StepCycle()
	}
	res := Result{
		App:            appName,
		Technique:      techName,
		Cycles:         s.cycles,
		Instructions:   s.core.Committed(),
		IPC:            s.core.IPC(),
		EnergyJ:        s.pwr.TotalJoules() + s.phantomJ,
		PhantomJ:       s.phantomJ,
		Violations:     s.violation,
		PeakDeviationV: s.peakDev,
	}
	if ts, ok := s.tech.(techStatser); ok {
		res.Tech = ts.TechStats()
	}
	if s.cycles > 0 {
		res.ViolationFraction = float64(s.violation) / float64(s.cycles)
		res.MeanAmps = s.sumAmps / float64(s.cycles)
		res.MinAmps = s.minAmps
		res.MaxAmps = s.maxAmps
	}
	return res
}
