// Package sim couples the pipeline model, the power model, the
// power-supply circuit, and an (optional) inductive-noise control
// technique into the per-cycle simulation loop of the paper's
// methodology (Section 4):
//
//	throttle → core cycle → activity → power/current → supply voltage
//	→ sensors → technique → next throttle
//
// Phantom operations requested by a technique (the second-level response
// of resonance tuning, the phantom-fire of [10], damping's make-up
// current) are added to the cycle's current and energy but perform no
// work. Noise-margin violations are counted from the simulated supply
// deviation each cycle.
package sim

import (
	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/power"
)

// Phantom describes the phantom-operation current a technique wants this
// cycle. At most one of the fields is non-zero.
type Phantom struct {
	// TargetAmps, when positive, tops the core current up to this level
	// (resonance tuning's second-level response holds a medium level).
	TargetAmps float64
	// FireAmps, when positive, injects exactly this much extra current
	// (the high-voltage phantom-fire response of [10]).
	FireAmps float64
}

// Observation is everything a technique may see after a simulated cycle.
type Observation struct {
	// Cycle is the index of the cycle just simulated.
	Cycle uint64
	// SensedAmps is the core current as reported by the on-die current
	// sensor (whole-amp precision).
	SensedAmps float64
	// TotalAmps is the true core current including phantom operations.
	TotalAmps float64
	// DeviationVolts is the true supply deviation (IR drop removed).
	DeviationVolts float64
	// IssuedEstAmps is the summed a-priori current estimate of the
	// instructions issued this cycle (what damping accounts).
	IssuedEstAmps float64
	// Activity is the pipeline activity of the cycle. It points into a
	// buffer the simulator reuses every cycle: read it during Observe,
	// copy it to retain it.
	Activity *cpu.Activity
	// PerDomain carries the per-domain view of the cycle on machines
	// whose PDN exposes more than one supply domain; it is nil on
	// single-domain machines, which keeps Observation comparable with ==
	// there (the fork and batch differential harnesses rely on that).
	// Like Activity it points into a buffer reused every cycle.
	PerDomain *DomainObservation
}

// DomainObservation is the per-supply-domain slice of an Observation:
// index d describes domain d of the machine's PDN. The slices are
// buffers the machine reuses every cycle — read during Observe, copy to
// retain.
type DomainObservation struct {
	// SensedAmps is each domain's current as its rail sensor reports it.
	SensedAmps []float64
	// Amps is each domain's true draw including its phantom share.
	Amps []float64
	// DeviationVolts is each domain's true supply deviation.
	DeviationVolts []float64
}

// Technique is an inductive-noise control scheme plugged into the loop.
// Implementations adapt the tuning, voltctl, and damping controllers.
type Technique interface {
	// Name identifies the technique in reports.
	Name() string
	// Next returns the pipeline throttle and phantom request for the
	// coming cycle.
	Next() (cpu.Throttle, Phantom)
	// Observe delivers the cycle's outcomes so the technique can decide
	// its next response. The pointer aims at a buffer reused every
	// cycle: read during Observe, copy to retain.
	Observe(obs *Observation)
}

// Config assembles a simulation.
type Config struct {
	CPU    cpu.Config
	Power  power.Config
	Supply circuit.Params
	// TwoStageSupply, when non-nil, replaces Supply with the full
	// two-loop network of Section 2.2, exhibiting both the low- and
	// medium-frequency resonances.
	TwoStageSupply *circuit.TwoStageParams
	// PDN, when non-nil, supersedes Supply and TwoStageSupply: the
	// power-delivery network is built from the registered network kind it
	// selects. A multi-domain kind splits the power model's current
	// per-domain (by unit assignment), senses each rail separately, and
	// checks each domain against its own noise margin.
	PDN *circuit.NetworkConfig
	// SensorDelayCycles delays the current sensor readings fed to the
	// technique (resonance tuning tolerates several cycles).
	SensorDelayCycles int
	// SensorResolutionAmps sets the current-sensor quantisation step;
	// zero means the paper's whole-amp sensors. Negative means exact
	// readings.
	SensorResolutionAmps float64
	// SensorDomain selects which supply domain the scalar SensedAmps
	// observation reports on a multi-domain PDN: zero (the default) is
	// the aggregate core current, d ≥ 1 is domain d-1's rail sensor.
	// Ignored on single-domain machines.
	SensorDomain int
	// MaxCycles bounds the simulation; zero means a generous default
	// derived from the instruction stream (guards against livelock).
	MaxCycles uint64
}

// DefaultConfig returns the paper's evaluation system: the Table 1 core,
// power envelope, and supply.
func DefaultConfig() Config {
	return Config{
		CPU:    cpu.DefaultConfig(),
		Power:  power.DefaultConfig(),
		Supply: circuit.Table1(),
	}
}

// Result summarises one simulation run.
type Result struct {
	App       string
	Technique string

	Cycles       uint64
	Instructions uint64
	IPC          float64

	// EnergyJ is total energy including phantom operations.
	EnergyJ float64
	// PhantomJ is the part of EnergyJ spent on phantom operations.
	PhantomJ float64

	Violations        uint64
	ViolationFraction float64
	PeakDeviationV    float64

	MeanAmps float64
	MinAmps  float64
	MaxAmps  float64

	// Tech aggregates the technique controller's cycle accounting so a
	// Result is self-contained even when replayed from a cache instead
	// of re-simulated (the controller instance is gone by then).
	Tech TechStats
}

// TechStats is the per-run controller accounting carried in a Result.
// The base machine leaves it zero.
type TechStats struct {
	// ControllerCycles is the number of cycles the controller observed.
	ControllerCycles uint64
	// FirstLevelCycles and SecondLevelCycles count cycles spent in
	// resonance tuning's two response tiers.
	FirstLevelCycles  uint64
	SecondLevelCycles uint64
	// ResponseCycles counts cycles any response was active (for [10]'s
	// voltage control and damping's constrained cycles; for tuning it
	// is the two tiers combined).
	ResponseCycles uint64
}

// techStatser is implemented by techniques that report TechStats.
type techStatser interface {
	TechStats() TechStats
}

// EnergyDelay returns the energy-delay product in joule-seconds, using
// the supply clock to convert cycles to seconds.
func (r Result) EnergyDelay(clockHz float64) float64 {
	return r.EnergyJ * float64(r.Cycles) / clockHz
}

// TracePoint is one cycle of a captured waveform (for Figures 3 and 4).
type TracePoint struct {
	Cycle          uint64
	TotalAmps      float64
	DeviationVolts float64
	EventCount     int
	ResponseLevel  int
}

// Simulator runs one application under one technique: a Machine plus
// the technique control loop (tech.Next → Machine.Step → tech.Observe)
// and optional per-cycle tracing. The batch kernel in
// internal/engine/batchkernel drives Machines directly; the scalar path
// here is the differential reference it is pinned against.
type Simulator struct {
	m    *Machine
	tech Technique

	trace   func(TracePoint)
	countFn func() int // technique's event count for tracing
	levelFn func() int
}

// New builds a simulator for the given instruction source and technique.
// tech may be nil for the base (uncontrolled) processor.
func New(cfg Config, src cpu.Source, tech Technique) (*Simulator, error) {
	m, err := NewMachine(cfg, src)
	if err != nil {
		return nil, err
	}
	return &Simulator{m: m, tech: tech}, nil
}

// Power exposes the power model (for technique setup needing PhantomFire
// or mid-level amps).
func (s *Simulator) Power() *power.Model { return s.m.Power() }

// Core exposes the pipeline model.
func (s *Simulator) Core() *cpu.Core { return s.m.Core() }

// Machine exposes the technique-independent simulated system.
func (s *Simulator) Machine() *Machine { return s.m }

// SetTrace installs a per-cycle trace callback, plus optional functions
// reporting the technique's resonant event count and response level.
func (s *Simulator) SetTrace(f func(TracePoint), count func() int, level func() int) {
	s.trace = f
	s.countFn = count
	s.levelFn = level
}

// StepCycle advances the whole system one clock cycle.
func (s *Simulator) StepCycle() {
	throttle := cpu.Unlimited
	var ph Phantom
	if s.tech != nil {
		throttle, ph = s.tech.Next()
	}
	obs := s.m.Step(throttle, ph)
	if s.tech != nil {
		s.tech.Observe(obs)
	}
	if s.trace != nil {
		tp := TracePoint{Cycle: obs.Cycle, TotalAmps: obs.TotalAmps, DeviationVolts: obs.DeviationVolts}
		if s.countFn != nil {
			tp.EventCount = s.countFn()
		}
		if s.levelFn != nil {
			tp.ResponseLevel = s.levelFn()
		}
		s.trace(tp)
	}
}

// Run simulates until the instruction stream drains (or MaxCycles) and
// returns the result. appName and techName label the result.
func (s *Simulator) Run(appName, techName string) Result {
	maxCycles := s.m.CycleLimit()
	for !s.m.Done() && s.m.Cycles() < maxCycles {
		s.StepCycle()
	}
	res := s.m.Result(appName, techName)
	res.Tech = TechStatsOf(s.tech)
	return res
}
