package sim

import (
	"testing"

	"repro/internal/baselines/convctl"
	"repro/internal/baselines/wavelet"
	"repro/internal/circuit"
	"repro/internal/workload"
)

func TestConvolutionControlInLoop(t *testing.T) {
	app, err := workload.ByName("lucas")
	if err != nil {
		t.Fatal(err)
	}
	base := mustRun(t, app, nil, 250_000)
	tech := NewConvolutionControl(convctl.Config{Supply: circuit.Table1()}, 30)
	ctl := mustRun(t, app, tech, 250_000)
	if base.Violations == 0 {
		t.Fatal("no base violations")
	}
	if ctl.Violations > base.Violations/5 {
		t.Errorf("convolution control left %d of %d violations", ctl.Violations, base.Violations)
	}
	st := tech.Stats()
	if st.ResponseCycles == 0 {
		t.Error("convolution control never responded")
	}
	// Its model-based prediction should be accurate to a few millivolts
	// with exact current observation.
	if st.WorstAbsError > 0.02 {
		t.Errorf("worst prediction error %g V", st.WorstAbsError)
	}
}

func TestWaveletControlInLoop(t *testing.T) {
	app, err := workload.ByName("lucas")
	if err != nil {
		t.Fatal(err)
	}
	base := mustRun(t, app, nil, 250_000)
	tech := NewWaveletControl(wavelet.Config{})
	ctl := mustRun(t, app, tech, 250_000)
	if ctl.Violations > base.Violations/2 {
		t.Errorf("wavelet control left %d of %d violations", ctl.Violations, base.Violations)
	}
	if tech.Stats().Responses == 0 {
		t.Error("wavelet control never responded")
	}
}

func TestDualBandTuningInLoop(t *testing.T) {
	// On the standard single-stage supply with a medium-band violator,
	// dual-band tuning must behave like plain medium tuning: the low
	// controller stays quiet.
	app, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	lowCfg := table1Tuning()
	lowCfg.Detector.HalfPeriodLo = 40
	lowCfg.Detector.HalfPeriodHi = 60
	tech := NewDualBandTuning(table1Tuning(), lowCfg, 25)
	base := mustRun(t, app, nil, 250_000)
	dual := mustRun(t, app, tech, 250_000)
	if dual.Violations > base.Violations/4 {
		t.Errorf("dual-band left %d of %d violations", dual.Violations, base.Violations)
	}
	if tech.MediumStats().Cycles == 0 {
		t.Error("medium controller never ran")
	}
	if tech.LowStats().Cycles == 0 {
		t.Error("low controller never ran (decimation broken)")
	}
	// The low controller steps once per 25 cycles.
	if m, l := tech.MediumStats().Cycles, tech.LowStats().Cycles; l < m/26 || l > m/24 {
		t.Errorf("decimation ratio off: medium %d cycles, low %d", m, l)
	}
}

func TestDualBandPanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDualBandTuning(table1Tuning(), table1Tuning(), 0)
}

func TestNewTechniqueNames(t *testing.T) {
	if NewConvolutionControl(convctl.Config{Supply: circuit.Table1()}, 30).Name() != "convolution-control" {
		t.Error("convctl name")
	}
	if NewWaveletControl(wavelet.Config{}).Name() != "wavelet-control" {
		t.Error("wavelet name")
	}
	if NewDualBandTuning(table1Tuning(), table1Tuning(), 25).Name() != "dual-band-tuning" {
		t.Error("dual-band name")
	}
}

// mustRun executes one app under one technique.
func mustRun(t *testing.T, app workload.App, tech Technique, insts uint64) Result {
	t.Helper()
	g := workload.NewGenerator(app.Params, insts)
	s, err := New(DefaultConfig(), g, tech)
	if err != nil {
		t.Fatal(err)
	}
	name := "base"
	if tech != nil {
		name = tech.Name()
	}
	return s.Run(app.Params.Name, name)
}

func TestTwoStageSupplyInLoop(t *testing.T) {
	supply := circuit.Table1TwoStage()
	cfg := DefaultConfig()
	cfg.TwoStageSupply = &supply
	app, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewGenerator(app.Params, 80_000)
	s, err := New(cfg, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run("gzip", "base")
	if res.Cycles == 0 || res.Instructions != 80_000 {
		t.Fatalf("two-stage run incomplete: %+v", res)
	}
	// An invalid two-stage config is rejected.
	bad := DefaultConfig()
	badSupply := supply
	badSupply.C1 = 0
	bad.TwoStageSupply = &badSupply
	if _, err := New(bad, workload.NewGenerator(app.Params, 10), nil); err == nil {
		t.Error("invalid two-stage supply accepted")
	}
}
