package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/sim"
)

// WorkerOptions configures one worker process's claim loop.
type WorkerOptions struct {
	// ID identifies this worker in lease files and logs; empty means
	// "<hostname>-<pid>".
	ID string
	// LeaseExpiry is how long a lease may go unrefreshed before other
	// workers treat its holder as dead and steal it; zero means
	// DefaultLeaseExpiry. Every cooperating worker must use the same
	// expiry, and it must comfortably exceed Heartbeat.
	LeaseExpiry time.Duration
	// Heartbeat is the holder's lease-refresh interval; zero means
	// LeaseExpiry/4.
	Heartbeat time.Duration
	// Poll is how long an idle worker (nothing claimable, grid
	// incomplete) sleeps before re-scanning; zero means DefaultPoll.
	Poll time.Duration
	// Batch bounds how many points one claim pass gathers before
	// running them as a single engine batch — claimed neighbours share
	// the lockstep kernel exactly as a single-process sweep's points
	// do. Zero means the engine's parallelism.
	Batch int
	// DieAfter is a crash-recovery test hook: after completing this
	// many points the worker claims one more lease and exits with
	// ErrAbandoned without running or releasing it, simulating a
	// worker that died mid-point. Zero disables the hook.
	DieAfter int
	// Log, when non-nil, receives one line per batch, steal, and
	// completion.
	Log io.Writer
	// OnPoint, when non-nil, is invoked after each point this worker
	// completes (calls are serialized).
	OnPoint func()
}

// WorkerStats summarizes one worker run.
type WorkerStats struct {
	// Completed counts points this worker claimed and ran to a
	// finished result (including points served from the shared cache
	// after a redundant claim).
	Completed int
	// Stolen counts completed points whose lease was taken over from
	// an expired holder.
	Stolen int
	// Batches counts engine batches (claim passes that found work).
	Batches int
}

// ErrAbandoned is returned when the DieAfter test hook fires: the
// worker exited holding an unreleased, unrun lease.
var ErrAbandoned = errors.New("shard: worker died holding a claimed lease (die-after test hook)")

func (o WorkerOptions) withDefaults(eng *engine.Engine) WorkerOptions {
	if o.ID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		o.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.LeaseExpiry <= 0 {
		o.LeaseExpiry = DefaultLeaseExpiry
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = o.LeaseExpiry / 4
	}
	if o.Poll <= 0 {
		o.Poll = DefaultPoll
	}
	if o.Batch <= 0 {
		o.Batch = eng.Parallelism()
	}
	return o
}

// rotation spreads workers' scan origins around the grid so N workers
// starting together mostly race for different points instead of
// serializing on the same lease files.
func rotation(id string, n int) int {
	if n == 0 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(n))
}

// RunWorker claims and simulates points of b's grid through eng until
// every point has a finished entry in the shared cache, then returns.
// eng must be backed by the board's cache directory — the disk tier is
// how results are published to the other workers and the coordinator.
//
// The loop: scan the grid (from a per-worker rotation offset), claim
// up to Batch unfinished, unleased points and run them as one engine
// batch under a heartbeat; when nothing is claimable, steal leases
// whose holders stopped heartbeating for LeaseExpiry; when neither
// yields work, sleep Poll and re-scan. A simulation error is terminal:
// the worker releases its leases and returns the error (manifest specs
// are validated at publish time, so a runtime error is not retryable
// configuration noise but a real defect every retry would hit too).
func RunWorker(ctx context.Context, eng *engine.Engine, b *Board, o WorkerOptions) (WorkerStats, error) {
	o = o.withDefaults(eng)
	var st WorkerStats
	if err := os.MkdirAll(b.leaseDir, 0o755); err != nil {
		return st, fmt.Errorf("shard: %w", err)
	}
	logf := func(format string, args ...any) {
		if o.Log != nil {
			fmt.Fprintf(o.Log, "shard-worker %s: %s\n", o.ID, fmt.Sprintf(format, args...))
		}
	}
	n := len(b.Keys)
	rot := rotation(o.ID, n)
	for {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		done := b.doneSet()
		remaining := 0
		for _, k := range b.Keys {
			if _, ok := done[k]; !ok {
				remaining++
			}
		}
		if remaining == 0 {
			logf("grid %s complete: %d points, %d run here (%d stolen) in %d batches",
				b.GridID, n, st.Completed, st.Stolen, st.Batches)
			return st, nil
		}

		if o.DieAfter > 0 && st.Completed >= o.DieAfter {
			// Test hook: die holding a fresh lease, like a worker killed
			// between claim and result.
			for j := 0; j < n; j++ {
				i := (rot + j) % n
				if _, ok := done[b.Keys[i]]; ok {
					continue
				}
				if b.claim(i, o.ID) {
					logf("die-after %d: abandoning claimed lease for point %d (%s)", o.DieAfter, i, b.Keys[i])
					break
				}
			}
			return st, ErrAbandoned
		}

		// Claim pass: unfinished points nobody leases.
		var batch []int
		stolen := 0
		for j := 0; j < n && len(batch) < o.Batch; j++ {
			i := (rot + j) % n
			if _, ok := done[b.Keys[i]]; ok {
				continue
			}
			if b.claim(i, o.ID) {
				batch = append(batch, i)
			}
		}
		// Steal pass: only when nothing was free — stragglers' leases
		// whose holders stopped heartbeating.
		if len(batch) == 0 {
			for j := 0; j < n && len(batch) < o.Batch; j++ {
				i := (rot + j) % n
				if _, ok := done[b.Keys[i]]; ok {
					continue
				}
				age, held := b.leaseAge(i)
				if held && age >= o.LeaseExpiry && b.steal(i, o.ID) {
					logf("stole expired lease for point %d (%s, idle %s)", i, b.Keys[i], age.Round(time.Millisecond))
					batch = append(batch, i)
					stolen++
				}
			}
		}
		if len(batch) == 0 {
			// Everything unfinished is leased to live workers; wait.
			select {
			case <-ctx.Done():
				return st, ctx.Err()
			case <-time.After(o.Poll):
			}
			continue
		}

		if err := b.runBatch(ctx, eng, o, batch); err != nil {
			return st, err
		}
		st.Completed += len(batch)
		st.Stolen += stolen
		st.Batches++
		logf("batch of %d done (%d/%d points finished somewhere)", len(batch), n-remaining+len(batch), n)
	}
}

// runBatch simulates one claim pass's points as a single engine batch,
// heartbeating every held lease until the batch resolves, then
// releases the leases. Results reach the other workers through the
// engine's disk tier as each entry is renamed into place.
func (b *Board) runBatch(ctx context.Context, eng *engine.Engine, o WorkerOptions, batch []int) error {
	stop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(o.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				for _, i := range batch {
					b.refresh(i)
				}
			}
		}
	}()
	specs := make([]engine.Spec, len(batch))
	for bi, i := range batch {
		specs[bi] = b.Specs[i]
	}
	_, err := eng.RunAll(ctx, specs, func(int, sim.Result) {
		if o.OnPoint != nil {
			o.OnPoint()
		}
	})
	close(stop)
	<-hbDone
	for _, i := range batch {
		b.release(i, o.ID)
	}
	return err
}
