package shard

import (
	"encoding/json"
	"os"
	"time"
)

// leaseInfo is the JSON body of a lease file. Liveness is judged by
// the file's mtime (refreshed by the holder's heartbeat), never by the
// body — the body exists for release-by-holder checks and operator
// forensics on a stuck grid.
type leaseInfo struct {
	// Worker identifies the current holder.
	Worker string `json:"worker"`
	// Claimed is when the current holder took the lease (RFC 3339).
	Claimed string `json:"claimed"`
	// Stolen marks a lease taken over from an expired holder.
	Stolen bool `json:"stolen,omitempty"`
}

// leasePath places point i's lease by full content key, mirroring the
// cache tier's file-per-key layout.
func (b *Board) leasePath(i int) string {
	return b.leaseDir + string(os.PathSeparator) + b.Keys[i].Hex() + ".lease"
}

// claim atomically claims point i for worker id: O_EXCL creation means
// exactly one claimant wins; everyone else sees the file exist and
// moves on. The lease body is written after creation — a reader racing
// the write sees an empty body, which only ever degrades a
// release-by-holder check, never liveness (mtime is already fresh).
func (b *Board) claim(i int, id string) bool {
	f, err := os.OpenFile(b.leasePath(i), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return false
	}
	json.NewEncoder(f).Encode(leaseInfo{Worker: id, Claimed: time.Now().UTC().Format(time.RFC3339Nano)})
	f.Close()
	return true
}

// leaseAge returns how long ago point i's lease was last refreshed;
// held is false when no lease file exists.
func (b *Board) leaseAge(i int) (age time.Duration, held bool) {
	info, err := os.Stat(b.leasePath(i))
	if err != nil {
		return 0, false
	}
	return time.Since(info.ModTime()), true
}

// steal takes over point i's lease for worker id by atomically
// replacing the lease file. The caller has observed the lease expired;
// the replacement resets the mtime, so concurrent stealers re-race on
// a fresh lease and at most a bounded amount of duplicate work happens
// — which idempotent, content-addressed results make harmless.
func (b *Board) steal(i int, id string) bool {
	blob, err := json.Marshal(leaseInfo{Worker: id, Claimed: time.Now().UTC().Format(time.RFC3339Nano), Stolen: true})
	if err != nil {
		return false
	}
	return atomicWrite(b.leasePath(i), blob) == nil
}

// refresh is the holder's heartbeat: bump the lease mtime so idle
// workers keep counting it live. Best-effort — if the lease was stolen
// and released meanwhile, the refresh fails silently and the holder
// finds out at release time.
func (b *Board) refresh(i int) {
	now := time.Now()
	os.Chtimes(b.leasePath(i), now, now)
}

// release removes point i's lease if id still holds it. A lease that
// was stolen while this holder (slowly) finished belongs to the thief
// now and is left alone; the thief's own run will release it. The
// holder check is best-effort (read then remove, not atomic): the
// window is microseconds against an expiry measured in seconds, and
// the worst outcome of losing the race — one more worker re-running an
// already-finished, disk-served point — is harmless by idempotency.
func (b *Board) release(i int, id string) {
	path := b.leasePath(i)
	blob, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var li leaseInfo
	if err := json.Unmarshal(blob, &li); err == nil && li.Worker != id {
		return
	}
	os.Remove(path)
}
