package shard

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sim"
)

// gridSpecs is a small mixed grid: two baselines and two tuned points.
func gridSpecs() []engine.Spec {
	tc := engine.DefaultTuningConfig(100)
	tc.InitialResponseThreshold = 1
	return []engine.Spec{
		{App: "lucas", Instructions: 10_000},
		{App: "parser", Instructions: 10_000},
		{App: "lucas", Instructions: 10_000, Technique: engine.TechniqueTuning, Tuning: &tc},
		{App: "parser", Instructions: 10_000, Technique: engine.TechniqueDamping},
	}
}

// TestPublishOpenRoundTrip: a board published by one process and
// opened from the manifest by another agrees on every point's content
// key and on the grid id.
func TestPublishOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	specs := gridSpecs()
	pub, err := Publish(dir, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pub.Keys) != len(specs) || len(pub.Specs) != len(specs) {
		t.Fatalf("published board holds %d keys / %d specs, want %d", len(pub.Keys), len(pub.Specs), len(specs))
	}

	got, err := Open(context.Background(), dir, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got.GridID != pub.GridID {
		t.Errorf("opened grid id %s, published %s", got.GridID, pub.GridID)
	}
	for i := range specs {
		want, _ := specs[i].Key()
		if got.Keys[i] != want {
			t.Errorf("point %d: opened key %s, want %s", i, got.Keys[i], want)
		}
	}

	// Republishing an extended grid atomically replaces the manifest.
	extended := append(gridSpecs(), engine.Spec{App: "swim", Instructions: 10_000})
	pub2, err := Publish(dir, extended)
	if err != nil {
		t.Fatal(err)
	}
	if pub2.GridID == pub.GridID {
		t.Error("distinct point sets share a grid id")
	}
	got2, err := Open(context.Background(), dir, time.Millisecond)
	if err != nil || got2.GridID != pub2.GridID {
		t.Errorf("reopen after republish: grid %s, %v; want %s", got2.GridID, err, pub2.GridID)
	}
}

// TestPublishRejectsBadGrids: empty grids, invalid specs, and Trace
// callbacks (which cannot cross a process boundary) are publish-time
// errors, not worker-time surprises.
func TestPublishRejectsBadGrids(t *testing.T) {
	dir := t.TempDir()
	if _, err := Publish(dir, nil); err == nil {
		t.Error("empty grid published")
	}
	if _, err := Publish(dir, []engine.Spec{{App: "lucas", Technique: "no-such-technique"}}); err == nil {
		t.Error("invalid spec published")
	}
	traced := []engine.Spec{{App: "lucas", Instructions: 10_000, Trace: func(sim.TracePoint) {}}}
	if _, err := Publish(dir, traced); err == nil || !strings.Contains(err.Error(), "Trace") {
		t.Errorf("traced spec published (err %v)", err)
	}
	if _, err := os.Stat(filepath.Join(Dir(dir), manifestName)); !os.IsNotExist(err) {
		t.Error("rejected publish left a manifest behind")
	}
}

// TestOpenWaitsForPublish: a worker started before its coordinator
// polls until the manifest lands; with no publish it returns the
// context's error.
func TestOpenWaitsForPublish(t *testing.T) {
	dir := t.TempDir()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := Open(ctx, dir, 5*time.Millisecond); err == nil {
		t.Error("Open returned without a manifest")
	}

	type result struct {
		b   *Board
		err error
	}
	ch := make(chan result, 1)
	go func() {
		b, err := Open(context.Background(), dir, 2*time.Millisecond)
		ch <- result{b, err}
	}()
	time.Sleep(20 * time.Millisecond)
	pub, err := Publish(dir, gridSpecs())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		if r.err != nil || r.b.GridID != pub.GridID {
			t.Errorf("Open after delayed publish: %v, %v; want grid %s", r.b, r.err, pub.GridID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Open never observed the published manifest")
	}
}

// TestOpenRejectsIncompatibleManifests: corrupt JSON, an unknown
// schema version, and a grid id that doesn't match locally recomputed
// keys (a manifest from a binary with different normalization rules)
// are all hard errors — waiting on such a grid would hang forever.
func TestOpenRejectsIncompatibleManifests(t *testing.T) {
	write := func(t *testing.T, blob []byte) string {
		dir := t.TempDir()
		if err := os.MkdirAll(Dir(dir), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(Dir(dir), manifestName), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	open := func(dir string) error {
		_, err := Open(context.Background(), dir, time.Millisecond)
		return err
	}

	if err := open(write(t, []byte("not json"))); err == nil {
		t.Error("corrupt manifest accepted")
	}

	good, err := json.Marshal(manifestFile{Version: manifestVersion + 1, GridID: "x", Specs: []engine.SpecWire{{App: "lucas"}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := open(write(t, good)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future manifest version accepted (err %v)", err)
	}

	skewed, err := json.Marshal(manifestFile{Version: manifestVersion, GridID: "0123456789abcdef", Specs: []engine.SpecWire{{App: "lucas", Instructions: 10_000}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := open(write(t, skewed)); err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Errorf("grid-id mismatch accepted (err %v)", err)
	}
}

// TestLeaseSemantics: claim is exclusive, expiry is judged by mtime
// age, steal atomically replaces an expired lease, and release only
// removes the caller's own lease.
func TestLeaseSemantics(t *testing.T) {
	dir := t.TempDir()
	b, err := Publish(dir, gridSpecs())
	if err != nil {
		t.Fatal(err)
	}

	if !b.claim(0, "w1") {
		t.Fatal("first claim refused")
	}
	if b.claim(0, "w2") {
		t.Fatal("second claim of a held lease succeeded")
	}
	age, held := b.leaseAge(0)
	if !held || age > 10*time.Second {
		t.Fatalf("fresh lease: age %v, held %v", age, held)
	}
	if _, held := b.leaseAge(1); held {
		t.Error("unclaimed point reports a lease")
	}

	// A non-holder's release must leave the lease alone.
	b.release(0, "w2")
	if _, held := b.leaseAge(0); !held {
		t.Error("release by a non-holder removed the lease")
	}
	b.release(0, "w1")
	if _, held := b.leaseAge(0); held {
		t.Error("holder's release left the lease")
	}

	// Expiry and stealing: age the lease artificially, steal it, and
	// verify the steal reset the clock and took over ownership.
	if !b.claim(1, "w1") {
		t.Fatal("claim failed")
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(b.leasePath(1), old, old); err != nil {
		t.Fatal(err)
	}
	if age, held := b.leaseAge(1); !held || age < 30*time.Minute {
		t.Fatalf("aged lease: age %v, held %v", age, held)
	}
	if !b.steal(1, "w2") {
		t.Fatal("steal of an expired lease failed")
	}
	if age, _ := b.leaseAge(1); age > 10*time.Second {
		t.Errorf("steal did not reset the lease clock: age %v", age)
	}
	var li leaseInfo
	blob, err := os.ReadFile(b.leasePath(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &li); err != nil || li.Worker != "w2" || !li.Stolen {
		t.Errorf("stolen lease body = %+v, %v; want worker w2, stolen", li, err)
	}
	// The original holder's release is now a no-op; the thief's works.
	b.release(1, "w1")
	if _, held := b.leaseAge(1); !held {
		t.Error("stolen-from worker removed the thief's lease")
	}
	b.release(1, "w2")
	if _, held := b.leaseAge(1); held {
		t.Error("thief's release left the lease")
	}
}

// TestRefreshExtendsLease: the heartbeat rewinds a lease's age so a
// slow-but-alive holder is never treated as dead.
func TestRefreshExtendsLease(t *testing.T) {
	dir := t.TempDir()
	b, err := Publish(dir, gridSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if !b.claim(0, "w1") {
		t.Fatal("claim failed")
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(b.leasePath(0), old, old); err != nil {
		t.Fatal(err)
	}
	b.refresh(0)
	if age, held := b.leaseAge(0); !held || age > 10*time.Second {
		t.Errorf("refresh left lease age at %v (held %v)", age, held)
	}
}

// TestWaitAndCompletion: DoneCount tracks the shared cache, Wait
// returns once every point lands, and a stop close ends the wait early
// with an honest incomplete verdict.
func TestWaitAndCompletion(t *testing.T) {
	dir := t.TempDir()
	specs := gridSpecs()
	b, err := Publish(dir, specs)
	if err != nil {
		t.Fatal(err)
	}
	if n := b.DoneCount(); n != 0 {
		t.Fatalf("fresh grid reports %d done", n)
	}

	// Early stop with nothing running: complete=false, no error.
	stopped := make(chan struct{})
	close(stopped)
	complete, err := b.Wait(context.Background(), time.Millisecond, stopped, nil)
	if err != nil || complete {
		t.Fatalf("Wait on a stopped empty grid = %v, %v; want incomplete, nil", complete, err)
	}

	// Run half the grid, then Wait while a goroutine finishes the rest.
	eng := engine.New(engine.Options{DiskCacheDir: dir})
	if _, err := eng.RunAll(context.Background(), specs[:2], nil); err != nil {
		t.Fatal(err)
	}
	if n := b.DoneCount(); n != 2 {
		t.Fatalf("DoneCount = %d after 2 points, want 2", n)
	}
	if b.Complete() {
		t.Fatal("half-done grid reports complete")
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		engine.New(engine.Options{DiskCacheDir: dir}).RunAll(context.Background(), specs[2:], nil)
	}()
	var last int
	complete, err = b.Wait(context.Background(), time.Millisecond, nil, func(done, total int) { last = done })
	if err != nil || !complete {
		t.Fatalf("Wait = %v, %v; want complete", complete, err)
	}
	if last != len(specs) {
		t.Errorf("final onTick saw %d/%d", last, len(specs))
	}
	if !b.Complete() {
		t.Error("Complete() false after Wait returned complete")
	}
}

// TestWorkersCompleteGrid: two in-process workers (separate engines on
// one shared cache directory — the multi-process topology, visible to
// the race detector) split a grid, every point lands exactly once on
// disk, and a pre-warmed third worker exits immediately with nothing
// to do.
func TestWorkersCompleteGrid(t *testing.T) {
	dir := t.TempDir()
	specs := gridSpecs()
	b, err := Publish(dir, specs)
	if err != nil {
		t.Fatal(err)
	}

	opts := func(id string) WorkerOptions {
		return WorkerOptions{ID: id, Poll: 2 * time.Millisecond, Batch: 1}
	}
	var wg sync.WaitGroup
	stats := make([]WorkerStats, 2)
	errs := make([]error, 2)
	points := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := engine.New(engine.Options{DiskCacheDir: dir})
			o := opts([]string{"alpha", "beta"}[i])
			o.OnPoint = func() { points[i]++ }
			stats[i], errs[i] = RunWorker(context.Background(), eng, b, o)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if !b.Complete() {
		t.Fatal("workers returned with an incomplete grid")
	}
	total := stats[0].Completed + stats[1].Completed
	if total < len(specs) {
		t.Errorf("workers completed %d points between them, grid has %d", total, len(specs))
	}
	if points[0] != stats[0].Completed || points[1] != stats[1].Completed {
		t.Errorf("OnPoint fired %v times, stats say %d/%d", points, stats[0].Completed, stats[1].Completed)
	}
	// Leases are all released on the way out.
	for i := range specs {
		if _, held := b.leaseAge(i); held {
			t.Errorf("point %d's lease survived worker exit", i)
		}
	}

	// A worker joining a finished grid does nothing, instantly.
	st, err := RunWorker(context.Background(), engine.New(engine.Options{DiskCacheDir: dir}), b, opts("late"))
	if err != nil || st.Completed != 0 || st.Batches != 0 {
		t.Errorf("worker on a warm grid: stats %+v, %v; want all-zero", st, err)
	}
}

// TestWorkerCrashRecovery: a worker that dies holding a claimed lease
// (the DieAfter hook) leaves the grid incomplete; a second worker with
// a short expiry steals the abandoned lease and finishes the grid.
func TestWorkerCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	specs := gridSpecs()
	b, err := Publish(dir, specs)
	if err != nil {
		t.Fatal(err)
	}

	crash, err := RunWorker(context.Background(), engine.New(engine.Options{DiskCacheDir: dir}), b,
		WorkerOptions{ID: "victim", Batch: 1, Poll: 2 * time.Millisecond, DieAfter: 1})
	if !errors.Is(err, ErrAbandoned) {
		t.Fatalf("DieAfter worker returned %v, want ErrAbandoned", err)
	}
	if crash.Completed < 1 {
		t.Fatalf("crashed worker completed %d points before dying, want >= 1", crash.Completed)
	}
	if b.Complete() {
		t.Fatal("grid complete despite the crash — nothing left to recover")
	}
	abandoned := 0
	for i := range specs {
		if _, held := b.leaseAge(i); held {
			abandoned++
		}
	}
	if abandoned != 1 {
		t.Fatalf("crashed worker left %d leases, want exactly 1", abandoned)
	}

	var log strings.Builder
	rescue, err := RunWorker(context.Background(), engine.New(engine.Options{DiskCacheDir: dir}), b,
		WorkerOptions{ID: "rescuer", Batch: 1, Poll: 2 * time.Millisecond, LeaseExpiry: 20 * time.Millisecond, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Complete() {
		t.Fatal("rescuer returned with an incomplete grid")
	}
	if rescue.Stolen < 1 {
		t.Errorf("rescuer stats %+v: abandoned lease was never stolen", rescue)
	}
	if !strings.Contains(log.String(), "stole expired lease") {
		t.Errorf("worker log does not record the steal:\n%s", log.String())
	}
	if crash.Completed+rescue.Completed < len(specs) {
		t.Errorf("victim %d + rescuer %d points < grid %d", crash.Completed, rescue.Completed, len(specs))
	}
}

// TestWorkerSimulationErrorIsTerminal: a point that cannot simulate
// stops the worker with the error and releases its leases (manifest
// validation makes this unreachable for published grids; the guard is
// for boards built in-process).
func TestWorkerSimulationErrorIsTerminal(t *testing.T) {
	dir := t.TempDir()
	specs := []engine.Spec{{App: "no-such-app", Instructions: 10_000}}
	keys, id, err := keysAndID(specs)
	if err != nil {
		t.Fatal(err)
	}
	b := board(dir, specs, keys, id)
	_, err = RunWorker(context.Background(), engine.New(engine.Options{DiskCacheDir: dir}), b,
		WorkerOptions{ID: "w", Batch: 1, Poll: time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "no-such-app") {
		t.Fatalf("worker on an unsimulatable grid returned %v", err)
	}
	if _, held := b.leaseAge(0); held {
		t.Error("failed worker left its lease behind")
	}
}
