// Package shard coordinates a fleet of sweep workers over one shared
// disk-cache directory, distributing the points of a grid across
// processes (or machines sharing the directory) with no coordinator in
// the data path.
//
// The design leans entirely on two properties the engine already
// guarantees: every grid point is content-addressed (engine.Key is a
// pure function of the normalized Spec), and the disk-cache tier
// publishes results by atomic CreateTemp+Rename. Together they make
// every point idempotent — running it twice, on two workers, produces
// byte-identical entries at the same path — so the coordination
// protocol only has to make duplicate work *rare*, never impossible:
//
//   - The coordinator publishes the grid once as a manifest
//     (<cache-dir>/shard/current.json, written atomically), naming
//     every point in its wire form. Workers need nothing else: they
//     poll for the manifest, recompute every point's key locally, and
//     go to work.
//   - A worker claims a point by creating its lease file with O_EXCL —
//     exactly one creator wins. While running the point it refreshes
//     the lease's mtime on a heartbeat ticker.
//   - A lease whose mtime is older than the expiry is stale: its
//     holder crashed (or stalled past the heartbeat budget), and an
//     idle worker steals it by atomically replacing the lease file —
//     which also resets the mtime, so concurrent stealers re-race on a
//     fresh lease. A stolen-from worker that was merely slow finishes
//     harmlessly: its result is the same bytes.
//   - A point is *done* exactly when its key has a live entry in the
//     shared disk cache; workers and the coordinator both read
//     completion straight off the cache directory, so there is no
//     separate completion ledger to corrupt.
//
// The merge step needs no code of its own: once every key is on disk,
// the ordinary single-process sweep over the same cache directory
// replays every point as a disk hit and emits the byte-identical
// report.
//
// All shard state lives under the shard/ subdirectory of the cache
// directory, which the engine's disk-cache GC never enters.
package shard

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/engine"
)

const (
	// manifestName is the active grid's manifest inside Dir; one grid
	// is active per cache directory at a time (publishing a new grid
	// atomically replaces the old manifest; stale workers finish their
	// old grid against the same content-addressed cache unharmed).
	manifestName = "current.json"
	// manifestVersion guards the manifest schema.
	manifestVersion = 1

	// DefaultLeaseExpiry is how long a lease may go without a heartbeat
	// before idle workers may steal it. It bounds crash-recovery
	// latency, not point duration — a healthy worker heartbeats every
	// DefaultLeaseExpiry/4 regardless of how long its point runs.
	DefaultLeaseExpiry = time.Minute
	// DefaultPoll is how often waiting loops (manifest discovery, idle
	// workers, the coordinator's completion wait) re-scan shared state.
	DefaultPoll = 500 * time.Millisecond
)

// Dir returns the shard-state root for a cache directory.
func Dir(cacheDir string) string { return filepath.Join(cacheDir, "shard") }

// manifestFile is the JSON envelope of a published grid.
type manifestFile struct {
	Version int               `json:"v"`
	GridID  string            `json:"grid_id"`
	Specs   []engine.SpecWire `json:"specs"`
}

// Board is one published grid over a shared cache directory: the
// ordered point set, every point's content key, and the lease
// directory workers coordinate through.
type Board struct {
	cacheDir string
	leaseDir string
	// GridID identifies the point set: a digest over every point's
	// key, so two boards agree on it exactly when they agree on every
	// point (same specs, same binary-normalization rules).
	GridID string
	// Specs are the grid's points in manifest order.
	Specs []engine.Spec
	// Keys are the points' content addresses, index-parallel to Specs.
	Keys []engine.Key
}

// keysAndID computes every spec's content key and the grid id derived
// from them.
func keysAndID(specs []engine.Spec) ([]engine.Key, string, error) {
	keys := make([]engine.Key, len(specs))
	h := sha256.New()
	for i, s := range specs {
		k, err := s.Key()
		if err != nil {
			return nil, "", fmt.Errorf("shard: point %d: %w", i, err)
		}
		keys[i] = k
		h.Write(k[:])
	}
	return keys, hex.EncodeToString(h.Sum(nil)[:8]), nil
}

// board assembles the in-memory Board for a validated point set.
func board(cacheDir string, specs []engine.Spec, keys []engine.Key, gridID string) *Board {
	return &Board{
		cacheDir: cacheDir,
		leaseDir: filepath.Join(Dir(cacheDir), gridID, "leases"),
		GridID:   gridID,
		Specs:    specs,
		Keys:     keys,
	}
}

// Publish validates every point, computes the grid's keys and id, and
// atomically installs the manifest as the cache directory's active
// grid. Workers sharing the directory discover it via Open.
func Publish(cacheDir string, specs []engine.Spec) (*Board, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("shard: empty grid")
	}
	wire := make([]engine.SpecWire, len(specs))
	for i, s := range specs {
		if s.Trace != nil {
			return nil, fmt.Errorf("shard: point %d carries a Trace callback, which cannot cross a process boundary", i)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("shard: point %d: %w", i, err)
		}
		wire[i] = engine.WireSpec(s)
	}
	keys, gridID, err := keysAndID(specs)
	if err != nil {
		return nil, err
	}
	b := board(cacheDir, specs, keys, gridID)
	if err := os.MkdirAll(b.leaseDir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	blob, err := json.Marshal(manifestFile{Version: manifestVersion, GridID: gridID, Specs: wire})
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	if err := atomicWrite(filepath.Join(Dir(cacheDir), manifestName), blob); err != nil {
		return nil, fmt.Errorf("shard: publish manifest: %w", err)
	}
	return b, nil
}

// atomicWrite lands blob at path via the cache tier's proven
// CreateTemp+Rename pattern: readers see the old manifest or the new
// one, never a torn write.
func atomicWrite(path string, blob []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Open reads the cache directory's active grid, polling every poll
// interval until a manifest appears or ctx ends — a worker may be
// started before its coordinator. The manifest's points are
// re-validated and re-keyed locally; a grid id that does not match the
// recomputed one means the manifest was written by a binary with
// different normalization rules, and coordinating with it would wait
// on keys that never appear, so Open rejects it.
func Open(ctx context.Context, cacheDir string, poll time.Duration) (*Board, error) {
	if poll <= 0 {
		poll = DefaultPoll
	}
	path := filepath.Join(Dir(cacheDir), manifestName)
	for {
		blob, err := os.ReadFile(path)
		if err == nil {
			return openManifest(cacheDir, blob)
		}
		if !os.IsNotExist(err) {
			return nil, fmt.Errorf("shard: read manifest: %w", err)
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("shard: no manifest published in %s: %w", Dir(cacheDir), ctx.Err())
		case <-time.After(poll):
		}
	}
}

func openManifest(cacheDir string, blob []byte) (*Board, error) {
	var mf manifestFile
	if err := json.Unmarshal(blob, &mf); err != nil {
		return nil, fmt.Errorf("shard: corrupt manifest: %w", err)
	}
	if mf.Version != manifestVersion {
		return nil, fmt.Errorf("shard: manifest version %d, this binary speaks %d", mf.Version, manifestVersion)
	}
	specs := make([]engine.Spec, len(mf.Specs))
	for i, w := range mf.Specs {
		specs[i] = w.Spec()
	}
	keys, gridID, err := keysAndID(specs)
	if err != nil {
		return nil, err
	}
	if gridID != mf.GridID {
		return nil, fmt.Errorf("shard: manifest grid id %s, recomputed %s — published by an incompatible binary", mf.GridID, gridID)
	}
	return board(cacheDir, specs, keys, gridID), nil
}

// doneSet reads the shared cache directory once and returns the set of
// finished keys. Errors degrade to "nothing done" — a transient read
// failure only delays progress, never corrupts it.
func (b *Board) doneSet() map[engine.Key]struct{} {
	keys, err := engine.DiskCacheKeys(b.cacheDir)
	if err != nil {
		return nil
	}
	set := make(map[engine.Key]struct{}, len(keys))
	for _, k := range keys {
		set[k] = struct{}{}
	}
	return set
}

// DoneCount returns how many of the board's points have a finished
// entry in the shared cache, with a single directory read.
func (b *Board) DoneCount() int {
	set := b.doneSet()
	n := 0
	for _, k := range b.Keys {
		if _, ok := set[k]; ok {
			n++
		}
	}
	return n
}

// Complete reports whether every point is finished.
func (b *Board) Complete() bool { return b.DoneCount() == len(b.Keys) }

// Wait blocks until every point has a finished entry in the shared
// cache, polling every poll interval and invoking onTick (when
// non-nil) with the current count after each scan. A close of stop
// (e.g. "all local workers exited") ends the wait early after one
// final scan; Wait reports whether the grid completed. Cancelling ctx
// returns its error.
func (b *Board) Wait(ctx context.Context, poll time.Duration, stop <-chan struct{}, onTick func(done, total int)) (bool, error) {
	if poll <= 0 {
		poll = DefaultPoll
	}
	total := len(b.Keys)
	for {
		done := b.DoneCount()
		if onTick != nil {
			onTick(done, total)
		}
		if done == total {
			return true, nil
		}
		select {
		case <-ctx.Done():
			return false, ctx.Err()
		case <-stop:
			// One final scan: the last worker may have published its
			// final result on the way out.
			done = b.DoneCount()
			if onTick != nil {
				onTick(done, total)
			}
			return done == total, nil
		case <-time.After(poll):
		}
	}
}
