// Package profiling starts and stops the standard pprof profiles for the
// command-line drivers, so hot-path hunts over cmd/experiments and
// cmd/sweep need no hand-written harness.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// memPath; either may be empty to skip that profile. The returned stop
// function ends the CPU profile and writes the heap profile, and must be
// called exactly once (defer it in main).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
