// Package circuit models the microprocessor power-distribution network as
// the second-order RLC circuit of Figure 1 in the paper: the power-supply
// impedance R, the die-to-package connection inductance L, and the on-die
// decoupling capacitance C, excited by the CPU core modelled as a current
// source. Following Figure 1(b), the supply voltage source is eliminated
// by linearity, so the simulated node voltage is the *deviation* from Vdd.
//
// The package provides the derived resonance characteristics the paper
// uses throughout Section 2 (resonant frequency, quality factor, the
// half-energy resonance band, and the damping rate), a transient simulator
// based on the Heun (improved Euler) formula, an impedance sweep for
// reproducing Figure 1(c), and the calibration procedures of Section 2.1.3
// that determine the resonant current variation threshold and the maximum
// repetition tolerance.
package circuit

import (
	"errors"
	"fmt"
	"math"
)

// Params describes a second-order power-distribution network together with
// the electrical operating point of the processor it feeds.
type Params struct {
	// R is the power-supply impedance in ohms.
	R float64
	// L is the die-to-package connection (solder bump) inductance in henries.
	L float64
	// C is the bulk on-die decoupling capacitance in farads.
	C float64

	// Vdd is the nominal supply voltage in volts.
	Vdd float64
	// NoiseMargin is the allowed supply deviation as a fraction of Vdd
	// (the paper uses 0.05, i.e. ±5%).
	NoiseMargin float64

	// ClockHz is the processor clock frequency used to convert between
	// seconds and cycles.
	ClockHz float64

	// IMax and IMin bound the processor current in amps. The maximum
	// possible current variation (IMax-IMin) determines, together with
	// the circuit, the maximum repetition tolerance (Section 2.1.3).
	IMax float64
	IMin float64
}

// Table1 returns the aggressive future design point of Table 1 in the
// paper: 1.0 V, 10 GHz, 105 A peak / 35 A minimum current, R = 375 µΩ,
// L = 1.69 pH, C = 1500 nF, 5% noise margin. The derived resonant
// frequency is 100 MHz and the resonance band spans 84–119 cycles.
func Table1() Params {
	return Params{
		R:           375e-6,
		L:           1.69e-12,
		C:           1500e-9,
		Vdd:         1.0,
		NoiseMargin: 0.05,
		ClockHz:     10e9,
		IMax:        105,
		IMin:        35,
	}
}

// Section2Example returns the present-day package example of Section 2.1:
// C = 500 nF, L = 0.005 nH, and R chosen for a quality factor near 6.3 so
// that the resonance band spans roughly 92–108 MHz at a 2 V supply and a
// 5 GHz clock, matching the worked example in the paper.
func Section2Example() Params {
	return Params{
		R:           500e-6,
		L:           5e-12,
		C:           500e-9,
		Vdd:         2.0,
		NoiseMargin: 0.05,
		ClockHz:     5e9,
		IMax:        100,
		IMin:        30,
	}
}

// Validate reports whether the parameters describe a physically meaningful
// configuration.
func (p Params) Validate() error {
	switch {
	case p.R <= 0 || p.L <= 0 || p.C <= 0:
		return fmt.Errorf("circuit: R, L, C must be positive (R=%g L=%g C=%g)", p.R, p.L, p.C)
	case p.Vdd <= 0:
		return fmt.Errorf("circuit: Vdd must be positive (got %g)", p.Vdd)
	case p.NoiseMargin <= 0 || p.NoiseMargin >= 1:
		return fmt.Errorf("circuit: noise margin must be in (0,1) (got %g)", p.NoiseMargin)
	case p.ClockHz <= 0:
		return fmt.Errorf("circuit: clock frequency must be positive (got %g)", p.ClockHz)
	case p.IMax <= p.IMin:
		return fmt.Errorf("circuit: IMax (%g) must exceed IMin (%g)", p.IMax, p.IMin)
	case p.IMin < 0:
		return fmt.Errorf("circuit: IMin must be non-negative (got %g)", p.IMin)
	}
	return nil
}

// Underdamped reports whether the circuit satisfies R² < 4L/C and is
// therefore subject to resonant oscillation (Section 2.1.1). Technology
// scaling (small R, large C) keeps microprocessor supplies underdamped.
func (p Params) Underdamped() bool {
	return p.R*p.R < 4*p.L/p.C
}

// ResonantFrequency returns f = 1/(2π√(LC)) in hertz, the frequency at
// which current variations cause maximum voltage variation.
func (p Params) ResonantFrequency() float64 {
	return 1 / (2 * math.Pi * math.Sqrt(p.L*p.C))
}

// ResonantPeriodCycles returns the resonant period expressed in processor
// clock cycles.
func (p Params) ResonantPeriodCycles() float64 {
	return p.ClockHz / p.ResonantFrequency()
}

// Q returns the quality factor 2πfL/R of the resonant loop. Q determines
// both the width of the resonance band and how quickly stored resonant
// energy dissipates.
func (p Params) Q() float64 {
	return 2 * math.Pi * p.ResonantFrequency() * p.L / p.R
}

// DampingRateNepers returns the damping rate fπ/Q in nepers per second
// (equivalently R/2L). Voltage variations decay as exp(-rate·t) once
// current variations stop.
func (p Params) DampingRateNepers() float64 {
	return p.R / (2 * p.L)
}

// DissipationPerPeriod returns the fraction of a voltage variation's
// amplitude lost over one resonant period. The Table 1 supply loses about
// 66% per period; the Section 2 example loses about 40%.
func (p Params) DissipationPerPeriod() float64 {
	return 1 - math.Exp(-p.DampingRateNepers()/p.ResonantFrequency())
}

// NoiseMarginVolts returns the absolute supply-deviation bound in volts.
func (p Params) NoiseMarginVolts() float64 {
	return p.NoiseMargin * p.Vdd
}

// MaxCurrentSwing returns the largest possible processor current variation
// IMax-IMin in amps.
func (p Params) MaxCurrentSwing() float64 {
	return p.IMax - p.IMin
}

// Band is a range of frequencies, in hertz, over which the power supply
// resonates with more than half the energy at the resonant frequency.
type Band struct {
	Lo, Hi float64 // hertz, Lo < Hi
}

// Contains reports whether frequency f (hertz) lies inside the band.
func (b Band) Contains(f float64) bool { return f >= b.Lo && f <= b.Hi }

// Width returns the band width in hertz.
func (b Band) Width() float64 { return b.Hi - b.Lo }

// ResonanceBand returns the half-energy resonance band using the exact
// second-order-circuit expressions (the paper cites DeCarlo & Lin [4]):
//
//	f_lo,hi = f0·(√(1+1/(4Q²)) ∓ 1/(2Q))
//
// For the Table 1 supply (Q ≈ 2.83) this yields 83.9–119 MHz, i.e. periods
// of 84–119 cycles at 10 GHz, matching the paper.
func (p Params) ResonanceBand() Band {
	f0 := p.ResonantFrequency()
	q := p.Q()
	center := math.Sqrt(1 + 1/(4*q*q))
	half := 1 / (2 * q)
	return Band{Lo: f0 * (center - half), Hi: f0 * (center + half)}
}

// CycleBand is a resonance band expressed in whole processor cycles per
// period. Lo is the shortest resonant period and Hi the longest, so
// Lo corresponds to Band.Hi and vice versa.
type CycleBand struct {
	Lo, Hi int // cycles per period, Lo <= Hi
}

// HalfPeriods returns the inclusive range of half-periods, in cycles,
// covered by the band. The detector instantiates one quarter-period adder
// per distinct half-period in this range (Section 3.1.3).
func (cb CycleBand) HalfPeriods() (lo, hi int) { return cb.Lo / 2, (cb.Hi + 1) / 2 }

// Contains reports whether a period of n cycles falls inside the band.
func (cb CycleBand) Contains(n int) bool { return n >= cb.Lo && n <= cb.Hi }

// ResonanceBandCycles converts the resonance band to processor-cycle
// periods, rounding inward so that every included period is genuinely
// inside the band.
func (p Params) ResonanceBandCycles() CycleBand {
	b := p.ResonanceBand()
	lo := int(math.Ceil(p.ClockHz / b.Hi))
	hi := int(math.Floor(p.ClockHz / b.Lo))
	if lo > hi {
		lo, hi = hi, lo
	}
	return CycleBand{Lo: lo, Hi: hi}
}

// Characteristics bundles every derived quantity of a supply for reports
// and for configuring the detector.
type Characteristics struct {
	ResonantFrequencyHz  float64
	ResonantPeriodCycles float64
	Q                    float64
	Underdamped          bool
	DampingRateNepers    float64
	DissipationPerPeriod float64
	BandHz               Band
	BandCycles           CycleBand
	NoiseMarginVolts     float64
}

// Characterize computes all derived resonance characteristics, returning
// an error for invalid or non-resonant (over/critically damped) supplies.
func (p Params) Characterize() (Characteristics, error) {
	if err := p.Validate(); err != nil {
		return Characteristics{}, err
	}
	if !p.Underdamped() {
		return Characteristics{}, errors.New("circuit: supply is not underdamped; no resonant oscillation")
	}
	return Characteristics{
		ResonantFrequencyHz:  p.ResonantFrequency(),
		ResonantPeriodCycles: p.ResonantPeriodCycles(),
		Q:                    p.Q(),
		Underdamped:          true,
		DampingRateNepers:    p.DampingRateNepers(),
		DissipationPerPeriod: p.DissipationPerPeriod(),
		BandHz:               p.ResonanceBand(),
		BandCycles:           p.ResonanceBandCycles(),
		NoiseMarginVolts:     p.NoiseMarginVolts(),
	}, nil
}

// String renders the characteristics as a short human-readable report.
func (c Characteristics) String() string {
	return fmt.Sprintf(
		"f0=%.2f MHz (%.1f cycles)  Q=%.2f  band=%.1f-%.1f MHz (%d-%d cycles)  dissipation=%.0f%%/period  margin=±%.0f mV",
		c.ResonantFrequencyHz/1e6, c.ResonantPeriodCycles, c.Q,
		c.BandHz.Lo/1e6, c.BandHz.Hi/1e6, c.BandCycles.Lo, c.BandCycles.Hi,
		c.DissipationPerPeriod*100, c.NoiseMarginVolts*1000)
}
