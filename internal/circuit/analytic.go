package circuit

import (
	"math"
	"math/cmplx"
)

// This file collects the closed-form theory of the underdamped
// second-order supply. The transient simulator is the source of truth for
// experiments (it handles arbitrary waveforms); these expressions exist
// to cross-check it, to explain the calibrated constants, and to give
// designers quick estimates without running a simulation.

// Alpha returns the neper frequency α = R/2L (the damping rate).
func (p Params) Alpha() float64 { return p.DampingRateNepers() }

// OmegaD returns the damped angular frequency ω_d = √(ω₀² − α²) of the
// underdamped response, in radians per second. It returns 0 for circuits
// that are not underdamped.
func (p Params) OmegaD() float64 {
	w0 := 2 * math.Pi / (2 * math.Pi * math.Sqrt(p.L*p.C)) // = 1/√(LC)
	a := p.Alpha()
	d := w0*w0 - a*a
	if d <= 0 {
		return 0
	}
	return math.Sqrt(d)
}

// StepResponse returns the analytic reported deviation (IR drop removed)
// t seconds after the processor current steps by deltaI amps from DC
// steady state:
//
//	x(t) = e^{−αt}(A·cos ω_d t + B·sin ω_d t)
//	A = R·ΔI,  B = (−ΔI/C + α·A)/ω_d
//
// The transient simulator converges to this (see the integrator tests and
// the Heun-vs-Euler ablation).
func (p Params) StepResponse(deltaI, t float64) float64 {
	alpha := p.Alpha()
	wd := p.OmegaD()
	if wd == 0 {
		return 0
	}
	a := p.R * deltaI
	b := (-deltaI/p.C + alpha*a) / wd
	return math.Exp(-alpha*t) * (a*math.Cos(wd*t) + b*math.Sin(wd*t))
}

// zComplex returns the complex impedance seen by the current source.
func (p Params) zComplex(f float64) complex128 {
	w := 2 * math.Pi * f
	if w == 0 {
		return complex(p.R, 0)
	}
	zl := complex(p.R, w*p.L)
	zc := complex(0, -1/(w*p.C))
	return zl * zc / (zl + zc)
}

// ReportedAmplitude returns the steady-state amplitude, in volts, of the
// *reported* deviation under a sustained sinusoidal current variation of
// the given peak-to-peak amplitude at frequency f. Because the reported
// deviation subtracts the instantaneous IR drop, the effective transfer
// impedance is Z(jω) − R rather than Z(jω).
func (p Params) ReportedAmplitude(f, peakToPeakAmps float64) float64 {
	return peakToPeakAmps / 2 * cmplx.Abs(p.zComplex(f)-complex(p.R, 0))
}

// BuildupCycles estimates how many cycles a sustained sinusoidal
// variation of the given peak-to-peak amplitude at the resonant frequency
// needs to violate the noise margin, using the first-order envelope model
// v(t) ≈ v_steady·(1 − e^{−αt}). It returns (0, false) if the steady-state
// response never reaches the margin (the variation is sub-threshold).
//
// The envelope model underestimates early-time lag, so the transient
// simulator's calibration (MaxRepetitionTolerance) typically reports one
// or two more half waves than this estimate; the estimate's value is in
// showing *why* there is a repetition tolerance at all.
func (p Params) BuildupCycles(peakToPeakAmps float64) (cycles float64, violates bool) {
	f0 := p.ResonantFrequency()
	steady := p.ReportedAmplitude(f0, peakToPeakAmps)
	margin := p.NoiseMarginVolts()
	if steady <= margin {
		return 0, false
	}
	t := -math.Log(1-margin/steady) / p.Alpha()
	return t * p.ClockHz, true
}

// HalfWaveTolerance converts a buildup estimate into half waves at the
// resonant frequency, the unit the paper counts repetition tolerance in.
func (p Params) HalfWaveTolerance(peakToPeakAmps float64) (halfWaves int, violates bool) {
	cycles, v := p.BuildupCycles(peakToPeakAmps)
	if !v {
		return 0, false
	}
	half := p.ResonantPeriodCycles() / 2
	return int(cycles/half) + 1, true
}
