package circuit

import (
	"math"
	"testing"
)

func TestCalibrateTable1MatchesPaper(t *testing.T) {
	cal, err := Calibrate(Table1())
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	// Paper Table 1: resonant current variation threshold 32 A and
	// maximum repetition tolerance 4. Integrator details shift these
	// slightly; require the same ballpark.
	if cal.ThresholdAmps < 28 || cal.ThresholdAmps > 36 {
		t.Errorf("threshold = %g A, want ≈ 32 A", cal.ThresholdAmps)
	}
	if cal.MaxRepetitionTolerance < 2 || cal.MaxRepetitionTolerance > 6 {
		t.Errorf("max repetition tolerance = %d, want ≈ 4", cal.MaxRepetitionTolerance)
	}
	if cal.BandEdgeToleranceAmps <= cal.ThresholdAmps {
		t.Errorf("band-edge tolerance %g should exceed resonant threshold %g",
			cal.BandEdgeToleranceAmps, cal.ThresholdAmps)
	}
}

func TestCalibrateSection2ExampleMatchesPaper(t *testing.T) {
	cal, err := Calibrate(Section2Example())
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	// Paper Section 2.1.3 example: threshold 10 A, band-edge tolerance
	// 13 A p-p, repetition tolerance 6 half waves.
	if cal.ThresholdAmps < 8 || cal.ThresholdAmps > 13 {
		t.Errorf("threshold = %g A, want ≈ 10 A", cal.ThresholdAmps)
	}
	if cal.BandEdgeToleranceAmps < 10 || cal.BandEdgeToleranceAmps > 18 {
		t.Errorf("band-edge tolerance = %g A, want ≈ 13 A", cal.BandEdgeToleranceAmps)
	}
	if cal.MaxRepetitionTolerance < 4 || cal.MaxRepetitionTolerance > 9 {
		t.Errorf("max repetition tolerance = %d, want ≈ 6", cal.MaxRepetitionTolerance)
	}
}

func TestThresholdBelowIsSafeAboveViolates(t *testing.T) {
	p := Table1()
	thr, err := ResonantThreshold(p)
	if err != nil {
		t.Fatal(err)
	}
	period := p.ResonantPeriodCycles()
	if v, _ := sustainsViolation(p, thr-1, period); v {
		t.Errorf("sustained variation 1 A below threshold %g violated", thr)
	}
	if v, _ := sustainsViolation(p, thr+2, period); !v {
		t.Errorf("sustained variation 2 A above threshold %g did not violate", thr)
	}
}

func TestOverdesignedSupplyHasNoProblem(t *testing.T) {
	p := Table1()
	p.C *= 10 // enormous d-caps: impedance peak collapses (still underdamped)
	thr, err := ResonantThreshold(p)
	if err != nil {
		t.Fatal(err)
	}
	if thr != p.MaxCurrentSwing() {
		t.Errorf("overdesigned supply threshold = %g, want max swing %g", thr, p.MaxCurrentSwing())
	}
	tol, err := MaxRepetitionTolerance(p)
	if err != nil {
		t.Fatal(err)
	}
	if tol != math.MaxInt32 {
		t.Errorf("overdesigned supply tolerance = %d, want unbounded", tol)
	}
}

func TestCalibrationRejectsOverdamped(t *testing.T) {
	p := Table1()
	p.R = 1.0
	if _, err := ResonantThreshold(p); err == nil {
		t.Error("ResonantThreshold accepted overdamped supply")
	}
	if _, err := BandEdgeTolerance(p); err == nil {
		t.Error("BandEdgeTolerance accepted overdamped supply")
	}
	if _, err := MaxRepetitionTolerance(p); err == nil {
		t.Error("MaxRepetitionTolerance accepted overdamped supply")
	}
	if _, err := Calibrate(p); err == nil {
		t.Error("Calibrate accepted overdamped supply")
	}
}

func TestDissipationCycles(t *testing.T) {
	p := Table1()
	got := DissipationCycles(p, 4)
	// ln(4/3)/α at α=R/2L ≈ 1.11e8 /s is ~2.6 ns ≈ 26 cycles; the
	// paper conservatively uses 35.
	if got < 15 || got > 40 {
		t.Errorf("DissipationCycles = %d, want ≈ 26", got)
	}
	// Degenerate tolerance is clamped.
	if a, b := DissipationCycles(p, 0), DissipationCycles(p, 2); a != b {
		t.Errorf("clamping failed: tol=0 → %d, tol=2 → %d", a, b)
	}
	// Lower tolerance requires a longer dissipation (bigger fractional decay).
	if DissipationCycles(p, 2) <= DissipationCycles(p, 8) {
		t.Error("dissipation cycles should shrink as tolerance grows")
	}
}
