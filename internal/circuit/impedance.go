package circuit

import (
	"math"
	"math/cmplx"
)

// Impedance returns the magnitude, in ohms, of the impedance the CPU
// current source sees at frequency f hertz: the series R-L branch in
// parallel with the on-die decoupling capacitance,
//
//	Z(ω) = (R + jωL) ∥ 1/(jωC).
//
// This is the quantity plotted in Figure 1(c); it peaks at the resonant
// frequency.
func (p Params) Impedance(f float64) float64 {
	w := 2 * math.Pi * f
	if w == 0 {
		// At DC the capacitor is open and the source sees R. The
		// IR-drop subtraction used everywhere else makes DC harmless,
		// but the raw impedance is still R.
		return p.R
	}
	zl := complex(p.R, w*p.L)
	zc := complex(0, -1/(w*p.C))
	return cmplx.Abs(zl * zc / (zl + zc))
}

// ImpedancePoint is one sample of an impedance sweep.
type ImpedancePoint struct {
	FrequencyHz float64
	Ohms        float64
}

// ImpedanceSweep samples |Z(f)| at n evenly spaced frequencies across
// [loHz, hiHz], inclusive of both endpoints. n must be at least 2.
func (p Params) ImpedanceSweep(loHz, hiHz float64, n int) []ImpedancePoint {
	if n < 2 {
		n = 2
	}
	pts := make([]ImpedancePoint, n)
	step := (hiHz - loHz) / float64(n-1)
	for i := range pts {
		f := loHz + float64(i)*step
		pts[i] = ImpedancePoint{FrequencyHz: f, Ohms: p.Impedance(f)}
	}
	return pts
}

// PeakImpedance locates the maximum of an impedance sweep, returning the
// frequency and magnitude of the peak.
func PeakImpedance(pts []ImpedancePoint) ImpedancePoint {
	var peak ImpedancePoint
	for _, pt := range pts {
		if pt.Ohms > peak.Ohms {
			peak = pt
		}
	}
	return peak
}

// LocalPeaks reports every local impedance maximum of a Bode scan, in
// frequency order: samples (or flat runs of samples, reported at their
// midpoint) strictly higher than both neighbours. Endpoints are never
// peaks — a maximum at the edge of the scan is unconfirmed, so widen the
// sweep instead. Multi-stage networks produce one peak per resonant
// tier, which is what validates a multi-domain stack's predicted
// resonances against its transfer function.
func LocalPeaks(pts []ImpedancePoint) []ImpedancePoint {
	var peaks []ImpedancePoint
	for i := 1; i < len(pts)-1; {
		if pts[i].Ohms <= pts[i-1].Ohms {
			i++
			continue
		}
		// Risen above the left neighbour; absorb any plateau, then
		// require a strict fall on the right.
		j := i
		for j+1 < len(pts) && pts[j+1].Ohms == pts[i].Ohms {
			j++
		}
		if j+1 < len(pts) && pts[j+1].Ohms < pts[i].Ohms {
			peaks = append(peaks, pts[(i+j)/2])
		}
		i = j + 1
	}
	return peaks
}
