package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestTable1DerivedParameters(t *testing.T) {
	p := Table1()
	if err := p.Validate(); err != nil {
		t.Fatalf("Table1 invalid: %v", err)
	}
	if !p.Underdamped() {
		t.Fatal("Table1 supply must be underdamped")
	}
	almost(t, "resonant frequency", p.ResonantFrequency(), 100e6, 0.5e6)
	almost(t, "resonant period cycles", p.ResonantPeriodCycles(), 100, 0.5)
	almost(t, "Q", p.Q(), 2.83, 0.03)
	// The paper reports ~66% amplitude dissipation per resonant period.
	almost(t, "dissipation/period", p.DissipationPerPeriod(), 0.66, 0.02)

	cb := p.ResonanceBandCycles()
	if cb.Lo != 84 || cb.Hi != 119 {
		t.Errorf("resonance band cycles = %d-%d, want 84-119", cb.Lo, cb.Hi)
	}
	b := p.ResonanceBand()
	almost(t, "band lo MHz", b.Lo/1e6, 83.9, 0.3)
	almost(t, "band hi MHz", b.Hi/1e6, 119, 0.5)
	almost(t, "noise margin", p.NoiseMarginVolts(), 0.05, 1e-12)
	almost(t, "max swing", p.MaxCurrentSwing(), 70, 1e-12)
}

func TestSection2ExampleDerivedParameters(t *testing.T) {
	p := Section2Example()
	if !p.Underdamped() {
		t.Fatal("Section 2 example must be underdamped")
	}
	// f0 ≈ 100 MHz, band roughly 92-108 MHz, ~40% dissipation per period.
	almost(t, "resonant frequency MHz", p.ResonantFrequency()/1e6, 100.7, 0.5)
	b := p.ResonanceBand()
	almost(t, "band lo MHz", b.Lo/1e6, 92.5, 1.5)
	almost(t, "band hi MHz", b.Hi/1e6, 109, 1.5)
	almost(t, "dissipation/period", p.DissipationPerPeriod(), 0.40, 0.03)
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero R", func(p *Params) { p.R = 0 }},
		{"negative L", func(p *Params) { p.L = -1e-12 }},
		{"zero C", func(p *Params) { p.C = 0 }},
		{"zero Vdd", func(p *Params) { p.Vdd = 0 }},
		{"margin too big", func(p *Params) { p.NoiseMargin = 1.5 }},
		{"margin zero", func(p *Params) { p.NoiseMargin = 0 }},
		{"zero clock", func(p *Params) { p.ClockHz = 0 }},
		{"IMax below IMin", func(p *Params) { p.IMax = 10 }},
		{"negative IMin", func(p *Params) { p.IMin = -5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Table1()
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate accepted invalid params")
			}
		})
	}
}

func TestOverdampedCircuitDetected(t *testing.T) {
	p := Table1()
	p.R = 1.0 // enormous supply impedance: R² >= 4L/C
	if p.Underdamped() {
		t.Fatal("circuit with R=1Ω should be overdamped")
	}
	if _, err := p.Characterize(); err == nil {
		t.Error("Characterize should reject overdamped supply")
	}
}

func TestCharacterizeTable1(t *testing.T) {
	c, err := Table1().Characterize()
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	if !c.Underdamped {
		t.Error("expected underdamped characteristics")
	}
	if c.BandCycles.Lo >= c.BandCycles.Hi {
		t.Errorf("degenerate cycle band %+v", c.BandCycles)
	}
	if got := c.String(); got == "" {
		t.Error("String() returned empty report")
	}
}

func TestDampingRateMatchesAlternateForm(t *testing.T) {
	// fπ/Q must equal R/(2L); the paper states the first form.
	for _, p := range []Params{Table1(), Section2Example()} {
		fromQ := math.Pi * p.ResonantFrequency() / p.Q()
		if math.Abs(fromQ-p.DampingRateNepers())/fromQ > 1e-9 {
			t.Errorf("damping rate mismatch: fπ/Q=%g R/2L=%g", fromQ, p.DampingRateNepers())
		}
	}
}

func TestBandContains(t *testing.T) {
	b := Band{Lo: 90e6, Hi: 110e6}
	if !b.Contains(100e6) || b.Contains(80e6) || b.Contains(120e6) {
		t.Error("Band.Contains misclassifies frequencies")
	}
	almost(t, "width", b.Width(), 20e6, 1)
}

func TestCycleBandHalfPeriods(t *testing.T) {
	cb := CycleBand{Lo: 84, Hi: 119}
	lo, hi := cb.HalfPeriods()
	if lo != 42 || hi != 60 {
		t.Errorf("half periods = %d-%d, want 42-60", lo, hi)
	}
	if !cb.Contains(100) || cb.Contains(83) || cb.Contains(120) {
		t.Error("CycleBand.Contains misclassifies periods")
	}
}

// Property: the resonance band always straddles the resonant frequency
// for any underdamped configuration.
func TestBandStraddlesResonantFrequency(t *testing.T) {
	f := func(rMilli, lPico, cNano uint16) bool {
		p := Params{
			R:           float64(rMilli%500+1) * 1e-6,
			L:           float64(lPico%100+1) * 1e-12,
			C:           float64(cNano%3000+10) * 1e-9,
			Vdd:         1.0,
			NoiseMargin: 0.05,
			ClockHz:     10e9,
			IMax:        100,
			IMin:        30,
		}
		if !p.Underdamped() {
			return true // vacuous
		}
		b := p.ResonanceBand()
		f0 := p.ResonantFrequency()
		return b.Lo < f0 && f0 < b.Hi && b.Lo > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: higher Q means a narrower relative band.
func TestBandNarrowsWithQ(t *testing.T) {
	p := Table1()
	prevWidth := math.Inf(1)
	for _, r := range []float64{800e-6, 400e-6, 200e-6, 100e-6} {
		q := p
		q.R = r
		b := q.ResonanceBand()
		w := b.Width() / q.ResonantFrequency()
		if w >= prevWidth {
			t.Errorf("band did not narrow when R dropped to %g (width %g >= %g)", r, w, prevWidth)
		}
		prevWidth = w
	}
}
