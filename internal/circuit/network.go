package circuit

// Network is the power-delivery seam the simulation loop steps: any
// transient PDN model that maps per-domain current draws to per-domain
// supply deviations, one processor cycle at a time. The single lumped
// RLC of Figure 1(b) and the two-stage network of Section 2.2 are
// one-domain Networks (see WrapSimulator and WrapTwoStage); the
// distributed multi-domain stack of MultiDomainParams exposes one
// entry per supply domain.
//
// Step's contract mirrors the scalar simulators: the deviation written
// for a domain has that domain's IR drop subtracted, so a constant draw
// sits at zero, and |dev| beyond the domain's noise margin is a
// violation. Implementations must be deterministic and Fork must
// deep-copy all electrical state — the sim.Machine fork bit-identity
// contract extends through the network.
type Network interface {
	// Kind names the registered network implementation.
	Kind() string
	// Domains returns the number of supply domains (≥ 1).
	Domains() int
	// DomainInfo describes domain d's electrical envelope.
	DomainInfo(d int) DomainInfo
	// Step advances one processor cycle during which domain d draws
	// draws[d] amps, writing each domain's IR-free deviation into
	// dev[d]. Both slices must have length Domains().
	Step(draws, dev []float64)
	// Fork returns an independent deep copy continuing from the same
	// electrical state: identical future draw sequences produce
	// bit-identical deviations on both copies.
	Fork() Network
}

// DomainInfo is the per-domain metadata a Network exposes to the layers
// above it (margins for violation checks, resonance for detector
// configuration, nominal voltage for reports).
type DomainInfo struct {
	// Name labels the domain in reports ("core", "fp", ...).
	Name string
	// NominalVolts is the domain's supply voltage.
	NominalVolts float64
	// NoiseMarginVolts is the absolute deviation bound.
	NoiseMarginVolts float64
	// ResonantFrequencyHz is the domain's dominant die-level resonance
	// (the local L·C loop), used to seed detector bands.
	ResonantFrequencyHz float64
}

// lumpedNetwork adapts the Figure 1(b) Simulator to the Network seam.
// Step forwards to the exact scalar arithmetic, so rehoming the lumped
// supply behind Network is provably behaviour-preserving (the golden
// reports stay byte-identical).
type lumpedNetwork struct {
	sim *Simulator
}

// WrapSimulator exposes a lumped single-stage supply as a one-domain
// Network.
func WrapSimulator(s *Simulator) Network { return &lumpedNetwork{sim: s} }

func (n *lumpedNetwork) Kind() string { return NetworkLumped }

func (n *lumpedNetwork) Domains() int { return 1 }

func (n *lumpedNetwork) DomainInfo(d int) DomainInfo {
	p := n.sim.Params()
	return DomainInfo{
		Name:                "core",
		NominalVolts:        p.Vdd,
		NoiseMarginVolts:    p.NoiseMarginVolts(),
		ResonantFrequencyHz: p.ResonantFrequency(),
	}
}

func (n *lumpedNetwork) Step(draws, dev []float64) {
	dev[0] = n.sim.Step(draws[0])
}

func (n *lumpedNetwork) Fork() Network { return &lumpedNetwork{sim: n.sim.Fork()} }

// Simulator returns the wrapped scalar simulator (for callers needing
// raw state access, e.g. traces).
func (n *lumpedNetwork) Simulator() *Simulator { return n.sim }

// twoStageNetwork adapts the Section 2.2 TwoStageSimulator to the
// Network seam, again forwarding to the unchanged scalar arithmetic.
type twoStageNetwork struct {
	sim *TwoStageSimulator
}

// WrapTwoStage exposes a two-stage supply as a one-domain Network.
func WrapTwoStage(s *TwoStageSimulator) Network { return &twoStageNetwork{sim: s} }

func (n *twoStageNetwork) Kind() string { return NetworkTwoStage }

func (n *twoStageNetwork) Domains() int { return 1 }

func (n *twoStageNetwork) DomainInfo(d int) DomainInfo {
	p := n.sim.Params()
	return DomainInfo{
		Name:                "core",
		NominalVolts:        p.Vdd,
		NoiseMarginVolts:    p.NoiseMarginVolts(),
		ResonantFrequencyHz: p.MediumStage().ResonantFrequency(),
	}
}

func (n *twoStageNetwork) Step(draws, dev []float64) {
	dev[0] = n.sim.Step(draws[0])
}

func (n *twoStageNetwork) Fork() Network { return &twoStageNetwork{sim: n.sim.Fork()} }

// Simulator returns the wrapped scalar simulator.
func (n *twoStageNetwork) Simulator() *TwoStageSimulator { return n.sim }
