package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSquareWaveShape(t *testing.T) {
	w := Square{Mid: 70, Amplitude: 34, PeriodCycles: 100, Start: 100, End: 500}
	if got := w.At(0); got != 70 {
		t.Errorf("before start: %g, want mid 70", got)
	}
	if got := w.At(600); got != 70 {
		t.Errorf("after end: %g, want mid 70", got)
	}
	if got := w.At(100); got != 87 {
		t.Errorf("first half: %g, want 87", got)
	}
	if got := w.At(150); got != 53 {
		t.Errorf("second half: %g, want 53", got)
	}
	if got := w.At(200); got != 87 {
		t.Errorf("second period: %g, want 87", got)
	}
}

func TestSquareWaveEndlessWhenEndZero(t *testing.T) {
	w := Square{Mid: 10, Amplitude: 4, PeriodCycles: 10}
	if got := w.At(1_000_003); got != 12 && got != 8 {
		t.Errorf("endless square produced %g, want 12 or 8", got)
	}
}

func TestSineWaveBounds(t *testing.T) {
	w := Sine{Mid: 70, Amplitude: 30, PeriodCycles: 100}
	f := func(c uint16) bool {
		v := w.At(int(c))
		return v >= 55-1e-9 && v <= 85+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Quarter period should be near the positive peak.
	if got := w.At(25); math.Abs(got-85) > 0.2 {
		t.Errorf("sine at quarter period = %g, want ≈ 85", got)
	}
}

func TestTriangleWaveShape(t *testing.T) {
	w := Triangle{Mid: 50, Amplitude: 20, PeriodCycles: 100}
	if got := w.At(0); math.Abs(got-40) > 1e-9 {
		t.Errorf("triangle at 0 = %g, want 40 (bottom)", got)
	}
	if got := w.At(50); math.Abs(got-60) > 1e-9 {
		t.Errorf("triangle at half = %g, want 60 (top)", got)
	}
	if got := w.At(25); math.Abs(got-50) > 1e-9 {
		t.Errorf("triangle at quarter = %g, want 50 (mid)", got)
	}
	f := func(c uint16) bool {
		v := w.At(int(c))
		return v >= 40-1e-9 && v <= 60+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleMeanOverPeriodIsMid(t *testing.T) {
	w := Triangle{Mid: 50, Amplitude: 20, PeriodCycles: 100}
	sum := 0.0
	for c := 0; c < 100; c++ {
		sum += w.At(c)
	}
	if mean := sum / 100; math.Abs(mean-50) > 0.5 {
		t.Errorf("triangle mean over period = %g, want ≈ 50", mean)
	}
}

func TestConstantAndFuncWaveforms(t *testing.T) {
	if got := Constant(42).At(1234); got != 42 {
		t.Errorf("Constant.At = %g, want 42", got)
	}
	w := WaveformFunc(func(c int) float64 { return float64(2 * c) })
	if got := w.At(21); got != 42 {
		t.Errorf("WaveformFunc.At = %g, want 42", got)
	}
}

func TestSamples(t *testing.T) {
	s := Samples(Constant(7), 5)
	if len(s) != 5 {
		t.Fatalf("Samples length %d, want 5", len(s))
	}
	for i, v := range s {
		if v != 7 {
			t.Errorf("sample %d = %g, want 7", i, v)
		}
	}
}

// Property from Section 3.1.1: the quarter-period sum difference of a
// triangle wave of peak-to-peak X is X·T/8, and of a square wave X·T/4.
func TestQuarterPeriodSumIdentities(t *testing.T) {
	const T = 100
	quarterDiff := func(w Waveform, start int) float64 {
		var recent, prior float64
		for c := 0; c < T/4; c++ {
			prior += w.At(start + c)
			recent += w.At(start + T/4 + c)
		}
		return math.Abs(recent - prior)
	}

	sq := Square{Mid: 0, Amplitude: 32, PeriodCycles: T}
	// Transition high→low happens at T/2; take the window centered there.
	if got, want := quarterDiff(sq, T/4), 32.0*T/4; math.Abs(got-want) > 1e-9 {
		t.Errorf("square quarter-sum difference = %g, want X·T/4 = %g", got, want)
	}

	tr := Triangle{Mid: 0, Amplitude: 32, PeriodCycles: T}
	// The high→low transition of a triangle is its falling half
	// [T/2, T): the first falling quarter sums X·T/8 above the second.
	got := quarterDiff(tr, T/2)
	want := 32.0 * T / 8
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("triangle quarter-sum difference = %g, want ≈ X·T/8 = %g", got, want)
	}
}
