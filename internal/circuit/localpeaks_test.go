package circuit

import "testing"

func pts(vals ...float64) []ImpedancePoint {
	out := make([]ImpedancePoint, len(vals))
	for i, v := range vals {
		out[i] = ImpedancePoint{FrequencyHz: float64(i + 1), Ohms: v}
	}
	return out
}

func peakFreqs(peaks []ImpedancePoint) []float64 {
	out := make([]float64, len(peaks))
	for i, p := range peaks {
		out[i] = p.FrequencyHz
	}
	return out
}

func TestLocalPeaksShapes(t *testing.T) {
	cases := []struct {
		name string
		in   []ImpedancePoint
		want []float64 // expected peak frequencies (index+1)
	}{
		{"empty", nil, nil},
		{"single", pts(1), nil},
		{"monotonic-up", pts(1, 2, 3, 4), nil},
		{"monotonic-down", pts(4, 3, 2, 1), nil},
		{"one-peak", pts(1, 3, 1), []float64{2}},
		{"two-peaks", pts(1, 3, 1, 5, 2), []float64{2, 4}},
		{"plateau-peak", pts(1, 3, 3, 3, 1), []float64{3}},
		{"plateau-shoulder-up", pts(1, 3, 3, 4, 1), []float64{4}},
		{"endpoint-high", pts(5, 1, 2), nil},
		{"valley-only", pts(3, 1, 3), nil},
		{"three-peaks", pts(0, 2, 0, 4, 0, 3, 0), []float64{2, 4, 6}},
	}
	for _, tc := range cases {
		got := peakFreqs(LocalPeaks(tc.in))
		if len(got) != len(tc.want) {
			t.Errorf("%s: peaks at %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: peaks at %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}
}

// TestLocalPeaksAgreesWithGlobalPeak: on a single-resonance profile the
// multi-peak scan finds exactly the global peak PeakImpedance reports.
func TestLocalPeaksAgreesWithGlobalPeak(t *testing.T) {
	sweep := Table1().ImpedanceSweep(10e6, 400e6, 2000)
	peaks := LocalPeaks(sweep)
	if len(peaks) != 1 {
		t.Fatalf("Table 1 profile has %d local peaks, want 1", len(peaks))
	}
	if global := PeakImpedance(sweep); peaks[0] != global {
		t.Errorf("local peak %+v != global peak %+v", peaks[0], global)
	}
}

// TestLocalPeaksFindsBothTwoStagePeaks: the Section 2.2 two-stage
// profile shows the low- and medium-frequency maxima as two separate
// local peaks in one scan, where PeakImpedance alone reports only the
// larger.
func TestLocalPeaksFindsBothTwoStagePeaks(t *testing.T) {
	p := Table1TwoStage()
	peaks := LocalPeaks(p.ImpedanceSweep(100e3, 1e9, 4000))
	if len(peaks) != 2 {
		t.Fatalf("two-stage profile has %d local peaks (%v), want 2", len(peaks), peaks)
	}
	low, med := p.Peaks()
	if r := peaks[0].FrequencyHz / low.FrequencyHz; r < 0.8 || r > 1.25 {
		t.Errorf("first local peak at %.3g Hz, want near %.3g Hz", peaks[0].FrequencyHz, low.FrequencyHz)
	}
	if r := peaks[1].FrequencyHz / med.FrequencyHz; r < 0.8 || r > 1.25 {
		t.Errorf("second local peak at %.3g Hz, want near %.3g Hz", peaks[1].FrequencyHz, med.FrequencyHz)
	}
}
