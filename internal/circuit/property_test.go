package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestLinearityOfDeviation: the circuit is linear, so scaling the current
// *variation* around a bias scales the reported deviation by the same
// factor.
func TestLinearityOfDeviation(t *testing.T) {
	p := Table1()
	run := func(scale float64, seed uint64) []float64 {
		r := rng.New(seed)
		sim := NewSimulator(p, 70)
		out := make([]float64, 400)
		for c := range out {
			i := 70 + scale*(r.Float64()*30-15)
			out[c] = sim.Step(i)
		}
		return out
	}
	base := run(1, 42)
	doubled := run(2, 42)
	for c := range base {
		if math.Abs(doubled[c]-2*base[c]) > 1e-9 {
			t.Fatalf("cycle %d: 2x variation gave %g, want %g", c, doubled[c], 2*base[c])
		}
	}
}

// TestSuperposition: the response to the sum of two variation waveforms
// is the sum of the individual responses.
func TestSuperposition(t *testing.T) {
	p := Table1()
	const bias = 70.0
	wa := Sine{Mid: 0, Amplitude: 20, PeriodCycles: 100}
	wb := Square{Mid: 0, Amplitude: 12, PeriodCycles: 37}

	run := func(w func(int) float64) []float64 {
		sim := NewSimulator(p, bias)
		out := make([]float64, 600)
		for c := range out {
			out[c] = sim.Step(bias + w(c))
		}
		return out
	}
	ra := run(wa.At)
	rb := run(wb.At)
	rsum := run(func(c int) float64 { return wa.At(c) + wb.At(c) })
	for c := range rsum {
		if math.Abs(rsum[c]-(ra[c]+rb[c])) > 1e-9 {
			t.Fatalf("cycle %d: superposition violated: %g vs %g", c, rsum[c], ra[c]+rb[c])
		}
	}
}

// TestBoundedInputBoundedOutput: any current waveform inside the
// processor's [IMin, IMax] envelope keeps the deviation finite and well
// below Vdd.
func TestBoundedInputBoundedOutput(t *testing.T) {
	p := Table1()
	f := func(seed uint64) bool {
		r := rng.New(seed)
		sim := NewSimulator(p, 70)
		for c := 0; c < 2000; c++ {
			i := p.IMin + r.Float64()*(p.IMax-p.IMin)
			dev := sim.Step(i)
			if math.IsNaN(dev) || math.Abs(dev) > p.Vdd/2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDecayToZero: after any excitation stops, the deviation decays
// toward zero at the damping rate.
func TestDecayToZero(t *testing.T) {
	p := Table1()
	sim := NewSimulator(p, 70)
	w := Square{Mid: 70, Amplitude: 40, PeriodCycles: 100, End: 500}
	var dev float64
	for c := 0; c < 500; c++ {
		dev = sim.Step(w.At(c))
	}
	if math.Abs(dev) < 1e-4 {
		t.Skip("excitation left no residual to decay")
	}
	for c := 0; c < 3000; c++ {
		dev = sim.Step(70)
	}
	if math.Abs(dev) > 1e-6 {
		t.Errorf("deviation %g V after 3000 quiet cycles, want ≈ 0", dev)
	}
}
