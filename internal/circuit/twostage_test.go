package circuit

import (
	"math"
	"testing"
)

func TestTwoStageValidate(t *testing.T) {
	if err := Table1TwoStage().Validate(); err != nil {
		t.Fatalf("default two-stage invalid: %v", err)
	}
	bad := Table1TwoStage()
	bad.C1 = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero package capacitance accepted")
	}
	bad = Table1TwoStage()
	bad.IMax = bad.IMin
	if err := bad.Validate(); err == nil {
		t.Error("degenerate current bounds accepted")
	}
}

func TestTwoStageHasTwoImpedancePeaks(t *testing.T) {
	p := Table1TwoStage()
	low, med := p.Peaks()
	// Low-frequency peak at a few megahertz (Section 2.2), medium near
	// 100 MHz as for the single-stage Table 1 model.
	if low.FrequencyHz < 1e6 || low.FrequencyHz > 20e6 {
		t.Errorf("low peak at %.2f MHz, want a few MHz", low.FrequencyHz/1e6)
	}
	if math.Abs(med.FrequencyHz-100e6) > 10e6 {
		t.Errorf("medium peak at %.2f MHz, want ≈ 100 MHz", med.FrequencyHz/1e6)
	}
	// Both are genuine peaks: impedance well above the DC value.
	if low.Ohms < 2*(p.R1+p.R2) || med.Ohms < 2*(p.R1+p.R2) {
		t.Errorf("peaks not prominent: low %g Ω, med %g Ω", low.Ohms, med.Ohms)
	}
	// The paper: the low-frequency peak is "fairly small" compared to
	// the medium-frequency threat in current technology.
	if low.Ohms > med.Ohms {
		t.Errorf("low peak (%g Ω) should not dominate medium peak (%g Ω)", low.Ohms, med.Ohms)
	}
}

func TestTwoStageMediumPeakMatchesSingleStage(t *testing.T) {
	p := Table1TwoStage()
	single := p.MediumStage()
	_, med := p.Peaks()
	zSingle := single.Impedance(single.ResonantFrequency())
	if math.Abs(med.Ohms-zSingle)/zSingle > 0.25 {
		t.Errorf("two-stage medium peak %g Ω vs single-stage %g Ω", med.Ohms, zSingle)
	}
}

func TestTwoStageSteadyStateZeroDeviation(t *testing.T) {
	p := Table1TwoStage()
	sim := NewTwoStageSimulator(p, 70)
	for c := 0; c < 2000; c++ {
		if dev := sim.Step(70); math.Abs(dev) > 1e-9 {
			t.Fatalf("cycle %d: deviation %g at constant current", c, dev)
		}
	}
}

func TestTwoStageLowFrequencyResonanceBuildsUp(t *testing.T) {
	p := Table1TwoStage()
	low := p.LowStage()
	period := int(math.Round(p.ClockHz / low.ResonantFrequency()))
	mid := (p.IMax + p.IMin) / 2

	peakAt := func(periodCycles int) float64 {
		sim := NewTwoStageSimulator(p, mid)
		w := Square{Mid: mid, Amplitude: 40, PeriodCycles: periodCycles}
		peak := 0.0
		for c := 0; c < 12*period; c++ {
			if d := math.Abs(sim.Step(w.At(c))); d > peak {
				peak = d
			}
		}
		return peak
	}
	onPeak := peakAt(period)
	offPeak := peakAt(period / 4)
	if onPeak <= offPeak {
		t.Errorf("low-frequency stimulation (%d cycles) peaked %g V, off-resonance %g V",
			period, onPeak, offPeak)
	}
}

func TestTwoStageMediumResonanceStillPresent(t *testing.T) {
	p := Table1TwoStage()
	med := p.MediumStage()
	period := int(math.Round(p.ClockHz / med.ResonantFrequency()))
	mid := (p.IMax + p.IMin) / 2
	sim := NewTwoStageSimulator(p, mid)
	w := Square{Mid: mid, Amplitude: 50, PeriodCycles: period}
	peak := 0.0
	for c := 0; c < 10*period; c++ {
		if d := math.Abs(sim.Step(w.At(c))); d > peak {
			peak = d
		}
	}
	// The package capacitance shunts a little of the medium-frequency
	// response, but in-band stimulation above the threshold must still
	// violate the margin.
	if peak < p.NoiseMarginVolts() {
		t.Errorf("medium-frequency stimulation peaked only %g V on the two-stage network", peak)
	}
}

func TestTwoStageReset(t *testing.T) {
	sim := NewTwoStageSimulator(Table1TwoStage(), 50)
	for c := 0; c < 300; c++ {
		sim.Step(50 + 30*float64(c%2))
	}
	sim.Reset(80)
	if sim.Cycle() != 0 {
		t.Error("cycle not reset")
	}
	if dev := sim.Step(80); math.Abs(dev) > 1e-9 {
		t.Errorf("deviation %g after reset at steady current", dev)
	}
	st := sim.State()
	if math.Abs(st.I1-80) > 1e-6 || math.Abs(st.I2-80) > 1e-6 {
		t.Errorf("branch currents %g/%g after reset, want 80", st.I1, st.I2)
	}
}

func TestTwoStageDCImpedance(t *testing.T) {
	p := Table1TwoStage()
	if got := p.Impedance(0); math.Abs(got-(p.R1+p.R2)) > 1e-12 {
		t.Errorf("Z(0) = %g, want R1+R2 = %g", got, p.R1+p.R2)
	}
}

func TestTwoStageSweepIsLogSpaced(t *testing.T) {
	p := Table1TwoStage()
	pts := p.ImpedanceSweep(1e6, 1e9, 31)
	if len(pts) != 31 {
		t.Fatalf("%d points", len(pts))
	}
	r1 := pts[1].FrequencyHz / pts[0].FrequencyHz
	r2 := pts[30].FrequencyHz / pts[29].FrequencyHz
	if math.Abs(r1-r2)/r1 > 1e-6 {
		t.Errorf("ratios %g vs %g not log-spaced", r1, r2)
	}
}

func TestTwoStageDegeneratesToSingleStage(t *testing.T) {
	// With a negligible off-chip loop (tiny L1/R1, enormous C1) the
	// two-stage network behaves like the single-stage Figure 1(b)
	// model: same medium-frequency transient response.
	p := Table1TwoStage()
	p.L1 = 1e-16
	p.R1 = 1e-9
	p.C1 = 1 // one farad: an effectively ideal off-chip source

	single := NewSimulator(p.MediumStage(), 70)
	double := NewTwoStageSimulator(p, 70)
	w := Square{Mid: 70, Amplitude: 40, PeriodCycles: 100}
	worst := 0.0
	for c := 0; c < 1500; c++ {
		i := w.At(c)
		d1 := single.Step(i)
		d2 := double.Step(i)
		if e := math.Abs(d1 - d2); e > worst {
			worst = e
		}
	}
	if worst > 1e-3 {
		t.Errorf("degenerate two-stage diverges from single-stage by %g V", worst)
	}
}

func TestTwoStageLinearity(t *testing.T) {
	p := Table1TwoStage()
	run := func(scale float64) []float64 {
		sim := NewTwoStageSimulator(p, 70)
		w := Sine{Mid: 0, Amplitude: 20, PeriodCycles: 2500}
		out := make([]float64, 4000)
		for c := range out {
			out[c] = sim.Step(70 + scale*w.At(c))
		}
		return out
	}
	a, b := run(1), run(2)
	for c := range a {
		if math.Abs(b[c]-2*a[c]) > 1e-9 {
			t.Fatalf("cycle %d: linearity violated", c)
		}
	}
}
