package circuit

import "fmt"

// Method selects the numerical scheme used to advance the circuit state.
// The paper uses the Heun formula (improved Euler); forward Euler is kept
// for the integrator ablation study.
type Method int

const (
	// Heun is the improved Euler predictor-corrector scheme (paper §4.1).
	Heun Method = iota
	// Euler is the first-order forward Euler scheme (ablation baseline).
	Euler
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case Heun:
		return "heun"
	case Euler:
		return "euler"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// State is the instantaneous electrical state of the second-order supply
// of Figure 1(b): the deviation of the die node voltage from its source
// value and the current through the supply inductor.
type State struct {
	// V is the raw node voltage in volts relative to the (eliminated)
	// source, i.e. it includes the IR drop.
	V float64
	// IL is the inductor (supply) current in amps.
	IL float64
}

// Simulator advances the Figure 1(b) circuit one processor cycle at a
// time, driven by the per-cycle processor core current. The governing
// equations, with the voltage source shorted by linearity, are
//
//	dV/dt  = (IL - Icpu) / C
//	dIL/dt = -(V + R·IL) / L
//
// The reported noise deviation subtracts the IR drop (paper §4.1): a
// constant processor current produces zero deviation in steady state.
type Simulator struct {
	p      Params
	method Method
	dt     float64
	state  State
	cycle  uint64
}

// NewSimulator returns a transient simulator for supply p using the Heun
// formula with a time step of one processor clock cycle. The initial state
// is the DC steady state for current i0, so simulations begin glitch-free.
func NewSimulator(p Params, i0 float64) *Simulator {
	s := &Simulator{p: p, method: Heun, dt: 1 / p.ClockHz}
	s.Reset(i0)
	return s
}

// NewSimulatorMethod is NewSimulator with an explicit integration method.
func NewSimulatorMethod(p Params, i0 float64, m Method) *Simulator {
	s := NewSimulator(p, i0)
	s.method = m
	return s
}

// Reset restores the DC steady state for processor current i0: the
// inductor carries i0 and the node sits at the IR drop below the source.
func (s *Simulator) Reset(i0 float64) {
	s.state = State{V: -s.p.R * i0, IL: i0}
	s.cycle = 0
}

// Fork returns an independent copy of the simulator continuing from the
// same electrical state: stepping both with identical current sequences
// produces bit-identical deviations.
func (s *Simulator) Fork() *Simulator {
	f := *s
	return &f
}

// Params returns the supply parameters the simulator was built with.
func (s *Simulator) Params() Params { return s.p }

// State returns the raw electrical state (including IR drop).
func (s *Simulator) State() State { return s.state }

// Cycle returns the number of steps taken since construction or Reset.
func (s *Simulator) Cycle() uint64 { return s.cycle }

// derivatives evaluates the circuit ODE right-hand side.
func (s *Simulator) derivatives(st State, icpu float64) (dV, dIL float64) {
	dV = (st.IL - icpu) / s.p.C
	dIL = -(st.V + s.p.R*st.IL) / s.p.L
	return dV, dIL
}

// Step advances the circuit by one processor cycle during which the core
// draws icpu amps, and returns the supply-voltage deviation in volts with
// the IR drop subtracted. A deviation whose magnitude exceeds
// Params.NoiseMarginVolts is a noise-margin violation.
func (s *Simulator) Step(icpu float64) float64 {
	st := s.state
	dV1, dIL1 := s.derivatives(st, icpu)
	switch s.method {
	case Euler:
		st.V += s.dt * dV1
		st.IL += s.dt * dIL1
	default: // Heun predictor-corrector
		pred := State{V: st.V + s.dt*dV1, IL: st.IL + s.dt*dIL1}
		dV2, dIL2 := s.derivatives(pred, icpu)
		st.V += s.dt * 0.5 * (dV1 + dV2)
		st.IL += s.dt * 0.5 * (dIL1 + dIL2)
	}
	s.state = st
	s.cycle++
	return s.Deviation(icpu)
}

// Deviation returns the current noise deviation in volts given the core
// current drawn this cycle, i.e. the node voltage with the IR drop for
// that current level added back out.
func (s *Simulator) Deviation(icpu float64) float64 {
	return s.state.V + s.p.R*icpu
}

// Violated reports whether deviation dev exceeds the noise margin.
func (s *Simulator) Violated(dev float64) bool {
	if dev < 0 {
		dev = -dev
	}
	return dev > s.p.NoiseMarginVolts()
}

// RunResult summarises a batch transient simulation.
type RunResult struct {
	// Deviations holds the per-cycle noise deviation in volts.
	Deviations []float64
	// Violations is the number of cycles whose deviation exceeded the
	// noise margin.
	Violations int
	// PeakDeviation is the largest |deviation| observed, in volts.
	PeakDeviation float64
}

// Run simulates the supply for the entire current waveform (one sample per
// cycle) and returns the per-cycle deviations plus summary statistics.
// The simulator's state advances; call Reset to reuse it.
func (s *Simulator) Run(current []float64) RunResult {
	res := RunResult{Deviations: make([]float64, len(current))}
	margin := s.p.NoiseMarginVolts()
	for i, icpu := range current {
		d := s.Step(icpu)
		res.Deviations[i] = d
		ad := d
		if ad < 0 {
			ad = -ad
		}
		if ad > res.PeakDeviation {
			res.PeakDeviation = ad
		}
		if ad > margin {
			res.Violations++
		}
	}
	return res
}
