package circuit

import (
	"math"
	"testing"
)

func TestMultiDomainValidate(t *testing.T) {
	if err := Table1TwoDomain().Validate(); err != nil {
		t.Fatalf("Table1TwoDomain invalid: %v", err)
	}
	if err := ThreeSupplyExample().Validate(); err != nil {
		t.Fatalf("ThreeSupplyExample invalid: %v", err)
	}
	bad := Table1TwoDomain()
	bad.Domains = nil
	if bad.Validate() == nil {
		t.Error("accepted zero domains")
	}
	bad = Table1TwoDomain()
	bad.Domains[1].Name = bad.Domains[0].Name
	if bad.Validate() == nil {
		t.Error("accepted duplicate domain names")
	}
	bad = Table1TwoDomain()
	bad.Cpkg = 0
	if bad.Validate() == nil {
		t.Error("accepted zero package capacitance")
	}
	bad = Table1TwoDomain()
	bad.Domains[0].Lbump = -1
	if bad.Validate() == nil {
		t.Error("accepted negative bump inductance")
	}
}

// TestMultiDomainSteadyStateZeroDeviation: constant per-domain draws at
// the DC initialisation level must produce zero deviation on every
// domain (IR drops are subtracted), matching the single-stage contract.
func TestMultiDomainSteadyStateZeroDeviation(t *testing.T) {
	p := Table1TwoDomain()
	i0 := []float64{23, 12}
	s := NewMultiDomainSimulator(p, i0)
	dev := make([]float64, 2)
	for c := 0; c < 20000; c++ {
		s.Step(i0, dev)
		for d, v := range dev {
			if math.Abs(v) > 1e-9 {
				t.Fatalf("cycle %d domain %d: deviation %g under constant current", c, d, v)
			}
		}
	}
}

// TestMultiDomainDieResonanceMatchesTable1: the two half-die domains in
// parallel reproduce the Table 1 electricals, so each domain's die-level
// resonance sits at the Table 1 resonant frequency.
func TestMultiDomainDieResonanceMatchesTable1(t *testing.T) {
	p := Table1TwoDomain()
	want := Table1().ResonantFrequency()
	for d, dp := range p.Domains {
		got := dp.ResonantFrequency()
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("domain %d resonance %.3g Hz, want %.3g Hz", d, got, want)
		}
	}
}

// TestMultiDomainImpedanceHasMultiplePeaks: the die-node impedance
// profile shows one local maximum per resonant tier — die, package, and
// board — which is the multi-peak structure the decap literature
// predicts and a single lumped RLC cannot produce.
func TestMultiDomainImpedanceHasMultiplePeaks(t *testing.T) {
	p := Table1TwoDomain()
	pts := p.ImpedanceSweep(0, 100e3, 1e9, 4000)
	peaks := LocalPeaks(pts)
	if len(peaks) < 2 {
		t.Fatalf("found %d impedance peaks (%v), want ≥ 2", len(peaks), peaks)
	}
	// The predicted tier resonances must each be near a found peak.
	predicted := []float64{
		p.BoardResonantFrequency(),
		p.PackageResonantFrequency(),
		p.Domains[0].ResonantFrequency(),
	}
	for _, f := range predicted {
		nearest := math.Inf(1)
		for _, pk := range peaks {
			if r := math.Abs(pk.FrequencyHz-f) / f; r < nearest {
				nearest = r
			}
		}
		if nearest > 0.35 {
			t.Errorf("no impedance peak near predicted resonance %.3g Hz (peaks: %v)", f, peaks)
		}
	}

	// For comparison the lumped Table 1 profile has exactly one.
	lumped := LocalPeaks(Table1().ImpedanceSweep(1e6, 1e9, 4000))
	if len(lumped) != 1 {
		t.Errorf("lumped Table 1 profile has %d local peaks, want 1", len(lumped))
	}
}

// TestMultiDomainPackageResonanceSuperposes: in-phase square-wave draws
// on both domains at the package resonance build a much larger die-node
// deviation than either domain driven alone — the constructive
// interference at the shared tier that motivates the multi-domain model.
func TestMultiDomainPackageResonanceSuperposes(t *testing.T) {
	p := Table1TwoDomain()
	period := int(math.Round(p.ClockHz / p.PackageResonantFrequency()))
	run := func(amp0, amp1 float64) float64 {
		s := NewMultiDomainSimulator(p, []float64{20, 20})
		dev := make([]float64, 2)
		draws := make([]float64, 2)
		peak := 0.0
		for c := 0; c < 40*period; c++ {
			sq := -1.0
			if c%period < period/2 {
				sq = 1.0
			}
			draws[0] = 20 + amp0*sq
			draws[1] = 20 + amp1*sq
			s.Step(draws, dev)
			for _, v := range dev {
				if a := math.Abs(v); a > peak {
					peak = a
				}
			}
		}
		return peak
	}
	both := run(10, 10)
	alone := run(10, 0)
	if both < 1.5*alone {
		t.Errorf("in-phase peak %.4g V not appreciably above single-domain peak %.4g V", both, alone)
	}
}

// TestMultiDomainForkBitIdentical: stepping a fork and its original with
// identical draw sequences produces bit-identical deviations, and
// diverging the fork does not disturb the original.
func TestMultiDomainForkBitIdentical(t *testing.T) {
	p := Table1TwoDomain()
	a := NewMultiDomainSimulator(p, []float64{20, 15})
	dev := make([]float64, 2)
	draws := []float64{20, 15}
	for c := 0; c < 500; c++ {
		draws[0] = 20 + 5*math.Sin(float64(c)/40)
		draws[1] = 15 + 3*math.Sin(float64(c)/25)
		a.Step(draws, dev)
	}
	b := a.Fork().(*MultiDomainSimulator)
	devA := make([]float64, 2)
	devB := make([]float64, 2)
	for c := 0; c < 500; c++ {
		draws[0] = 20 + 7*math.Sin(float64(c)/33)
		draws[1] = 15 + 4*math.Sin(float64(c)/50)
		a.Step(draws, devA)
		b.Step(draws, devB)
		if devA[0] != devB[0] || devA[1] != devB[1] {
			t.Fatalf("cycle %d: fork deviations %v != original %v", c, devB, devA)
		}
	}
	// Diverge the fork; the original's trajectory must be unaffected.
	ref := a.Fork().(*MultiDomainSimulator)
	b.Step([]float64{90, 90}, devB)
	for c := 0; c < 100; c++ {
		a.Step(draws, devA)
		ref.Step(draws, devB)
		if devA[0] != devB[0] || devA[1] != devB[1] {
			t.Fatalf("cycle %d: original perturbed by fork divergence", c)
		}
	}
}

// TestMultiDomainDCImpedance: at DC every capacitor is open, so a
// domain sees the series resistance of its path to the source.
func TestMultiDomainDCImpedance(t *testing.T) {
	p := Table1TwoDomain()
	for d := range p.Domains {
		want := p.Rboard + p.Rpkg + p.Domains[d].Rbump
		if got := p.Impedance(d, 0); got != want {
			t.Errorf("domain %d DC impedance %g, want %g", d, got, want)
		}
	}
}

// TestNetworkRegistryKinds pins the registered network kind set and
// order (the canonical encoding does not depend on the order, but flag
// help and error text do).
func TestNetworkRegistryKinds(t *testing.T) {
	want := []string{NetworkLumped, NetworkTwoStage, NetworkMultiDomain}
	got := NetworkKinds()
	if len(got) != len(want) {
		t.Fatalf("NetworkKinds() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("NetworkKinds()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestNetworkConfigNormalization: empty kind resolves to lumped with
// Table 1 parameters; unknown kinds error listing the registered kinds;
// normalization clears the sections of unselected kinds.
func TestNetworkConfigNormalization(t *testing.T) {
	n, err := NetworkConfig{}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != NetworkLumped || n.Lumped == nil || *n.Lumped != Table1() {
		t.Errorf("empty config normalized to %+v, want lumped Table 1", n)
	}

	ts := Table1TwoStage()
	n, err = NetworkConfig{Kind: NetworkMultiDomain, TwoStage: &ts}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.TwoStage != nil {
		t.Error("normalization kept an unselected kind's parameter section")
	}
	if n.MultiDomain == nil || len(n.MultiDomain.Domains) != 2 {
		t.Errorf("multidomain defaults not resolved: %+v", n.MultiDomain)
	}

	_, err = NetworkConfig{Kind: "mesh"}.Normalized()
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, k := range NetworkKinds() {
		if !containsStr(err.Error(), k) {
			t.Errorf("unknown-kind error %q does not list registered kind %q", err, k)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestBuildNetworkAllKinds: every registered kind builds with default
// parameters and honours the Network contract at DC.
func TestBuildNetworkAllKinds(t *testing.T) {
	for _, kind := range NetworkKinds() {
		cfg := NetworkConfig{Kind: kind}
		nd := cfg.DomainCount()
		if nd < 1 {
			t.Errorf("%s: domain count %d", kind, nd)
			continue
		}
		i0 := make([]float64, nd)
		for d := range i0 {
			i0[d] = 10
		}
		net, err := BuildNetwork(cfg, i0)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if net.Kind() != kind || net.Domains() != nd {
			t.Errorf("%s: built network reports kind %q domains %d", kind, net.Kind(), net.Domains())
		}
		for d := 0; d < nd; d++ {
			info := net.DomainInfo(d)
			if info.NominalVolts <= 0 || info.NoiseMarginVolts <= 0 || info.ResonantFrequencyHz <= 0 {
				t.Errorf("%s domain %d: incomplete DomainInfo %+v", kind, d, info)
			}
		}
		dev := make([]float64, nd)
		for c := 0; c < 1000; c++ {
			net.Step(i0, dev)
			for d, v := range dev {
				if math.Abs(v) > 1e-9 {
					t.Errorf("%s domain %d: DC deviation %g", kind, d, v)
					break
				}
			}
		}
		if _, err := BuildNetwork(cfg, make([]float64, nd+1)); err == nil {
			t.Errorf("%s: accepted wrong initial-current count", kind)
		}
	}
}
