package circuit

import "math"

// Waveform produces a per-cycle current sample. Cycle numbering starts at
// zero. Waveforms are used both to stimulate the supply for calibration
// (Section 2.1.3) and to reproduce the known-waveform experiments of
// Section 5.1.1 (Figure 3).
type Waveform interface {
	// At returns the current in amps drawn during the given cycle.
	At(cycle int) float64
}

// WaveformFunc adapts an ordinary function to the Waveform interface.
type WaveformFunc func(cycle int) float64

// At calls f(cycle).
func (f WaveformFunc) At(cycle int) float64 { return f(cycle) }

// Constant is a flat current draw.
type Constant float64

// At returns the constant value regardless of cycle.
func (c Constant) At(int) float64 { return float64(c) }

// Square is a square-wave current: Mid±Amplitude/2, switching every half
// period. The wave starts in its high half at cycle Start and returns to
// Mid at cycle End (End <= 0 means the wave never stops). This is the
// stimulus shape of Figure 3.
type Square struct {
	Mid          float64 // center level, amps
	Amplitude    float64 // peak-to-peak swing, amps
	PeriodCycles int     // full period in cycles
	Start, End   int     // active range [Start, End)
}

// At returns the square-wave sample for the cycle.
func (s Square) At(cycle int) float64 {
	if cycle < s.Start || (s.End > 0 && cycle >= s.End) {
		return s.Mid
	}
	phase := (cycle - s.Start) % s.PeriodCycles
	if phase < s.PeriodCycles/2 {
		return s.Mid + s.Amplitude/2
	}
	return s.Mid - s.Amplitude/2
}

// Sine is a sinusoidal current Mid + (Amplitude/2)·sin(2π·cycle/Period)
// over [Start, End); outside the range it holds Mid.
type Sine struct {
	Mid          float64
	Amplitude    float64 // peak-to-peak
	PeriodCycles float64
	Start, End   int
}

// At returns the sine sample for the cycle.
func (s Sine) At(cycle int) float64 {
	if cycle < s.Start || (s.End > 0 && cycle >= s.End) {
		return s.Mid
	}
	return s.Mid + s.Amplitude/2*math.Sin(2*math.Pi*float64(cycle-s.Start)/s.PeriodCycles)
}

// Triangle is a triangle wave of the given peak-to-peak amplitude around
// Mid over [Start, End).
type Triangle struct {
	Mid          float64
	Amplitude    float64 // peak-to-peak
	PeriodCycles int
	Start, End   int
}

// At returns the triangle sample for the cycle.
func (t Triangle) At(cycle int) float64 {
	if cycle < t.Start || (t.End > 0 && cycle >= t.End) {
		return t.Mid
	}
	phase := (cycle - t.Start) % t.PeriodCycles
	half := t.PeriodCycles / 2
	var frac float64
	if phase < half {
		frac = float64(phase) / float64(half) // rising 0→1
	} else {
		frac = 1 - float64(phase-half)/float64(t.PeriodCycles-half) // falling 1→0
	}
	return t.Mid - t.Amplitude/2 + t.Amplitude*frac
}

// Samples evaluates w for n cycles starting at cycle 0.
func Samples(w Waveform, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = w.At(i)
	}
	return out
}
