// Network registry: the single place a PDN model is wired into the
// stack. A model registers one NetworkDescriptor — its kind string,
// config defaulting, validation, domain count, and constructor — and
// every consumer (sim.Machine construction, engine spec normalization
// and validation, cmd flag plumbing) walks the registry instead of
// switching on the kind, mirroring the engine's technique registry.
package circuit

import "fmt"

// Registered network kinds.
const (
	// NetworkLumped is the single lumped RLC of Figure 1(b).
	NetworkLumped = "lumped"
	// NetworkTwoStage is the two-loop network of Section 2.2.
	NetworkTwoStage = "twostage"
	// NetworkMultiDomain is the distributed multi-domain PDN stack.
	NetworkMultiDomain = "multidomain"
)

// NetworkConfig selects and parameterises a PDN model. Exactly one
// parameter section is meaningful — the one matching Kind — and
// Normalized clears the rest so equal networks encode equally.
type NetworkConfig struct {
	// Kind selects the registered model; empty means NetworkLumped.
	Kind string
	// Lumped parameterises NetworkLumped; nil means Table1.
	Lumped *Params
	// TwoStage parameterises NetworkTwoStage; nil means Table1TwoStage.
	TwoStage *TwoStageParams
	// MultiDomain parameterises NetworkMultiDomain; nil means
	// Table1TwoDomain.
	MultiDomain *MultiDomainParams
}

// NetworkDescriptor is one registered PDN model.
type NetworkDescriptor struct {
	// Kind is the model's identifier (NetworkConfig.Kind).
	Kind string
	// Clear removes the model's parameter section from a config; during
	// normalization every descriptor's Clear runs except the selected
	// model's, so only one section survives into a cache key.
	Clear func(c *NetworkConfig)
	// Normalize fills the model's parameter defaults in place.
	Normalize func(c *NetworkConfig)
	// Validate checks the resolved parameter section.
	Validate func(c *NetworkConfig) error
	// Domains returns the normalized config's domain count.
	Domains func(c *NetworkConfig) int
	// Build constructs the transient network initialised to the DC
	// steady state for per-domain draws i0 (len(i0) == Domains).
	Build func(c *NetworkConfig, i0 []float64) Network
}

var (
	networkRegistry      = map[string]*NetworkDescriptor{}
	networkRegistryOrder []*NetworkDescriptor
)

// RegisterNetwork adds a network descriptor. It panics on duplicate or
// incomplete registrations (registration happens at init time; a bad
// descriptor is a programming error).
func RegisterNetwork(d NetworkDescriptor) {
	if d.Kind == "" {
		panic("circuit.RegisterNetwork: empty network kind")
	}
	if _, dup := networkRegistry[d.Kind]; dup {
		panic(fmt.Sprintf("circuit.RegisterNetwork: duplicate network %q", d.Kind))
	}
	if d.Clear == nil || d.Normalize == nil || d.Validate == nil || d.Domains == nil || d.Build == nil {
		panic(fmt.Sprintf("circuit.RegisterNetwork: network %q is missing descriptor functions", d.Kind))
	}
	dd := d
	networkRegistry[d.Kind] = &dd
	networkRegistryOrder = append(networkRegistryOrder, &dd)
}

// NetworkKinds returns every registered network kind in registration
// order (the lumped default first).
func NetworkKinds() []string {
	out := make([]string, len(networkRegistryOrder))
	for i, d := range networkRegistryOrder {
		out[i] = d.Kind
	}
	return out
}

// lookupNetwork resolves a kind (empty means lumped) to its descriptor.
func lookupNetwork(kind string) (*NetworkDescriptor, bool) {
	if kind == "" {
		kind = NetworkLumped
	}
	d, ok := networkRegistry[kind]
	return d, ok
}

// Normalized resolves the config's defaults: the kind (empty means
// lumped), the selected model's parameter section, and the removal of
// every other section — so two configs describing the same network
// become structurally identical, which is what lets the engine key
// specs on the resolved form. Unknown kinds error, listing the
// registered kinds.
func (c NetworkConfig) Normalized() (NetworkConfig, error) {
	d, ok := lookupNetwork(c.Kind)
	if !ok {
		return NetworkConfig{}, fmt.Errorf("circuit: unknown network kind %q (registered kinds: %v)", c.Kind, NetworkKinds())
	}
	n := c
	n.Kind = d.Kind
	for _, o := range networkRegistryOrder {
		if o != d {
			o.Clear(&n)
		}
	}
	d.Normalize(&n)
	return n, nil
}

// Validate resolves and checks the config without building a network.
func (c NetworkConfig) Validate() error {
	n, err := c.Normalized()
	if err != nil {
		return err
	}
	return networkRegistry[n.Kind].Validate(&n)
}

// DomainCount returns the resolved config's domain count (zero for an
// unknown kind).
func (c NetworkConfig) DomainCount() int {
	n, err := c.Normalized()
	if err != nil {
		return 0
	}
	return networkRegistry[n.Kind].Domains(&n)
}

// BuildNetwork resolves, validates, and constructs the configured
// network at the DC steady state for per-domain draws i0.
func BuildNetwork(c NetworkConfig, i0 []float64) (Network, error) {
	n, err := c.Normalized()
	if err != nil {
		return nil, err
	}
	d := networkRegistry[n.Kind]
	if err := d.Validate(&n); err != nil {
		return nil, err
	}
	if want := d.Domains(&n); len(i0) != want {
		return nil, fmt.Errorf("circuit: network %q has %d domains, got %d initial currents", n.Kind, want, len(i0))
	}
	return d.Build(&n, i0), nil
}

func init() {
	RegisterNetwork(NetworkDescriptor{
		Kind:  NetworkLumped,
		Clear: func(c *NetworkConfig) { c.Lumped = nil },
		Normalize: func(c *NetworkConfig) {
			if c.Lumped == nil {
				p := Table1()
				c.Lumped = &p
			} else {
				p := *c.Lumped
				c.Lumped = &p
			}
		},
		Validate: func(c *NetworkConfig) error { return c.Lumped.Validate() },
		Domains:  func(c *NetworkConfig) int { return 1 },
		Build: func(c *NetworkConfig, i0 []float64) Network {
			return WrapSimulator(NewSimulator(*c.Lumped, i0[0]))
		},
	})

	RegisterNetwork(NetworkDescriptor{
		Kind:  NetworkTwoStage,
		Clear: func(c *NetworkConfig) { c.TwoStage = nil },
		Normalize: func(c *NetworkConfig) {
			if c.TwoStage == nil {
				p := Table1TwoStage()
				c.TwoStage = &p
			} else {
				p := *c.TwoStage
				c.TwoStage = &p
			}
		},
		Validate: func(c *NetworkConfig) error { return c.TwoStage.Validate() },
		Domains:  func(c *NetworkConfig) int { return 1 },
		Build: func(c *NetworkConfig, i0 []float64) Network {
			return WrapTwoStage(NewTwoStageSimulator(*c.TwoStage, i0[0]))
		},
	})

	RegisterNetwork(NetworkDescriptor{
		Kind:  NetworkMultiDomain,
		Clear: func(c *NetworkConfig) { c.MultiDomain = nil },
		Normalize: func(c *NetworkConfig) {
			if c.MultiDomain == nil {
				p := Table1TwoDomain()
				c.MultiDomain = &p
			} else {
				p := *c.MultiDomain
				p.Domains = append([]DomainParams(nil), p.Domains...)
				c.MultiDomain = &p
			}
		},
		Validate: func(c *NetworkConfig) error { return c.MultiDomain.Validate() },
		Domains:  func(c *NetworkConfig) int { return len(c.MultiDomain.Domains) },
		Build: func(c *NetworkConfig, i0 []float64) Network {
			return NewMultiDomainSimulator(*c.MultiDomain, i0)
		},
	})
}
