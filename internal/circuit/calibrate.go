package circuit

import (
	"errors"
	"fmt"
	"math"
)

// Calibration holds the design-time quantities of Section 2.1.3 that the
// resonance-tuning detector needs. They are determined, as in the paper,
// by stimulating the simulated supply with periodic current waveforms and
// observing when the noise margin is violated.
//
// Cross-checks against the paper's worked examples: for the Section 2
// supply (2 V, 5 GHz, Q≈6.3) this procedure yields a threshold of ~10 A,
// a band-edge tolerance of ~13 A and a repetition tolerance of ~6 half
// waves; for the Table 1 supply it yields ~31-32 A and ~4.
type Calibration struct {
	// ThresholdAmps is the resonant current variation threshold M:
	// repeated peak-to-peak variations at or below this value never
	// violate the noise margin even when sustained at the resonant
	// frequency.
	ThresholdAmps float64
	// MaxRepetitionTolerance is the number of resonant events (counted
	// in half waves; a full period counts as two) of a band-edge-sized
	// current variation at the resonant frequency that the supply
	// withstands before a violation occurs.
	MaxRepetitionTolerance int
	// BandEdgeToleranceAmps is the largest peak-to-peak variation the
	// supply withstands indefinitely at the edges of the resonance
	// band (13 A in the paper's Section 2 example). Larger variations
	// are tolerated outside the band, where they are absorbed by the
	// supply.
	BandEdgeToleranceAmps float64
}

// calibrationHorizonPeriods is how many resonant periods a sustained
// stimulus runs before it is declared non-violating. Underdamped
// second-order responses settle within a few Q periods; 40 periods is
// far past steady state for any realistic Q.
const calibrationHorizonPeriods = 40

// sustainsViolation reports whether a sustained sinusoidal variation of
// the given peak-to-peak amplitude centered mid-range at the given period
// causes a noise-margin violation, and at which cycle (relative to
// stimulus start) the first violation occurs.
func sustainsViolation(p Params, amplitude, periodCycles float64) (violated bool, atCycle int) {
	mid := (p.IMax + p.IMin) / 2
	sim := NewSimulator(p, mid)
	w := Sine{Mid: mid, Amplitude: amplitude, PeriodCycles: periodCycles}
	margin := p.NoiseMarginVolts()
	horizon := int(periodCycles) * calibrationHorizonPeriods
	for c := 0; c < horizon; c++ {
		dev := sim.Step(w.At(c))
		if math.Abs(dev) > margin {
			return true, c
		}
	}
	return false, -1
}

// bisectTolerance returns the largest whole-amp peak-to-peak amplitude
// that never violates when sustained at the given period, assuming the
// processor's maximum swing does violate (checked by the caller).
func bisectTolerance(p Params, periodCycles float64) float64 {
	lo, hi := 0.0, p.MaxCurrentSwing() // lo never violates, hi violates
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if v, _ := sustainsViolation(p, mid, periodCycles); v {
			hi = mid
		} else {
			lo = mid
		}
	}
	return math.Floor(hi)
}

// ResonantThreshold determines the resonant current variation threshold by
// bisecting the smallest sustained peak-to-peak variation at the resonant
// frequency that violates the noise margin, rounded to the whole amps the
// current sensors report. Variations below the threshold "simply do not
// have enough energy" (Section 2.1.3) regardless of repetition.
func ResonantThreshold(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if !p.Underdamped() {
		return 0, errors.New("circuit: overdamped supply has no resonant threshold")
	}
	period := p.ResonantPeriodCycles()
	if v, _ := sustainsViolation(p, p.MaxCurrentSwing(), period); !v {
		// Even the largest possible variation never violates: the
		// supply is overdesigned and there is no inductive-noise
		// problem at this operating point.
		return p.MaxCurrentSwing(), nil
	}
	return bisectTolerance(p, period), nil
}

// BandEdgeTolerance returns the largest peak-to-peak variation (whole
// amps) the supply withstands indefinitely when stimulated at the edges of
// the resonance band.
func BandEdgeTolerance(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if !p.Underdamped() {
		return 0, errors.New("circuit: overdamped supply has no resonance band")
	}
	band := p.ResonanceBand()
	worst := p.MaxCurrentSwing()
	for _, f := range []float64{band.Lo, band.Hi} {
		period := p.ClockHz / f
		if v, _ := sustainsViolation(p, worst, period); !v {
			continue
		}
		if t := bisectTolerance(p, period); t < worst {
			worst = t
		}
	}
	return worst, nil
}

// MaxRepetitionTolerance determines how many repetitions (in half waves) of
// a band-edge-tolerance-sized current variation at the resonant frequency
// the supply tolerates before the noise margin is violated. This is the
// worst case the detector must guard against: variations larger than the
// band-edge tolerance cannot be sustained anywhere near the band at all.
// Resonance tuning must react before the resonant event count reaches this
// value.
func MaxRepetitionTolerance(p Params) (int, error) {
	edge, err := BandEdgeTolerance(p)
	if err != nil {
		return 0, err
	}
	period := p.ResonantPeriodCycles()
	violated, at := sustainsViolation(p, edge+1, period)
	if !violated {
		return math.MaxInt32, nil
	}
	half := period / 2
	// The violation happens during the (at/half + 1)-th half wave; that
	// many resonant events occurred by then.
	return int(float64(at)/half) + 1, nil
}

// DissipationCycles returns how many quiet cycles are needed for resonant
// energy equivalent to one event out of maxTolerance to dissipate, i.e.
// for the oscillation amplitude to decay by a factor (maxTol-1)/maxTol.
// The second-level response must hold at least this long (the paper holds
// 35 cycles for the Table 1 supply).
func DissipationCycles(p Params, maxTolerance int) int {
	if maxTolerance < 2 {
		maxTolerance = 2
	}
	alpha := p.DampingRateNepers()
	t := math.Log(float64(maxTolerance)/float64(maxTolerance-1)) / alpha
	return int(math.Ceil(t * p.ClockHz))
}

// Calibrate runs the full Section 2.1.3 procedure.
func Calibrate(p Params) (Calibration, error) {
	thr, err := ResonantThreshold(p)
	if err != nil {
		return Calibration{}, fmt.Errorf("calibrating threshold: %w", err)
	}
	edge, err := BandEdgeTolerance(p)
	if err != nil {
		return Calibration{}, fmt.Errorf("calibrating band-edge tolerance: %w", err)
	}
	tol, err := MaxRepetitionTolerance(p)
	if err != nil {
		return Calibration{}, fmt.Errorf("calibrating repetition tolerance: %w", err)
	}
	return Calibration{ThresholdAmps: thr, MaxRepetitionTolerance: tol, BandEdgeToleranceAmps: edge}, nil
}
