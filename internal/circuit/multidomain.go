package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
)

// DomainParams describes one supply domain of a distributed PDN: the
// die-side decoupling capacitance and the C4 bump branch feeding it from
// the shared package rail, plus the domain's electrical operating point.
type DomainParams struct {
	// Name labels the domain in reports and assignments ("core", "fp").
	Name string
	// Vdd is the domain's nominal supply voltage in volts.
	Vdd float64
	// NoiseMargin is the allowed deviation as a fraction of Vdd.
	NoiseMargin float64
	// Cdie is the domain's on-die decoupling capacitance in farads.
	Cdie float64
	// Rbump and Lbump form the C4 bump branch from the package rail to
	// the domain's die node.
	Rbump, Lbump float64
	// PowerUnits lists the power-model unit names (power.Unit.String)
	// drawing from this domain. Units listed nowhere default to domain
	// zero; a unit may appear in at most one domain.
	PowerUnits []string
}

// Validate reports whether the domain is usable.
func (d DomainParams) Validate() error {
	switch {
	case d.Name == "":
		return fmt.Errorf("circuit: domain must be named: %+v", d)
	case d.Cdie <= 0 || d.Rbump <= 0 || d.Lbump <= 0:
		return fmt.Errorf("circuit: domain %q bump R/L and die C must be positive: %+v", d.Name, d)
	case d.Vdd <= 0:
		return fmt.Errorf("circuit: domain %q Vdd must be positive (got %g)", d.Name, d.Vdd)
	case d.NoiseMargin <= 0 || d.NoiseMargin >= 1:
		return fmt.Errorf("circuit: domain %q noise margin must be in (0,1) (got %g)", d.Name, d.NoiseMargin)
	}
	return nil
}

// ResonantFrequency returns the domain's die-level resonance, the bump
// inductance against the die capacitance.
func (d DomainParams) ResonantFrequency() float64 {
	return 1 / (2 * math.Pi * math.Sqrt(d.Lbump*d.Cdie))
}

// MultiDomainParams describes the distributed multi-domain PDN stack: N
// die nodes under C4 bumps feeding per-domain rails from a shared
// package stage, which in turn hangs off a board stage, with per-tier
// decoupling capacitance (the PowerScout-style die/package/board
// template). All domains share the package and board tiers, so current
// variations in different domains superpose at the package rail — the
// shared-resonance interference a single lumped RLC cannot represent.
type MultiDomainParams struct {
	// Domains are the per-domain die stages (at least one).
	Domains []DomainParams
	// Cpkg is the package decoupling capacitance; Rpkg and Lpkg form the
	// branch from the board rail to the package rail.
	Cpkg, Rpkg, Lpkg float64
	// Cboard is the board bulk capacitance; Rboard and Lboard form the
	// branch from the voltage-regulator source to the board rail.
	Cboard, Rboard, Lboard float64
	// ClockHz converts between seconds and processor cycles.
	ClockHz float64
}

// Table1TwoDomain splits the Table 1 die into two equal supply domains —
// "core" (front end, integer units, ROB, buses) and "fp" (floating-point
// units and the memory hierarchy) — each carrying half the on-die
// decoupling capacitance behind twice the bump impedance, so the two die
// stages in parallel reproduce the Table 1 electricals (same 100 MHz
// die-level resonance per domain). The shared package stage resonates
// near 20 MHz (die-cap loaded) and the board stage near 0.7 MHz, giving
// the die node a multi-peak impedance profile. Both shared tiers are
// stiff (characteristic impedance well under half a milliohm, so an
// isolated memory-stall current step rings them by far less than the
// noise margin) but the package tier keeps a quality factor near seven:
// only a current oscillation *sustained* at its resonance builds the
// deviation past the margin — the resonant-specific behaviour the
// detection mechanism exists for, now one electrical tier up.
func Table1TwoDomain() MultiDomainParams {
	t1 := Table1()
	return MultiDomainParams{
		Domains: []DomainParams{
			{
				Name: "core", Vdd: t1.Vdd, NoiseMargin: t1.NoiseMargin,
				Cdie: t1.C / 2, Rbump: 2 * t1.R, Lbump: 2 * t1.L,
				PowerUnits: []string{"frontend", "rename", "window", "regfile", "intalu", "intmul", "rob", "bus"},
			},
			{
				Name: "fp", Vdd: t1.Vdd, NoiseMargin: t1.NoiseMargin,
				Cdie: t1.C / 2, Rbump: 2 * t1.R, Lbump: 2 * t1.L,
				PowerUnits: []string{"fpalu", "fpmul", "l1d", "l2", "mem"},
			},
		},
		Cpkg: 20e-6, Rpkg: 0.05e-3, Lpkg: 2.9e-12,
		Cboard: 450e-6, Rboard: 0.15e-3, Lboard: 100e-12,
		ClockHz: t1.ClockHz,
	}
}

// ThreeSupplyExample returns a three-domain stack in the spirit of the
// three-voltage-supply SoC decap study: core, floating-point, and memory
// domains with staggered die-level resonances (100, 50, and 25 MHz)
// over a 10 MHz package stage, so a single die node sees four distinct
// local impedance maxima.
func ThreeSupplyExample() MultiDomainParams {
	t1 := Table1()
	return MultiDomainParams{
		Domains: []DomainParams{
			{
				Name: "core", Vdd: t1.Vdd, NoiseMargin: t1.NoiseMargin,
				Cdie: 1500e-9, Rbump: 375e-6, Lbump: 1.69e-12,
				PowerUnits: []string{"frontend", "rename", "window", "regfile", "intalu", "intmul", "rob", "bus"},
			},
			{
				Name: "fp", Vdd: t1.Vdd, NoiseMargin: t1.NoiseMargin,
				Cdie: 1500e-9, Rbump: 750e-6, Lbump: 6.76e-12,
				PowerUnits: []string{"fpalu", "fpmul"},
			},
			{
				Name: "mem", Vdd: t1.Vdd, NoiseMargin: t1.NoiseMargin,
				Cdie: 1500e-9, Rbump: 1.5e-3, Lbump: 27e-12,
				PowerUnits: []string{"l1d", "l2", "mem"},
			},
		},
		Cpkg: 4e-6, Rpkg: 2e-3, Lpkg: 63e-12,
		Cboard: 40e-6, Rboard: 0.5e-3, Lboard: 100e-12,
		ClockHz: t1.ClockHz,
	}
}

// Validate reports whether the parameters are usable.
func (p MultiDomainParams) Validate() error {
	if len(p.Domains) == 0 {
		return fmt.Errorf("circuit: multi-domain PDN needs at least one domain")
	}
	seen := map[string]bool{}
	for _, d := range p.Domains {
		if err := d.Validate(); err != nil {
			return err
		}
		if seen[d.Name] {
			return fmt.Errorf("circuit: duplicate domain name %q", d.Name)
		}
		seen[d.Name] = true
	}
	switch {
	case p.Cpkg <= 0 || p.Rpkg <= 0 || p.Lpkg <= 0:
		return fmt.Errorf("circuit: package R/L/C must be positive (R=%g L=%g C=%g)", p.Rpkg, p.Lpkg, p.Cpkg)
	case p.Cboard <= 0 || p.Rboard <= 0 || p.Lboard <= 0:
		return fmt.Errorf("circuit: board R/L/C must be positive (R=%g L=%g C=%g)", p.Rboard, p.Lboard, p.Cboard)
	case p.ClockHz <= 0:
		return fmt.Errorf("circuit: clock frequency must be positive (got %g)", p.ClockHz)
	}
	return nil
}

// dieCapacitance sums the domains' die capacitances, the load the
// shared tiers see below the die-level resonances (where the bump
// inductances are transparent).
func (p MultiDomainParams) dieCapacitance() float64 {
	c := 0.0
	for _, d := range p.Domains {
		c += d.Cdie
	}
	return c
}

// PackageResonantFrequency returns the shared package-tier resonance:
// the package branch inductance against the package capacitance plus
// the die capacitance it carries (below the die resonances the bump
// branches are transparent, so the die caps load the package rail).
// Every domain's current variation excites this tier, which is where
// cross-domain interference lives.
func (p MultiDomainParams) PackageResonantFrequency() float64 {
	return 1 / (2 * math.Pi * math.Sqrt(p.Lpkg*(p.Cpkg+p.dieCapacitance())))
}

// BoardResonantFrequency returns the board-tier resonance, with the
// package and die capacitance loading the board rail.
func (p MultiDomainParams) BoardResonantFrequency() float64 {
	return 1 / (2 * math.Pi * math.Sqrt(p.Lboard*(p.Cboard+p.Cpkg+p.dieCapacitance())))
}

// Impedance returns |Z(f)| seen by domain d's current source at its die
// node: the die capacitance in parallel with the bump branch, which
// leads onto the package rail where the package capacitance, the board
// stage, and every other domain's die stage hang in parallel.
func (p MultiDomainParams) Impedance(d int, f float64) float64 {
	if f == 0 {
		return p.Rboard + p.Rpkg + p.Domains[d].Rbump
	}
	w := 2 * math.Pi * f
	par := func(a, b complex128) complex128 { return a * b / (a + b) }
	zc := func(c float64) complex128 { return complex(0, -1/(w*c)) }
	// Board stage seen from the package branch: board cap in parallel
	// with the branch back to the (shorted) source.
	zBoard := par(zc(p.Cboard), complex(p.Rboard, w*p.Lboard))
	// Package rail: package cap ∥ (package branch + board) ∥ every other
	// domain's (bump + die cap) series branch.
	zPkg := par(zc(p.Cpkg), complex(p.Rpkg, w*p.Lpkg)+zBoard)
	for e := range p.Domains {
		if e == d {
			continue
		}
		de := p.Domains[e]
		zPkg = par(zPkg, complex(de.Rbump, w*de.Lbump)+zc(de.Cdie))
	}
	dd := p.Domains[d]
	return cmplx.Abs(par(zc(dd.Cdie), complex(dd.Rbump, w*dd.Lbump)+zPkg))
}

// ImpedanceSweep samples domain d's |Z(f)| at n log-spaced frequencies
// across [loHz, hiHz], suiting the decades the tiers span.
func (p MultiDomainParams) ImpedanceSweep(d int, loHz, hiHz float64, n int) []ImpedancePoint {
	if n < 2 {
		n = 2
	}
	pts := make([]ImpedancePoint, n)
	ratio := math.Pow(hiHz/loHz, 1/float64(n-1))
	f := loHz
	for i := range pts {
		pts[i] = ImpedancePoint{FrequencyHz: f, Ohms: p.Impedance(d, f)}
		f *= ratio
	}
	return pts
}

// MultiDomainState is the electrical state of the stack: the board and
// package tiers plus one (bump current, die voltage) pair per domain.
// Voltages are relative to the eliminated source, i.e. they include the
// IR drops.
type MultiDomainState struct {
	Ib float64 // board branch (source → board rail) current
	Vb float64 // board rail voltage
	Ip float64 // package branch (board → package rail) current
	Vp float64 // package rail voltage

	Id []float64 // per-domain bump branch currents
	Vd []float64 // per-domain die node voltages
}

// MultiDomainSimulator advances the distributed stack one processor
// cycle at a time with the Heun formula, mirroring Simulator and
// TwoStageSimulator. It implements Network.
type MultiDomainSimulator struct {
	p     MultiDomainParams
	dt    float64
	state MultiDomainState
	cycle uint64

	// Scratch state for the Heun predictor, kept on the simulator so
	// Step performs no per-cycle allocation.
	pred MultiDomainState
}

// NewMultiDomainSimulator returns a simulator initialised to the DC
// steady state for per-domain draws i0 (len(i0) must equal the domain
// count).
func NewMultiDomainSimulator(p MultiDomainParams, i0 []float64) *MultiDomainSimulator {
	if len(i0) != len(p.Domains) {
		panic(fmt.Sprintf("circuit.NewMultiDomainSimulator: %d initial currents for %d domains", len(i0), len(p.Domains)))
	}
	s := &MultiDomainSimulator{p: p, dt: 1 / p.ClockHz}
	nd := len(p.Domains)
	s.state.Id = make([]float64, nd)
	s.state.Vd = make([]float64, nd)
	s.pred.Id = make([]float64, nd)
	s.pred.Vd = make([]float64, nd)
	s.Reset(i0)
	return s
}

// Reset restores the DC steady state for per-domain draws i0: every
// branch carries its share of the total and every node sits at its IR
// drop below the source.
func (s *MultiDomainSimulator) Reset(i0 []float64) {
	total := 0.0
	for _, v := range i0 {
		total += v
	}
	s.state.Ib = total
	s.state.Ip = total
	s.state.Vb = -s.p.Rboard * total
	s.state.Vp = s.state.Vb - s.p.Rpkg*total
	for d := range s.p.Domains {
		s.state.Id[d] = i0[d]
		s.state.Vd[d] = s.state.Vp - s.p.Domains[d].Rbump*i0[d]
	}
	s.cycle = 0
}

// Kind implements Network.
func (s *MultiDomainSimulator) Kind() string { return NetworkMultiDomain }

// Domains implements Network.
func (s *MultiDomainSimulator) Domains() int { return len(s.p.Domains) }

// DomainInfo implements Network.
func (s *MultiDomainSimulator) DomainInfo(d int) DomainInfo {
	dp := s.p.Domains[d]
	return DomainInfo{
		Name:                dp.Name,
		NominalVolts:        dp.Vdd,
		NoiseMarginVolts:    dp.NoiseMargin * dp.Vdd,
		ResonantFrequencyHz: dp.ResonantFrequency(),
	}
}

// Params returns the network parameters.
func (s *MultiDomainSimulator) Params() MultiDomainParams { return s.p }

// State returns the raw electrical state (shared slices; do not mutate).
func (s *MultiDomainSimulator) State() MultiDomainState { return s.state }

// Cycle returns the number of steps taken.
func (s *MultiDomainSimulator) Cycle() uint64 { return s.cycle }

// Fork implements Network: an independent deep copy continuing from the
// same electrical state.
func (s *MultiDomainSimulator) Fork() Network {
	f := *s
	f.state.Id = append([]float64(nil), s.state.Id...)
	f.state.Vd = append([]float64(nil), s.state.Vd...)
	f.pred.Id = make([]float64, len(s.pred.Id))
	f.pred.Vd = make([]float64, len(s.pred.Vd))
	return &f
}

// derivInto evaluates the stack's ODE right-hand side at st, writing the
// tier derivatives to the scalar pointers and the per-domain derivatives
// into dId and dVd.
func (s *MultiDomainSimulator) derivInto(st *MultiDomainState, draws []float64,
	dIb, dVb, dIp, dVp *float64, dId, dVd []float64) {
	sumId := 0.0
	for d := range dId {
		dd := &s.p.Domains[d]
		dId[d] = (st.Vp - st.Vd[d] - dd.Rbump*st.Id[d]) / dd.Lbump
		dVd[d] = (st.Id[d] - draws[d]) / dd.Cdie
		sumId += st.Id[d]
	}
	*dIb = -(st.Vb + s.p.Rboard*st.Ib) / s.p.Lboard
	*dVb = (st.Ib - st.Ip) / s.p.Cboard
	*dIp = (st.Vb - st.Vp - s.p.Rpkg*st.Ip) / s.p.Lpkg
	*dVp = (st.Ip - sumId) / s.p.Cpkg
}

// Step implements Network: advance one processor cycle during which
// domain d draws draws[d] amps, writing each domain's deviation (total
// IR drop subtracted) into dev[d].
func (s *MultiDomainSimulator) Step(draws, dev []float64) {
	nd := len(s.p.Domains)
	var dIb1, dVb1, dIp1, dVp1 float64
	var dId1, dVd1 [maxInlineDomains]float64
	var dId2, dVd2 [maxInlineDomains]float64
	id1, vd1 := dId1[:0], dVd1[:0]
	id2, vd2 := dId2[:0], dVd2[:0]
	if nd <= maxInlineDomains {
		id1, vd1 = dId1[:nd], dVd1[:nd]
		id2, vd2 = dId2[:nd], dVd2[:nd]
	} else {
		id1, vd1 = make([]float64, nd), make([]float64, nd)
		id2, vd2 = make([]float64, nd), make([]float64, nd)
	}

	st := &s.state
	s.derivInto(st, draws, &dIb1, &dVb1, &dIp1, &dVp1, id1, vd1)

	pr := &s.pred
	pr.Ib = st.Ib + s.dt*dIb1
	pr.Vb = st.Vb + s.dt*dVb1
	pr.Ip = st.Ip + s.dt*dIp1
	pr.Vp = st.Vp + s.dt*dVp1
	for d := 0; d < nd; d++ {
		pr.Id[d] = st.Id[d] + s.dt*id1[d]
		pr.Vd[d] = st.Vd[d] + s.dt*vd1[d]
	}

	var dIb2, dVb2, dIp2, dVp2 float64
	s.derivInto(pr, draws, &dIb2, &dVb2, &dIp2, &dVp2, id2, vd2)

	st.Ib += s.dt * 0.5 * (dIb1 + dIb2)
	st.Vb += s.dt * 0.5 * (dVb1 + dVb2)
	st.Ip += s.dt * 0.5 * (dIp1 + dIp2)
	st.Vp += s.dt * 0.5 * (dVp1 + dVp2)
	total := 0.0
	for d := 0; d < nd; d++ {
		st.Id[d] += s.dt * 0.5 * (id1[d] + id2[d])
		st.Vd[d] += s.dt * 0.5 * (vd1[d] + vd2[d])
		total += draws[d]
	}
	s.cycle++

	// IR-free deviation: the shared tiers drop (Rboard+Rpkg)·ΣI and each
	// bump branch drops Rbump·I_d, so a constant draw sits at zero.
	shared := (s.p.Rboard + s.p.Rpkg) * total
	for d := 0; d < nd; d++ {
		dev[d] = st.Vd[d] + shared + s.p.Domains[d].Rbump*draws[d]
	}
}

// maxInlineDomains bounds the stack-allocated Heun scratch; stacks with
// more domains fall back to per-Step allocation.
const maxInlineDomains = 8
