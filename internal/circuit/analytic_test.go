package circuit

import (
	"math"
	"testing"
)

func TestStepResponseMatchesSimulator(t *testing.T) {
	p := Table1()
	sim := NewSimulator(p, 60)
	dt := 1 / p.ClockHz
	worst := 0.0
	for c := 1; c <= 2500; c++ {
		got := sim.Step(85)
		want := p.StepResponse(25, float64(c)*dt)
		if e := math.Abs(got - want); e > worst {
			worst = e
		}
	}
	if worst > 0.3e-3 {
		t.Errorf("worst simulator-vs-analytic error %g V", worst)
	}
}

func TestReportedAmplitudeMatchesSimulator(t *testing.T) {
	p := Table1()
	for _, fFrac := range []float64{0.7, 1.0, 1.3} {
		f := p.ResonantFrequency() * fFrac
		period := p.ClockHz / f
		mid := (p.IMax + p.IMin) / 2
		const pp = 18.0
		sim := NewSimulator(p, mid)
		w := Sine{Mid: mid, Amplitude: pp, PeriodCycles: period}
		n := int(period)
		for c := 0; c < 40*n; c++ {
			sim.Step(w.At(c))
		}
		peak := 0.0
		for c := 40 * n; c < 43*n; c++ {
			if d := math.Abs(sim.Step(w.At(c))); d > peak {
				peak = d
			}
		}
		want := p.ReportedAmplitude(f, pp)
		if math.Abs(peak-want)/want > 0.08 {
			t.Errorf("f=%.2f·f0: simulated amplitude %g, analytic %g", fFrac, peak, want)
		}
	}
}

func TestReportedAmplitudePeaksAtResonance(t *testing.T) {
	p := Table1()
	f0 := p.ResonantFrequency()
	at := func(f float64) float64 { return p.ReportedAmplitude(f, 30) }
	if at(f0) <= at(f0*0.6) || at(f0) <= at(f0*1.6) {
		t.Error("reported amplitude does not peak near resonance")
	}
}

func TestBuildupCyclesConsistentWithCalibration(t *testing.T) {
	p := Table1()
	// Below the analytic threshold: never violates.
	if _, v := p.BuildupCycles(20); v {
		t.Error("20 A should be sub-threshold")
	}
	// Well above: violates within a handful of periods.
	cycles, v := p.BuildupCycles(45)
	if !v {
		t.Fatal("45 A should violate")
	}
	if cycles < 20 || cycles > 600 {
		t.Errorf("buildup %g cycles implausible", cycles)
	}
	// The analytic half-wave tolerance is within ±2 of the simulated
	// calibration (4 for Table 1).
	hw, v := p.HalfWaveTolerance(45)
	if !v || hw < 2 || hw > 6 {
		t.Errorf("analytic half-wave tolerance %d, simulated calibration is 4", hw)
	}
	// Bigger swings violate faster.
	c70, _ := p.BuildupCycles(70)
	if c70 >= cycles {
		t.Errorf("70 A buildup (%g) not faster than 45 A (%g)", c70, cycles)
	}
}

func TestAnalyticThresholdMatchesCalibratedThreshold(t *testing.T) {
	// The smallest p-p amplitude whose steady-state reported response
	// exceeds the margin is the analytic version of the resonant
	// current variation threshold; it should be within a couple of amps
	// of the simulated bisection (35 A for Table 1).
	p := Table1()
	f0 := p.ResonantFrequency()
	margin := p.NoiseMarginVolts()
	analytic := 2 * margin / (p.ReportedAmplitude(f0, 2))
	sim, err := ResonantThreshold(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(analytic-sim) > 3 {
		t.Errorf("analytic threshold %.1f A vs simulated %.0f A", analytic, sim)
	}
}

func TestOmegaDZeroWhenOverdamped(t *testing.T) {
	p := Table1()
	p.R = 1.0
	if p.OmegaD() != 0 {
		t.Error("overdamped circuit reported a damped frequency")
	}
	if p.StepResponse(10, 1e-9) != 0 {
		t.Error("overdamped step response should be 0 (unsupported)")
	}
}
