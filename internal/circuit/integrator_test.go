package circuit

import (
	"math"
	"testing"
)

// closedFormStep returns the analytic noise deviation t seconds after the
// processor current steps from i0 to i1, starting from DC steady state.
// For the underdamped circuit the deviation is
//
//	x(t) = e^{-αt}(A cos ω_d t + B sin ω_d t)
//
// with A = R·ΔI, B = (−ΔI/C + αA)/ω_d.
func closedFormStep(p Params, deltaI, t float64) float64 {
	alpha := p.DampingRateNepers()
	w0 := 2 * math.Pi * p.ResonantFrequency()
	wd := math.Sqrt(w0*w0 - alpha*alpha)
	a := p.R * deltaI
	b := (-deltaI/p.C + alpha*a) / wd
	return math.Exp(-alpha*t) * (a*math.Cos(wd*t) + b*math.Sin(wd*t))
}

func TestSteadyStateConstantCurrentNoDeviation(t *testing.T) {
	p := Table1()
	for _, level := range []float64{p.IMin, (p.IMin + p.IMax) / 2, p.IMax} {
		sim := NewSimulator(p, level)
		for c := 0; c < 1000; c++ {
			dev := sim.Step(level)
			if math.Abs(dev) > 1e-9 {
				t.Fatalf("constant %g A: deviation %g V at cycle %d, want ~0", level, dev, c)
			}
		}
	}
}

func TestHeunMatchesClosedFormStepResponse(t *testing.T) {
	p := Table1()
	const i0, i1 = 50.0, 80.0
	sim := NewSimulator(p, i0)
	dt := 1 / p.ClockHz
	worst := 0.0
	for c := 1; c <= 3000; c++ {
		got := sim.Step(i1)
		want := closedFormStep(p, i1-i0, float64(c)*dt)
		if e := math.Abs(got - want); e > worst {
			worst = e
		}
	}
	// Peak deviation for a 30 A step is ~32 mV; demand <1% of that.
	if worst > 0.3e-3 {
		t.Errorf("Heun worst error vs closed form = %g V, want < 0.3 mV", worst)
	}
}

func TestHeunMoreAccurateThanEuler(t *testing.T) {
	p := Table1()
	const i0, i1 = 50.0, 80.0
	dt := 1 / p.ClockHz
	run := func(m Method) float64 {
		sim := NewSimulatorMethod(p, i0, m)
		worst := 0.0
		for c := 1; c <= 2000; c++ {
			got := sim.Step(i1)
			want := closedFormStep(p, i1-i0, float64(c)*dt)
			if e := math.Abs(got - want); e > worst {
				worst = e
			}
		}
		return worst
	}
	he, eu := run(Heun), run(Euler)
	if he >= eu {
		t.Errorf("Heun error %g >= Euler error %g", he, eu)
	}
}

func TestResonantStimulusBuildsUpAndDissipates(t *testing.T) {
	p := Table1()
	mid := (p.IMax + p.IMin) / 2
	period := int(math.Round(p.ResonantPeriodCycles()))
	sim := NewSimulator(p, mid)
	w := Square{Mid: mid, Amplitude: 34, PeriodCycles: period, Start: 0, End: 8 * period}

	peakEarly, peakLate := 0.0, 0.0
	for c := 0; c < 8*period; c++ {
		d := math.Abs(sim.Step(w.At(c)))
		if c < period && d > peakEarly {
			peakEarly = d
		}
		if c >= 6*period && d > peakLate {
			peakLate = d
		}
	}
	if peakLate <= peakEarly {
		t.Errorf("resonant buildup missing: early peak %g V, late peak %g V", peakEarly, peakLate)
	}

	// After the stimulus stops, the deviation must decay at roughly the
	// damping rate (~66%/period for Table 1).
	peakAt := func(fromCycle int) float64 {
		peak := 0.0
		for c := 0; c < period; c++ {
			if d := math.Abs(sim.Step(mid)); d > peak {
				peak = d
			}
		}
		_ = fromCycle
		return peak
	}
	p1 := peakAt(0)
	p2 := peakAt(period)
	ratio := p2 / p1
	expected := 1 - p.DissipationPerPeriod() // ≈ 0.34
	if math.Abs(ratio-expected) > 0.08 {
		t.Errorf("dissipation ratio/period = %g, want ≈ %g", ratio, expected)
	}
}

func TestOffBandStimulusAbsorbed(t *testing.T) {
	p := Table1()
	mid := (p.IMax + p.IMin) / 2
	// Same 34 A amplitude as the resonant test, but at twice the
	// resonant frequency: the supply absorbs it (paper Section 1).
	periodIn := int(math.Round(p.ResonantPeriodCycles()))
	periodOut := periodIn / 2

	peak := func(period int) float64 {
		sim := NewSimulator(p, mid)
		w := Square{Mid: mid, Amplitude: 34, PeriodCycles: period}
		pk := 0.0
		for c := 0; c < 20*periodIn; c++ {
			if d := math.Abs(sim.Step(w.At(c))); d > pk {
				pk = d
			}
		}
		return pk
	}
	in, out := peak(periodIn), peak(periodOut)
	// The onset step still rings the resonant mode briefly, so the
	// off-band peak is not tiny, but it must stay clearly below the
	// in-band buildup and inside the noise margin.
	if out > in*0.65 {
		t.Errorf("off-band stimulus not absorbed: in-band peak %g V, off-band peak %g V", in, out)
	}
	if in <= p.NoiseMarginVolts() {
		t.Errorf("in-band 34 A stimulus should violate the 50 mV margin, peaked at %g V", in)
	}
	if out > p.NoiseMarginVolts() {
		t.Errorf("off-band 34 A stimulus should stay inside the margin, peaked at %g V", out)
	}
}

func TestRunStatistics(t *testing.T) {
	p := Table1()
	mid := (p.IMax + p.IMin) / 2
	period := int(math.Round(p.ResonantPeriodCycles()))
	w := Square{Mid: mid, Amplitude: 40, PeriodCycles: period}
	sim := NewSimulator(p, mid)
	res := sim.Run(Samples(w, 10*period))
	if len(res.Deviations) != 10*period {
		t.Fatalf("Deviations length %d, want %d", len(res.Deviations), 10*period)
	}
	if res.Violations == 0 {
		t.Error("40 A resonant stimulus should produce violations")
	}
	if res.PeakDeviation <= p.NoiseMarginVolts() {
		t.Errorf("peak deviation %g should exceed margin", res.PeakDeviation)
	}
	count := 0
	margin := p.NoiseMarginVolts()
	for _, d := range res.Deviations {
		if math.Abs(d) > margin {
			count++
		}
	}
	if count != res.Violations {
		t.Errorf("violation count %d disagrees with deviations %d", res.Violations, count)
	}
}

func TestResetRestoresSteadyState(t *testing.T) {
	p := Table1()
	sim := NewSimulator(p, 50)
	for c := 0; c < 500; c++ {
		sim.Step(50 + 30*float64(c%2)) // thrash the state
	}
	sim.Reset(70)
	if sim.Cycle() != 0 {
		t.Errorf("cycle after Reset = %d, want 0", sim.Cycle())
	}
	if dev := sim.Step(70); math.Abs(dev) > 1e-9 {
		t.Errorf("deviation after Reset at steady current = %g, want ~0", dev)
	}
	st := sim.State()
	if math.Abs(st.IL-70) > 1e-6 {
		t.Errorf("inductor current after reset = %g, want 70", st.IL)
	}
}

func TestMethodString(t *testing.T) {
	if Heun.String() != "heun" || Euler.String() != "euler" {
		t.Error("Method.String mismatch")
	}
	if Method(99).String() == "" {
		t.Error("unknown method should still render")
	}
}
