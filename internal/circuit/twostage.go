package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
)

// TwoStageParams models the full power-distribution hierarchy of
// Section 2.2: the off-chip supply reaches the package through a large
// board/socket inductance onto the bulk package capacitance, and from
// there through the solder-bump inductance onto the on-die decoupling
// capacitance. The two RLC loops produce the two impedance peaks the
// paper describes — the low-frequency peak (a few megahertz, off-chip L
// against package C) and the medium-frequency peak (tens to hundreds of
// megahertz, bump L against on-die C).
type TwoStageParams struct {
	// R1, L1, C1 form the off-chip loop: board resistance, board and
	// socket inductance, and bulk package capacitance.
	R1, L1, C1 float64
	// R2, L2, C2 form the on-chip loop: package resistance, solder-bump
	// inductance, and on-die decoupling capacitance.
	R2, L2, C2 float64

	Vdd         float64
	NoiseMargin float64
	ClockHz     float64
	IMax, IMin  float64
}

// Table1TwoStage extends the Table 1 design with a representative
// off-chip stage: 40 µF of package capacitance behind 40 pH of board and
// socket inductance with 0.5 mΩ of board resistance, placing the
// low-frequency peak near 4 MHz — the "few megahertz" of Section 2.2 —
// and keeping it smaller than the medium-frequency peak, as the paper
// describes for current technology.
func Table1TwoStage() TwoStageParams {
	t1 := Table1()
	return TwoStageParams{
		R1: 0.5e-3, L1: 40e-12, C1: 40e-6,
		R2: t1.R, L2: t1.L, C2: t1.C,
		Vdd: t1.Vdd, NoiseMargin: t1.NoiseMargin, ClockHz: t1.ClockHz,
		IMax: t1.IMax, IMin: t1.IMin,
	}
}

// Validate reports whether the parameters are usable.
func (p TwoStageParams) Validate() error {
	switch {
	case p.R1 <= 0 || p.L1 <= 0 || p.C1 <= 0 || p.R2 <= 0 || p.L2 <= 0 || p.C2 <= 0:
		return fmt.Errorf("circuit: two-stage R/L/C values must be positive: %+v", p)
	case p.Vdd <= 0 || p.NoiseMargin <= 0 || p.NoiseMargin >= 1 || p.ClockHz <= 0:
		return fmt.Errorf("circuit: bad electrical operating point: %+v", p)
	case p.IMax <= p.IMin || p.IMin < 0:
		return fmt.Errorf("circuit: bad current bounds: %+v", p)
	}
	return nil
}

// NoiseMarginVolts returns the absolute deviation bound.
func (p TwoStageParams) NoiseMarginVolts() float64 { return p.NoiseMargin * p.Vdd }

// MediumStage returns the on-chip loop viewed as a single-stage supply,
// which governs the medium-frequency resonance.
func (p TwoStageParams) MediumStage() Params {
	return Params{
		R: p.R2, L: p.L2, C: p.C2,
		Vdd: p.Vdd, NoiseMargin: p.NoiseMargin, ClockHz: p.ClockHz,
		IMax: p.IMax, IMin: p.IMin,
	}
}

// LowStage returns the off-chip loop viewed as a single-stage supply
// (with the whole chip as its load), which governs the low-frequency
// resonance.
func (p TwoStageParams) LowStage() Params {
	return Params{
		R: p.R1, L: p.L1, C: p.C1,
		Vdd: p.Vdd, NoiseMargin: p.NoiseMargin, ClockHz: p.ClockHz,
		IMax: p.IMax, IMin: p.IMin,
	}
}

// Impedance returns |Z(f)| seen by the core current source at the die
// node: the on-die capacitance in parallel with the bump branch, which
// leads through the package capacitance and the off-chip branch.
func (p TwoStageParams) Impedance(f float64) float64 {
	if f == 0 {
		return p.R1 + p.R2
	}
	w := 2 * math.Pi * f
	par := func(a, b complex128) complex128 { return a * b / (a + b) }
	zc1 := complex(0, -1/(w*p.C1))
	zc2 := complex(0, -1/(w*p.C2))
	zOff := complex(p.R1, w*p.L1)
	zBump := complex(p.R2, w*p.L2)
	inner := par(zc1, zOff)
	return cmplx.Abs(par(zc2, zBump+inner))
}

// ImpedanceSweep samples |Z(f)| at n log-spaced frequencies across
// [loHz, hiHz], suiting the decades between the two peaks.
func (p TwoStageParams) ImpedanceSweep(loHz, hiHz float64, n int) []ImpedancePoint {
	if n < 2 {
		n = 2
	}
	pts := make([]ImpedancePoint, n)
	ratio := math.Pow(hiHz/loHz, 1/float64(n-1))
	f := loHz
	for i := range pts {
		pts[i] = ImpedancePoint{FrequencyHz: f, Ohms: p.Impedance(f)}
		f *= ratio
	}
	return pts
}

// Peaks locates the low- and medium-frequency impedance peaks by scanning
// around each stage's natural frequency.
func (p TwoStageParams) Peaks() (low, medium ImpedancePoint) {
	fLow := p.LowStage().ResonantFrequency()
	fMed := p.MediumStage().ResonantFrequency()
	low = PeakImpedance(p.ImpedanceSweep(fLow/4, fLow*4, 400))
	medium = PeakImpedance(p.ImpedanceSweep(fMed/2, fMed*2, 400))
	return low, medium
}

// TwoStageState is the electrical state of the two-loop network.
type TwoStageState struct {
	V1, I1 float64 // package node voltage, off-chip branch current
	V2, I2 float64 // die node voltage, bump branch current
}

// TwoStageSimulator advances the two-loop network one processor cycle at
// a time with the Heun formula, mirroring Simulator for the single-stage
// model. The reported deviation subtracts the total IR drop so constant
// current sits at zero.
type TwoStageSimulator struct {
	p     TwoStageParams
	dt    float64
	state TwoStageState
	cycle uint64
}

// NewTwoStageSimulator returns a simulator initialised to the DC steady
// state for core current i0.
func NewTwoStageSimulator(p TwoStageParams, i0 float64) *TwoStageSimulator {
	s := &TwoStageSimulator{p: p, dt: 1 / p.ClockHz}
	s.Reset(i0)
	return s
}

// Reset restores the DC steady state for core current i0.
func (s *TwoStageSimulator) Reset(i0 float64) {
	s.state = TwoStageState{
		V1: -s.p.R1 * i0,
		I1: i0,
		V2: -(s.p.R1 + s.p.R2) * i0,
		I2: i0,
	}
	s.cycle = 0
}

// Fork returns an independent copy of the simulator continuing from the
// same electrical state, mirroring Simulator.Fork.
func (s *TwoStageSimulator) Fork() *TwoStageSimulator {
	f := *s
	return &f
}

// Params returns the network parameters.
func (s *TwoStageSimulator) Params() TwoStageParams { return s.p }

// State returns the raw electrical state.
func (s *TwoStageSimulator) State() TwoStageState { return s.state }

// Cycle returns the number of steps taken.
func (s *TwoStageSimulator) Cycle() uint64 { return s.cycle }

func (s *TwoStageSimulator) derivatives(st TwoStageState, icpu float64) (dV1, dI1, dV2, dI2 float64) {
	dI1 = -(st.V1 + s.p.R1*st.I1) / s.p.L1
	dV1 = (st.I1 - st.I2) / s.p.C1
	dI2 = (st.V1 - st.V2 - s.p.R2*st.I2) / s.p.L2
	dV2 = (st.I2 - icpu) / s.p.C2
	return
}

// Step advances one processor cycle with core current icpu and returns
// the die-node deviation with the IR drop removed.
func (s *TwoStageSimulator) Step(icpu float64) float64 {
	st := s.state
	dV1a, dI1a, dV2a, dI2a := s.derivatives(st, icpu)
	pred := TwoStageState{
		V1: st.V1 + s.dt*dV1a, I1: st.I1 + s.dt*dI1a,
		V2: st.V2 + s.dt*dV2a, I2: st.I2 + s.dt*dI2a,
	}
	dV1b, dI1b, dV2b, dI2b := s.derivatives(pred, icpu)
	st.V1 += s.dt * 0.5 * (dV1a + dV1b)
	st.I1 += s.dt * 0.5 * (dI1a + dI1b)
	st.V2 += s.dt * 0.5 * (dV2a + dV2b)
	st.I2 += s.dt * 0.5 * (dI2a + dI2b)
	s.state = st
	s.cycle++
	return s.Deviation(icpu)
}

// Deviation returns the reported die-node deviation for this cycle's
// core current.
func (s *TwoStageSimulator) Deviation(icpu float64) float64 {
	return s.state.V2 + (s.p.R1+s.p.R2)*icpu
}

// Violated reports whether deviation dev exceeds the noise margin.
func (s *TwoStageSimulator) Violated(dev float64) bool {
	return math.Abs(dev) > s.p.NoiseMarginVolts()
}
