package circuit

import (
	"math"
	"testing"
)

func TestImpedancePeaksAtResonance(t *testing.T) {
	p := Table1()
	pts := p.ImpedanceSweep(40e6, 160e6, 2401)
	peak := PeakImpedance(pts)
	f0 := p.ResonantFrequency()
	if math.Abs(peak.FrequencyHz-f0) > 1e6 {
		t.Errorf("impedance peak at %g MHz, want ≈ %g MHz", peak.FrequencyHz/1e6, f0/1e6)
	}
	// |Z| at resonance ≈ Q·sqrt(L/C) for a high-Q parallel resonator;
	// Table 1 gives about 3 mΩ.
	approx := p.Q() * math.Sqrt(p.L/p.C)
	if math.Abs(peak.Ohms-approx)/approx > 0.15 {
		t.Errorf("peak impedance %g Ω, want ≈ %g Ω", peak.Ohms, approx)
	}
}

func TestImpedanceHalfEnergyAtBandEdges(t *testing.T) {
	p := Table1()
	zPeak := p.Impedance(p.ResonantFrequency())
	b := p.ResonanceBand()
	for _, f := range []float64{b.Lo, b.Hi} {
		z := p.Impedance(f)
		ratio := z / zPeak
		// Half energy ⇒ |Z|/|Z|peak = 1/√2. The exact band-edge
		// formula is derived for the series-loop current, so allow
		// moderate tolerance on the parallel-network impedance.
		if math.Abs(ratio-1/math.Sqrt2) > 0.1 {
			t.Errorf("|Z(%g MHz)|/|Z(f0)| = %g, want ≈ %g", f/1e6, ratio, 1/math.Sqrt2)
		}
	}
}

func TestImpedanceFallsOffOutsideBand(t *testing.T) {
	p := Table1()
	f0 := p.ResonantFrequency()
	zPeak := p.Impedance(f0)
	for _, mult := range []float64{0.25, 0.5, 2, 4} {
		z := p.Impedance(f0 * mult)
		if z > zPeak/2 {
			t.Errorf("|Z| at %gx f0 = %g, want well below peak %g", mult, z, zPeak)
		}
	}
}

func TestImpedanceAtDC(t *testing.T) {
	p := Table1()
	if got := p.Impedance(0); got != p.R {
		t.Errorf("Z(0) = %g, want R = %g", got, p.R)
	}
}

func TestImpedanceSweepShape(t *testing.T) {
	p := Table1()
	pts := p.ImpedanceSweep(50e6, 150e6, 101)
	if len(pts) != 101 {
		t.Fatalf("sweep length %d, want 101", len(pts))
	}
	if pts[0].FrequencyHz != 50e6 || pts[100].FrequencyHz != 150e6 {
		t.Errorf("sweep endpoints %g..%g, want 50e6..150e6", pts[0].FrequencyHz, pts[100].FrequencyHz)
	}
	// Degenerate n is clamped.
	if got := p.ImpedanceSweep(50e6, 150e6, 1); len(got) != 2 {
		t.Errorf("sweep with n=1 returned %d points, want clamped to 2", len(got))
	}
}

func TestImpedanceMatchesSimulatedSteadyState(t *testing.T) {
	// The transient simulator and the analytic impedance must agree:
	// a sustained sine of amplitude A at frequency f settles to a
	// voltage amplitude of A·|Z(f)| (after IR-drop subtraction the
	// reported deviation matches only near resonance where the IR term
	// is negligible relative to the resonant response).
	p := Table1()
	mid := (p.IMax + p.IMin) / 2
	f0 := p.ResonantFrequency()
	period := p.ClockHz / f0
	const amp = 20.0 // p-p
	sim := NewSimulator(p, mid)
	w := Sine{Mid: mid, Amplitude: amp, PeriodCycles: period}
	// Let the response settle, then measure the peak over two periods.
	n := int(period)
	for c := 0; c < 30*n; c++ {
		sim.Step(w.At(c))
	}
	peak := 0.0
	for c := 30 * n; c < 32*n; c++ {
		if d := math.Abs(sim.Step(w.At(c))); d > peak {
			peak = d
		}
	}
	// The reported deviation subtracts the instantaneous IR drop, and at
	// resonance the network impedance is nearly real, so the observable
	// amplitude is A·(|Z(f0)| − R).
	want := amp / 2 * (p.Impedance(f0) - p.R)
	if math.Abs(peak-want)/want > 0.1 {
		t.Errorf("simulated steady amplitude %g V, impedance predicts %g V", peak, want)
	}
}
