package engine

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/baselines/convctl"
	"repro/internal/baselines/damping"
	"repro/internal/baselines/voltctl"
	"repro/internal/baselines/wavelet"
	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// TestKeyPointerIdentityIrrelevant: equal configurations behind distinct
// pointers hash equal.
func TestKeyPointerIdentityIrrelevant(t *testing.T) {
	tc1 := DefaultTuningConfig(100)
	tc2 := DefaultTuningConfig(100)
	a := Spec{App: "swim", Technique: TechniqueTuning, Tuning: &tc1}
	b := Spec{App: "swim", Technique: TechniqueTuning, Tuning: &tc2}
	ka, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Error("distinct pointers to equal tuning configs hash differently")
	}
}

// TestKeyNormalizesDefaults: a spec written with zero values hashes the
// same as one spelling every default out, and a Trace callback does not
// perturb the key.
func TestKeyNormalizesDefaults(t *testing.T) {
	implicit := Spec{App: "swim"}
	cfg := sim.DefaultConfig()
	tc := DefaultTuningConfig(100)
	explicit := Spec{
		App:          "swim",
		Instructions: DefaultInstructions,
		Technique:    TechniqueNone,
		System:       &cfg,
		// Irrelevant for the base machine; must not perturb the key.
		Tuning: &tc,
		Trace:  func(sim.TracePoint) {},
	}
	ki, err := implicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	ke, err := explicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ki != ke {
		t.Error("defaulted spec and explicit spec hash differently")
	}
}

// TestKeySeparatesSpecs: distinct simulations get distinct keys.
func TestKeySeparatesSpecs(t *testing.T) {
	tcA := DefaultTuningConfig(75)
	tcB := DefaultTuningConfig(125)
	twoStage := circuit.Table1TwoStage()
	sysB := sim.DefaultConfig()
	sysB.TwoStageSupply = &twoStage
	sysC := sim.DefaultConfig()
	sysC.Supply.C *= 2
	specs := []Spec{
		{App: "swim"},
		{App: "lucas"},
		{App: "swim", Instructions: 2_000_000},
		{App: "swim", Technique: TechniqueTuning},
		{App: "swim", Technique: TechniqueTuning, Tuning: &tcA},
		{App: "swim", Technique: TechniqueTuning, Tuning: &tcB},
		{App: "swim", Technique: TechniqueVoltageControl},
		{App: "swim", Technique: TechniqueDamping},
		{App: "swim", System: &sysB},
		{App: "swim", System: &sysC},
	}
	seen := make(map[Key]int)
	for i, s := range specs {
		k, err := s.Key()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if j, dup := seen[k]; dup {
			t.Errorf("specs %d and %d collide", j, i)
		}
		seen[k] = i
	}
}

// TestKeyMatchesCanonical: the key is exactly the hash relation of the
// canonical encoding — equal keys iff equal encodings — across a spread
// of near-miss pairs.
func TestKeyMatchesCanonical(t *testing.T) {
	tc := DefaultTuningConfig(100)
	tcDelayed := tc
	tcDelayed.ResponseDelayCycles = 5
	pairs := [][2]Spec{
		{{App: "swim"}, {App: "swim", Instructions: DefaultInstructions}},
		{{App: "swim"}, {App: "swim", Instructions: 1}},
		{{App: "swim", Technique: TechniqueTuning, Tuning: &tc},
			{App: "swim", Technique: TechniqueTuning, Tuning: &tcDelayed}},
		{{App: "swim", Technique: "base"}, {App: "swim"}},
	}
	for i, p := range pairs {
		ca, err := p[0].Canonical()
		if err != nil {
			t.Fatal(err)
		}
		cb, err := p[1].Canonical()
		if err != nil {
			t.Fatal(err)
		}
		ka, _ := p[0].Key()
		kb, _ := p[1].Key()
		if (ka == kb) != bytes.Equal(ca, cb) {
			t.Errorf("pair %d: key equality %v but canonical equality %v",
				i, ka == kb, bytes.Equal(ca, cb))
		}
	}
}

// TestCanonicalCoversAllConfigFields guards the canonical encoding
// against silently ignoring newly added configuration fields: the
// encoder walks structs by reflection, so its output must grow when a
// field is added. The counts here are the encoder's contract — update
// them (and nothing else; reflection handles the rest) when a config
// struct gains a field.
func TestCanonicalCoversAllConfigFields(t *testing.T) {
	for _, tc := range []struct {
		name string
		typ  reflect.Type
		want int
	}{
		{"engine.Spec", reflect.TypeOf(Spec{}), 14},
		{"engine.DualBandConfig", reflect.TypeOf(DualBandConfig{}), 3},
		{"engine.DomainTuningConfig", reflect.TypeOf(DomainTuningConfig{}), 1},
		{"sim.Config", reflect.TypeOf(sim.Config{}), 9},
		{"cpu.Config", reflect.TypeOf(cpu.Config{}), 21},
		{"power.Config", reflect.TypeOf(power.Config{}), 5},
		{"circuit.Params", reflect.TypeOf(circuit.Params{}), 8},
		{"circuit.TwoStageParams", reflect.TypeOf(circuit.TwoStageParams{}), 11},
		{"circuit.NetworkConfig", reflect.TypeOf(circuit.NetworkConfig{}), 4},
		{"circuit.MultiDomainParams", reflect.TypeOf(circuit.MultiDomainParams{}), 8},
		{"circuit.DomainParams", reflect.TypeOf(circuit.DomainParams{}), 7},
		{"tuning.Config", reflect.TypeOf(tuning.Config{}), 9},
		{"tuning.DetectorConfig", reflect.TypeOf(tuning.DetectorConfig{}), 4},
		{"voltctl.Config", reflect.TypeOf(voltctl.Config{}), 4},
		{"damping.Config", reflect.TypeOf(damping.Config{}), 4},
		{"convctl.Config", reflect.TypeOf(convctl.Config{}), 6},
		{"wavelet.Config", reflect.TypeOf(wavelet.Config{}), 4},
		{"workload.Params", reflect.TypeOf(workload.Params{}), 10},
		{"workload.Mix", reflect.TypeOf(workload.Mix{}), 7},
		{"workload.Burst", reflect.TypeOf(workload.Burst{}), 10},
	} {
		if got := tc.typ.NumField(); got != tc.want {
			t.Errorf("%s has %d fields, test expects %d — confirm the canonical encoding still covers every field, then update this count",
				tc.name, got, tc.want)
		}
	}
}

// TestKeyStability: hashing is repeatable within a process.
func TestKeyStability(t *testing.T) {
	s := Spec{App: "parser", Technique: TechniqueDamping}
	k1, err := s.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("same spec hashed twice differs")
	}
	if k1.String() == "" {
		t.Error("empty key string")
	}
}
