package engine

import (
	"bytes"
	"testing"

	"repro/internal/baselines/convctl"
	"repro/internal/baselines/wavelet"
	"repro/internal/circuit"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// specFromFuzz builds a Spec from fuzzed primitives, exercising every
// optional section. Selectors deliberately produce out-of-range and
// junk values: the key must be total over junk specs too (only an
// unknown technique kind is unkeyable, and that consistently).
func specFromFuzz(app string, insts uint64, techSel, variant uint8, f1, f2 float64, i1, i2 int) Spec {
	s := Spec{App: app, Instructions: insts}
	switch techSel % 9 {
	case 0: // base, left implicit
	case 1:
		s.Technique = TechniqueNone
	case 2:
		s.Technique = TechniqueTuning
		if variant%2 == 1 {
			tc := DefaultTuningConfig(i1)
			tc.PhantomTargetAmps = f1
			tc.ResponseDelayCycles = i2
			s.Tuning = &tc
		}
	case 3:
		s.Technique = TechniqueVoltageControl
		if variant%2 == 1 {
			vc := defaultVoltageControl()
			vc.TargetThresholdVolts = f1
			vc.SensorNoiseVolts = f2
			vc.SensorDelayCycles = i1
			s.VoltageControl = &vc
		}
	case 4:
		s.Technique = TechniqueDamping
		if variant%2 == 1 {
			dc := defaultDamping()
			dc.DeltaAmps = f1
			dc.WindowCycles = i1
			dc.LowerScale = f2
			s.Damping = &dc
		}
	case 5:
		s.Technique = TechniqueConvolution
		if variant%2 == 1 {
			cc := convctl.Config{ThresholdVolts: f1, Horizon: i1, EstimateErrorAmps: f2, Seed: uint64(i2)}
			s.Convolution = &cc
		}
	case 6:
		s.Technique = TechniqueWavelet
		if variant%2 == 1 {
			wc := wavelet.Config{Scales: []int{i1, i2}, ThresholdAmpCycles: f1, Repetitions: i2}
			s.Wavelet = &wc
		}
	case 7:
		s.Technique = TechniqueDualBand
		if variant%2 == 1 {
			db := DualBandConfig{DecimationFactor: i1}
			db.Medium = DefaultTuningConfig(i2)
			db.Medium.PhantomTargetAmps = f1
			db.Low = DefaultTuningConfig(100)
			db.Low.Detector.ThresholdAmps = f2
			s.DualBand = &db
		}
	case 8:
		s.Technique = TechniqueDomainTuning
		if variant%2 == 1 {
			pdn := circuit.NetworkConfig{Kind: circuit.NetworkMultiDomain}
			dt := DefaultDomainTuningConfig(&pdn, i1)
			dt.Domains[0].PhantomTargetAmps = f1
			dt.Domains[len(dt.Domains)-1].Detector.ThresholdAmps = f2
			s.DomainTuning = &dt
		}
	}
	if variant%4 >= 2 {
		cfg := *mustNormalize(Spec{App: app}).System
		cfg.SensorDelayCycles = i2
		cfg.Power.PeakWatts += f2
		s.System = &cfg
	}
	// A PDN section, cycling through every registered network kind and
	// attaching explicit (sometimes perturbed) parameters half the time;
	// the key must fold it into the system section and stay total.
	if variant%16 >= 8 {
		kinds := circuit.NetworkKinds()
		kind := kinds[((i1%len(kinds))+len(kinds))%len(kinds)]
		pdn := circuit.NetworkConfig{Kind: kind}
		if variant%2 == 1 && kind == circuit.NetworkMultiDomain {
			p := circuit.Table1TwoDomain()
			p.Lpkg += f1
			pdn.MultiDomain = &p
		}
		s.PDN = &pdn
		if s.System != nil {
			s.System.SensorDomain = ((i2 % 3) + 3) % 3
		}
	}
	if variant%8 >= 4 {
		w := workload.Params{
			Name: app, Seed: uint64(i1),
			Mix:     workload.Mix{IntALU: 1},
			DepProb: f1, L1MissRate: f2,
		}
		w.Burst.Enabled = variant%2 == 1
		w.Burst.BurstInsts = i2
		s.Workload = &w
	}
	return s
}

func mustNormalize(s Spec) Spec {
	n, _, err := s.normalized()
	if err != nil {
		panic(err)
	}
	return n
}

// FuzzSpecKey asserts the cache key's defining property: two specs hash
// equal exactly when their canonical encodings are equal. Seeds come
// from the specs the experiments actually run.
func FuzzSpecKey(f *testing.F) {
	// Seed corpus: baseline, Table 3 tuning points, Table 4 voltage
	// control, Table 5 damping, and mirrored pairs that must collide.
	f.Add("swim", uint64(0), uint8(0), uint8(0), 0.0, 0.0, 0, 0,
		"swim", uint64(1_000_000), uint8(1), uint8(0), 0.0, 0.0, 0, 0)
	f.Add("lucas", uint64(300_000), uint8(2), uint8(1), 70.0, 0.0, 75, 0,
		"lucas", uint64(300_000), uint8(2), uint8(1), 70.0, 0.0, 100, 5)
	f.Add("parser", uint64(500_000), uint8(3), uint8(1), 0.020, 0.010, 5, 0,
		"parser", uint64(500_000), uint8(3), uint8(1), 0.020, 0.015, 3, 0)
	f.Add("bzip", uint64(1_000_000), uint8(4), uint8(1), 16.0, 0.0, 50, 0,
		"bzip", uint64(1_000_000), uint8(4), uint8(1), 8.0, 0.0, 50, 0)
	f.Add("art", uint64(42), uint8(2), uint8(3), -1.5, 3.25, -7, 9,
		"art", uint64(42), uint8(2), uint8(3), -1.5, 3.25, -7, 9)
	// Convolution, wavelet, and dual-band sections, plus custom-workload
	// variants (variant ≥ 4 attaches a Workload section).
	f.Add("swim", uint64(200_000), uint8(5), uint8(1), 0.03, 2.0, 6, 42,
		"swim", uint64(200_000), uint8(5), uint8(1), 0.03, 2.0, 8, 42)
	f.Add("lucas", uint64(200_000), uint8(6), uint8(1), 8.0, 0.0, 32, 2,
		"lucas", uint64(200_000), uint8(6), uint8(1), 8.0, 0.0, 64, 2)
	f.Add("bzip", uint64(150_000), uint8(7), uint8(1), 70.0, 40.0, 25, 100,
		"bzip", uint64(150_000), uint8(7), uint8(1), 70.0, 44.0, 25, 100)
	f.Add("lowosc", uint64(120_000), uint8(7), uint8(5), 70.0, 40.0, 25, 4000,
		"lowosc", uint64(120_000), uint8(0), uint8(5), 70.0, 40.0, 25, 4000)
	// Domain-tuning sections and PDN-bearing variants (variant%16 ≥ 8
	// attaches a PDN cycling through the registered network kinds).
	f.Add("swim", uint64(100_000), uint8(8), uint8(9), 70.0, 40.0, 2, 1,
		"swim", uint64(100_000), uint8(8), uint8(9), 70.0, 40.0, 2, 1)
	f.Add("lucas", uint64(100_000), uint8(0), uint8(8), 0.0, 0.0, 0, 2,
		"lucas", uint64(100_000), uint8(0), uint8(8), 0.0, 0.0, 1, 2)

	f.Fuzz(func(t *testing.T,
		appA string, instsA uint64, techA, varA uint8, f1A, f2A float64, i1A, i2A int,
		appB string, instsB uint64, techB, varB uint8, f1B, f2B float64, i1B, i2B int) {
		a := specFromFuzz(appA, instsA, techA, varA, f1A, f2A, i1A, i2A)
		b := specFromFuzz(appB, instsB, techB, varB, f1B, f2B, i1B, i2B)

		ca, errA := a.Canonical()
		cb, errB := b.Canonical()
		if errA != nil || errB != nil {
			t.Fatalf("canonical encoding failed on constructible specs: %v, %v", errA, errB)
		}
		ka, err := a.Key()
		if err != nil {
			t.Fatal(err)
		}
		kb, err := b.Key()
		if err != nil {
			t.Fatal(err)
		}
		if (ka == kb) != bytes.Equal(ca, cb) {
			t.Errorf("hash/encoding disagreement:\nspec A %+v\nspec B %+v\nkeys equal %v, encodings equal %v",
				a, b, ka == kb, bytes.Equal(ca, cb))
		}

		// Re-hashing is stable, and copying the spec by value (fresh
		// pointer targets) must not change the key.
		aCopy := a
		if a.Tuning != nil {
			tc := *a.Tuning
			aCopy.Tuning = &tc
		}
		if a.VoltageControl != nil {
			vc := *a.VoltageControl
			aCopy.VoltageControl = &vc
		}
		if a.Damping != nil {
			dc := *a.Damping
			aCopy.Damping = &dc
		}
		if a.System != nil {
			sc := *a.System
			aCopy.System = &sc
		}
		if a.Convolution != nil {
			cc := *a.Convolution
			aCopy.Convolution = &cc
		}
		if a.Wavelet != nil {
			wc := *a.Wavelet
			wc.Scales = append([]int(nil), wc.Scales...)
			aCopy.Wavelet = &wc
		}
		if a.DualBand != nil {
			db := *a.DualBand
			aCopy.DualBand = &db
		}
		if a.DomainTuning != nil {
			dt := *a.DomainTuning
			dt.Domains = append([]tuning.Config(nil), dt.Domains...)
			aCopy.DomainTuning = &dt
		}
		if a.PDN != nil {
			p := *a.PDN
			if p.MultiDomain != nil {
				md := *p.MultiDomain
				md.Domains = append([]circuit.DomainParams(nil), md.Domains...)
				p.MultiDomain = &md
			}
			aCopy.PDN = &p
		}
		if a.Workload != nil {
			w := *a.Workload
			aCopy.Workload = &w
		}
		kc, err := aCopy.Key()
		if err != nil {
			t.Fatal(err)
		}
		if kc != ka {
			t.Errorf("pointer identity leaked into the key:\n%+v", a)
		}
	})
}
