package engine

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
)

// TestPDNTopLevelFoldsIntoSystem: the spec-level PDN field is sugar for
// System.PDN, so the two spellings of the same network must share a
// cache key — and an explicit section equal to the kind's defaults must
// collide with the bare kind selector.
func TestPDNTopLevelFoldsIntoSystem(t *testing.T) {
	for _, kind := range circuit.NetworkKinds() {
		top := Spec{App: "swim", PDN: &circuit.NetworkConfig{Kind: kind}}
		sys := sim.DefaultConfig()
		sys.PDN = &circuit.NetworkConfig{Kind: kind}
		inSystem := Spec{App: "swim", System: &sys}

		kTop, err := top.Key()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		kSys, err := inSystem.Key()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if kTop != kSys {
			t.Errorf("%s: spec-level PDN key differs from System.PDN key", kind)
		}

		explicit, err := circuit.NetworkConfig{Kind: kind}.Normalized()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		kExplicit, err := Spec{App: "swim", PDN: &explicit}.Key()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if kExplicit != kTop {
			t.Errorf("%s: explicit default parameters key differently from the bare kind", kind)
		}
	}
}

// TestPDNKeysDifferByKind: specs selecting different network kinds (and
// the legacy no-PDN default) must never share a key — a collision would
// replay one network's cached result for another.
func TestPDNKeysDifferByKind(t *testing.T) {
	seen := map[Key]string{}
	record := func(label string, s Spec) {
		t.Helper()
		k, err := s.Key()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("networks %q and %q share a key", prev, label)
		}
		seen[k] = label
	}
	record("legacy-default", Spec{App: "swim"})
	for _, kind := range circuit.NetworkKinds() {
		record(kind, Spec{App: "swim", PDN: &circuit.NetworkConfig{Kind: kind}})
	}
	// Parameter changes inside one kind's section must also move the key.
	p := circuit.Table1TwoDomain()
	p.Lpkg *= 2
	record("multidomain-lpkg2x", Spec{App: "swim",
		PDN: &circuit.NetworkConfig{Kind: circuit.NetworkMultiDomain, MultiDomain: &p}})
}

// TestPDNValidation: unknown kinds and out-of-range sensor domains are
// client errors from Validate (naming the registered kinds for the
// former), while Key stays total over them.
func TestPDNValidation(t *testing.T) {
	bad := Spec{App: "swim", PDN: &circuit.NetworkConfig{Kind: "mesh"}}
	err := bad.Validate()
	if err == nil {
		t.Fatal("unknown network kind validated")
	}
	if !strings.Contains(err.Error(), "mesh") || !strings.Contains(err.Error(), circuit.NetworkLumped) {
		t.Errorf("error %q does not name the bad kind and the registered kinds", err)
	}
	if _, err := bad.Key(); err != nil {
		t.Errorf("key not total over an unknown network kind: %v", err)
	}

	sys := sim.DefaultConfig()
	sys.PDN = &circuit.NetworkConfig{Kind: circuit.NetworkMultiDomain}
	sys.SensorDomain = 3 // two-domain default network: 0..2 valid
	if err := (Spec{App: "swim", System: &sys}).Validate(); err == nil {
		t.Error("out-of-range sensor domain validated")
	}
	sys.SensorDomain = 2
	if err := (Spec{App: "swim", System: &sys}).Validate(); err != nil {
		t.Errorf("in-range sensor domain rejected: %v", err)
	}
}

// TestPDNExecuteDomainTuning: the domain-tuning technique runs through
// the single Execute path on the default two-domain network, and its
// per-domain controllers see per-domain observations (the controller
// cycle accounting is non-trivial).
func TestPDNExecuteDomainTuning(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small simulation")
	}
	res, err := Execute(Spec{
		App:          "swim",
		Instructions: 5_000,
		Technique:    TechniqueDomainTuning,
		PDN:          &circuit.NetworkConfig{Kind: circuit.NetworkMultiDomain},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("ran zero cycles")
	}
	if res.Tech.ControllerCycles != res.Cycles {
		t.Errorf("controller observed %d of %d cycles", res.Tech.ControllerCycles, res.Cycles)
	}
}

// TestNetworkRegistryCompleteness asserts the network registry is wired
// the way the technique registry is: every registered kind corresponds
// to one parameter-section pointer field of circuit.NetworkConfig (all
// fields except Kind), and every RegisterNetwork call in the circuit
// package's init is reachable (the registered count matches the source).
func TestNetworkRegistryCompleteness(t *testing.T) {
	typ := reflect.TypeOf(circuit.NetworkConfig{})
	sections := 0
	for i := 0; i < typ.NumField(); i++ {
		if typ.Field(i).Type.Kind() == reflect.Pointer {
			sections++
		}
	}
	kinds := circuit.NetworkKinds()
	if sections != len(kinds) {
		t.Errorf("circuit.NetworkConfig has %d parameter sections but %d registered kinds %v — register a descriptor for the new section",
			sections, len(kinds), kinds)
	}

	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "../circuit/netregistry.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	registrations := 0
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ident, ok := call.Fun.(*ast.Ident); ok && ident.Name == "RegisterNetwork" {
			registrations++
		}
		return true
	})
	if registrations == 0 {
		t.Fatal("found no RegisterNetwork calls in internal/circuit/netregistry.go — has the file moved?")
	}
	if registrations != len(kinds) {
		t.Errorf("internal/circuit/netregistry.go registers %d networks but NetworkKinds() reports %d (%v)",
			registrations, len(kinds), kinds)
	}
}
