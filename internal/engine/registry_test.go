package engine

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/power"
	"repro/internal/sim"
)

// TestKindsCoverAllTechniques pins the registered kind set: base first,
// then the paper's technique, then the related-work baselines.
func TestKindsCoverAllTechniques(t *testing.T) {
	want := []TechniqueKind{
		TechniqueNone, TechniqueTuning, TechniqueVoltageControl, TechniqueDamping,
		TechniqueConvolution, TechniqueWavelet, TechniqueDualBand, TechniqueDomainTuning,
	}
	got := Kinds()
	if len(got) != len(want) {
		t.Fatalf("Kinds() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Kinds()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestCrossTechniqueKeysNeverCollide: two specs differing only in
// Technique must never share a cache key — a collision would replay one
// technique's cached result for another.
func TestCrossTechniqueKeysNeverCollide(t *testing.T) {
	seen := map[Key]TechniqueKind{}
	for _, kind := range Kinds() {
		k, err := Spec{App: "swim", Technique: kind}.Key()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("techniques %q and %q share a key", prev, kind)
		}
		seen[k] = kind
	}
}

// TestExecuteAllKinds: every registered kind constructs and runs through
// the single Execute path with a defaulted configuration.
func TestExecuteAllKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs one small simulation per technique")
	}
	for _, kind := range Kinds() {
		res, err := Execute(Spec{App: "swim", Instructions: 5_000, Technique: kind})
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if res.Cycles == 0 {
			t.Errorf("%s: ran zero cycles", kind)
		}
	}
}

// TestNormalizeMidAmpsMatchesPowerModel guards the normalize-time
// mid-current formula (kept pure-arithmetic so Key is total over junk
// systems) against drifting from power.Model.MidAmps, which Execute
// uses at build time. A mismatch would make the cached key disagree
// with the executed configuration.
func TestNormalizeMidAmpsMatchesPowerModel(t *testing.T) {
	for _, cfg := range []sim.Config{
		sim.DefaultConfig(),
		func() sim.Config {
			c := sim.DefaultConfig()
			c.Power.PeakWatts = 96
			c.Power.IdleWatts = 31
			c.Power.Vdd = 0.9
			return c
		}(),
	} {
		want := power.New(cfg.Power, cfg.CPU).MidAmps()
		got := (cfg.Power.PeakWatts/cfg.Power.Vdd + cfg.Power.IdleWatts/cfg.Power.Vdd) / 2
		if got != want {
			t.Errorf("normalize formula %.17g, power model %.17g", got, want)
		}

		spec := Spec{App: "swim", Technique: TechniqueTuning, System: &cfg}
		tc := DefaultTuningConfig(100)
		tc.PhantomTargetAmps = 0
		spec.Tuning = &tc
		n, _, err := spec.normalized()
		if err != nil {
			t.Fatal(err)
		}
		if n.Tuning.PhantomTargetAmps != want {
			t.Errorf("normalized PhantomTargetAmps %.17g, want power-model mid %.17g",
				n.Tuning.PhantomTargetAmps, want)
		}
	}
}

// TestRegistryCompleteness asserts every sim.Technique adapter defined
// in internal/sim/techniques.go has a registered descriptor: the count
// of adapter types (those with a Name method, the sim.Technique
// identity) must equal the count of registered constructors. A new
// adapter without a registration fails here, not silently at a driver.
func TestRegistryCompleteness(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "../sim/techniques.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var adapters []string
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Recv == nil || fn.Name.Name != "Name" {
			continue
		}
		recv := fn.Recv.List[0].Type
		if star, ok := recv.(*ast.StarExpr); ok {
			recv = star.X
		}
		if ident, ok := recv.(*ast.Ident); ok {
			adapters = append(adapters, ident.Name)
		}
	}
	if len(adapters) == 0 {
		t.Fatal("found no sim.Technique adapters in internal/sim/techniques.go — has the file moved?")
	}
	var constructors int
	for _, d := range registryOrder {
		if d.Build != nil {
			constructors++
		}
	}
	if constructors != len(adapters) {
		t.Errorf("internal/sim/techniques.go defines %d adapters (%s) but the registry has %d constructors — register a descriptor for the new technique",
			len(adapters), strings.Join(adapters, ", "), constructors)
	}
}
