package engine

// Fuzzing for the batch packer, in the style of FuzzSpecKey: throw
// arbitrary spec lists (including junk and traced specs) at packGroups
// and assert the packing invariants the lockstep kernel depends on.

import (
	"testing"

	"repro/internal/sim"
)

// FuzzBatchPack asserts packGroups' contract over fuzzed spec lists:
// every index lands in exactly one group, multi-lane groups never mix
// specs with different MachineKeys, and traced or unkeyable specs always
// ride alone (the scalar path owns their semantics).
func FuzzBatchPack(f *testing.F) {
	// Seeds: a compatible pair, an all-different list, duplicated
	// machines across techniques, and a traced spec mixed in.
	f.Add("swim", uint64(10_000), uint8(2), uint8(0), 50.0, 0.0, 75, 0,
		"swim", uint64(10_000), uint8(3), uint8(0), 0.0, 0.0, 0, 0, uint8(0))
	f.Add("lucas", uint64(20_000), uint8(2), uint8(1), 70.0, 0.0, 75, 0,
		"bzip", uint64(20_000), uint8(2), uint8(1), 70.0, 0.0, 75, 0, uint8(1))
	f.Add("art", uint64(5_000), uint8(4), uint8(3), 16.0, 1.0, 50, 2,
		"art", uint64(5_000), uint8(7), uint8(5), 70.0, 40.0, 25, 100, uint8(2))
	f.Add("parser", uint64(1_000), uint8(0), uint8(0), 0.0, 0.0, 0, 0,
		"parser", uint64(1_000), uint8(1), uint8(0), 0.0, 0.0, 0, 0, uint8(7))

	f.Fuzz(func(t *testing.T,
		appA string, instsA uint64, techA, varA uint8, f1A, f2A float64, i1A, i2A int,
		appB string, instsB uint64, techB, varB uint8, f1B, f2B float64, i1B, i2B int,
		shape uint8) {
		// Build a list mixing two fuzzed base specs, technique variants
		// of each (same machine, different control), and — depending on
		// shape — a traced spec and an unkeyable junk spec.
		a := specFromFuzz(appA, instsA, techA, varA, f1A, f2A, i1A, i2A)
		b := specFromFuzz(appB, instsB, techB, varB, f1B, f2B, i1B, i2B)
		aAlt := a
		aAlt.Technique = TechniqueNone
		clearSections(&aAlt)
		bAlt := b
		bAlt.Technique = TechniqueVoltageControl
		clearSections(&bAlt)
		specs := []Spec{a, b, aAlt, bAlt, a}
		if shape%2 == 1 {
			traced := a
			traced.Trace = func(sim.TracePoint) {}
			specs = append(specs, traced)
		}
		if shape%4 >= 2 {
			junk := b
			junk.Technique = TechniqueKind("no-such-technique")
			specs = append(specs, junk)
		}

		indices := make([]int, len(specs))
		for i := range indices {
			indices[i] = i
		}
		groups := packGroups(specs, indices)

		// Invariant 1: exact cover — every index in exactly one group.
		seen := make(map[int]int)
		for _, g := range groups {
			if len(g.indices) == 0 {
				t.Fatalf("empty group in %+v", groups)
			}
			for _, i := range g.indices {
				seen[i]++
			}
		}
		for i := range specs {
			if seen[i] != 1 {
				t.Fatalf("index %d packed %d times (want exactly once)", i, seen[i])
			}
		}

		// Invariant 2: no group mixes machines — all members of a
		// multi-lane group share one MachineKey.
		for gi, g := range groups {
			if len(g.indices) < 2 {
				continue
			}
			k0, err := specs[g.indices[0]].MachineKey()
			if err != nil {
				t.Fatalf("group %d: unkeyable spec %d in multi-lane group: %v", gi, g.indices[0], err)
			}
			for _, i := range g.indices[1:] {
				ki, err := specs[i].MachineKey()
				if err != nil {
					t.Fatalf("group %d: unkeyable spec %d in multi-lane group: %v", gi, i, err)
				}
				if ki != k0 {
					t.Fatalf("group %d mixes machine keys: spec %d vs spec %d", gi, g.indices[0], i)
				}
			}
		}

		// Invariant 3: traced and unkeyable specs ride alone.
		for gi, g := range groups {
			for _, i := range g.indices {
				_, keyErr := specs[i].MachineKey()
				if (specs[i].Trace != nil || keyErr != nil) && len(g.indices) != 1 {
					t.Fatalf("group %d: traced/unkeyable spec %d shares a machine with %d others",
						gi, i, len(g.indices)-1)
				}
			}
		}
	})
}
