// Package engine is the shared run-execution subsystem: every driver in
// the repo (the public resonance.Simulate, cmd/sweep, cmd/rtsim,
// cmd/experiments, and the internal/experiments runners) describes a run
// as a Spec and hands it to an Engine, which executes it through a
// bounded worker pool with context cancellation and serves repeated
// specs from a content-addressed result cache.
//
// Because the whole simulated system is a pure function of its
// configuration (see internal/sim's determinism tests), two Specs with
// equal canonical encodings always produce bit-identical Results; the
// cache and the pool are therefore invisible to callers except in wall
// time.
package engine

import (
	"fmt"

	"repro/internal/baselines/damping"
	"repro/internal/baselines/voltctl"
	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// DefaultInstructions is the run length used when a Spec leaves
// Instructions zero.
const DefaultInstructions = 1_000_000

// TechniqueKind selects an inductive-noise control scheme.
type TechniqueKind string

// Available techniques.
const (
	// TechniqueNone runs the uncontrolled base processor.
	TechniqueNone TechniqueKind = "base"
	// TechniqueTuning is resonance tuning, the paper's contribution.
	TechniqueTuning TechniqueKind = "tuning"
	// TechniqueVoltageControl is the voltage-threshold scheme of [10].
	TechniqueVoltageControl TechniqueKind = "voltctl"
	// TechniqueDamping is pipeline damping [14].
	TechniqueDamping TechniqueKind = "damping"
)

// Spec describes one deterministic simulation run: the application, the
// run length, the technique and its configuration, and the simulated
// system. It is the unit of caching — see Key.
type Spec struct {
	// App names a Table 2 application (see workload.Apps).
	App string
	// Instructions is the run length; zero means DefaultInstructions.
	Instructions uint64
	// Technique selects the control scheme; empty means TechniqueNone.
	Technique TechniqueKind

	// System overrides the Table 1 system when non-nil.
	System *sim.Config
	// Tuning overrides the paper's tuning configuration when non-nil
	// (only used with TechniqueTuning).
	Tuning *tuning.Config
	// VoltageControl overrides the default [10] configuration
	// (20 mV target, 10 mV noise, 5-cycle delay) when non-nil.
	VoltageControl *voltctl.Config
	// Damping overrides the default [14] configuration (50-cycle
	// window, δ = 16 A) when non-nil.
	Damping *DampingConfig

	// Trace, when non-nil, receives every cycle's waveform point. A
	// traced run always simulates — the callback's side effects cannot
	// be replayed from a cached Result — but its result is still stored
	// for later untraced consumers.
	Trace func(sim.TracePoint)
}

// DampingConfig aliases the [14] configuration for Spec construction.
type DampingConfig = damping.Config

// DefaultTuningConfig returns the paper's evaluated resonance-tuning
// configuration (Section 5.2) with the given initial response time.
func DefaultTuningConfig(initialResponseCycles int) tuning.Config {
	supply := circuit.Table1()
	lo, hi := supply.ResonanceBandCycles().HalfPeriods()
	return tuning.Config{
		Detector: tuning.DetectorConfig{
			HalfPeriodLo:           lo,
			HalfPeriodHi:           hi,
			ThresholdAmps:          32,
			MaxRepetitionTolerance: 4,
		},
		InitialResponseThreshold: 2,
		SecondResponseThreshold:  3,
		InitialResponseCycles:    initialResponseCycles,
		SecondResponseCycles:     35,
		ReducedIssueWidth:        4,
		ReducedCachePorts:        1,
		PhantomTargetAmps:        70,
	}
}

// defaultVoltageControl is the [10] configuration evaluated throughout
// the repo when a Spec does not override it.
func defaultVoltageControl() voltctl.Config {
	return voltctl.Config{TargetThresholdVolts: 0.020, SensorNoiseVolts: 0.010, SensorDelayCycles: 5, Seed: 777}
}

// defaultDamping is the [14] configuration evaluated throughout the repo
// when a Spec does not override it.
func defaultDamping() damping.Config {
	return damping.Config{WindowCycles: 50, DeltaAmps: 16, Scale: 0.5}
}

// normalized resolves every default so that two Specs describing the
// same run — via zero values, via explicit defaults, or via distinct
// pointers to equal configurations — become structurally identical. The
// canonical encoding (and therefore the cache key) is computed from the
// normalized form, and Execute builds the simulation from it, which is
// what makes the cache sound.
func (s Spec) normalized() (Spec, error) {
	n := s
	if n.Instructions == 0 {
		n.Instructions = DefaultInstructions
	}
	if n.Technique == "" {
		n.Technique = TechniqueNone
	}
	cfg := sim.DefaultConfig()
	if n.System != nil {
		cfg = *n.System
	}
	n.System = &cfg

	// Only the selected technique's configuration is semantically
	// meaningful; drop the rest so it cannot perturb the key.
	n.Tuning, n.VoltageControl, n.Damping = nil, nil, nil
	switch n.Technique {
	case TechniqueNone:
	case TechniqueTuning:
		tc := DefaultTuningConfig(100)
		if s.Tuning != nil {
			tc = *s.Tuning
		}
		if tc.PhantomTargetAmps == 0 {
			// The paper's second-level response holds the mid current
			// level; replicate power.Model.MidAmps from the envelope.
			tc.PhantomTargetAmps = (cfg.Power.PeakWatts/cfg.Power.Vdd + cfg.Power.IdleWatts/cfg.Power.Vdd) / 2
		}
		n.Tuning = &tc
	case TechniqueVoltageControl:
		vc := defaultVoltageControl()
		if s.VoltageControl != nil {
			vc = *s.VoltageControl
		}
		n.VoltageControl = &vc
	case TechniqueDamping:
		dc := defaultDamping()
		if s.Damping != nil {
			dc = *s.Damping
		}
		n.Damping = &dc
	default:
		return Spec{}, fmt.Errorf("engine: unknown technique %q", n.Technique)
	}
	return n, nil
}

// Execute builds and runs the simulation described by spec on the
// calling goroutine, bypassing any cache. It is the single construction
// path for every driver in the repo.
func Execute(spec Spec) (sim.Result, error) {
	n, err := spec.normalized()
	if err != nil {
		return sim.Result{}, err
	}
	app, err := workload.ByName(n.App)
	if err != nil {
		return sim.Result{}, err
	}
	// The technique constructors panic on unusable configurations;
	// validate here so a bad grid point surfaces as an error naming it.
	switch n.Technique {
	case TechniqueTuning:
		err = n.Tuning.Validate()
	case TechniqueVoltageControl:
		err = n.VoltageControl.Validate()
	case TechniqueDamping:
		err = n.Damping.Validate()
	}
	if err != nil {
		return sim.Result{}, err
	}
	cfg := *n.System

	// A probe provides the power model for technique defaults that
	// depend on the electrical envelope (phantom-fire current).
	probe, err := sim.New(cfg, cpu.NewSliceSource(nil), nil)
	if err != nil {
		return sim.Result{}, err
	}
	pwr := probe.Power()

	var tech sim.Technique
	var traceCount func() int
	var traceLevel func() int
	switch n.Technique {
	case TechniqueNone:
	case TechniqueTuning:
		rt := sim.NewResonanceTuning(*n.Tuning)
		tech = rt
		traceCount, traceLevel = rt.EventCount, rt.Level
	case TechniqueVoltageControl:
		v := sim.NewVoltageControl(*n.VoltageControl, pwr.PhantomFireAmps())
		tech = v
		traceLevel = v.Level
	case TechniqueDamping:
		tech = sim.NewDamping(*n.Damping)
	}

	// The instruction stream comes from the shared trace store: the
	// app's stream is materialized once per process and replayed through
	// a slice cursor here (bit-identical to live generation; streams too
	// large for the store's budget fall back to a live Generator).
	src := workload.SharedTraces().Source(app.Params, n.Instructions)
	s, err := sim.New(cfg, src, tech)
	if err != nil {
		return sim.Result{}, err
	}
	if spec.Trace != nil {
		s.SetTrace(spec.Trace, traceCount, traceLevel)
	}
	name := string(TechniqueNone)
	if tech != nil {
		name = tech.Name()
	}
	return s.Run(n.App, name), nil
}
