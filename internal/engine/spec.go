// Package engine is the shared run-execution subsystem: every driver in
// the repo (the public resonance.Simulate, cmd/sweep, cmd/rtsim,
// cmd/experiments, and the internal/experiments runners) describes a run
// as a Spec and hands it to an Engine, which executes it through a
// bounded worker pool with context cancellation and serves repeated
// specs from a content-addressed result cache.
//
// Because the whole simulated system is a pure function of its
// configuration (see internal/sim's determinism tests), two Specs with
// equal canonical encodings always produce bit-identical Results; the
// cache and the pool are therefore invisible to callers except in wall
// time.
package engine

import (
	"fmt"
	"math"

	"repro/internal/baselines/convctl"
	"repro/internal/baselines/damping"
	"repro/internal/baselines/voltctl"
	"repro/internal/baselines/wavelet"
	"repro/internal/circuit"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// DefaultInstructions is the run length used when a Spec leaves
// Instructions zero.
const DefaultInstructions = 1_000_000

// TechniqueKind selects an inductive-noise control scheme. The set of
// valid kinds is the technique registry (see Kinds and Register in
// registry.go); each kind below is registered in this package's init.
type TechniqueKind string

// Available techniques.
const (
	// TechniqueNone runs the uncontrolled base processor.
	TechniqueNone TechniqueKind = "base"
	// TechniqueTuning is resonance tuning, the paper's contribution.
	TechniqueTuning TechniqueKind = "tuning"
	// TechniqueVoltageControl is the voltage-threshold scheme of [10].
	TechniqueVoltageControl TechniqueKind = "voltctl"
	// TechniqueDamping is pipeline damping [14].
	TechniqueDamping TechniqueKind = "damping"
	// TechniqueConvolution is the convolution-based predictor of [8].
	TechniqueConvolution TechniqueKind = "convctl"
	// TechniqueWavelet is the Haar-wavelet detector in the spirit of [11].
	TechniqueWavelet TechniqueKind = "wavelet"
	// TechniqueDualBand is Section 2.2's dual-band resonance tuning:
	// the medium-band controller plus a decimated low-band controller.
	TechniqueDualBand TechniqueKind = "dual-band"
	// TechniqueDomainTuning is per-domain resonance tuning over a
	// multi-domain PDN: one medium-band controller per supply domain,
	// each watching its own rail sensor.
	TechniqueDomainTuning TechniqueKind = "domain-tuning"
)

// Spec describes one deterministic simulation run: the application, the
// run length, the technique and its configuration, and the simulated
// system. It is the unit of caching — see Key.
type Spec struct {
	// App names a Table 2 application (see workload.Apps). When Workload
	// is non-nil App is only a label (defaulting to Workload.Name).
	App string
	// Instructions is the run length; zero means DefaultInstructions.
	Instructions uint64
	// Technique selects the control scheme; empty means TechniqueNone.
	Technique TechniqueKind

	// Workload overrides the Table 2 application lookup with explicit
	// synthetic-workload parameters when non-nil. Runners with bespoke
	// instruction streams (the low-frequency and scaling experiments)
	// use this to stay inside the cached engine path.
	Workload *workload.Params

	// System overrides the Table 1 system when non-nil.
	System *sim.Config
	// PDN selects a registered power-delivery-network model when
	// non-nil. It is sugar for System.PDN (and overrides it): during
	// normalization the section folds into the system configuration,
	// which is its single canonical home in the cache key.
	PDN *circuit.NetworkConfig
	// Tuning overrides the paper's tuning configuration when non-nil
	// (only used with TechniqueTuning).
	Tuning *tuning.Config
	// VoltageControl overrides the default [10] configuration
	// (20 mV target, 10 mV noise, 5-cycle delay) when non-nil.
	VoltageControl *voltctl.Config
	// Damping overrides the default [14] configuration (50-cycle
	// window, δ = 16 A) when non-nil.
	Damping *DampingConfig
	// Convolution overrides the default [8] configuration when non-nil
	// (only used with TechniqueConvolution). A zero Supply defaults to
	// the spec's own simulated supply.
	Convolution *convctl.Config
	// Wavelet overrides the default [11]-style configuration when
	// non-nil (only used with TechniqueWavelet).
	Wavelet *wavelet.Config
	// DualBand overrides the derived dual-band configuration when
	// non-nil (only used with TechniqueDualBand).
	DualBand *DualBandConfig
	// DomainTuning overrides the derived per-domain tuning configuration
	// when non-nil (only used with TechniqueDomainTuning).
	DomainTuning *DomainTuningConfig

	// Trace, when non-nil, receives every cycle's waveform point. A
	// traced run always simulates — the callback's side effects cannot
	// be replayed from a cached Result — but its result is still stored
	// for later untraced consumers.
	Trace func(sim.TracePoint)
}

// DampingConfig aliases the [14] configuration for Spec construction.
type DampingConfig = damping.Config

// DualBandConfig configures Section 2.2's dual-band resonance tuning: a
// medium-band controller at core clock plus a low-band controller
// running on a decimated current stream (its cycle-denominated Detector
// and response fields are in decimated units).
type DualBandConfig struct {
	// Medium is the core-clock medium-band controller configuration.
	Medium tuning.Config
	// Low is the decimated low-band controller configuration.
	Low tuning.Config
	// DecimationFactor is how many core cycles one low-band sample
	// spans; zero means DefaultDualBandDecimation.
	DecimationFactor int
}

// DomainTuningConfig configures per-domain resonance tuning over a
// multi-domain PDN: one controller per supply domain, in domain order,
// each fed by its domain's rail sensor. The machine applies the
// strongest requested response to the shared pipeline.
type DomainTuningConfig struct {
	// Domains holds one controller configuration per PDN supply domain.
	Domains []tuning.Config
}

// DefaultDomainTuningConfig derives the per-domain tuning configuration
// for a PDN: the paper's Section 5.2 controller, with each domain's
// detector band centred on that domain's die-level resonance (±20%, the
// same band shape the dual-band low controller uses). A nil, non-multi-
// domain, or unusable PDN yields a single controller with the paper's
// Table 1 band, so default resolution — and therefore Key — stays total.
func DefaultDomainTuningConfig(pdn *circuit.NetworkConfig, initialResponseCycles int) DomainTuningConfig {
	base := DefaultTuningConfig(initialResponseCycles)
	if pdn == nil {
		return DomainTuningConfig{Domains: []tuning.Config{base}}
	}
	np, err := pdn.Normalized()
	if err != nil || np.Kind != circuit.NetworkMultiDomain || np.MultiDomain.Validate() != nil {
		return DomainTuningConfig{Domains: []tuning.Config{base}}
	}
	p := np.MultiDomain
	out := DomainTuningConfig{Domains: make([]tuning.Config, len(p.Domains))}
	for d := range p.Domains {
		c := base
		half := int(math.Round(p.ClockHz / p.Domains[d].ResonantFrequency() / 2))
		c.Detector.HalfPeriodLo = half * 8 / 10
		c.Detector.HalfPeriodHi = half * 12 / 10
		out.Domains[d] = c
	}
	return out
}

// DefaultTuningConfig returns the paper's evaluated resonance-tuning
// configuration (Section 5.2) with the given initial response time.
func DefaultTuningConfig(initialResponseCycles int) tuning.Config {
	supply := circuit.Table1()
	lo, hi := supply.ResonanceBandCycles().HalfPeriods()
	return tuning.Config{
		Detector: tuning.DetectorConfig{
			HalfPeriodLo:           lo,
			HalfPeriodHi:           hi,
			ThresholdAmps:          32,
			MaxRepetitionTolerance: 4,
		},
		InitialResponseThreshold: 2,
		SecondResponseThreshold:  3,
		InitialResponseCycles:    initialResponseCycles,
		SecondResponseCycles:     35,
		ReducedIssueWidth:        4,
		ReducedCachePorts:        1,
		PhantomTargetAmps:        70,
	}
}

// defaultVoltageControl is the [10] configuration evaluated throughout
// the repo when a Spec does not override it.
func defaultVoltageControl() voltctl.Config {
	return voltctl.Config{TargetThresholdVolts: 0.020, SensorNoiseVolts: 0.010, SensorDelayCycles: 5, Seed: 777}
}

// defaultDamping is the [14] configuration evaluated throughout the repo
// when a Spec does not override it.
func defaultDamping() damping.Config {
	return damping.Config{WindowCycles: 50, DeltaAmps: 16, Scale: 0.5}
}

// normalized resolves every default so that two Specs describing the
// same run — via zero values, via explicit defaults, or via distinct
// pointers to equal configurations — become structurally identical. The
// canonical encoding (and therefore the cache key) is computed from the
// normalized form, and Execute builds the simulation from it, which is
// what makes the cache sound. The selected technique's registry
// descriptor is returned alongside.
func (s Spec) normalized() (Spec, *Descriptor, error) {
	n := s
	if n.Instructions == 0 {
		n.Instructions = DefaultInstructions
	}
	if n.Technique == "" {
		n.Technique = TechniqueNone
	}
	if n.Workload != nil {
		w := *n.Workload
		n.Workload = &w
		if n.App == "" {
			n.App = w.Name
		}
	}
	cfg := sim.DefaultConfig()
	if n.System != nil {
		cfg = *n.System
	}
	// A spec-level PDN overrides the system's; System is the section's
	// single canonical home, so the network participates in the system
	// encoding exactly once and the spec-level field never reaches the
	// key directly.
	if n.PDN != nil {
		p := *n.PDN
		cfg.PDN = &p
		n.PDN = nil
	}
	if cfg.PDN != nil {
		if np, err := cfg.PDN.Normalized(); err == nil {
			cfg.PDN = &np
			// The network supersedes the legacy supply fields; zero
			// them so equal networks encode equally regardless of what
			// the caller left behind.
			cfg.Supply = circuit.Params{}
			cfg.TwoStageSupply = nil
		} else {
			// Unknown kind: keep the section raw (privately copied) so
			// Key stays total; the error surfaces from Validate and
			// Execute instead.
			p := *cfg.PDN
			cfg.PDN = &p
		}
	}
	n.System = &cfg

	desc, ok := lookupTechnique(n.Technique)
	if !ok {
		return Spec{}, nil, fmt.Errorf("engine: unknown technique %q (registered kinds: %v)", n.Technique, Kinds())
	}
	// Only the selected technique's configuration is semantically
	// meaningful; drop the rest so it cannot perturb the key, then let
	// the selected descriptor resolve its own section's defaults.
	clearSections(&n)
	if desc.Normalize != nil {
		// Normalize-time Env carries only pure-arithmetic envelope
		// quantities so Key stays total even over unusable systems;
		// this formula replicates power.Model.MidAmps (asserted by
		// TestNormalizeMidAmpsMatchesPowerModel).
		env := Env{MidAmps: (cfg.Power.PeakWatts/cfg.Power.Vdd + cfg.Power.IdleWatts/cfg.Power.Vdd) / 2}
		desc.Normalize(&s, &n, env)
	}
	return n, desc, nil
}

// Validate resolves the spec through the registry's Normalize path and
// checks everything Execute would reject before simulating — unknown
// technique kind, unusable technique section, unknown application, bad
// synthetic-workload parameters, unusable system configuration — without
// constructing a simulator. It is what a serving front-end runs on an
// incoming spec so configuration mistakes surface as client errors
// rather than failed runs.
func (s Spec) Validate() error {
	n, desc, err := s.normalized()
	if err != nil {
		return err
	}
	if n.Workload != nil {
		if err := n.Workload.Validate(); err != nil {
			return err
		}
	} else if _, err := workload.ByName(n.App); err != nil {
		return err
	}
	if n.System.PDN != nil {
		if err := n.System.PDN.Validate(); err != nil {
			return err
		}
		if nd := n.System.PDN.DomainCount(); n.System.SensorDomain < 0 || n.System.SensorDomain > nd {
			return fmt.Errorf("engine: sensor domain %d out of range for a %d-domain network", n.System.SensorDomain, nd)
		}
	}
	if desc.Validate != nil {
		if err := desc.Validate(&n); err != nil {
			return err
		}
	}
	if err := n.System.CPU.Validate(); err != nil {
		return err
	}
	return n.System.Power.Validate()
}

// Execute builds and runs the simulation described by spec on the
// calling goroutine, bypassing any cache. It is the single construction
// path for every driver in the repo: the spec's technique descriptor
// (see registry.go) validates the resolved configuration and constructs
// the adapter.
func Execute(spec Spec) (sim.Result, error) {
	res, _, err := executeMeasured(spec)
	return res, err
}

// executeMeasured is Execute plus the run's power-memoization counters,
// which the engine aggregates into its CacheStats.
func executeMeasured(spec Spec) (sim.Result, power.MemoStats, error) {
	n, desc, err := spec.normalized()
	if err != nil {
		return sim.Result{}, power.MemoStats{}, err
	}
	params := workload.Params{}
	if n.Workload != nil {
		params = *n.Workload
		if err := params.Validate(); err != nil {
			return sim.Result{}, power.MemoStats{}, err
		}
	} else {
		app, err := workload.ByName(n.App)
		if err != nil {
			return sim.Result{}, power.MemoStats{}, err
		}
		params = app.Params
	}
	tech, hooks, err := buildTechnique(&n, desc)
	if err != nil {
		return sim.Result{}, power.MemoStats{}, err
	}
	cfg := *n.System

	// The instruction stream comes from the shared trace store: the
	// app's stream is materialized once per process and replayed through
	// a slice cursor here (bit-identical to live generation; streams too
	// large for the store's budget fall back to a live Generator).
	src := workload.SharedTraces().Source(params, n.Instructions)
	s, err := sim.New(cfg, src, tech)
	if err != nil {
		return sim.Result{}, power.MemoStats{}, err
	}
	if spec.Trace != nil {
		s.SetTrace(spec.Trace, hooks.EventCount, hooks.Level)
	}
	name := string(TechniqueNone)
	if tech != nil {
		name = tech.Name()
	}
	return s.Run(n.App, name), s.Power().MemoStats(), nil
}

// buildTechnique validates a normalized spec's technique section and
// constructs the adapter with the build-time envelope read off the power
// model. tech is nil for TechniqueNone.
func buildTechnique(n *Spec, desc *Descriptor) (sim.Technique, TraceHooks, error) {
	// The technique constructors panic on unusable configurations;
	// validate here so a bad grid point surfaces as an error naming it.
	if desc.Validate != nil {
		if err := desc.Validate(n); err != nil {
			return nil, TraceHooks{}, err
		}
	}
	// Techniques that depend on the electrical envelope (phantom-fire
	// current, mid level) read it straight off the power model; validate
	// the inputs first because power.New panics on bad configurations.
	if err := n.System.CPU.Validate(); err != nil {
		return nil, TraceHooks{}, err
	}
	if err := n.System.Power.Validate(); err != nil {
		return nil, TraceHooks{}, err
	}
	pwr := power.New(n.System.Power, n.System.CPU)
	env := Env{MidAmps: pwr.MidAmps(), PhantomFireAmps: pwr.PhantomFireAmps()}
	if desc.Build == nil {
		return nil, TraceHooks{}, nil
	}
	tech, hooks := desc.Build(n, env)
	return tech, hooks, nil
}

// BuildTechnique resolves spec's technique section exactly as Execute
// does — registry defaulting, validation, envelope from the power model —
// and returns the constructed adapter without running a simulation. It
// serves drivers that feed the simulator from an external instruction
// source (e.g. a recorded trace) and so cannot go through Execute. A nil
// Technique means the base machine.
func BuildTechnique(spec Spec) (sim.Technique, TraceHooks, error) {
	n, desc, err := spec.normalized()
	if err != nil {
		return nil, TraceHooks{}, err
	}
	return buildTechnique(&n, desc)
}
