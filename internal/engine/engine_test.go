package engine

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

// testSpecs is a small mixed batch: every technique, one shared baseline
// duplicated so the cache has something to coalesce.
func testSpecs() []Spec {
	tc := DefaultTuningConfig(75)
	return []Spec{
		{App: "swim", Instructions: 50_000},
		{App: "swim", Instructions: 50_000, Technique: TechniqueTuning},
		{App: "swim", Instructions: 50_000, Technique: TechniqueTuning, Tuning: &tc},
		{App: "lucas", Instructions: 50_000, Technique: TechniqueVoltageControl},
		{App: "parser", Instructions: 50_000, Technique: TechniqueDamping},
		{App: "swim", Instructions: 50_000}, // duplicate of 0
	}
}

// TestParallelismInvariance: the same batch run with 1 worker, N
// workers, and cache disabled produces bit-identical Results.
func TestParallelismInvariance(t *testing.T) {
	specs := testSpecs()
	serial, err := New(Options{Parallelism: 1}).RunAll(context.Background(), specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(Options{Parallelism: 8}).RunAll(context.Background(), specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := New(Options{Parallelism: 8, DisableCache: true}).RunAll(context.Background(), specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if serial[i] != parallel[i] {
			t.Errorf("spec %d: parallel run diverged:\n%+v\n%+v", i, serial[i], parallel[i])
		}
		if serial[i] != uncached[i] {
			t.Errorf("spec %d: uncached run diverged:\n%+v\n%+v", i, serial[i], uncached[i])
		}
	}
}

// TestWarmCacheInvariance: a warm-cache replay returns bit-identical
// Results without simulating anything.
func TestWarmCacheInvariance(t *testing.T) {
	specs := testSpecs()
	e := New(Options{Parallelism: 4})
	cold, err := e.RunAll(context.Background(), specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if st.Misses != 5 { // 6 specs, one duplicate
		t.Errorf("cold batch simulated %d specs, want 5", st.Misses)
	}
	if st.Hits != 1 {
		t.Errorf("cold batch hit %d, want 1 (the duplicate)", st.Hits)
	}
	warm, err := e.RunAll(context.Background(), specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	st2 := e.CacheStats()
	if st2.Misses != st.Misses {
		t.Errorf("warm batch re-simulated: misses %d → %d", st.Misses, st2.Misses)
	}
	for i := range specs {
		if cold[i] != warm[i] {
			t.Errorf("spec %d: warm result diverged:\n%+v\n%+v", i, cold[i], warm[i])
		}
	}
}

// TestRunMatchesExecute: the pooled, cached path returns exactly what a
// direct Execute returns.
func TestRunMatchesExecute(t *testing.T) {
	for _, spec := range testSpecs()[:5] {
		direct, err := Execute(spec)
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := New(Options{}).Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if direct != pooled {
			t.Errorf("Run diverged from Execute for %s/%s:\n%+v\n%+v",
				spec.App, spec.Technique, direct, pooled)
		}
	}
}

// TestTracedRunsSimulate: a Trace spec must execute (its callback fires)
// even when the result is already cached, and its result matches.
func TestTracedRunsSimulate(t *testing.T) {
	e := New(Options{})
	spec := Spec{App: "swim", Instructions: 30_000}
	plain, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var cycles int
	spec.Trace = func(sim.TracePoint) { cycles++ }
	traced, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Error("trace callback never fired on a warm cache")
	}
	if uint64(cycles) != traced.Cycles {
		t.Errorf("trace saw %d cycles, result has %d", cycles, traced.Cycles)
	}
	if plain != traced {
		t.Errorf("traced result diverged:\n%+v\n%+v", plain, traced)
	}
}

// TestProgressCallback: progress fires once per spec, serialized, with
// the spec's own result.
func TestProgressCallback(t *testing.T) {
	specs := testSpecs()
	var mu sync.Mutex
	seen := make(map[int]sim.Result)
	e := New(Options{Parallelism: 4})
	results, err := e.RunAll(context.Background(), specs, func(i int, res sim.Result) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := seen[i]; dup {
			t.Errorf("progress fired twice for spec %d", i)
		}
		seen[i] = res
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(specs) {
		t.Errorf("progress fired %d times, want %d", len(seen), len(specs))
	}
	for i, res := range seen {
		if res != results[i] {
			t.Errorf("progress result %d diverged from batch result", i)
		}
	}
}

// TestGridErrorNamesPoint: a failing grid point surfaces with its label.
func TestGridErrorNamesPoint(t *testing.T) {
	pts := []Point{
		{Label: "good point", Spec: Spec{App: "swim", Instructions: 10_000}},
		{Label: "bad point xyzzy", Spec: Spec{App: "no-such-app", Instructions: 10_000}},
	}
	_, err := New(Options{}).Grid(context.Background(), pts, nil)
	if err == nil {
		t.Fatal("grid accepted an unknown app")
	}
	if !strings.Contains(err.Error(), "bad point xyzzy") {
		t.Errorf("error does not carry the point label: %v", err)
	}
}

// TestRunAllErrorNamesSpec: RunAll's default labels identify the spec.
func TestRunAllErrorNamesSpec(t *testing.T) {
	specs := []Spec{{App: "swim", Instructions: 10_000}, {App: "gone", Instructions: 10_000}}
	_, err := New(Options{}).RunAll(context.Background(), specs, nil)
	if err == nil {
		t.Fatal("RunAll accepted an unknown app")
	}
	if !strings.Contains(err.Error(), "spec 1") || !strings.Contains(err.Error(), "gone") {
		t.Errorf("error does not identify the failing spec: %v", err)
	}
}

// TestCancellation: a cancelled context aborts the batch with ctx.Err.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := make([]Spec, 64)
	for i := range specs {
		specs[i] = Spec{App: "swim", Instructions: 1_000_000}
	}
	if _, err := New(Options{Parallelism: 2}).RunAll(ctx, specs, nil); err != context.Canceled {
		t.Errorf("cancelled batch returned %v, want context.Canceled", err)
	}
	if _, err := New(Options{}).Run(ctx, Spec{App: "swim"}); err != context.Canceled {
		t.Errorf("cancelled Run returned %v, want context.Canceled", err)
	}
}

// TestUnknownTechnique: a junk technique is an error, not a panic.
func TestUnknownTechnique(t *testing.T) {
	if _, err := Execute(Spec{App: "swim", Technique: "warp-drive"}); err == nil {
		t.Error("unknown technique accepted")
	}
	if _, err := New(Options{}).Run(context.Background(), Spec{App: "swim", Technique: "warp-drive"}); err == nil {
		t.Error("unknown technique accepted by Run")
	}
}

// TestInvalidConfigIsError: unusable technique configurations come back
// as errors (the raw constructors panic).
func TestInvalidConfigIsError(t *testing.T) {
	tc := DefaultTuningConfig(-1)
	if _, err := Execute(Spec{App: "swim", Technique: TechniqueTuning, Tuning: &tc}); err == nil {
		t.Error("negative response time accepted")
	}
	dc := DampingConfig{WindowCycles: 1, DeltaAmps: -3}
	if _, err := Execute(Spec{App: "swim", Technique: TechniqueDamping, Damping: &dc}); err == nil {
		t.Error("invalid damping config accepted")
	}
}
