package engine

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/sim"
)

// diskCacheVersion guards the on-disk entry schema: bumping it after a
// Result field change makes every old entry stale, so it is ignored and
// rewritten instead of silently decoding into the wrong shape. Version 3
// marks the PDN generalization (sim.Config gained PDN and SensorDomain,
// so every canonical encoding — and therefore every key — changed).
const diskCacheVersion = 3

// diskEntry is the JSON envelope of one cached result. JSON float64
// encoding is shortest-round-trip, so a reloaded Result is bit-identical
// to the simulated one (pinned by TestDiskCacheRoundTrip).
type diskEntry struct {
	Version int        `json:"v"`
	Result  sim.Result `json:"result"`
}

// diskCache is the engine's persistent second cache tier: one JSON file
// per Spec.Key under a directory, so a later process (a warm CI golden
// run, a repeated sweep) serves finished Results without simulating.
// All operations are best-effort — a missing, corrupt, or stale entry is
// a miss, and write failures are invisible to correctness (the result
// was computed anyway).
type diskCache struct {
	dir string
}

// path places an entry by full content hash; two distinct specs can
// never collide on a file.
func (d *diskCache) path(key Key) string {
	return filepath.Join(d.dir, key.Hex()+".json")
}

// DiskCacheHas reports whether dir holds a live (current-version,
// decodable) entry for key — the per-point completion probe sharded
// sweeps use: because results are published by atomic rename, a live
// entry means the point's simulation finished somewhere and any engine
// sharing dir will serve it without simulating.
func DiskCacheHas(dir string, key Key) bool {
	d := diskCache{dir: dir}
	_, ok := d.load(key)
	return ok
}

// DiskCacheKeys enumerates the keys of finished entries under dir with
// a single directory read, parsing keys out of file names without
// decoding entry bodies. A corrupt or stale-version entry is counted
// here but treated as a miss by load — callers using this for
// completion tracking (the sharded-sweep coordinator) tolerate that
// because their merge path re-simulates whatever load rejects.
func DiskCacheKeys(dir string) ([]Key, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var keys []Key
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		k, err := ParseKey(strings.TrimSuffix(name, ".json"))
		if err != nil {
			continue // not a cache entry (e.g. a foreign file)
		}
		keys = append(keys, k)
	}
	return keys, nil
}

// load returns the cached result for key, or ok=false when the entry is
// absent, corrupt, or from a different schema version.
func (d *diskCache) load(key Key) (sim.Result, bool) {
	blob, err := os.ReadFile(d.path(key))
	if err != nil {
		return sim.Result{}, false
	}
	var en diskEntry
	if err := json.Unmarshal(blob, &en); err != nil || en.Version != diskCacheVersion {
		return sim.Result{}, false
	}
	return en.Result, true
}

// gcTmpAge is how old a tmp-* file must be before gc treats it as
// abandoned by a crashed writer rather than in flight from a live one.
const gcTmpAge = time.Hour

// gc sweeps the cache directory, deleting files that can never be
// served again and whose bytes would otherwise leak forever:
//
//   - entries written under a different diskCacheVersion — a version
//     bump changes the Result schema, and because the spec key does not
//     encode the schema version the old file name is never rewritten by
//     the new version either: without a sweep v1 entries orphan forever;
//   - corrupt entries (load already treats them as misses, but only a
//     re-simulation of the exact same key would overwrite them);
//   - tmp-* temp files older than gcTmpAge, abandoned by writers that
//     died between CreateTemp and Rename.
//
// Everything else is left alone: fresh temp files of concurrent
// writers (the mtime age guard is what makes gc at one sharded
// worker's startup safe against another worker's in-flight write),
// files the cache never wrote, and subdirectories (the sharded-sweep
// coordination state — manifest and lease files — lives under shard/).
// The sweep is best-effort: any read or remove error just skips that
// file. It returns the number of files removed.
func (d *diskCache) gc() (removed int) {
	des, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		full := filepath.Join(d.dir, name)
		switch {
		case strings.HasPrefix(name, "tmp-"):
			info, err := de.Info()
			if err != nil || time.Since(info.ModTime()) < gcTmpAge {
				continue
			}
		case strings.HasSuffix(name, ".json"):
			blob, err := os.ReadFile(full)
			if err != nil {
				continue
			}
			var en diskEntry
			if json.Unmarshal(blob, &en) == nil && en.Version == diskCacheVersion {
				continue // live entry
			}
		default:
			continue // not a cache file
		}
		if os.Remove(full) == nil {
			removed++
		}
	}
	return removed
}

// store writes the entry atomically: a unique temp file in the same
// directory, then rename, so a concurrent reader (or a killed process)
// sees either the complete entry or none, never a torn one. It reports
// whether the entry landed.
func (d *diskCache) store(key Key, res sim.Result) bool {
	blob, err := json.Marshal(diskEntry{Version: diskCacheVersion, Result: res})
	if err != nil {
		return false
	}
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return false
	}
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return false
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return false
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		return false
	}
	return true
}
