package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sim"
)

// diskCacheVersion guards the on-disk entry schema: bumping it after a
// Result field change makes every old entry stale, so it is ignored and
// rewritten instead of silently decoding into the wrong shape.
const diskCacheVersion = 2

// diskEntry is the JSON envelope of one cached result. JSON float64
// encoding is shortest-round-trip, so a reloaded Result is bit-identical
// to the simulated one (pinned by TestDiskCacheRoundTrip).
type diskEntry struct {
	Version int        `json:"v"`
	Result  sim.Result `json:"result"`
}

// diskCache is the engine's persistent second cache tier: one JSON file
// per Spec.Key under a directory, so a later process (a warm CI golden
// run, a repeated sweep) serves finished Results without simulating.
// All operations are best-effort — a missing, corrupt, or stale entry is
// a miss, and write failures are invisible to correctness (the result
// was computed anyway).
type diskCache struct {
	dir string
}

// path places an entry by full content hash; two distinct specs can
// never collide on a file.
func (d *diskCache) path(key Key) string {
	return filepath.Join(d.dir, fmt.Sprintf("%x.json", key[:]))
}

// load returns the cached result for key, or ok=false when the entry is
// absent, corrupt, or from a different schema version.
func (d *diskCache) load(key Key) (sim.Result, bool) {
	blob, err := os.ReadFile(d.path(key))
	if err != nil {
		return sim.Result{}, false
	}
	var en diskEntry
	if err := json.Unmarshal(blob, &en); err != nil || en.Version != diskCacheVersion {
		return sim.Result{}, false
	}
	return en.Result, true
}

// store writes the entry atomically: a unique temp file in the same
// directory, then rename, so a concurrent reader (or a killed process)
// sees either the complete entry or none, never a torn one. It reports
// whether the entry landed.
func (d *diskCache) store(key Key, res sim.Result) bool {
	blob, err := json.Marshal(diskEntry{Version: diskCacheVersion, Result: res})
	if err != nil {
		return false
	}
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return false
	}
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return false
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return false
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		return false
	}
	return true
}
