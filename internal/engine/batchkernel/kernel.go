// Package batchkernel steps K simulations in lockstep over one shared
// machine. The engine's batch path packs specs whose technique-independent
// halves are identical (same application stream, same simulated system —
// see Spec.MachineKey) into the lanes of a group; per-lane state is kept
// in parallel arrays (the lanes and their per-cycle decisions), while the
// expensive machine state — core scheduler, power accumulators, supply
// circuit — exists once per group.
//
// The kernel is speculative: each cycle every live lane's technique
// decides its (throttle, phantom) pair, and as long as the decisions
// agree the group advances with one machine step instead of K. A lane
// whose decision differs from the leader's has, from that cycle on, a
// genuinely different trajectory; it is marked Diverged *before* the
// machine steps (so its observed prefix is exactly the scalar run's
// prefix) and the caller re-runs it on the scalar path. Lanes that
// survive to the end are bit-identical to their scalar runs by
// induction: equal decisions every cycle mean the shared trajectory is
// each lane's own. The scalar loop (sim.Simulator) stays frozen as the
// differential reference; internal/engine's differential harness pins
// the equivalence per cycle over every registered technique kind.
package batchkernel

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// Status classifies how a lane's lockstep run ended.
type Status uint8

// Lane outcomes.
const (
	// Finished lanes ran in lockstep to the end of the stream; their
	// Result is bit-identical to a scalar run of the same spec.
	Finished Status = iota
	// Diverged lanes decided differently from their group leader at
	// DivergedAt; no machine step was taken for them at that cycle, and
	// the caller must re-run them on the scalar path.
	Diverged
	// Failed lanes panicked in their technique or trace callback; Err
	// carries the recovered panic. The rest of the group is unaffected.
	Failed
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Finished:
		return "finished"
	case Diverged:
		return "diverged"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Lane is one simulation sharing a group's machine: the technique (with
// its own controller state) plus the optional per-cycle trace hooks,
// mirroring sim.Simulator.SetTrace.
type Lane struct {
	// Tech decides the lane's per-cycle control; nil is the base
	// (uncontrolled) machine.
	Tech sim.Technique
	// TechName labels the lane's Result; empty defaults to Tech.Name()
	// (or "base" for a nil Tech).
	TechName string
	// Trace, when non-nil, receives the lane's per-cycle waveform.
	Trace func(sim.TracePoint)
	// EventCount and Level fill TracePoint's technique columns.
	EventCount func() int
	Level      func() int
}

// name returns the lane's result label.
func (l *Lane) name() string {
	if l.TechName != "" {
		return l.TechName
	}
	if l.Tech != nil {
		return l.Tech.Name()
	}
	return "base"
}

// next asks the lane's technique for its decision, converting a panic
// into an error so one broken lane cannot take down the group.
func (l *Lane) next() (th cpu.Throttle, ph sim.Phantom, err error) {
	if l.Tech == nil {
		return cpu.Unlimited, sim.Phantom{}, nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("batchkernel: technique %s panicked in Next: %v", l.name(), r)
		}
	}()
	th, ph = l.Tech.Next()
	return th, ph, nil
}

// observe delivers the cycle's observation and trace point to the lane,
// converting a panic into an error.
func (l *Lane) observe(obs *sim.Observation) (err error) {
	if l.Tech == nil && l.Trace == nil {
		return nil // nothing to deliver; skip the recover scaffolding
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("batchkernel: technique %s panicked in Observe: %v", l.name(), r)
		}
	}()
	if l.Tech != nil {
		l.Tech.Observe(obs)
	}
	if l.Trace != nil {
		tp := sim.TracePoint{Cycle: obs.Cycle, TotalAmps: obs.TotalAmps, DeviationVolts: obs.DeviationVolts}
		if l.EventCount != nil {
			tp.EventCount = l.EventCount()
		}
		if l.Level != nil {
			tp.ResponseLevel = l.Level()
		}
		l.Trace(tp)
	}
	return nil
}

// Outcome describes how one lane ended.
type Outcome struct {
	Status Status
	// DivergedAt is the cycle whose decision differed from the leader's
	// (Diverged) or whose technique panicked (Failed). The lane observed
	// every cycle before DivergedAt and none from it on.
	DivergedAt uint64
	// Err is the recovered panic of a Failed lane.
	Err error
	// Result is the lane's summary (Finished lanes only).
	Result sim.Result
}

// decision is one lane's control output for a cycle. Comparability is
// what makes lockstep checking one struct compare per lane per cycle.
type decision struct {
	th cpu.Throttle
	ph sim.Phantom
}

// Run steps the shared machine with all lanes in lockstep until the
// instruction stream drains (or the machine's cycle limit), removing
// lanes that diverge from the group or fail, and returns one Outcome per
// lane. appName labels the results. The leader — the first live lane —
// drives the machine; when it is removed the next live lane is promoted.
// Run consumes the machine: it must be freshly built and not shared.
func Run(m *sim.Machine, appName string, lanes []Lane) []Outcome {
	out := make([]Outcome, len(lanes))
	live := make([]int, len(lanes))
	for i := range lanes {
		live[i] = i
	}
	decisions := make([]decision, len(lanes))
	limit := m.CycleLimit()

	for len(live) > 0 && !m.Done() && m.Cycles() < limit {
		if len(live) == 1 {
			// Sole survivor: no lockstep check to run, so skip the
			// decision bookkeeping — this is the common state after the
			// other lanes of a group diverge.
			i := live[0]
			th, ph, err := lanes[i].next()
			if err != nil {
				out[i] = Outcome{Status: Failed, DivergedAt: m.Cycles(), Err: err}
				return out
			}
			obs := m.Step(th, ph)
			if err := lanes[i].observe(obs); err != nil {
				out[i] = Outcome{Status: Failed, DivergedAt: obs.Cycle, Err: err}
				return out
			}
			continue
		}
		// Decide: every live lane's technique picks its control.
		n := 0
		for _, i := range live {
			th, ph, err := lanes[i].next()
			if err != nil {
				out[i] = Outcome{Status: Failed, DivergedAt: m.Cycles(), Err: err}
				continue
			}
			decisions[i] = decision{th: th, ph: ph}
			live[n] = i
			n++
		}
		live = live[:n]
		if n == 0 {
			break
		}
		// Check lockstep: followers whose decision differs from the
		// leader's leave the group *before* the machine steps, so the
		// trajectory they observed so far is exactly their scalar prefix.
		lead := decisions[live[0]]
		n = 1
		for _, i := range live[1:] {
			if decisions[i] != lead {
				out[i] = Outcome{Status: Diverged, DivergedAt: m.Cycles()}
				continue
			}
			live[n] = i
			n++
		}
		live = live[:n]

		// One machine step serves every surviving lane.
		obs := m.Step(lead.th, lead.ph)

		n = 0
		for _, i := range live {
			if err := lanes[i].observe(obs); err != nil {
				out[i] = Outcome{Status: Failed, DivergedAt: obs.Cycle, Err: err}
				continue
			}
			live[n] = i
			n++
		}
		live = live[:n]
	}

	for _, i := range live {
		res := m.Result(appName, lanes[i].name())
		res.Tech = sim.TechStatsOf(lanes[i].Tech)
		out[i] = Outcome{Status: Finished, Result: res}
	}
	return out
}
