// Package batchkernel steps K simulations in lockstep over one shared
// machine. The engine's batch path packs specs whose technique-independent
// halves are identical (same application stream, same simulated system —
// see Spec.MachineKey) into the lanes of a group; per-lane state is kept
// in parallel arrays (the lanes and their per-cycle decisions), while the
// expensive machine state — core scheduler, power accumulators, supply
// circuit — exists once per cohort.
//
// The kernel is speculative: each cycle every live lane's technique
// decides its (throttle, phantom) pair, and as long as the decisions
// agree the cohort advances with one machine step instead of K. A lane
// whose decision differs from the leader's has, from that cycle on, a
// genuinely different trajectory — but the prefix it observed is exactly
// its own scalar prefix, so divergence is a fork, not a discard: the
// shared machine is deep-copied at the pre-step state (sim.Machine.Fork)
// and the lane resumes on the copy from the divergence cycle. Lanes that
// diverge at the same cycle with the same decision ride one fork together
// as a fresh lockstep cohort, and a cohort can split again, so a K-lane
// group decays into a tree of smaller cohorts instead of K scalar
// re-runs from cycle zero. Lanes that survive to the end of whichever
// cohort they inhabit are bit-identical to their scalar runs by
// induction: equal decisions every cycle mean the cohort trajectory is
// each lane's own, and the fork contract makes the copy's trajectory
// indistinguishable from the original's. The scalar loop (sim.Simulator)
// stays frozen as the differential reference; internal/engine's
// differential harness pins the equivalence per cycle over every
// registered technique kind, including forked and re-forked lanes.
package batchkernel

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/power"
	"repro/internal/sim"
)

// Status classifies how a lane's run ended.
type Status uint8

// Lane outcomes.
const (
	// Finished lanes ran to the end of the stream — in the original
	// cohort or on a forked machine; either way their Result is
	// bit-identical to a scalar run of the same spec.
	Finished Status = iota
	// Diverged lanes decided differently from their cohort leader at
	// DivergedAt on a machine that could not be forked (an unforkable
	// instruction source); no machine step was taken for them at that
	// cycle, and the caller must re-run them on the scalar path.
	Diverged
	// Failed lanes panicked in their technique or trace callback; Err
	// carries the recovered panic. The rest of the cohort is unaffected.
	Failed
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Finished:
		return "finished"
	case Diverged:
		return "diverged"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Lane is one simulation sharing a cohort's machine: the technique (with
// its own controller state) plus the optional per-cycle trace hooks,
// mirroring sim.Simulator.SetTrace.
type Lane struct {
	// Tech decides the lane's per-cycle control; nil is the base
	// (uncontrolled) machine.
	Tech sim.Technique
	// TechName labels the lane's Result; empty defaults to Tech.Name()
	// (or "base" for a nil Tech).
	TechName string
	// Trace, when non-nil, receives the lane's per-cycle waveform.
	Trace func(sim.TracePoint)
	// EventCount and Level fill TracePoint's technique columns.
	EventCount func() int
	Level      func() int
}

// name returns the lane's result label.
func (l *Lane) name() string {
	if l.TechName != "" {
		return l.TechName
	}
	if l.Tech != nil {
		return l.Tech.Name()
	}
	return "base"
}

// next asks the lane's technique for its decision, converting a panic
// into an error so one broken lane cannot take down the cohort.
func (l *Lane) next() (th cpu.Throttle, ph sim.Phantom, err error) {
	if l.Tech == nil {
		return cpu.Unlimited, sim.Phantom{}, nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("batchkernel: technique %s panicked in Next: %v", l.name(), r)
		}
	}()
	th, ph = l.Tech.Next()
	return th, ph, nil
}

// observe delivers the cycle's observation and trace point to the lane,
// converting a panic into an error.
func (l *Lane) observe(obs *sim.Observation) (err error) {
	if l.Tech == nil && l.Trace == nil {
		return nil // nothing to deliver; skip the recover scaffolding
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("batchkernel: technique %s panicked in Observe: %v", l.name(), r)
		}
	}()
	if l.Tech != nil {
		l.Tech.Observe(obs)
	}
	if l.Trace != nil {
		tp := sim.TracePoint{Cycle: obs.Cycle, TotalAmps: obs.TotalAmps, DeviationVolts: obs.DeviationVolts}
		if l.EventCount != nil {
			tp.EventCount = l.EventCount()
		}
		if l.Level != nil {
			tp.ResponseLevel = l.Level()
		}
		l.Trace(tp)
	}
	return nil
}

// Outcome describes how one lane ended.
type Outcome struct {
	Status Status
	// DivergedAt is the cycle whose decision differed from the leader's
	// on an unforkable machine (Diverged) or whose technique panicked
	// (Failed). The lane observed every cycle before DivergedAt and none
	// from it on.
	DivergedAt uint64
	// Err is the recovered panic of a Failed lane.
	Err error
	// Result is the lane's summary (Finished lanes only).
	Result sim.Result
	// Forks counts how many times the lane moved onto a forked machine
	// on its way to its outcome; FirstForkAt is the cycle of the first
	// such move (meaningful only when Forks > 0). A finished lane with
	// Forks == 0 rode the original machine the whole way.
	Forks       int
	FirstForkAt uint64
}

// Stats aggregates a Run's divergence handling, the counters
// engine.CacheStats and resonanced's /metrics export.
type Stats struct {
	// LanesForked counts lane moves onto a forked machine (a lane that
	// re-forks in a cascade counts once per move); CohortsForked counts
	// the forked machines created, each seeding one new lockstep cohort.
	LanesForked   uint64
	CohortsForked uint64
	// CyclesSaved is the speculative prefix retained by forking: the sum
	// over lanes of the lane's cycle position at its *first* fork —
	// exactly the per-lane prefix the pre-fork kernel discarded and
	// re-simulated from cycle zero on the scalar path.
	CyclesSaved uint64
	// Steps counts machine steps executed across the whole cohort tree;
	// the sum of the lanes' cycle counts divided by Steps is the
	// lockstep sharing factor actually achieved (K for a group that
	// never diverges, approaching 1 as lanes fork off early).
	Steps uint64
	// PowerMemo sums the power model's Step-memoization traffic over the
	// root machine and every fork (each Step is counted on exactly one
	// machine; see power.Model.Fork).
	PowerMemo power.MemoStats
}

// decision is one lane's control output for a cycle. Comparability is
// what makes lockstep checking one struct compare per lane per cycle.
type decision struct {
	th cpu.Throttle
	ph sim.Phantom
}

// cohort is one set of lanes advancing in lockstep on one machine. The
// root cohort owns the caller's machine; every split creates a new
// cohort on a fork. pending carries the split cycle's already-made
// decisions (parallel to live): a technique's Next has side effects and
// ran before the split was detected, so the new cohort's first step must
// consume the stored decisions rather than ask again.
type cohort struct {
	m       *sim.Machine
	live    []int
	pending []decision
}

// Run steps the machine with all lanes in lockstep until the instruction
// stream drains (or the machine's cycle limit), forking diverging lanes
// onto machine copies that resume in place — lanes splitting at the same
// cycle with the same decision share one fork as a fresh cohort, and
// cohorts split recursively — and returns one Outcome per lane plus the
// divergence statistics. appName labels the results. The leader — the
// first live lane of a cohort — drives that cohort's machine; when it is
// removed the next live lane is promoted. Run consumes the machine: it
// must be freshly built and not shared.
func Run(m *sim.Machine, appName string, lanes []Lane) ([]Outcome, Stats) {
	out := make([]Outcome, len(lanes))
	var stats Stats
	decisions := make([]decision, len(lanes))

	root := cohort{m: m, live: make([]int, len(lanes))}
	for i := range lanes {
		root.live[i] = i
	}
	// Depth-first over the cohort tree: a split pushes the new cohort
	// and the current one keeps running; order does not affect results
	// (cohorts share nothing after the fork) but LIFO keeps the warm
	// machine state cache-resident.
	stack := []cohort{root}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stack = runCohort(c, appName, lanes, decisions, out, &stats, stack)
	}
	return out, stats
}

// runCohort advances one cohort to completion, appending any cohorts it
// forks to stack and returning it.
func runCohort(c cohort, appName string, lanes []Lane, decisions []decision, out []Outcome, stats *Stats, stack []cohort) []cohort {
	m := c.m
	limit := m.CycleLimit()

	for len(c.live) > 0 && !m.Done() && m.Cycles() < limit {
		if c.pending == nil && len(c.live) == 1 {
			// Sole survivor: no lockstep check to run, so skip the
			// decision bookkeeping — this is the common state once a
			// cohort has shed its other lanes.
			i := c.live[0]
			th, ph, err := lanes[i].next()
			if err != nil {
				out[i].Status, out[i].DivergedAt, out[i].Err = Failed, m.Cycles(), err
				c.live = c.live[:0]
				break
			}
			obs := m.Step(th, ph)
			stats.Steps++
			if err := lanes[i].observe(obs); err != nil {
				out[i].Status, out[i].DivergedAt, out[i].Err = Failed, obs.Cycle, err
				c.live = c.live[:0]
				break
			}
			continue
		}

		// Decide: every live lane's control for this cycle — the
		// decisions stored by the split that created this cohort, or
		// fresh ones from each technique.
		if c.pending != nil {
			for k, i := range c.live {
				decisions[i] = c.pending[k]
			}
			c.pending = nil
		} else {
			n := 0
			for _, i := range c.live {
				th, ph, err := lanes[i].next()
				if err != nil {
					out[i].Status, out[i].DivergedAt, out[i].Err = Failed, m.Cycles(), err
					continue
				}
				decisions[i] = decision{th: th, ph: ph}
				c.live[n] = i
				n++
			}
			c.live = c.live[:n]
			if n == 0 {
				break
			}
		}

		// Check lockstep: followers whose decision differs from the
		// leader's leave the cohort *before* the machine steps, so the
		// trajectory they observed so far is exactly their scalar
		// prefix. They regroup by decision — one fork per distinct
		// decision — and resume as new cohorts.
		if len(c.live) > 1 {
			lead := decisions[c.live[0]]
			n := 1
			var split []int
			for _, i := range c.live[1:] {
				if decisions[i] == lead {
					c.live[n] = i
					n++
					continue
				}
				split = append(split, i)
			}
			c.live = c.live[:n]
			if split != nil {
				stack = forkCohorts(m, split, decisions, out, stats, stack)
			}
		}

		// One machine step serves every lane still in the cohort.
		obs := m.Step(decisions[c.live[0]].th, decisions[c.live[0]].ph)
		stats.Steps++

		n := 0
		for _, i := range c.live {
			if err := lanes[i].observe(obs); err != nil {
				out[i].Status, out[i].DivergedAt, out[i].Err = Failed, obs.Cycle, err
				continue
			}
			c.live[n] = i
			n++
		}
		c.live = c.live[:n]
	}

	for _, i := range c.live {
		res := m.Result(appName, lanes[i].name())
		res.Tech = sim.TechStatsOf(lanes[i].Tech)
		out[i].Status = Finished
		out[i].Result = res
	}
	ms := m.Power().MemoStats()
	stats.PowerMemo.Hits += ms.Hits
	stats.PowerMemo.Misses += ms.Misses
	stats.PowerMemo.Bypasses += ms.Bypasses
	return stack
}

// forkCohorts regroups the lanes that just left a cohort: lanes sharing
// a decision ride one machine fork together as a fresh lockstep cohort
// (first-appearance order, so regrouping is deterministic). When the
// machine cannot be forked the affected lanes come back Diverged for the
// caller's scalar fallback — the pre-fork behaviour.
func forkCohorts(m *sim.Machine, split []int, decisions []decision, out []Outcome, stats *Stats, stack []cohort) []cohort {
	at := m.Cycles()
	for len(split) > 0 {
		d0 := decisions[split[0]]
		grp := []int{split[0]}
		rest := split[1:]
		n := 0
		for _, i := range rest {
			if decisions[i] == d0 {
				grp = append(grp, i)
			} else {
				rest[n] = i
				n++
			}
		}
		rest = rest[:n]

		fm, err := m.Fork()
		if err != nil {
			for _, i := range grp {
				out[i].Status, out[i].DivergedAt = Diverged, at
			}
			split = rest
			continue
		}
		stats.CohortsForked++
		stats.LanesForked += uint64(len(grp))
		pend := make([]decision, len(grp))
		for k, i := range grp {
			pend[k] = decisions[i]
			if out[i].Forks == 0 {
				out[i].FirstForkAt = at
				stats.CyclesSaved += at
			}
			out[i].Forks++
		}
		stack = append(stack, cohort{m: fm, live: grp, pending: pend})
		split = rest
	}
	return stack
}
