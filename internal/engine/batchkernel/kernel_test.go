package batchkernel_test

// Lane-count and divergence edge cases for the lockstep kernel, each
// checked against a fresh scalar run of the same scripted technique:
// K=1 (no lockstep peers at all), K=5 (non-power-of-two, forks at three
// different cycles), K=9 (more lanes than distinct behaviours, so
// duplicates must stay in lockstep — and fork — together), cascading
// re-splits (a forked cohort splitting again), a lane panicking
// mid-batch and another panicking after it forked, and an unforkable
// instruction source (the Diverged scalar-fallback path).

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/engine/batchkernel"
	"repro/internal/sim"
)

// edgeInsts is the per-test instruction budget: long enough for several
// hundred cycles, short enough to keep the matrix cheap.
const edgeInsts = 2000

// edgePattern is a small mixed stream with some latency variety.
func edgePattern() []cpu.Inst {
	return []cpu.Inst{
		{Class: cpu.IntALU},
		{Class: cpu.Load, Mem: cpu.MemL1, SrcDist1: 1},
		{Class: cpu.FPMul, SrcDist1: 2},
		{Class: cpu.IntALU, SrcDist1: 1},
		{Class: cpu.Branch},
		{Class: cpu.Load, Mem: cpu.MemL2},
		{Class: cpu.FPALU, SrcDist1: 3},
		{Class: cpu.Store, Mem: cpu.MemL1},
	}
}

func edgeSource() cpu.Source {
	return cpu.NewRepeatSource(edgePattern(), edgeInsts)
}

// unforkableSource hides the underlying source's Fork method, forcing
// Machine.Fork to fail so the kernel's Diverged fallback is reachable.
type unforkableSource struct {
	inner cpu.Source
}

func (u *unforkableSource) Next() (cpu.Inst, bool) { return u.inner.Next() }

// scriptTech is a deterministic scripted technique: it runs unthrottled
// except from cycle throttleFrom on, where it halves the issue width,
// and from throttleFrom2 on (when set), where it quarters it — and
// optionally panics in Next at panicAt. Cycle position is driven by
// Observe calls, exactly as for a real technique.
type scriptTech struct {
	name          string
	throttleFrom  uint64 // 0 = never throttle
	throttleFrom2 uint64 // 0 = no second phase
	panicAt       uint64 // 0 = never panic
	cycle         uint64

	recs []obsRecord
}

// obsRecord is one observed cycle with the Activity buffer flattened.
type obsRecord struct {
	obs sim.Observation
	act cpu.Activity
}

func (s *scriptTech) Name() string { return s.name }

func (s *scriptTech) Next() (cpu.Throttle, sim.Phantom) {
	if s.panicAt != 0 && s.cycle >= s.panicAt {
		panic("scripted panic")
	}
	if s.throttleFrom2 != 0 && s.cycle >= s.throttleFrom2 {
		return cpu.Throttle{IssueWidth: 2, CachePorts: 1, IssueCurrentBudget: -1}, sim.Phantom{}
	}
	if s.throttleFrom != 0 && s.cycle >= s.throttleFrom {
		return cpu.Throttle{IssueWidth: 4, CachePorts: 1, IssueCurrentBudget: -1}, sim.Phantom{}
	}
	return cpu.Unlimited, sim.Phantom{}
}

func (s *scriptTech) Observe(obs *sim.Observation) {
	rec := obsRecord{obs: *obs, act: *obs.Activity}
	rec.obs.Activity = nil
	s.recs = append(s.recs, rec)
	s.cycle = obs.Cycle + 1
}

// clone returns a fresh technique with the same script and no state.
func (s *scriptTech) clone() *scriptTech {
	return &scriptTech{name: s.name, throttleFrom: s.throttleFrom, throttleFrom2: s.throttleFrom2, panicAt: s.panicAt}
}

// scalarRun replays one scripted lane on the frozen scalar Simulator.
func scalarRun(t *testing.T, tech *scriptTech) ([]obsRecord, sim.Result) {
	t.Helper()
	var st sim.Technique
	name := "base"
	if tech != nil {
		st = tech
		name = tech.name
	}
	s, err := sim.New(sim.DefaultConfig(), edgeSource(), st)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run("edge", name)
	if tech == nil {
		return nil, res
	}
	return tech.recs, res
}

// runGroup steps the given scripts as one lockstep group. A nil script
// is the base (uncontrolled) lane.
func runGroup(t *testing.T, scripts []*scriptTech) ([]*scriptTech, []batchkernel.Outcome, batchkernel.Stats) {
	t.Helper()
	return runGroupOn(t, scripts, edgeSource())
}

func runGroupOn(t *testing.T, scripts []*scriptTech, src cpu.Source) ([]*scriptTech, []batchkernel.Outcome, batchkernel.Stats) {
	t.Helper()
	m, err := sim.NewMachine(sim.DefaultConfig(), src)
	if err != nil {
		t.Fatal(err)
	}
	lanes := make([]batchkernel.Lane, len(scripts))
	for i, sc := range scripts {
		if sc != nil {
			lanes[i] = batchkernel.Lane{Tech: sc, TechName: sc.name}
		}
	}
	outs, stats := batchkernel.Run(m, "edge", lanes)
	return scripts, outs, stats
}

// checkLane asserts a Finished lane against its scalar reference: the
// full observation stream and the Result must match bit for bit, whether
// the lane rode the original machine the whole way (wantForkAt == 0) or
// resumed on forks (wantForkAt == the cycle of its first fork).
func checkLane(t *testing.T, label string, sc *scriptTech, out batchkernel.Outcome, wantForkAt uint64) {
	t.Helper()
	if out.Status != batchkernel.Finished {
		t.Errorf("%s: outcome %v (divergedAt=%d err=%v), want finished", label, out.Status, out.DivergedAt, out.Err)
		return
	}
	switch {
	case wantForkAt == 0 && out.Forks != 0:
		t.Errorf("%s: forked %d times (first at %d), want lockstep throughout", label, out.Forks, out.FirstForkAt)
	case wantForkAt != 0 && out.Forks == 0:
		t.Errorf("%s: never forked, want first fork at %d", label, wantForkAt)
	case wantForkAt != 0 && out.FirstForkAt != wantForkAt:
		t.Errorf("%s: first fork at %d, want %d", label, out.FirstForkAt, wantForkAt)
	}
	var ref *scriptTech
	if sc != nil {
		ref = sc.clone()
	}
	sRecs, sRes := scalarRun(t, ref)
	if sc != nil {
		compareObs(t, label, sc.recs, sRecs, len(sRecs))
		if len(sc.recs) != len(sRecs) {
			t.Errorf("%s: observed %d cycles, scalar %d", label, len(sc.recs), len(sRecs))
		}
	}
	if out.Result != sRes {
		t.Errorf("%s: batched result %+v != scalar %+v", label, out.Result, sRes)
	}
}

func compareObs(t *testing.T, label string, got, want []obsRecord, n int) {
	t.Helper()
	if len(got) < n || len(want) < n {
		t.Errorf("%s: have %d batched / %d scalar records, need %d", label, len(got), len(want), n)
		return
	}
	for c := 0; c < n; c++ {
		if got[c] != want[c] {
			t.Errorf("%s: cycle %d: batched %+v != scalar %+v", label, c, got[c], want[c])
			return
		}
	}
}

// TestSingleLane runs K=1: no peers, no lockstep checks, and the result
// must equal the scalar base run bit for bit.
func TestSingleLane(t *testing.T) {
	scripts, outs, stats := runGroup(t, []*scriptTech{nil})
	checkLane(t, "base", scripts[0], outs[0], 0)
	if stats.LanesForked != 0 || stats.CohortsForked != 0 {
		t.Errorf("stats %+v, want no forks for K=1", stats)
	}
}

// TestSingleScriptedLane runs K=1 with an active technique.
func TestSingleScriptedLane(t *testing.T) {
	scripts, outs, _ := runGroup(t, []*scriptTech{{name: "th40", throttleFrom: 40}})
	checkLane(t, "th40", scripts[0], outs[0], 0)
}

// TestFiveLanesMixedDivergence runs K=5 (non-power-of-two): the leader
// and one twin stay in lockstep for the whole stream while three lanes
// throttle at different cycles, forking off at exactly those cycles and
// finishing bit-identical to scalar on their own machines.
func TestFiveLanesMixedDivergence(t *testing.T) {
	scripts, outs, stats := runGroup(t, []*scriptTech{
		nil,
		{name: "th30", throttleFrom: 30},
		{name: "quiet", throttleFrom: 0},
		{name: "th75", throttleFrom: 75},
		{name: "th200", throttleFrom: 200},
	})
	for i, forkAt := range []uint64{0, 30, 0, 75, 200} {
		label := "base"
		if scripts[i] != nil {
			label = scripts[i].name
		}
		checkLane(t, label, scripts[i], outs[i], forkAt)
	}
	if stats.LanesForked != 3 || stats.CohortsForked != 3 {
		t.Errorf("stats %+v, want 3 lanes forked into 3 cohorts", stats)
	}
	if want := uint64(30 + 75 + 200); stats.CyclesSaved != want {
		t.Errorf("cycles saved %d, want %d", stats.CyclesSaved, want)
	}
}

// TestNineLanesWithDuplicates runs K=9, more lanes than distinct
// behaviours: the th50 triplet decides identically every cycle, so all
// three must fork at cycle 50 onto ONE shared machine — a re-formed
// lockstep cohort — and still finish bit-identical to scalar.
func TestNineLanesWithDuplicates(t *testing.T) {
	scripts, outs, stats := runGroup(t, []*scriptTech{
		nil,
		{name: "quiet-a", throttleFrom: 0},
		{name: "quiet-b", throttleFrom: 0},
		{name: "quiet-c", throttleFrom: 0},
		{name: "th50-a", throttleFrom: 50},
		{name: "th50-b", throttleFrom: 50},
		{name: "th50-c", throttleFrom: 50},
		nil,
		{name: "th90", throttleFrom: 90},
	})
	for i, forkAt := range []uint64{0, 0, 0, 0, 50, 50, 50, 0, 90} {
		label := "base"
		if scripts[i] != nil {
			label = scripts[i].name
		}
		checkLane(t, label, scripts[i], outs[i], forkAt)
	}
	// The triplet split at one cycle with one decision: one fork serves
	// all three, plus one for th90.
	if stats.CohortsForked != 2 {
		t.Errorf("cohorts forked %d, want 2 (th50 triplet regrouped + th90)", stats.CohortsForked)
	}
	if stats.LanesForked != 4 {
		t.Errorf("lanes forked %d, want 4", stats.LanesForked)
	}
}

// TestCascadingResplit scripts a fork of a fork: two lanes leave the
// root cohort together at cycle 40 (same decision, one shared fork),
// then their second throttle phases differ, splitting the forked cohort
// again at cycle 80. Both must still finish bit-identical to scalar.
func TestCascadingResplit(t *testing.T) {
	scripts, outs, stats := runGroup(t, []*scriptTech{
		nil,
		{name: "casc-a", throttleFrom: 40, throttleFrom2: 80},
		{name: "casc-b", throttleFrom: 40, throttleFrom2: 120},
	})
	checkLane(t, "base", scripts[0], outs[0], 0)
	checkLane(t, "casc-a", scripts[1], outs[1], 40)
	checkLane(t, "casc-b", scripts[2], outs[2], 40)
	// casc-a leads the forked cohort, so casc-b is the lane that forks
	// again when the second phases part ways at cycle 80.
	if outs[1].Forks != 1 {
		t.Errorf("casc-a forks %d, want 1", outs[1].Forks)
	}
	if outs[2].Forks != 2 {
		t.Errorf("casc-b forks %d, want 2 (cascade)", outs[2].Forks)
	}
	if stats.CohortsForked != 2 || stats.LanesForked != 3 {
		t.Errorf("stats %+v, want 2 cohorts / 3 lane moves", stats)
	}
	// CyclesSaved counts first forks only: both lanes' prefix was 40.
	if want := uint64(40 + 40); stats.CyclesSaved != want {
		t.Errorf("cycles saved %d, want %d", stats.CyclesSaved, want)
	}
}

// TestLanePanicMidBatch has one lane panic in Next partway through: it
// must come back Failed with the panic in Err, and the remaining lanes
// must still finish bit-identical to scalar.
func TestLanePanicMidBatch(t *testing.T) {
	scripts, outs, _ := runGroup(t, []*scriptTech{
		nil,
		{name: "bomb", panicAt: 60},
		{name: "quiet", throttleFrom: 0},
	})
	if outs[1].Status != batchkernel.Failed {
		t.Fatalf("bomb lane: status %v, want failed", outs[1].Status)
	}
	if outs[1].Err == nil || !strings.Contains(outs[1].Err.Error(), "scripted panic") {
		t.Errorf("bomb lane: err %v, want recovered scripted panic", outs[1].Err)
	}
	if outs[1].DivergedAt != 60 {
		t.Errorf("bomb lane: failed at %d, want 60", outs[1].DivergedAt)
	}
	if len(scripts[1].recs) != 60 {
		t.Errorf("bomb lane: observed %d cycles before the panic, want 60", len(scripts[1].recs))
	}
	checkLane(t, "base", scripts[0], outs[0], 0)
	checkLane(t, "quiet", scripts[2], outs[2], 0)
}

// TestForkThenPanic has a lane fork at cycle 40 and panic at cycle 100,
// i.e. on its forked machine: the panic must be contained to the fork
// (Failed, exact prefix observed) while the root cohort finishes clean.
func TestForkThenPanic(t *testing.T) {
	scripts, outs, stats := runGroup(t, []*scriptTech{
		nil,
		{name: "forkbomb", throttleFrom: 40, panicAt: 100},
		{name: "quiet", throttleFrom: 0},
	})
	if outs[1].Status != batchkernel.Failed {
		t.Fatalf("forkbomb lane: status %v, want failed", outs[1].Status)
	}
	if outs[1].DivergedAt != 100 {
		t.Errorf("forkbomb lane: failed at %d, want 100", outs[1].DivergedAt)
	}
	if outs[1].Forks != 1 || outs[1].FirstForkAt != 40 {
		t.Errorf("forkbomb lane: forks=%d firstForkAt=%d, want 1 at 40", outs[1].Forks, outs[1].FirstForkAt)
	}
	if outs[1].Err == nil || !strings.Contains(outs[1].Err.Error(), "scripted panic") {
		t.Errorf("forkbomb lane: err %v, want recovered scripted panic", outs[1].Err)
	}
	if len(scripts[1].recs) != 100 {
		t.Errorf("forkbomb lane: observed %d cycles before the panic, want 100", len(scripts[1].recs))
	}
	// The forked prefix (cycles 40..99) must equal the scalar run of the
	// same script up to the panic.
	ref := scripts[1].clone()
	ref.panicAt = 0
	sRecs, _ := scalarRun(t, ref)
	compareObs(t, "forkbomb", scripts[1].recs, sRecs, 100)
	if stats.CohortsForked != 1 || stats.LanesForked != 1 {
		t.Errorf("stats %+v, want 1 cohort / 1 lane", stats)
	}
	checkLane(t, "base", scripts[0], outs[0], 0)
	checkLane(t, "quiet", scripts[2], outs[2], 0)
}

// TestUnforkableSourceDiverges pins the scalar-fallback path: on a
// machine whose instruction source cannot be forked, a diverging lane
// must come back Diverged at exactly its divergence cycle with exactly
// the scalar prefix observed, and the rest of the group must finish.
func TestUnforkableSourceDiverges(t *testing.T) {
	scripts, outs, stats := runGroupOn(t, []*scriptTech{
		nil,
		{name: "th30", throttleFrom: 30},
		{name: "quiet", throttleFrom: 0},
	}, &unforkableSource{inner: edgeSource()})
	if outs[1].Status != batchkernel.Diverged {
		t.Fatalf("th30 lane: status %v, want diverged", outs[1].Status)
	}
	if outs[1].DivergedAt != 30 {
		t.Errorf("th30 lane: diverged at %d, want 30", outs[1].DivergedAt)
	}
	if len(scripts[1].recs) != 30 {
		t.Errorf("th30 lane: observed %d cycles, want exactly the 30-cycle prefix", len(scripts[1].recs))
	}
	sRecs, _ := scalarRun(t, scripts[1].clone())
	compareObs(t, "th30", scripts[1].recs, sRecs, 30)
	if stats.LanesForked != 0 || stats.CohortsForked != 0 {
		t.Errorf("stats %+v, want no forks on an unforkable machine", stats)
	}
	checkLane(t, "base", scripts[0], outs[0], 0)
	checkLane(t, "quiet", scripts[2], outs[2], 0)
}
