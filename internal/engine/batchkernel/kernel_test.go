package batchkernel_test

// Lane-count edge cases for the lockstep kernel, each checked against a
// fresh scalar run of the same scripted technique: K=1 (no lockstep
// peers at all), K=5 (non-power-of-two, mixed divergence), K=9 (more
// lanes than distinct behaviours, so duplicates must stay in lockstep
// together), and a lane panicking mid-batch (the rest of the group must
// finish and still match scalar).

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/engine/batchkernel"
	"repro/internal/sim"
)

// edgeInsts is the per-test instruction budget: long enough for several
// hundred cycles, short enough to keep the matrix cheap.
const edgeInsts = 2000

// edgePattern is a small mixed stream with some latency variety.
func edgePattern() []cpu.Inst {
	return []cpu.Inst{
		{Class: cpu.IntALU},
		{Class: cpu.Load, Mem: cpu.MemL1, SrcDist1: 1},
		{Class: cpu.FPMul, SrcDist1: 2},
		{Class: cpu.IntALU, SrcDist1: 1},
		{Class: cpu.Branch},
		{Class: cpu.Load, Mem: cpu.MemL2},
		{Class: cpu.FPALU, SrcDist1: 3},
		{Class: cpu.Store, Mem: cpu.MemL1},
	}
}

func edgeSource() cpu.Source {
	return cpu.NewRepeatSource(edgePattern(), edgeInsts)
}

// scriptTech is a deterministic scripted technique: it runs unthrottled
// except from cycle throttleFrom on, where it halves the issue width —
// and optionally panics in Next at panicAt. Cycle position is driven by
// Observe calls, exactly as for a real technique.
type scriptTech struct {
	name         string
	throttleFrom uint64 // 0 = never throttle
	panicAt      uint64 // 0 = never panic
	cycle        uint64

	recs []obsRecord
}

// obsRecord is one observed cycle with the Activity buffer flattened.
type obsRecord struct {
	obs sim.Observation
	act cpu.Activity
}

func (s *scriptTech) Name() string { return s.name }

func (s *scriptTech) Next() (cpu.Throttle, sim.Phantom) {
	if s.panicAt != 0 && s.cycle >= s.panicAt {
		panic("scripted panic")
	}
	if s.throttleFrom != 0 && s.cycle >= s.throttleFrom {
		return cpu.Throttle{IssueWidth: 4, CachePorts: 1, IssueCurrentBudget: -1}, sim.Phantom{}
	}
	return cpu.Unlimited, sim.Phantom{}
}

func (s *scriptTech) Observe(obs *sim.Observation) {
	rec := obsRecord{obs: *obs, act: *obs.Activity}
	rec.obs.Activity = nil
	s.recs = append(s.recs, rec)
	s.cycle = obs.Cycle + 1
}

// clone returns a fresh technique with the same script and no state.
func (s *scriptTech) clone() *scriptTech {
	return &scriptTech{name: s.name, throttleFrom: s.throttleFrom, panicAt: s.panicAt}
}

// scalarRun replays one scripted lane on the frozen scalar Simulator.
func scalarRun(t *testing.T, tech *scriptTech) ([]obsRecord, sim.Result) {
	t.Helper()
	var st sim.Technique
	name := "base"
	if tech != nil {
		st = tech
		name = tech.name
	}
	s, err := sim.New(sim.DefaultConfig(), edgeSource(), st)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run("edge", name)
	if tech == nil {
		return nil, res
	}
	return tech.recs, res
}

// runGroup steps the given scripts as one lockstep group. A nil script
// is the base (uncontrolled) lane.
func runGroup(t *testing.T, scripts []*scriptTech) ([]*scriptTech, []batchkernel.Outcome) {
	t.Helper()
	m, err := sim.NewMachine(sim.DefaultConfig(), edgeSource())
	if err != nil {
		t.Fatal(err)
	}
	lanes := make([]batchkernel.Lane, len(scripts))
	for i, sc := range scripts {
		if sc != nil {
			lanes[i] = batchkernel.Lane{Tech: sc, TechName: sc.name}
		}
	}
	return scripts, batchkernel.Run(m, "edge", lanes)
}

// checkLane asserts a lane's outcome against its scalar reference:
// Finished lanes must match the full scalar stream and Result; Diverged
// lanes must have observed exactly the scalar prefix up to DivergedAt.
func checkLane(t *testing.T, label string, sc *scriptTech, out batchkernel.Outcome, wantDiverged bool) {
	t.Helper()
	var ref *scriptTech
	if sc != nil {
		ref = sc.clone()
	}
	sRecs, sRes := scalarRun(t, ref)
	switch {
	case !wantDiverged && out.Status == batchkernel.Finished:
		if sc != nil {
			compareObs(t, label, sc.recs, sRecs, len(sRecs))
		}
		if out.Result != sRes {
			t.Errorf("%s: batched result %+v != scalar %+v", label, out.Result, sRes)
		}
	case wantDiverged && out.Status == batchkernel.Diverged:
		d := int(out.DivergedAt)
		if len(sc.recs) != d {
			t.Errorf("%s: diverged at %d but observed %d cycles", label, d, len(sc.recs))
		}
		compareObs(t, label, sc.recs, sRecs, d)
	default:
		t.Errorf("%s: outcome %v (divergedAt=%d err=%v), wantDiverged=%v",
			label, out.Status, out.DivergedAt, out.Err, wantDiverged)
	}
}

func compareObs(t *testing.T, label string, got, want []obsRecord, n int) {
	t.Helper()
	if len(got) < n || len(want) < n {
		t.Errorf("%s: have %d batched / %d scalar records, need %d", label, len(got), len(want), n)
		return
	}
	for c := 0; c < n; c++ {
		if got[c] != want[c] {
			t.Errorf("%s: cycle %d: batched %+v != scalar %+v", label, c, got[c], want[c])
			return
		}
	}
}

// TestSingleLane runs K=1: no peers, no lockstep checks, and the result
// must equal the scalar base run bit for bit.
func TestSingleLane(t *testing.T) {
	scripts, outs := runGroup(t, []*scriptTech{nil})
	checkLane(t, "base", scripts[0], outs[0], false)
}

// TestSingleScriptedLane runs K=1 with an active technique.
func TestSingleScriptedLane(t *testing.T) {
	scripts, outs := runGroup(t, []*scriptTech{{name: "th40", throttleFrom: 40}})
	checkLane(t, "th40", scripts[0], outs[0], false)
}

// TestFiveLanesMixedDivergence runs K=5 (non-power-of-two): the leader
// and one twin stay in lockstep for the whole stream while three lanes
// throttle at different cycles and must be cut at exactly those cycles.
func TestFiveLanesMixedDivergence(t *testing.T) {
	scripts, outs := runGroup(t, []*scriptTech{
		nil,
		{name: "th30", throttleFrom: 30},
		{name: "quiet", throttleFrom: 0},
		{name: "th75", throttleFrom: 75},
		{name: "th200", throttleFrom: 200},
	})
	checkLane(t, "base", scripts[0], outs[0], false)
	checkLane(t, "th30", scripts[1], outs[1], true)
	checkLane(t, "quiet", scripts[2], outs[2], false)
	checkLane(t, "th75", scripts[3], outs[3], true)
	checkLane(t, "th200", scripts[4], outs[4], true)
	for i, want := range []uint64{0, 30, 0, 75, 200} {
		if want != 0 && outs[i].DivergedAt != want {
			t.Errorf("lane %d: diverged at %d, want %d", i, outs[i].DivergedAt, want)
		}
	}
}

// TestNineLanesWithDuplicates runs K=9, more lanes than distinct
// behaviours: duplicated scripts decide identically every cycle, so all
// copies must finish (or diverge) together and match scalar.
func TestNineLanesWithDuplicates(t *testing.T) {
	scripts, outs := runGroup(t, []*scriptTech{
		nil,
		{name: "quiet-a", throttleFrom: 0},
		{name: "quiet-b", throttleFrom: 0},
		{name: "quiet-c", throttleFrom: 0},
		{name: "th50-a", throttleFrom: 50},
		{name: "th50-b", throttleFrom: 50},
		{name: "th50-c", throttleFrom: 50},
		nil,
		{name: "th90", throttleFrom: 90},
	})
	for i, wantDiverged := range []bool{false, false, false, false, true, true, true, false, true} {
		label := "base"
		if scripts[i] != nil {
			label = scripts[i].name
		}
		checkLane(t, label, scripts[i], outs[i], wantDiverged)
	}
	// The three th50 twins all left at the same cycle.
	if outs[4].DivergedAt != 50 || outs[5].DivergedAt != 50 || outs[6].DivergedAt != 50 {
		t.Errorf("th50 twins diverged at %d/%d/%d, want 50",
			outs[4].DivergedAt, outs[5].DivergedAt, outs[6].DivergedAt)
	}
}

// TestLanePanicMidBatch has one lane panic in Next partway through: it
// must come back Failed with the panic in Err, and the remaining lanes
// must still finish bit-identical to scalar.
func TestLanePanicMidBatch(t *testing.T) {
	scripts, outs := runGroup(t, []*scriptTech{
		nil,
		{name: "bomb", panicAt: 60},
		{name: "quiet", throttleFrom: 0},
	})
	if outs[1].Status != batchkernel.Failed {
		t.Fatalf("bomb lane: status %v, want failed", outs[1].Status)
	}
	if outs[1].Err == nil || !strings.Contains(outs[1].Err.Error(), "scripted panic") {
		t.Errorf("bomb lane: err %v, want recovered scripted panic", outs[1].Err)
	}
	if outs[1].DivergedAt != 60 {
		t.Errorf("bomb lane: failed at %d, want 60", outs[1].DivergedAt)
	}
	if len(scripts[1].recs) != 60 {
		t.Errorf("bomb lane: observed %d cycles before the panic, want 60", len(scripts[1].recs))
	}
	checkLane(t, "base", scripts[0], outs[0], false)
	checkLane(t, "quiet", scripts[2], outs[2], false)
}
