package engine

// The differential harness pinning the batch kernel to the scalar core.
//
// The scalar loop (sim.Simulator) is the frozen reference, in the style
// of internal/cpu/scanref_test.go: every lane of a lockstep group must
// observe, cycle for cycle, bit-identical Observations (including the
// full cpu.Activity) and TracePoints to a scalar run of the same spec,
// and produce an identical Result. Since the kernel forks diverging
// lanes onto machine copies, this holds for every lane — the lockstep
// prefix comes from the shared machine and the post-divergence suffix
// from the lane's fork, and the concatenation must be indistinguishable
// from the scalar run. The matrix must exercise real forks (and lanes
// that never fork) for the assertion to mean anything; the coverage
// check at the bottom enforces that.

import (
	"fmt"
	"testing"

	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/engine/batchkernel"
	"repro/internal/sim"
	"repro/internal/workload"
)

// cycleRecord is one cycle as a technique saw it: the Observation with
// the Activity buffer flattened into a value copy.
type cycleRecord struct {
	obs sim.Observation
	act cpu.Activity
}

// recordingTech wraps a Technique (nil for the base machine), recording
// every Observation it is shown while delegating control decisions.
type recordingTech struct {
	inner sim.Technique
	recs  []cycleRecord
}

func (r *recordingTech) Name() string {
	if r.inner == nil {
		return string(TechniqueNone)
	}
	return r.inner.Name()
}

func (r *recordingTech) Next() (cpu.Throttle, sim.Phantom) {
	if r.inner == nil {
		return cpu.Unlimited, sim.Phantom{}
	}
	return r.inner.Next()
}

func (r *recordingTech) Observe(obs *sim.Observation) {
	rec := cycleRecord{obs: *obs, act: *obs.Activity}
	rec.obs.Activity = nil
	r.recs = append(r.recs, rec)
	if r.inner != nil {
		r.inner.Observe(obs)
	}
}

// diffCase is one (system config, workload) cell of the matrix.
type diffCase struct {
	name   string
	system *sim.Config
	params workload.Params
	insts  uint64
}

// diffMatrix builds the config × seed grid: three distinct system
// configurations and four seeds each, over a mix that reliably exercises
// both quiet runs (techniques never fire: lanes survive the whole
// stream) and loud ones (techniques respond and diverge: prefix checks).
func diffMatrix(t *testing.T) []diffCase {
	t.Helper()
	app, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	twoStage := sim.DefaultConfig()
	ts := circuit.Table1TwoStage()
	twoStage.TwoStageSupply = &ts
	twoStage.SensorDelayCycles = 2
	quantized := sim.DefaultConfig()
	quantized.SensorResolutionAmps = 2
	quantized.MaxCycles = 4000

	var cases []diffCase
	for _, sys := range []struct {
		name string
		cfg  *sim.Config
	}{
		{"default", nil},
		{"twostage-delay2", &twoStage},
		{"quantized-capped", &quantized},
	} {
		for _, seed := range []uint64{1, 7, 1001, 424242} {
			p := app.Params
			p.Seed = seed
			cases = append(cases, diffCase{
				name:   fmt.Sprintf("%s/seed%d", sys.name, seed),
				system: sys.cfg,
				params: p,
				insts:  5000,
			})
		}
	}
	return cases
}

// scalarReference runs spec through the frozen scalar Simulator,
// returning the per-cycle records, trace points, and final Result.
func scalarReference(t *testing.T, spec Spec) ([]cycleRecord, []sim.TracePoint, sim.Result) {
	t.Helper()
	n, desc, err := spec.normalized()
	if err != nil {
		t.Fatal(err)
	}
	tech, hooks, err := buildTechnique(&n, desc)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingTech{inner: tech}
	src := workload.SharedTraces().Source(*n.Workload, n.Instructions)
	s, err := sim.New(*n.System, src, rec)
	if err != nil {
		t.Fatal(err)
	}
	var tps []sim.TracePoint
	s.SetTrace(func(tp sim.TracePoint) { tps = append(tps, tp) }, hooks.EventCount, hooks.Level)
	res := s.Run(n.App, rec.Name())
	// The recorder is the Technique the scalar loop saw, so its stats
	// (all zero) land in the result; re-derive them from the inner
	// technique as the unwrapped run would.
	res.Tech = sim.TechStatsOf(tech)
	return rec.recs, tps, res
}

// batchedLanes runs all specs as one lockstep group, returning per-lane
// records, trace points, outcomes, and the kernel's divergence stats.
func batchedLanes(t *testing.T, specs []Spec) ([][]cycleRecord, [][]sim.TracePoint, []batchkernel.Outcome, batchkernel.Stats) {
	t.Helper()
	n0, _, err := specs[0].normalized()
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*recordingTech, len(specs))
	tps := make([][]sim.TracePoint, len(specs))
	lanes := make([]batchkernel.Lane, len(specs))
	for i := range specs {
		ni, desc, err := specs[i].normalized()
		if err != nil {
			t.Fatal(err)
		}
		tech, hooks, err := buildTechnique(&ni, desc)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = &recordingTech{inner: tech}
		li := i
		lanes[i] = batchkernel.Lane{
			Tech:       recs[i],
			TechName:   recs[i].Name(),
			Trace:      func(tp sim.TracePoint) { tps[li] = append(tps[li], tp) },
			EventCount: hooks.EventCount,
			Level:      hooks.Level,
		}
	}
	src := workload.SharedTraces().Source(*n0.Workload, n0.Instructions)
	m, err := sim.NewMachine(*n0.System, src)
	if err != nil {
		t.Fatal(err)
	}
	outs, stats := batchkernel.Run(m, n0.App, lanes)
	out := make([][]cycleRecord, len(specs))
	for i := range recs {
		out[i] = recs[i].recs
		// The recorder is the Technique the kernel saw, so its stats (all
		// zero) land in the result; re-derive them from the inner
		// technique, exactly as scalarReference does for the scalar loop.
		if outs[i].Status == batchkernel.Finished {
			outs[i].Result.Tech = sim.TechStatsOf(recs[i].inner)
		}
	}
	return out, tps, outs, stats
}

// kindSpecs returns one spec per registered technique kind over the
// given cell, all sharing a MachineKey.
func kindSpecs(c diffCase) []Spec {
	kinds := Kinds()
	specs := make([]Spec, len(kinds))
	for i, k := range kinds {
		p := c.params
		specs[i] = Spec{
			Workload:     &p,
			Instructions: c.insts,
			System:       c.system,
			Technique:    k,
		}
	}
	return specs
}

// TestBatchKernelMatchesScalarReference is the differential harness: all
// eight registered technique kinds ride one lockstep group per
// (config, seed) cell and every lane must finish — resuming on a forked
// machine when its decisions diverge — bit-identical to its scalar
// reference run: the full observation stream, the full trace stream, and
// the Result. (Domain-tuning rides a single-domain machine here, which
// covers its aggregate-sensor fallback; its multi-domain path has its
// own scalar tests.)
func TestBatchKernelMatchesScalarReference(t *testing.T) {
	if len(Kinds()) != 8 {
		t.Fatalf("expected 8 registered technique kinds, have %v", Kinds())
	}
	var lockstep, forked, regrouped uint64
	for _, c := range diffMatrix(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			specs := kindSpecs(c)
			bRecs, bTps, outs, stats := batchedLanes(t, specs)
			for i, spec := range specs {
				sRecs, sTps, sRes := scalarReference(t, spec)
				name := string(Kinds()[i])
				if outs[i].Status != batchkernel.Finished {
					t.Errorf("%s: unexpected outcome %v (%v)", name, outs[i].Status, outs[i].Err)
					continue
				}
				if outs[i].Forks > 0 {
					forked++
				} else {
					lockstep++
				}
				if len(bRecs[i]) != len(sRecs) {
					t.Errorf("%s: observed %d cycles, scalar %d", name, len(bRecs[i]), len(sRecs))
				}
				compareRecords(t, name, bRecs[i], sRecs, len(sRecs))
				compareTraces(t, name, bTps[i], sTps, len(sTps))
				if outs[i].Result != sRes {
					t.Errorf("%s: batched result %+v != scalar %+v", name, outs[i].Result, sRes)
				}
			}
			regrouped += stats.LanesForked - stats.CohortsForked
		})
	}
	// The matrix must exercise both sides of the contract: lanes that
	// ride the original machine the whole way and lanes that resume on
	// forks — including forks shared by several lanes (a re-formed
	// lockstep cohort), which is where regrouping bugs would hide.
	if lockstep == 0 || forked == 0 {
		t.Fatalf("matrix lacks coverage: %d lockstep, %d forked lanes", lockstep, forked)
	}
	if regrouped == 0 {
		t.Fatalf("matrix lacks coverage: no fork was shared by multiple lanes (no cohort regrouping)")
	}
}

// compareRecords asserts the first n per-cycle records agree bitwise.
func compareRecords(t *testing.T, name string, got, want []cycleRecord, n int) {
	t.Helper()
	if len(got) < n || len(want) < n {
		t.Errorf("%s: have %d batched / %d scalar records, need %d", name, len(got), len(want), n)
		return
	}
	for cyc := 0; cyc < n; cyc++ {
		if got[cyc] != want[cyc] {
			t.Errorf("%s: cycle %d: batched %+v != scalar %+v", name, cyc, got[cyc], want[cyc])
			return
		}
	}
}

// compareTraces asserts the first n trace points agree bitwise.
func compareTraces(t *testing.T, name string, got, want []sim.TracePoint, n int) {
	t.Helper()
	if len(got) < n || len(want) < n {
		t.Errorf("%s: have %d batched / %d scalar trace points, need %d", name, len(got), len(want), n)
		return
	}
	for cyc := 0; cyc < n; cyc++ {
		if got[cyc] != want[cyc] {
			t.Errorf("%s: trace point %d: batched %+v != scalar %+v", name, cyc, got[cyc], want[cyc])
			return
		}
	}
}

// TestCacheStatsCountsForks pins the divergence observability: RunAll
// over a loud application's technique suite — whose lanes demonstrably
// fork (see the differential matrix) — must surface the kernel's
// divergence counters in CacheStats.
func TestCacheStatsCountsForks(t *testing.T) {
	app, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	var specs []Spec
	for _, k := range Kinds() {
		p := app.Params
		specs = append(specs, Spec{Workload: &p, Instructions: 5000, Technique: k})
	}
	eng := New(Options{Parallelism: 2})
	if _, err := eng.RunAll(t.Context(), specs, nil); err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.LanesForked == 0 || st.CohortsReformed == 0 || st.ForkCyclesSaved == 0 {
		t.Fatalf("divergence counters not populated: %+v", st)
	}
	if st.LanesForked < st.CohortsReformed {
		t.Fatalf("more cohorts (%d) than forked lanes (%d)", st.CohortsReformed, st.LanesForked)
	}
}

// TestRunAllBatchedMatchesExecute pins the engine's batch path end to
// end: RunAll over a spec list that packs into multi-lane groups must
// return exactly what spec-by-spec Execute returns.
func TestRunAllBatchedMatchesExecute(t *testing.T) {
	var specs []Spec
	for _, seed := range []uint64{3, 99} {
		for _, k := range Kinds() {
			app, err := workload.ByName("gcc")
			if err != nil {
				t.Fatal(err)
			}
			p := app.Params
			p.Seed = seed
			specs = append(specs, Spec{Workload: &p, Instructions: 4000, Technique: k})
		}
	}
	eng := New(Options{Parallelism: 2})
	got, err := eng.RunAll(t.Context(), specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		want, err := Execute(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("spec %d (%s): batched %+v != scalar %+v", i, spec.Technique, got[i], want)
		}
	}
}
