package engine

import (
	"context"

	"repro/internal/engine/batchkernel"
	"repro/internal/sim"
	"repro/internal/workload"
)

// MachineKey returns the content key of the technique-independent half
// of the spec: the application stream, the run length, and the simulated
// system, with the technique and every technique section stripped. Two
// specs with equal MachineKeys simulate identical machines over
// identical instruction streams — the compatibility predicate the batch
// packer groups lanes by.
func (s Spec) MachineKey() (Key, error) {
	m := s
	m.Technique = TechniqueNone
	clearSections(&m)
	m.Trace = nil
	return m.Key()
}

// laneGroup is one packed work item: the indices (into the batch's spec
// slice) of the specs sharing a machine. A group of one runs scalar.
type laneGroup struct {
	indices []int
}

// packGroups partitions the given spec indices into lane groups by
// MachineKey. Every index appears in exactly one group; specs that
// cannot be keyed (invalid technique) and traced specs become singleton
// groups, since a traced run must go through the scalar path's
// always-simulate semantics. Group order follows first appearance, and
// indices within a group stay in caller order, so packing is
// deterministic.
func packGroups(specs []Spec, indices []int) []laneGroup {
	byKey := make(map[Key]int) // machine key -> position in groups
	var groups []laneGroup
	for _, i := range indices {
		if specs[i].Trace != nil {
			groups = append(groups, laneGroup{indices: []int{i}})
			continue
		}
		mk, err := specs[i].MachineKey()
		if err != nil {
			groups = append(groups, laneGroup{indices: []int{i}})
			continue
		}
		if g, ok := byKey[mk]; ok {
			groups[g].indices = append(groups[g].indices, i)
			continue
		}
		byKey[mk] = len(groups)
		groups = append(groups, laneGroup{indices: []int{i}})
	}
	return groups
}

// runGroup executes one multi-lane group through the lockstep kernel —
// diverging lanes resume on forked machines inside the kernel, and only
// lanes whose machine could not be forked re-run on the scalar path —
// and reports every spec through finish exactly once. Lanes that cannot
// even be built fall back to scalar execution for a properly attributed
// error. report receives the kernel's divergence and power-memoization
// counters (scalar runs report memo traffic only).
func runGroup(ctx context.Context, specs []Spec, g laneGroup, finish func(i int, res sim.Result, err error), report func(batchkernel.Stats)) {
	scalar := func(indices []int) {
		for _, i := range indices {
			if err := ctx.Err(); err != nil {
				finish(i, sim.Result{}, err)
				continue
			}
			res, st, err := executeMeasured(specs[i])
			report(batchkernel.Stats{PowerMemo: st})
			finish(i, res, err)
		}
	}
	if len(g.indices) < 2 {
		scalar(g.indices)
		return
	}

	// Build the shared machine from the first lane's normalized spec;
	// every lane in the group resolves to the same machine by MachineKey
	// equality.
	n0, _, err := specs[g.indices[0]].normalized()
	if err != nil {
		scalar(g.indices)
		return
	}
	params := workload.Params{}
	if n0.Workload != nil {
		params = *n0.Workload
		if err := params.Validate(); err != nil {
			scalar(g.indices)
			return
		}
	} else {
		app, err := workload.ByName(n0.App)
		if err != nil {
			scalar(g.indices)
			return
		}
		params = app.Params
	}
	lanes := make([]batchkernel.Lane, 0, len(g.indices))
	laneIdx := make([]int, 0, len(g.indices))
	for _, i := range g.indices {
		ni, desc, err := specs[i].normalized()
		if err != nil {
			finish(i, sim.Result{}, err)
			continue
		}
		tech, _, err := buildTechnique(&ni, desc)
		if err != nil {
			finish(i, sim.Result{}, err)
			continue
		}
		name := string(TechniqueNone)
		if tech != nil {
			name = tech.Name()
		}
		lanes = append(lanes, batchkernel.Lane{Tech: tech, TechName: name})
		laneIdx = append(laneIdx, i)
	}
	if len(lanes) == 0 {
		return
	}
	src := workload.SharedTraces().Source(params, n0.Instructions)
	m, err := sim.NewMachine(*n0.System, src)
	if err != nil {
		// The machine config is invalid: the scalar path produces the
		// same, properly attributed error per lane.
		scalar(laneIdx)
		return
	}
	outcomes, stats := batchkernel.Run(m, n0.App, lanes)
	report(stats)
	var rerun []int
	for li, out := range outcomes {
		switch out.Status {
		case batchkernel.Finished:
			finish(laneIdx[li], out.Result, nil)
		case batchkernel.Failed:
			finish(laneIdx[li], sim.Result{}, out.Err)
		default: // Diverged on an unforkable machine: scalar fallback
			rerun = append(rerun, laneIdx[li])
		}
	}
	scalar(rerun)
}
