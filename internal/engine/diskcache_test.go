package engine

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func diskSpecs() []Spec {
	return []Spec{
		{App: "swim", Instructions: 20_000},
		{App: "swim", Instructions: 20_000, Technique: TechniqueTuning},
		{App: "parser", Instructions: 20_000, Technique: TechniqueDamping},
	}
}

// TestDiskCacheRoundTrip: a fresh engine pointed at a warm cache
// directory serves bit-identical results without simulating anything.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	specs := diskSpecs()

	cold := New(Options{DiskCacheDir: dir})
	want, err := cold.RunAll(context.Background(), specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.CacheStats(); st.Misses != uint64(len(specs)) || st.DiskWrites != uint64(len(specs)) || st.DiskHits != 0 {
		t.Fatalf("cold stats = %+v, want %d misses and writes, 0 disk hits", st, len(specs))
	}

	warm := New(Options{DiskCacheDir: dir})
	got, err := warm.RunAll(context.Background(), specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.CacheStats()
	if st.Misses != 0 {
		t.Errorf("warm engine simulated %d specs, want 0", st.Misses)
	}
	if st.DiskHits != uint64(len(specs)) {
		t.Errorf("warm engine disk hits = %d, want %d", st.DiskHits, len(specs))
	}
	for i := range specs {
		if want[i] != got[i] {
			t.Errorf("spec %d: disk round trip diverged:\n%+v\n%+v", i, want[i], got[i])
		}
	}
}

// TestDiskCacheCorruptEntryTolerated: a truncated or garbage entry is a
// miss — the spec re-simulates, returns the correct result, and the
// entry is rewritten valid.
func TestDiskCacheCorruptEntryTolerated(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{App: "swim", Instructions: 20_000}
	want, err := New(Options{DiskCacheDir: dir}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache dir holds %d entries (%v), want 1", len(files), err)
	}
	for _, garbage := range []string{"", "{\"v\":999,\"result\":{}}", "not json at all"} {
		if err := os.WriteFile(files[0], []byte(garbage), 0o644); err != nil {
			t.Fatal(err)
		}
		e := New(Options{DiskCacheDir: dir})
		got, err := e.Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("result after corrupt entry %q diverged:\n%+v\n%+v", garbage, want, got)
		}
		if st := e.CacheStats(); st.Misses != 1 || st.DiskHits != 0 || st.DiskWrites != 1 {
			t.Errorf("corrupt entry %q: stats = %+v, want a re-simulation and a rewrite", garbage, st)
		}
		// The rewritten entry must now serve a fresh engine from disk.
		e2 := New(Options{DiskCacheDir: dir})
		if _, err := e2.Run(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
		if st := e2.CacheStats(); st.DiskHits != 1 {
			t.Errorf("rewritten entry not served from disk: %+v", st)
		}
	}
}

// TestDiskCacheIgnoresErrors: failed simulations are never persisted,
// and an unwritable directory degrades to simulate-every-time rather
// than failing runs.
func TestDiskCacheIgnoresErrors(t *testing.T) {
	dir := t.TempDir()
	e := New(Options{DiskCacheDir: dir})
	if _, err := e.Run(context.Background(), Spec{App: "no-such-app"}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*")); len(files) != 0 {
		t.Errorf("failed run persisted to disk: %v", files)
	}

	// A file where the cache dir should be: stores fail, runs succeed.
	blocked := filepath.Join(t.TempDir(), "blocked")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	e2 := New(Options{DiskCacheDir: blocked})
	if _, err := e2.Run(context.Background(), Spec{App: "swim", Instructions: 10_000}); err != nil {
		t.Fatalf("unwritable cache dir broke the run: %v", err)
	}
	if st := e2.CacheStats(); st.DiskWrites != 0 || st.Misses != 1 {
		t.Errorf("stats with unwritable dir = %+v, want 1 miss, 0 writes", st)
	}
}

// TestDiskCacheGC: the construction-time sweep removes exactly the
// files that can never be served again — old-schema entries (their keys
// differ from the current version's, so they orphan forever), corrupt
// entries, and abandoned temp files — while live entries, fresh temp
// files, and foreign files survive.
func TestDiskCacheGC(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{App: "swim", Instructions: 20_000}
	want, err := New(Options{DiskCacheDir: dir}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	v1 := write(strings.Repeat("ab", 32)+".json", `{"v":1,"result":{"App":"swim"}}`)
	corrupt := write(strings.Repeat("cd", 32)+".json", "not json at all")
	staleTmp := write("tmp-stale", "partial write")
	old := time.Now().Add(-2 * gcTmpAge)
	if err := os.Chtimes(staleTmp, old, old); err != nil {
		t.Fatal(err)
	}
	freshTmp := write("tmp-fresh", "in-flight write")
	foreign := write("NOTES.txt", "not ours")

	e := New(Options{DiskCacheDir: dir, DiskCacheGC: true})
	if st := e.CacheStats(); st.DiskGCRemoved != 3 {
		t.Errorf("DiskGCRemoved = %d, want 3 (v1 + corrupt + stale tmp)", st.DiskGCRemoved)
	}
	for _, p := range []string{v1, corrupt, staleTmp} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("gc left stale file %s", filepath.Base(p))
		}
	}
	for _, p := range []string{freshTmp, foreign} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("gc removed live/foreign file %s: %v", filepath.Base(p), err)
		}
	}

	// The live current-version entry still serves from disk.
	got, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("entry after gc diverged:\n%+v\n%+v", want, got)
	}
	if st := e.CacheStats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Errorf("stats after gc = %+v, want the surviving entry served from disk", st)
	}

	// Without the option, nothing is swept.
	e2 := New(Options{DiskCacheDir: t.TempDir()})
	if st := e2.CacheStats(); st.DiskGCRemoved != 0 {
		t.Errorf("gc ran without DiskCacheGC: removed %d", st.DiskGCRemoved)
	}
}

// TestErroredEntryEvicted: a failed simulation does not poison the
// memory tier — the entry count stays at zero and a retry of the same
// spec simulates again.
func TestErroredEntryEvicted(t *testing.T) {
	e := New(Options{})
	// An unknown app passes Key() (normalization doesn't resolve apps)
	// but fails in Execute — the interesting path for entry eviction.
	bad := Spec{App: "no-such-app"}
	for i := 1; i <= 2; i++ {
		if _, err := e.Run(context.Background(), bad); err == nil {
			t.Fatal("invalid spec accepted")
		}
		st := e.CacheStats()
		if st.Entries != 0 {
			t.Fatalf("attempt %d: errored entry retained (%d entries)", i, st.Entries)
		}
		if st.Misses != uint64(i) {
			t.Fatalf("attempt %d: misses = %d, want %d (each retry must re-execute)", i, st.Misses, st.Misses)
		}
	}
}
