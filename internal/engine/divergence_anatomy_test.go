package engine

// Divergence-anatomy measurement harness behind the EXPERIMENTS.md
// "Divergence anatomy" study: for every application it runs (a) the
// seven registered technique kinds as one lockstep group and (b) the
// Table 3 lane group (base + six resonance-tuning variants), and logs
// each lane's first-divergence cycle, the cohort economics, and the
// achieved machine-step sharing factor. Run it with
//
//	go test -run TestDivergenceAnatomy -v ./internal/engine
//
// (ANATOMY_INSTS overrides the per-app instruction budget; the study in
// EXPERIMENTS.md uses 60000, the benchmarks' budget). As a plain test
// it only asserts sanity — every lane finishes — so the suite stays
// fast and the numbers stay observational.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/engine/batchkernel"
	"repro/internal/sim"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// anatomyTuningConfig mirrors the evaluated Section 5.2 configuration
// (internal/experiments.paperTuningConfig) so the Table 3 group here
// diverges exactly like the real experiment's.
func anatomyTuningConfig(initialResponseCycles, delayCycles int) tuning.Config {
	supply := circuit.Table1()
	lo, hi := supply.ResonanceBandCycles().HalfPeriods()
	return tuning.Config{
		Detector: tuning.DetectorConfig{
			HalfPeriodLo:           lo,
			HalfPeriodHi:           hi,
			ThresholdAmps:          32,
			MaxRepetitionTolerance: 4,
		},
		InitialResponseThreshold: 2,
		SecondResponseThreshold:  3,
		InitialResponseCycles:    initialResponseCycles,
		SecondResponseCycles:     35,
		ReducedIssueWidth:        4,
		ReducedCachePorts:        1,
		ResponseDelayCycles:      delayCycles,
		PhantomTargetAmps:        70,
	}
}

// anatomyGroup runs one lane group on one app and logs its anatomy.
func anatomyGroup(t *testing.T, label, app string, insts uint64, specs []Spec) {
	t.Helper()
	lanes := make([]batchkernel.Lane, len(specs))
	names := make([]string, len(specs))
	for i := range specs {
		ni, desc, err := specs[i].normalized()
		if err != nil {
			t.Fatal(err)
		}
		tech, _, err := buildTechnique(&ni, desc)
		if err != nil {
			t.Fatal(err)
		}
		lanes[i] = batchkernel.Lane{Tech: tech}
		names[i] = string(specs[i].Technique)
		if tech != nil {
			names[i] = tech.Name()
		}
	}
	appParams, err := workload.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	src := workload.SharedTraces().Source(appParams.Params, insts)
	m, err := sim.NewMachine(sim.DefaultConfig(), src)
	if err != nil {
		t.Fatal(err)
	}
	outs, stats := batchkernel.Run(m, app, lanes)

	var laneCycles uint64
	var forks []string
	for i, out := range outs {
		if out.Status != batchkernel.Finished {
			t.Fatalf("%s/%s lane %s: %v (%v)", label, app, names[i], out.Status, out.Err)
		}
		laneCycles += out.Result.Cycles
		if out.Forks > 0 {
			forks = append(forks, fmt.Sprintf("%s@%d(x%d)", names[i], out.FirstForkAt, out.Forks))
		}
	}
	sharing := float64(laneCycles) / float64(stats.Steps)
	t.Logf("%s %-8s lanes=%d laneCycles=%d steps=%d sharing=%.2f forkedLanes=%d cohorts=%d saved=%d memoHit=%.3f firstForks=[%s]",
		label, app, len(outs), laneCycles, stats.Steps, sharing,
		stats.LanesForked, stats.CohortsForked, stats.CyclesSaved,
		stats.PowerMemo.HitRate(), strings.Join(forks, " "))
}

func TestDivergenceAnatomy(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement harness; skipped in -short")
	}
	insts := uint64(20_000)
	if s := os.Getenv("ANATOMY_INSTS"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("bad ANATOMY_INSTS: %v", err)
		}
		insts = v
	}

	// Group (a): the seven registered technique kinds, as in the
	// differential harness.
	kinds := Kinds()
	kindSpecsFor := func() []Spec {
		specs := make([]Spec, len(kinds))
		for i, k := range kinds {
			specs[i] = Spec{Technique: k}
		}
		return specs
	}
	// Group (b): the Table 3 lanes — base plus six tuning variants.
	inis := []struct{ initial, delay int }{{75, 0}, {100, 0}, {125, 0}, {150, 0}, {200, 0}, {100, 5}}
	table3SpecsFor := func() []Spec {
		specs := []Spec{{}}
		for _, sw := range inis {
			cfg := anatomyTuningConfig(sw.initial, sw.delay)
			specs = append(specs, Spec{Technique: TechniqueTuning, Tuning: &cfg})
		}
		return specs
	}

	for _, app := range workload.Apps() {
		name := app.Params.Name
		anatomyGroup(t, "kinds ", name, insts, kindSpecsFor())
		anatomyGroup(t, "table3", name, insts, table3SpecsFor())
	}
}
