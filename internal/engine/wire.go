package engine

import (
	"repro/internal/baselines/convctl"
	"repro/internal/baselines/voltctl"
	"repro/internal/baselines/wavelet"
	"repro/internal/circuit"
	"repro/internal/sim"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// SpecWire is the JSON wire form of a Spec: every field except the
// Trace callback, which is process-local and cannot cross a process
// boundary. Zero-valued fields resolve to the same defaults every other
// driver uses (Table 1 system, DefaultInstructions, base technique), so
// a wire spec round-trips to the same content address as the Spec it
// was rendered from (pinned by TestSpecWireRoundTripPreservesKey).
//
// It is the one serialized spec schema in the repo: the HTTP server's
// request body (internal/server.SpecRequest aliases it) and the
// sharded-sweep grid manifest (internal/shard) both speak it, so a
// manifest entry could be replayed against the service verbatim.
type SpecWire struct {
	App            string           `json:"app,omitempty"`
	Instructions   uint64           `json:"instructions,omitempty"`
	Technique      string           `json:"technique,omitempty"`
	Workload       *workload.Params `json:"workload,omitempty"`
	System         *sim.Config            `json:"system,omitempty"`
	PDN            *circuit.NetworkConfig `json:"pdn,omitempty"`
	Tuning         *tuning.Config         `json:"tuning,omitempty"`
	VoltageControl *voltctl.Config        `json:"voltage_control,omitempty"`
	Damping        *DampingConfig         `json:"damping,omitempty"`
	Convolution    *convctl.Config        `json:"convolution,omitempty"`
	Wavelet        *wavelet.Config        `json:"wavelet,omitempty"`
	DualBand       *DualBandConfig        `json:"dual_band,omitempty"`
	DomainTuning   *DomainTuningConfig    `json:"domain_tuning,omitempty"`
}

// Spec converts the wire form into an engine spec.
func (w SpecWire) Spec() Spec {
	return Spec{
		App:            w.App,
		Instructions:   w.Instructions,
		Technique:      TechniqueKind(w.Technique),
		Workload:       w.Workload,
		System:         w.System,
		PDN:            w.PDN,
		Tuning:         w.Tuning,
		VoltageControl: w.VoltageControl,
		Damping:        w.Damping,
		Convolution:    w.Convolution,
		Wavelet:        w.Wavelet,
		DualBand:       w.DualBand,
		DomainTuning:   w.DomainTuning,
	}
}

// WireSpec renders a spec in its wire form. The Trace callback is
// dropped: a replay of the wire spec computes the same Result (the
// callback is not part of the content address either, see Spec.Key).
func WireSpec(s Spec) SpecWire {
	return SpecWire{
		App:            s.App,
		Instructions:   s.Instructions,
		Technique:      string(s.Technique),
		Workload:       s.Workload,
		System:         s.System,
		PDN:            s.PDN,
		Tuning:         s.Tuning,
		VoltageControl: s.VoltageControl,
		Damping:        s.Damping,
		Convolution:    s.Convolution,
		Wavelet:        s.Wavelet,
		DualBand:       s.DualBand,
		DomainTuning:   s.DomainTuning,
	}
}
