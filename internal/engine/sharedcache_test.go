package engine

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestDiskCacheEnumeration: DiskCacheKeys lists exactly the live
// current-schema entries (no tmp files, no foreign files, no
// subdirectories), and DiskCacheHas agrees with it per key.
func TestDiskCacheEnumeration(t *testing.T) {
	dir := t.TempDir()
	if keys, err := DiskCacheKeys(dir); err != nil || len(keys) != 0 {
		t.Fatalf("empty dir enumerates %v, %v; want nothing", keys, err)
	}
	// A directory that doesn't exist yet is "nothing finished", not an
	// error — workers poll completion before the coordinator's first
	// write creates the directory.
	if keys, err := DiskCacheKeys(filepath.Join(dir, "no-such-dir")); err != nil || len(keys) != 0 {
		t.Errorf("missing directory enumerates %v, %v; want empty, nil", keys, err)
	}

	specs := diskSpecs()
	e := New(Options{DiskCacheDir: dir})
	if _, err := e.RunAll(context.Background(), specs, nil); err != nil {
		t.Fatal(err)
	}
	// Noise the enumeration must ignore: in-flight tmp writes, foreign
	// files, wrong-length names, and the shard/ coordination subtree.
	for _, name := range []string{"tmp-12345", "NOTES.txt", "abcd.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.MkdirAll(filepath.Join(dir, "shard", "leases"), 0o755); err != nil {
		t.Fatal(err)
	}

	keys, err := DiskCacheKeys(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(specs) {
		t.Fatalf("enumerated %d keys, want %d: %v", len(keys), len(specs), keys)
	}
	listed := make(map[Key]bool)
	for _, k := range keys {
		listed[k] = true
	}
	for i, s := range specs {
		k, err := s.Key()
		if err != nil {
			t.Fatal(err)
		}
		if !listed[k] {
			t.Errorf("spec %d's key %s missing from enumeration", i, k)
		}
		if !DiskCacheHas(dir, k) {
			t.Errorf("DiskCacheHas(%s) = false for a stored entry", k)
		}
	}
	absent := Spec{App: "mcf", Instructions: 20_000}
	if k, err := absent.Key(); err != nil || DiskCacheHas(dir, k) {
		t.Errorf("DiskCacheHas reports an entry never stored (err %v)", err)
	}
}

// TestDiskCacheGCIgnoresShardDir: the construction-time sweep never
// descends into (or removes) subdirectories — the shard/ coordination
// subtree, with its manifest and live lease files, must survive a
// worker starting with -cache-gc.
func TestDiskCacheGCIgnoresShardDir(t *testing.T) {
	dir := t.TempDir()
	shardDir := filepath.Join(dir, "shard", "deadbeef00000000", "leases")
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "shard", "current.json")
	lease := filepath.Join(shardDir, "k.lease")
	for _, p := range []string{manifest, lease} {
		if err := os.WriteFile(p, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	e := New(Options{DiskCacheDir: dir, DiskCacheGC: true})
	if st := e.CacheStats(); st.DiskGCRemoved != 0 {
		t.Errorf("gc removed %d files from a dir holding only shard state", st.DiskGCRemoved)
	}
	for _, p := range []string{manifest, lease} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("gc disturbed shard state %s: %v", p, err)
		}
	}
}

// TestSharedDiskCacheConcurrentEngines: two engines race on one cache
// directory — the multi-process sharding topology, in-process so the
// race detector watches it — over a mix of identical and disjoint
// keys. Every request must be accounted for as exactly one hit, disk
// hit, or miss; results must agree across engines; and every entry
// left on disk must decode (a third engine replays everything with
// zero misses).
func TestSharedDiskCacheConcurrentEngines(t *testing.T) {
	dir := t.TempDir()
	shared := diskSpecs() // both engines demand these: disk-tier race
	only1 := []Spec{{App: "art", Instructions: 20_000}}
	only2 := []Spec{{App: "mcf", Instructions: 20_000}, {App: "gcc", Instructions: 20_000}}

	e1 := New(Options{DiskCacheDir: dir, Parallelism: 2})
	e2 := New(Options{DiskCacheDir: dir, Parallelism: 2})
	load1 := append(append([]Spec{}, shared...), only1...)
	load2 := append(append([]Spec{}, shared...), only2...)

	var wg sync.WaitGroup
	var r1, r2 []any
	var err1, err2 error
	run := func(e *Engine, specs []Spec, out *[]any, errp *error) {
		defer wg.Done()
		// Each spec requested twice, so the memory tier is exercised too.
		res, err := e.RunAll(context.Background(), append(append([]Spec{}, specs...), specs...), nil)
		if err != nil {
			*errp = err
			return
		}
		for _, r := range res {
			*out = append(*out, r)
		}
	}
	wg.Add(2)
	go run(e1, load1, &r1, &err1)
	go run(e2, load2, &r2, &err2)
	wg.Wait()
	if err1 != nil || err2 != nil {
		t.Fatalf("concurrent shared-cache runs failed: %v / %v", err1, err2)
	}

	// Exact accounting: every request resolved exactly one way.
	for i, e := range []*Engine{e1, e2} {
		st := e.CacheStats()
		requests := uint64(2 * (len(shared) + len(only1)))
		if i == 1 {
			requests = uint64(2 * (len(shared) + len(only2)))
		}
		if st.Hits+st.DiskHits+st.Misses != requests {
			t.Errorf("engine %d: hits %d + disk hits %d + misses %d != %d requests (stats %+v)",
				i+1, st.Hits, st.DiskHits, st.Misses, requests, st)
		}
		// The duplicate pass is all memory hits, so at least half the
		// requests hit the memory tier.
		if st.Hits < requests/2 {
			t.Errorf("engine %d: %d memory hits for %d requests, want >= %d", i+1, st.Hits, requests, requests/2)
		}
	}

	// Shared keys must have produced identical results on both engines.
	for i := range shared {
		if r1[i] != r2[i] {
			t.Errorf("shared spec %d diverged across engines:\n%+v\n%+v", i, r1[i], r2[i])
		}
	}

	// No corrupt entries: a fresh engine replays the union from disk
	// without a single simulation.
	union := append(append(append([]Spec{}, shared...), only1...), only2...)
	keys, err := DiskCacheKeys(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(union) {
		t.Errorf("disk holds %d entries, want %d", len(keys), len(union))
	}
	verify := New(Options{DiskCacheDir: dir})
	if _, err := verify.RunAll(context.Background(), union, nil); err != nil {
		t.Fatal(err)
	}
	if st := verify.CacheStats(); st.Misses != 0 || st.DiskHits != uint64(len(union)) {
		t.Errorf("replay stats %+v, want %d disk hits and 0 misses (corrupt or missing entries)", st, len(union))
	}
}

// TestDiskCacheGCRacesStore: engines constructed with the gc sweep
// while another engine is actively storing entries must never eat an
// in-flight write — the tmp age guard keeps fresh temp files safe, so
// every result lands and decodes.
func TestDiskCacheGCRacesStore(t *testing.T) {
	dir := t.TempDir()
	specs := diskSpecs()

	stop := make(chan struct{})
	var gcWG sync.WaitGroup
	gcWG.Add(1)
	go func() {
		defer gcWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				New(Options{DiskCacheDir: dir, DiskCacheGC: true})
			}
		}
	}()

	writer := New(Options{DiskCacheDir: dir, Parallelism: 2})
	_, err := writer.RunAll(context.Background(), specs, nil)
	close(stop)
	gcWG.Wait()
	if err != nil {
		t.Fatal(err)
	}

	verify := New(Options{DiskCacheDir: dir})
	if _, err := verify.RunAll(context.Background(), specs, nil); err != nil {
		t.Fatal(err)
	}
	if st := verify.CacheStats(); st.Misses != 0 {
		t.Errorf("gc racing the store lost %d entries (stats %+v)", st.Misses, st)
	}
}
