package engine

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"reflect"
)

// Key is the content address of a Spec: the SHA-256 of its canonical
// encoding. Two Specs share a Key exactly when their canonical encodings
// are equal, i.e. when they describe the same simulation after default
// resolution — pointer identity, field defaulting, and unused technique
// configurations never influence it.
type Key [sha256.Size]byte

// String renders the key as short hex for logs and error messages.
func (k Key) String() string { return fmt.Sprintf("%x", k[:8]) }

// Hex renders the full content address — the form disk-cache file
// names, sharded-sweep lease files, and the server's NDJSON lines use.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// ParseKey decodes a full-hex content address as rendered by Key.Hex.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return Key{}, fmt.Errorf("engine: bad key hex: %w", err)
	}
	if len(b) != len(k) {
		return Key{}, fmt.Errorf("engine: key is %d hex bytes, want %d", len(b), len(k))
	}
	copy(k[:], b)
	return k, nil
}

// Key returns the spec's content address. The Trace callback is not part
// of the identity: a traced run computes the same Result as an untraced
// one.
func (s Spec) Key() (Key, error) {
	enc, err := s.Canonical()
	if err != nil {
		return Key{}, err
	}
	return sha256.Sum256(enc), nil
}

// Canonical returns the spec's canonical encoding: the normalized spec's
// fields serialized in declaration order with fixed-width scalars,
// length-prefixed strings, and presence bytes for optional sections. It
// is the ground truth the fuzz tests compare Keys against.
func (s Spec) Canonical() ([]byte, error) {
	n, _, err := s.normalized()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	encodeString(&buf, n.App)
	encodeUint(&buf, n.Instructions)
	encodeString(&buf, string(n.Technique))
	sections := []any{n.Workload, n.System}
	// Every registered technique's section participates (with a
	// presence byte) in registration order; normalization guarantees
	// only the selected technique's section is non-nil.
	for _, d := range registryOrder {
		if d.Section != nil {
			sections = append(sections, d.Section(&n))
		}
	}
	for _, section := range sections {
		if err := encodeValue(&buf, reflect.ValueOf(section)); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

func encodeString(buf *bytes.Buffer, s string) {
	var n [binary.MaxVarintLen64]byte
	buf.Write(n[:binary.PutUvarint(n[:], uint64(len(s)))])
	buf.WriteString(s)
}

func encodeUint(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

// encodeValue serializes a configuration value field-by-field in struct
// declaration order. It is reflection-driven so that a field added to
// any config struct is picked up automatically instead of silently
// aliasing distinct specs to one cache entry.
func encodeValue(buf *bytes.Buffer, v reflect.Value) error {
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			buf.WriteByte(0)
			return nil
		}
		buf.WriteByte(1)
		return encodeValue(buf, v.Elem())
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if err := encodeValue(buf, v.Field(i)); err != nil {
				return fmt.Errorf("%s.%s: %w", v.Type(), v.Type().Field(i).Name, err)
			}
		}
		return nil
	case reflect.String:
		encodeString(buf, v.String())
		return nil
	case reflect.Bool:
		if v.Bool() {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		encodeUint(buf, uint64(v.Int()))
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		encodeUint(buf, v.Uint())
		return nil
	case reflect.Float32, reflect.Float64:
		encodeUint(buf, math.Float64bits(v.Float()))
		return nil
	case reflect.Slice:
		// Presence byte (nil vs empty differ for defaulting) plus a
		// length prefix so adjacent slices cannot alias.
		if v.IsNil() {
			buf.WriteByte(0)
			return nil
		}
		buf.WriteByte(1)
		var l [binary.MaxVarintLen64]byte
		buf.Write(l[:binary.PutUvarint(l[:], uint64(v.Len()))])
		for i := 0; i < v.Len(); i++ {
			if err := encodeValue(buf, v.Index(i)); err != nil {
				return fmt.Errorf("%s[%d]: %w", v.Type(), i, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("engine: cannot canonically encode kind %s", v.Kind())
	}
}
