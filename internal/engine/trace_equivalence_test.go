package engine

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestTraceSourceActivityEquivalence: for every Table 2 application, a
// core fed by the materialized trace produces the exact cycle-by-cycle
// Activity stream of a core fed by the live Generator.
func TestTraceSourceActivityEquivalence(t *testing.T) {
	const insts = 20_000
	for _, app := range workload.Apps() {
		app := app
		t.Run(app.Params.Name, func(t *testing.T) {
			live := cpu.New(cpu.DefaultConfig(), workload.NewGenerator(app.Params, insts))
			replay := cpu.New(cpu.DefaultConfig(), workload.Materialize(app.Params, insts).Source())
			var la, ra cpu.Activity
			for cycle := 0; ; cycle++ {
				ld, rd := live.Done(), replay.Done()
				if ld != rd {
					t.Fatalf("cycle %d: drain mismatch (live %v, replay %v)", cycle, ld, rd)
				}
				if ld {
					break
				}
				live.StepInto(cpu.Unlimited, &la)
				replay.StepInto(cpu.Unlimited, &ra)
				if la != ra {
					t.Fatalf("cycle %d: activity diverged:\nlive   %+v\nreplay %+v", cycle, la, ra)
				}
			}
			if live.Committed() != replay.Committed() || live.Cycle() != replay.Cycle() {
				t.Errorf("end state diverged: %d/%d committed, %d/%d cycles",
					live.Committed(), replay.Committed(), live.Cycle(), replay.Cycle())
			}
		})
	}
}

// execWithGenerator mirrors Execute's construction path but feeds the
// simulation from a live Generator instead of the trace store — the
// pre-trace reference implementation.
func execWithGenerator(t *testing.T, spec Spec) (sim.Result, []sim.TracePoint) {
	t.Helper()
	var points []sim.TracePoint
	prev := spec.Trace
	spec.Trace = func(tp sim.TracePoint) {
		points = append(points, tp)
		if prev != nil {
			prev(tp)
		}
	}
	n, _, err := spec.normalized()
	if err != nil {
		t.Fatal(err)
	}
	app, err := workload.ByName(n.App)
	if err != nil {
		t.Fatal(err)
	}
	var tech sim.Technique
	var countFn, levelFn func() int
	if n.Technique == TechniqueTuning {
		rt := sim.NewResonanceTuning(*n.Tuning)
		tech = rt
		countFn, levelFn = rt.EventCount, rt.Level
	}
	s, err := sim.New(*n.System, workload.NewGenerator(app.Params, n.Instructions), tech)
	if err != nil {
		t.Fatal(err)
	}
	s.SetTrace(spec.Trace, countFn, levelFn)
	name := string(TechniqueNone)
	if tech != nil {
		name = tech.Name()
	}
	return s.Run(n.App, name), points
}

// TestExecuteTraceEquivalence: Execute (which replays through the trace
// store) returns the bit-identical Result — and the bit-identical
// per-cycle waveform — of a simulation fed by the live Generator, for
// every Table 2 application under both the base machine and resonance
// tuning.
func TestExecuteTraceEquivalence(t *testing.T) {
	const insts = 10_000
	for _, kind := range []TechniqueKind{TechniqueNone, TechniqueTuning} {
		for _, app := range workload.Apps() {
			app, kind := app, kind
			t.Run(string(kind)+"/"+app.Params.Name, func(t *testing.T) {
				spec := Spec{App: app.Params.Name, Instructions: insts, Technique: kind}
				wantRes, wantPoints := execWithGenerator(t, spec)

				var gotPoints []sim.TracePoint
				spec.Trace = func(tp sim.TracePoint) { gotPoints = append(gotPoints, tp) }
				gotRes, err := Execute(spec)
				if err != nil {
					t.Fatal(err)
				}
				if gotRes != wantRes {
					t.Fatalf("trace-store result diverged:\nlive   %+v\nreplay %+v", wantRes, gotRes)
				}
				if len(gotPoints) != len(wantPoints) {
					t.Fatalf("waveform length diverged: %d vs %d cycles", len(gotPoints), len(wantPoints))
				}
				for i := range gotPoints {
					if gotPoints[i] != wantPoints[i] {
						t.Fatalf("cycle %d: waveform diverged:\nlive   %+v\nreplay %+v",
							i, wantPoints[i], gotPoints[i])
					}
				}
			})
		}
	}
}
