package engine

import (
	"encoding/json"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// wireFixtures covers every registered technique kind (default and
// custom sections), synthetic workloads, and a non-default system.
func wireFixtures(t *testing.T) []Spec {
	t.Helper()
	tc := DefaultTuningConfig(150)
	tc.InitialResponseThreshold = 1
	w := workload.Params{
		Name: "synthetic", Seed: 7,
		Mix:     workload.Mix{IntALU: 1},
		DepProb: 0.3, DepMean: 4, L1MissRate: 0.05,
	}
	sys := sim.DefaultConfig()
	sys.SensorDelayCycles += 2
	sys.Power.PeakWatts += 1.5
	return []Spec{
		{},
		{App: "lucas", Instructions: 50_000},
		{App: "swim", Technique: TechniqueTuning, Tuning: &tc},
		{App: "bzip", Technique: TechniqueVoltageControl},
		{App: "art", Technique: TechniqueDamping},
		{App: "mcf", Technique: TechniqueConvolution},
		{App: "gcc", Technique: TechniqueWavelet},
		{App: "gzip", Technique: TechniqueDualBand},
		{Workload: &w, Instructions: 10_000},
		{App: "lucas", System: &sys},
	}
}

// TestSpecWireRoundTripPreservesKey: a spec rendered to the wire,
// serialized as JSON (the manifest/server encoding), and decoded back
// describes the same simulation — same canonical encoding, same
// content address — which is what lets a sharded worker trust a
// manifest written by another process.
func TestSpecWireRoundTripPreservesKey(t *testing.T) {
	for i, s := range wireFixtures(t) {
		want, err := s.Key()
		if err != nil {
			t.Fatalf("fixture %d: key: %v", i, err)
		}
		blob, err := json.Marshal(WireSpec(s))
		if err != nil {
			t.Fatalf("fixture %d: marshal: %v", i, err)
		}
		var w SpecWire
		if err := json.Unmarshal(blob, &w); err != nil {
			t.Fatalf("fixture %d: unmarshal: %v", i, err)
		}
		got, err := w.Spec().Key()
		if err != nil {
			t.Fatalf("fixture %d: round-trip key: %v", i, err)
		}
		if got != want {
			t.Errorf("fixture %d: wire round-trip changed the content address: %s → %s\nwire: %s", i, want, got, blob)
		}
	}
}

// TestSpecWireDropsTrace: the wire form of a traced spec is the
// untraced spec — same key (Trace is not part of the identity), and
// the JSON never errors on the func field.
func TestSpecWireDropsTrace(t *testing.T) {
	traced := Spec{App: "lucas", Instructions: 20_000, Trace: func(sim.TracePoint) {}}
	blob, err := json.Marshal(WireSpec(traced))
	if err != nil {
		t.Fatalf("marshal traced spec's wire form: %v", err)
	}
	var w SpecWire
	if err := json.Unmarshal(blob, &w); err != nil {
		t.Fatal(err)
	}
	if w.Spec().Trace != nil {
		t.Error("wire round-trip resurrected a Trace callback")
	}
	want, _ := Spec{App: "lucas", Instructions: 20_000}.Key()
	got, err := w.Spec().Key()
	if err != nil || got != want {
		t.Errorf("traced spec's wire key = %s, %v; want the untraced key %s", got, err, want)
	}
}

// TestKeyHexRoundTrip: ParseKey inverts Key.Hex, and rejects wrong
// lengths and junk.
func TestKeyHexRoundTrip(t *testing.T) {
	k, err := Spec{App: "lucas"}.Key()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseKey(k.Hex())
	if err != nil || got != k {
		t.Errorf("ParseKey(Hex) = %v, %v; want %v", got, err, k)
	}
	for _, junk := range []string{"", "abc", "zz", k.Hex() + "00", k.Hex()[:10]} {
		if _, err := ParseKey(junk); err == nil {
			t.Errorf("ParseKey(%q) accepted junk", junk)
		}
	}
}
