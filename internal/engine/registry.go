// Technique registry: the single place a control scheme is wired into
// the engine. A technique registers one Descriptor — its kind string,
// config defaulting, validation, canonical key encoding, and constructor
// (plus trace hooks) — and every Spec operation (normalization, Key,
// Execute) walks the registry instead of switching on the kind. Adding a
// technique is one Register call and one Spec section field, not three
// parallel switch edits.
package engine

import (
	"fmt"
	"math"

	"repro/internal/baselines/convctl"
	"repro/internal/baselines/wavelet"
	"repro/internal/circuit"
	"repro/internal/sim"
	"repro/internal/tuning"
)

// Env carries the electrical-envelope quantities technique descriptors
// may need, derived from the resolved system configuration's power model.
type Env struct {
	// MidAmps is the midpoint current level (power.Model.MidAmps), the
	// default target of resonance tuning's second-level response.
	MidAmps float64
	// PhantomFireAmps is the extra current of phantom-firing the caches
	// and functional units (power.Model.PhantomFireAmps), the
	// high-voltage response of [10] and [8]. It is derived from the
	// instantiated power model and therefore only available during
	// Build; it is zero during Normalize.
	PhantomFireAmps float64
}

// TraceHooks are the optional per-cycle introspection functions a
// technique exposes to waveform traces (sim.TracePoint's EventCount and
// ResponseLevel columns). Either or both may be nil.
type TraceHooks struct {
	EventCount func() int
	Level      func() int
}

// Descriptor is one registered technique kind. All functions except
// Validate operate on normalized specs; a descriptor with a config
// section must provide Clear, Normalize, and Section so the section
// participates in default resolution and the canonical encoding.
type Descriptor struct {
	// Kind is the technique's spec identifier (Spec.Technique).
	Kind TechniqueKind
	// Clear removes the technique's config section from a spec. During
	// normalization every registered descriptor's Clear runs, so only
	// the selected technique's section survives into the cache key.
	Clear func(n *Spec)
	// Normalize resolves the technique's defaults: it reads the
	// caller's section from orig (nil means all defaults) and writes
	// the fully resolved section into n. env carries MidAmps only.
	Normalize func(orig, n *Spec, env Env)
	// Validate checks the resolved section; nil means always valid.
	// Execute reports its error instead of letting a constructor panic.
	Validate func(n *Spec) error
	// Section returns the resolved config section (a possibly-nil
	// pointer) for the canonical encoding; nil means the technique has
	// no section (the base machine).
	Section func(n *Spec) any
	// Build constructs the simulation adapter and its trace hooks from
	// the resolved section; nil means the uncontrolled base machine.
	Build func(n *Spec, env Env) (sim.Technique, TraceHooks)
}

var (
	registry      = map[TechniqueKind]*Descriptor{}
	registryOrder []*Descriptor
)

// Register adds a technique descriptor. It panics on duplicate or
// inconsistent registrations (registration happens at init time; a bad
// descriptor is a programming error, not a runtime condition). The
// registration order is part of the canonical encoding, so techniques
// must be registered deterministically (from a single init).
func Register(d Descriptor) {
	if d.Kind == "" {
		panic("engine.Register: empty technique kind")
	}
	if _, dup := registry[d.Kind]; dup {
		panic(fmt.Sprintf("engine.Register: duplicate technique %q", d.Kind))
	}
	if d.Section != nil && (d.Clear == nil || d.Normalize == nil) {
		panic(fmt.Sprintf("engine.Register: technique %q has a config section but no Clear/Normalize", d.Kind))
	}
	dd := d
	registry[d.Kind] = &dd
	registryOrder = append(registryOrder, &dd)
}

// Kinds returns every registered technique kind in registration order
// (base first, then the paper's technique, then the related-work
// baselines).
func Kinds() []TechniqueKind {
	out := make([]TechniqueKind, len(registryOrder))
	for i, d := range registryOrder {
		out[i] = d.Kind
	}
	return out
}

// lookupTechnique resolves a kind to its descriptor.
func lookupTechnique(kind TechniqueKind) (*Descriptor, bool) {
	d, ok := registry[kind]
	return d, ok
}

// clearSections runs every descriptor's Clear so that only the selected
// technique's configuration can reach the canonical encoding.
func clearSections(n *Spec) {
	for _, d := range registryOrder {
		if d.Clear != nil {
			d.Clear(n)
		}
	}
}

func init() {
	// The uncontrolled base processor: no section, no constructor.
	Register(Descriptor{Kind: TechniqueNone})

	// Resonance tuning, the paper's contribution (Section 3).
	Register(Descriptor{
		Kind:  TechniqueTuning,
		Clear: func(n *Spec) { n.Tuning = nil },
		Normalize: func(orig, n *Spec, env Env) {
			tc := DefaultTuningConfig(100)
			if orig.Tuning != nil {
				tc = *orig.Tuning
			}
			if tc.PhantomTargetAmps == 0 {
				// The paper's second-level response holds the mid
				// current level of the configured envelope.
				tc.PhantomTargetAmps = env.MidAmps
			}
			n.Tuning = &tc
		},
		Validate: func(n *Spec) error { return n.Tuning.Validate() },
		Section:  func(n *Spec) any { return n.Tuning },
		Build: func(n *Spec, env Env) (sim.Technique, TraceHooks) {
			rt := sim.NewResonanceTuning(*n.Tuning)
			return rt, TraceHooks{EventCount: rt.EventCount, Level: rt.Level}
		},
	})

	// The voltage-threshold scheme of [10].
	Register(Descriptor{
		Kind:  TechniqueVoltageControl,
		Clear: func(n *Spec) { n.VoltageControl = nil },
		Normalize: func(orig, n *Spec, env Env) {
			vc := defaultVoltageControl()
			if orig.VoltageControl != nil {
				vc = *orig.VoltageControl
			}
			n.VoltageControl = &vc
		},
		Validate: func(n *Spec) error { return n.VoltageControl.Validate() },
		Section:  func(n *Spec) any { return n.VoltageControl },
		Build: func(n *Spec, env Env) (sim.Technique, TraceHooks) {
			v := sim.NewVoltageControl(*n.VoltageControl, env.PhantomFireAmps)
			return v, TraceHooks{Level: v.Level}
		},
	})

	// Pipeline damping [14].
	Register(Descriptor{
		Kind:  TechniqueDamping,
		Clear: func(n *Spec) { n.Damping = nil },
		Normalize: func(orig, n *Spec, env Env) {
			dc := defaultDamping()
			if orig.Damping != nil {
				dc = *orig.Damping
			}
			n.Damping = &dc
		},
		Validate: func(n *Spec) error { return n.Damping.Validate() },
		Section:  func(n *Spec) any { return n.Damping },
		Build: func(n *Spec, env Env) (sim.Technique, TraceHooks) {
			return sim.NewDamping(*n.Damping), TraceHooks{}
		},
	})

	// Convolution-based prediction [8]: the supply defaults to the
	// spec's own simulated supply, so the impulse response driving the
	// prediction matches the network being simulated.
	Register(Descriptor{
		Kind:  TechniqueConvolution,
		Clear: func(n *Spec) { n.Convolution = nil },
		Normalize: func(orig, n *Spec, env Env) {
			var cc convctl.Config
			if orig.Convolution != nil {
				cc = *orig.Convolution
			}
			if cc.Supply == (circuit.Params{}) {
				cc.Supply = convolutionSupply(n.System)
			}
			// Resolve threshold/horizon/taps so explicit defaults and
			// implied ones share one cache key; an unusable config is
			// kept raw and surfaces from Validate at Execute time.
			if resolved, err := cc.WithDefaults(); err == nil {
				cc = resolved
			}
			n.Convolution = &cc
		},
		Validate: func(n *Spec) error { return n.Convolution.Validate() },
		Section:  func(n *Spec) any { return n.Convolution },
		Build: func(n *Spec, env Env) (sim.Technique, TraceHooks) {
			return sim.NewConvolutionControl(*n.Convolution, env.PhantomFireAmps), TraceHooks{}
		},
	})

	// Haar-wavelet detector in the spirit of [11].
	Register(Descriptor{
		Kind:  TechniqueWavelet,
		Clear: func(n *Spec) { n.Wavelet = nil },
		Normalize: func(orig, n *Spec, env Env) {
			var wc wavelet.Config
			if orig.Wavelet != nil {
				wc = *orig.Wavelet
			}
			if resolved, err := wc.WithDefaults(); err == nil {
				wc = resolved
			}
			n.Wavelet = &wc
		},
		Validate: func(n *Spec) error { return n.Wavelet.Validate() },
		Section:  func(n *Spec) any { return n.Wavelet },
		Build: func(n *Spec, env Env) (sim.Technique, TraceHooks) {
			return sim.NewWaveletControl(*n.Wavelet), TraceHooks{}
		},
	})

	// Dual-band resonance tuning (Section 2.2): medium-band controller
	// at core clock plus a decimated low-band controller.
	Register(Descriptor{
		Kind:  TechniqueDualBand,
		Clear: func(n *Spec) { n.DualBand = nil },
		Normalize: func(orig, n *Spec, env Env) {
			var db DualBandConfig
			if orig.DualBand != nil {
				db = *orig.DualBand
			} else {
				db = DefaultDualBandConfig(dualBandSupply(n.System))
			}
			if db.DecimationFactor == 0 {
				db.DecimationFactor = DefaultDualBandDecimation
			}
			if db.Medium == (tuning.Config{}) {
				db.Medium = DefaultTuningConfig(100)
			}
			if db.Low == (tuning.Config{}) {
				db.Low = DefaultDualBandConfig(dualBandSupply(n.System)).Low
			}
			if db.Medium.PhantomTargetAmps == 0 {
				db.Medium.PhantomTargetAmps = env.MidAmps
			}
			if db.Low.PhantomTargetAmps == 0 {
				db.Low.PhantomTargetAmps = env.MidAmps
			}
			n.DualBand = &db
		},
		Validate: func(n *Spec) error {
			if n.DualBand.DecimationFactor < 1 {
				return fmt.Errorf("engine: dual-band decimation factor must be ≥ 1 (got %d)", n.DualBand.DecimationFactor)
			}
			if err := n.DualBand.Medium.Validate(); err != nil {
				return fmt.Errorf("engine: dual-band medium config: %w", err)
			}
			if err := n.DualBand.Low.Validate(); err != nil {
				return fmt.Errorf("engine: dual-band low config: %w", err)
			}
			return nil
		},
		Section: func(n *Spec) any { return n.DualBand },
		Build: func(n *Spec, env Env) (sim.Technique, TraceHooks) {
			return sim.NewDualBandTuning(n.DualBand.Medium, n.DualBand.Low, n.DualBand.DecimationFactor), TraceHooks{}
		},
	})

	// Per-domain resonance tuning over a multi-domain PDN: one
	// medium-band controller per supply domain, each watching its own
	// rail sensor, with the strongest response applied to the pipeline.
	Register(Descriptor{
		Kind:  TechniqueDomainTuning,
		Clear: func(n *Spec) { n.DomainTuning = nil },
		Normalize: func(orig, n *Spec, env Env) {
			var dt DomainTuningConfig
			if orig.DomainTuning != nil {
				dt = *orig.DomainTuning
				dt.Domains = append([]tuning.Config(nil), dt.Domains...)
			} else {
				dt = DefaultDomainTuningConfig(n.System.PDN, 100)
			}
			for d := range dt.Domains {
				if dt.Domains[d].PhantomTargetAmps == 0 {
					// The second-level response holds the aggregate mid
					// current level (phantom targets are expressed in
					// aggregate core amps on every machine).
					dt.Domains[d].PhantomTargetAmps = env.MidAmps
				}
			}
			n.DomainTuning = &dt
		},
		Validate: func(n *Spec) error {
			nd := 1
			if n.System.PDN != nil {
				nd = n.System.PDN.DomainCount()
			}
			if len(n.DomainTuning.Domains) != nd {
				return fmt.Errorf("engine: domain-tuning has %d controller configs for a %d-domain network", len(n.DomainTuning.Domains), nd)
			}
			for d := range n.DomainTuning.Domains {
				if err := n.DomainTuning.Domains[d].Validate(); err != nil {
					return fmt.Errorf("engine: domain-tuning domain %d: %w", d, err)
				}
			}
			return nil
		},
		Section: func(n *Spec) any { return n.DomainTuning },
		Build: func(n *Spec, env Env) (sim.Technique, TraceHooks) {
			dt := sim.NewPerDomainTuning(n.DomainTuning.Domains)
			return dt, TraceHooks{EventCount: dt.EventCount, Level: dt.Level}
		},
	})
}

// convolutionSupply picks the lumped supply the convolution predictor's
// impulse response defaults to: the spec's own Supply when present, the
// PDN's lumped parameters when the spec selects the lumped network kind
// there instead, Table 1 otherwise (a PDN spec zeroes the legacy Supply
// field, which must not leave the predictor with an unusable zero
// network — the fallback keeps default resolution, and therefore Key,
// total).
func convolutionSupply(sys *sim.Config) circuit.Params {
	if sys != nil {
		if sys.Supply != (circuit.Params{}) {
			return sys.Supply
		}
		if sys.PDN != nil && sys.PDN.Kind == circuit.NetworkLumped && sys.PDN.Lumped != nil {
			return *sys.PDN.Lumped
		}
	}
	return circuit.Table1()
}

// DefaultDualBandDecimation is the low-band sensor's decimation factor
// when a DualBandConfig leaves it zero: one low-band sample per 25 core
// cycles, the ratio the lowfreq experiment evaluates.
const DefaultDualBandDecimation = 25

// dualBandSupply picks the two-stage network dual-band defaults derive
// from: the spec's own TwoStageSupply when it is present and usable, the
// Table 1 two-stage extension otherwise. (The fallback keeps default
// resolution — and therefore Key — total even over junk systems.)
func dualBandSupply(sys *sim.Config) circuit.TwoStageParams {
	if sys != nil && sys.TwoStageSupply != nil && sys.TwoStageSupply.Validate() == nil {
		return *sys.TwoStageSupply
	}
	if sys != nil && sys.PDN != nil && sys.PDN.Kind == circuit.NetworkTwoStage &&
		sys.PDN.TwoStage != nil && sys.PDN.TwoStage.Validate() == nil {
		return *sys.PDN.TwoStage
	}
	return circuit.Table1TwoStage()
}

// DefaultDualBandConfig derives the Section 2.2 dual-band configuration
// for a two-stage supply: the paper's medium-band configuration plus a
// low-band controller running on a 25:1 decimated current stream, its
// detector band centred on the low resonance (in decimated units) and
// its threshold scaled to the lower low-band peak impedance
// (margin / |Z_low|). This is exactly the configuration the lowfreq
// experiment evaluates.
func DefaultDualBandConfig(supply circuit.TwoStageParams) DualBandConfig {
	lowPeriod := supply.ClockHz / supply.LowStage().ResonantFrequency()
	lowPeak, _ := supply.Peaks()
	lowHalfDecimated := int(math.Round(lowPeriod / 2 / DefaultDualBandDecimation))
	lowThreshold := math.Floor(supply.NoiseMarginVolts() / lowPeak.Ohms)
	return DualBandConfig{
		Medium: DefaultTuningConfig(100),
		Low: tuning.Config{
			Detector: tuning.DetectorConfig{
				HalfPeriodLo:           lowHalfDecimated * 8 / 10,
				HalfPeriodHi:           lowHalfDecimated * 12 / 10,
				ThresholdAmps:          lowThreshold,
				MaxRepetitionTolerance: 4,
			},
			InitialResponseThreshold: 2,
			SecondResponseThreshold:  3,
			InitialResponseCycles:    100, // decimated units
			SecondResponseCycles:     35,
			ReducedIssueWidth:        4,
			ReducedCachePorts:        1,
			PhantomTargetAmps:        70,
		},
		DecimationFactor: DefaultDualBandDecimation,
	}
}
