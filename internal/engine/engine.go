package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
)

// Options configures an Engine.
type Options struct {
	// Parallelism bounds concurrently executing simulations across all
	// of the engine's batch calls; <= 0 means GOMAXPROCS.
	Parallelism int
	// DisableCache makes every run simulate afresh (used by benchmarks
	// and equivalence tests; results are identical either way).
	DisableCache bool
}

// Engine executes Specs through a bounded worker pool and memoizes their
// Results in a content-addressed cache keyed by Spec.Key. An Engine is
// safe for concurrent use; sharing one engine across drivers (e.g. every
// experiment of a cmd/experiments invocation) shares both the pool and
// the cache, so the 26-app base suite is simulated once per process, not
// once per table.
type Engine struct {
	parallelism int
	cacheOff    bool
	slots       chan struct{}

	mu      sync.Mutex
	entries map[Key]*entry
	hits    uint64
	misses  uint64
}

// entry is one cache slot, created before its simulation starts so that
// concurrent requests for the same spec coalesce onto a single run.
type entry struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// New builds an engine.
func New(o Options) *Engine {
	p := o.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		parallelism: p,
		cacheOff:    o.DisableCache,
		slots:       make(chan struct{}, p),
		entries:     make(map[Key]*entry),
	}
}

// Parallelism returns the engine's worker bound.
func (e *Engine) Parallelism() int { return e.parallelism }

// CacheStats reports the engine's cache traffic.
type CacheStats struct {
	// Hits counts runs served from (or coalesced onto) an existing
	// entry; Misses counts simulations actually executed.
	Hits, Misses uint64
	// Entries is the number of distinct specs cached.
	Entries int
}

// CacheStats returns a snapshot of the cache counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return CacheStats{Hits: e.hits, Misses: e.misses, Entries: len(e.entries)}
}

// Run executes one spec on the calling goroutine, serving it from the
// cache when an identical spec has already run. Specs carrying a Trace
// callback always simulate (the per-cycle side effects cannot be
// replayed), but their result still lands in the cache. Cancelling ctx
// abandons a wait on another goroutine's in-flight run; a simulation
// already executing runs to completion.
func (e *Engine) Run(ctx context.Context, spec Spec) (sim.Result, error) {
	if err := ctx.Err(); err != nil {
		return sim.Result{}, err
	}
	if e.cacheOff {
		return Execute(spec)
	}
	key, err := spec.Key()
	if err != nil {
		return sim.Result{}, err
	}
	traced := spec.Trace != nil

	e.mu.Lock()
	if en, ok := e.entries[key]; ok && !traced {
		e.hits++
		e.mu.Unlock()
		select {
		case <-en.done:
			return en.res, en.err
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		}
	}
	en := &entry{done: make(chan struct{})}
	e.entries[key] = en
	e.misses++
	e.mu.Unlock()

	en.res, en.err = Execute(spec)
	close(en.done)
	return en.res, en.err
}

// RunAll executes every spec through the worker pool and returns results
// in spec order, bit-identical to running each spec alone. progress,
// when non-nil, is invoked once per completed spec (calls are serialized
// but arrive in completion order, not spec order). The first error
// cancels the remaining queue and is returned annotated with the failing
// spec.
func (e *Engine) RunAll(ctx context.Context, specs []Spec, progress func(i int, res sim.Result)) ([]sim.Result, error) {
	labels := make([]string, len(specs))
	for i, s := range specs {
		labels[i] = fmt.Sprintf("spec %d (app=%s, technique=%s)", i, s.App, s.Technique)
	}
	return e.runBatch(ctx, specs, labels, progress)
}

// Point is one grid coordinate: a spec plus the label used to identify
// it in errors.
type Point struct {
	Label string
	Spec  Spec
}

// Grid executes a set of labelled grid points, exactly like RunAll but
// with caller-chosen labels in error messages (e.g. the sweep
// coordinates of the point that failed).
func (e *Engine) Grid(ctx context.Context, points []Point, progress func(i int, res sim.Result)) ([]sim.Result, error) {
	specs := make([]Spec, len(points))
	labels := make([]string, len(points))
	for i, p := range points {
		specs[i] = p.Spec
		labels[i] = p.Label
	}
	return e.runBatch(ctx, specs, labels, progress)
}

func (e *Engine) runBatch(parent context.Context, specs []Spec, labels []string, progress func(int, sim.Result)) ([]sim.Result, error) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	results := make([]sim.Result, len(specs))
	errs := make([]error, len(specs))
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case e.slots <- struct{}{}:
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			res, err := e.Run(ctx, specs[i])
			<-e.slots
			if err != nil {
				errs[i] = err
				cancel() // first failure drains the queue
				return
			}
			results[i] = res
			if progress != nil {
				progressMu.Lock()
				progress(i, res)
				progressMu.Unlock()
			}
		}(i)
	}
	wg.Wait()

	// Report the root-cause error, not the cascade of cancellations it
	// triggered; a parent-context cancellation surfaces as itself.
	var canceled error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			canceled = err
			continue
		}
		return nil, fmt.Errorf("engine: %s: %w", labels[i], err)
	}
	if canceled != nil {
		if err := parent.Err(); err != nil {
			return nil, err
		}
		return nil, canceled
	}
	return results, nil
}
