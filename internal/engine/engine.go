package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/engine/batchkernel"
	"repro/internal/power"
	"repro/internal/sim"
)

// Options configures an Engine.
type Options struct {
	// Parallelism bounds concurrently executing simulations across all
	// of the engine's batch calls; <= 0 means GOMAXPROCS.
	Parallelism int
	// DisableCache makes every run simulate afresh (used by benchmarks
	// and equivalence tests; results are identical either way).
	DisableCache bool
	// DiskCacheDir, when non-empty, adds a persistent second cache tier:
	// finished Results are written there as one JSON file per Spec.Key
	// (atomic renames), and later engines — including later processes —
	// serve matching specs from disk without simulating. Corrupt or
	// stale entries are ignored and rewritten. Because keys are content
	// addresses of the full normalized Spec, sharing a directory across
	// configurations is safe.
	DiskCacheDir string
	// DiskCacheGC, with DiskCacheDir set, sweeps the cache directory
	// once at engine construction, deleting files that can never be
	// served again: entries written under another schema version (a
	// version bump changes every key, so old entries orphan forever),
	// corrupt entries, and abandoned tmp-* files from crashed writers.
	// The sweep is best-effort and safe to run concurrently with other
	// processes using the same directory.
	DiskCacheGC bool
}

// Engine executes Specs through a bounded worker pool and memoizes their
// Results in a two-tier content-addressed cache keyed by Spec.Key: an
// in-memory map shared by everything in the process, and an optional
// on-disk tier shared across processes. An Engine is safe for concurrent
// use; sharing one engine across drivers (e.g. every experiment of a
// cmd/experiments invocation) shares both the pool and the cache, so the
// 26-app base suite is simulated once per process, not once per table —
// and with a disk tier, once per cache directory, not once per process.
type Engine struct {
	parallelism int
	cacheOff    bool
	slots       chan struct{}
	disk        *diskCache

	mu            sync.Mutex
	entries       map[Key]*entry
	hits          uint64
	diskHits      uint64
	misses        uint64
	diskWrites    uint64
	diskGCRemoved uint64

	// Instantaneous load accounting (see Load): simulations occupying a
	// worker slot, and runs queued waiting for one.
	inFlight atomic.Int64
	queued   atomic.Int64

	// Power-model memoization traffic aggregated over every simulation
	// this engine executed (see power.MemoStats).
	powerMemoHits    uint64
	powerMemoLookups uint64

	// Divergence handling aggregated over every lockstep group this
	// engine executed (see batchkernel.Stats).
	lanesForked     uint64
	cohortsReformed uint64
	forkCyclesSaved uint64
}

// entry is one cache slot, created before its simulation starts so that
// concurrent requests for the same spec coalesce onto a single run.
type entry struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// New builds an engine.
func New(o Options) *Engine {
	p := o.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		parallelism: p,
		cacheOff:    o.DisableCache,
		slots:       make(chan struct{}, p),
		entries:     make(map[Key]*entry),
	}
	if o.DiskCacheDir != "" {
		e.disk = &diskCache{dir: o.DiskCacheDir}
		if o.DiskCacheGC {
			e.diskGCRemoved = uint64(e.disk.gc())
		}
	}
	return e
}

// Parallelism returns the engine's worker bound.
func (e *Engine) Parallelism() int { return e.parallelism }

// CacheStats reports the engine's cache traffic by tier.
type CacheStats struct {
	// Hits counts runs served from (or coalesced onto) an in-memory
	// entry; DiskHits counts runs served from the persistent tier;
	// Misses counts simulations actually executed.
	Hits, DiskHits, Misses uint64
	// DiskWrites counts results persisted to the disk tier.
	DiskWrites uint64
	// DiskGCRemoved counts stale disk-tier files (old schema versions,
	// corrupt entries, abandoned temp files) deleted by the
	// construction-time sweep Options.DiskCacheGC enables.
	DiskGCRemoved uint64
	// Entries is the number of distinct specs cached in memory.
	Entries int
	// PowerMemoHits and PowerMemoLookups aggregate the power model's
	// Step-memoization traffic over every simulation this engine
	// executed; PowerMemoHits/PowerMemoLookups is the hit rate.
	PowerMemoHits    uint64
	PowerMemoLookups uint64
	// LanesForked counts lockstep lanes that diverged and resumed on a
	// forked machine; CohortsReformed counts the forked machines created,
	// each a fresh lockstep cohort (so LanesForked - CohortsReformed
	// lanes regrouped with a same-decision sibling instead of running
	// alone); ForkCyclesSaved sums the per-lane speculative prefixes the
	// pre-fork kernel would have discarded and re-simulated from cycle
	// zero (see batchkernel.Stats).
	LanesForked     uint64
	CohortsReformed uint64
	ForkCyclesSaved uint64
}

// CacheStats returns a snapshot of the cache counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return CacheStats{
		Hits:             e.hits,
		DiskHits:         e.diskHits,
		Misses:           e.misses,
		DiskWrites:       e.diskWrites,
		DiskGCRemoved:    e.diskGCRemoved,
		Entries:          len(e.entries),
		PowerMemoHits:    e.powerMemoHits,
		PowerMemoLookups: e.powerMemoLookups,
		LanesForked:      e.lanesForked,
		CohortsReformed:  e.cohortsReformed,
		ForkCyclesSaved:  e.forkCyclesSaved,
	}
}

// LoadStats is an instantaneous snapshot of the engine's execution load,
// the queue-depth signal a serving front-end exports.
type LoadStats struct {
	// InFlight is the number of simulations (a lockstep lane group
	// counts as one, like the single machine it steps) currently
	// occupying a worker slot.
	InFlight int
	// Queued is the number of runs waiting for a free slot.
	Queued int
}

// Load returns the engine's instantaneous execution load.
func (e *Engine) Load() LoadStats {
	return LoadStats{InFlight: int(e.inFlight.Load()), Queued: int(e.queued.Load())}
}

// acquireSlot blocks until a worker slot frees, counting the wait in
// Queued; it reports false when ctx is cancelled first.
func (e *Engine) acquireSlot(ctx context.Context) bool {
	e.queued.Add(1)
	defer e.queued.Add(-1)
	select {
	case e.slots <- struct{}{}:
		e.inFlight.Add(1)
		return true
	case <-ctx.Done():
		return false
	}
}

func (e *Engine) releaseSlot() {
	e.inFlight.Add(-1)
	<-e.slots
}

// executeSafe is executeMeasured with panics converted into errors. The
// engine must resolve its claimed cache entry and release its worker
// slot on every path out of a simulation; letting a panicking grid point
// unwind through a long-running server would instead strand waiters on
// a never-closed entry (technique constructors are validated before
// execution, but a panic can still escape a pathological configuration).
func executeSafe(spec Spec) (res sim.Result, st power.MemoStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("simulation panic: %v", r)
		}
	}()
	return executeMeasured(spec)
}

// addMemoStats folds one simulation's power-memoization counters into
// the engine totals.
func (e *Engine) addMemoStats(st power.MemoStats) {
	e.mu.Lock()
	e.powerMemoHits += st.Hits
	e.powerMemoLookups += st.Lookups()
	e.mu.Unlock()
}

// addKernelStats folds one lockstep group's divergence and memoization
// counters into the engine totals.
func (e *Engine) addKernelStats(st batchkernel.Stats) {
	e.mu.Lock()
	e.powerMemoHits += st.PowerMemo.Hits
	e.powerMemoLookups += st.PowerMemo.Lookups()
	e.lanesForked += st.LanesForked
	e.cohortsReformed += st.CohortsForked
	e.forkCyclesSaved += st.CyclesSaved
	e.mu.Unlock()
}

// Run executes one spec, serving it from the memory tier when an
// identical spec has already run, then from the disk tier when one is
// configured, simulating only on a miss of both. Identical specs
// submitted concurrently — from any number of goroutines or batches —
// coalesce onto a single simulation sharing one done channel. Specs
// carrying a Trace callback always simulate (the per-cycle side effects
// cannot be replayed), but their result still lands in both tiers. A
// failed simulation is evicted so a later identical spec retries instead
// of replaying the stale error. Cancelling ctx abandons a wait on
// another goroutine's in-flight run; a simulation already executing runs
// to completion. Simulating (but not cache service) occupies one of the
// engine's worker slots, so direct Run traffic and batch workers share
// the same concurrency bound.
func (e *Engine) Run(ctx context.Context, spec Spec) (sim.Result, error) {
	return e.run(ctx, spec, true)
}

// RunKeyed is Run for callers that already computed the spec's content
// key (e.g. a server handler that reports it per response): it skips the
// second key derivation and shares Run's coalescing, caching, and slot
// accounting. key must equal spec.Key(); a mismatched key would poison
// the cache for every later consumer of that key.
func (e *Engine) RunKeyed(ctx context.Context, key Key, spec Spec) (sim.Result, error) {
	if err := ctx.Err(); err != nil {
		return sim.Result{}, err
	}
	if e.cacheOff {
		return e.runUncached(ctx, spec)
	}
	return e.runKeyed(ctx, key, spec, true)
}

// run is Run with the slot-acquisition choice explicit: batch workers
// already hold a slot when they reach the scalar path, so acquiring a
// second one could deadlock a fully loaded pool.
func (e *Engine) run(ctx context.Context, spec Spec, needSlot bool) (sim.Result, error) {
	if err := ctx.Err(); err != nil {
		return sim.Result{}, err
	}
	if e.cacheOff {
		if !needSlot {
			res, st, err := executeSafe(spec)
			e.addMemoStats(st)
			return res, err
		}
		return e.runUncached(ctx, spec)
	}
	key, err := spec.Key()
	if err != nil {
		return sim.Result{}, err
	}
	return e.runKeyed(ctx, key, spec, needSlot)
}

// runUncached executes spec under the slot bound without touching the
// cache (DisableCache engines).
func (e *Engine) runUncached(ctx context.Context, spec Spec) (sim.Result, error) {
	if !e.acquireSlot(ctx) {
		return sim.Result{}, ctx.Err()
	}
	defer e.releaseSlot()
	res, st, err := executeSafe(spec)
	e.addMemoStats(st)
	return res, err
}

func (e *Engine) runKeyed(ctx context.Context, key Key, spec Spec, needSlot bool) (sim.Result, error) {
	if spec.Trace != nil {
		return e.runTraced(ctx, key, spec, needSlot)
	}

	e.mu.Lock()
	if en, ok := e.entries[key]; ok {
		e.hits++
		e.mu.Unlock()
		select {
		case <-en.done:
			return en.res, en.err
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		}
	}
	en := &entry{done: make(chan struct{})}
	e.entries[key] = en
	e.mu.Unlock()

	// Second tier: an untraced miss may be served from disk without
	// simulating; the loaded result is promoted into the memory tier.
	if e.disk != nil {
		if res, ok := e.disk.load(key); ok {
			e.mu.Lock()
			e.diskHits++
			e.mu.Unlock()
			en.res = res
			close(en.done)
			return res, nil
		}
	}

	// resolve publishes the claimed entry (evicting it first on failure
	// so a later identical spec retries); it must run on every path out
	// of here, or waiters hang forever.
	resolve := func(res sim.Result, err error) {
		en.res, en.err = res, err
		if err != nil {
			e.mu.Lock()
			if e.entries[key] == en {
				delete(e.entries, key)
			}
			e.mu.Unlock()
		}
		close(en.done)
	}

	e.mu.Lock()
	e.misses++
	e.mu.Unlock()
	if needSlot {
		if !e.acquireSlot(ctx) {
			resolve(sim.Result{}, ctx.Err())
			return sim.Result{}, ctx.Err()
		}
		defer e.releaseSlot()
	}
	res, st, err := executeSafe(spec)
	e.addMemoStats(st)
	resolve(res, err)
	if err == nil && e.disk != nil {
		if e.disk.store(key, res) {
			e.mu.Lock()
			e.diskWrites++
			e.mu.Unlock()
		}
	}
	return res, err
}

// runTraced executes a traced spec, which always simulates (its
// per-cycle callback cannot be replayed from a cache). The result is
// published on success only, and only into a vacant memory slot: a
// traced run must never displace a live entry, because a traced failure
// would then evict that entry while the displaced run's good result has
// nowhere to land, and even a traced success would strand the original
// run's waiters counting on an entry that is no longer in the map.
func (e *Engine) runTraced(ctx context.Context, key Key, spec Spec, needSlot bool) (sim.Result, error) {
	if needSlot {
		if !e.acquireSlot(ctx) {
			return sim.Result{}, ctx.Err()
		}
		defer e.releaseSlot()
	}
	e.mu.Lock()
	e.misses++
	e.mu.Unlock()
	res, st, err := executeSafe(spec)
	e.addMemoStats(st)
	if err != nil {
		return sim.Result{}, err
	}
	en := &entry{done: make(chan struct{}), res: res}
	close(en.done)
	e.mu.Lock()
	if _, exists := e.entries[key]; !exists {
		e.entries[key] = en
	}
	e.mu.Unlock()
	if e.disk != nil {
		if e.disk.store(key, res) {
			e.mu.Lock()
			e.diskWrites++
			e.mu.Unlock()
		}
	}
	return res, nil
}

// RunAll executes every spec through the worker pool and returns results
// in spec order, bit-identical to running each spec alone. progress,
// when non-nil, is invoked once per completed spec (calls are serialized
// but arrive in completion order, not spec order). The first error
// cancels the remaining queue and is returned annotated with the failing
// spec.
func (e *Engine) RunAll(ctx context.Context, specs []Spec, progress func(i int, res sim.Result)) ([]sim.Result, error) {
	labels := make([]string, len(specs))
	for i, s := range specs {
		labels[i] = fmt.Sprintf("spec %d (app=%s, technique=%s)", i, s.App, s.Technique)
	}
	return e.runBatch(ctx, specs, labels, progress)
}

// Point is one grid coordinate: a spec plus the label used to identify
// it in errors.
type Point struct {
	Label string
	Spec  Spec
}

// Grid executes a set of labelled grid points, exactly like RunAll but
// with caller-chosen labels in error messages (e.g. the sweep
// coordinates of the point that failed).
func (e *Engine) Grid(ctx context.Context, points []Point, progress func(i int, res sim.Result)) ([]sim.Result, error) {
	specs := make([]Spec, len(points))
	labels := make([]string, len(points))
	for i, p := range points {
		specs[i] = p.Spec
		labels[i] = p.Label
	}
	return e.runBatch(ctx, specs, labels, progress)
}

func (e *Engine) runBatch(parent context.Context, specs []Spec, labels []string, progress func(int, sim.Result)) ([]sim.Result, error) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	results := make([]sim.Result, len(specs))
	errs := make([]error, len(specs))
	var mu sync.Mutex // serializes progress calls and error writes

	fail := func(i int, err error) {
		mu.Lock()
		errs[i] = err
		mu.Unlock()
		cancel() // first failure drains the queue
	}
	succeed := func(i int, res sim.Result) {
		results[i] = res
		if progress != nil {
			mu.Lock()
			progress(i, res)
			mu.Unlock()
		}
	}

	// Claim: compute every untraced spec's key and claim its memory-tier
	// entry in one critical section, so the packer below sees the whole
	// set of specs this batch must simulate. Specs already in flight (or
	// cached) elsewhere become waiters; traced specs keep the scalar Run
	// path, whose per-cycle side effects must always re-simulate.
	type waiter struct {
		i  int
		en *entry
	}
	var waits []waiter
	var toRun []int
	owned := make(map[int]*entry)
	keys := make(map[int]Key)
	if e.cacheOff {
		for i := range specs {
			toRun = append(toRun, i)
		}
	} else {
		for i := range specs {
			if specs[i].Trace != nil {
				continue
			}
			k, err := specs[i].Key()
			if err != nil {
				fail(i, err)
				continue
			}
			keys[i] = k
		}
		e.mu.Lock()
		for i := range specs {
			if specs[i].Trace != nil {
				toRun = append(toRun, i)
				continue
			}
			k, ok := keys[i]
			if !ok {
				continue // key error already recorded
			}
			if en, exists := e.entries[k]; exists {
				e.hits++
				waits = append(waits, waiter{i: i, en: en})
				continue
			}
			en := &entry{done: make(chan struct{})}
			e.entries[k] = en
			owned[i] = en
			toRun = append(toRun, i)
		}
		e.mu.Unlock()
	}

	// Disk probe: owned untraced specs may be served from the
	// persistent tier without simulating.
	if e.disk != nil && !e.cacheOff {
		n := 0
		for _, i := range toRun {
			en, isOwned := owned[i]
			if !isOwned {
				toRun[n] = i
				n++
				continue
			}
			res, ok := e.disk.load(keys[i])
			if !ok {
				toRun[n] = i
				n++
				continue
			}
			e.mu.Lock()
			e.diskHits++
			e.mu.Unlock()
			en.res = res
			close(en.done)
			delete(owned, i)
			succeed(i, res)
		}
		toRun = toRun[:n]
	}

	// Pack: group the remaining work by machine key so compatible specs
	// share one lockstep kernel run; singletons (including every traced
	// spec) stay scalar.
	groups := packGroups(specs, toRun)

	// finish records one simulated spec: fill and publish the claimed
	// entry (or evict it on error so a later identical spec retries),
	// persist to disk, and account the miss.
	finish := func(i int, res sim.Result, err error) {
		en := owned[i]
		if err != nil {
			if en != nil {
				e.mu.Lock()
				e.misses++
				if e.entries[keys[i]] == en {
					delete(e.entries, keys[i])
				}
				e.mu.Unlock()
				en.err = err
				close(en.done)
			}
			fail(i, err)
			return
		}
		if en != nil {
			e.mu.Lock()
			e.misses++
			e.mu.Unlock()
			en.res = res
			if e.disk != nil {
				if e.disk.store(keys[i], res) {
					e.mu.Lock()
					e.diskWrites++
					e.mu.Unlock()
				}
			}
			close(en.done)
		}
		succeed(i, res)
	}

	runItem := func(g laneGroup) {
		if len(g.indices) == 1 && !e.cacheOff {
			if i := g.indices[0]; owned[i] == nil {
				// A traced spec: the scalar path keeps its
				// always-simulate, publish-on-success semantics. The
				// worker already holds a slot, so run must not acquire
				// a second one.
				res, err := e.run(ctx, specs[i], false)
				if err != nil {
					fail(i, err)
				} else {
					succeed(i, res)
				}
				return
			}
		}
		runGroup(ctx, specs, g, finish, e.addKernelStats)
	}

	// A fixed pool of min(groups, parallelism) workers pulls group
	// indices from a channel, so a 100k-point grid costs a handful of
	// goroutines rather than one per point. The engine-wide slots
	// channel still bounds total concurrency when several batches share
	// the engine; a multi-lane group occupies one slot, like the single
	// simulation its machine steps.
	idx := make(chan int)
	go func() {
		defer close(idx)
		for gi := range groups {
			select {
			case idx <- gi:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < min(len(groups), e.parallelism); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range idx {
				if !e.acquireSlot(ctx) {
					// Drain cheaply after cancellation, still
					// resolving every claimed entry so waiters on
					// other batches cannot hang.
					for _, i := range groups[gi].indices {
						finish(i, sim.Result{}, ctx.Err())
					}
					continue
				}
				runItem(groups[gi])
				e.releaseSlot()
			}
		}()
	}
	wg.Wait()

	// A cancellation can stop the feeder before every group reaches a
	// worker, leaving those groups' claimed entries unresolved — which
	// would hang identical specs in other batches forever (they wait on
	// this batch's done channels). Resolve the stragglers here; after
	// wg.Wait no worker touches these entries, so the non-blocking probe
	// is race-free.
	for i, en := range owned {
		select {
		case <-en.done:
		default:
			err := ctx.Err()
			if err == nil {
				// Unreachable if the feeder and workers covered every
				// group; guard so a future bug surfaces as an error
				// rather than a published zero result.
				err = errors.New("claimed entry left unresolved")
			}
			finish(i, sim.Result{}, err)
		}
	}

	// Resolve waiters last: every entry this batch claimed has been
	// closed above, so a cross-batch wait cycle cannot deadlock.
	for _, w := range waits {
		select {
		case <-w.en.done:
			if w.en.err != nil {
				mu.Lock()
				errs[w.i] = w.en.err
				mu.Unlock()
			} else {
				succeed(w.i, w.en.res)
			}
		case <-ctx.Done():
			mu.Lock()
			errs[w.i] = ctx.Err()
			mu.Unlock()
		}
	}

	// Report the root-cause error, not the cascade of cancellations it
	// triggered; a parent-context cancellation surfaces as itself.
	var canceled error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			canceled = err
			continue
		}
		return nil, fmt.Errorf("engine: %s: %w", labels[i], err)
	}
	if err := parent.Err(); err != nil {
		return nil, err
	}
	if canceled != nil {
		return nil, canceled
	}
	return results, nil
}
