package engine

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// assertAllEntriesClosed fails the test if the engine's memory tier
// holds an unresolved entry (a hung-waiter hazard) or a resolved entry
// carrying an error (errored entries must be evicted, not cached).
func assertAllEntriesClosed(t *testing.T, e *Engine) {
	t.Helper()
	e.mu.Lock()
	defer e.mu.Unlock()
	for k, en := range e.entries {
		select {
		case <-en.done:
			if en.err != nil {
				t.Errorf("entry %s resolved with error %v but was not evicted", k, en.err)
			}
		default:
			t.Errorf("entry %s never resolved: identical specs would hang forever", k)
		}
	}
}

// TestTracedFailureNeverDisplacesLiveEntry is the regression test for
// the displaced-entry lifecycle bug: a traced spec used to claim the
// memory-tier slot unconditionally, displacing an in-flight entry; when
// the traced run then failed, the eviction guard deleted the traced
// entry while the displaced run's good result never landed back in the
// map. A traced run must leave a live entry untouched.
func TestTracedFailureNeverDisplacesLiveEntry(t *testing.T) {
	e := New(Options{Parallelism: 2})
	// Keys fine (normalization doesn't resolve apps) but execution fails.
	spec := Spec{App: "no-such-app", Instructions: 10_000}
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}

	// A live in-flight entry, as if another goroutine were simulating.
	live := &entry{done: make(chan struct{})}
	e.mu.Lock()
	e.entries[key] = live
	e.mu.Unlock()

	traced := spec
	traced.Trace = func(sim.TracePoint) {}
	if _, err := e.Run(context.Background(), traced); err == nil {
		t.Fatal("traced run of an unknown app succeeded")
	}

	e.mu.Lock()
	got := e.entries[key]
	e.mu.Unlock()
	if got != live {
		t.Fatal("traced failure displaced or evicted the live in-flight entry")
	}

	// The live run can still publish, and a later identical spec is
	// served from its entry.
	live.res = sim.Result{App: "marker"}
	close(live.done)
	res, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "marker" {
		t.Errorf("hit returned %+v, want the live entry's published result", res)
	}
	if st := e.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit (the wait) and 1 miss (the traced attempt)", st)
	}
}

// TestTracedSuccessPublishesOnlyIntoVacantSlot: a successful traced run
// makes its result available to later untraced consumers, but only by
// filling a vacant map slot — never by replacing an entry that is
// already there.
func TestTracedSuccessPublishesOnlyIntoVacantSlot(t *testing.T) {
	e := New(Options{Parallelism: 2})
	spec := Spec{App: "swim", Instructions: 20_000}
	traced := spec
	traced.Trace = func(sim.TracePoint) {}

	// Vacant slot: the traced result is published.
	want, err := e.Run(context.Background(), traced)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("untraced follow-up diverged:\n%+v\n%+v", want, got)
	}
	if st := e.CacheStats(); st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want the untraced run served from the traced publish", st)
	}

	// Occupied slot: the entry already present survives verbatim.
	spec2 := Spec{App: "lucas", Instructions: 20_000}
	key2, err := spec2.Key()
	if err != nil {
		t.Fatal(err)
	}
	sentinel := &entry{done: make(chan struct{}), res: sim.Result{App: "sentinel"}}
	close(sentinel.done)
	e.mu.Lock()
	e.entries[key2] = sentinel
	e.mu.Unlock()
	traced2 := spec2
	traced2.Trace = func(sim.TracePoint) {}
	if _, err := e.Run(context.Background(), traced2); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	kept := e.entries[key2]
	e.mu.Unlock()
	if kept != sentinel {
		t.Error("traced success displaced an existing entry")
	}
}

// TestConcurrentTracedAndUntracedIdenticalSpecs races traced and
// untraced requests for one spec from many goroutines: every request
// must return the identical result, every entry must resolve, and the
// counters must balance (each request is exactly one hit, disk hit, or
// miss).
func TestConcurrentTracedAndUntracedIdenticalSpecs(t *testing.T) {
	e := New(Options{Parallelism: 4})
	spec := Spec{App: "swim", Instructions: 20_000}
	want, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}

	const n = 12
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(traced bool) {
			defer wg.Done()
			s := spec
			if traced {
				s.Trace = func(sim.TracePoint) {}
			}
			res, err := e.Run(context.Background(), s)
			if err != nil {
				t.Errorf("run failed: %v", err)
				return
			}
			if res != want {
				t.Errorf("result diverged:\n%+v\n%+v", want, res)
			}
		}(i%2 == 0)
	}
	wg.Wait()

	assertAllEntriesClosed(t, e)
	st := e.CacheStats()
	if st.Hits+st.DiskHits+st.Misses != n {
		t.Errorf("counters do not balance: %+v over %d requests", st, n)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want exactly 1 for one distinct spec", st.Entries)
	}
}

// TestCancelledBatchResolvesAllClaims is the regression test for the
// undelivered-group leak: cancelling a batch could stop the group feeder
// before every claimed entry reached a worker, leaving entries in the
// map that never resolved — an identical spec in any later batch would
// then wait on them forever.
func TestCancelledBatchResolvesAllClaims(t *testing.T) {
	e := New(Options{Parallelism: 1})
	specs := make([]Spec, 24)
	for i := range specs {
		// Distinct instruction counts: distinct keys AND distinct
		// machine keys, so every spec is its own singleton group.
		specs[i] = Spec{App: "swim", Instructions: 40_000 + uint64(i)}
	}

	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	_, err := e.RunAll(ctx, specs, func(int, sim.Result) {
		once.Do(cancel) // cancel as soon as the first point completes
	})
	if err != context.Canceled {
		t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
	}
	assertAllEntriesClosed(t, e)

	// The engine must remain fully usable: the same specs re-run clean.
	res, err := e.RunAll(context.Background(), specs, nil)
	if err != nil {
		t.Fatalf("re-run after cancellation failed: %v", err)
	}
	if len(res) != len(specs) {
		t.Fatalf("re-run returned %d results, want %d", len(res), len(specs))
	}
	assertAllEntriesClosed(t, e)

	// A batch cancelled before it starts must also resolve every claim.
	e2 := New(Options{Parallelism: 2})
	pre, precancel := context.WithCancel(context.Background())
	precancel()
	if _, err := e2.RunAll(pre, specs, nil); err != context.Canceled {
		t.Fatalf("pre-cancelled batch returned %v", err)
	}
	assertAllEntriesClosed(t, e2)
}

// TestRunKeyedCoalesces: N concurrent identical requests through the
// exported keyed entry point provably coalesce onto one simulation —
// one miss, N-1 hits, one shared result.
func TestRunKeyedCoalesces(t *testing.T) {
	e := New(Options{Parallelism: 2})
	spec := Spec{App: "swim", Instructions: 30_000}
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}

	const n = 16
	results := make([]sim.Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.RunKeyed(context.Background(), key, spec)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	st := e.CacheStats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 for %d identical in-flight requests", st.Misses, n)
	}
	if st.Hits != n-1 {
		t.Errorf("hits = %d, want %d", st.Hits, n-1)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Errorf("request %d diverged from request 0", i)
		}
	}
}

// TestPanickingSimulationResolvesEntry: a panic escaping a simulation
// (here: a panicking trace callback) must come back as an error, leave
// no poisoned entry behind, and keep the engine serving.
func TestPanickingSimulationResolvesEntry(t *testing.T) {
	e := New(Options{Parallelism: 2})
	spec := Spec{App: "swim", Instructions: 10_000}
	boom := spec
	boom.Trace = func(sim.TracePoint) { panic("trace callback exploded") }
	_, err := e.Run(context.Background(), boom)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("panicking run returned %v, want a panic-wrapping error", err)
	}
	assertAllEntriesClosed(t, e)

	// The engine still serves the spec normally.
	if _, err := e.Run(context.Background(), spec); err != nil {
		t.Fatalf("engine unusable after a panicking run: %v", err)
	}
	if got := e.Load(); got.InFlight != 0 || got.Queued != 0 {
		t.Errorf("load after quiescence = %+v, want zero (leaked slot)", got)
	}
}

// stressSpec returns one of a small population of specs, some of which
// duplicate heavily (the coalescing surface) and some of which are
// unique per draw.
func stressSpec(r *rand.Rand, insts uint64) Spec {
	apps := []string{"swim", "lucas"}
	techs := []TechniqueKind{TechniqueNone, TechniqueTuning, TechniqueDamping}
	return Spec{
		App:          apps[r.Intn(len(apps))],
		Instructions: insts + uint64(r.Intn(3))*1000,
		Technique:    techs[r.Intn(len(techs))],
	}
}

// TestEngineLifecycleStress hammers Run/RunAll from many goroutines with
// duplicate keys, traced specs, and a warm disk tier, then asserts the
// lifecycle invariants: every entry resolved, and the counters balance
// exactly — hits + diskHits + misses == requests. Run under -race in CI.
func TestEngineLifecycleStress(t *testing.T) {
	const insts = 6_000
	dir := t.TempDir()

	// Pre-warm part of the disk tier so the stress engine sees all
	// three service tiers.
	warm := New(Options{DiskCacheDir: dir, Parallelism: 4})
	r0 := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		if _, err := warm.Run(context.Background(), stressSpec(r0, insts)); err != nil {
			t.Fatal(err)
		}
	}

	e := New(Options{DiskCacheDir: dir, Parallelism: 3})
	var requests atomic.Uint64
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 12; iter++ {
				switch r.Intn(3) {
				case 0: // single run
					s := stressSpec(r, insts)
					if _, err := e.Run(context.Background(), s); err != nil {
						t.Errorf("run: %v", err)
					}
					requests.Add(1)
				case 1: // traced run
					s := stressSpec(r, insts)
					var cycles atomic.Uint64
					s.Trace = func(sim.TracePoint) { cycles.Add(1) }
					if _, err := e.Run(context.Background(), s); err != nil {
						t.Errorf("traced run: %v", err)
					} else if cycles.Load() == 0 {
						t.Error("traced run never fired its callback")
					}
					requests.Add(1)
				default: // batch with duplicates
					batch := make([]Spec, 1+r.Intn(6))
					for i := range batch {
						batch[i] = stressSpec(r, insts)
					}
					if _, err := e.RunAll(context.Background(), batch, nil); err != nil {
						t.Errorf("batch: %v", err)
					}
					requests.Add(uint64(len(batch)))
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()

	assertAllEntriesClosed(t, e)
	st := e.CacheStats()
	if got, want := st.Hits+st.DiskHits+st.Misses, requests.Load(); got != want {
		t.Errorf("counters do not balance: hits %d + diskHits %d + misses %d = %d, want %d requests",
			st.Hits, st.DiskHits, st.Misses, got, want)
	}
	if got := e.Load(); got.InFlight != 0 || got.Queued != 0 {
		t.Errorf("load after quiescence = %+v, want zero", got)
	}
}

// TestEngineLifecycleStressErrors mixes failing specs and mid-flight
// cancellations into concurrent batches: whatever the interleaving,
// every claimed entry must resolve, errored entries must be evicted, and
// the engine must keep serving afterwards.
func TestEngineLifecycleStressErrors(t *testing.T) {
	const insts = 6_000
	e := New(Options{Parallelism: 2})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 8; iter++ {
				batch := make([]Spec, 2+r.Intn(5))
				for i := range batch {
					batch[i] = stressSpec(r, insts)
				}
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				mode := r.Intn(3)
				if mode == 0 {
					// Poison one spec: fails at execution, cancelling
					// the rest of the batch.
					batch[r.Intn(len(batch))].App = "no-such-app"
				} else if mode == 1 {
					ctx, cancel = context.WithCancel(ctx)
					var once sync.Once
					_, _ = e.RunAll(ctx, batch, func(int, sim.Result) { once.Do(cancel) })
					cancel()
					continue
				}
				_, _ = e.RunAll(ctx, batch, nil)
				cancel()
			}
		}(int64(w + 100))
	}
	wg.Wait()

	assertAllEntriesClosed(t, e)

	// Still serving: a clean batch completes and balances from here.
	r := rand.New(rand.NewSource(999))
	batch := make([]Spec, 8)
	for i := range batch {
		batch[i] = stressSpec(r, insts)
	}
	if _, err := e.RunAll(context.Background(), batch, nil); err != nil {
		t.Fatalf("engine unusable after error/cancel stress: %v", err)
	}
	assertAllEntriesClosed(t, e)
	if got := e.Load(); got.InFlight != 0 || got.Queued != 0 {
		t.Errorf("load after quiescence = %+v, want zero (leaked slot)", got)
	}
}
