// Package metrics aggregates per-application simulation results into the
// relative quantities the paper's tables report: relative slowdown
// (technique cycles over base cycles for the same instruction count),
// relative energy, and relative energy-delay, plus the summary columns of
// Tables 3-5 (average, worst application, number of applications above a
// slowdown threshold).
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Relative holds one application's technique-vs-base comparison.
type Relative struct {
	App string
	// Slowdown is techniqueCycles / baseCycles (≥ 1 in practice).
	Slowdown float64
	// Energy is techniqueEnergy / baseEnergy.
	Energy float64
	// EnergyDelay is the relative energy-delay product.
	EnergyDelay float64
	// BaseViolations and TechViolations count noise-margin violations.
	BaseViolations uint64
	TechViolations uint64
}

// Compare matches base and technique results by application name and
// computes the relative metrics. Results missing from either side are
// skipped; an error is returned if nothing matches or instruction counts
// disagree.
func Compare(base, tech []sim.Result) ([]Relative, error) {
	byApp := make(map[string]sim.Result, len(base))
	for _, b := range base {
		byApp[b.App] = b
	}
	var out []Relative
	for _, tr := range tech {
		b, ok := byApp[tr.App]
		if !ok {
			continue
		}
		if b.Instructions != tr.Instructions {
			return nil, fmt.Errorf("metrics: %s ran %d instructions under %s but %d at base",
				tr.App, tr.Instructions, tr.Technique, b.Instructions)
		}
		if b.Cycles == 0 || b.EnergyJ == 0 {
			return nil, fmt.Errorf("metrics: degenerate base run for %s", tr.App)
		}
		slow := float64(tr.Cycles) / float64(b.Cycles)
		energy := tr.EnergyJ / b.EnergyJ
		out = append(out, Relative{
			App:            tr.App,
			Slowdown:       slow,
			Energy:         energy,
			EnergyDelay:    energy * slow,
			BaseViolations: b.Violations,
			TechViolations: tr.Violations,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("metrics: no matching applications between base and technique runs")
	}
	return out, nil
}

// Summary condenses per-application relatives into the Tables 3-5 columns.
type Summary struct {
	AvgSlowdown    float64
	AvgEnergy      float64
	AvgEnergyDelay float64
	WorstSlowdown  float64
	WorstApp       string
	// Over15 counts applications with more than 15% slowdown (the
	// "apps with > 15%" column of Table 3).
	Over15 int
	// BaseViolations and TechViolations are summed across apps.
	BaseViolations uint64
	TechViolations uint64
}

// Summarize averages the relative metrics (arithmetic mean across
// applications, as the paper reports).
func Summarize(rels []Relative) Summary {
	var s Summary
	if len(rels) == 0 {
		return s
	}
	for _, r := range rels {
		s.AvgSlowdown += r.Slowdown
		s.AvgEnergy += r.Energy
		s.AvgEnergyDelay += r.EnergyDelay
		if r.Slowdown > s.WorstSlowdown {
			s.WorstSlowdown = r.Slowdown
			s.WorstApp = r.App
		}
		if r.Slowdown > 1.15 {
			s.Over15++
		}
		s.BaseViolations += r.BaseViolations
		s.TechViolations += r.TechViolations
	}
	n := float64(len(rels))
	s.AvgSlowdown /= n
	s.AvgEnergy /= n
	s.AvgEnergyDelay /= n
	return s
}

// SortByApp orders relatives alphabetically for stable reports.
func SortByApp(rels []Relative) {
	sort.Slice(rels, func(i, j int) bool { return rels[i].App < rels[j].App })
}

// Table is a minimal fixed-width text table for experiment reports.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
