package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func res(app string, cycles uint64, energy float64, viol uint64) sim.Result {
	return sim.Result{App: app, Cycles: cycles, Instructions: 1000, EnergyJ: energy, Violations: viol}
}

func TestCompareComputesRelatives(t *testing.T) {
	base := []sim.Result{res("a", 1000, 1.0, 5), res("b", 2000, 2.0, 0)}
	tech := []sim.Result{res("a", 1100, 1.05, 0), res("b", 2400, 2.4, 0)}
	rels, err := Compare(base, tech)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 {
		t.Fatalf("got %d relatives, want 2", len(rels))
	}
	SortByApp(rels)
	if math.Abs(rels[0].Slowdown-1.1) > 1e-12 {
		t.Errorf("a slowdown %g, want 1.1", rels[0].Slowdown)
	}
	if math.Abs(rels[0].Energy-1.05) > 1e-12 {
		t.Errorf("a energy %g, want 1.05", rels[0].Energy)
	}
	if math.Abs(rels[0].EnergyDelay-1.155) > 1e-12 {
		t.Errorf("a energy-delay %g, want 1.155", rels[0].EnergyDelay)
	}
	if rels[0].BaseViolations != 5 || rels[0].TechViolations != 0 {
		t.Errorf("violation carry-through wrong: %+v", rels[0])
	}
}

func TestCompareRejectsMismatchedRuns(t *testing.T) {
	base := []sim.Result{res("a", 1000, 1.0, 0)}
	tech := []sim.Result{{App: "a", Cycles: 1100, Instructions: 999, EnergyJ: 1}}
	if _, err := Compare(base, tech); err == nil {
		t.Error("instruction mismatch accepted")
	}
	if _, err := Compare(base, []sim.Result{res("zz", 1, 1, 0)}); err == nil {
		t.Error("disjoint app sets accepted")
	}
	if _, err := Compare([]sim.Result{res("a", 0, 0, 0)}, []sim.Result{res("a", 10, 1, 0)}); err == nil {
		t.Error("degenerate base accepted")
	}
}

func TestSummarize(t *testing.T) {
	rels := []Relative{
		{App: "a", Slowdown: 1.05, Energy: 1.02, EnergyDelay: 1.071, BaseViolations: 3},
		{App: "b", Slowdown: 1.25, Energy: 1.10, EnergyDelay: 1.375, TechViolations: 1},
		{App: "c", Slowdown: 1.10, Energy: 1.05, EnergyDelay: 1.155},
	}
	s := Summarize(rels)
	if math.Abs(s.AvgSlowdown-(1.05+1.25+1.10)/3) > 1e-12 {
		t.Errorf("avg slowdown %g", s.AvgSlowdown)
	}
	if s.WorstApp != "b" || math.Abs(s.WorstSlowdown-1.25) > 1e-12 {
		t.Errorf("worst = %s %g, want b 1.25", s.WorstApp, s.WorstSlowdown)
	}
	if s.Over15 != 1 {
		t.Errorf("over-15%% count %d, want 1", s.Over15)
	}
	if s.BaseViolations != 3 || s.TechViolations != 1 {
		t.Errorf("violation sums %d/%d", s.BaseViolations, s.TechViolations)
	}
	if got := Summarize(nil); got.AvgSlowdown != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "Demo", Headers: []string{"name", "value"}}
	tab.AddRow("alpha", 1.2345678)
	tab.AddRow("b", 42)
	out := tab.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: header and separator have equal length.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("separator misaligned:\n%s", out)
	}
	if !strings.Contains(out, "1.235") {
		t.Errorf("float formatting missing: %s", out)
	}
}
