package spectrum

import (
	"math"
	"testing"
)

// sineTrace builds a trace with a sinusoid at the given period plus a DC
// offset.
func sineTrace(n int, periodCycles, amp, dc float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = dc + amp*math.Sin(2*math.Pi*float64(i)/periodCycles)
	}
	return out
}

func TestPeakAtInjectedFrequency(t *testing.T) {
	trace := sineTrace(40_000, 100, 10, 70)
	sp, err := Analyze(trace, 10e9, 20, 500)
	if err != nil {
		t.Fatal(err)
	}
	peak := sp.Peak()
	if math.Abs(peak.PeriodCycles-100)/100 > 0.05 {
		t.Errorf("peak at period %.1f, want ≈ 100", peak.PeriodCycles)
	}
	// Parseval: the power within ±15% of the tone period recovers the
	// tone variance A²/2 = 50.
	if got := sp.BandPower(85, 115); math.Abs(got-50)/50 > 0.15 {
		t.Errorf("tone band power %.1f, want ≈ 50", got)
	}
}

func TestBandFractionSeparatesInAndOutOfBand(t *testing.T) {
	inBand := sineTrace(40_000, 100, 10, 70)
	outBand := sineTrace(40_000, 33, 10, 70)

	spIn, err := Analyze(inBand, 10e9, 20, 500)
	if err != nil {
		t.Fatal(err)
	}
	spOut, err := Analyze(outBand, 10e9, 20, 500)
	if err != nil {
		t.Fatal(err)
	}
	fIn := spIn.BandFraction(84, 119)
	fOut := spOut.BandFraction(84, 119)
	if fIn < 0.8 {
		t.Errorf("in-band sinusoid has band fraction %.2f, want > 0.8", fIn)
	}
	if fOut > 0.05 {
		t.Errorf("out-of-band sinusoid has band fraction %.2f, want < 0.05", fOut)
	}
}

func TestDCIsIgnored(t *testing.T) {
	flat := make([]float64, 5000)
	for i := range flat {
		flat[i] = 85
	}
	sp, err := Analyze(flat, 10e9, 20, 500)
	if err != nil {
		t.Fatal(err)
	}
	if sp.TotalVariance > 1e-12 {
		t.Errorf("flat trace variance %g", sp.TotalVariance)
	}
	for _, pt := range sp.Points {
		if pt.Power > 1e-9 {
			t.Errorf("flat trace shows power %g at period %.0f", pt.Power, pt.PeriodCycles)
		}
	}
}

func TestVarianceOfSine(t *testing.T) {
	sp, err := Analyze(sineTrace(30_000, 100, 10, 0), 10e9, 50, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Variance of a sine of amplitude 10 is 50.
	if math.Abs(sp.TotalVariance-50) > 1 {
		t.Errorf("variance %.2f, want ≈ 50", sp.TotalVariance)
	}
	// And nearly all of it is captured inside the sampled range.
	if got := sp.BandPower(50, 200); math.Abs(got-50)/50 > 0.15 {
		t.Errorf("in-range power %.1f, want ≈ 50", got)
	}
}

func TestTwoToneSeparation(t *testing.T) {
	a := sineTrace(40_000, 100, 10, 0)
	b := sineTrace(40_000, 250, 6, 0)
	mix := make([]float64, len(a))
	for i := range mix {
		mix[i] = a[i] + b[i]
	}
	sp, err := Analyze(mix, 10e9, 50, 400)
	if err != nil {
		t.Fatal(err)
	}
	strong := sp.BandPower(88, 113)
	weak := sp.BandPower(220, 285)
	if math.Abs(strong-50)/50 > 0.2 {
		t.Errorf("strong tone power %.1f, want ≈ 50", strong)
	}
	if math.Abs(weak-18)/18 > 0.25 {
		t.Errorf("weak tone power %.1f, want ≈ 18", weak)
	}
}

func TestAnalyzeRejectsBadInput(t *testing.T) {
	if _, err := Analyze(make([]float64, 4), 1e9, 20, 100); err == nil {
		t.Error("short trace accepted")
	}
	if _, err := Analyze(make([]float64, 1000), 1e9, 1, 100); err == nil {
		t.Error("sub-2-cycle period accepted")
	}
	if _, err := Analyze(make([]float64, 1000), 1e9, 50, 40); err == nil {
		t.Error("inverted period range accepted")
	}
}

func TestFrequencyPeriodConsistency(t *testing.T) {
	sp, err := Analyze(sineTrace(5000, 80, 1, 0), 10e9, 40, 160)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Points) < 4 {
		t.Fatalf("only %d bins", len(sp.Points))
	}
	for _, pt := range sp.Points {
		if math.Abs(pt.FrequencyHz*pt.PeriodCycles-10e9)/10e9 > 1e-9 {
			t.Errorf("bin inconsistency: f=%g, period=%g", pt.FrequencyHz, pt.PeriodCycles)
		}
	}
}

func TestWhiteNoiseIsFlatAcrossBand(t *testing.T) {
	// A deterministic pseudo-noise sequence: in-band fraction should be
	// roughly the band's share of the sampled frequency range.
	xs := make([]float64, 60_000)
	state := uint64(12345)
	for i := range xs {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		xs[i] = float64(state%1000)/100 - 5
	}
	sp, err := Analyze(xs, 10e9, 20, 500)
	if err != nil {
		t.Fatal(err)
	}
	frac := sp.BandFraction(84, 119)
	// White noise has variance spread uniformly over frequency; the
	// band [1/119, 1/84] covers (1/84-1/119)/0.5 ≈ 0.7% of the full
	// one-sided range.
	if frac > 0.03 {
		t.Errorf("white-noise band fraction %.3f, want ≈ 0.007", frac)
	}
}
