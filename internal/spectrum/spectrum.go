// Package spectrum analyses the frequency content of per-cycle current
// traces. The paper's entire argument rests on a spectral claim — only
// current variation inside the resonance band threatens the noise margin
// — so this package makes the claim measurable: Welch-averaged Hann
// periodograms (Goertzel per bin, no FFT dependency) whose band sums obey
// Parseval, so BandPower reads directly as "amps² of variance inside the
// band".
package spectrum

import (
	"fmt"
	"math"
)

// Point is one spectral bin.
type Point struct {
	// FrequencyHz of the bin (for a given processor clock).
	FrequencyHz float64
	// PeriodCycles is the equivalent period in clock cycles.
	PeriodCycles float64
	// Power is the trace-variance contribution of this bin in A².
	Power float64
}

// Spectrum holds the analysis of one trace.
type Spectrum struct {
	ClockHz float64
	// SegmentLen is the Welch segment length used (bins are spaced
	// ClockHz/SegmentLen apart).
	SegmentLen int
	// TotalVariance is the trace's variance in A² (total AC power).
	TotalVariance float64
	Points        []Point
}

// goertzelMagSq returns |X_k|² of the DFT of xs at bin frequency f
// (cycles per sample).
func goertzelMagSq(xs []float64, f float64) float64 {
	w := 2 * math.Pi * f
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, x := range xs {
		s0 = x + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	return s1*s1 + s2*s2 - coeff*s1*s2
}

// Analyze estimates the spectrum of the per-cycle current trace over
// periods in [minPeriod, maxPeriod] cycles using Welch averaging:
// 50%-overlapped Hann-windowed segments, one bin per DFT frequency of the
// segment. Bin powers are normalised so that their sum over a band
// approximates the trace variance contributed by that band (Parseval).
func Analyze(samples []float64, clockHz float64, minPeriod, maxPeriod float64) (Spectrum, error) {
	if len(samples) < 64 {
		return Spectrum{}, fmt.Errorf("spectrum: trace too short (%d samples)", len(samples))
	}
	if minPeriod < 2 || maxPeriod <= minPeriod {
		return Spectrum{}, fmt.Errorf("spectrum: bad period range [%g, %g]", minPeriod, maxPeriod)
	}

	// Segment length: a power of two, at least 8× the longest period of
	// interest for adequate resolution, at most half the trace.
	segLen := 1
	for segLen < int(8*maxPeriod) {
		segLen <<= 1
	}
	for segLen > len(samples)/2 && segLen > 64 {
		segLen >>= 1
	}

	mean, variance := meanVar(samples)

	// Hann window and its power gain.
	window := make([]float64, segLen)
	u := 0.0
	for i := range window {
		window[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(segLen-1)))
		u += window[i] * window[i]
	}

	kLo := int(math.Ceil(float64(segLen) / maxPeriod))
	if kLo < 1 {
		kLo = 1
	}
	kHi := int(math.Floor(float64(segLen) / minPeriod))
	if kHi > segLen/2 {
		kHi = segLen / 2
	}
	if kHi < kLo {
		return Spectrum{}, fmt.Errorf("spectrum: period range [%g, %g] resolves no bins at segment length %d",
			minPeriod, maxPeriod, segLen)
	}

	sums := make([]float64, kHi-kLo+1)
	segments := 0
	buf := make([]float64, segLen)
	for start := 0; start+segLen <= len(samples); start += segLen / 2 {
		for i := 0; i < segLen; i++ {
			buf[i] = (samples[start+i] - mean) * window[i]
		}
		for k := kLo; k <= kHi; k++ {
			sums[k-kLo] += goertzelMagSq(buf, float64(k)/float64(segLen))
		}
		segments++
	}
	if segments == 0 {
		return Spectrum{}, fmt.Errorf("spectrum: trace shorter than one segment (%d < %d)", len(samples), segLen)
	}

	sp := Spectrum{ClockHz: clockHz, SegmentLen: segLen, TotalVariance: variance}
	for k := kLo; k <= kHi; k++ {
		magSq := sums[k-kLo] / float64(segments)
		period := float64(segLen) / float64(k)
		sp.Points = append(sp.Points, Point{
			FrequencyHz:  clockHz / period,
			PeriodCycles: period,
			// One-sided Parseval normalisation: Σ_k 2|X_k|²/(L·U)
			// over all k ≤ L/2 recovers the windowed variance.
			Power: 2 * magSq / (float64(segLen) * u),
		})
	}
	return sp, nil
}

// meanVar returns the mean and variance of xs.
func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs))
	return mean, variance
}

// BandPower integrates the spectral estimate over periods in
// [loCycles, hiCycles], returning the summed bin power in A².
func (s Spectrum) BandPower(loCycles, hiCycles float64) float64 {
	total := 0.0
	for _, pt := range s.Points {
		if pt.PeriodCycles >= loCycles && pt.PeriodCycles <= hiCycles {
			total += pt.Power
		}
	}
	return total
}

// BandFraction returns the band power normalised by the trace's total
// variance — a scale-free measure of how concentrated the trace's
// variation is in the band.
func (s Spectrum) BandFraction(loCycles, hiCycles float64) float64 {
	if s.TotalVariance == 0 {
		return 0
	}
	return s.BandPower(loCycles, hiCycles) / s.TotalVariance
}

// Peak returns the bin with the most power.
func (s Spectrum) Peak() Point {
	var best Point
	for _, pt := range s.Points {
		if pt.Power > best.Power {
			best = pt
		}
	}
	return best
}
