package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws from different seeds", same)
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("zero seed produced stuck generator")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10_000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 100_000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %g, want ≈ 0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	s := New(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) produced only %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestGeometricMean(t *testing.T) {
	s := New(13)
	const n = 50_000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Geometric(4)
	}
	if mean := float64(sum) / n; math.Abs(mean-4) > 0.2 {
		t.Errorf("geometric mean %g, want ≈ 4", mean)
	}
	if s.Geometric(0.5) != 1 {
		t.Error("geometric with mean <= 1 should return 1")
	}
}

func TestBernoulli(t *testing.T) {
	s := New(17)
	const n = 100_000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate %g", rate)
	}
}

func TestRange(t *testing.T) {
	s := New(19)
	for i := 0; i < 1000; i++ {
		v := s.Range(42, 60)
		if v < 42 || v > 60 {
			t.Fatalf("Range out of bounds: %d", v)
		}
	}
	if s.Range(5, 5) != 5 {
		t.Error("degenerate range should return its endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Error("Range(hi<lo) did not panic")
		}
	}()
	s.Range(2, 1)
}
