// Package rng provides a tiny, fast, deterministic pseudo-random number
// generator (xorshift64*) used by the synthetic workloads and the sensor
// noise models. Determinism matters here: every experiment in the repo
// must be exactly reproducible, so all randomness flows from explicit
// seeds through this generator rather than math/rand's global state.
package rng

// Source is a xorshift64* generator. The zero value is invalid; construct
// with New.
type Source struct {
	state uint64
}

// New returns a generator seeded with seed (0 is remapped to a fixed
// non-zero constant, since the all-zero state is absorbing).
func New(seed uint64) *Source {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Source{state: seed}
}

// Clone returns an independent generator that continues the exact draw
// sequence of s: both produce identical streams from here on. Machine
// forking (sim.Machine.Fork) relies on this to keep a forked workload
// generator bit-identical to its original.
func (s *Source) Clone() *Source {
	c := *s
	return &c
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Geometric returns a sample from a geometric distribution with the given
// mean (values >= 1). Used for dependency distances.
func (s *Source) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for s.Float64() > p && n < 1<<12 {
		n++
	}
	return n
}

// Bernoulli reports true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Range returns a uniform value in [lo, hi] inclusive. It panics if
// hi < lo.
func (s *Source) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}
