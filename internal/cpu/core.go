package cpu

import "fmt"

// Activity reports what the core did in one cycle. The power model turns
// an Activity into energy and current; the techniques read the structural
// occupancies.
type Activity struct {
	Fetched    int // instructions fetched
	Dispatched int // instructions renamed/dispatched
	Committed  int // instructions retired

	Issued      [NumClasses]int // instructions issued, by class
	IssuedTotal int

	L1I int // L1 instruction-cache accesses (instruction granularity)
	L1D int // L1 data-cache accesses started (loads at issue, stores at commit)
	L2  int // L2 accesses started
	Mem int // main-memory accesses started

	BranchesResolved int

	IQOccupancy  int // instructions waiting to issue at end of cycle
	ROBOccupancy int // reorder-buffer occupancy at end of cycle
}

// instruction lifecycle states inside the ROB.
const (
	stWaiting uint8 = iota // dispatched, waiting for operands or a unit
	stExec                 // issued; result ready at doneAt
)

type robEntry struct {
	inst   Inst
	seq    uint64
	state  uint8
	doneAt uint64 // valid when state == stExec
}

// Core is the cycle-level out-of-order processor model. Create one with
// New and advance it one cycle at a time with Step.
type Core struct {
	cfg Config
	src Source

	cycle   uint64
	seqNext uint64 // sequence number of the next dispatched instruction

	rob      []robEntry
	head     int // index of the oldest entry
	robCount int

	fq      []Inst // fetch queue ring
	fqHead  int
	fqCount int
	srcDone bool

	iqCount  int // dispatched but unissued
	lsqCount int // loads+stores in flight

	// Branch-redirect state: dispatch and fetch stop behind a
	// mispredicted branch until it resolves plus the redirect penalty.
	blockedOnBranch bool
	blockedSeq      uint64
	redirectClearAt uint64

	committed uint64
	fetchedN  uint64

	// classAmps are the a-priori per-class current estimates used when a
	// Throttle carries an issue-current budget (pipeline damping [14]).
	classAmps [NumClasses]float64
}

// New returns a core executing instructions from src under configuration
// cfg. It panics if cfg is invalid, since a Config mistake is a programming
// error, not a runtime condition.
func New(cfg Config, src Source) *Core {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("cpu.New: %v", err))
	}
	return &Core{
		cfg: cfg,
		src: src,
		rob: make([]robEntry, cfg.ROBSize),
		fq:  make([]Inst, cfg.FetchQueue),
	}
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Cycle returns the number of cycles simulated so far.
func (c *Core) Cycle() uint64 { return c.cycle }

// Committed returns the number of instructions retired so far.
func (c *Core) Committed() uint64 { return c.committed }

// Fetched returns the number of instructions fetched so far.
func (c *Core) Fetched() uint64 { return c.fetchedN }

// IPC returns committed instructions per cycle so far.
func (c *Core) IPC() float64 {
	if c.cycle == 0 {
		return 0
	}
	return float64(c.committed) / float64(c.cycle)
}

// Done reports whether the instruction stream is exhausted and the
// pipeline has fully drained.
func (c *Core) Done() bool {
	return c.srcDone && c.fqCount == 0 && c.robCount == 0
}

// SetClassCurrentEstimates installs the per-class issue-current estimates
// (amps) consulted when a throttle carries an issue-current budget.
func (c *Core) SetClassCurrentEstimates(est [NumClasses]float64) {
	c.classAmps = est
}

// ClassCurrentEstimates returns the installed per-class estimates.
func (c *Core) ClassCurrentEstimates() [NumClasses]float64 { return c.classAmps }

// oldestSeq returns the sequence number of the oldest un-retired
// instruction; producers older than this have retired and their results
// are available.
func (c *Core) oldestSeq() uint64 { return c.seqNext - uint64(c.robCount) }

// ready reports whether the entry's operands are available this cycle.
func (c *Core) ready(e *robEntry) bool {
	return c.operandReady(e.seq, e.inst.SrcDist1) && c.operandReady(e.seq, e.inst.SrcDist2)
}

func (c *Core) operandReady(seq uint64, dist uint16) bool {
	if dist == 0 {
		return true
	}
	d := uint64(dist)
	if d > seq { // producer predates the stream
		return true
	}
	p := seq - d
	if p < c.oldestSeq() {
		return true // producer has retired
	}
	pe := &c.rob[p%uint64(c.cfg.ROBSize)]
	return pe.state == stExec && pe.doneAt <= c.cycle
}

// Step simulates one clock cycle under throttle t and returns the cycle's
// activity. Stages run in reverse pipeline order (commit, issue, dispatch,
// fetch) so intra-cycle structural hazards resolve naturally.
func (c *Core) Step(t Throttle) Activity {
	var act Activity
	ports := t.cachePorts(c.cfg)
	portsUsed := 0

	c.commit(&act, ports, &portsUsed)
	c.issue(&act, t, ports, &portsUsed)
	c.dispatch(&act)
	c.fetch(&act, t)

	act.IQOccupancy = c.iqCount
	act.ROBOccupancy = c.robCount
	c.cycle++
	return act
}

func (c *Core) commit(act *Activity, ports int, portsUsed *int) {
	for act.Committed < c.cfg.CommitWidth && c.robCount > 0 {
		e := &c.rob[c.head]
		if e.state != stExec || e.doneAt > c.cycle {
			break
		}
		if e.inst.Class == Store {
			if *portsUsed >= ports {
				break // store write needs a cache port
			}
			*portsUsed++
			c.countMemAccess(act, e.inst.Mem)
		}
		if e.inst.Class == Load || e.inst.Class == Store {
			c.lsqCount--
		}
		c.head = (c.head + 1) % c.cfg.ROBSize
		c.robCount--
		c.committed++
		act.Committed++
	}
}

func (c *Core) issue(act *Activity, t Throttle, ports int, portsUsed *int) {
	width := t.issueWidth(c.cfg)
	if width == 0 {
		return
	}
	var unitsUsed [NumClasses]int
	budget := t.IssueCurrentBudget
	idx := c.head
	waitingSeen := 0
	for scanned := 0; scanned < c.robCount && act.IssuedTotal < width && waitingSeen < c.iqCount+act.IssuedTotal; scanned++ {
		e := &c.rob[idx]
		idx = (idx + 1) % c.cfg.ROBSize
		if e.state != stWaiting {
			continue
		}
		waitingSeen++
		if !c.ready(e) {
			continue
		}
		cl := e.inst.Class
		if unitsUsed[cl] >= c.cfg.units(cl) {
			continue
		}
		if cl == Load && *portsUsed >= ports {
			continue
		}
		if t.budgeted() {
			cost := c.classAmps[cl]
			if cost > budget {
				continue
			}
			budget -= cost
		}
		unitsUsed[cl]++
		if cl == Load {
			*portsUsed++
			c.countMemAccess(act, e.inst.Mem)
		}
		e.state = stExec
		e.doneAt = c.cycle + uint64(c.cfg.latency(e.inst))
		c.iqCount--
		act.Issued[cl]++
		act.IssuedTotal++
		if cl == Branch {
			act.BranchesResolved++
			if e.inst.Mispredicted && c.blockedOnBranch && e.seq == c.blockedSeq {
				c.blockedOnBranch = false
				c.redirectClearAt = e.doneAt + uint64(c.cfg.MispredictPenalty)
			}
		}
	}
}

func (c *Core) countMemAccess(act *Activity, lvl MemLevel) {
	act.L1D++
	switch lvl {
	case MemL2:
		act.L2++
	case MemMain:
		act.L2++
		act.Mem++
	}
}

func (c *Core) frontendBlocked() bool {
	return c.blockedOnBranch || c.cycle < c.redirectClearAt
}

func (c *Core) dispatch(act *Activity) {
	for act.Dispatched < c.cfg.DecodeWidth &&
		c.fqCount > 0 &&
		c.robCount < c.cfg.ROBSize &&
		c.iqCount < c.cfg.IQSize &&
		!c.frontendBlocked() {

		in := c.fq[c.fqHead]
		if (in.Class == Load || in.Class == Store) && c.lsqCount >= c.cfg.LSQSize {
			break
		}
		c.fqHead = (c.fqHead + 1) % c.cfg.FetchQueue
		c.fqCount--

		tail := (c.head + c.robCount) % c.cfg.ROBSize
		c.rob[tail] = robEntry{inst: in, seq: c.seqNext, state: stWaiting}
		c.seqNext++
		c.robCount++
		c.iqCount++
		if in.Class == Load || in.Class == Store {
			c.lsqCount++
		}
		act.Dispatched++
		if in.Class == Branch && in.Mispredicted {
			c.blockedOnBranch = true
			c.blockedSeq = c.seqNext - 1
			break // nothing younger dispatches until redirect
		}
	}
}

func (c *Core) fetch(act *Activity, t Throttle) {
	if t.StallFetch || c.srcDone || c.frontendBlocked() {
		return
	}
	for act.Fetched < c.cfg.FetchWidth && c.fqCount < c.cfg.FetchQueue {
		in, ok := c.src.Next()
		if !ok {
			c.srcDone = true
			break
		}
		tail := (c.fqHead + c.fqCount) % c.cfg.FetchQueue
		c.fq[tail] = in
		c.fqCount++
		c.fetchedN++
		act.Fetched++
		act.L1I++
	}
}

// Run advances the core until the stream drains or maxCycles elapse,
// discarding per-cycle activity. It returns the number of cycles run.
// It is a convenience for tests and calibration; simulations that need
// power coupling call Step directly.
func (c *Core) Run(maxCycles uint64, t Throttle) uint64 {
	start := c.cycle
	for !c.Done() && c.cycle-start < maxCycles {
		c.Step(t)
	}
	return c.cycle - start
}
