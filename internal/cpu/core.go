package cpu

import (
	"fmt"
	"math/bits"
)

// Activity reports what the core did in one cycle. The power model turns
// an Activity into energy and current; the techniques read the structural
// occupancies.
type Activity struct {
	Fetched    int // instructions fetched
	Dispatched int // instructions renamed/dispatched
	Committed  int // instructions retired

	Issued      [NumClasses]int // instructions issued, by class
	IssuedTotal int

	L1I int // L1 instruction-cache accesses (instruction granularity)
	L1D int // L1 data-cache accesses started (loads at issue, stores at commit)
	L2  int // L2 accesses started
	Mem int // main-memory accesses started

	BranchesResolved int

	IQOccupancy  int // instructions waiting to issue at end of cycle
	ROBOccupancy int // reorder-buffer occupancy at end of cycle
}

// instruction lifecycle states inside the ROB.
const (
	stWaiting uint8 = iota // dispatched, waiting for operands or a unit
	stExec                 // issued; result ready at doneAt
)

// noLink terminates the intrusive dependent/wheel lists.
const noLink int32 = -1

// robEntry is one in-flight instruction. Scheduling is event-driven: the
// entry carries its unresolved-operand count, an intrusive list of the
// entries waiting on its result (depHead, with per-operand next links in
// the waiters), and a link onto the completion timing wheel.
type robEntry struct {
	inst    Inst
	seq     uint64
	state   uint8
	pending uint8  // unresolved source operands
	doneAt  uint64 // valid when state == stExec

	// depHead is the first waiter on this entry's result, encoded as
	// slot<<1|operand; depNext are this entry's own next-links, one per
	// source operand, threading it through its producers' waiter lists.
	depHead   int32
	depNext   [2]int32
	wheelNext int32 // next entry completing in the same wheel bucket
}

// Core is the cycle-level out-of-order processor model. Create one with
// New and advance it one cycle at a time with Step.
//
// The scheduler separates wakeup from select like real issue logic: an
// instruction's unresolved operands are counted once at dispatch and each
// is resolved exactly once, when its producer's completion cycle arrives
// on a timing wheel. Ready instructions sit in a seq-ordered bitmap that
// issue selects from oldest-first, so per-cycle results are bit-identical
// to a full oldest-first window rescan (the scan survives as a reference
// implementation in the tests) at a fraction of the cost.
type Core struct {
	cfg Config
	src Source
	// bulk is src's BulkSource extension when it has one (materialized
	// traces do), letting fetch fill the queue without per-instruction
	// interface calls.
	bulk BulkSource

	cycle   uint64
	seqNext uint64 // sequence number of the next dispatched instruction

	// rob capacity is cfg.ROBSize rounded up to a power of two so an
	// entry's slot is seq&robMask; occupancy is still capped at the
	// configured ROBSize.
	rob      []robEntry
	robMask  uint64
	robCount int

	// ready is a bitmap over ROB slots of waiting instructions whose
	// operands have all resolved; issue iterates it in seq order.
	ready      []uint64
	readyCount int

	// wheel buckets in-flight completions by doneAt; sized past the
	// longest latency so buckets never alias.
	wheel     []int32
	wheelMask uint64

	// unitCap caches Config.units per class for the select loop.
	unitCap [NumClasses]int
	// classLat and memLat cache Config.latency's answers so the issue
	// loop is a table load instead of a two-level switch.
	classLat [NumClasses]uint64
	memLat   [3]uint64

	fq      []Inst // fetch queue ring
	fqHead  int
	fqCount int
	srcDone bool

	iqCount  int // dispatched but unissued
	lsqCount int // loads+stores in flight

	// Branch-redirect state: dispatch and fetch stop behind a
	// mispredicted branch until it resolves plus the redirect penalty.
	blockedOnBranch bool
	blockedSeq      uint64
	redirectClearAt uint64

	committed uint64
	fetchedN  uint64

	// classAmps are the a-priori per-class current estimates used when a
	// Throttle carries an issue-current budget (pipeline damping [14]).
	classAmps [NumClasses]float64
}

// ceilPow2 returns the smallest power of two ≥ n (n ≥ 1).
func ceilPow2(n int) int {
	return 1 << bits.Len(uint(n-1))
}

// New returns a core executing instructions from src under configuration
// cfg. It panics if cfg is invalid, since a Config mistake is a programming
// error, not a runtime condition.
func New(cfg Config, src Source) *Core {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("cpu.New: %v", err))
	}
	robCap := ceilPow2(cfg.ROBSize)
	maxLat := cfg.MemLat // Validate enforces L1Lat ≤ L2Lat ≤ MemLat
	for _, l := range []int{cfg.IntALULat, cfg.IntMulLat, cfg.FPALULat, cfg.FPMulLat} {
		if l > maxLat {
			maxLat = l
		}
	}
	wheelLen := ceilPow2(maxLat + 1)
	c := &Core{
		cfg:       cfg,
		src:       src,
		rob:       make([]robEntry, robCap),
		robMask:   uint64(robCap - 1),
		ready:     make([]uint64, (robCap+63)/64),
		wheel:     make([]int32, wheelLen),
		wheelMask: uint64(wheelLen - 1),
		fq:        make([]Inst, cfg.FetchQueue),
	}
	if b, ok := src.(BulkSource); ok {
		c.bulk = b
	}
	for i := range c.wheel {
		c.wheel[i] = noLink
	}
	for cl := Class(0); cl < NumClasses; cl++ {
		c.unitCap[cl] = cfg.units(cl)
		c.classLat[cl] = uint64(cfg.latency(Inst{Class: cl}))
	}
	for _, lvl := range []MemLevel{MemL1, MemL2, MemMain} {
		c.memLat[lvl] = uint64(cfg.latency(Inst{Class: Load, Mem: lvl}))
	}
	return c
}

// Fork returns a deep copy of the core that can be stepped
// independently of the original: identical throttle sequences applied to
// both produce bit-identical Activity streams (the contract
// sim.Machine.Fork builds on). The instruction source must implement
// ForkableSource so the clone continues the stream from the same
// position; Fork returns an error otherwise.
func (c *Core) Fork() (*Core, error) {
	fs, ok := c.src.(ForkableSource)
	if !ok {
		return nil, fmt.Errorf("cpu: source %T is not forkable", c.src)
	}
	f := *c
	f.src = fs.Fork()
	f.bulk = nil
	if b, ok := f.src.(BulkSource); ok {
		f.bulk = b
	}
	f.rob = append([]robEntry(nil), c.rob...)
	f.ready = append([]uint64(nil), c.ready...)
	f.wheel = append([]int32(nil), c.wheel...)
	f.fq = append([]Inst(nil), c.fq...)
	return &f, nil
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Cycle returns the number of cycles simulated so far.
func (c *Core) Cycle() uint64 { return c.cycle }

// Committed returns the number of instructions retired so far.
func (c *Core) Committed() uint64 { return c.committed }

// Fetched returns the number of instructions fetched so far.
func (c *Core) Fetched() uint64 { return c.fetchedN }

// IPC returns committed instructions per cycle so far.
func (c *Core) IPC() float64 {
	if c.cycle == 0 {
		return 0
	}
	return float64(c.committed) / float64(c.cycle)
}

// Done reports whether the instruction stream is exhausted and the
// pipeline has fully drained.
func (c *Core) Done() bool {
	return c.srcDone && c.fqCount == 0 && c.robCount == 0
}

// SetClassCurrentEstimates installs the per-class issue-current estimates
// (amps) consulted when a throttle carries an issue-current budget.
func (c *Core) SetClassCurrentEstimates(est [NumClasses]float64) {
	c.classAmps = est
}

// ClassCurrentEstimates returns the installed per-class estimates.
func (c *Core) ClassCurrentEstimates() [NumClasses]float64 { return c.classAmps }

// oldestSeq returns the sequence number of the oldest un-retired
// instruction; producers older than this have retired and their results
// are available.
func (c *Core) oldestSeq() uint64 { return c.seqNext - uint64(c.robCount) }

func (c *Core) setReady(slot int) {
	c.ready[slot>>6] |= 1 << uint(slot&63)
	c.readyCount++
}

func (c *Core) clearReady(slot int) {
	c.ready[slot>>6] &^= 1 << uint(slot&63)
	c.readyCount--
}

// Step simulates one clock cycle under throttle t and returns the cycle's
// activity. It is a convenience wrapper over StepInto.
func (c *Core) Step(t Throttle) Activity {
	var act Activity
	c.StepInto(t, &act)
	return act
}

// StepInto simulates one clock cycle under throttle t, writing the cycle's
// activity into *act (which it resets first). Passing the Activity by
// pointer keeps the per-cycle hot path free of large struct copies. Stages
// run in reverse pipeline order (commit, issue, dispatch, fetch) so
// intra-cycle structural hazards resolve naturally.
func (c *Core) StepInto(t Throttle, act *Activity) {
	*act = Activity{}
	c.wake()
	ports := t.cachePorts(c.cfg)
	portsUsed := 0

	c.commit(act, ports, &portsUsed)
	c.issue(act, &t, ports, &portsUsed)
	c.dispatch(act)
	c.fetch(act, t)

	act.IQOccupancy = c.iqCount
	act.ROBOccupancy = c.robCount
	c.cycle++
}

// wake drains this cycle's completion bucket: every instruction whose
// result arrives now walks its waiter list, decrementing each waiter's
// unresolved-operand count and marking it ready when the count hits zero.
func (c *Core) wake() {
	b := &c.wheel[c.cycle&c.wheelMask]
	s := *b
	if s == noLink {
		return
	}
	*b = noLink
	for s != noLink {
		e := &c.rob[s]
		s = e.wheelNext
		e.wheelNext = noLink
		tag := e.depHead
		e.depHead = noLink
		for tag != noLink {
			de := &c.rob[tag>>1]
			next := de.depNext[tag&1]
			de.depNext[tag&1] = noLink
			de.pending--
			if de.pending == 0 {
				c.setReady(int(tag >> 1))
			}
			tag = next
		}
	}
}

func (c *Core) commit(act *Activity, ports int, portsUsed *int) {
	for act.Committed < c.cfg.CommitWidth && c.robCount > 0 {
		e := &c.rob[c.oldestSeq()&c.robMask]
		if e.state != stExec || e.doneAt > c.cycle {
			break
		}
		if e.inst.Class == Store {
			if *portsUsed >= ports {
				break // store write needs a cache port
			}
			*portsUsed++
			c.countMemAccess(act, e.inst.Mem)
		}
		if e.inst.Class == Load || e.inst.Class == Store {
			c.lsqCount--
		}
		c.robCount--
		c.committed++
		act.Committed++
	}
}

// issue selects from the ready bitmap oldest-first, applying the same
// width, unit, port, and current-budget constraints (with skip-and-retry)
// as the reference scan.
func (c *Core) issue(act *Activity, t *Throttle, ports int, portsUsed *int) {
	if c.readyCount == 0 {
		return
	}
	width := t.issueWidth(c.cfg)
	if width == 0 {
		return
	}
	var unitsUsed [NumClasses]int
	budget := t.IssueCurrentBudget
	budgeted := t.budgeted()

	// Walk the bitmap circularly from the oldest entry's slot: slots
	// ascend in seq order within the window, so this is oldest-first.
	remaining := c.readyCount
	start := int(c.oldestSeq() & c.robMask)
	nw := len(c.ready)
	startWord := start >> 6
	startBit := uint(start & 63)
	for i := 0; i <= nw; i++ {
		wi := startWord + i
		if wi >= nw {
			wi -= nw
		}
		w := c.ready[wi]
		if i == 0 {
			w &= ^uint64(0) << startBit
		} else if i == nw {
			w &= (uint64(1) << startBit) - 1
		}
		for w != 0 {
			slot := wi<<6 | bits.TrailingZeros64(w)
			w &= w - 1
			remaining--
			e := &c.rob[slot]
			cl := e.inst.Class
			if unitsUsed[cl] >= c.unitCap[cl] {
				continue
			}
			if cl == Load && *portsUsed >= ports {
				continue
			}
			if budgeted {
				cost := c.classAmps[cl]
				if cost > budget {
					continue
				}
				budget -= cost
			}
			unitsUsed[cl]++
			if cl == Load {
				*portsUsed++
				c.countMemAccess(act, e.inst.Mem)
			}
			e.state = stExec
			lat := c.classLat[cl]
			if cl == Load {
				lat = c.memLat[e.inst.Mem]
			}
			e.doneAt = c.cycle + lat
			wb := &c.wheel[e.doneAt&c.wheelMask]
			e.wheelNext = *wb
			*wb = int32(slot)
			c.clearReady(slot)
			c.iqCount--
			act.Issued[cl]++
			act.IssuedTotal++
			if cl == Branch {
				act.BranchesResolved++
				if e.inst.Mispredicted && c.blockedOnBranch && e.seq == c.blockedSeq {
					c.blockedOnBranch = false
					c.redirectClearAt = e.doneAt + uint64(c.cfg.MispredictPenalty)
				}
			}
			if act.IssuedTotal >= width {
				return
			}
		}
		if remaining == 0 {
			return
		}
	}
}

func (c *Core) countMemAccess(act *Activity, lvl MemLevel) {
	act.L1D++
	switch lvl {
	case MemL2:
		act.L2++
	case MemMain:
		act.L2++
		act.Mem++
	}
}

func (c *Core) frontendBlocked() bool {
	return c.blockedOnBranch || c.cycle < c.redirectClearAt
}

func (c *Core) dispatch(act *Activity) {
	for act.Dispatched < c.cfg.DecodeWidth &&
		c.fqCount > 0 &&
		c.robCount < c.cfg.ROBSize &&
		c.iqCount < c.cfg.IQSize &&
		!c.frontendBlocked() {

		in := c.fq[c.fqHead]
		if (in.Class == Load || in.Class == Store) && c.lsqCount >= c.cfg.LSQSize {
			break
		}
		c.fqHead++
		if c.fqHead == c.cfg.FetchQueue {
			c.fqHead = 0
		}
		c.fqCount--

		seq := c.seqNext
		slot := int(seq & c.robMask)
		e := &c.rob[slot]
		*e = robEntry{
			inst:    in,
			seq:     seq,
			state:   stWaiting,
			depHead: noLink,
			depNext: [2]int32{noLink, noLink},
		}
		e.wheelNext = noLink
		c.seqNext++
		c.robCount++
		c.iqCount++
		pending := c.linkOperand(e, slot, 0, seq, in.SrcDist1) +
			c.linkOperand(e, slot, 1, seq, in.SrcDist2)
		e.pending = uint8(pending)
		if pending == 0 {
			c.setReady(slot)
		}
		if in.Class == Load || in.Class == Store {
			c.lsqCount++
		}
		act.Dispatched++
		if in.Class == Branch && in.Mispredicted {
			c.blockedOnBranch = true
			c.blockedSeq = seq
			break // nothing younger dispatches until redirect
		}
	}
}

// linkOperand resolves one source operand of the entry being dispatched.
// It returns 0 if the operand is already available (no producer, producer
// retired, or producer completed) and 1 if it is pending, in which case
// the entry is threaded onto the producer's waiter list for wakeup at the
// producer's completion cycle.
func (c *Core) linkOperand(e *robEntry, slot, op int, seq uint64, dist uint16) int {
	if dist == 0 {
		return 0
	}
	d := uint64(dist)
	if d > seq {
		return 0 // producer predates the stream
	}
	p := seq - d
	if p < c.oldestSeq() {
		return 0 // producer has retired
	}
	pe := &c.rob[p&c.robMask]
	if pe.state == stExec && pe.doneAt <= c.cycle {
		return 0 // producer completed this cycle or earlier
	}
	e.depNext[op] = pe.depHead
	pe.depHead = int32(slot<<1 | op)
	return 1
}

func (c *Core) fetch(act *Activity, t Throttle) {
	if t.StallFetch || c.srcDone || c.frontendBlocked() {
		return
	}
	if c.bulk != nil {
		// The scalar loop below pulls exactly min(width-room) instructions
		// unless the stream ends first, so the whole fetch is one or two
		// contiguous ring fills. A short delivery is exactly the condition
		// under which the scalar loop would have seen ok=false.
		want := c.cfg.FetchWidth - act.Fetched
		if room := c.cfg.FetchQueue - c.fqCount; room < want {
			want = room
		}
		if want <= 0 {
			return
		}
		tail := c.fqHead + c.fqCount
		if tail >= c.cfg.FetchQueue {
			tail -= c.cfg.FetchQueue
		}
		n1 := want
		if wrap := c.cfg.FetchQueue - tail; n1 > wrap {
			n1 = wrap
		}
		got := c.bulk.NextN(c.fq[tail : tail+n1])
		if got == n1 && want > n1 {
			got += c.bulk.NextN(c.fq[:want-n1])
		}
		if got < want {
			c.srcDone = true
		}
		c.fqCount += got
		c.fetchedN += uint64(got)
		act.Fetched += got
		act.L1I += got
		return
	}
	for act.Fetched < c.cfg.FetchWidth && c.fqCount < c.cfg.FetchQueue {
		in, ok := c.src.Next()
		if !ok {
			c.srcDone = true
			break
		}
		tail := c.fqHead + c.fqCount
		if tail >= c.cfg.FetchQueue {
			tail -= c.cfg.FetchQueue
		}
		c.fq[tail] = in
		c.fqCount++
		c.fetchedN++
		act.Fetched++
		act.L1I++
	}
}

// Run advances the core until the stream drains or maxCycles elapse,
// discarding per-cycle activity. It returns the number of cycles run.
// It is a convenience for tests and calibration; simulations that need
// power coupling call Step directly.
func (c *Core) Run(maxCycles uint64, t Throttle) uint64 {
	start := c.cycle
	var act Activity
	for !c.Done() && c.cycle-start < maxCycles {
		c.StepInto(t, &act)
	}
	return c.cycle - start
}
