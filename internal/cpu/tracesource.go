package cpu

import "fmt"

// Instruction streams replayed from a materialized trace store each
// instruction as one packed meta byte plus two producer distances (5
// bytes per instruction in struct-of-arrays form). The meta byte layout
// is:
//
//	bits 0-2  Class      (NumClasses = 7 fits in 3 bits)
//	bits 3-4  MemLevel   (MemMain = 2 fits in 2 bits)
//	bit  5    Mispredicted
const (
	metaClassBits  = 3
	metaClassMask  = 1<<metaClassBits - 1
	metaMemShift   = metaClassBits
	metaMemMask    = 3
	metaMispredict = 1 << 5
)

// PackMeta encodes an instruction's class, memory level, and
// misprediction flag into one trace meta byte.
func PackMeta(in Inst) uint8 {
	m := uint8(in.Class) | uint8(in.Mem)<<metaMemShift
	if in.Mispredicted {
		m |= metaMispredict
	}
	return m
}

// UnpackMeta decodes a trace meta byte.
func UnpackMeta(m uint8) (Class, MemLevel, bool) {
	return Class(m & metaClassMask), MemLevel(m >> metaMemShift & metaMemMask), m&metaMispredict != 0
}

// TraceSource replays a materialized instruction trace. It implements
// Source with a Next that is an index increment and three slice loads —
// no branch-heavy RNG sampling — so replaying a stored workload costs a
// fraction of generating it (see BenchmarkGeneratorNext vs
// BenchmarkTraceSourceNext).
//
// The backing slices are shared, never written: any number of
// TraceSources may replay the same trace concurrently.
type TraceSource struct {
	meta       []uint8
	src1, src2 []uint16
	pos        int
}

// NewTraceSource returns a source replaying the given packed trace. The
// three slices are parallel; it panics on a length mismatch, since that
// is a corrupted trace, not a runtime condition.
func NewTraceSource(meta []uint8, src1, src2 []uint16) *TraceSource {
	if len(src1) != len(meta) || len(src2) != len(meta) {
		panic(fmt.Sprintf("cpu.NewTraceSource: mismatched trace slices (%d meta, %d src1, %d src2)",
			len(meta), len(src1), len(src2)))
	}
	return &TraceSource{meta: meta, src1: src1, src2: src2}
}

// Next implements Source.
func (t *TraceSource) Next() (Inst, bool) {
	i := t.pos
	if i >= len(t.meta) {
		return Inst{}, false
	}
	t.pos = i + 1
	m := t.meta[i]
	return Inst{
		Class:        Class(m & metaClassMask),
		Mem:          MemLevel(m >> metaMemShift & metaMemMask),
		Mispredicted: m&metaMispredict != 0,
		SrcDist1:     t.src1[i],
		SrcDist2:     t.src2[i],
	}, true
}

// NextN implements BulkSource: it decodes a run of up to len(dst)
// instructions with plain slice indexing, no per-instruction interface
// dispatch. The decoded instructions are identical to len(dst)
// consecutive Next calls.
func (t *TraceSource) NextN(dst []Inst) int {
	i := t.pos
	n := len(t.meta) - i
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	meta, src1, src2 := t.meta[i:i+n], t.src1[i:i+n], t.src2[i:i+n]
	for k := 0; k < n; k++ {
		m := meta[k]
		dst[k] = Inst{
			Class:        Class(m & metaClassMask),
			Mem:          MemLevel(m >> metaMemShift & metaMemMask),
			Mispredicted: m&metaMispredict != 0,
			SrcDist1:     src1[k],
			SrcDist2:     src2[k],
		}
	}
	t.pos = i + n
	return n
}

// Fork implements ForkableSource: the backing trace slices are shared
// read-only, so forking is a cursor copy.
func (t *TraceSource) Fork() Source {
	c := *t
	return &c
}

// Len returns the number of instructions in the trace.
func (t *TraceSource) Len() int { return len(t.meta) }

// Reset rewinds the cursor for another replay.
func (t *TraceSource) Reset() { t.pos = 0 }
