package cpu

import (
	"fmt"
	"testing"
)

// throttleSchedule names a deterministic per-cycle throttle sequence.
type throttleSchedule struct {
	name string
	at   func(cycle uint64) Throttle
}

// diffSchedules covers every throttle shape the techniques exercise:
// unrestricted, halved width with one port, single-wide, issue-current
// budgets (including skip-and-retry and zero-budget stalls), full issue
// stalls, fetch stalls, and phase mixtures of all of them.
func diffSchedules(amps [NumClasses]float64) []throttleSchedule {
	return []throttleSchedule{
		{"unlimited", func(uint64) Throttle { return Unlimited }},
		{"halved", func(uint64) Throttle {
			return Throttle{IssueWidth: 4, CachePorts: 1, IssueCurrentBudget: -1}
		}},
		{"single", func(uint64) Throttle {
			return Throttle{IssueWidth: 1, CachePorts: 1, IssueCurrentBudget: -1}
		}},
		{"budgeted", func(c uint64) Throttle {
			// Swings the budget so some cycles fit several cheap ops
			// but not an expensive one (skip-and-retry) and some fit
			// nothing at all.
			return Throttle{IssueCurrentBudget: amps[IntALU] * float64(c%5)}
		}},
		{"stall-issue", func(c uint64) Throttle {
			if c%7 < 3 {
				return Throttle{StallIssue: true, IssueCurrentBudget: -1}
			}
			return Unlimited
		}},
		{"stall-fetch", func(c uint64) Throttle {
			if c%11 < 4 {
				return Throttle{StallFetch: true, IssueCurrentBudget: -1}
			}
			return Unlimited
		}},
		{"mixed", func(c uint64) Throttle {
			switch (c / 64) % 4 {
			case 0:
				return Unlimited
			case 1:
				return Throttle{IssueWidth: 4, CachePorts: 1, IssueCurrentBudget: -1}
			case 2:
				return Throttle{StallIssue: true, StallFetch: c%2 == 0, IssueCurrentBudget: -1}
			default:
				return Throttle{IssueCurrentBudget: amps[IntALU] * 2.5}
			}
		}},
	}
}

// diffConfigs exercises the power-of-two ROB rounding: the Table 1
// configuration (already a power of two), a non-power-of-two window, and
// a tiny machine where every structure is tight.
func diffConfigs() []Config {
	table1 := DefaultConfig()

	odd := DefaultConfig()
	odd.ROBSize = 96
	odd.IQSize = 37
	odd.LSQSize = 41
	odd.FetchQueue = 13

	tiny := DefaultConfig()
	tiny.ROBSize = 24
	tiny.IQSize = 9
	tiny.LSQSize = 11
	tiny.FetchQueue = 5
	tiny.IssueWidth = 3
	tiny.CommitWidth = 3
	tiny.IntALUs = 2
	tiny.CachePorts = 1

	return []Config{table1, odd, tiny}
}

// TestSchedulerMatchesScanReference: the event-driven scheduler must
// produce a bit-identical per-cycle Activity stream to the scan-based
// reference core on randomized workloads under every throttle schedule.
func TestSchedulerMatchesScanReference(t *testing.T) {
	var amps [NumClasses]float64
	for cl := Class(0); cl < NumClasses; cl++ {
		amps[cl] = 1 + float64(cl)*0.5
	}
	for ci, cfg := range diffConfigs() {
		for _, sched := range diffSchedules(amps) {
			t.Run(fmt.Sprintf("cfg%d/%s", ci, sched.name), func(t *testing.T) {
				for seed := uint64(1); seed <= 8; seed++ {
					n := 400 + int(seed%600)
					stream := randomStream(seed*131 + uint64(ci), n)
					ev := New(cfg, NewSliceSource(append([]Inst(nil), stream...)))
					ref := newScanCore(cfg, NewSliceSource(append([]Inst(nil), stream...)))
					ev.SetClassCurrentEstimates(amps)
					ref.SetClassCurrentEstimates(amps)

					limit := uint64(n)*uint64(cfg.MemLat+cfg.MispredictPenalty+16) + 4096
					for cyc := uint64(0); cyc < limit; cyc++ {
						if ev.Done() && ref.Done() {
							break
						}
						th := sched.at(cyc)
						got := ev.Step(th)
						want := ref.Step(th)
						if got != want {
							t.Fatalf("seed %d cycle %d: activity diverged\n got %+v\nwant %+v",
								seed, cyc, got, want)
						}
					}
					if !ev.Done() || !ref.Done() {
						t.Fatalf("seed %d: stream did not drain (event done=%v, scan done=%v)",
							seed, ev.Done(), ref.Done())
					}
					if ev.Committed() != uint64(n) || ref.Committed() != uint64(n) {
						t.Fatalf("seed %d: committed %d/%d, want %d",
							seed, ev.Committed(), ref.Committed(), n)
					}
				}
			})
		}
	}
}

// TestSchedulerMatchesScanLongRun: one long random stream per config under
// the mixed schedule, as a deeper soak than the per-schedule cases.
func TestSchedulerMatchesScanLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	var amps [NumClasses]float64
	for cl := Class(0); cl < NumClasses; cl++ {
		amps[cl] = 0.8 + float64(cl)*0.7
	}
	sched := diffSchedules(amps)[6] // mixed
	for ci, cfg := range diffConfigs() {
		stream := randomStream(977+uint64(ci), 30_000)
		ev := New(cfg, NewSliceSource(append([]Inst(nil), stream...)))
		ref := newScanCore(cfg, NewSliceSource(append([]Inst(nil), stream...)))
		ev.SetClassCurrentEstimates(amps)
		ref.SetClassCurrentEstimates(amps)
		for cyc := uint64(0); !ev.Done() || !ref.Done(); cyc++ {
			th := sched.at(cyc)
			got := ev.Step(th)
			want := ref.Step(th)
			if got != want {
				t.Fatalf("cfg %d cycle %d: activity diverged\n got %+v\nwant %+v", ci, cyc, got, want)
			}
			if cyc > 10_000_000 {
				t.Fatal("livelock")
			}
		}
	}
}

// TestCeilPow2 pins the mask-capacity helper.
func TestCeilPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 24: 32, 64: 64, 96: 128, 128: 128, 129: 256}
	for n, want := range cases {
		if got := ceilPow2(n); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", n, got, want)
		}
	}
}
