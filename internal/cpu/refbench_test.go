package cpu

import "testing"

// The paired benchmarks below run the frozen scan-based reference
// (scanref_test.go) and the event-driven scheduler on the same repeated
// random stream, so the scheduler rewrite's speedup stays measurable
// apples-to-apples:
//
//	go test -run '^$' -bench 'ScanReference|EventScheduler' ./internal/cpu

func BenchmarkScanReference(b *testing.B) {
	stream := randomStream(7, 4096)
	c := newScanCore(DefaultConfig(), NewRepeatSource(stream, 1<<62))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Step(Unlimited)
	}
}

func BenchmarkEventScheduler(b *testing.B) {
	stream := randomStream(7, 4096)
	c := New(DefaultConfig(), NewRepeatSource(stream, 1<<62))
	var act Activity
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.StepInto(Unlimited, &act)
	}
}
