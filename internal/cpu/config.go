package cpu

import "fmt"

// Config holds the structural parameters of the core. The zero value is
// not usable; start from DefaultConfig.
type Config struct {
	FetchWidth  int // instructions fetched per cycle
	DecodeWidth int // instructions renamed/dispatched per cycle
	IssueWidth  int // instructions issued per cycle (throttleable)
	CommitWidth int // instructions retired per cycle

	ROBSize int // reorder buffer entries
	LSQSize int // load/store queue entries
	IQSize  int // issue-queue (waiting, unissued) capacity

	// Functional-unit counts; each unit accepts one operation per cycle
	// (fully pipelined).
	IntALUs, IntMuls, FPALUs, FPMuls int

	CachePorts int // L1 data cache ports (throttleable)

	// Latencies in cycles. Memory latencies are end-to-end load-use
	// latencies for the respective hierarchy level.
	IntALULat, IntMulLat, FPALULat, FPMulLat int
	L1Lat, L2Lat, MemLat                     int

	// MispredictPenalty is the number of cycles after branch resolution
	// before fetch resumes on the correct path.
	MispredictPenalty int

	FetchQueue int // fetch-buffer capacity
}

// DefaultConfig returns the Table 1 configuration: 8-wide out-of-order
// issue, 128-entry ROB and LSQ, 8+2 integer and 4+2 floating-point units,
// 2-cycle 2-port L1, 12-cycle L2, 80-cycle memory.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        8,
		DecodeWidth:       8,
		IssueWidth:        8,
		CommitWidth:       8,
		ROBSize:           128,
		LSQSize:           128,
		IQSize:            64,
		IntALUs:           8,
		IntMuls:           2,
		FPALUs:            4,
		FPMuls:            2,
		CachePorts:        2,
		IntALULat:         1,
		IntMulLat:         3,
		FPALULat:          2,
		FPMulLat:          4,
		L1Lat:             2,
		L2Lat:             12,
		MemLat:            80,
		MispredictPenalty: 7,
		FetchQueue:        32,
	}
}

// Validate reports whether the configuration is self-consistent.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth <= 0 || c.DecodeWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return fmt.Errorf("cpu: pipeline widths must be positive: %+v", c)
	case c.ROBSize <= 0 || c.LSQSize <= 0 || c.IQSize <= 0 || c.FetchQueue <= 0:
		return fmt.Errorf("cpu: queue sizes must be positive: %+v", c)
	case c.IntALUs <= 0 || c.IntMuls <= 0 || c.FPALUs <= 0 || c.FPMuls <= 0:
		return fmt.Errorf("cpu: functional-unit counts must be positive: %+v", c)
	case c.CachePorts <= 0:
		return fmt.Errorf("cpu: cache ports must be positive: %+v", c)
	case c.IntALULat <= 0 || c.IntMulLat <= 0 || c.FPALULat <= 0 || c.FPMulLat <= 0:
		return fmt.Errorf("cpu: FU latencies must be positive: %+v", c)
	case c.L1Lat <= 0 || c.L2Lat < c.L1Lat || c.MemLat < c.L2Lat:
		return fmt.Errorf("cpu: memory latencies must be positive and increasing: %+v", c)
	case c.MispredictPenalty < 0:
		return fmt.Errorf("cpu: mispredict penalty must be non-negative: %+v", c)
	}
	return nil
}

// units returns the number of functional units for the class.
func (c Config) units(cl Class) int {
	switch cl {
	case IntALU, Branch, Store:
		// Branches and store address generation share the integer ALUs.
		return c.IntALUs
	case IntMul:
		return c.IntMuls
	case FPALU:
		return c.FPALUs
	case FPMul:
		return c.FPMuls
	case Load:
		return c.CachePorts
	default:
		return 0
	}
}

// latency returns the execution latency for an instruction.
func (c Config) latency(in Inst) int {
	switch in.Class {
	case IntALU, Branch:
		return c.IntALULat
	case IntMul:
		return c.IntMulLat
	case FPALU:
		return c.FPALULat
	case FPMul:
		return c.FPMulLat
	case Load:
		switch in.Mem {
		case MemL1:
			return c.L1Lat
		case MemL2:
			return c.L2Lat
		default:
			return c.MemLat
		}
	case Store:
		// Stores compute their address and complete; the write happens
		// at commit.
		return c.IntALULat
	default:
		return 1
	}
}
