package cpu

// Throttle carries the per-cycle pipeline controls that the inductive-
// noise techniques exercise. The zero value of the width fields means
// "use the configured width"; the zero value of IssueCurrentBudget means
// unlimited (use Unlimited to be explicit).
type Throttle struct {
	// IssueWidth, when positive, caps the number of instructions issued
	// this cycle (resonance tuning's first-level response halves it).
	IssueWidth int
	// CachePorts, when positive, caps the L1 data ports available this
	// cycle (first-level response reduces 2 → 1).
	CachePorts int
	// StallIssue suppresses all instruction issue (second-level
	// response and the low-voltage response of [10]).
	StallIssue bool
	// StallFetch suppresses instruction fetch (response of [10]).
	StallFetch bool
	// IssueCurrentBudget, when non-negative, bounds the summed
	// estimated current (amps) of the instructions issued this cycle;
	// pipeline damping [14] uses it. Negative means unlimited.
	IssueCurrentBudget float64
	// PhantomAmps is extra current drawn by phantom operations this
	// cycle; the core does not use it, but it travels with the throttle
	// so the power model can account for the energy.
	PhantomAmps float64
}

// Unlimited is the throttle that imposes no restrictions.
var Unlimited = Throttle{IssueCurrentBudget: -1}

// issueWidth resolves the effective issue width under configuration cfg.
func (t Throttle) issueWidth(cfg Config) int {
	if t.StallIssue {
		return 0
	}
	if t.IssueWidth > 0 && t.IssueWidth < cfg.IssueWidth {
		return t.IssueWidth
	}
	return cfg.IssueWidth
}

// cachePorts resolves the effective L1 data port count.
func (t Throttle) cachePorts(cfg Config) int {
	if t.CachePorts > 0 && t.CachePorts < cfg.CachePorts {
		return t.CachePorts
	}
	return cfg.CachePorts
}

// budgeted reports whether an issue-current budget is in force.
func (t Throttle) budgeted() bool { return t.IssueCurrentBudget >= 0 }
