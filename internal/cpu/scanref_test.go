package cpu

// scanCore is the original scan-based pipeline model, kept verbatim as a
// test-only reference implementation. The shipping Core replaced the
// per-cycle O(ROBSize) issue rescan with an event-driven scheduler; the
// differential property test in differential_test.go checks the two
// produce bit-identical per-cycle Activity streams under every throttle
// shape. Keep this in sync with nothing: it is frozen on purpose.

type scanROBEntry struct {
	inst   Inst
	seq    uint64
	state  uint8
	doneAt uint64
}

type scanCore struct {
	cfg Config
	src Source

	cycle   uint64
	seqNext uint64

	rob      []scanROBEntry
	head     int
	robCount int

	fq      []Inst
	fqHead  int
	fqCount int
	srcDone bool

	iqCount  int
	lsqCount int

	blockedOnBranch bool
	blockedSeq      uint64
	redirectClearAt uint64

	committed uint64
	fetchedN  uint64

	classAmps [NumClasses]float64
}

func newScanCore(cfg Config, src Source) *scanCore {
	return &scanCore{
		cfg: cfg,
		src: src,
		rob: make([]scanROBEntry, cfg.ROBSize),
		fq:  make([]Inst, cfg.FetchQueue),
	}
}

func (c *scanCore) Done() bool {
	return c.srcDone && c.fqCount == 0 && c.robCount == 0
}

func (c *scanCore) Committed() uint64 { return c.committed }

func (c *scanCore) SetClassCurrentEstimates(est [NumClasses]float64) { c.classAmps = est }

func (c *scanCore) oldestSeq() uint64 { return c.seqNext - uint64(c.robCount) }

func (c *scanCore) ready(e *scanROBEntry) bool {
	return c.operandReady(e.seq, e.inst.SrcDist1) && c.operandReady(e.seq, e.inst.SrcDist2)
}

func (c *scanCore) operandReady(seq uint64, dist uint16) bool {
	if dist == 0 {
		return true
	}
	d := uint64(dist)
	if d > seq {
		return true
	}
	p := seq - d
	if p < c.oldestSeq() {
		return true
	}
	pe := &c.rob[p%uint64(c.cfg.ROBSize)]
	return pe.state == stExec && pe.doneAt <= c.cycle
}

func (c *scanCore) Step(t Throttle) Activity {
	var act Activity
	ports := t.cachePorts(c.cfg)
	portsUsed := 0

	c.commit(&act, ports, &portsUsed)
	c.issue(&act, t, ports, &portsUsed)
	c.dispatch(&act)
	c.fetch(&act, t)

	act.IQOccupancy = c.iqCount
	act.ROBOccupancy = c.robCount
	c.cycle++
	return act
}

func (c *scanCore) commit(act *Activity, ports int, portsUsed *int) {
	for act.Committed < c.cfg.CommitWidth && c.robCount > 0 {
		e := &c.rob[c.head]
		if e.state != stExec || e.doneAt > c.cycle {
			break
		}
		if e.inst.Class == Store {
			if *portsUsed >= ports {
				break
			}
			*portsUsed++
			c.countMemAccess(act, e.inst.Mem)
		}
		if e.inst.Class == Load || e.inst.Class == Store {
			c.lsqCount--
		}
		c.head = (c.head + 1) % c.cfg.ROBSize
		c.robCount--
		c.committed++
		act.Committed++
	}
}

func (c *scanCore) issue(act *Activity, t Throttle, ports int, portsUsed *int) {
	width := t.issueWidth(c.cfg)
	if width == 0 {
		return
	}
	var unitsUsed [NumClasses]int
	budget := t.IssueCurrentBudget
	idx := c.head
	waitingSeen := 0
	for scanned := 0; scanned < c.robCount && act.IssuedTotal < width && waitingSeen < c.iqCount+act.IssuedTotal; scanned++ {
		e := &c.rob[idx]
		idx = (idx + 1) % c.cfg.ROBSize
		if e.state != stWaiting {
			continue
		}
		waitingSeen++
		if !c.ready(e) {
			continue
		}
		cl := e.inst.Class
		if unitsUsed[cl] >= c.cfg.units(cl) {
			continue
		}
		if cl == Load && *portsUsed >= ports {
			continue
		}
		if t.budgeted() {
			cost := c.classAmps[cl]
			if cost > budget {
				continue
			}
			budget -= cost
		}
		unitsUsed[cl]++
		if cl == Load {
			*portsUsed++
			c.countMemAccess(act, e.inst.Mem)
		}
		e.state = stExec
		e.doneAt = c.cycle + uint64(c.cfg.latency(e.inst))
		c.iqCount--
		act.Issued[cl]++
		act.IssuedTotal++
		if cl == Branch {
			act.BranchesResolved++
			if e.inst.Mispredicted && c.blockedOnBranch && e.seq == c.blockedSeq {
				c.blockedOnBranch = false
				c.redirectClearAt = e.doneAt + uint64(c.cfg.MispredictPenalty)
			}
		}
	}
}

func (c *scanCore) countMemAccess(act *Activity, lvl MemLevel) {
	act.L1D++
	switch lvl {
	case MemL2:
		act.L2++
	case MemMain:
		act.L2++
		act.Mem++
	}
}

func (c *scanCore) frontendBlocked() bool {
	return c.blockedOnBranch || c.cycle < c.redirectClearAt
}

func (c *scanCore) dispatch(act *Activity) {
	for act.Dispatched < c.cfg.DecodeWidth &&
		c.fqCount > 0 &&
		c.robCount < c.cfg.ROBSize &&
		c.iqCount < c.cfg.IQSize &&
		!c.frontendBlocked() {

		in := c.fq[c.fqHead]
		if (in.Class == Load || in.Class == Store) && c.lsqCount >= c.cfg.LSQSize {
			break
		}
		c.fqHead = (c.fqHead + 1) % c.cfg.FetchQueue
		c.fqCount--

		tail := (c.head + c.robCount) % c.cfg.ROBSize
		c.rob[tail] = scanROBEntry{inst: in, seq: c.seqNext, state: stWaiting}
		c.seqNext++
		c.robCount++
		c.iqCount++
		if in.Class == Load || in.Class == Store {
			c.lsqCount++
		}
		act.Dispatched++
		if in.Class == Branch && in.Mispredicted {
			c.blockedOnBranch = true
			c.blockedSeq = c.seqNext - 1
			break
		}
	}
}

func (c *scanCore) fetch(act *Activity, t Throttle) {
	if t.StallFetch || c.srcDone || c.frontendBlocked() {
		return
	}
	for act.Fetched < c.cfg.FetchWidth && c.fqCount < c.cfg.FetchQueue {
		in, ok := c.src.Next()
		if !ok {
			c.srcDone = true
			break
		}
		tail := (c.fqHead + c.fqCount) % c.cfg.FetchQueue
		c.fq[tail] = in
		c.fqCount++
		c.fetchedN++
		act.Fetched++
		act.L1I++
	}
}
