// Package cpu implements a cycle-level model of the 8-wide out-of-order
// superscalar processor of Table 1 in the paper: 8-wide fetch/issue/commit,
// 128-entry reorder buffer and load-store queue, two-ported L1 caches, and
// the Table 1 functional-unit pool. The model executes synthetic
// instruction streams (see package workload) rather than a real ISA; what
// matters for inductive noise is the per-cycle *activity* waveform, which
// the model reports so the power model can convert it into current.
//
// The pipeline exposes the throttle hooks that all three inductive-noise
// techniques rely on: reducing issue width and cache ports (resonance
// tuning's first-level response), stalling issue entirely (second level),
// stalling fetch (the technique of [10]), and bounding the estimated
// current issued per cycle (pipeline damping [14]).
package cpu

// Class categorises instructions by the functional unit they occupy.
type Class uint8

// Instruction classes.
const (
	IntALU Class = iota // single-cycle integer ALU op
	IntMul              // integer multiply/divide
	FPALU               // floating-point add/sub
	FPMul               // floating-point multiply/divide
	Load                // memory load
	Store               // memory store
	Branch              // conditional or unconditional branch
	NumClasses
)

// String returns the class mnemonic.
func (c Class) String() string {
	switch c {
	case IntALU:
		return "intalu"
	case IntMul:
		return "intmul"
	case FPALU:
		return "fpalu"
	case FPMul:
		return "fpmul"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	default:
		return "unknown"
	}
}

// MemLevel is the level of the memory hierarchy that services a load or
// store.
type MemLevel uint8

// Memory hierarchy levels.
const (
	MemL1   MemLevel = iota // L1 hit
	MemL2                   // L1 miss, L2 hit
	MemMain                 // L2 miss, main memory access
)

// String returns the level name.
func (m MemLevel) String() string {
	switch m {
	case MemL1:
		return "L1"
	case MemL2:
		return "L2"
	case MemMain:
		return "mem"
	default:
		return "unknown"
	}
}

// Inst is one synthetic instruction. Dependencies are expressed as
// distances: SrcDist1/SrcDist2 give how many instructions earlier in
// program order the producing instruction is (0 means no dependency).
type Inst struct {
	Class Class
	// SrcDist1 and SrcDist2 are producer distances in program order;
	// 0 means the operand is immediately available.
	SrcDist1, SrcDist2 uint16
	// Mem is the hierarchy level that services this Load or Store.
	Mem MemLevel
	// Mispredicted marks a branch whose prediction is wrong; the
	// frontend refetches after the branch resolves.
	Mispredicted bool
}

// Source supplies the instruction stream executed by the core.
type Source interface {
	// Next returns the next instruction, or ok=false when the stream
	// is exhausted.
	Next() (inst Inst, ok bool)
}

// BulkSource is an optional Source extension that delivers a run of
// instructions in one call, letting the core's fetch stage fill its
// queue without a per-instruction interface call. A short delivery
// (fewer than len(dst)) means the stream is exhausted.
type BulkSource interface {
	Source
	// NextN fills dst with up to len(dst) instructions and returns how
	// many were delivered.
	NextN(dst []Inst) int
}

// ForkableSource is an optional Source extension for sources whose
// cursor state can be duplicated mid-stream. Fork returns an
// independent source that continues from the same position and yields
// exactly the same remaining instructions; the original is unaffected.
// Core.Fork (and through it sim.Machine.Fork) requires its source to be
// forkable.
type ForkableSource interface {
	Source
	Fork() Source
}

// SliceSource adapts a fixed instruction slice to the Source interface.
// It is mainly useful in tests.
type SliceSource struct {
	insts []Inst
	pos   int
}

// NewSliceSource returns a Source that yields the given instructions once.
func NewSliceSource(insts []Inst) *SliceSource {
	return &SliceSource{insts: insts}
}

// Next implements Source.
func (s *SliceSource) Next() (Inst, bool) {
	if s.pos >= len(s.insts) {
		return Inst{}, false
	}
	i := s.insts[s.pos]
	s.pos++
	return i, true
}

// Fork implements ForkableSource: the instruction slice is never
// written, so the copies share it and advance independent cursors.
func (s *SliceSource) Fork() Source {
	c := *s
	return &c
}

// RepeatSource yields a fixed pattern of instructions cyclically, up to a
// total instruction budget.
type RepeatSource struct {
	pattern []Inst
	limit   uint64
	n       uint64
}

// NewRepeatSource returns a Source yielding pattern cyclically until limit
// instructions have been produced.
func NewRepeatSource(pattern []Inst, limit uint64) *RepeatSource {
	return &RepeatSource{pattern: pattern, limit: limit}
}

// Next implements Source.
func (s *RepeatSource) Next() (Inst, bool) {
	if s.n >= s.limit || len(s.pattern) == 0 {
		return Inst{}, false
	}
	i := s.pattern[s.n%uint64(len(s.pattern))]
	s.n++
	return i, true
}

// Fork implements ForkableSource: the pattern is read-only, so the
// copies share it and count down independently.
func (s *RepeatSource) Fork() Source {
	c := *s
	return &c
}
