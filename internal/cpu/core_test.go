package cpu

import (
	"math"
	"testing"
)

// runIPC executes n instructions of the given repeating pattern and
// returns the achieved IPC.
func runIPC(t *testing.T, pattern []Inst, n uint64, th Throttle) float64 {
	t.Helper()
	core := New(DefaultConfig(), NewRepeatSource(pattern, n))
	cycles := core.Run(n*200+10_000, th)
	if !core.Done() {
		t.Fatalf("core did not drain after %d cycles (committed %d/%d)", cycles, core.Committed(), n)
	}
	if core.Committed() != n {
		t.Fatalf("committed %d, want %d", core.Committed(), n)
	}
	return float64(n) / float64(cycles)
}

func TestIndependentALUSaturatesIssueWidth(t *testing.T) {
	ipc := runIPC(t, []Inst{{Class: IntALU}}, 20_000, Unlimited)
	if ipc < 7.5 || ipc > 8.0 {
		t.Errorf("independent IntALU IPC = %.2f, want ≈ 8", ipc)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	ipc := runIPC(t, []Inst{{Class: IntALU, SrcDist1: 1}}, 5_000, Unlimited)
	if math.Abs(ipc-1) > 0.1 {
		t.Errorf("dependent chain IPC = %.2f, want ≈ 1", ipc)
	}
}

func TestLoadLatencySerialization(t *testing.T) {
	cases := []struct {
		level MemLevel
		want  float64
	}{
		{MemL1, 1.0 / 2},
		{MemL2, 1.0 / 12},
		{MemMain, 1.0 / 80},
	}
	for _, tc := range cases {
		t.Run(tc.level.String(), func(t *testing.T) {
			ipc := runIPC(t, []Inst{{Class: Load, SrcDist1: 1, Mem: tc.level}}, 2_000, Unlimited)
			if math.Abs(ipc-tc.want)/tc.want > 0.1 {
				t.Errorf("dependent %s load IPC = %.4f, want ≈ %.4f", tc.level, ipc, tc.want)
			}
		})
	}
}

func TestCachePortsLimitLoads(t *testing.T) {
	// Independent loads are bounded by the two L1 ports.
	ipc := runIPC(t, []Inst{{Class: Load, Mem: MemL1}}, 10_000, Unlimited)
	if math.Abs(ipc-2) > 0.2 {
		t.Errorf("independent load IPC = %.2f, want ≈ 2 (two ports)", ipc)
	}
	// Throttling to one port halves it.
	ipc = runIPC(t, []Inst{{Class: Load, Mem: MemL1}}, 10_000, Throttle{CachePorts: 1, IssueCurrentBudget: -1})
	if math.Abs(ipc-1) > 0.15 {
		t.Errorf("one-port load IPC = %.2f, want ≈ 1", ipc)
	}
}

func TestIssueWidthThrottle(t *testing.T) {
	ipc := runIPC(t, []Inst{{Class: IntALU}}, 20_000, Throttle{IssueWidth: 4, IssueCurrentBudget: -1})
	if math.Abs(ipc-4) > 0.3 {
		t.Errorf("width-4 IPC = %.2f, want ≈ 4", ipc)
	}
	// A throttle wider than the machine changes nothing.
	ipc = runIPC(t, []Inst{{Class: IntALU}}, 20_000, Throttle{IssueWidth: 64, IssueCurrentBudget: -1})
	if ipc < 7.5 {
		t.Errorf("width-64 throttle IPC = %.2f, want ≈ 8", ipc)
	}
}

func TestFunctionalUnitLimits(t *testing.T) {
	// Independent integer multiplies bound by the 2 multipliers.
	ipc := runIPC(t, []Inst{{Class: IntMul}}, 10_000, Unlimited)
	if math.Abs(ipc-2) > 0.2 {
		t.Errorf("IntMul IPC = %.2f, want ≈ 2", ipc)
	}
	// FP adds bound by the 4 FP ALUs.
	ipc = runIPC(t, []Inst{{Class: FPALU}}, 10_000, Unlimited)
	if math.Abs(ipc-4) > 0.3 {
		t.Errorf("FPALU IPC = %.2f, want ≈ 4", ipc)
	}
}

func TestStallIssueFreezesPipeline(t *testing.T) {
	core := New(DefaultConfig(), NewRepeatSource([]Inst{{Class: IntALU}}, 100_000))
	stall := Throttle{StallIssue: true, IssueCurrentBudget: -1}
	for i := 0; i < 1000; i++ {
		core.Step(stall)
	}
	if core.Committed() != 0 {
		t.Errorf("committed %d instructions under issue stall, want 0", core.Committed())
	}
	// The window fills to the issue-queue capacity (nothing ever
	// issues, so dispatch stops there) and no further.
	act := core.Step(stall)
	if act.IQOccupancy != DefaultConfig().IQSize {
		t.Errorf("IQ occupancy %d under stall, want full %d", act.IQOccupancy, DefaultConfig().IQSize)
	}
	// Releasing the stall lets the machine catch up.
	for i := 0; i < 100; i++ {
		core.Step(Unlimited)
	}
	if core.Committed() == 0 {
		t.Error("no instructions committed after stall released")
	}
}

func TestStallFetchStarvesFrontend(t *testing.T) {
	core := New(DefaultConfig(), NewRepeatSource([]Inst{{Class: IntALU}}, 100_000))
	for i := 0; i < 50; i++ {
		core.Step(Unlimited)
	}
	before := core.Fetched()
	for i := 0; i < 100; i++ {
		act := core.Step(Throttle{StallFetch: true, IssueCurrentBudget: -1})
		if act.Fetched != 0 {
			t.Fatalf("fetched %d under fetch stall", act.Fetched)
		}
	}
	if core.Fetched() != before {
		t.Errorf("fetch count moved under stall: %d → %d", before, core.Fetched())
	}
	// Pipeline drains the in-flight instructions meanwhile.
	if core.Committed() == 0 {
		t.Error("backend should keep committing while fetch stalls")
	}
}

func TestMispredictedBranchesCostCycles(t *testing.T) {
	clean := []Inst{{Class: IntALU}, {Class: IntALU}, {Class: IntALU}, {Class: Branch}}
	dirty := []Inst{{Class: IntALU}, {Class: IntALU}, {Class: IntALU}, {Class: Branch, Mispredicted: true}}
	ipcClean := runIPC(t, clean, 20_000, Unlimited)
	ipcDirty := runIPC(t, dirty, 20_000, Unlimited)
	if ipcDirty >= ipcClean/2 {
		t.Errorf("mispredicts too cheap: clean IPC %.2f, dirty IPC %.2f", ipcClean, ipcDirty)
	}
	if ipcDirty < 0.2 {
		t.Errorf("mispredicts too expensive: dirty IPC %.2f", ipcDirty)
	}
}

func TestIssueCurrentBudgetLimitsIssue(t *testing.T) {
	core := New(DefaultConfig(), NewRepeatSource([]Inst{{Class: IntALU}}, 50_000))
	var est [NumClasses]float64
	est[IntALU] = 1.0
	core.SetClassCurrentEstimates(est)
	if got := core.ClassCurrentEstimates(); got[IntALU] != 1.0 {
		t.Fatalf("estimates not installed: %v", got)
	}
	// Warm the pipeline, then check the cap.
	for i := 0; i < 20; i++ {
		core.Step(Unlimited)
	}
	for i := 0; i < 200; i++ {
		act := core.Step(Throttle{IssueCurrentBudget: 3.0})
		if act.IssuedTotal > 3 {
			t.Fatalf("issued %d ops with budget for 3", act.IssuedTotal)
		}
	}
	// Zero budget means no issue at all.
	act := core.Step(Throttle{IssueCurrentBudget: 0})
	if act.IssuedTotal != 0 {
		t.Errorf("issued %d ops with zero budget", act.IssuedTotal)
	}
}

func TestStoresConsumePortsAtCommit(t *testing.T) {
	// Independent stores: bounded by ports shared between issue (loads)
	// and commit (stores). With 2 ports and stores only, commit sustains
	// at most 2 stores/cycle.
	ipc := runIPC(t, []Inst{{Class: Store, Mem: MemL1}}, 10_000, Unlimited)
	if ipc > 2.1 {
		t.Errorf("store IPC %.2f exceeds port bound 2", ipc)
	}
}

func TestActivityAccounting(t *testing.T) {
	pattern := []Inst{
		{Class: Load, Mem: MemMain},
		{Class: IntALU},
		{Class: Store, Mem: MemL1},
		{Class: Branch},
	}
	const n = 4_000
	core := New(DefaultConfig(), NewRepeatSource(pattern, n))
	var sum Activity
	for !core.Done() {
		act := core.Step(Unlimited)
		sum.Fetched += act.Fetched
		sum.Dispatched += act.Dispatched
		sum.Committed += act.Committed
		sum.IssuedTotal += act.IssuedTotal
		sum.L1D += act.L1D
		sum.L2 += act.L2
		sum.Mem += act.Mem
		sum.BranchesResolved += act.BranchesResolved
	}
	if sum.Fetched != n || sum.Dispatched != n || sum.Committed != n || sum.IssuedTotal != n {
		t.Errorf("counts fetched/dispatched/committed/issued = %d/%d/%d/%d, want all %d",
			sum.Fetched, sum.Dispatched, sum.Committed, sum.IssuedTotal, n)
	}
	// Every load and store touches L1D; every main-memory load touches
	// L2 and memory.
	if sum.L1D != n/2 {
		t.Errorf("L1D accesses %d, want %d", sum.L1D, n/2)
	}
	if sum.L2 != n/4 || sum.Mem != n/4 {
		t.Errorf("L2/Mem accesses %d/%d, want %d/%d", sum.L2, sum.Mem, n/4, n/4)
	}
	if sum.BranchesResolved != n/4 {
		t.Errorf("branches resolved %d, want %d", sum.BranchesResolved, n/4)
	}
}

func TestROBNeverExceedsCapacity(t *testing.T) {
	// A long-latency dependent head blocks commit and fills the ROB.
	pattern := []Inst{{Class: Load, SrcDist1: 1, Mem: MemMain}, {Class: IntALU}}
	core := New(DefaultConfig(), NewRepeatSource(pattern, 50_000))
	for i := 0; i < 5_000; i++ {
		act := core.Step(Unlimited)
		if act.ROBOccupancy > DefaultConfig().ROBSize {
			t.Fatalf("ROB occupancy %d exceeds capacity", act.ROBOccupancy)
		}
		if act.IQOccupancy > DefaultConfig().IQSize {
			t.Fatalf("IQ occupancy %d exceeds capacity", act.IQOccupancy)
		}
	}
}

func TestDoneAndDrain(t *testing.T) {
	core := New(DefaultConfig(), NewSliceSource([]Inst{{Class: IntALU}, {Class: IntALU, SrcDist1: 1}}))
	if core.Done() {
		t.Fatal("fresh core with pending stream reports Done")
	}
	core.Run(1_000, Unlimited)
	if !core.Done() {
		t.Fatal("core did not drain a 2-instruction stream")
	}
	if core.Committed() != 2 {
		t.Errorf("committed %d, want 2", core.Committed())
	}
	// Stepping a drained core is harmless.
	act := core.Step(Unlimited)
	if act.Committed != 0 || act.Fetched != 0 {
		t.Error("drained core still produced activity")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.ROBSize = 0
	New(cfg, NewSliceSource(nil))
}

func TestIPCZeroBeforeRun(t *testing.T) {
	core := New(DefaultConfig(), NewSliceSource(nil))
	if core.IPC() != 0 {
		t.Error("IPC before any cycle should be 0")
	}
}

func TestConfigValidateCases(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.IQSize = -1 },
		func(c *Config) { c.IntALUs = 0 },
		func(c *Config) { c.CachePorts = 0 },
		func(c *Config) { c.IntALULat = 0 },
		func(c *Config) { c.L2Lat = 1 }, // below L1
		func(c *Config) { c.MemLat = 5 },
		func(c *Config) { c.MispredictPenalty = -1 },
	}
	for i, m := range mutations {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestClassAndMemLevelStrings(t *testing.T) {
	names := map[string]bool{}
	for cl := Class(0); cl < NumClasses; cl++ {
		s := cl.String()
		if s == "" || s == "unknown" {
			t.Errorf("class %d has no name", cl)
		}
		if names[s] {
			t.Errorf("duplicate class name %q", s)
		}
		names[s] = true
	}
	if Class(200).String() != "unknown" {
		t.Error("out-of-range class should be unknown")
	}
	for _, lvl := range []MemLevel{MemL1, MemL2, MemMain} {
		if lvl.String() == "unknown" {
			t.Errorf("level %d has no name", lvl)
		}
	}
	if MemLevel(9).String() != "unknown" {
		t.Error("out-of-range level should be unknown")
	}
}
