package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// randomStream builds a random but well-formed instruction stream.
func randomStream(seed uint64, n int) []Inst {
	r := rng.New(seed)
	out := make([]Inst, n)
	for i := range out {
		in := Inst{Class: Class(r.Intn(int(NumClasses)))}
		if r.Bernoulli(0.6) {
			in.SrcDist1 = uint16(r.Range(1, 20))
		}
		if r.Bernoulli(0.3) {
			in.SrcDist2 = uint16(r.Range(1, 20))
		}
		if in.Class == Load || in.Class == Store {
			in.Mem = MemLevel(r.Intn(3))
		}
		if in.Class == Branch {
			in.Mispredicted = r.Bernoulli(0.1)
		}
		out[i] = in
	}
	return out
}

// TestEveryStreamDrainsAndCommitsExactly: any well-formed stream commits
// every instruction exactly once, in bounded time, under any throttle
// that permits progress.
func TestEveryStreamDrainsAndCommitsExactly(t *testing.T) {
	throttles := []Throttle{
		Unlimited,
		{IssueWidth: 4, CachePorts: 1, IssueCurrentBudget: -1},
		{IssueWidth: 1, IssueCurrentBudget: -1},
	}
	f := func(seed uint64) bool {
		n := 200 + int(seed%800)
		for _, th := range throttles {
			core := New(DefaultConfig(), NewSliceSource(randomStream(seed, n)))
			// Worst case is a fully serialised main-memory chain.
			limit := uint64(n)*uint64(DefaultConfig().MemLat+DefaultConfig().MispredictPenalty+8) + 1000
			core.Run(limit, th)
			if !core.Done() || core.Committed() != uint64(n) {
				t.Logf("seed %d throttle %+v: committed %d/%d, done=%v",
					seed, th, core.Committed(), n, core.Done())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestActivityConservation: over any full run, fetched = dispatched =
// issued = committed, and per-cycle counts never exceed the configured
// widths.
func TestActivityConservation(t *testing.T) {
	f := func(seed uint64) bool {
		n := 300 + int(seed%500)
		cfg := DefaultConfig()
		core := New(cfg, NewSliceSource(randomStream(seed, n)))
		var fetched, dispatched, issued, committed int
		for !core.Done() {
			act := core.Step(Unlimited)
			if act.Fetched > cfg.FetchWidth || act.Dispatched > cfg.DecodeWidth ||
				act.IssuedTotal > cfg.IssueWidth || act.Committed > cfg.CommitWidth {
				t.Logf("seed %d: width violation %+v", seed, act)
				return false
			}
			sum := 0
			for cl := Class(0); cl < NumClasses; cl++ {
				sum += act.Issued[cl]
			}
			if sum != act.IssuedTotal {
				t.Logf("seed %d: per-class issue sum %d != total %d", seed, sum, act.IssuedTotal)
				return false
			}
			fetched += act.Fetched
			dispatched += act.Dispatched
			issued += act.IssuedTotal
			committed += act.Committed
		}
		return fetched == n && dispatched == n && issued == n && committed == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestThrottleNeverSpeedsUp: any restrictive throttle takes at least as
// many cycles as the unlimited machine on the same stream.
func TestThrottleNeverSpeedsUp(t *testing.T) {
	f := func(seed uint64) bool {
		n := 500
		run := func(th Throttle) uint64 {
			core := New(DefaultConfig(), NewSliceSource(randomStream(seed, n)))
			core.Run(1<<40, th)
			return core.Cycle()
		}
		free := run(Unlimited)
		narrow := run(Throttle{IssueWidth: 2, CachePorts: 1, IssueCurrentBudget: -1})
		return narrow >= free
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestDeterministicReplay: the core is a pure function of its stream and
// throttle sequence.
func TestDeterministicReplay(t *testing.T) {
	stream := randomStream(99, 2000)
	run := func() (uint64, uint64) {
		core := New(DefaultConfig(), NewSliceSource(append([]Inst(nil), stream...)))
		core.Run(1<<40, Unlimited)
		return core.Cycle(), core.Committed()
	}
	c1, n1 := run()
	c2, n2 := run()
	if c1 != c2 || n1 != n2 {
		t.Errorf("replay diverged: (%d,%d) vs (%d,%d)", c1, n1, c2, n2)
	}
}
