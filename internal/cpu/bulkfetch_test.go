package cpu

import (
	"math/rand"
	"testing"
)

// randomTrace builds a packed pseudo-trace of n instructions.
func randomTrace(r *rand.Rand, n int) (meta []uint8, src1, src2 []uint16) {
	meta = make([]uint8, n)
	src1 = make([]uint16, n)
	src2 = make([]uint16, n)
	for i := 0; i < n; i++ {
		in := Inst{
			Class:        Class(r.Intn(int(NumClasses))),
			SrcDist1:     uint16(r.Intn(40)),
			SrcDist2:     uint16(r.Intn(40)),
			Mispredicted: r.Intn(20) == 0,
		}
		if in.Class == Load || in.Class == Store {
			in.Mem = MemLevel(r.Intn(3))
		}
		meta[i] = PackMeta(in)
		src1[i] = in.SrcDist1
		src2[i] = in.SrcDist2
	}
	return meta, src1, src2
}

// nextOnly hides a TraceSource's NextN so a core falls back to the
// per-instruction path.
type nextOnly struct{ t *TraceSource }

func (n nextOnly) Next() (Inst, bool) { return n.t.Next() }

// TestTraceSourceNextNMatchesNext decodes the same trace through NextN
// (with varying chunk sizes) and through Next and requires identical
// instructions.
func TestTraceSourceNextNMatchesNext(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	meta, src1, src2 := randomTrace(r, 4096)
	a := NewTraceSource(meta, src1, src2)
	b := NewTraceSource(meta, src1, src2)
	buf := make([]Inst, 9)
	for {
		n := 1 + r.Intn(len(buf))
		got := a.NextN(buf[:n])
		for i := 0; i < got; i++ {
			want, ok := b.Next()
			if !ok {
				t.Fatalf("NextN delivered past the stream end")
			}
			if buf[i] != want {
				t.Fatalf("NextN inst %v != Next inst %v", buf[i], want)
			}
		}
		if got < n {
			break
		}
	}
	if _, ok := b.Next(); ok {
		t.Fatalf("NextN ended before Next")
	}
	if a.NextN(buf) != 0 {
		t.Fatalf("NextN after exhaustion delivered instructions")
	}
}

// TestBulkFetchMatchesScalarFetch runs two cores over the same trace —
// one through the BulkSource fast path, one through the Next-only
// fallback — under a throttle schedule that exercises partial fetches,
// and requires bit-identical per-cycle Activity.
func TestBulkFetchMatchesScalarFetch(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	meta, src1, src2 := randomTrace(r, 20000)
	cfg := DefaultConfig()
	bulk := New(cfg, NewTraceSource(meta, src1, src2))
	scalar := New(cfg, nextOnly{NewTraceSource(meta, src1, src2)})
	if bulk.bulk == nil || scalar.bulk != nil {
		t.Fatalf("test wiring: bulk path not selected as intended")
	}
	var actA, actB Activity
	for cyc := 0; ; cyc++ {
		th := Unlimited
		if cyc%13 == 5 {
			th.StallFetch = true
		}
		if cyc%31 == 7 {
			th.StallIssue = true
		}
		bulk.StepInto(th, &actA)
		scalar.StepInto(th, &actB)
		if actA != actB {
			t.Fatalf("cycle %d: bulk activity %+v != scalar %+v", cyc, actA, actB)
		}
		if bulk.Done() != scalar.Done() {
			t.Fatalf("cycle %d: Done diverged", cyc)
		}
		if bulk.Done() {
			break
		}
		if cyc > 1<<20 {
			t.Fatalf("cores did not drain")
		}
	}
	if bulk.Committed() != scalar.Committed() {
		t.Fatalf("committed %d != %d", bulk.Committed(), scalar.Committed())
	}
}
