// Package damping implements pipeline damping (reference [14], Powell &
// Vijaykumar, ISCA 2003) as the paper's Section 5.3.2 evaluates it: the
// "always-on" frontend variant that bounds, using a-priori per-class
// current estimates, how much the current issued in one damping window
// (half a resonant period) may differ from the previous window.
//
// Each cycle the controller publishes an issue-current budget; the core
// issues instructions only while their summed estimated current fits. If
// the window would undershoot the previous one by more than δ even after
// issuing everything available, phantom operations make up the deficit,
// because letting the current collapse is itself a resonant variation.
//
// δ is expressed as an allowed peak-to-peak current variation in amps
// (the paper sets it relative to the resonant current variation
// threshold: 1×, 0.5×, 0.25×). Internally the window-sum bound is
// δ·W·Scale amp-cycles for a W-cycle window.
package damping

import "fmt"

// Config parameterises pipeline damping.
type Config struct {
	// WindowCycles is the damping window, half the resonant period
	// (50 cycles for the Table 1 supply).
	WindowCycles int
	// DeltaAmps is the allowed worst-case current variation (peak to
	// peak) over a resonant period.
	DeltaAmps float64
	// Scale converts DeltaAmps into the window-sum bound
	// DeltaAmps·WindowCycles·Scale. The physical square-wave equivalence
	// is Scale = 1 (a p-p swing of δ sustained across adjacent
	// half-period windows changes their sums by δ·W); smaller scales
	// damp harder. Zero means 1.
	Scale float64
	// LowerScale optionally loosens the undershoot (phantom make-up)
	// bound relative to Scale. Reference [14]'s frontend damping meters
	// instruction issue tightly but lets current fall at the pipeline's
	// natural drain rate, phantom-firing only on extreme collapses, so
	// its energy overhead is small. Zero means use Scale for both
	// sides.
	LowerScale float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.WindowCycles < 2:
		return fmt.Errorf("damping: window must be at least 2 cycles (got %d)", c.WindowCycles)
	case c.DeltaAmps <= 0:
		return fmt.Errorf("damping: delta must be positive (got %g)", c.DeltaAmps)
	case c.Scale < 0:
		return fmt.Errorf("damping: scale must be ≥ 0 (got %g)", c.Scale)
	case c.LowerScale < 0:
		return fmt.Errorf("damping: lower scale must be ≥ 0 (got %g)", c.LowerScale)
	}
	return nil
}

// boundAmpCycles returns the upper (issue) window-sum bound in amp-cycles.
func (c Config) boundAmpCycles() float64 {
	s := c.Scale
	if s == 0 {
		s = 1
	}
	return c.DeltaAmps * float64(c.WindowCycles) * s
}

// lowerBoundAmpCycles returns the undershoot bound in amp-cycles.
func (c Config) lowerBoundAmpCycles() float64 {
	s := c.LowerScale
	if s == 0 {
		return c.boundAmpCycles()
	}
	return c.DeltaAmps * float64(c.WindowCycles) * s
}

// Stats accumulates behaviour for the Table 5 analysis.
type Stats struct {
	Cycles          uint64
	ConstrainedCyc  uint64  // cycles whose budget bound below the machine's appetite is finite
	PhantomCycles   uint64  // cycles that needed phantom make-up current
	PhantomAmpTotal float64 // total phantom amps injected
}

// Controller implements the damping window accounting. Use Budget before
// the core's cycle to obtain the issue-current cap, then Account after it
// with the estimated current actually issued.
type Controller struct {
	cfg        Config
	bound      float64
	lowerBound float64

	// ring holds the per-cycle issued-current estimates (including
	// phantom make-up) for the last 2·W cycles.
	ring   []float64
	pos    int
	filled int

	recentSum float64 // last W-1 entries plus nothing for this cycle yet
	priorSum  float64 // the W entries before those

	stats Stats
}

// New returns a damping controller. It panics on invalid configuration.
func New(cfg Config) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("damping.New: %v", err))
	}
	return &Controller{
		cfg:        cfg,
		bound:      cfg.boundAmpCycles(),
		lowerBound: cfg.lowerBoundAmpCycles(),
		ring:       make([]float64, 2*cfg.WindowCycles),
	}
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// bounds returns the allowed range for this cycle's issued-current
// estimate so that the window ending this cycle stays within ±bound of
// the adjacent previous window:
//
//	cur  = (recentSum − crossing) + est   (cycles t−W+1 … t)
//	prev = (priorSum − oldest) + crossing (cycles t−2W+1 … t−W)
func (c *Controller) bounds() (lo, hi float64) {
	w := c.cfg.WindowCycles
	oldest := c.ring[c.pos]
	crossing := c.ring[(c.pos+w)%len(c.ring)]
	prev := c.priorSum - oldest + crossing
	partial := c.recentSum - crossing
	return prev - c.lowerBound - partial, prev + c.bound - partial
}

// Budget returns the issue-current budget (amps) for the coming cycle and
// whether the budget is in force. During the initial 2·W warm-up cycles
// there is no previous window to compare against and issue is
// unconstrained.
func (c *Controller) Budget() (amps float64, limited bool) {
	if c.unconstrained() {
		return 0, false
	}
	_, hi := c.bounds()
	if hi < 0 {
		hi = 0
	}
	return hi, true
}

// unconstrained reports whether the controller is still warming up.
func (c *Controller) unconstrained() bool { return c.filled < 2*c.cfg.WindowCycles }

// Account records the estimated current actually issued this cycle and
// returns the phantom amps required to keep the window from undershooting
// the previous window by more than the bound.
func (c *Controller) Account(issuedEstAmps float64) (phantomAmps float64) {
	c.stats.Cycles++
	if !c.unconstrained() {
		lo, hi := c.bounds()
		if issuedEstAmps < lo {
			phantomAmps = lo - issuedEstAmps
			c.stats.PhantomCycles++
			c.stats.PhantomAmpTotal += phantomAmps
		}
		if hi < issuedEstAmps+phantomAmps+1e-12 {
			c.stats.ConstrainedCyc++
		}
	}
	c.push(issuedEstAmps + phantomAmps)
	return phantomAmps
}

// push advances the two rolling window sums with this cycle's estimate.
func (c *Controller) push(est float64) {
	w := c.cfg.WindowCycles
	n := 2 * w
	// The entry leaving the "prior" window entirely.
	oldest := c.ring[c.pos]
	// The entry crossing from "recent" into "prior" is w slots back.
	crossing := c.ring[(c.pos+w)%n]

	c.ring[c.pos] = est
	c.pos = (c.pos + 1) % n
	if c.filled < n {
		c.filled++
	}

	c.recentSum += est - crossing
	c.priorSum += crossing - oldest
}
