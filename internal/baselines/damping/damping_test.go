package damping

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func cfg() Config { return Config{WindowCycles: 50, DeltaAmps: 32, Scale: 1} }

func TestWarmupUnconstrained(t *testing.T) {
	c := New(cfg())
	for i := 0; i < 2*50; i++ {
		if _, limited := c.Budget(); limited {
			t.Fatalf("budget limited at warm-up cycle %d", i)
		}
		if ph := c.Account(12); ph != 0 {
			t.Fatalf("phantom during warm-up cycle %d", i)
		}
	}
	if _, limited := c.Budget(); !limited {
		t.Error("budget still unlimited after warm-up")
	}
}

func TestSteadyStreamUnconstrained(t *testing.T) {
	c := New(cfg())
	for i := 0; i < 1000; i++ {
		amps, limited := c.Budget()
		if limited && amps < 12 {
			t.Fatalf("cycle %d: steady 12 A stream got budget %g", i, amps)
		}
		if ph := c.Account(12); ph != 0 {
			t.Fatalf("cycle %d: phantom %g on a steady stream", i, ph)
		}
	}
	if s := c.Stats(); s.ConstrainedCyc != 0 {
		t.Errorf("steady stream reported %d constrained cycles", s.ConstrainedCyc)
	}
}

func TestBurstIsClipped(t *testing.T) {
	c := New(cfg())
	// Quiet history at ~1 instruction per cycle (≈8 A footprint)...
	for i := 0; i < 200; i++ {
		c.Account(8)
	}
	// ...then the machine wants 6 instructions per cycle (≈48 A). The
	// window bound (32·50 = 1600 A·cycles against a 400 A·cycle quiet
	// window) must clip the ramp partway through the window.
	sawClip := false
	for i := 0; i < 50; i++ {
		want := 48.0
		if amps, limited := c.Budget(); limited && amps < want {
			sawClip = true
			want = math.Max(amps, 0)
		}
		c.Account(want)
	}
	if !sawClip {
		t.Error("an 8→48 A burst was never budget-clipped")
	}
	if c.Stats().ConstrainedCyc == 0 {
		t.Error("constrained cycles not counted")
	}
}

func TestUndershootTriggersPhantom(t *testing.T) {
	c := New(cfg())
	for i := 0; i < 200; i++ {
		c.Account(48)
	}
	// Current collapses to zero: damping must inject phantom current
	// so the window does not fall more than the bound below the
	// previous one.
	totalPhantom := 0.0
	for i := 0; i < 50; i++ {
		totalPhantom += c.Account(0)
	}
	if totalPhantom == 0 {
		t.Error("no phantom make-up for a 48→0 A collapse")
	}
	s := c.Stats()
	if s.PhantomCycles == 0 || s.PhantomAmpTotal == 0 {
		t.Errorf("phantom stats empty: %+v", s)
	}
}

func TestTighterDeltaDampsHarder(t *testing.T) {
	run := func(delta float64) (clipped uint64) {
		c := New(Config{WindowCycles: 50, DeltaAmps: delta, Scale: 1})
		r := rng.New(7)
		for i := 0; i < 5000; i++ {
			// Slow in-band-ish modulation of the machine's appetite
			// plus jitter.
			want := 28 + 20*math.Sin(2*math.Pi*float64(i)/100) + 4*r.Float64()
			if amps, limited := c.Budget(); limited && amps < want {
				want = math.Max(amps, 0)
			}
			c.Account(want)
		}
		return c.Stats().ConstrainedCyc
	}
	loose, tight := run(32), run(8)
	if tight <= loose {
		t.Errorf("δ=8 clipped %d cycles, δ=32 clipped %d; tighter δ should clip more", tight, loose)
	}
}

// TestWindowInvariantAgainstBruteForce checks the rolling sums against a
// naive recomputation on a random stream.
func TestWindowInvariantAgainstBruteForce(t *testing.T) {
	const w = 10
	c := New(Config{WindowCycles: w, DeltaAmps: 5, Scale: 1})
	r := rng.New(99)
	var hist []float64
	for i := 0; i < 500; i++ {
		est := 10 * r.Float64()
		// Compute expected bounds brute force before accounting.
		if i >= 2*w {
			recent := sum(hist[i-w+1 : i]) // cycles t-w+1 .. t-1
			prev := sum(hist[i-2*w+1 : i-w+1])
			wantHi := prev + 5*w - recent
			gotHi, limited := c.Budget()
			if !limited {
				t.Fatalf("cycle %d: expected limited budget", i)
			}
			if wantHi < 0 {
				wantHi = 0
			}
			if math.Abs(gotHi-wantHi) > 1e-9 {
				t.Fatalf("cycle %d: budget %g, brute force %g", i, gotHi, wantHi)
			}
		}
		ph := c.Account(est)
		hist = append(hist, est+ph)
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{WindowCycles: 1, DeltaAmps: 32},
		{WindowCycles: 50, DeltaAmps: 0},
		{WindowCycles: 50, DeltaAmps: -1},
		{WindowCycles: 50, DeltaAmps: 32, Scale: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := cfg().Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	// Scale zero defaults to 1.
	a := Config{WindowCycles: 50, DeltaAmps: 32}
	if a.boundAmpCycles() != 1600 {
		t.Errorf("default-scale bound %g, want 1600", a.boundAmpCycles())
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{})
}
