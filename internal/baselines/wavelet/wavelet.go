// Package wavelet implements a Haar-wavelet-based di/dt detector in the
// spirit of reference [11] (Joseph, Hu & Martonosi, HPCA 2004), which the
// paper's related-work section offers as an alternative to resonance
// tuning's repetition counting: analyse the current history at dyadic
// time scales and react when the detail coefficients at the scales
// overlapping the resonance band grow large repeatedly.
//
// A Haar detail coefficient at scale s is (sum of the last s samples)
// minus (sum of the s samples before those) — structurally the same
// quarter-period comparison resonance tuning performs, but restricted to
// power-of-two windows. For the Table 1 band (half-periods 42-60 cycles)
// the relevant scales are 32 and 64; the mismatch between dyadic scales
// and the actual band is the price of the wavelet framing, and the
// repo's extra-baselines experiment quantifies it.
package wavelet

import (
	"fmt"

	"repro/internal/cpu"
)

// Config parameterises the detector/controller.
type Config struct {
	// Scales are the Haar scales (window lengths, powers of two) to
	// monitor; nil means {32, 64}.
	Scales []int
	// ThresholdAmpCycles is the detail-coefficient magnitude that marks
	// an event, per scale unit: the trigger at scale s is
	// ThresholdAmpCycles·s (matching resonance tuning's M·T/8 scaling
	// with M = 4·ThresholdAmpCycles... the constant is calibrated the
	// same way). Zero means 8 (i.e. M = 32 A with the paper scaling).
	ThresholdAmpCycles float64
	// Repetitions is how many alternating-sign events at the same scale
	// must chain before responding; zero means 2.
	Repetitions int
	// ResponseCycles is how long the response (half issue width, one
	// port) holds; zero means 100.
	ResponseCycles int
}

// WithDefaults returns the configuration with every zero field resolved
// to its default (the form New actually runs), or an error when the
// configuration is unusable. It is what the engine's technique registry
// normalizes and validates specs with.
func (c Config) WithDefaults() (Config, error) { return c.withDefaults() }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	_, err := c.withDefaults()
	return err
}

func (c Config) withDefaults() (Config, error) {
	if c.Scales == nil {
		c.Scales = []int{32, 64}
	}
	for _, s := range c.Scales {
		if s < 2 || s&(s-1) != 0 {
			return c, fmt.Errorf("wavelet: scale %d is not a power of two ≥ 2", s)
		}
	}
	if c.ThresholdAmpCycles == 0 {
		c.ThresholdAmpCycles = 8
	}
	if c.ThresholdAmpCycles <= 0 {
		return c, fmt.Errorf("wavelet: threshold must be positive (got %g)", c.ThresholdAmpCycles)
	}
	if c.Repetitions == 0 {
		c.Repetitions = 2
	}
	if c.Repetitions < 1 {
		return c, fmt.Errorf("wavelet: repetitions must be ≥ 1 (got %d)", c.Repetitions)
	}
	if c.ResponseCycles == 0 {
		c.ResponseCycles = 100
	}
	if c.ResponseCycles < 1 {
		return c, fmt.Errorf("wavelet: response cycles must be ≥ 1 (got %d)", c.ResponseCycles)
	}
	return c, nil
}

// Stats accumulates behaviour.
type Stats struct {
	Cycles         uint64
	Events         uint64
	ResponseCycles uint64
	Responses      uint64
}

// ResponseFraction returns the fraction of cycles spent responding.
func (s Stats) ResponseFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ResponseCycles) / float64(s.Cycles)
}

// scaleState tracks event chaining at one Haar scale.
type scaleState struct {
	scale     int
	threshold float64
	// lastSign and lastEventCycle implement alternating-sign chaining:
	// a new event of opposite sign one scale-length after the previous
	// one extends the chain.
	lastSign       int
	lastEventCycle uint64
	chain          int
	inEvent        bool // suppress duplicate counting within a crossing
}

// Controller is the wavelet-based detect-and-respond mechanism.
type Controller struct {
	cfg Config

	cum    []float64 // cumulative-sum ring
	total  float64
	cycle  uint64
	warmup int

	scales []scaleState

	respondUntil uint64
	stats        Stats
}

// New returns a controller. It panics on an invalid configuration.
func New(cfg Config) *Controller {
	resolved, err := cfg.withDefaults()
	if err != nil {
		panic(fmt.Sprintf("wavelet.New: %v", err))
	}
	maxScale := 0
	states := make([]scaleState, len(resolved.Scales))
	for i, s := range resolved.Scales {
		if s > maxScale {
			maxScale = s
		}
		states[i] = scaleState{scale: s, threshold: resolved.ThresholdAmpCycles * float64(s)}
	}
	return &Controller{
		cfg:    resolved,
		cum:    make([]float64, 2*maxScale+2),
		scales: states,
	}
}

// Config returns the resolved configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// detail computes the Haar detail coefficient at the given scale for the
// current cycle.
func (c *Controller) detail(scale int) float64 {
	n := len(c.cum)
	at := func(back int) float64 {
		return c.cum[((int(c.cycle%uint64(n))-back)%n+n)%n]
	}
	recent := at(0) - at(scale)
	prior := at(scale) - at(2*scale)
	return recent - prior
}

// Step consumes one cycle of sensed core current and returns the
// throttle for the next cycle.
func (c *Controller) Step(sensedAmps float64) cpu.Throttle {
	c.total += sensedAmps
	c.cum[c.cycle%uint64(len(c.cum))] = c.total

	maxScale := c.scales[len(c.scales)-1].scale
	if c.warmup < 2*maxScale {
		c.warmup++
	} else {
		for i := range c.scales {
			c.observeScale(&c.scales[i])
		}
	}

	c.stats.Cycles++
	out := cpu.Unlimited
	if c.cycle < c.respondUntil {
		c.stats.ResponseCycles++
		out = cpu.Throttle{IssueWidth: 4, CachePorts: 1, IssueCurrentBudget: -1}
	}
	c.cycle++
	return out
}

// observeScale updates one scale's chain state and triggers the response
// when the chain reaches the configured repetitions.
func (c *Controller) observeScale(st *scaleState) {
	d := c.detail(st.scale)
	sign := 0
	switch {
	case d > st.threshold:
		sign = 1
	case d < -st.threshold:
		sign = -1
	}
	if sign == 0 {
		st.inEvent = false
		return
	}
	if st.inEvent && sign == st.lastSign {
		return // same crossing
	}
	st.inEvent = true
	c.stats.Events++

	// Chain if the sign alternates and the previous event is roughly a
	// scale-length ago (between s/2 and 2s cycles).
	gap := c.cycle - st.lastEventCycle
	if st.lastSign != 0 && sign != st.lastSign &&
		gap >= uint64(st.scale/2) && gap <= uint64(2*st.scale) {
		st.chain++
	} else {
		st.chain = 1
	}
	st.lastSign = sign
	st.lastEventCycle = c.cycle

	if st.chain >= c.cfg.Repetitions {
		until := c.cycle + uint64(c.cfg.ResponseCycles)
		if until > c.respondUntil {
			if c.cycle >= c.respondUntil {
				c.stats.Responses++
			}
			c.respondUntil = until
		}
		st.chain = 0
	}
}
