package wavelet

import (
	"testing"

	"repro/internal/circuit"
)

func TestDefaults(t *testing.T) {
	c := New(Config{})
	cfg := c.Config()
	if len(cfg.Scales) != 2 || cfg.Scales[0] != 32 || cfg.Scales[1] != 64 {
		t.Errorf("default scales %v", cfg.Scales)
	}
	if cfg.ThresholdAmpCycles != 8 || cfg.Repetitions != 2 || cfg.ResponseCycles != 100 {
		t.Errorf("defaults %+v", cfg)
	}
}

func TestDetectsResonantWave(t *testing.T) {
	c := New(Config{})
	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: 100}
	responded := 0
	for cyc := 0; cyc < 3000; cyc++ {
		th := c.Step(w.At(cyc))
		if th.IssueWidth == 4 {
			responded++
		}
	}
	if responded == 0 {
		t.Error("no response to a 40 A resonant square")
	}
	st := c.Stats()
	if st.Events == 0 || st.Responses == 0 {
		t.Errorf("stats empty: %+v", st)
	}
	if st.ResponseFraction() <= 0 {
		t.Error("fraction empty")
	}
}

func TestIgnoresConstantCurrent(t *testing.T) {
	c := New(Config{})
	for cyc := 0; cyc < 3000; cyc++ {
		th := c.Step(85)
		if th.IssueWidth != 0 {
			t.Fatalf("cycle %d: responded to constant current", cyc)
		}
	}
	if c.Stats().Events != 0 {
		t.Errorf("events on constant current: %d", c.Stats().Events)
	}
}

func TestIsolatedStepDoesNotTriggerResponse(t *testing.T) {
	// A single transition produces events but no alternating chain, so
	// with Repetitions 2 there is no response.
	c := New(Config{})
	for cyc := 0; cyc < 2000; cyc++ {
		amps := 50.0
		if cyc >= 1000 {
			amps = 90
		}
		if th := c.Step(amps); th.IssueWidth == 4 {
			t.Fatalf("cycle %d: responded to an isolated step", cyc)
		}
	}
}

func TestScaleMismatchMissesBandEdge(t *testing.T) {
	// The dyadic-scale weakness the paper's framing implies: a wave at
	// the upper band edge (119-cycle period, half-period ~60) sits
	// between scales 32 and 64 less favourably than the resonant
	// period; the detector still fires there, but a wave well outside
	// any scale window (16-cycle period) must not trigger a response.
	c := New(Config{})
	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: 16}
	for cyc := 0; cyc < 4000; cyc++ {
		if th := c.Step(w.At(cyc)); th.IssueWidth == 4 {
			t.Fatalf("cycle %d: responded to a 16-cycle square", cyc)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Scales: []int{33}},
		{Scales: []int{1}},
		{ThresholdAmpCycles: -1},
		{Repetitions: -1},
		{ResponseCycles: -5},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d accepted", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestStatsZero(t *testing.T) {
	var s Stats
	if s.ResponseFraction() != 0 {
		t.Error("zero stats fraction")
	}
}
