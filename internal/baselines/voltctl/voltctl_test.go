package voltctl

import (
	"math"
	"testing"
)

func cleanConfig() Config {
	return Config{TargetThresholdVolts: 0.030}
}

func TestLowVoltageStallsFetchAndIssue(t *testing.T) {
	c := New(cleanConfig())
	r := c.Step(-0.040)
	if !r.InResponse {
		t.Fatal("no response to -40 mV with 30 mV threshold")
	}
	if !r.Throttle.StallIssue || !r.Throttle.StallFetch {
		t.Errorf("low-voltage response throttle %+v, want fetch+issue stall", r.Throttle)
	}
	if r.PhantomFire {
		t.Error("low-voltage response should not phantom fire")
	}
}

func TestHighVoltagePhantomFires(t *testing.T) {
	c := New(cleanConfig())
	r := c.Step(+0.040)
	if !r.InResponse || !r.PhantomFire {
		t.Fatalf("high-voltage response %+v, want phantom fire", r)
	}
	if r.Throttle.StallIssue || r.Throttle.StallFetch {
		t.Error("high-voltage response should not stall")
	}
}

func TestInsideWindowNoResponse(t *testing.T) {
	c := New(cleanConfig())
	for _, v := range []float64{0, 0.029, -0.029, 0.010} {
		if r := c.Step(v); r.InResponse {
			t.Errorf("responded to %g V inside the 30 mV window", v)
		}
	}
}

func TestActualThresholdAccountsForNoise(t *testing.T) {
	c := Config{TargetThresholdVolts: 0.030, SensorNoiseVolts: 0.015}
	if got := c.ActualThresholdVolts(); math.Abs(got-0.0225) > 1e-12 {
		t.Errorf("actual threshold %g, want 0.0225", got)
	}
}

func TestNoiseCausesFalseAlarms(t *testing.T) {
	// With 15 mV of noise and a 22.5 mV actual threshold, a true
	// deviation of 20 mV (harmless at the 30 mV target) sometimes
	// crosses.
	c := New(Config{TargetThresholdVolts: 0.030, SensorNoiseVolts: 0.015, Seed: 3})
	fired := 0
	for i := 0; i < 10_000; i++ {
		if r := c.Step(0.020); r.InResponse {
			fired++
		}
	}
	if fired == 0 {
		t.Error("noisy sensor never false-alarmed on a 20 mV deviation")
	}
	if got := c.Stats().ResponseFraction(); got == 0 {
		t.Errorf("response fraction %g, want > 0", got)
	}
}

func TestDelayPostponesResponse(t *testing.T) {
	c := New(Config{TargetThresholdVolts: 0.030, SensorDelayCycles: 3})
	// Three quiet cycles prime the delay line.
	for i := 0; i < 3; i++ {
		if r := c.Step(0); r.InResponse {
			t.Fatal("responded during quiet warm-up")
		}
	}
	// A deep sag appears now but is seen 3 cycles later.
	if r := c.Step(-0.040); r.InResponse {
		t.Fatal("zero-delay response from a 3-cycle-delayed sensor")
	}
	c.Step(0)
	c.Step(0)
	if r := c.Step(0); !r.InResponse {
		t.Error("sag never surfaced after the sensor delay")
	}
}

func TestStatsCounters(t *testing.T) {
	c := New(cleanConfig())
	c.Step(-0.040)
	c.Step(+0.040)
	c.Step(0)
	s := c.Stats()
	if s.Cycles != 3 || s.ResponseCycles != 2 || s.LowResponses != 1 || s.HighResponses != 1 {
		t.Errorf("stats %+v, want 3 cycles, 2 responses split 1/1", s)
	}
	if math.Abs(s.ResponseFraction()-2.0/3) > 1e-12 {
		t.Errorf("response fraction %g, want 2/3", s.ResponseFraction())
	}
	var zero Stats
	if zero.ResponseFraction() != 0 {
		t.Error("zero stats fraction should be 0")
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{TargetThresholdVolts: 0},
		{TargetThresholdVolts: -0.01},
		{TargetThresholdVolts: 0.03, SensorNoiseVolts: -1},
		{TargetThresholdVolts: 0.03, SensorDelayCycles: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := cleanConfig().Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{})
}
