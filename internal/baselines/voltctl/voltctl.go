// Package voltctl implements the inductive-noise control technique of
// reference [10] (Joseph, Brooks & Martonosi, HPCA 2003) as the paper's
// Section 5.3.1 evaluates it: a supply-voltage sensor with a detection
// threshold, optional peak-to-peak sensor noise and sensing/actuation
// delay, and an immediate two-sided response — stall fetch and issue when
// the voltage swings low, phantom-fire the L1 caches and functional units
// when it swings high.
//
// Because the scheme reacts to every threshold crossing, it also reacts
// to harmless off-band variations and to ringing echoes of past events;
// the paper's central critique is that those false alarms, plus the need
// for fast fine-grained sensors, make the technique expensive. The noise
// and delay parameters reproduce the Table 4 sweep.
package voltctl

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/sensor"
)

// Config parameterises the technique.
type Config struct {
	// TargetThresholdVolts is the designed detection threshold (half of
	// [10]'s "safe window"; 20-30 mV in Table 4).
	TargetThresholdVolts float64
	// SensorNoiseVolts is the peak-to-peak sensor noise (0-15 mV).
	SensorNoiseVolts float64
	// SensorDelayCycles is the sensing/actuation delay (0-5 cycles).
	SensorDelayCycles int
	// Seed seeds the deterministic sensor-noise generator.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.TargetThresholdVolts <= 0:
		return fmt.Errorf("voltctl: target threshold must be positive (got %g)", c.TargetThresholdVolts)
	case c.SensorNoiseVolts < 0:
		return fmt.Errorf("voltctl: sensor noise must be ≥ 0 (got %g)", c.SensorNoiseVolts)
	case c.SensorDelayCycles < 0:
		return fmt.Errorf("voltctl: sensor delay must be ≥ 0 (got %d)", c.SensorDelayCycles)
	}
	return nil
}

// ActualThresholdVolts returns the usable threshold once sensor noise is
// subtracted (Table 4's third column).
func (c Config) ActualThresholdVolts() float64 {
	return sensor.EffectiveThreshold(c.TargetThresholdVolts, c.SensorNoiseVolts)
}

// Response is the control decision for the next cycle.
type Response struct {
	// Throttle stalls fetch and issue when the supply voltage sagged
	// below the threshold.
	Throttle cpu.Throttle
	// PhantomFire requests firing idle units to burn current when the
	// voltage overshot above the threshold.
	PhantomFire bool
	// InResponse reports whether either response is active.
	InResponse bool
}

// Stats accumulates behaviour for the Table 4 columns.
type Stats struct {
	Cycles         uint64
	ResponseCycles uint64
	LowResponses   uint64 // cycles stalling (voltage low)
	HighResponses  uint64 // cycles phantom-firing (voltage high)
}

// ResponseFraction returns the fraction of cycles spent responding.
func (s Stats) ResponseFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ResponseCycles) / float64(s.Cycles)
}

// Controller drives the technique; feed it the true supply deviation once
// per cycle.
type Controller struct {
	cfg   Config
	sens  *sensor.Voltage
	stats Stats
}

// New returns a controller. It panics on an invalid configuration.
func New(cfg Config) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("voltctl.New: %v", err))
	}
	return &Controller{
		cfg:  cfg,
		sens: sensor.NewVoltage(cfg.SensorNoiseVolts, cfg.SensorDelayCycles, cfg.Seed),
	}
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// Step consumes the cycle's true supply deviation (volts) and returns the
// response to apply next cycle.
func (c *Controller) Step(trueDeviationVolts float64) Response {
	sensed := c.sens.Read(trueDeviationVolts)
	thr := c.cfg.ActualThresholdVolts()
	c.stats.Cycles++
	switch {
	case sensed < -thr:
		c.stats.ResponseCycles++
		c.stats.LowResponses++
		return Response{
			Throttle:   cpu.Throttle{StallIssue: true, StallFetch: true, IssueCurrentBudget: -1},
			InResponse: true,
		}
	case sensed > thr:
		c.stats.ResponseCycles++
		c.stats.HighResponses++
		return Response{
			Throttle:    cpu.Unlimited,
			PhantomFire: true,
			InResponse:  true,
		}
	default:
		return Response{Throttle: cpu.Unlimited}
	}
}
