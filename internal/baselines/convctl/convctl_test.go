package convctl

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

func defaultConfig() Config { return Config{Supply: circuit.Table1()} }

func TestImpulseResponseShape(t *testing.T) {
	p := circuit.Table1()
	h := ImpulseResponse(p, 400)
	// The response to a 1 A pulse rings at the resonant period and
	// decays.
	peakEarly, peakLate := 0.0, 0.0
	for k, v := range h {
		a := math.Abs(v)
		if k < 100 && a > peakEarly {
			peakEarly = a
		}
		if k >= 300 && a > peakLate {
			peakLate = a
		}
	}
	if peakEarly == 0 {
		t.Fatal("no early response")
	}
	if peakLate >= peakEarly/5 {
		t.Errorf("response not decaying: early %g, late %g", peakEarly, peakLate)
	}
	// Sign alternation at roughly the resonant half-period.
	signFlips := 0
	prev := 0.0
	for _, v := range h[:200] {
		if v*prev < 0 {
			signFlips++
		}
		if v != 0 {
			prev = v
		}
	}
	if signFlips < 2 {
		t.Errorf("response rang through only %d sign flips in 2 periods", signFlips)
	}
}

func TestDefaultsResolved(t *testing.T) {
	c := New(defaultConfig())
	cfg := c.Config()
	if cfg.Taps < 100 || cfg.Taps > 2000 {
		t.Errorf("derived taps %d implausible", cfg.Taps)
	}
	if cfg.Horizon != 4 {
		t.Errorf("default horizon %d", cfg.Horizon)
	}
	if math.Abs(cfg.ThresholdVolts-0.03) > 1e-12 {
		t.Errorf("default threshold %g, want 0.030", cfg.ThresholdVolts)
	}
}

func TestPredictionTracksResonantBuildup(t *testing.T) {
	// Drive the controller and the real circuit with the same resonant
	// waveform; the convolution prediction must stay close to the
	// actual deviation once history fills.
	p := circuit.Table1()
	ctl := New(Config{Supply: p, Horizon: 1})
	sim := circuit.NewSimulator(p, 70)
	w := circuit.Square{Mid: 70, Amplitude: 20, PeriodCycles: 100}

	var prevPred float64
	worst, sum := 0.0, 0.0
	n := 0
	for c := 0; c < 3000; c++ {
		i := w.At(c)
		dev := sim.Step(i)
		if c > ctl.Config().Taps+10 {
			// prevPred was the prediction for this cycle.
			e := math.Abs(prevPred - dev)
			if e > worst {
				worst = e
			}
			sum += e
			n++
		}
		r := ctl.Step(i, dev)
		prevPred = r.PredictedVolts
	}
	// A 20 A resonant square reaches ~±35 mV. The prediction cannot
	// foresee the square's transitions (a ±20 A jump costs |h[0]|·20 ≈
	// 7 mV for exactly one cycle), but away from transitions it must
	// track within a millivolt or two on average.
	if worst > 0.010 {
		t.Errorf("worst 1-cycle prediction error %.4f V", worst)
	}
	if mean := sum / float64(n); mean > 0.0015 {
		t.Errorf("mean 1-cycle prediction error %.5f V", mean)
	}
}

func TestRespondsToThreateningWaveform(t *testing.T) {
	p := circuit.Table1()
	ctl := New(Config{Supply: p})
	sim := circuit.NewSimulator(p, 70)
	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: 100}
	responses := 0
	for c := 0; c < 4000; c++ {
		i := w.At(c)
		dev := sim.Step(i)
		if r := ctl.Step(i, dev); r.InResponse {
			responses++
		}
	}
	if responses == 0 {
		t.Error("no response to a 40 A resonant square")
	}
	st := ctl.Stats()
	if st.LowResponses == 0 || st.HighResponses == 0 {
		t.Errorf("one-sided responses: low %d, high %d", st.LowResponses, st.HighResponses)
	}
	if st.ResponseFraction() <= 0 {
		t.Error("stats fraction empty")
	}
}

func TestQuietCurrentNoResponse(t *testing.T) {
	ctl := New(defaultConfig())
	for c := 0; c < 3000; c++ {
		if r := ctl.Step(70, 0); r.InResponse {
			t.Fatalf("cycle %d: responded to constant current", c)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Supply: circuit.Table1(), ThresholdVolts: -1},
		{Supply: circuit.Table1(), Horizon: -2},
		{Supply: circuit.Table1(), Taps: 3},
		{Supply: circuit.Table1(), EstimateErrorAmps: -1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d accepted", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestStatsZeroValue(t *testing.T) {
	var s Stats
	if s.ResponseFraction() != 0 {
		t.Error("zero stats fraction")
	}
}

func TestEstimateErrorDegradesPrediction(t *testing.T) {
	p := circuit.Table1()
	run := func(errAmps float64) float64 {
		ctl := New(Config{Supply: p, EstimateErrorAmps: errAmps, Seed: 5})
		sim := circuit.NewSimulator(p, 70)
		w := circuit.Square{Mid: 70, Amplitude: 20, PeriodCycles: 100}
		for c := 0; c < 4000; c++ {
			i := w.At(c)
			ctl.Step(i, sim.Step(i))
		}
		return ctl.Stats().WorstAbsError
	}
	perfect, noisy := run(0), run(10)
	if noisy <= perfect {
		t.Errorf("estimate error did not degrade prediction: %g vs %g", noisy, perfect)
	}
}
