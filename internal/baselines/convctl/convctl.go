// Package convctl implements the convolution-based di/dt controller of
// reference [8] (Grochowski, Ayers & Tiwari, HPCA 2002) that the paper
// critiques in Sections 1 and 6: convolve the recent processor-current
// history with the power-supply's voltage impulse response to predict the
// supply deviation a few cycles ahead, and throttle or phantom-fire when
// the prediction crosses a threshold.
//
// The scheme's conceptual appeal is an exact model-based prediction; the
// paper's critique is practical: it needs an accurate a-priori current
// estimate and a full convolution every cycle (hundreds of multiply-
// accumulates at resonance-period time scales), which is hard to build in
// hardware. In simulation the convolution is merely expensive, so this
// package exists to reproduce the comparison, with the impulse response
// derived from the same simulated supply the rest of the repo uses.
package convctl

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/rng"
)

// Config parameterises the controller.
type Config struct {
	// Supply is the power-distribution network whose impulse response
	// drives the prediction.
	Supply circuit.Params
	// Taps is the impulse-response length in cycles; zero derives it
	// from the supply (enough periods for the response to decay below
	// 1% of its peak).
	Taps int
	// ThresholdVolts is the predicted-deviation magnitude that triggers
	// a response; zero means 60% of the noise margin.
	ThresholdVolts float64
	// Horizon is how many cycles ahead the prediction looks; zero
	// means 4 (the scheme must act before the deviation materialises).
	Horizon int
	// EstimateErrorAmps models [8]'s real weakness: the convolution
	// consumes a-priori current *estimates*, not measurements, and
	// instruction-based estimates miss cache and gating behaviour by
	// whole amps. Each recorded variation carries an additive uniform
	// error of ±this many amps. Zero means perfect estimates.
	EstimateErrorAmps float64
	// Seed seeds the estimate-error generator.
	Seed uint64
}

// WithDefaults returns the configuration with every zero field resolved
// to its default (the form New actually runs), or an error when the
// configuration is unusable. It is what the engine's technique registry
// normalizes and validates specs with.
func (c Config) WithDefaults() (Config, error) { return c.withDefaults() }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	_, err := c.withDefaults()
	return err
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() (Config, error) {
	if err := c.Supply.Validate(); err != nil {
		return c, err
	}
	if !c.Supply.Underdamped() {
		return c, fmt.Errorf("convctl: overdamped supply needs no control")
	}
	if c.ThresholdVolts == 0 {
		c.ThresholdVolts = 0.6 * c.Supply.NoiseMarginVolts()
	}
	if c.ThresholdVolts <= 0 {
		return c, fmt.Errorf("convctl: threshold must be positive (got %g)", c.ThresholdVolts)
	}
	if c.Horizon == 0 {
		c.Horizon = 4
	}
	if c.Horizon < 1 {
		return c, fmt.Errorf("convctl: horizon must be ≥ 1 (got %d)", c.Horizon)
	}
	if c.Taps == 0 {
		c.Taps = deriveTaps(c.Supply)
	}
	if c.Taps < 8 {
		return c, fmt.Errorf("convctl: too few taps (%d)", c.Taps)
	}
	if c.EstimateErrorAmps < 0 {
		return c, fmt.Errorf("convctl: estimate error must be ≥ 0 (got %g)", c.EstimateErrorAmps)
	}
	return c, nil
}

// deriveTaps finds how many cycles the deviation impulse response needs
// before it decays below 1% of its peak.
func deriveTaps(p circuit.Params) int {
	h := ImpulseResponse(p, int(8*p.ResonantPeriodCycles()))
	peak := 0.0
	for _, v := range h {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	last := len(h)
	for last > 8 {
		if math.Abs(h[last-1]) > peak/100 {
			break
		}
		last--
	}
	return last
}

// ImpulseResponse simulates the supply's reported-deviation response to a
// one-amp, one-cycle current pulse on top of a steady bias. By linearity
// (see the circuit package's superposition tests), the deviation under
// any current waveform is the convolution of this response with the
// waveform's variation around the bias.
func ImpulseResponse(p circuit.Params, n int) []float64 {
	bias := (p.IMax + p.IMin) / 2
	sim := circuit.NewSimulator(p, bias)
	h := make([]float64, n)
	h[0] = sim.Step(bias + 1)
	for k := 1; k < n; k++ {
		h[k] = sim.Step(bias)
	}
	return h
}

// Response is the control decision for the next cycle.
type Response struct {
	// Throttle stalls fetch and issue when the predicted deviation
	// undershoots the threshold.
	Throttle cpu.Throttle
	// PhantomFire requests burning current when the prediction
	// overshoots.
	PhantomFire bool
	// InResponse reports whether either action is active.
	InResponse bool
	// PredictedVolts is the deviation predicted Horizon cycles ahead.
	PredictedVolts float64
}

// Stats accumulates controller behaviour.
type Stats struct {
	Cycles         uint64
	ResponseCycles uint64
	LowResponses   uint64
	HighResponses  uint64
	// WorstAbsError tracks |predicted − actual| for the prediction made
	// Horizon cycles earlier, a measure of how good the model-based
	// prediction is.
	WorstAbsError float64
}

// ResponseFraction returns the fraction of cycles spent responding.
func (s Stats) ResponseFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ResponseCycles) / float64(s.Cycles)
}

// Controller predicts the supply deviation by rolling convolution and
// reacts when the prediction crosses the threshold.
type Controller struct {
	cfg  Config
	h    []float64 // impulse response, h[0] most recent
	bias float64

	hist []float64 // current-variation history ring, most recent at pos
	pos  int
	n    int

	pendingPred []float64 // predictions awaiting their actual, ring
	pendingPos  int

	errRng *rng.Source

	stats Stats
}

// New returns a controller. It panics on an invalid configuration,
// mirroring the other technique constructors.
func New(cfg Config) *Controller {
	resolved, err := cfg.withDefaults()
	if err != nil {
		panic(fmt.Sprintf("convctl.New: %v", err))
	}
	return &Controller{
		cfg:         resolved,
		h:           ImpulseResponse(resolved.Supply, resolved.Taps),
		bias:        (resolved.Supply.IMax + resolved.Supply.IMin) / 2,
		hist:        make([]float64, resolved.Taps),
		pendingPred: make([]float64, resolved.Horizon),
		errRng:      rng.New(resolved.Seed),
	}
}

// Config returns the resolved configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// predict convolves the history with the impulse response, assuming the
// current holds at its latest value for the prediction horizon.
func (c *Controller) predict() float64 {
	// Deviation at t+Horizon = Σ_k h[k] · Δi(t+Horizon-k). For k <
	// Horizon the future variation is assumed equal to the latest
	// sample; beyond that the recorded history applies.
	latest := c.hist[c.pos]
	v := 0.0
	for k := 0; k < c.cfg.Horizon && k < len(c.h); k++ {
		v += c.h[k] * latest
	}
	for k := c.cfg.Horizon; k < len(c.h); k++ {
		idx := (c.pos - (k - c.cfg.Horizon) + len(c.hist)*8) % len(c.hist)
		v += c.h[k] * c.hist[idx]
	}
	return v
}

// Step consumes the cycle's actual core current and true deviation
// (used only for prediction-accuracy accounting) and returns the
// response for the next cycle.
func (c *Controller) Step(coreAmps, trueDeviation float64) Response {
	variation := coreAmps - c.bias
	if e := c.cfg.EstimateErrorAmps; e > 0 {
		variation += (2*c.errRng.Float64() - 1) * e
	}
	c.pos = (c.pos + 1) % len(c.hist)
	c.hist[c.pos] = variation
	if c.n < len(c.hist) {
		c.n++
	}

	pred := c.predict()

	// Prediction-accuracy bookkeeping: compare the prediction made
	// Horizon cycles ago with today's truth.
	old := c.pendingPred[c.pendingPos]
	c.pendingPred[c.pendingPos] = pred
	c.pendingPos = (c.pendingPos + 1) % len(c.pendingPred)
	if c.stats.Cycles >= uint64(len(c.pendingPred)+len(c.hist)) {
		if e := math.Abs(old - trueDeviation); e > c.stats.WorstAbsError {
			c.stats.WorstAbsError = e
		}
	}

	c.stats.Cycles++
	switch {
	case c.n < len(c.hist):
		// History still filling: no reliable prediction yet.
		return Response{Throttle: cpu.Unlimited, PredictedVolts: pred}
	case pred < -c.cfg.ThresholdVolts:
		c.stats.ResponseCycles++
		c.stats.LowResponses++
		return Response{
			Throttle:       cpu.Throttle{StallIssue: true, StallFetch: true, IssueCurrentBudget: -1},
			InResponse:     true,
			PredictedVolts: pred,
		}
	case pred > c.cfg.ThresholdVolts:
		c.stats.ResponseCycles++
		c.stats.HighResponses++
		return Response{
			Throttle:       cpu.Unlimited,
			PhantomFire:    true,
			InResponse:     true,
			PredictedVolts: pred,
		}
	default:
		return Response{Throttle: cpu.Unlimited, PredictedVolts: pred}
	}
}
