package tuning

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/cpu"
)

// table1Controller returns the paper's evaluated configuration: initial
// response threshold 2, second-level threshold 3, first-level response
// 8→4 issue / 2→1 ports for 100 cycles, second-level 35 cycles at a
// 70 A phantom target.
func table1Controller() Config {
	return Config{
		Detector:                 table1Detector(),
		InitialResponseThreshold: 2,
		SecondResponseThreshold:  3,
		InitialResponseCycles:    100,
		SecondResponseCycles:     35,
		ReducedIssueWidth:        4,
		ReducedCachePorts:        1,
		PhantomTargetAmps:        70,
	}
}

// driveController feeds the waveform for n cycles and returns the
// responses observed each cycle.
func driveController(c *Controller, w circuit.Waveform, n int) []Response {
	out := make([]Response, n)
	for i := 0; i < n; i++ {
		out[i] = c.Step(w.At(i))
	}
	return out
}

func levelSeen(rs []Response, l Level) bool {
	for _, r := range rs {
		if r.Level == l {
			return true
		}
	}
	return false
}

func TestControllerEscalatesOnSustainedResonance(t *testing.T) {
	c := NewController(table1Controller())
	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: 100, Start: 150}
	rs := driveController(c, w, 1000)
	if !levelSeen(rs, LevelFirst) {
		t.Error("first-level response never engaged")
	}
	if !levelSeen(rs, LevelSecond) {
		t.Error("second-level response never engaged under sustained resonance")
	}
	st := c.Stats()
	if st.FirstLevelFires == 0 || st.SecondLevelFires == 0 {
		t.Errorf("fires: first=%d second=%d, want both > 0", st.FirstLevelFires, st.SecondLevelFires)
	}
	if st.Cycles != 1000 {
		t.Errorf("stats cycles = %d, want 1000", st.Cycles)
	}
}

func TestSecondLevelStallsAndHoldsPhantom(t *testing.T) {
	c := NewController(table1Controller())
	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: 100, Start: 150}
	rs := driveController(c, w, 1000)
	for i, r := range rs {
		switch r.Level {
		case LevelSecond:
			if !r.Throttle.StallIssue {
				t.Fatalf("cycle %d: second level without issue stall", i)
			}
			if r.PhantomTargetAmps != 70 {
				t.Fatalf("cycle %d: phantom target %g, want 70", i, r.PhantomTargetAmps)
			}
		case LevelFirst:
			if r.Throttle.IssueWidth != 4 || r.Throttle.CachePorts != 1 {
				t.Fatalf("cycle %d: first level throttle %+v", i, r.Throttle)
			}
			if r.PhantomTargetAmps != 0 {
				t.Fatalf("cycle %d: first level should not phantom", i)
			}
		case LevelNone:
			if r.Throttle.StallIssue || r.Throttle.IssueWidth != 0 {
				t.Fatalf("cycle %d: idle response carries throttle %+v", i, r.Throttle)
			}
		}
	}
}

func TestControllerIgnoresIsolatedTransition(t *testing.T) {
	c := NewController(table1Controller())
	w := circuit.WaveformFunc(func(cy int) float64 {
		if cy == 400 {
			return 90
		}
		if cy > 400 {
			return 50
		}
		return 90
	})
	rs := driveController(c, w, 1200)
	if levelSeen(rs, LevelFirst) || levelSeen(rs, LevelSecond) {
		t.Error("controller responded to an isolated transition (count 1)")
	}
}

func TestControllerQuiescesAfterStimulus(t *testing.T) {
	c := NewController(table1Controller())
	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: 100, Start: 100, End: 600}
	driveController(c, w, 600)
	// Long quiet tail: responses must expire.
	tail := driveController(c, circuit.Constant(70), 2000)
	quiet := tail[500:]
	if levelSeen(quiet, LevelFirst) || levelSeen(quiet, LevelSecond) {
		t.Error("response still active long after variations stopped")
	}
}

func TestResponseDelayPostponesEngagement(t *testing.T) {
	base := table1Controller()
	delayed := base
	delayed.ResponseDelayCycles = 5

	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: 100, Start: 150}
	firstEngage := func(cfg Config) int {
		c := NewController(cfg)
		rs := driveController(c, w, 1500)
		for i, r := range rs {
			if r.Level != LevelNone {
				return i
			}
		}
		return -1
	}
	a, b := firstEngage(base), firstEngage(delayed)
	if a < 0 || b < 0 {
		t.Fatalf("responses never engaged: base=%d delayed=%d", a, b)
	}
	if b != a+5 {
		t.Errorf("delayed engagement at %d, base at %d, want +5", b, a)
	}
}

func TestStatsFractions(t *testing.T) {
	var s Stats
	if s.FirstLevelFraction() != 0 || s.SecondLevelFraction() != 0 {
		t.Error("zero stats should have zero fractions")
	}
	s = Stats{Cycles: 100, FirstLevelCycles: 25, SecondLevelCycles: 5}
	if s.FirstLevelFraction() != 0.25 || s.SecondLevelFraction() != 0.05 {
		t.Errorf("fractions %g/%g, want 0.25/0.05", s.FirstLevelFraction(), s.SecondLevelFraction())
	}
}

func TestConfigValidateRejectsBadControllers(t *testing.T) {
	mutate := []func(*Config){
		func(c *Config) { c.InitialResponseThreshold = 0 },
		func(c *Config) { c.SecondResponseThreshold = c.InitialResponseThreshold },
		func(c *Config) { c.SecondResponseThreshold = c.Detector.MaxRepetitionTolerance + 1 },
		func(c *Config) { c.InitialResponseCycles = 0 },
		func(c *Config) { c.SecondResponseCycles = 0 },
		func(c *Config) { c.ReducedIssueWidth = 0 },
		func(c *Config) { c.ReducedCachePorts = 0 },
		func(c *Config) { c.ResponseDelayCycles = -1 },
		func(c *Config) { c.PhantomTargetAmps = -1 },
		func(c *Config) { c.Detector.ThresholdAmps = 0 },
	}
	for i, m := range mutate {
		cfg := table1Controller()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := table1Controller().Validate(); err != nil {
		t.Errorf("good controller config rejected: %v", err)
	}
}

func TestNewControllerPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewController(Config{})
}

func TestFromSupplyDefaults(t *testing.T) {
	p := circuit.Table1()
	cal := circuit.Calibration{ThresholdAmps: 32, MaxRepetitionTolerance: 4, BandEdgeToleranceAmps: 44}
	cfg := FromSupply(p, cal, cpu.DefaultConfig(), 100, 70)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("FromSupply config invalid: %v", err)
	}
	if cfg.InitialResponseThreshold != 2 || cfg.SecondResponseThreshold != 3 {
		t.Errorf("thresholds %d/%d, want 2/3", cfg.InitialResponseThreshold, cfg.SecondResponseThreshold)
	}
	if cfg.ReducedIssueWidth != 4 || cfg.ReducedCachePorts != 1 {
		t.Errorf("reduced widths %d/%d, want 4/1", cfg.ReducedIssueWidth, cfg.ReducedCachePorts)
	}
	// The paper holds the second level 35 cycles; the derived value is
	// the dissipation time plus margin, in the same range.
	if cfg.SecondResponseCycles < 20 || cfg.SecondResponseCycles > 45 {
		t.Errorf("second response %d cycles, want ≈ 29-35", cfg.SecondResponseCycles)
	}
}
