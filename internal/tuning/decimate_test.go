package tuning

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

func TestDecimatedCatchesLowFrequencyResonance(t *testing.T) {
	// The Section 2.2 scenario: the two-stage supply's low-frequency
	// loop resonates at a few megahertz — thousands of processor cycles
	// per period. A 25:1 decimated detector with the standard 42-60
	// half-period configuration covers it.
	p := circuit.Table1TwoStage()
	low := p.LowStage()
	period := int(math.Round(p.ClockHz / low.ResonantFrequency())) // ≈ 2500 cycles
	const factor = 25

	det := NewDetector(DetectorConfig{
		HalfPeriodLo:           period / (2 * factor) * 8 / 10,
		HalfPeriodHi:           period / (2 * factor) * 12 / 10,
		ThresholdAmps:          32,
		MaxRepetitionTolerance: 4,
	})
	dec := NewDecimated(det, factor)
	if dec.Factor() != factor || dec.Detector() != det {
		t.Fatal("accessors broken")
	}

	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: period}
	maxCount := 0
	for c := 0; c < 12*period; c++ {
		if ev, ok := dec.Step(w.At(c)); ok && ev.Count > maxCount {
			maxCount = ev.Count
		}
	}
	if maxCount < 4 {
		t.Errorf("decimated detector chained only to count %d on sustained low-frequency resonance", maxCount)
	}
}

func TestDecimatedIgnoresMediumFrequencyVariation(t *testing.T) {
	// The decimation window (25 cycles) averages out medium-frequency
	// (100-cycle period) variation almost entirely, so the low-band
	// detector does not false-alarm on it.
	det := NewDetector(DetectorConfig{
		HalfPeriodLo: 42, HalfPeriodHi: 60,
		ThresholdAmps: 32, MaxRepetitionTolerance: 4,
	})
	dec := NewDecimated(det, 25)
	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: 100}
	events := 0
	for c := 0; c < 200_000; c++ {
		if _, ok := dec.Step(w.At(c)); ok {
			events++
		}
	}
	if events != 0 {
		t.Errorf("decimated low-band detector fired %d events on medium-frequency variation", events)
	}
}

func TestDecimatedAveraging(t *testing.T) {
	// Factor 1 must behave exactly like the raw detector.
	raw := NewDetector(table1Detector())
	wrapped := NewDecimated(NewDetector(table1Detector()), 1)
	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: 100}
	for c := 0; c < 2000; c++ {
		e1, ok1 := raw.Step(w.At(c))
		e2, ok2 := wrapped.Step(w.At(c))
		if ok1 != ok2 || e1 != e2 {
			t.Fatalf("cycle %d: factor-1 decimation diverged", c)
		}
	}
}

func TestNewDecimatedPanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDecimated(NewDetector(table1Detector()), 0)
}
