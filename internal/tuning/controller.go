package tuning

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/cpu"
)

// Config parameterises the full resonance-tuning mechanism: the detector
// plus the two-tier response of Section 3.2.
type Config struct {
	Detector DetectorConfig

	// InitialResponseThreshold is the resonant event count at which the
	// first-level response engages (2 in the paper's evaluation).
	InitialResponseThreshold int
	// SecondResponseThreshold is the count at which the second-level
	// response engages; it must stay below the maximum repetition
	// tolerance to guarantee no violation (3 in the paper).
	SecondResponseThreshold int

	// InitialResponseCycles is how long the first-level response holds
	// (the paper sweeps 75–200).
	InitialResponseCycles int
	// SecondResponseCycles is how long the second-level response holds;
	// it is sized from the supply's damping rate so the event count
	// decays by one (35 in the paper).
	SecondResponseCycles int

	// ReducedIssueWidth and ReducedCachePorts define the first-level
	// response (8→4 and 2→1 in the paper).
	ReducedIssueWidth int
	ReducedCachePorts int

	// ResponseDelayCycles models the lag between detection and the
	// response taking effect (Section 5.2 evaluates 5 cycles).
	ResponseDelayCycles int

	// PhantomTargetAmps is the medium current level the second-level
	// response holds with phantom operations.
	PhantomTargetAmps float64
}

// FromSupply assembles the paper's default tuning configuration for a
// supply and its calibration: initial response threshold 2, second-level
// threshold one below the repetition tolerance, first-level response of
// half issue width and one cache port for initialCycles, and a
// second-level hold derived from the damping rate (with a few cycles of
// engineering margin, as the paper rounds 32 up to 35).
func FromSupply(p circuit.Params, cal circuit.Calibration, cc cpu.Config, initialCycles int, phantomTarget float64) Config {
	det := DetectorFromSupply(p, cal)
	second := cal.MaxRepetitionTolerance - 1
	initial := second - 1
	if initial < 1 {
		initial = 1
	}
	return Config{
		Detector:                 det,
		InitialResponseThreshold: initial,
		SecondResponseThreshold:  second,
		InitialResponseCycles:    initialCycles,
		SecondResponseCycles:     circuit.DissipationCycles(p, cal.MaxRepetitionTolerance) + 3,
		ReducedIssueWidth:        cc.IssueWidth / 2,
		ReducedCachePorts:        cc.CachePorts / 2,
		PhantomTargetAmps:        phantomTarget,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Detector.Validate(); err != nil {
		return err
	}
	switch {
	case c.InitialResponseThreshold < 1:
		return fmt.Errorf("tuning: initial response threshold must be ≥ 1 (got %d)", c.InitialResponseThreshold)
	case c.SecondResponseThreshold <= c.InitialResponseThreshold:
		return fmt.Errorf("tuning: second threshold (%d) must exceed initial (%d)",
			c.SecondResponseThreshold, c.InitialResponseThreshold)
	case c.SecondResponseThreshold >= c.Detector.MaxRepetitionTolerance+1:
		return fmt.Errorf("tuning: second threshold (%d) must stay below violation count (%d)",
			c.SecondResponseThreshold, c.Detector.MaxRepetitionTolerance+1)
	case c.InitialResponseCycles <= 0 || c.SecondResponseCycles <= 0:
		return fmt.Errorf("tuning: response times must be positive (%d, %d)",
			c.InitialResponseCycles, c.SecondResponseCycles)
	case c.ReducedIssueWidth < 1 || c.ReducedCachePorts < 1:
		return fmt.Errorf("tuning: reduced widths must be ≥ 1 (%d, %d)",
			c.ReducedIssueWidth, c.ReducedCachePorts)
	case c.ResponseDelayCycles < 0:
		return fmt.Errorf("tuning: response delay must be ≥ 0 (got %d)", c.ResponseDelayCycles)
	case c.PhantomTargetAmps < 0:
		return fmt.Errorf("tuning: phantom target must be ≥ 0 (got %g)", c.PhantomTargetAmps)
	}
	return nil
}

// Level identifies the active response tier.
type Level int

// Response levels.
const (
	LevelNone   Level = 0
	LevelFirst  Level = 1
	LevelSecond Level = 2
)

// Response is the controller's output for the next cycle.
type Response struct {
	Level Level
	// Throttle is the pipeline control to apply.
	Throttle cpu.Throttle
	// PhantomTargetAmps, when positive, asks the simulator to top up
	// the core current to this level with phantom operations.
	PhantomTargetAmps float64
}

// Stats accumulates controller behaviour for the Table 3 columns.
type Stats struct {
	Cycles            uint64
	FirstLevelCycles  uint64
	SecondLevelCycles uint64
	FirstLevelFires   uint64
	SecondLevelFires  uint64
	EventsDetected    uint64
}

// FirstLevelFraction returns the fraction of cycles spent in first-level
// response.
func (s Stats) FirstLevelFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.FirstLevelCycles) / float64(s.Cycles)
}

// SecondLevelFraction returns the fraction of cycles spent in
// second-level response.
func (s Stats) SecondLevelFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.SecondLevelCycles) / float64(s.Cycles)
}

// Controller drives resonance tuning: it consumes one sensed current
// sample per cycle and produces the throttle for the next cycle.
type Controller struct {
	cfg Config
	det *Detector

	cycle       uint64
	level1Until uint64
	level2Until uint64
	pendingL1At uint64 // scheduled engagement cycles (response delay)
	pendingL2At uint64
	pendingL1   bool
	pendingL2   bool
	stats       Stats

	// The three possible responses, precomputed from cfg so Step's hot
	// path picks one instead of rebuilding a struct every cycle.
	respNone, respL1, respL2 Response
}

// NewController returns a controller for the given configuration. It
// panics if the configuration is invalid.
func NewController(cfg Config) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("tuning.NewController: %v", err))
	}
	return &Controller{
		cfg:      cfg,
		det:      NewDetector(cfg.Detector),
		respNone: Response{Level: LevelNone, Throttle: cpu.Unlimited},
		respL1: Response{
			Level: LevelFirst,
			Throttle: cpu.Throttle{
				IssueWidth:         cfg.ReducedIssueWidth,
				CachePorts:         cfg.ReducedCachePorts,
				IssueCurrentBudget: -1,
			},
		},
		respL2: Response{
			Level:             LevelSecond,
			Throttle:          cpu.Throttle{StallIssue: true, IssueCurrentBudget: -1},
			PhantomTargetAmps: cfg.PhantomTargetAmps,
		},
	}
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Detector exposes the underlying detector (for traces).
func (c *Controller) Detector() *Detector { return c.det }

// Stats returns the accumulated statistics.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.EventsDetected = c.det.EventsDetected()
	return s
}

// Step consumes the sensed core current for the cycle just simulated and
// returns the response to apply next cycle.
func (c *Controller) Step(sensedAmps float64) Response {
	ev, found := c.det.Step(sensedAmps)
	if found {
		// Keep the earliest scheduled engagement: later events must not
		// postpone a response already in flight.
		switch {
		case ev.Count >= c.cfg.SecondResponseThreshold:
			if !c.pendingL2 {
				c.pendingL2 = true
				c.pendingL2At = c.cycle + uint64(c.cfg.ResponseDelayCycles)
			}
		case ev.Count >= c.cfg.InitialResponseThreshold:
			if !c.pendingL1 {
				c.pendingL1 = true
				c.pendingL1At = c.cycle + uint64(c.cfg.ResponseDelayCycles)
			}
		}
	}
	if c.pendingL2 && c.cycle >= c.pendingL2At {
		c.pendingL2 = false
		c.level2Until = c.cycle + uint64(c.cfg.SecondResponseCycles)
		c.stats.SecondLevelFires++
	}
	if c.pendingL1 && c.cycle >= c.pendingL1At {
		c.pendingL1 = false
		c.level1Until = c.cycle + uint64(c.cfg.InitialResponseCycles)
		c.stats.FirstLevelFires++
	}

	resp := &c.respNone
	switch {
	case c.cycle < c.level2Until:
		resp = &c.respL2
		c.stats.SecondLevelCycles++
	case c.cycle < c.level1Until:
		resp = &c.respL1
		c.stats.FirstLevelCycles++
	}
	c.stats.Cycles++
	c.cycle++
	return *resp
}
