package tuning

import "fmt"

// Decimated runs a Detector on a decimated current stream, the natural
// way to apply resonance tuning to the low-frequency resonance of
// Section 2.2: at a few megahertz the resonant period spans thousands of
// processor cycles, so a slow sensor that averages the current over a
// fixed window and feeds the same detector hardware at a coarser
// timebase covers the low band with the identical half-period range.
// Event cycle numbers are in decimated units (multiply by Factor for
// processor cycles).
type Decimated struct {
	det    *Detector
	factor int
	acc    float64
	n      int
}

// NewDecimated wraps det so that every factor consecutive current samples
// are averaged into one detector step. It panics if factor < 1.
func NewDecimated(det *Detector, factor int) *Decimated {
	if factor < 1 {
		panic(fmt.Sprintf("tuning.NewDecimated: factor %d < 1", factor))
	}
	return &Decimated{det: det, factor: factor}
}

// Factor returns the decimation factor.
func (d *Decimated) Factor() int { return d.factor }

// Detector returns the underlying detector.
func (d *Decimated) Detector() *Detector { return d.det }

// Step consumes one processor-cycle current sample. Once a full
// decimation window has accumulated, the averaged sample advances the
// underlying detector and any resulting event is returned.
func (d *Decimated) Step(sensedAmps float64) (Event, bool) {
	d.acc += sensedAmps
	d.n++
	if d.n < d.factor {
		return Event{}, false
	}
	avg := d.acc / float64(d.factor)
	d.acc, d.n = 0, 0
	return d.det.Step(avg)
}
