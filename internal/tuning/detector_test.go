package tuning

import (
	"testing"

	"repro/internal/circuit"
)

// table1Detector returns the paper's Table 1 detector configuration:
// band 84-119 cycles (half-periods 42-60), threshold 32 A, tolerance 4.
func table1Detector() DetectorConfig {
	return DetectorConfig{
		HalfPeriodLo:           42,
		HalfPeriodHi:           60,
		ThresholdAmps:          32,
		MaxRepetitionTolerance: 4,
	}
}

// driveWave feeds n cycles of the waveform into a fresh detector and
// returns all events.
func driveWave(d *Detector, w circuit.Waveform, n int) []Event {
	var events []Event
	for c := 0; c < n; c++ {
		if ev, ok := d.Step(w.At(c)); ok {
			events = append(events, ev)
		}
	}
	return events
}

func maxCount(events []Event) int {
	m := 0
	for _, e := range events {
		if e.Count > m {
			m = e.Count
		}
	}
	return m
}

func TestDetectorFindsResonantSquareWave(t *testing.T) {
	d := NewDetector(table1Detector())
	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: 100, Start: 150}
	events := driveWave(d, w, 800)
	if len(events) == 0 {
		t.Fatal("no events for a 40 A square wave at the resonant period")
	}
	if got := maxCount(events); got < 4 {
		t.Errorf("max chained count = %d, want ≥ 4 for sustained resonance", got)
	}
	// Both polarities must appear.
	var hl, lh bool
	for _, e := range events {
		if e.Polarity == HighLow {
			hl = true
		} else {
			lh = true
		}
	}
	if !hl || !lh {
		t.Errorf("polarities seen: high-low=%v low-high=%v, want both", hl, lh)
	}
}

func TestDetectorCountClimbsMonotonically(t *testing.T) {
	d := NewDetector(table1Detector())
	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: 100, Start: 150}
	events := driveWave(d, w, 600)
	// The first chained counts must be achieved in order 1, 2, 3, ...
	firstAt := map[int]uint64{}
	for _, e := range events {
		if _, ok := firstAt[e.Count]; !ok {
			firstAt[e.Count] = e.Cycle
		}
	}
	for k := 2; k <= 3; k++ {
		lo, okLo := firstAt[k-1]
		hi, okHi := firstAt[k]
		if !okLo || !okHi {
			t.Fatalf("counts %d or %d never reached: %v", k-1, k, firstAt)
		}
		if hi <= lo {
			t.Errorf("count %d first reached at %d, before count %d at %d", k, hi, k-1, lo)
		}
		// Consecutive counts should be roughly a half-period apart.
		if gap := hi - lo; gap < 30 || gap > 80 {
			t.Errorf("gap between count %d and %d = %d cycles, want ≈ half period", k-1, k, gap)
		}
	}
}

func TestDetectorIgnoresSmallVariations(t *testing.T) {
	d := NewDetector(table1Detector())
	// Square diff is A·T/4 against threshold M·T/8: amplitudes at or
	// below M/2 never trigger.
	w := circuit.Square{Mid: 70, Amplitude: 15, PeriodCycles: 100}
	if events := driveWave(d, w, 1000); len(events) != 0 {
		t.Errorf("detected %d events for a sub-threshold 15 A square", len(events))
	}
}

func TestDetectorIgnoresConstantCurrent(t *testing.T) {
	d := NewDetector(table1Detector())
	if events := driveWave(d, circuit.Constant(90), 1000); len(events) != 0 {
		t.Errorf("detected %d events on constant current", len(events))
	}
}

func TestDetectorIgnoresSlowOffBandVariations(t *testing.T) {
	d := NewDetector(table1Detector())
	// A 240-cycle period is well below the band (84-119 cycles): each
	// transition is seen as an isolated event, but opposite-polarity
	// events are 120 cycles apart — outside the 42-60 cycle probe
	// range — so nothing chains.
	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: 240}
	events := driveWave(d, w, 3000)
	if got := maxCount(events); got > 1 {
		t.Errorf("slow off-band square chained to count %d, want ≤ 1", got)
	}
}

func TestDetectorIsConservativeNearBand(t *testing.T) {
	// Documented property of the paper's scheme: strong periodic
	// variations at periods moderately outside the band (e.g. 40 or 50
	// cycles) still alias into the quarter-period windows and the
	// half-period chain probes, so the detector may chain them even
	// though the supply absorbs them. The failure mode is an
	// unnecessary response (performance cost), never a missed
	// violation — the conservative direction for a reliability
	// mechanism. This test pins the conservatism down so a future
	// "fix" that silently changes it is noticed.
	for _, period := range []int{40, 50} {
		d := NewDetector(table1Detector())
		w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: period}
		events := driveWave(d, w, 2000)
		if len(events) == 0 {
			t.Errorf("period %d: no events at all; detection window behaviour changed", period)
		}
	}
}

func TestIsolatedTransitionCountsOnce(t *testing.T) {
	d := NewDetector(table1Detector())
	// A single 40 A step: detected by several adders over consecutive
	// cycles, but consecutive same-polarity detections dedup to one
	// event (Section 3.1.3).
	w := circuit.WaveformFunc(func(c int) float64 {
		if c < 300 {
			return 90
		}
		return 50
	})
	events := driveWave(d, w, 800)
	if len(events) == 0 {
		t.Fatal("isolated 40 A transition not detected at all")
	}
	if got := maxCount(events); got != 1 {
		t.Errorf("isolated transition reached count %d, want 1", got)
	}
	for _, e := range events {
		if e.Polarity != HighLow {
			t.Errorf("step down produced %v event", e.Polarity)
		}
	}
}

func TestOppositeIsolatedTransition(t *testing.T) {
	d := NewDetector(table1Detector())
	w := circuit.WaveformFunc(func(c int) float64 {
		if c < 300 {
			return 50
		}
		return 90
	})
	events := driveWave(d, w, 800)
	if len(events) == 0 {
		t.Fatal("step up not detected")
	}
	for _, e := range events {
		if e.Polarity != LowHigh {
			t.Errorf("step up produced %v event", e.Polarity)
		}
	}
}

func TestCountNowDecays(t *testing.T) {
	d := NewDetector(table1Detector())
	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: 100, Start: 100, End: 500}
	peak := 0
	for c := 0; c < 2000; c++ {
		d.Step(w.At(c))
		if n := d.CountNow(); n > peak {
			peak = n
		}
	}
	if peak < 3 {
		t.Fatalf("CountNow peaked at %d, want ≥ 3 during resonance", peak)
	}
	if got := d.CountNow(); got != 0 {
		t.Errorf("CountNow = %d long after stimulus, want 0", got)
	}
}

func TestCountNowZeroBeforeAnyEvent(t *testing.T) {
	d := NewDetector(table1Detector())
	if d.CountNow() != 0 {
		t.Error("CountNow on a fresh detector should be 0")
	}
}

func TestDetectorFromSupply(t *testing.T) {
	p := circuit.Table1()
	cal := circuit.Calibration{ThresholdAmps: 32, MaxRepetitionTolerance: 4, BandEdgeToleranceAmps: 44}
	cfg := DetectorFromSupply(p, cal)
	if cfg.HalfPeriodLo != 42 || cfg.HalfPeriodHi != 60 {
		t.Errorf("half periods %d-%d, want 42-60", cfg.HalfPeriodLo, cfg.HalfPeriodHi)
	}
	if cfg.ThresholdAmps != 32 || cfg.MaxRepetitionTolerance != 4 {
		t.Errorf("threshold/tolerance = %g/%d, want 32/4", cfg.ThresholdAmps, cfg.MaxRepetitionTolerance)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("derived config invalid: %v", err)
	}
}

func TestDetectorConfigValidate(t *testing.T) {
	bad := []DetectorConfig{
		{HalfPeriodLo: 1, HalfPeriodHi: 60, ThresholdAmps: 32, MaxRepetitionTolerance: 4},
		{HalfPeriodLo: 50, HalfPeriodHi: 40, ThresholdAmps: 32, MaxRepetitionTolerance: 4},
		{HalfPeriodLo: 42, HalfPeriodHi: 60, ThresholdAmps: 0, MaxRepetitionTolerance: 4},
		{HalfPeriodLo: 42, HalfPeriodHi: 60, ThresholdAmps: 32, MaxRepetitionTolerance: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := table1Detector().Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestNewDetectorPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDetector(DetectorConfig{})
}

func TestPolarityString(t *testing.T) {
	if HighLow.String() != "high-low" || LowHigh.String() != "low-high" {
		t.Error("polarity names wrong")
	}
}

func TestEventsDetectedCounter(t *testing.T) {
	d := NewDetector(table1Detector())
	w := circuit.Square{Mid: 70, Amplitude: 40, PeriodCycles: 100}
	events := driveWave(d, w, 1000)
	if d.EventsDetected() != uint64(len(events)) {
		t.Errorf("EventsDetected = %d, want %d", d.EventsDetected(), len(events))
	}
}
