package tuning

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/rng"
)

// refDetector is the original modulo-indexed detector, frozen as a
// test-only reference. The shipping Detector replaced every per-cycle
// `%` with power-of-two mask indexing and precomputed the per-adder
// quarter-periods and thresholds; TestDetectorMatchesModuloReference
// checks the two report bit-identical event streams.
type refDetector struct {
	cfg DetectorConfig

	cum    []float64
	total  float64
	cycle  uint64
	warmup int

	histLen  int
	highLow  []bool
	lowHigh  []bool
	countAt  []uint16
	lastSeen [2]uint64

	eventsDetected uint64
}

func newRefDetector(cfg DetectorConfig) *refDetector {
	ringLen := 2*cfg.HalfPeriodHi + 2
	histLen := cfg.MaxRepetitionTolerance*2*cfg.HalfPeriodHi + 1
	return &refDetector{
		cfg:     cfg,
		cum:     make([]float64, ringLen),
		histLen: histLen,
		highLow: make([]bool, histLen),
		lowHigh: make([]bool, histLen),
		countAt: make([]uint16, histLen),
	}
}

func (d *refDetector) windowDiff(qp int) float64 {
	n := len(d.cum)
	c := int(d.cycle % uint64(n))
	recent := d.cum[c] - d.cum[((c-qp)%n+n)%n]
	prior := d.cum[((c-qp)%n+n)%n] - d.cum[((c-2*qp)%n+n)%n]
	return recent - prior
}

func (d *refDetector) Step(sensedAmps float64) (Event, bool) {
	d.total += sensedAmps
	d.cum[d.cycle%uint64(len(d.cum))] = d.total

	slot := int(d.cycle % uint64(d.histLen))
	d.highLow[slot] = false
	d.lowHigh[slot] = false
	d.countAt[slot] = 0

	var (
		found    bool
		pol      Polarity
		maxMag   float64
		detected Event
	)
	if d.warmup < 2*d.cfg.HalfPeriodHi {
		d.warmup++
	} else {
		for hp := d.cfg.HalfPeriodLo; hp <= d.cfg.HalfPeriodHi; hp++ {
			qp := hp / 2
			diff := d.windowDiff(qp)
			thr := d.cfg.ThresholdAmps * float64(hp) / 4
			mag := diff
			if mag < 0 {
				mag = -mag
			}
			if mag <= thr || mag <= maxMag {
				continue
			}
			maxMag = mag
			found = true
			if diff < 0 {
				pol = HighLow
			} else {
				pol = LowHigh
			}
		}
	}
	if found {
		detected = d.record(pol)
		d.eventsDetected++
	}
	d.cycle++
	return detected, found
}

func (d *refDetector) record(pol Polarity) Event {
	slot := int(d.cycle % uint64(d.histLen))
	count := 1

	inherited := false
	if d.lastSeen[pol] == d.cycle {
		prevSlot := int((d.cycle - 1) % uint64(d.histLen))
		if d.polarityBit(pol, prevSlot) && d.countAt[prevSlot] > 0 {
			count = int(d.countAt[prevSlot])
			inherited = true
		}
	}
	if !inherited {
		opposite := LowHigh
		if pol == LowHigh {
			opposite = HighLow
		}
		best := 0
		for hp := d.cfg.HalfPeriodLo; hp <= d.cfg.HalfPeriodHi; hp++ {
			if uint64(hp) > d.cycle {
				break
			}
			back := int((d.cycle - uint64(hp)) % uint64(d.histLen))
			if d.polarityBit(opposite, back) && int(d.countAt[back]) > best {
				best = int(d.countAt[back])
			}
		}
		count = best + 1
	}
	if count > d.cfg.MaxRepetitionTolerance+1 {
		count = d.cfg.MaxRepetitionTolerance + 1
	}

	if pol == HighLow {
		d.highLow[slot] = true
	} else {
		d.lowHigh[slot] = true
	}
	d.countAt[slot] = uint16(count)
	d.lastSeen[pol] = d.cycle + 1
	return Event{Cycle: d.cycle, Polarity: pol, Count: count}
}

func (d *refDetector) polarityBit(pol Polarity, slot int) bool {
	if pol == HighLow {
		return d.highLow[slot]
	}
	return d.lowHigh[slot]
}

// equivalenceConfigs spans band shapes: the Table 1 band, a narrow band,
// an odd non-power-of-two-unfriendly band, and a high repetition
// tolerance (deep history ring).
func equivalenceConfigs() []DetectorConfig {
	return []DetectorConfig{
		{HalfPeriodLo: 42, HalfPeriodHi: 60, ThresholdAmps: 32, MaxRepetitionTolerance: 4},
		{HalfPeriodLo: 5, HalfPeriodHi: 7, ThresholdAmps: 8, MaxRepetitionTolerance: 2},
		{HalfPeriodLo: 13, HalfPeriodHi: 31, ThresholdAmps: 12, MaxRepetitionTolerance: 3},
		{HalfPeriodLo: 42, HalfPeriodHi: 60, ThresholdAmps: 20, MaxRepetitionTolerance: 9},
	}
}

// TestDetectorMatchesModuloReference: the mask-indexed detector must
// report bit-identical events to the modulo-indexed reference on
// resonant squares, swept periods, and random current streams.
func TestDetectorMatchesModuloReference(t *testing.T) {
	for ci, cfg := range equivalenceConfigs() {
		t.Run(fmt.Sprintf("cfg%d", ci), func(t *testing.T) {
			streams := map[string]func(c int) float64{
				"resonant-square": func(c int) float64 {
					w := circuit.Square{Mid: 70, Amplitude: 35, PeriodCycles: 2 * (cfg.HalfPeriodLo + cfg.HalfPeriodHi) / 2}
					return w.At(c)
				},
				"swept-sine": func(c int) float64 {
					period := float64(cfg.HalfPeriodLo+c/500) * 2
					return 70 + 35*math.Sin(2*math.Pi*float64(c)/period)
				},
				"random": func() func(c int) float64 {
					r := rng.New(uint64(1000 + ci))
					return func(int) float64 { return 35 + 70*r.Float64() }
				}(),
				"quiet": func(c int) float64 { return 70 },
			}
			for name, at := range streams {
				d := NewDetector(cfg)
				ref := newRefDetector(cfg)
				for c := 0; c < 20_000; c++ {
					s := at(c)
					gotEv, gotOK := d.Step(s)
					wantEv, wantOK := ref.Step(s)
					if gotOK != wantOK || gotEv != wantEv {
						t.Fatalf("%s cycle %d: events diverged: got (%+v,%v), want (%+v,%v)",
							name, c, gotEv, gotOK, wantEv, wantOK)
					}
				}
				if d.EventsDetected() != ref.eventsDetected {
					t.Fatalf("%s: event totals diverged: %d vs %d",
						name, d.EventsDetected(), ref.eventsDetected)
				}
			}
		})
	}
}
