// Package tuning implements resonance tuning, the paper's contribution
// (Section 3): architectural detection of nascent resonant behaviour in
// the processor current and a two-tier response that moves the frequency
// of current variations out of the resonance band.
//
// Detection (Section 3.1) keeps a history of per-cycle sensed core
// current and, for every half-period in the resonance band, compares the
// sum of the most recent quarter-period of current samples against the
// quarter-period before it. A difference larger than M·T/8 (M being the
// resonant current variation threshold) marks a high→low or low→high
// resonant event. Events are recorded in per-polarity history shift
// registers; a new event chains with an opposite-polarity event half a
// period earlier, incrementing the resonant event count. Same-polarity
// events on consecutive cycles are one physical transition and are
// counted once.
//
// Prevention (Section 3.2) engages a gentle first-level response (halved
// issue width, one cache port) when the count reaches the initial
// response threshold, and a second-level response (issue stall with
// phantom operations holding a medium current level) one below the
// maximum repetition tolerance, guaranteeing the count never reaches the
// violating value.
package tuning

import (
	"fmt"

	"repro/internal/circuit"
)

// DetectorConfig parameterises resonant-event detection.
type DetectorConfig struct {
	// HalfPeriodLo and HalfPeriodHi bound, in cycles, the half-periods
	// of the resonance band (42–60 for the Table 1 supply). One
	// quarter-period adder is instantiated per half-period.
	HalfPeriodLo, HalfPeriodHi int
	// ThresholdAmps is the resonant current variation threshold M.
	ThresholdAmps float64
	// MaxRepetitionTolerance is the resonant event count at which a
	// noise-margin violation can occur.
	MaxRepetitionTolerance int
}

// DetectorFromSupply derives a detector configuration from a power
// supply's characteristics and its Section 2.1.3 calibration.
func DetectorFromSupply(p circuit.Params, cal circuit.Calibration) DetectorConfig {
	lo, hi := p.ResonanceBandCycles().HalfPeriods()
	return DetectorConfig{
		HalfPeriodLo:           lo,
		HalfPeriodHi:           hi,
		ThresholdAmps:          cal.ThresholdAmps,
		MaxRepetitionTolerance: cal.MaxRepetitionTolerance,
	}
}

// Validate reports whether the configuration is usable.
func (c DetectorConfig) Validate() error {
	switch {
	case c.HalfPeriodLo < 2 || c.HalfPeriodHi < c.HalfPeriodLo:
		return fmt.Errorf("tuning: bad half-period range %d-%d", c.HalfPeriodLo, c.HalfPeriodHi)
	case c.ThresholdAmps <= 0:
		return fmt.Errorf("tuning: threshold must be positive (got %g)", c.ThresholdAmps)
	case c.MaxRepetitionTolerance < 2:
		return fmt.Errorf("tuning: repetition tolerance must be at least 2 (got %d)", c.MaxRepetitionTolerance)
	}
	return nil
}

// Polarity labels the direction of a resonant event.
type Polarity uint8

// Event polarities.
const (
	HighLow Polarity = iota // high current followed by low current
	LowHigh                 // low current followed by high current
)

// String names the polarity.
func (p Polarity) String() string {
	if p == HighLow {
		return "high-low"
	}
	return "low-high"
}

// Event describes a resonant event detected in some cycle.
type Event struct {
	Cycle    uint64
	Polarity Polarity
	// Count is the resonant event count after chaining: 1 for an
	// isolated event, higher when opposite-polarity events precede it
	// at half-period distances.
	Count int
}

// adder is one precomputed half-period comparator: the quarter-period
// window it sums over and its threshold M·T/8 (with T = 2·hp).
type adder struct {
	qp  uint64
	thr float64
}

// Detector implements Section 3.1. Feed it one sensed current sample per
// cycle with Step.
//
// Both internal rings are sized to powers of two so every per-cycle index
// is a mask, not a division: the adder loop runs with no integer division
// or modulo at all, and each adder costs three loads and three
// subtractions. Window sums still come from the same cumulative-sum
// differences as before, so detected events are bit-identical to the
// modulo-indexed implementation (see detector_equivalence_test.go).
type Detector struct {
	cfg    DetectorConfig
	adders []adder

	// cum is a ring of cumulative current sums; cum[c&cumMask] holds
	// the total current through cycle c, letting any window sum be
	// formed with one subtraction per half-period "adder".
	cum     []float64
	cumMask uint64
	total   float64
	cycle   uint64
	warmup  int

	// Polarity history shift registers (Section 3.1.2), one bit per
	// cycle, long enough to cover the maximum repetition tolerance,
	// plus the chained count memo for each recorded event cycle.
	histMask uint64
	highLow  []bool
	lowHigh  []bool
	countAt  []uint16
	lastSeen [2]uint64 // most recent event cycle per polarity (+1, 0 = none)

	lastEvent      Event
	lastEventValid bool
	eventsDetected uint64
}

// ceilPow2 returns the smallest power of two ≥ n (n ≥ 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewDetector returns a detector for the given configuration. It panics
// if the configuration is invalid (a design-time error).
func NewDetector(cfg DetectorConfig) *Detector {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("tuning.NewDetector: %v", err))
	}
	ringLen := ceilPow2(2*cfg.HalfPeriodHi + 2)
	histLen := ceilPow2(cfg.MaxRepetitionTolerance*2*cfg.HalfPeriodHi + 1)
	// Consecutive half-periods share a quarter-period (qp = hp/2 truncates),
	// so their adders see the identical window difference. The detection
	// loop keeps the first adder that fires (later same-magnitude adders
	// lose the mag <= maxMag comparison) and the later duplicate's larger
	// threshold can never fire when the first one's didn't — so only the
	// first adder per distinct quarter-period can affect the outcome, and
	// the duplicates are dropped here. Detected events stay bit-identical
	// to the one-adder-per-half-period build (detector_equivalence_test.go).
	adders := make([]adder, 0, (cfg.HalfPeriodHi-cfg.HalfPeriodLo)/2+1)
	for hp := cfg.HalfPeriodLo; hp <= cfg.HalfPeriodHi; hp++ {
		qp := uint64(hp / 2)
		if n := len(adders); n > 0 && adders[n-1].qp == qp {
			continue
		}
		adders = append(adders, adder{
			qp:  qp,
			thr: cfg.ThresholdAmps * float64(hp) / 4,
		})
	}
	return &Detector{
		cfg:      cfg,
		adders:   adders,
		cum:      make([]float64, ringLen),
		cumMask:  uint64(ringLen - 1),
		histMask: uint64(histLen - 1),
		highLow:  make([]bool, histLen),
		lowHigh:  make([]bool, histLen),
		countAt:  make([]uint16, histLen),
	}
}

// Config returns the detector's configuration.
func (d *Detector) Config() DetectorConfig { return d.cfg }

// EventsDetected returns the number of resonant events recorded so far.
func (d *Detector) EventsDetected() uint64 { return d.eventsDetected }

// windowDiff returns recent-quarter sum minus prior-quarter sum for the
// given quarter-period length at the current cycle. The subtraction order
// matches the original modulo-indexed implementation exactly, so the
// floating-point results are bit-identical. d.cum[cycle&mask] always holds
// d.total when this runs (Step writes it first), so the recent window ends
// at the in-register running total instead of a ring load.
func (d *Detector) windowDiff(qp uint64) float64 {
	m := d.cumMask
	c := d.cycle
	mid := d.cum[(c-qp)&m]
	recent := d.total - mid
	prior := mid - d.cum[(c-2*qp)&m]
	return recent - prior
}

// Step feeds one cycle of sensed core current to the detector. It returns
// the resonant event recorded this cycle, if any.
func (d *Detector) Step(sensedAmps float64) (Event, bool) {
	d.total += sensedAmps
	d.cum[d.cycle&d.cumMask] = d.total

	// Clear the history slots being reused this cycle.
	slot := d.cycle & d.histMask
	d.highLow[slot] = false
	d.lowHigh[slot] = false
	d.countAt[slot] = 0

	var (
		found    bool
		pol      Polarity
		maxMag   float64
		detected Event
	)
	if d.warmup < 2*d.cfg.HalfPeriodHi {
		d.warmup++
	} else {
		// One "adder" per half-period in the band (Section 3.1.3), each
		// with a precomputed quarter-period and threshold M·T/8
		// (T = 2·hp).
		for i := range d.adders {
			a := &d.adders[i]
			diff := d.windowDiff(a.qp)
			mag := diff
			if mag < 0 {
				mag = -mag
			}
			if mag <= a.thr || mag <= maxMag {
				continue
			}
			maxMag = mag
			found = true
			if diff < 0 {
				pol = HighLow
			} else {
				pol = LowHigh
			}
		}
	}
	if found {
		detected = d.record(pol)
		d.lastEvent = detected
		d.lastEventValid = true
		d.eventsDetected++
	}
	d.cycle++
	return detected, found
}

// record notes an event of the given polarity at the current cycle and
// computes its chained resonant event count.
func (d *Detector) record(pol Polarity) Event {
	slot := d.cycle & d.histMask
	count := 1

	// Dedup: a same-polarity event in the immediately preceding cycle
	// is the same physical transition seen by another adder
	// (Section 3.1.3); inherit its count instead of chaining.
	// lastSeen stores cycle+1, so equality with d.cycle means the
	// previous cycle had an event of this polarity.
	inherited := false
	if d.lastSeen[pol] == d.cycle {
		prevSlot := (d.cycle - 1) & d.histMask
		if d.polarityBit(pol, prevSlot) && d.countAt[prevSlot] > 0 {
			count = int(d.countAt[prevSlot])
			inherited = true
		}
	}
	if !inherited {
		// Chain: look for an opposite-polarity event at every
		// half-period distance in the band (fixed probe offsets, no
		// associative search).
		opposite := LowHigh
		if pol == LowHigh {
			opposite = HighLow
		}
		best := 0
		for hp := d.cfg.HalfPeriodLo; hp <= d.cfg.HalfPeriodHi; hp++ {
			if uint64(hp) > d.cycle {
				break
			}
			back := (d.cycle - uint64(hp)) & d.histMask
			if d.polarityBit(opposite, back) && int(d.countAt[back]) > best {
				best = int(d.countAt[back])
			}
		}
		count = best + 1
	}
	if count > d.cfg.MaxRepetitionTolerance+1 {
		count = d.cfg.MaxRepetitionTolerance + 1
	}

	if pol == HighLow {
		d.highLow[slot] = true
	} else {
		d.lowHigh[slot] = true
	}
	d.countAt[slot] = uint16(count)
	d.lastSeen[pol] = d.cycle + 1
	return Event{Cycle: d.cycle, Polarity: pol, Count: count}
}

func (d *Detector) polarityBit(pol Polarity, slot uint64) bool {
	if pol == HighLow {
		return d.highLow[slot]
	}
	return d.lowHigh[slot]
}

// CountNow returns the effective resonant event count at the present
// cycle for tracing: the count of the most recent event, decaying by one
// per half-period of quiet as events age out of the history registers.
func (d *Detector) CountNow() int {
	if !d.lastEventValid {
		return 0
	}
	age := int(d.cycle - d.lastEvent.Cycle)
	decay := age / d.cfg.HalfPeriodHi
	c := d.lastEvent.Count - decay
	if c < 0 {
		return 0
	}
	return c
}
