package tuning

import (
	"math"
	"testing"
)

// FuzzDetectorStep drives the detector with arbitrary current histories
// encoded as byte strings and checks its invariants: no panics, counts in
// range, and the accounting between returned events and EventsDetected.
// Run with `go test -fuzz=FuzzDetectorStep ./internal/tuning` for a real
// fuzzing session; the seed corpus runs in ordinary test mode.
func FuzzDetectorStep(f *testing.F) {
	f.Add([]byte{0, 255, 0, 255, 128, 64, 32})
	f.Add([]byte("steady steady steady steady"))
	seed := make([]byte, 400)
	for i := range seed {
		if i%100 < 50 {
			seed[i] = 200
		} else {
			seed[i] = 40
		}
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, samples []byte) {
		d := NewDetector(DetectorConfig{
			HalfPeriodLo: 42, HalfPeriodHi: 60,
			ThresholdAmps: 32, MaxRepetitionTolerance: 4,
		})
		var events uint64
		for pass := 0; pass < 3; pass++ { // replay the bytes a few times
			for _, b := range samples {
				ev, ok := d.Step(float64(b))
				if ok {
					events++
					if ev.Count < 1 || ev.Count > 5 {
						t.Fatalf("event count %d out of range", ev.Count)
					}
				}
				if c := d.CountNow(); c < 0 || c > 5 {
					t.Fatalf("CountNow %d out of range", c)
				}
			}
		}
		if d.EventsDetected() != events {
			t.Fatalf("EventsDetected %d, returned %d", d.EventsDetected(), events)
		}
	})
}

// FuzzControllerStep checks the controller never emits an inconsistent
// response under arbitrary input.
func FuzzControllerStep(f *testing.F) {
	f.Add([]byte{10, 250, 10, 250})
	f.Fuzz(func(t *testing.T, samples []byte) {
		if len(samples) == 0 {
			return
		}
		c := NewController(Config{
			Detector: DetectorConfig{
				HalfPeriodLo: 42, HalfPeriodHi: 60,
				ThresholdAmps: 32, MaxRepetitionTolerance: 4,
			},
			InitialResponseThreshold: 2,
			SecondResponseThreshold:  3,
			InitialResponseCycles:    100,
			SecondResponseCycles:     35,
			ReducedIssueWidth:        4,
			ReducedCachePorts:        1,
			PhantomTargetAmps:        70,
		})
		for i := 0; i < 2000; i++ {
			r := c.Step(float64(samples[i%len(samples)]))
			switch r.Level {
			case LevelNone:
				if r.Throttle.StallIssue || r.PhantomTargetAmps != 0 {
					t.Fatal("idle response carries actions")
				}
			case LevelFirst:
				if r.Throttle.IssueWidth != 4 || r.Throttle.CachePorts != 1 {
					t.Fatalf("first-level throttle %+v", r.Throttle)
				}
			case LevelSecond:
				if !r.Throttle.StallIssue || r.PhantomTargetAmps != 70 {
					t.Fatalf("second-level response %+v", r)
				}
			default:
				t.Fatalf("unknown level %d", r.Level)
			}
		}
		st := c.Stats()
		if st.FirstLevelCycles+st.SecondLevelCycles > st.Cycles {
			t.Fatal("response cycles exceed total")
		}
		if math.IsNaN(st.FirstLevelFraction()) {
			t.Fatal("NaN fraction")
		}
	})
}
