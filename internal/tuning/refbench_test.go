package tuning

import "testing"

// The paired benchmarks below run the frozen modulo-indexed reference
// (detector_equivalence_test.go) and the prefix-sum detector on the same
// square wave, so the O(1)-adder rewrite's speedup stays measurable
// apples-to-apples:
//
//	go test -run '^$' -bench 'ModuloReference|PrefixSumDetector' ./internal/tuning

func benchWave(i int) float64 {
	if i%100 < 50 {
		return 110
	}
	return 30
}

func BenchmarkModuloReference(b *testing.B) {
	d := newRefDetector(DetectorConfig{HalfPeriodLo: 42, HalfPeriodHi: 60, ThresholdAmps: 32, MaxRepetitionTolerance: 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Step(benchWave(i))
	}
}

func BenchmarkPrefixSumDetector(b *testing.B) {
	d := NewDetector(DetectorConfig{HalfPeriodLo: 42, HalfPeriodHi: 60, ThresholdAmps: 32, MaxRepetitionTolerance: 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Step(benchWave(i))
	}
}
