package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/sim"
)

func newTestServer(t *testing.T, o Options) (*Server, *httptest.Server) {
	t.Helper()
	if o.Engine == nil {
		o.Engine = engine.New(engine.Options{Parallelism: 2})
	}
	srv := New(o)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postRun(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeLines(t *testing.T, r io.Reader) []RunLine {
	t.Helper()
	var lines []RunLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line RunLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestSingleSpecRun: one spec in, one NDJSON line out, carrying the full
// 64-hex-char content address and a result identical to a direct
// engine run of the same spec.
func TestSingleSpecRun(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postRun(t, ts.URL, `{"spec":{"app":"swim","instructions":30000}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	lines := decodeLines(t, resp.Body)
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	line := lines[0]
	if line.Index != 0 || line.Error != "" || line.Result == nil {
		t.Fatalf("line = %+v, want index 0 with a result", line)
	}
	if len(line.Key) != 64 {
		t.Errorf("key %q is not a full 32-byte hex content address", line.Key)
	}
	want, err := engine.Execute(engine.Spec{App: "swim", Instructions: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if *line.Result != want {
		t.Errorf("served result diverged from direct execution:\n%+v\n%+v", *line.Result, want)
	}
}

// TestPDNRunOverWire: a spec selecting the multi-domain PDN and the
// per-domain tuning technique travels the wire, validates, and serves a
// result identical to direct execution — and the wire spec keys the same
// as the equivalent in-process Spec (the PDN section folds into the
// system on both paths).
func TestPDNRunOverWire(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postRun(t, ts.URL,
		`{"spec":{"app":"swim","instructions":30000,"technique":"domain-tuning","pdn":{"Kind":"multidomain"}}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	lines := decodeLines(t, resp.Body)
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	line := lines[0]
	if line.Error != "" || line.Result == nil {
		t.Fatalf("line = %+v, want a result", line)
	}
	spec := engine.Spec{
		App: "swim", Instructions: 30_000,
		Technique: engine.TechniqueDomainTuning,
		PDN:       &circuit.NetworkConfig{Kind: circuit.NetworkMultiDomain},
	}
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	if line.Key != key.Hex() {
		t.Errorf("wire spec keyed %s, direct spec %s", line.Key, key.Hex())
	}
	want, err := engine.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if *line.Result != want {
		t.Errorf("served result diverged from direct execution:\n%+v\n%+v", *line.Result, want)
	}
}

// TestGridStreamsInSpecOrder: a grid with a duplicate streams its lines
// strictly in request order, duplicates share a key and a result, and
// the duplicate never simulates twice.
func TestGridStreamsInSpecOrder(t *testing.T) {
	eng := engine.New(engine.Options{Parallelism: 2})
	_, ts := newTestServer(t, Options{Engine: eng})
	resp := postRun(t, ts.URL, `{"specs":[
		{"app":"swim","instructions":30000},
		{"app":"swim","instructions":30000,"technique":"tuning"},
		{"app":"lucas","instructions":30000},
		{"app":"swim","instructions":30000}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	lines := decodeLines(t, resp.Body)
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	for i, line := range lines {
		if line.Index != i {
			t.Fatalf("line %d carries index %d: NDJSON out of spec order", i, line.Index)
		}
		if line.Error != "" || line.Result == nil {
			t.Fatalf("line %d = %+v, want a result", i, line)
		}
	}
	if lines[0].Key != lines[3].Key {
		t.Errorf("duplicate specs keyed differently: %s vs %s", lines[0].Key, lines[3].Key)
	}
	if *lines[0].Result != *lines[3].Result {
		t.Errorf("duplicate specs diverged:\n%+v\n%+v", *lines[0].Result, *lines[3].Result)
	}
	if st := eng.CacheStats(); st.Misses != 3 {
		t.Errorf("misses = %d, want 3 (duplicate must coalesce)", st.Misses)
	}
}

// TestConcurrentIdenticalRequestsCoalesce is the acceptance criterion:
// N identical in-flight single-spec requests produce exactly one
// simulation; every other request rides the same entry.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	eng := engine.New(engine.Options{Parallelism: 2})
	_, ts := newTestServer(t, Options{Engine: eng})

	const n = 16
	body := `{"spec":{"app":"swim","instructions":40000}}`
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, n)
	results := make(chan sim.Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var line RunLine
			if err := json.NewDecoder(resp.Body).Decode(&line); err != nil {
				errs <- err
				return
			}
			if line.Error != "" || line.Result == nil {
				errs <- fmt.Errorf("line = %+v", line)
				return
			}
			results <- *line.Result
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	close(results)
	for err := range errs {
		t.Fatal(err)
	}
	var first *sim.Result
	for res := range results {
		if first == nil {
			r := res
			first = &r
		} else if res != *first {
			t.Fatalf("coalesced requests diverged:\n%+v\n%+v", *first, res)
		}
	}

	st := eng.CacheStats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (identical in-flight requests must coalesce)", st.Misses)
	}
	if st.Hits+st.DiskHits+st.Misses != n {
		t.Errorf("hits(%d) + diskHits(%d) + misses(%d) != %d requests", st.Hits, st.DiskHits, st.Misses, n)
	}
}

// TestRequestValidation: configuration mistakes are client errors with
// JSON bodies naming the problem, never half-streamed batches.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxSpecs: 2})
	cases := []struct {
		name string
		body string
		code int
		want string // substring of the error message
	}{
		{"empty body", `{}`, http.StatusBadRequest, "spec"},
		{"both spec and specs", `{"spec":{"app":"swim"},"specs":[{"app":"swim"}]}`, http.StatusBadRequest, "not both"},
		{"unknown field", `{"spec":{"app":"swim","warp_factor":9}}`, http.StatusBadRequest, "warp_factor"},
		{"malformed json", `{"spec":`, http.StatusBadRequest, "bad request body"},
		{"unknown technique", `{"spec":{"app":"swim","technique":"prayer"}}`, http.StatusBadRequest, "prayer"},
		{"unknown network kind", `{"spec":{"app":"swim","pdn":{"Kind":"mesh"}}}`, http.StatusBadRequest, "registered kinds"},
		{"sensor domain out of range", `{"spec":{"app":"swim","pdn":{"Kind":"multidomain"},"system":{"SensorDomain":7}}}`, http.StatusBadRequest, "sensor domain"},
		{"unknown app in grid", `{"specs":[{"app":"swim"},{"app":"no-such-app"}]}`, http.StatusBadRequest, "spec 1"},
		{"grid over limit", `{"specs":[{"app":"swim"},{"app":"lucas"},{"app":"art"}]}`, http.StatusRequestEntityTooLarge, "2-spec limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postRun(t, ts.URL, tc.body)
			if resp.StatusCode != tc.code {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.code)
			}
			var e errorJSON
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("error body not JSON: %v", err)
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Errorf("error %q does not mention %q", e.Error, tc.want)
			}
		})
	}

	// Wrong method on both endpoints.
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run status = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status = %d, want 405", resp.StatusCode)
	}
}

// badSupplySystem builds a system that passes Spec.Validate (CPU and
// power are fine) but fails machine construction: a non-positive supply
// resistance is only caught at runtime. This is the class of error the
// NDJSON terminal line exists for.
func badSupplySystem() *sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Supply.R = -1
	return &cfg
}

// TestRuntimeErrorsStreamAsErrorLines: errors that survive upfront
// validation surface inside the NDJSON stream, not as HTTP errors.
func TestRuntimeErrorsStreamAsErrorLines(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Single spec: the line carries the key and the error.
	body, err := json.Marshal(RunRequest{Spec: &SpecRequest{App: "swim", Instructions: 30_000, System: badSupplySystem()}})
	if err != nil {
		t.Fatal(err)
	}
	resp := postRun(t, ts.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (stream already committed)", resp.StatusCode)
	}
	lines := decodeLines(t, resp.Body)
	if len(lines) != 1 || lines[0].Error == "" || lines[0].Result != nil {
		t.Fatalf("lines = %+v, want one terminal error line", lines)
	}
	if !strings.Contains(lines[0].Error, "circuit") {
		t.Errorf("error %q does not name the failing subsystem", lines[0].Error)
	}

	// Grid: the batch aborts and the stream ends with a terminal error
	// line; any lines before it are well-formed results.
	body, err = json.Marshal(RunRequest{Specs: []SpecRequest{
		{App: "swim", Instructions: 30_000},
		{App: "swim", Instructions: 30_000, System: badSupplySystem()},
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp = postRun(t, ts.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid status = %d, want 200", resp.StatusCode)
	}
	lines = decodeLines(t, resp.Body)
	if len(lines) == 0 {
		t.Fatal("grid with runtime error streamed nothing")
	}
	last := lines[len(lines)-1]
	if last.Error == "" {
		t.Fatalf("final line %+v is not a terminal error line", last)
	}
	for _, line := range lines[:len(lines)-1] {
		if line.Error != "" || line.Result == nil {
			t.Errorf("non-terminal line %+v is not a result", line)
		}
	}
}

// TestMetricsEndpoint: the scrape reflects the engine's cache counters
// and the server's own traffic in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	eng := engine.New(engine.Options{Parallelism: 2})
	_, ts := newTestServer(t, Options{Engine: eng})

	postRun(t, ts.URL, `{"spec":{"app":"swim","instructions":30000}}`)
	postRun(t, ts.URL, `{"spec":{"app":"swim","instructions":30000}}`) // warm repeat
	postRun(t, ts.URL, `{"bogus":`)                                    // a 400

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition format", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	scrape := string(raw)

	for _, want := range []string{
		"resonanced_sim_misses_total 1\n",
		"resonanced_cache_hits_total{tier=\"mem\"} 1\n",
		"resonanced_cache_entries 1\n",
		"resonanced_engine_inflight 0\n",
		"resonanced_engine_queue_depth 0\n",
		"resonanced_batch_lanes_forked_total 0\n",
		"resonanced_batch_cohorts_reformed_total 0\n",
		"resonanced_batch_fork_cycles_saved_total 0\n",
		"resonanced_http_requests_total{path=\"/v1/run\",code=\"200\"} 2\n",
		"resonanced_http_requests_total{path=\"/v1/run\",code=\"400\"} 1\n",
		"resonanced_http_request_duration_seconds_count{path=\"/v1/run\"} 3\n",
		"resonanced_http_request_duration_seconds_bucket{path=\"/v1/run\",le=\"+Inf\"} 3\n",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", strings.TrimSpace(want))
		}
	}

	// Histogram buckets must be cumulative and end at the count.
	var lastCum uint64
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, "resonanced_http_request_duration_seconds_bucket{path=\"/v1/run\"") {
			continue
		}
		var cum uint64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &cum); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if cum < lastCum {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		lastCum = cum
	}
	if lastCum != 3 {
		t.Errorf("+Inf bucket = %d, want 3", lastCum)
	}
}

// TestHealthz: the liveness probe answers without touching the engine.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(bytes.TrimSpace(body), []byte("ok")) {
		t.Errorf("healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}
}
