// Package server is the sim-as-a-service HTTP front-end over
// internal/engine: POST /v1/run accepts one spec or a grid as JSON and
// streams results back as NDJSON in spec order as they complete;
// GET /metrics exposes the engine's cache tiers, queue depth, and
// per-endpoint latency histograms in Prometheus text format.
//
// The server adds no execution machinery of its own: every request is
// validated through the technique registry's Normalize/Validate path,
// keyed by its canonical content address, and handed to the shared
// engine, whose entry/waiter singleflight makes identical in-flight
// requests from any number of connections coalesce onto one simulation.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/engine"
	"repro/internal/sim"
)

// DefaultMaxSpecs bounds the grid size of one request.
const DefaultMaxSpecs = 4096

// DefaultMaxBodyBytes bounds the request body size.
const DefaultMaxBodyBytes = 32 << 20

// Options configures a Server.
type Options struct {
	// Engine executes the requests. Required.
	Engine *engine.Engine
	// MaxSpecs bounds the number of specs in one grid request;
	// 0 means DefaultMaxSpecs.
	MaxSpecs int
	// MaxBodyBytes bounds the request body; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
}

// Server serves the engine over HTTP. Create with New, mount with
// Handler, drain with http.Server.Shutdown (in-flight batches finish
// because handlers only return when their batch does).
type Server struct {
	eng      *engine.Engine
	maxSpecs int
	maxBody  int64
	metrics  *metricsSet
}

// New builds a server over the given engine.
func New(o Options) *Server {
	if o.Engine == nil {
		panic("server.New: nil engine")
	}
	maxSpecs := o.MaxSpecs
	if maxSpecs <= 0 {
		maxSpecs = DefaultMaxSpecs
	}
	maxBody := o.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	return &Server{
		eng:      o.Engine,
		maxSpecs: maxSpecs,
		maxBody:  maxBody,
		metrics:  newMetricsSet("/v1/run", "/metrics", "/healthz"),
	}
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.instrument("/v1/run", s.handleRun))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("/healthz", s.instrument("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))
	return mux
}

// statusWriter records the status code a handler sent (200 when the
// handler wrote a body without an explicit WriteHeader).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer so NDJSON lines reach the
// connection as they are produced.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the endpoint's latency histogram and
// status-code counters.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.metrics.endpoint(path)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		ep.record(sw.code, time.Since(start))
	}
}

// SpecRequest is the JSON wire form of one simulation spec: the
// engine's shared wire schema (engine.SpecWire), which the sharded
// sweep's grid manifest also speaks. Zero-valued fields resolve to the
// same defaults every other driver uses (Table 1 system, 1M
// instructions, base technique).
type SpecRequest = engine.SpecWire

// RunRequest is the POST /v1/run body: exactly one of Spec (single run)
// or Specs (grid).
type RunRequest struct {
	Spec  *SpecRequest  `json:"spec,omitempty"`
	Specs []SpecRequest `json:"specs,omitempty"`
}

// RunLine is one NDJSON response line: the spec's position in the
// request, its content-address key, and its result — or, on a terminal
// line, the error that aborted the batch.
type RunLine struct {
	Index  int         `json:"index"`
	Key    string      `json:"key,omitempty"`
	Result *sim.Result `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// keyHex renders a spec's full content address (the cache key) for the
// wire; clients can use it to correlate or content-address results
// themselves.
func keyHex(k engine.Key) string { return k.Hex() }

// errorJSON is the body of a non-streaming error response.
type errorJSON struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorJSON{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "metrics is GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeProm(w, s.eng)
}

// handleRun is POST /v1/run. Every spec is validated through the
// registry before anything executes, so a malformed grid is a 400
// naming the offending spec rather than a half-streamed failure;
// runtime errors that survive validation (and cancel the batch, per
// engine semantics) surface as a terminal NDJSON error line.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "run is POST only")
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var reqs []SpecRequest
	switch {
	case req.Spec != nil && req.Specs != nil:
		httpError(w, http.StatusBadRequest, `body must carry "spec" or "specs", not both`)
		return
	case req.Spec != nil:
		reqs = []SpecRequest{*req.Spec}
	case len(req.Specs) > 0:
		reqs = req.Specs
	default:
		httpError(w, http.StatusBadRequest, `body must carry one "spec" or a non-empty "specs" grid`)
		return
	}
	if len(reqs) > s.maxSpecs {
		httpError(w, http.StatusRequestEntityTooLarge, "grid of %d specs exceeds the %d-spec limit", len(reqs), s.maxSpecs)
		return
	}

	// Validate and key everything up front: the registry's
	// Normalize/Validate path plus application resolution, so
	// configuration mistakes are client errors, not failed batches.
	specs := make([]engine.Spec, len(reqs))
	keys := make([]engine.Key, len(reqs))
	for i, sr := range reqs {
		specs[i] = sr.Spec()
		if err := specs[i].Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "spec %d: %v", i, err)
			return
		}
		k, err := specs[i].Key()
		if err != nil {
			httpError(w, http.StatusBadRequest, "spec %d: %v", i, err)
			return
		}
		keys[i] = k
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	writeLine := func(line RunLine) {
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Single spec: the keyed scalar path, skipping batch machinery (this
	// is the high-rate cached path a load generator hammers).
	if len(specs) == 1 {
		res, err := s.eng.RunKeyed(r.Context(), keys[0], specs[0])
		if err != nil {
			writeLine(RunLine{Index: 0, Key: keyHex(keys[0]), Error: err.Error()})
			return
		}
		writeLine(RunLine{Index: 0, Key: keyHex(keys[0]), Result: &res})
		return
	}

	// Grid: stream lines in spec order as results complete. The
	// progress callback is serialized by the engine; finished-early
	// results buffer until the contiguous prefix reaches them.
	results := make([]*sim.Result, len(specs))
	next := 0
	_, err := s.eng.RunAll(r.Context(), specs, func(i int, res sim.Result) {
		r := res
		results[i] = &r
		for next < len(specs) && results[next] != nil {
			writeLine(RunLine{Index: next, Key: keyHex(keys[next]), Result: results[next]})
			next++
		}
	})
	if err != nil {
		// The batch aborted (first failing spec cancels the rest, or the
		// client went away); anything unstreamed is lost to this error.
		if !errors.Is(err, r.Context().Err()) || r.Context().Err() == nil {
			writeLine(RunLine{Index: next, Error: err.Error()})
		}
		return
	}
}
