package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// latencyBuckets are the histogram upper bounds in seconds: 100 µs to
// 10 s, dense at the low end where the warm cached path lives.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram with lock-free
// observation (one atomic add per bucket hit plus count and sum).
type histogram struct {
	buckets  []atomic.Uint64 // one per bound, plus a final +Inf bucket
	count    atomic.Uint64
	sumNanos atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]atomic.Uint64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	secs := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, secs)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// endpointMetrics accumulates one handled path's traffic: a latency
// histogram and per-status-code request counts.
type endpointMetrics struct {
	hist *histogram

	mu    sync.Mutex
	codes map[int]uint64
}

func newEndpointMetrics() *endpointMetrics {
	return &endpointMetrics{hist: newHistogram(), codes: make(map[int]uint64)}
}

func (m *endpointMetrics) record(code int, d time.Duration) {
	m.hist.observe(d)
	m.mu.Lock()
	m.codes[code]++
	m.mu.Unlock()
}

// metricsSet is the server's whole metrics surface: per-endpoint HTTP
// traffic plus whatever the engine reports at scrape time.
type metricsSet struct {
	endpoints map[string]*endpointMetrics // fixed key set, built at New
}

func newMetricsSet(paths ...string) *metricsSet {
	eps := make(map[string]*endpointMetrics, len(paths))
	for _, p := range paths {
		eps[p] = newEndpointMetrics()
	}
	return &metricsSet{endpoints: eps}
}

func (s *metricsSet) endpoint(path string) *endpointMetrics { return s.endpoints[path] }

// writeProm renders the full scrape in Prometheus text exposition
// format (version 0.0.4): cache tiers, power-memo counters, queue
// depth, in-flight lanes, and per-endpoint request counts and latency
// histograms. Output order is deterministic so scrapes diff cleanly.
func (s *metricsSet) writeProm(w io.Writer, eng *engine.Engine) {
	cs := eng.CacheStats()
	ld := eng.Load()

	fmt.Fprintf(w, "# HELP resonanced_cache_hits_total Runs served from a cache tier without simulating.\n")
	fmt.Fprintf(w, "# TYPE resonanced_cache_hits_total counter\n")
	fmt.Fprintf(w, "resonanced_cache_hits_total{tier=\"mem\"} %d\n", cs.Hits)
	fmt.Fprintf(w, "resonanced_cache_hits_total{tier=\"disk\"} %d\n", cs.DiskHits)
	fmt.Fprintf(w, "# HELP resonanced_sim_misses_total Simulations actually executed.\n")
	fmt.Fprintf(w, "# TYPE resonanced_sim_misses_total counter\n")
	fmt.Fprintf(w, "resonanced_sim_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# TYPE resonanced_cache_disk_writes_total counter\n")
	fmt.Fprintf(w, "resonanced_cache_disk_writes_total %d\n", cs.DiskWrites)
	fmt.Fprintf(w, "# TYPE resonanced_cache_disk_gc_removed counter\n")
	fmt.Fprintf(w, "resonanced_cache_disk_gc_removed %d\n", cs.DiskGCRemoved)
	fmt.Fprintf(w, "# HELP resonanced_cache_entries Distinct specs resident in the memory tier.\n")
	fmt.Fprintf(w, "# TYPE resonanced_cache_entries gauge\n")
	fmt.Fprintf(w, "resonanced_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "# TYPE resonanced_power_memo_hits_total counter\n")
	fmt.Fprintf(w, "resonanced_power_memo_hits_total %d\n", cs.PowerMemoHits)
	fmt.Fprintf(w, "# TYPE resonanced_power_memo_lookups_total counter\n")
	fmt.Fprintf(w, "resonanced_power_memo_lookups_total %d\n", cs.PowerMemoLookups)
	fmt.Fprintf(w, "# HELP resonanced_batch_lanes_forked_total Lockstep lanes that diverged and resumed on a forked machine.\n")
	fmt.Fprintf(w, "# TYPE resonanced_batch_lanes_forked_total counter\n")
	fmt.Fprintf(w, "resonanced_batch_lanes_forked_total %d\n", cs.LanesForked)
	fmt.Fprintf(w, "# HELP resonanced_batch_cohorts_reformed_total Forked machines created, each a fresh lockstep cohort.\n")
	fmt.Fprintf(w, "# TYPE resonanced_batch_cohorts_reformed_total counter\n")
	fmt.Fprintf(w, "resonanced_batch_cohorts_reformed_total %d\n", cs.CohortsReformed)
	fmt.Fprintf(w, "# HELP resonanced_batch_fork_cycles_saved_total Speculative prefix cycles retained by forking instead of scalar re-runs.\n")
	fmt.Fprintf(w, "# TYPE resonanced_batch_fork_cycles_saved_total counter\n")
	fmt.Fprintf(w, "resonanced_batch_fork_cycles_saved_total %d\n", cs.ForkCyclesSaved)

	fmt.Fprintf(w, "# HELP resonanced_engine_inflight Simulations (or lockstep lane groups) occupying a worker slot.\n")
	fmt.Fprintf(w, "# TYPE resonanced_engine_inflight gauge\n")
	fmt.Fprintf(w, "resonanced_engine_inflight %d\n", ld.InFlight)
	fmt.Fprintf(w, "# HELP resonanced_engine_queue_depth Runs waiting for a free worker slot.\n")
	fmt.Fprintf(w, "# TYPE resonanced_engine_queue_depth gauge\n")
	fmt.Fprintf(w, "resonanced_engine_queue_depth %d\n", ld.Queued)

	paths := make([]string, 0, len(s.endpoints))
	for p := range s.endpoints {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	fmt.Fprintf(w, "# TYPE resonanced_http_requests_total counter\n")
	for _, p := range paths {
		ep := s.endpoints[p]
		ep.mu.Lock()
		codes := make([]int, 0, len(ep.codes))
		for c := range ep.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "resonanced_http_requests_total{path=%q,code=\"%d\"} %d\n", p, c, ep.codes[c])
		}
		ep.mu.Unlock()
	}

	fmt.Fprintf(w, "# TYPE resonanced_http_request_duration_seconds histogram\n")
	for _, p := range paths {
		h := s.endpoints[p].hist
		var cum uint64
		for i, bound := range latencyBuckets {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "resonanced_http_request_duration_seconds_bucket{path=%q,le=%q} %d\n",
				p, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		cum += h.buckets[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "resonanced_http_request_duration_seconds_bucket{path=%q,le=\"+Inf\"} %d\n", p, cum)
		fmt.Fprintf(w, "resonanced_http_request_duration_seconds_sum{path=%q} %g\n",
			p, time.Duration(h.sumNanos.Load()).Seconds())
		fmt.Fprintf(w, "resonanced_http_request_duration_seconds_count{path=%q} %d\n", p, h.count.Load())
	}
}
