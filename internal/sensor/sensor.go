// Package sensor models the on-die measurement hardware the inductive-
// noise techniques depend on.
//
// Resonance tuning senses processor core current directly (paper §2.1.4):
// a few MAGFET-style sensors at the roots of the supply network, coarse
// whole-amp resolution, running at core clock speed. The technique of
// [10] instead senses supply voltage, which in a real implementation
// suffers from limited precision (tens of millivolts), peak-to-peak
// sensor noise, and a sensing/actuation delay; all three are modelled
// here because Table 4 of the paper sweeps them.
package sensor

import (
	"math"

	"repro/internal/rng"
)

// Current models the on-die current sensor used by resonance tuning. It
// quantises the true core current to a configurable resolution and can
// delay its readings by a fixed number of cycles.
type Current struct {
	// ResolutionAmps is the quantisation step (1 A in the paper; the
	// sensor ablation sweeps it). Non-positive means exact readings.
	ResolutionAmps float64
	// DelayCycles postpones readings: the value returned at cycle c is
	// the true current at cycle c-DelayCycles. Zero means immediate.
	DelayCycles int

	history []float64
	pos     int
	filled  bool
}

// NewCurrent returns a whole-amp, zero-delay current sensor.
func NewCurrent() *Current { return &Current{ResolutionAmps: 1} }

// NewCurrentDelayed returns a whole-amp sensor with the given reading
// delay in cycles.
func NewCurrentDelayed(delay int) *Current {
	c := &Current{ResolutionAmps: 1, DelayCycles: delay}
	c.init()
	return c
}

func (c *Current) init() {
	if c.DelayCycles > 0 && c.history == nil {
		c.history = make([]float64, c.DelayCycles)
	}
}

// Fork returns an independent copy of the sensor carrying the full
// delay-pipe history, so original and copy report identical readings
// for identical future inputs.
func (c *Current) Fork() *Current {
	f := *c
	f.history = append([]float64(nil), c.history...)
	return &f
}

// Read quantises (and possibly delays) the true current for this cycle.
// Call exactly once per cycle.
func (c *Current) Read(trueAmps float64) float64 {
	v := trueAmps
	if c.DelayCycles > 0 {
		c.init()
		old := c.history[c.pos]
		c.history[c.pos] = trueAmps
		c.pos = (c.pos + 1) % c.DelayCycles
		if !c.filled {
			// Before the pipe fills, report the oldest value we have
			// seen, i.e. the first sample.
			if c.pos == 0 {
				c.filled = true
			}
			old = c.history[0]
		}
		v = old
	}
	if c.ResolutionAmps > 0 {
		v = math.Round(v/c.ResolutionAmps) * c.ResolutionAmps
	}
	return v
}

// Voltage models the supply-voltage sensor of [10]: readings carry
// uniform peak-to-peak noise and arrive after a fixed delay. The sensed
// quantity is the supply deviation from Vdd in volts.
type Voltage struct {
	// NoisePeakToPeak is the total width of the uniform sensor noise in
	// volts (Table 4 uses 10-15 mV).
	NoisePeakToPeak float64
	// DelayCycles is the lag between a deviation occurring and the
	// control logic seeing it (Table 4 uses 3-5 cycles).
	DelayCycles int

	rng     *rng.Source
	history []float64
	pos     int
	filled  bool
}

// NewVoltage returns a voltage sensor with the given noise (volts,
// peak-to-peak), delay (cycles) and noise seed.
func NewVoltage(noisePP float64, delay int, seed uint64) *Voltage {
	v := &Voltage{NoisePeakToPeak: noisePP, DelayCycles: delay, rng: rng.New(seed)}
	if delay > 0 {
		v.history = make([]float64, delay)
	}
	return v
}

// Read returns the sensed deviation for this cycle given the true
// deviation. Call exactly once per cycle.
func (v *Voltage) Read(trueVolts float64) float64 {
	s := trueVolts
	if v.DelayCycles > 0 {
		old := v.history[v.pos]
		v.history[v.pos] = trueVolts
		v.pos = (v.pos + 1) % v.DelayCycles
		if !v.filled {
			if v.pos == 0 {
				v.filled = true
			}
			old = v.history[0]
		}
		s = old
	}
	if v.NoisePeakToPeak > 0 {
		s += (v.rng.Float64() - 0.5) * v.NoisePeakToPeak
	}
	return s
}

// EffectiveThreshold returns the usable detection threshold once sensor
// noise eats into the target: target minus half the peak-to-peak noise
// (Table 4's "actual threshold" column).
func EffectiveThreshold(targetVolts, noisePP float64) float64 {
	t := targetVolts - noisePP/2
	if t < 0 {
		return 0
	}
	return t
}
