package sensor

import (
	"math"
	"testing"
)

func TestCurrentQuantisesToWholeAmps(t *testing.T) {
	s := NewCurrent()
	cases := []struct{ in, want float64 }{
		{70.2, 70}, {70.6, 71}, {69.5, 70}, {0.4, 0}, {-3.7, -4},
	}
	for _, tc := range cases {
		if got := s.Read(tc.in); got != tc.want {
			t.Errorf("Read(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

func TestCurrentCustomResolution(t *testing.T) {
	s := &Current{ResolutionAmps: 4}
	if got := s.Read(70.2); got != 72 {
		t.Errorf("4A resolution Read(70.2) = %g, want 72", got)
	}
	exact := &Current{ResolutionAmps: 0}
	if got := exact.Read(70.2); got != 70.2 {
		t.Errorf("exact sensor Read(70.2) = %g, want 70.2", got)
	}
}

func TestCurrentDelay(t *testing.T) {
	s := NewCurrentDelayed(3)
	inputs := []float64{10, 20, 30, 40, 50, 60}
	var got []float64
	for _, in := range inputs {
		got = append(got, s.Read(in))
	}
	// After the pipe fills, reading i returns input i-3.
	for i := 3; i < len(inputs); i++ {
		if got[i] != inputs[i-3] {
			t.Errorf("delayed read %d = %g, want %g", i, got[i], inputs[i-3])
		}
	}
	// Warm-up readings hold the first sample rather than garbage.
	for i := 0; i < 3; i++ {
		if got[i] != inputs[0] {
			t.Errorf("warm-up read %d = %g, want %g", i, got[i], inputs[0])
		}
	}
}

func TestVoltageNoiseBounds(t *testing.T) {
	const noise = 0.015
	v := NewVoltage(noise, 0, 1)
	worst := 0.0
	for i := 0; i < 10_000; i++ {
		d := v.Read(0.020) - 0.020
		if a := math.Abs(d); a > worst {
			worst = a
		}
		if math.Abs(d) > noise/2+1e-12 {
			t.Fatalf("noise excursion %g exceeds ±%g", d, noise/2)
		}
	}
	if worst < noise*0.4 {
		t.Errorf("noise never approached its bound: worst %g", worst)
	}
}

func TestVoltageNoiseDeterministic(t *testing.T) {
	a := NewVoltage(0.010, 0, 99)
	b := NewVoltage(0.010, 0, 99)
	for i := 0; i < 100; i++ {
		if a.Read(0.01) != b.Read(0.01) {
			t.Fatal("same-seed voltage sensors diverged")
		}
	}
}

func TestVoltageDelay(t *testing.T) {
	v := NewVoltage(0, 2, 1)
	inputs := []float64{0.01, 0.02, 0.03, 0.04}
	var got []float64
	for _, in := range inputs {
		got = append(got, v.Read(in))
	}
	if got[2] != inputs[0] || got[3] != inputs[1] {
		t.Errorf("delayed voltage reads %v, want shifted by 2", got)
	}
}

func TestVoltageNoDelayNoNoisePassthrough(t *testing.T) {
	v := NewVoltage(0, 0, 1)
	if got := v.Read(0.0421); got != 0.0421 {
		t.Errorf("passthrough Read = %g", got)
	}
}

func TestEffectiveThreshold(t *testing.T) {
	cases := []struct{ target, noise, want float64 }{
		{0.030, 0.015, 0.0225},
		{0.020, 0.010, 0.015},
		{0.020, 0.015, 0.0125},
		{0.010, 0.040, 0}, // noise swamps the target: clamp at zero
	}
	for _, tc := range cases {
		if got := EffectiveThreshold(tc.target, tc.noise); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("EffectiveThreshold(%g,%g) = %g, want %g", tc.target, tc.noise, got, tc.want)
		}
	}
}
