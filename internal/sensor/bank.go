package sensor

// Bank is a set of per-domain current sensors with a shared resolution
// and delay: one MAGFET-style sensor at the root of each supply domain.
// Each domain keeps its own delay pipe so the bank behaves exactly like
// a Current sensor per rail.
type Bank struct {
	sensors []*Current
}

// NewBank returns a bank of `domains` current sensors. Non-positive
// resolution means exact readings; zero delay means immediate ones,
// matching Current's conventions.
func NewBank(domains int, resolutionAmps float64, delayCycles int) *Bank {
	b := &Bank{sensors: make([]*Current, domains)}
	for d := range b.sensors {
		s := &Current{ResolutionAmps: resolutionAmps, DelayCycles: delayCycles}
		s.init()
		b.sensors[d] = s
	}
	return b
}

// Domains returns the number of sensors in the bank.
func (b *Bank) Domains() int { return len(b.sensors) }

// Read quantises (and possibly delays) domain d's true current for this
// cycle. Call exactly once per domain per cycle.
func (b *Bank) Read(d int, trueAmps float64) float64 {
	return b.sensors[d].Read(trueAmps)
}

// Fork returns an independent copy of the bank carrying every domain's
// delay-pipe history, mirroring Current.Fork.
func (b *Bank) Fork() *Bank {
	f := &Bank{sensors: make([]*Current, len(b.sensors))}
	for d, s := range b.sensors {
		f.sensors[d] = s.Fork()
	}
	return f
}
