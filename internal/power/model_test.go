package power

import (
	"math"
	"testing"

	"repro/internal/cpu"
)

func newModel() *Model { return New(DefaultConfig(), cpu.DefaultConfig()) }

// fullActivity returns an Activity with every unit at capacity.
func fullActivity(cc cpu.Config) cpu.Activity {
	var act cpu.Activity
	act.Fetched = cc.FetchWidth
	act.Dispatched = cc.DecodeWidth
	act.Committed = cc.CommitWidth
	act.Issued[cpu.IntALU] = cc.IntALUs
	act.Issued[cpu.IntMul] = cc.IntMuls
	act.Issued[cpu.FPALU] = cc.FPALUs
	act.Issued[cpu.FPMul] = cc.FPMuls
	act.IssuedTotal = cc.IssueWidth
	act.L1D = cc.CachePorts
	act.L2 = 1
	act.Mem = 1
	return act
}

func TestIdleCycleDrawsIdleCurrent(t *testing.T) {
	m := newModel()
	for i := 0; i < 100; i++ {
		e := m.Step(&cpu.Activity{}, 0)
		amps := m.CurrentAmps(e)
		if math.Abs(amps-35) > 1e-9 {
			t.Fatalf("idle cycle %d draws %g A, want 35", i, amps)
		}
	}
}

func TestSustainedFullActivityApproachesPeak(t *testing.T) {
	m := newModel()
	act := fullActivity(cpu.DefaultConfig())
	var amps float64
	for i := 0; i < 100; i++ {
		amps = m.CurrentAmps(m.Step(&act, 0))
	}
	// With all spreads in steady state the full-capacity cycle must
	// draw the full 105 A.
	if math.Abs(amps-105) > 0.5 {
		t.Errorf("sustained full activity draws %g A, want ≈ 105", amps)
	}
}

func TestCurrentBoundedByPeak(t *testing.T) {
	m := newModel()
	act := fullActivity(cpu.DefaultConfig())
	// Overdrive the counters: the model must clamp to unit capacity.
	act.Fetched *= 10
	act.IssuedTotal *= 10
	act.L1D *= 10
	act.L2 = 50
	act.Mem = 50
	for i := 0; i < 200; i++ {
		amps := m.CurrentAmps(m.Step(&act, 0))
		if amps > m.PeakAmps()+1e-9 {
			t.Fatalf("cycle %d draws %g A, exceeding peak %g", i, amps, m.PeakAmps())
		}
	}
}

func TestEnergyConservedUnderSpreading(t *testing.T) {
	// One burst cycle followed by idle: total energy must equal the
	// burst energy plus idle floors, regardless of how it is spread.
	cc := cpu.DefaultConfig()
	burst := fullActivity(cc)

	spread := New(DefaultConfig(), cc)
	spread.Step(&burst, 0)
	for i := 0; i < spreadRing; i++ {
		spread.Step(&cpu.Activity{}, 0)
	}

	cfg := DefaultConfig()
	wantDynamic := (cfg.PeakWatts - cfg.IdleWatts) / cfg.ClockHz // one full cycle of net dynamic energy
	wantTotal := float64(spreadRing+1)*cfg.IdleWatts/cfg.ClockHz + wantDynamic
	if got := spread.TotalJoules(); math.Abs(got-wantTotal)/wantTotal > 1e-9 {
		t.Errorf("total energy %g J, want %g J", got, wantTotal)
	}
	if spread.Cycles() != spreadRing+1 {
		t.Errorf("cycles %d, want %d", spread.Cycles(), spreadRing+1)
	}
}

func TestSpreadingSmoothsCurrent(t *testing.T) {
	// An L2+memory access burst should not land all in one cycle.
	m := newModel()
	var act cpu.Activity
	act.L2, act.Mem = 1, 1
	first := m.CurrentAmps(m.Step(&act, 0))
	second := m.CurrentAmps(m.Step(&cpu.Activity{}, 0))
	if second <= m.IdleAmps() {
		t.Error("no residual energy in the cycle after a memory access")
	}
	if first >= m.IdleAmps()+(m.PeakAmps()-m.IdleAmps())*0.08 {
		t.Errorf("memory access energy insufficiently spread: first cycle %g A", first)
	}
	_ = second
}

func TestPhantomAmpsAddExactly(t *testing.T) {
	m1, m2 := newModel(), newModel()
	e1 := m1.Step(&cpu.Activity{}, 0)
	e2 := m2.Step(&cpu.Activity{}, 25)
	diff := m2.CurrentAmps(e2) - m1.CurrentAmps(e1)
	if math.Abs(diff-25) > 1e-9 {
		t.Errorf("phantom 25 A added %g A", diff)
	}
}

func TestDerivedCurrents(t *testing.T) {
	m := newModel()
	if m.IdleAmps() != 35 || m.PeakAmps() != 105 {
		t.Errorf("idle/peak = %g/%g, want 35/105", m.IdleAmps(), m.PeakAmps())
	}
	if m.MidAmps() != 70 {
		t.Errorf("mid = %g, want 70", m.MidAmps())
	}
	pf := m.PhantomFireAmps()
	if pf <= 0 || pf >= m.PeakAmps()-m.IdleAmps() {
		t.Errorf("phantom-fire amps %g out of range (0, %g)", pf, m.PeakAmps()-m.IdleAmps())
	}
}

func TestClassAmpsOrdering(t *testing.T) {
	m := newModel()
	amps := m.ClassAmps()
	for cl := cpu.Class(0); cl < cpu.NumClasses; cl++ {
		if amps[cl] <= 0 {
			t.Errorf("class %v estimate %g, want positive", cl, amps[cl])
		}
	}
	if amps[cpu.IntMul] <= amps[cpu.IntALU] {
		t.Error("multiply should cost more than ALU op")
	}
	if amps[cpu.Store] <= amps[cpu.Load] {
		t.Error("store (ALU+cache) should cost more than load (cache)")
	}
}

func TestMoreActivityMoreCurrent(t *testing.T) {
	levels := []int{0, 2, 4, 8}
	prev := -1.0
	for _, n := range levels {
		m := newModel()
		var act cpu.Activity
		act.Issued[cpu.IntALU] = n
		act.IssuedTotal = n
		act.Fetched = n
		act.Dispatched = n
		act.Committed = n
		var amps float64
		for i := 0; i < 20; i++ {
			amps = m.CurrentAmps(m.Step(&act, 0))
		}
		if amps <= prev {
			t.Errorf("current %g A at activity %d not above %g", amps, n, prev)
		}
		prev = amps
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Vdd = 0 },
		func(c *Config) { c.ClockHz = -1 },
		func(c *Config) { c.IdleWatts = 0 },
		func(c *Config) { c.PeakWatts = c.IdleWatts },
		func(c *Config) { c.GatedResidual = 1 },
		func(c *Config) { c.GatedResidual = -0.1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Vdd = 0
	New(cfg, cpu.DefaultConfig())
}

func TestUnitString(t *testing.T) {
	seen := map[string]bool{}
	for u := Unit(0); u < NumUnits; u++ {
		s := u.String()
		if s == "" || seen[s] {
			t.Errorf("unit %d name %q invalid or duplicate", u, s)
		}
		seen[s] = true
	}
	if Unit(99).String() == "" {
		t.Error("out-of-range unit should still render")
	}
}

func TestBudgetFractionsSumToOne(t *testing.T) {
	sum := 0.0
	for u := Unit(0); u < NumUnits; u++ {
		sum += budgetFraction[u]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("budget fractions sum to %g, want 1", sum)
	}
}

func TestSpreadWindowsFitRing(t *testing.T) {
	for u := Unit(0); u < NumUnits; u++ {
		if spreadCycles[u] < 1 || spreadCycles[u] > spreadRing {
			t.Errorf("unit %v spread %d outside [1,%d]", u, spreadCycles[u], spreadRing)
		}
	}
}

func TestBreakdownAccountsForEverything(t *testing.T) {
	m := newModel()
	act := fullActivity(cpu.DefaultConfig())
	for i := 0; i < 50; i++ {
		m.Step(&act, 0)
	}
	for i := 0; i < spreadRing; i++ {
		m.Step(&cpu.Activity{}, 0) // drain the spreading ring
	}
	floorJ, unitJ := m.Breakdown()
	sum := floorJ
	for u := Unit(0); u < NumUnits; u++ {
		if unitJ[u] < 0 {
			t.Errorf("unit %v negative energy", u)
		}
		sum += unitJ[u]
	}
	if math.Abs(sum-m.TotalJoules())/m.TotalJoules() > 1e-9 {
		t.Errorf("breakdown sum %g != total %g", sum, m.TotalJoules())
	}
	// The floor dominates an idle-heavy run; dynamic shares follow the
	// budget fractions under full activity.
	if unitJ[UnitWindow] <= unitJ[UnitIntMul] {
		t.Error("window (15%) should out-consume intmul (4%) at full activity")
	}
}

// refStep replays the pre-memoization Step algorithm against a model's
// calibration, so tests can pin the memoized path bit-identically to the
// original arithmetic.
type refStep struct {
	m        *Model
	pending  [spreadRing]float64
	slot     int
	perUnit  [NumUnits]float64
	floorTot float64
	totalJ   float64
}

func (r *refStep) step(act *cpu.Activity, phantomAmps float64) float64 {
	var ev [NumUnits]float64
	r.m.events(act, &ev)
	for u := Unit(0); u < NumUnits; u++ {
		if ev[u] == 0 {
			continue
		}
		total := ev[u] * r.m.unitEventJ[u]
		r.perUnit[u] += total
		n := spreadCycles[u]
		share := total / float64(n)
		for k := 0; k < n; k++ {
			r.pending[(r.slot+k)%spreadRing] += share
		}
	}
	r.floorTot += r.m.floorJ
	e := r.m.floorJ + r.pending[r.slot]
	r.pending[r.slot] = 0
	r.slot = (r.slot + 1) % spreadRing
	if phantomAmps > 0 {
		e += phantomAmps * r.m.cfg.Vdd / r.m.cfg.ClockHz
	}
	r.totalJ += e
	return e
}

// TestMemoizedStepBitIdentical drives the memoized Step with a repeating
// (hence memo-hitting) but varied activity stream, including vectors too
// wide for the memo key, and asserts every cycle's energy is bit-identical
// to the original deposit algorithm.
func TestMemoizedStepBitIdentical(t *testing.T) {
	m := newModel()
	ref := &refStep{m: newModel()}
	// A small pool of vectors revisited many times: hits dominate after
	// the first lap, exactly like throttled/stalled simulation cycles.
	pool := make([]cpu.Activity, 0, 40)
	pool = append(pool, cpu.Activity{})                    // all-idle
	pool = append(pool, fullActivity(cpu.DefaultConfig())) // peak
	wide := fullActivity(cpu.DefaultConfig())
	wide.Fetched = 99 // unpackable: must take the bypass path
	pool = append(pool, wide)
	seed := uint64(1)
	rnd := func(n int) int { // xorshift, deterministic
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return int(seed % uint64(n))
	}
	for len(pool) < cap(pool) {
		var a cpu.Activity
		a.Fetched = rnd(9)
		a.Dispatched = rnd(9)
		a.Committed = rnd(9)
		a.Issued[cpu.IntALU] = rnd(7)
		a.Issued[cpu.IntMul] = rnd(3)
		a.Issued[cpu.FPALU] = rnd(5)
		a.Issued[cpu.FPMul] = rnd(3)
		a.Issued[cpu.Branch] = rnd(2)
		a.Issued[cpu.Store] = rnd(3)
		a.IssuedTotal = a.Issued[cpu.IntALU] + a.Issued[cpu.IntMul] +
			a.Issued[cpu.FPALU] + a.Issued[cpu.FPMul] + a.Issued[cpu.Branch] + a.Issued[cpu.Store]
		a.L1D = rnd(3)
		a.L2 = rnd(2)
		a.Mem = rnd(2)
		pool = append(pool, a)
	}
	for i := 0; i < 20000; i++ {
		act := pool[rnd(len(pool))]
		phantom := 0.0
		if rnd(4) == 0 {
			phantom = float64(rnd(30))
		}
		got := m.Step(&act, phantom)
		want := ref.step(&act, phantom)
		if got != want {
			t.Fatalf("cycle %d: memoized Step = %v, reference = %v", i, got, want)
		}
	}
	if m.TotalJoules() != ref.totalJ {
		t.Fatalf("TotalJoules diverged: %v vs %v", m.TotalJoules(), ref.totalJ)
	}
	gotFloor, gotUnits := m.Breakdown()
	if gotFloor != ref.floorTot || gotUnits != ref.perUnit {
		t.Fatalf("Breakdown diverged")
	}
	st := m.MemoStats()
	if st.Hits == 0 || st.Bypasses == 0 {
		t.Fatalf("stream did not exercise all memo paths: %+v", st)
	}
	if st.Lookups() != 20000 {
		t.Fatalf("lookups = %d, want 20000", st.Lookups())
	}
	if st.HitRate() < 0.9 {
		t.Fatalf("hit rate %.2f too low for a 40-vector pool", st.HitRate())
	}
}

// TestMemoStatsCountsHitsAndMisses pins the counter semantics.
func TestMemoStatsCountsHitsAndMisses(t *testing.T) {
	m := newModel()
	var act cpu.Activity
	act.Fetched = 3
	for i := 0; i < 10; i++ {
		m.Step(&act, 0)
	}
	st := m.MemoStats()
	if st.Misses != 1 || st.Hits != 9 || st.Bypasses != 0 {
		t.Fatalf("stats = %+v, want 1 miss, 9 hits", st)
	}
}
