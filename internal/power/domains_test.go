package power

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/workload"
)

// testCore returns a core running a bursty synthetic workload, for
// driving the model with realistic activity sequences.
func testCore(t *testing.T, insts uint64) *cpu.Core {
	t.Helper()
	app, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	return cpu.New(cpu.DefaultConfig(), workload.NewGenerator(app.Params, insts))
}

func TestUnitByName(t *testing.T) {
	for u := Unit(0); u < NumUnits; u++ {
		got, ok := UnitByName(u.String())
		if !ok || got != u {
			t.Errorf("UnitByName(%q) = %v, %v", u.String(), got, ok)
		}
	}
	if _, ok := UnitByName("flux"); ok {
		t.Error("UnitByName accepted an unknown name")
	}
}

func TestAssignmentFromNames(t *testing.T) {
	assign, err := AssignmentFromNames([][]string{
		{"frontend", "intalu"},
		{"fpalu", "fpmul"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if assign[UnitFrontend] != 0 || assign[UnitIntALU] != 0 {
		t.Error("domain 0 units misassigned")
	}
	if assign[UnitFPALU] != 1 || assign[UnitFPMul] != 1 {
		t.Error("domain 1 units misassigned")
	}
	if assign[UnitL2] != 0 {
		t.Error("unlisted unit did not default to domain 0")
	}
	if _, err := AssignmentFromNames([][]string{{"quux"}}); err == nil {
		t.Error("unknown unit name accepted")
	}
	if _, err := AssignmentFromNames([][]string{{"l1d"}, {"l1d"}}); err == nil {
		t.Error("duplicate unit assignment accepted")
	}
}

// twoDomainAssign splits the integer/front half from the FP/memory half,
// mirroring circuit.Table1TwoDomain's PowerUnits lists.
func twoDomainAssign(t *testing.T) [NumUnits]uint8 {
	t.Helper()
	assign, err := AssignmentFromNames([][]string{
		{"frontend", "rename", "window", "regfile", "intalu", "intmul", "rob", "bus"},
		{"fpalu", "fpmul", "l1d", "l2", "mem"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return assign
}

// TestDomainIdleAmpsSumToIdle: the per-domain floor split covers the
// whole idle current.
func TestDomainIdleAmpsSumToIdle(t *testing.T) {
	m := New(DefaultConfig(), cpu.DefaultConfig())
	m.EnableDomains(2, twoDomainAssign(t))
	sum := m.DomainIdleAmps(0) + m.DomainIdleAmps(1)
	if want := m.IdleAmps(); math.Abs(sum-want) > 1e-9*want {
		t.Errorf("domain idle currents sum to %g A, want %g A", sum, want)
	}
	if s := m.DomainShare(0) + m.DomainShare(1); math.Abs(s-1) > 1e-12 {
		t.Errorf("domain shares sum to %g, want 1", s)
	}
}

// TestStepDomainsMatchesStepTotals: for an identical activity sequence,
// the per-domain energies sum (per cycle, within rounding) to what the
// single-domain Step reports, so splitting conserves energy.
func TestStepDomainsMatchesStepTotals(t *testing.T) {
	cc := cpu.DefaultConfig()
	single := New(DefaultConfig(), cc)
	multi := New(DefaultConfig(), cc)
	multi.EnableDomains(2, twoDomainAssign(t))

	core1 := testCore(t, 6000)
	core2 := testCore(t, 6000)
	domJ := make([]float64, 2)
	for c := 0; c < 6000; c++ {
		var a1, a2 cpu.Activity
		core1.StepInto(cpu.Unlimited, &a1)
		core2.StepInto(cpu.Unlimited, &a2)
		want := single.Step(&a1, 0)
		got := multi.StepDomains(&a2, domJ)
		if math.Abs(got-want) > 1e-12*math.Max(want, 1) {
			t.Fatalf("cycle %d: StepDomains total %g J, Step %g J", c, got, want)
		}
		if s := domJ[0] + domJ[1]; math.Abs(s-got) > 1e-18 {
			t.Fatalf("cycle %d: domain energies sum to %g, total %g", c, s, got)
		}
	}
}

// TestStepDomainsForkBitIdentical: a forked multi-domain model replays
// identical futures bit-identically and diverges independently.
func TestStepDomainsForkBitIdentical(t *testing.T) {
	cc := cpu.DefaultConfig()
	m := New(DefaultConfig(), cc)
	m.EnableDomains(2, twoDomainAssign(t))
	core := testCore(t, 4000)
	domJ := make([]float64, 2)
	var act cpu.Activity
	for c := 0; c < 1000; c++ {
		core.StepInto(cpu.Unlimited, &act)
		m.StepDomains(&act, domJ)
	}
	f := m.Fork()
	coreF, err := core.Fork()
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, 2)
	b := make([]float64, 2)
	for c := 0; c < 1000; c++ {
		var actA, actB cpu.Activity
		core.StepInto(cpu.Unlimited, &actA)
		coreF.StepInto(cpu.Unlimited, &actB)
		ea := m.StepDomains(&actA, a)
		eb := f.StepDomains(&actB, b)
		if ea != eb || a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("cycle %d: fork domain energies %v (%g) != original %v (%g)", c, b, eb, a, ea)
		}
	}
	// Diverge the fork with a burst of idle cycles; the original's ring
	// must be untouched.
	idle := cpu.Activity{}
	ref := m.Fork()
	f.StepDomains(&idle, b)
	for c := 0; c < 100; c++ {
		var act cpu.Activity
		core.StepInto(cpu.Unlimited, &act)
		ea := m.StepDomains(&act, a)
		eb := ref.StepDomains(&act, b)
		if ea != eb || a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("cycle %d: original perturbed by fork divergence", c)
		}
	}
}
